// Top-level benchmark harness: one benchmark per figure/experiment of the
// paper (see DESIGN.md §3 for the index). Run with:
//
//	go test -bench=. -benchmem
//
// Custom metrics report the reproduction numbers themselves (speedups,
// parallel-statement counts), so `go test -bench` regenerates the
// quantitative side of EXPERIMENTS.md.
package repro

import (
	"context"

	"fmt"
	"testing"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/interfere"
	"repro/internal/interp"
	"repro/internal/matrix"
	"repro/internal/par"
	"repro/internal/path"
	"repro/internal/progs"
	"repro/internal/runtime"
	"repro/internal/sil/ast"
	"repro/internal/sil/parser"
	"repro/internal/sil/printer"
	"repro/internal/sil/types"
)

func mustPipeline(b *testing.B, src string, roots ...string) *core.Pipeline {
	b.Helper()
	opts := core.DefaultOptions()
	opts.Analysis.ExternalRoots = roots
	pipe, err := core.Build(src, opts)
	if err != nil {
		b.Fatal(err)
	}
	return pipe
}

// BenchmarkFig1Parse — E-F1: front-end throughput on the Figure 7 program.
func BenchmarkFig1Parse(b *testing.B) {
	for i := 0; i < b.N; i++ {
		prog, err := parser.Parse(progs.AddAndReverse)
		if err != nil {
			b.Fatal(err)
		}
		if err := types.Check(prog); err != nil {
			b.Fatal(err)
		}
		types.Normalize(prog)
	}
}

// BenchmarkFig1Print — E-F1: printer round-trip half.
func BenchmarkFig1Print(b *testing.B) {
	prog, _ := parser.Parse(progs.AddAndReverse)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = printer.Print(prog)
	}
}

// BenchmarkFig2Assignments — E-F2: the handle-assignment transfer
// functions on the Figure 2 matrix.
func BenchmarkFig2Assignments(b *testing.B) {
	pipe := mustPipeline(b, `
program figctx
procedure main()
  a, b, c, d, e: handle
begin
  a := new()
end;
`)
	m := matrix.New()
	nn := matrix.Attr{Nil: matrix.NonNil, Indeg: matrix.UnknownDeg}
	for _, h := range []matrix.Handle{"a", "b", "c"} {
		m.Add(h, nn)
	}
	m.Put("a", "b", path.MustParseSet("L4+"))
	m.Put("a", "c", path.MustParseSet("R1D+"))
	stmts, err := parser.ParseStmts("d := a.right; e := d.left")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, out := pipe.Info.Replay("main", m, stmts)
		if out.Get("e", "c").IsEmpty() {
			b.Fatal("figure 2 result lost")
		}
	}
}

// BenchmarkFig3Fixpoint — E-F3: the while-loop iterative approximation.
func BenchmarkFig3Fixpoint(b *testing.B) {
	src := `
program fig3
procedure main()
  h, l: handle
begin
  h := new();
  l := h;
  while l.left <> nil do
    l := l.left
end;
`
	prog, err := progs.Compile(src)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := analysis.Analyze(context.Background(), prog, analysis.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFig4Fusion — E-F4: incremental n-statement interference, width
// sweep.
func BenchmarkFig4Fusion(b *testing.B) {
	m := matrix.New()
	nn := matrix.Attr{Nil: matrix.NonNil, Indeg: matrix.UnknownDeg}
	var group []ast.Stmt
	src := ""
	for _, name := range []string{"a", "b", "c", "d", "e", "f", "g", "h"} {
		m.Add(matrix.Handle(name), nn)
		src += name + ".value := 1; "
	}
	group, err := parser.ParseStmts(src)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !interfere.NoInterferenceN(group, m) {
			b.Fatal("independent updates must fuse")
		}
	}
}

// BenchmarkFig5RWSets — E-F5: read/write set construction for every basic
// statement kind.
func BenchmarkFig5RWSets(b *testing.B) {
	m := matrix.New()
	nn := matrix.Attr{Nil: matrix.NonNil, Indeg: matrix.UnknownDeg}
	for _, h := range []matrix.Handle{"a", "b"} {
		m.Add(h, nn)
	}
	m.Put("a", "b", path.MustParseSet("S?"))
	stmts, err := parser.ParseStmts(
		"a := nil; a := new(); a := b; a := b.left; a.left := b; x := a.value; a.value := x")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range stmts {
			if _, _, ok := interfere.ReadWrite(s, m); !ok {
				b.Fatal("basic statement rejected")
			}
		}
	}
}

// BenchmarkFig6Interference — E-F6: the three interference examples.
func BenchmarkFig6Interference(b *testing.B) {
	m := matrix.New()
	nn := matrix.Attr{Nil: matrix.NonNil, Indeg: matrix.UnknownDeg}
	for _, h := range []matrix.Handle{"a", "b", "c", "d"} {
		m.Add(h, nn)
	}
	m.Put("a", "b", path.MustParseSet("S"))
	m.Put("b", "a", path.MustParseSet("S"))
	m.Put("c", "d", path.MustParseSet("S?, R+?"))
	m.Put("d", "c", path.MustParseSet("S?"))
	pairs, err := parser.ParseStmts(
		"x := a.left; y := x; b.left := nil; n := d.value; c.value := 0")
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if s, _ := interfere.Interference(pairs[0], pairs[1], m); len(s) == 0 {
			b.Fatal("example 1 must interfere")
		}
		if s, _ := interfere.Interference(pairs[0], pairs[2], m); len(s) == 0 {
			b.Fatal("example 2 must interfere")
		}
		if s, _ := interfere.Interference(pairs[3], pairs[4], m); len(s) == 0 {
			b.Fatal("example 3 must interfere")
		}
	}
}

// BenchmarkFig7Analysis — E-F7: the full interprocedural analysis of
// add_and_reverse (matrices pA, pB, mod-ref, verification).
func BenchmarkFig7Analysis(b *testing.B) {
	prog, err := progs.Compile(progs.AddAndReverse)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		info, err := analysis.Analyze(context.Background(), prog, analysis.Options{})
		if err != nil {
			b.Fatal(err)
		}
		if info.Summaries["add_n"] == nil {
			b.Fatal("missing summary")
		}
	}
}

// BenchmarkFig8Parallelize — E-F8: analysis + parallelization end to end.
func BenchmarkFig8Parallelize(b *testing.B) {
	prog, err := progs.Compile(progs.AddAndReverse)
	if err != nil {
		b.Fatal(err)
	}
	info, err := analysis.Analyze(context.Background(), prog, analysis.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	var stats par.Stats
	for i := 0; i < b.N; i++ {
		res := par.Parallelize(info, par.DefaultOptions)
		stats = res.Stats
	}
	b.ReportMetric(float64(stats.ParStatements), "parstmts")
}

// BenchmarkFig9Sequences — E-F9/E-F10: the relative-location sequence
// interference check.
func BenchmarkFig9Sequences(b *testing.B) {
	pipe := mustPipeline(b, progs.AddAndReverse)
	var calls []*ast.CallStmt
	var walk func(s ast.Stmt)
	walk = func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.Block:
			for _, st := range s.Stmts {
				walk(st)
			}
		case *ast.CallStmt:
			if s.Name == "add_n" {
				calls = append(calls, s)
			}
		}
	}
	walk(pipe.Prog.Proc("main").Body)
	p0 := pipe.Info.Before[calls[0]]
	U := []ast.Stmt{calls[0]}
	V := []ast.Stmt{calls[1]}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		conf, err := interfere.SequencesInterfere(pipe.Info, "main", p0, U, V, true)
		if err != nil || conf {
			b.Fatal("add_n sequence pair must be independent")
		}
	}
}

// benchSpeedup measures a corpus kernel on the simulated machine and
// reports the P=8 speedup as a metric.
func benchSpeedup(b *testing.B, src string, setup runtime.Setup, roots ...string) {
	pipe := mustPipeline(b, src, roots...)
	b.ResetTimer()
	var sp *runtime.Speedup
	for i := 0; i < b.N; i++ {
		var err error
		sp, err = pipe.Speedup(interp.Config{}, setup, []int{1, 8})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(sp.SpeedupAt(1), "speedup@8")
	b.ReportMetric(float64(sp.Work)/float64(sp.Span), "parallelism")
}

// BenchmarkSpeedupAddN — E-SP1 (treeadd, depth 10).
func BenchmarkSpeedupAddN(b *testing.B) {
	benchSpeedup(b, progs.TreeAdd, progs.BalancedTreeSetup(10), "root")
}

// BenchmarkSpeedupReverse — E-SP1 (treereverse, depth 10).
func BenchmarkSpeedupReverse(b *testing.B) {
	benchSpeedup(b, progs.TreeReverse, progs.BalancedTreeSetup(10), "root")
}

// BenchmarkSpeedupTreeSum — E-SP1 (read-only double traversal, depth 10).
func BenchmarkSpeedupTreeSum(b *testing.B) {
	benchSpeedup(b, progs.TreeSum, progs.BalancedTreeSetup(10), "root")
}

// BenchmarkSpeedupListNegativeControl — E-SP1 (no parallelism in a chain).
func BenchmarkSpeedupListNegativeControl(b *testing.B) {
	benchSpeedup(b, progs.ListIncrement, progs.ListSetup(512), "cur")
}

// BenchmarkBitonicSpeedup — E-S6: the §6 case study.
func BenchmarkBitonicSpeedup(b *testing.B) {
	benchSpeedup(b, progs.BitonicMerge, progs.BitonicTreeSetup(10), "root")
}

// BenchmarkAblationReadOnly — E-AB1: parallel statements found with and
// without the §5.2 refinement.
func BenchmarkAblationReadOnly(b *testing.B) {
	prog, err := progs.Compile(progs.TreeSum)
	if err != nil {
		b.Fatal(err)
	}
	info, err := analysis.Analyze(context.Background(), prog, analysis.Options{ExternalRoots: []string{"root"}})
	if err != nil {
		b.Fatal(err)
	}
	b.Run("with-readonly", func(b *testing.B) {
		var n int
		for i := 0; i < b.N; i++ {
			n = par.Parallelize(info, par.DefaultOptions).Stats.ParStatements
		}
		b.ReportMetric(float64(n), "parstmts")
	})
	b.Run("without-readonly", func(b *testing.B) {
		opts := par.Options{FuseBasic: true, FuseCalls: true, FuseSequences: true}
		var n int
		for i := 0; i < b.N; i++ {
			n = par.Parallelize(info, opts).Stats.ParStatements
		}
		b.ReportMetric(float64(n), "parstmts")
	})
}

// BenchmarkAblationWidening — E-AB2: analysis cost and result across
// widening limits.
func BenchmarkAblationWidening(b *testing.B) {
	prog, err := progs.Compile(progs.AddAndReverse)
	if err != nil {
		b.Fatal(err)
	}
	for _, lim := range []path.Limits{
		{MaxExact: 1, MaxSegs: 1, MaxPaths: 1},
		{MaxExact: 4, MaxSegs: 4, MaxPaths: 4},
		path.DefaultLimits,
	} {
		lim := lim
		name := "paths=" + string(rune('0'+lim.MaxPaths))
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := analysis.Analyze(context.Background(), prog, analysis.Options{Limits: lim}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkMachineSchedule — scheduling cost of the simulated machine on a
// large fork-join trace.
func BenchmarkMachineSchedule(b *testing.B) {
	pipe := mustPipeline(b, progs.TreeAdd, "root")
	res, err := pipe.RunParallel(interp.Config{RecordTrace: true}, progs.BalancedTreeSetup(12))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if runtime.Makespan(res.Trace, runtime.MachineConfig{Procs: 8}) == 0 {
			b.Fatal("empty makespan")
		}
	}
}

// BenchmarkInterpreter — raw sequential interpretation throughput.
func BenchmarkInterpreter(b *testing.B) {
	prog, err := progs.Compile(progs.TreeAdd)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := interp.Run(prog, interp.Config{}, progs.BalancedTreeSetup(10)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEndToEnd — the full pipeline: parse through parallelize.
func BenchmarkEndToEnd(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(progs.AddAndReverse, core.DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCorpusAnalysis — the analyze+parallelize hot path over every
// corpus program: the benchmark cmd/silbench snapshots into
// BENCH_analysis.json, and the primary target of the interning /
// memoization / concurrent-fixpoint work.
func BenchmarkCorpusAnalysis(b *testing.B) {
	for _, e := range progs.Catalog {
		e := e
		prog, err := progs.Compile(e.Source)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(e.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				info, err := analysis.Analyze(context.Background(), prog, analysis.Options{ExternalRoots: e.Roots})
				if err != nil {
					b.Fatal(err)
				}
				par.Parallelize(info, par.DefaultOptions)
			}
		})
	}
}

// BenchmarkCorpusAnalysisMerged — the same hot path with context-sensitive
// summaries disabled (MaxContexts < 0): the pre-context behavior the
// regression gate bounds at <15% vs the seed, and the reference point for
// the context-table overhead.
func BenchmarkCorpusAnalysisMerged(b *testing.B) {
	for _, e := range progs.Catalog {
		e := e
		prog, err := progs.Compile(e.Source)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(e.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				info, err := analysis.Analyze(context.Background(), prog, analysis.Options{ExternalRoots: e.Roots, MaxContexts: -1})
				if err != nil {
					b.Fatal(err)
				}
				par.Parallelize(info, par.DefaultOptions)
			}
		})
	}
}

// BenchmarkCorpusAnalysisCap1 — the eviction-stressed configuration: a
// context-table cap of 1 forces every second distinct context through the
// evict-and-redirect path into the (then activated) merged fallback, the
// worst case for the lazy-fallback machinery.
func BenchmarkCorpusAnalysisCap1(b *testing.B) {
	for _, e := range progs.Catalog {
		e := e
		prog, err := progs.Compile(e.Source)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(e.Name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				info, err := analysis.Analyze(context.Background(), prog, analysis.Options{ExternalRoots: e.Roots, MaxContexts: 1})
				if err != nil {
					b.Fatal(err)
				}
				par.Parallelize(info, par.DefaultOptions)
			}
		})
	}
}

// BenchmarkAnalysisWorkers — scaling of the concurrent interprocedural
// fixpoint across worker-pool sizes on the Figure 7 program.
func BenchmarkAnalysisWorkers(b *testing.B) {
	prog, err := progs.Compile(progs.AddAndReverse)
	if err != nil {
		b.Fatal(err)
	}
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := analysis.Analyze(context.Background(), prog, analysis.Options{Workers: w}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
