// Package par implements the parallelizer of §5: it rewrites a SIL
// program, fusing adjacent independent statements into the parallel
// statement s1 ‖ s2 ‖ … using the three interference analyses:
//
//   - basic statements via the read/write sets of §5.1 (Figure 4's
//     incremental grouping);
//   - procedure calls via the argument-relatedness test of §5.2 with the
//     read-only/update refinement;
//   - arbitrary adjacent statements (blocks, conditionals, calls mixed
//     with assignments) via the relative-location sequence analysis of
//     §5.3, applicable when the store is a TREE at that point.
//
// Applied to Figure 7's add_and_reverse, the output is exactly Figure 8.
package par

import (
	"repro/internal/analysis"
	"repro/internal/interfere"
	"repro/internal/matrix"
	"repro/internal/sil/ast"
)

// Options selects the enabled transformations (all on by default via
// DefaultOptions); the ablation benchmarks switch them individually.
type Options struct {
	// FuseBasic enables §5.1 fusion of basic statements.
	FuseBasic bool
	// FuseCalls enables §5.2 fusion of procedure calls (and call/statement
	// mixtures).
	FuseCalls bool
	// FuseSequences enables §5.3 fusion of compound adjacent statements.
	FuseSequences bool
	// UseReadOnly enables the read-only argument refinement of §5.2;
	// without it every handle argument counts as updated (the paper's
	// first approximation).
	UseReadOnly bool
	// MaxGroup bounds the width of one parallel statement (0 = unbounded).
	MaxGroup int
}

// DefaultOptions enables everything.
var DefaultOptions = Options{FuseBasic: true, FuseCalls: true, FuseSequences: true, UseReadOnly: true}

// Stats counts what the parallelizer did.
type Stats struct {
	ParStatements int // parallel statements created
	Branches      int // total branches across them
	LeafGroups    int // groups formed by §5.1/§5.2 leaf checks
	SeqGroups     int // groups formed by the §5.3 sequence analysis
}

// Result carries the transformed program. Leaf statements are shared with
// the input AST (so analysis matrices keyed by statement remain valid);
// blocks and control statements are rebuilt.
type Result struct {
	Prog  *ast.Program
	Stats Stats
}

// Parallelize rewrites the analyzed program. The original program is not
// modified.
func Parallelize(info *analysis.Info, opts Options) *Result {
	p := &parallelizer{info: info, opts: opts}
	out := &ast.Program{Name: info.Prog.Name, NamePos: info.Prog.NamePos}
	for _, d := range info.Prog.Decls {
		nd := *d
		nd.Body = p.block(d.Body)
		out.Decls = append(out.Decls, &nd)
	}
	return &Result{Prog: out, Stats: p.stats}
}

type parallelizer struct {
	info  *analysis.Info
	opts  Options
	stats Stats
	proc  string
}

// rebuild recursively transforms nested statements.
func (p *parallelizer) rebuild(s ast.Stmt) ast.Stmt {
	switch s := s.(type) {
	case *ast.Block:
		return p.block(s)
	case *ast.If:
		ns := *s
		ns.Then = p.rebuild(s.Then)
		if s.Else != nil {
			ns.Else = p.rebuild(s.Else)
		}
		return &ns
	case *ast.While:
		ns := *s
		ns.Body = p.rebuild(s.Body)
		return &ns
	case *ast.Par:
		ns := &ast.Par{}
		for _, b := range s.Branches {
			ns.Branches = append(ns.Branches, p.rebuild(b))
		}
		return ns
	default:
		return s
	}
}

// isLeaf reports whether the statement is handled by the §5.1/§5.2 checks.
func isLeaf(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.CallStmt:
		return true
	case *ast.Assign:
		_, isCall := s.Rhs.(*ast.CallExpr)
		return !isCall // x := f(…) needs the sequence machinery
	default:
		return false
	}
}

// leafCompatible checks one pair of leaves at matrix p0.
func (p *parallelizer) leafCompatible(a, b ast.Stmt, p0 *matrix.Matrix) bool {
	ca, aIsCall := a.(*ast.CallStmt)
	cb, bIsCall := b.(*ast.CallStmt)
	switch {
	case aIsCall && bIsCall:
		if !p.opts.FuseCalls {
			return false
		}
		return !interfere.CallsInterfere(p.info.Prog, p.info, p0, ca, cb, p.opts.UseReadOnly)
	case aIsCall:
		if !p.opts.FuseCalls || !p.opts.FuseBasic {
			return false
		}
		return !interfere.StmtCallInterfere(p.info.Prog, p.info, p0, b, ca, p.opts.UseReadOnly)
	case bIsCall:
		if !p.opts.FuseCalls || !p.opts.FuseBasic {
			return false
		}
		return !interfere.StmtCallInterfere(p.info.Prog, p.info, p0, a, cb, p.opts.UseReadOnly)
	default:
		if !p.opts.FuseBasic {
			return false
		}
		set, ok := interfere.Interference(a, b, p0)
		return ok && len(set) == 0
	}
}

// canAdd decides whether s can join the group executing in parallel from
// matrix p0.
func (p *parallelizer) canAdd(group []ast.Stmt, s ast.Stmt, p0 *matrix.Matrix) bool {
	if p.opts.MaxGroup > 0 && len(group) >= p.opts.MaxGroup {
		return false
	}
	allLeaves := isLeaf(s)
	for _, g := range group {
		if !isLeaf(g) {
			allLeaves = false
			break
		}
	}
	if allLeaves {
		for _, g := range group {
			if !p.leafCompatible(g, s, p0) {
				return false
			}
		}
		return true
	}
	if !p.opts.FuseSequences {
		return false
	}
	interferes, err := interfere.SequencesInterfere(p.info, p.proc, p0, group, []ast.Stmt{s}, p.opts.UseReadOnly)
	return err == nil && !interferes
}

func (p *parallelizer) block(b *ast.Block) *ast.Block {
	// Find the enclosing procedure once per body walk.
	if name, ok := p.info.ProcOf(b); ok {
		p.proc = name
	}
	out := &ast.Block{BeginPos: b.BeginPos}
	i := 0
	for i < len(b.Stmts) {
		first := b.Stmts[i]
		p0 := p.info.Before[first]
		group := []ast.Stmt{first}
		j := i + 1
		for p0 != nil && j < len(b.Stmts) && p.canAdd(group, b.Stmts[j], p0) {
			group = append(group, b.Stmts[j])
			j++
		}
		if len(group) == 1 {
			out.Stmts = append(out.Stmts, p.rebuild(first))
			i = j
			continue
		}
		par := &ast.Par{}
		leaves := true
		for _, g := range group {
			if !isLeaf(g) {
				leaves = false
			}
			par.Branches = append(par.Branches, p.rebuild(g))
		}
		p.stats.ParStatements++
		p.stats.Branches += len(group)
		if leaves {
			p.stats.LeafGroups++
		} else {
			p.stats.SeqGroups++
		}
		out.Stmts = append(out.Stmts, par)
		i = j
	}
	return out
}
