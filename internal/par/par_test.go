package par

import (
	"context"

	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/sil/ast"
	"repro/internal/sil/parser"
	"repro/internal/sil/printer"
	"repro/internal/sil/types"
)

const fig7Source = `
program add_and_reverse
procedure main()
  root, lside, rside: handle; i: int
begin
  root := new();
  build(root, 5);
  lside := root.left;
  rside := root.right;
  add_n(lside, 1);
  add_n(rside, -1);
  reverse(root)
end;
procedure build(h: handle; d: int)
  l, r: handle
begin
  if d > 0 then
  begin
    l := new();
    r := new();
    h.left := l;
    h.right := r;
    build(l, d - 1);
    build(r, d - 1)
  end
end;
procedure add_n(h: handle; n: int)
  l, r: handle
begin
  if h <> nil then
  begin
    h.value := h.value + n;
    l := h.left;
    r := h.right;
    add_n(l, n);
    add_n(r, n)
  end
end;
procedure reverse(h: handle)
  l, r: handle
begin
  if h <> nil then
  begin
    l := h.left;
    r := h.right;
    reverse(l);
    reverse(r);
    h.left := r;
    h.right := l
  end
end;
`

func analyze(t *testing.T, src string) *analysis.Info {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := types.Check(prog); err != nil {
		t.Fatalf("check: %v", err)
	}
	types.Normalize(prog)
	info, err := analysis.Analyze(context.Background(), prog, analysis.Options{})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return info
}

// TestFig8Parallelization: parallelizing Figure 7 produces exactly the
// parallel statements of Figure 8.
func TestFig8Parallelization(t *testing.T) {
	info := analyze(t, fig7Source)
	res := Parallelize(info, DefaultOptions)
	text := printer.Print(res.Prog)

	// Figure 8's parallel statements, one per line of the paper.
	for _, want := range []string{
		"lside := root.left || rside := root.right",
		"add_n(lside, 1) || add_n(rside, -1)",
		"h.value := h.value + n || l := h.left || r := h.right",
		"add_n(l, n) || add_n(r, n)",
		"l := h.left || r := h.right",
		"reverse(l) || reverse(r)",
		"h.left := r || h.right := l",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("missing Figure 8 line %q in output:\n%s", want, text)
		}
	}
	// reverse(root) must remain sequential after the add_n pair.
	if strings.Contains(text, "add_n(rside, -1) || reverse(root)") {
		t.Error("reverse(root) must not fuse with add_n calls")
	}
	// The builder's two recursive calls are also independent.
	if !strings.Contains(text, "build(l, d - 1) || build(r, d - 1)") {
		t.Errorf("build recursion should parallelize:\n%s", text)
	}
	// The transformed program still parses and checks.
	prog2, err := parser.Parse(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if err := types.Check(prog2); err != nil {
		t.Fatalf("recheck: %v", err)
	}
}

func TestFig8Stats(t *testing.T) {
	info := analyze(t, fig7Source)
	res := Parallelize(info, DefaultOptions)
	// main: 2 groups; add_n: 2; reverse: 3; build: >= 2 (l/r news may fuse
	// with updates depending on interference; the recursion pair must).
	if res.Stats.ParStatements < 8 {
		t.Errorf("stats = %+v, want at least 8 parallel statements", res.Stats)
	}
	if res.Stats.Branches < 2*res.Stats.ParStatements {
		t.Errorf("every parallel statement needs >= 2 branches: %+v", res.Stats)
	}
}

// TestNoFusionWhenDisabled: with everything off the program is unchanged.
func TestNoFusionWhenDisabled(t *testing.T) {
	info := analyze(t, fig7Source)
	res := Parallelize(info, Options{})
	if res.Stats.ParStatements != 0 {
		t.Errorf("no fusion expected: %+v", res.Stats)
	}
	var hasPar func(s ast.Stmt) bool
	hasPar = func(s ast.Stmt) bool {
		switch s := s.(type) {
		case *ast.Par:
			return true
		case *ast.Block:
			for _, st := range s.Stmts {
				if hasPar(st) {
					return true
				}
			}
		case *ast.If:
			if hasPar(s.Then) {
				return true
			}
			if s.Else != nil {
				return hasPar(s.Else)
			}
		case *ast.While:
			return hasPar(s.Body)
		}
		return false
	}
	for _, d := range res.Prog.Decls {
		if hasPar(d.Body) {
			t.Errorf("%s contains a parallel statement", d.Name)
		}
	}
}

// TestReadOnlyAblation: two calls reading the same subtree fuse only with
// the §5.2 refinement enabled (E-AB1).
func TestReadOnlyAblation(t *testing.T) {
	src := `
program readers
procedure main()
  root: handle; x, y: int
begin
  root := new();
  x := sum(root);
  y := sum(root)
end;
function sum(h: handle): int
  s, a, b: int; l, r: handle
begin
  if h = nil then s := 0
  else
  begin
    l := h.left;
    r := h.right;
    a := sum(l);
    b := sum(r);
    s := h.value + a + b
  end
end
return (s);
`
	info := analyze(t, src)
	with := Parallelize(info, DefaultOptions)
	if got := printer.Print(with.Prog); !strings.Contains(got, "x := sum(root) || y := sum(root)") {
		t.Errorf("read-only calls on the same tree should fuse:\n%s", got)
	}
	without := Parallelize(info, Options{FuseBasic: true, FuseCalls: true, FuseSequences: true, UseReadOnly: false})
	if got := printer.Print(without.Prog); strings.Contains(got, "sum(root) || ") {
		t.Errorf("without the refinement the calls must stay sequential:\n%s", got)
	}
}

// TestInterferingStatementsStaySequential: a chain of dependent updates
// must not fuse.
func TestInterferingStatementsStaySequential(t *testing.T) {
	src := `
program chain
procedure main()
  a, b: handle; x: int
begin
  a := new();
  b := a;
  x := a.value;
  a.value := x + 1;
  b.value := x + 2
end;
`
	info := analyze(t, src)
	res := Parallelize(info, DefaultOptions)
	text := printer.Print(res.Prog)
	if strings.Contains(text, "a.value := x + 1 || b.value := x + 2") {
		t.Errorf("aliased value writes must not fuse:\n%s", text)
	}
}

// TestSequenceFusionOfGuardedBlocks: two if-guarded updates of disjoint
// subtrees fuse via the §5.3 sequence analysis (they are not leaves).
func TestSequenceFusionOfGuardedBlocks(t *testing.T) {
	src := `
program guarded
procedure main()
  root, l, r: handle
begin
  root := new();
  l := new();
  r := new();
  root.left := l;
  root.right := r;
  if l <> nil then l.value := 1;
  if r <> nil then r.value := 2
end;
`
	info := analyze(t, src)
	res := Parallelize(info, DefaultOptions)
	if res.Stats.SeqGroups == 0 {
		t.Errorf("expected a sequence-fused group, stats = %+v\n%s",
			res.Stats, printer.Print(res.Prog))
	}
	// Without sequence fusion those statements stay sequential.
	res2 := Parallelize(info, Options{FuseBasic: true, FuseCalls: true, UseReadOnly: true})
	if res2.Stats.SeqGroups != 0 {
		t.Errorf("sequence fusion disabled but used: %+v", res2.Stats)
	}
}

// TestParallelizeIsRepeatable: running the transformation twice on a fresh
// analysis gives the same text.
func TestParallelizeIsRepeatable(t *testing.T) {
	a := printer.Print(Parallelize(analyze(t, fig7Source), DefaultOptions).Prog)
	b := printer.Print(Parallelize(analyze(t, fig7Source), DefaultOptions).Prog)
	if a != b {
		t.Error("parallelization not deterministic")
	}
}
