package par

import (
	"context"

	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/progs"
	"repro/internal/sil/printer"
)

func analyzeSrc(t *testing.T, src string, roots ...string) *analysis.Info {
	t.Helper()
	prog, err := progs.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := analysis.Analyze(context.Background(), prog, analysis.Options{ExternalRoots: roots})
	if err != nil {
		t.Fatal(err)
	}
	return info
}

// TestMutualWalkParallelizes: mutually recursive procedures still fuse
// their recursive call pairs.
func TestMutualWalkParallelizes(t *testing.T) {
	res := Parallelize(analyzeSrc(t, progs.MutualWalk, "root"), DefaultOptions)
	text := printer.Print(res.Prog)
	if !strings.Contains(text, "odd(l) || odd(r)") {
		t.Errorf("even should fuse odd calls:\n%s", text)
	}
	if !strings.Contains(text, "even(l) || even(r)") {
		t.Errorf("odd should fuse even calls:\n%s", text)
	}
}

// TestTreeCopyParallelizes: the recursive copies are independent and the
// link attachments of fresh nodes fuse with them.
func TestTreeCopyParallelizes(t *testing.T) {
	res := Parallelize(analyzeSrc(t, progs.TreeCopy, "root"), DefaultOptions)
	if res.Stats.ParStatements == 0 {
		t.Fatalf("treecopy found no parallelism:\n%s", printer.Print(res.Prog))
	}
	text := printer.Print(res.Prog)
	// The two recursive copies read disjoint subtrees (h.left vs h.right
	// via temporaries), so at least one fused group must contain both.
	if !strings.Contains(text, "||") {
		t.Errorf("no parallel statement:\n%s", text)
	}
}

// TestBitonicSwapPairFuses: the conditional subtree swap's two updates
// run in parallel, as in Figure 8's reverse.
func TestBitonicSwapPairFuses(t *testing.T) {
	res := Parallelize(analyzeSrc(t, progs.BitonicMerge, "root"), DefaultOptions)
	text := printer.Print(res.Prog)
	if !strings.Contains(text, "h.left := r || h.right := l") {
		t.Errorf("swap pair should fuse:\n%s", text)
	}
	if !strings.Contains(text, "bimerge(l) || bimerge(r)") {
		t.Errorf("recursion should fuse:\n%s", text)
	}
}

// TestListIncStaysSequential: no parallel statement in the chain walk.
func TestListIncStaysSequential(t *testing.T) {
	res := Parallelize(analyzeSrc(t, progs.ListIncrement, "cur"), DefaultOptions)
	if res.Stats.ParStatements != 0 {
		t.Errorf("list walk must stay sequential: %+v\n%s",
			res.Stats, printer.Print(res.Prog))
	}
}

// TestDagDemoSharedNodeWrites: in the DAG, a.left and b.left name the
// same node; value writes through the two aliases must not fuse (the
// alias function A of §5.1 catches them), while the edge installations
// themselves target distinct cells and may fuse.
func TestDagDemoSharedNodeWrites(t *testing.T) {
	src := progs.TreeDagDemo + "" // a.left := c; b.left := c; c.right := a
	info := analyzeSrc(t, src)
	res := Parallelize(info, DefaultOptions)
	text := printer.Print(res.Prog)
	// The installations write (a,left), (b,left), (c,right): disjoint
	// cells, so fusing them is sound (confirmed by the dynamic oracle in
	// the corpus equivalence test).
	if !strings.Contains(text, "||") {
		t.Errorf("dagdemo installations may fuse:\n%s", text)
	}
	// But writes through the two aliases of the shared node interfere.
	src2 := `
program aliaswrite
procedure main()
  a, b, c, t1, t2: handle
begin
  a := new();
  b := new();
  c := new();
  a.left := c;
  b.left := c;
  t1 := a.left;
  t2 := b.left;
  t1.value := 1;
  t2.value := 2
end;
`
	info2 := analyzeSrc(t, src2)
	res2 := Parallelize(info2, DefaultOptions)
	text2 := printer.Print(res2.Prog)
	if strings.Contains(text2, "t1.value := 1 || t2.value := 2") {
		t.Errorf("aliased value writes must not fuse:\n%s", text2)
	}
}

// TestMaxGroupBounds: the group width option is honored.
func TestMaxGroupBounds(t *testing.T) {
	src := `
program wide
procedure main()
  a, b, c, d: handle
begin
  a := new();
  b := new();
  c := new();
  d := new()
end;
`
	info := analyzeSrc(t, src)
	unbounded := Parallelize(info, DefaultOptions)
	if unbounded.Stats.Branches != 4 || unbounded.Stats.ParStatements != 1 {
		t.Errorf("unbounded: %+v", unbounded.Stats)
	}
	opts := DefaultOptions
	opts.MaxGroup = 2
	bounded := Parallelize(info, opts)
	if bounded.Stats.ParStatements != 2 || bounded.Stats.Branches != 4 {
		t.Errorf("bounded: %+v", bounded.Stats)
	}
}

// TestCtxPairFusesUnderContextSensitivity: in the ctxpair corpus program
// the fresh pair's value writes fuse only when the analysis keeps the two
// bump contexts apart — the merged summary re-imports the aliased-roots
// relation and blocks the fusion.
func TestCtxPairFusesUnderContextSensitivity(t *testing.T) {
	prog, err := progs.Compile(progs.CtxPair)
	if err != nil {
		t.Fatal(err)
	}
	run := func(maxContexts int) string {
		info, err := analysis.Analyze(context.Background(), prog, analysis.Options{
			ExternalRoots: []string{"ra", "rb"}, MaxContexts: maxContexts,
		})
		if err != nil {
			t.Fatal(err)
		}
		return printer.Print(Parallelize(info, DefaultOptions).Prog)
	}
	if text := run(0); !strings.Contains(text, "x.value := 1 || y.value := 2") {
		t.Errorf("context-sensitive mode should fuse the fresh pair's writes:\n%s", text)
	}
	if text := run(-1); strings.Contains(text, "x.value := 1 || y.value := 2") {
		t.Errorf("merged mode must not fuse (x and y possibly aliased there):\n%s", text)
	}
}
