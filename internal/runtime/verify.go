package runtime

import (
	"fmt"
	"sort"

	"repro/internal/heap"
	"repro/internal/interp"
	"repro/internal/sil/ast"
)

// Setup prepares the heap and main's environment before execution (the
// paper's "... build a tree at root ..." hook).
type Setup func(h *heap.Heap, env map[string]interp.Value)

// MeasureSpeedup executes the program once with trace recording and
// schedules the trace on every requested processor count.
func MeasureSpeedup(prog *ast.Program, cfg interp.Config, setup Setup, procs []int) (*Speedup, error) {
	cfg.RecordTrace = true
	cfg.Concurrent = false
	res, err := interp.Run(prog, cfg, setup)
	if err != nil {
		return nil, err
	}
	out := &Speedup{Work: res.Work, Span: res.Span, Procs: procs}
	for _, p := range procs {
		out.Makespans = append(out.Makespans, Makespan(res.Trace, MachineConfig{Procs: p}))
	}
	return out, nil
}

// stateFingerprint summarizes an execution's observable result: the final
// values of main's int variables and the shapes/values of the structures
// reachable from main's handles.
func stateFingerprint(res *interp.Result) string {
	names := make([]string, 0, len(res.Env))
	for n := range res.Env {
		names = append(names, n)
	}
	sort.Strings(names)
	out := ""
	for _, n := range names {
		v := res.Env[n]
		if v.IsHandle {
			out += fmt.Sprintf("%s=%s;", n, res.Heap.Fingerprint(v.Node))
		} else {
			out += fmt.Sprintf("%s=%d;", n, v.Int)
		}
	}
	return out
}

// EquivalenceReport is the outcome of CheckEquivalence.
type EquivalenceReport struct {
	SeqFingerprint string
	ParFingerprint string
	Races          []interp.Race
	SeqWork        int64
	ParWork        int64
	ParSpan        int64
}

// Equivalent reports whether the parallel program computed the same state
// with no dynamic races.
func (r *EquivalenceReport) Equivalent() bool {
	return r.SeqFingerprint == r.ParFingerprint && len(r.Races) == 0
}

// Err returns a descriptive error when the check failed.
func (r *EquivalenceReport) Err() error {
	if r.Equivalent() {
		return nil
	}
	if len(r.Races) > 0 {
		return fmt.Errorf("runtime: %d dynamic races: %s", len(r.Races), interp.RacesString(r.Races))
	}
	return fmt.Errorf("runtime: state diverged:\nseq: %s\npar: %s", r.SeqFingerprint, r.ParFingerprint)
}

// CheckEquivalence is the soundness oracle: it runs the sequential program
// and the parallelized program from identical initial states, compares the
// final observable states, and runs the dynamic race detector over every
// parallel statement. A correct parallelizer (per §5's analyses) always
// yields an Equivalent report.
func CheckEquivalence(seqProg, parProg *ast.Program, cfg interp.Config, setup Setup) (*EquivalenceReport, error) {
	seqCfg := cfg
	seqCfg.DetectRaces = false
	seqRes, err := interp.Run(seqProg, seqCfg, setup)
	if err != nil {
		return nil, fmt.Errorf("sequential run: %w", err)
	}
	parCfg := cfg
	parCfg.DetectRaces = true
	parRes, err := interp.Run(parProg, parCfg, setup)
	if err != nil {
		return nil, fmt.Errorf("parallel run: %w", err)
	}
	return &EquivalenceReport{
		SeqFingerprint: stateFingerprint(seqRes),
		ParFingerprint: stateFingerprint(parRes),
		Races:          parRes.Races,
		SeqWork:        seqRes.Work,
		ParWork:        parRes.Work,
		ParSpan:        parRes.Span,
	}, nil
}
