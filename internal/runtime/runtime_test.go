package runtime

import (
	"context"

	"testing"

	"repro/internal/analysis"
	"repro/internal/interp"
	"repro/internal/par"
	"repro/internal/progs"
)

func makespanOf(t *testing.T, tr *interp.Trace, procs int) int64 {
	t.Helper()
	return Makespan(tr, MachineConfig{Procs: procs})
}

func leaf(c int64) *interp.Trace { return &interp.Trace{Cost: c} }

func seq(kids ...*interp.Trace) *interp.Trace { return &interp.Trace{Kids: kids} }

func parT(kids ...*interp.Trace) *interp.Trace { return &interp.Trace{Par: true, Kids: kids} }

func TestMakespanSequentialChain(t *testing.T) {
	tr := seq(leaf(3), leaf(4), leaf(5))
	for _, p := range []int{1, 2, 8} {
		if got := makespanOf(t, tr, p); got != 12 {
			t.Errorf("P=%d makespan = %d, want 12", p, got)
		}
	}
}

func TestMakespanPerfectFork(t *testing.T) {
	tr := parT(leaf(10), leaf(10), leaf(10), leaf(10))
	if got := makespanOf(t, tr, 1); got != 40 {
		t.Errorf("P=1: %d, want 40", got)
	}
	if got := makespanOf(t, tr, 2); got != 20 {
		t.Errorf("P=2: %d, want 20", got)
	}
	if got := makespanOf(t, tr, 4); got != 10 {
		t.Errorf("P=4: %d, want 10", got)
	}
	if got := makespanOf(t, tr, 0); got != 10 {
		t.Errorf("P=inf: %d, want 10", got)
	}
}

func TestMakespanUnbalancedFork(t *testing.T) {
	tr := parT(leaf(30), leaf(10), leaf(10))
	if got := makespanOf(t, tr, 2); got != 30 {
		t.Errorf("P=2: %d, want 30 (30 ‖ 10+10)", got)
	}
}

func TestMakespanNestedForkJoin(t *testing.T) {
	// seq( par(5,5), 3 ): P=2 → 5 + 3 = 8; P=1 → 13.
	tr := seq(parT(leaf(5), leaf(5)), leaf(3))
	if got := makespanOf(t, tr, 2); got != 8 {
		t.Errorf("P=2: %d, want 8", got)
	}
	if got := makespanOf(t, tr, 1); got != 13 {
		t.Errorf("P=1: %d, want 13", got)
	}
}

func TestMakespanBrentBound(t *testing.T) {
	// Random-ish recursive trace: T_P must satisfy T∞ <= T_P <= T1/P + T∞.
	var gen func(d int) *interp.Trace
	gen = func(d int) *interp.Trace {
		if d == 0 {
			return leaf(int64(1 + d%3))
		}
		return seq(leaf(2), parT(gen(d-1), gen(d-1)), leaf(1))
	}
	tr := gen(7)
	work, span := tr.Work(), tr.Span()
	for _, p := range []int{1, 2, 3, 4, 8, 16} {
		got := makespanOf(t, tr, p)
		if got < span {
			t.Errorf("P=%d: makespan %d below span %d", p, got, span)
		}
		bound := work/int64(p) + span
		if got > bound {
			t.Errorf("P=%d: makespan %d above Brent bound %d", p, got, bound)
		}
	}
	if got := makespanOf(t, tr, 1); got != work {
		t.Errorf("P=1 must equal work: %d vs %d", got, work)
	}
}

func TestForkOverhead(t *testing.T) {
	tr := parT(leaf(5), leaf(5))
	plain := Makespan(tr, MachineConfig{Procs: 2})
	costly := Makespan(tr, MachineConfig{Procs: 2, ForkOverhead: 7})
	if costly != plain+7 {
		t.Errorf("overhead: %d vs %d+7", costly, plain)
	}
}

func TestMakespanNilAndEmpty(t *testing.T) {
	if Makespan(nil, MachineConfig{Procs: 2}) != 0 {
		t.Error("nil trace")
	}
	if got := Makespan(parT(), MachineConfig{Procs: 2}); got != 0 {
		t.Errorf("empty par: %d", got)
	}
}

// compileAndParallelize is the full pipeline helper.
func compileAndParallelize(t *testing.T, src string, roots ...string) (*analysis.Info, *par.Result) {
	t.Helper()
	prog, err := progs.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := analysis.Analyze(context.Background(), prog, analysis.Options{ExternalRoots: roots})
	if err != nil {
		t.Fatal(err)
	}
	return info, par.Parallelize(info, par.DefaultOptions)
}

func TestEquivalenceAddAndReverse(t *testing.T) {
	info, res := compileAndParallelize(t, progs.AddAndReverse)
	rep, err := CheckEquivalence(info.Prog, res.Prog, interp.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	if rep.ParSpan >= rep.ParWork {
		t.Errorf("parallelized add_and_reverse should have span < work: %d vs %d",
			rep.ParSpan, rep.ParWork)
	}
}

func TestEquivalenceCorpus(t *testing.T) {
	for _, e := range progs.Catalog {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			info, res := compileAndParallelize(t, e.Source, e.Roots...)
			var setup Setup
			if e.NeedsTree {
				if e.Name == "listinc" {
					setup = progs.ListSetup(64)
				} else {
					setup = progs.BalancedTreeSetup(6)
				}
			}
			rep, err := CheckEquivalence(info.Prog, res.Prog, interp.Config{}, setup)
			if err != nil {
				t.Fatal(err)
			}
			if err := rep.Err(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestSpeedupTreeAddScales(t *testing.T) {
	info, res := compileAndParallelize(t, progs.TreeAdd, "root")
	_ = info
	sp, err := MeasureSpeedup(res.Prog, interp.Config{}, progs.BalancedTreeSetup(10), []int{1, 2, 4, 8, 0})
	if err != nil {
		t.Fatal(err)
	}
	if sp.Makespans[0] != sp.Work {
		t.Errorf("P=1 = %d, want work %d", sp.Makespans[0], sp.Work)
	}
	if s2 := sp.SpeedupAt(1); s2 < 1.6 {
		t.Errorf("P=2 speedup = %.2f, want >= 1.6", s2)
	}
	if s8 := sp.SpeedupAt(3); s8 < 4 {
		t.Errorf("P=8 speedup = %.2f, want >= 4", s8)
	}
	// Monotone non-increasing makespans.
	for i := 1; i < len(sp.Makespans); i++ {
		if sp.Makespans[i] > sp.Makespans[i-1] {
			t.Errorf("makespan increased from P=%d to P=%d", sp.Procs[i-1], sp.Procs[i])
		}
	}
}

func TestSpeedupListIsFlat(t *testing.T) {
	_, res := compileAndParallelize(t, progs.ListIncrement, "cur")
	sp, err := MeasureSpeedup(res.Prog, interp.Config{}, progs.ListSetup(128), []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if s := sp.SpeedupAt(1); s > 1.05 {
		t.Errorf("list walk speedup = %.2f, want ~1 (no parallelism in a chain)", s)
	}
}

// TestSoundnessRandomPrograms is the central property test: for thousands
// of random programs, the parallelized version must compute the same state
// as the sequential original with zero dynamic races.
func TestSoundnessRandomPrograms(t *testing.T) {
	const trials = 300
	checked := 0
	for seed := int64(0); seed < trials; seed++ {
		src := progs.RandomProgram(seed)
		prog, err := progs.Compile(src)
		if err != nil {
			t.Fatalf("seed %d: compile: %v\n%s", seed, err, src)
		}
		info, err := analysis.Analyze(context.Background(), prog, analysis.Options{})
		if err != nil {
			t.Fatalf("seed %d: analyze: %v\n%s", seed, err, src)
		}
		res := par.Parallelize(info, par.DefaultOptions)
		rep, err := CheckEquivalence(info.Prog, res.Prog, interp.Config{MaxSteps: 500_000}, nil)
		if err != nil {
			// Both runs share semantics; an error (e.g. a random cyclic
			// structure making walk exceed the step limit) aborts the
			// sequential run first and the seed is skipped.
			continue
		}
		checked++
		if err := rep.Err(); err != nil {
			t.Errorf("seed %d: %v\nsource:\n%s", seed, err, src)
		}
	}
	if checked < trials/2 {
		t.Errorf("only %d/%d random programs were checkable", checked, trials)
	}
}

func TestSpeedupString(t *testing.T) {
	sp := &Speedup{Work: 100, Span: 10, Procs: []int{1, 2}, Makespans: []int64{100, 50}}
	s := sp.String()
	if s == "" || sp.SpeedupAt(1) != 2 {
		t.Errorf("Speedup rendering broken: %q", s)
	}
	zero := &Speedup{Work: 10, Procs: []int{1}, Makespans: []int64{0}}
	if zero.SpeedupAt(0) != 0 {
		t.Error("zero makespan guards division")
	}
}
