// Package runtime provides the execution substrate on which parallelized
// SIL programs are measured: a deterministic simulated multiprocessor
// (greedy list scheduling of the fork-join trace on P workers), speedup
// measurement across processor counts, and the sequential/parallel
// equivalence checker that serves as the soundness oracle for the static
// analyses. The paper reports no machine numbers; this simulator supplies
// the quantitative counterpart of its parallelization claims (E-SP1).
package runtime

import (
	"container/heap"
	"fmt"

	"repro/internal/interp"
)

// MachineConfig describes the simulated multiprocessor.
type MachineConfig struct {
	// Procs is the number of workers; 0 means unbounded (T∞).
	Procs int
	// ForkOverhead is charged once per parallel statement (spawn cost).
	ForkOverhead int64
}

// task is one node of the fork-join DAG.
type task struct {
	cost  int64
	succs []int32
	preds int32
}

// dagBuilder flattens a Trace into tasks with dependencies.
type dagBuilder struct {
	tasks        []task
	forkOverhead int64
}

func (b *dagBuilder) add(cost int64) int32 {
	b.tasks = append(b.tasks, task{cost: cost})
	return int32(len(b.tasks) - 1)
}

func (b *dagBuilder) edge(from, to int32) {
	b.tasks[from].succs = append(b.tasks[from].succs, to)
	b.tasks[to].preds++
}

// build converts tr into a sub-DAG and returns its (source, sink).
func (b *dagBuilder) build(tr *interp.Trace) (int32, int32) {
	if tr.Par {
		fork := b.add(tr.Cost + b.forkOverhead)
		join := b.add(0)
		if len(tr.Kids) == 0 {
			b.edge(fork, join)
			return fork, join
		}
		for _, k := range tr.Kids {
			s, t := b.build(k)
			b.edge(fork, s)
			b.edge(t, join)
		}
		return fork, join
	}
	// Sequential node: chain the cost (if any) and the kids.
	var first, last int32 = -1, -1
	link := func(s, t int32) {
		if first < 0 {
			first = s
		} else {
			b.edge(last, s)
		}
		last = t
	}
	if tr.Cost > 0 || len(tr.Kids) == 0 {
		n := b.add(tr.Cost)
		link(n, n)
	}
	for _, k := range tr.Kids {
		s, t := b.build(k)
		link(s, t)
	}
	return first, last
}

// finishHeap orders running tasks by completion time.
type finishHeap []struct {
	at int64
	id int32
}

func (h finishHeap) Len() int           { return len(h) }
func (h finishHeap) Less(i, j int) bool { return h[i].at < h[j].at }
func (h finishHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *finishHeap) Push(x any) {
	*h = append(*h, x.(struct {
		at int64
		id int32
	}))
}
func (h *finishHeap) Pop() any {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// Makespan simulates greedy list scheduling (FIFO ready queue) of the
// trace's fork-join DAG on the configured machine and returns the
// completion time. Greedy scheduling realizes Brent's bound
// T_P <= T1/P + T∞, so the simulated numbers always land between the
// ideal and the critical path.
func Makespan(tr *interp.Trace, cfg MachineConfig) int64 {
	if tr == nil {
		return 0
	}
	b := &dagBuilder{forkOverhead: cfg.ForkOverhead}
	src, _ := b.build(tr)
	if src < 0 {
		return 0
	}
	procs := cfg.Procs
	if procs <= 0 {
		procs = len(b.tasks) // effectively unbounded
	}
	ready := make([]int32, 0, 64)
	ready = append(ready, src)
	running := &finishHeap{}
	var now, makespan int64
	idle := procs
	for len(ready) > 0 || running.Len() > 0 {
		// Start as many ready tasks as workers allow.
		for idle > 0 && len(ready) > 0 {
			id := ready[0]
			ready = ready[1:]
			idle--
			heap.Push(running, struct {
				at int64
				id int32
			}{now + b.tasks[id].cost, id})
		}
		// Advance to the next completion.
		done := heap.Pop(running).(struct {
			at int64
			id int32
		})
		now = done.at
		if now > makespan {
			makespan = now
		}
		idle++
		for _, s := range b.tasks[done.id].succs {
			b.tasks[s].preds--
			if b.tasks[s].preds == 0 {
				ready = append(ready, s)
			}
		}
		// Drain every other task finishing at the same instant.
		for running.Len() > 0 && (*running)[0].at == now {
			d2 := heap.Pop(running).(struct {
				at int64
				id int32
			})
			idle++
			for _, s := range b.tasks[d2.id].succs {
				b.tasks[s].preds--
				if b.tasks[s].preds == 0 {
					ready = append(ready, s)
				}
			}
		}
	}
	return makespan
}

// Speedup is one program's scaling measurement on the simulated machine.
type Speedup struct {
	Work      int64 // T1
	Span      int64 // T∞
	Procs     []int
	Makespans []int64
}

// SpeedupAt returns T1 / T_P for the i-th processor count.
func (s *Speedup) SpeedupAt(i int) float64 {
	if s.Makespans[i] == 0 {
		return 0
	}
	return float64(s.Work) / float64(s.Makespans[i])
}

// String renders one table row per processor count.
func (s *Speedup) String() string {
	out := fmt.Sprintf("T1=%d T∞=%d parallelism=%.2f\n", s.Work, s.Span,
		float64(s.Work)/float64(max64(s.Span, 1)))
	for i, p := range s.Procs {
		out += fmt.Sprintf("  P=%-4d T_P=%-10d speedup=%.2f\n", p, s.Makespans[i], s.SpeedupAt(i))
	}
	return out
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
