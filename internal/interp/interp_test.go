package interp

import (
	"strings"
	"testing"

	"repro/internal/heap"
	"repro/internal/sil/ast"
	"repro/internal/sil/parser"
	"repro/internal/sil/types"
)

func compile(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := types.Check(prog); err != nil {
		t.Fatalf("check: %v", err)
	}
	types.Normalize(prog)
	return prog
}

func run(t *testing.T, src string, cfg Config) *Result {
	t.Helper()
	res, err := Run(compile(t, src), cfg, nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func TestScalarArithmetic(t *testing.T) {
	res := run(t, `
program p
procedure main()
  x, y: int
begin
  x := 2 + 3 * 4;
  y := (x - 4) / 2 - -1
end;`, Config{})
	if got := res.Env["x"].Int; got != 14 {
		t.Errorf("x = %d", got)
	}
	if got := res.Env["y"].Int; got != 6 {
		t.Errorf("y = %d", got)
	}
}

func TestBuildAndReadTree(t *testing.T) {
	res := run(t, `
program p
procedure main()
  a, b: handle; x: int
begin
  a := new();
  b := new();
  a.value := 1;
  b.value := 2;
  a.left := b;
  x := a.left.value
end;`, Config{})
	if got := res.Env["x"].Int; got != 2 {
		t.Errorf("x = %d", got)
	}
	if res.Heap.Len() != 2 {
		t.Errorf("heap = %d nodes", res.Heap.Len())
	}
}

func TestWhileLoop(t *testing.T) {
	res := run(t, `
program p
procedure main()
  x, acc: int
begin
  x := 5;
  acc := 0;
  while x > 0 do
  begin
    acc := acc + x;
    x := x - 1
  end
end;`, Config{})
	if got := res.Env["acc"].Int; got != 15 {
		t.Errorf("acc = %d", got)
	}
}

func TestIfElseAndBooleans(t *testing.T) {
	res := run(t, `
program p
procedure main()
  x, y: int; a: handle
begin
  if a = nil and not (1 > 2) then x := 10 else x := 20;
  if x = 10 or x = 30 then y := 1 else y := 2
end;`, Config{})
	if res.Env["x"].Int != 10 || res.Env["y"].Int != 1 {
		t.Errorf("x=%v y=%v", res.Env["x"], res.Env["y"])
	}
}

func TestProcedureCallByValue(t *testing.T) {
	// Reassigning the formal does not affect the caller, but updates
	// through the handle do (§3.2: only the handle value is copied).
	res := run(t, `
program p
procedure main()
  a: handle; x: int
begin
  a := new();
  a.value := 1;
  touch(a);
  x := a.value
end;
procedure touch(h: handle)
begin
  h.value := 42;
  h := nil
end;`, Config{})
	if got := res.Env["x"].Int; got != 42 {
		t.Errorf("x = %d", got)
	}
	if res.Env["a"].Node.IsNil() {
		t.Error("caller's handle must survive callee reassignment")
	}
}

func TestFunctionReturn(t *testing.T) {
	res := run(t, `
program p
function double(n: int): int
  r: int
begin
  r := n + n
end
return (r);
procedure main()
  x: int
begin
  x := double(21)
end;`, Config{})
	if got := res.Env["x"].Int; got != 42 {
		t.Errorf("x = %d", got)
	}
}

func TestRecursionTreeSum(t *testing.T) {
	// Build a depth-3 tree via setup, sum values recursively.
	src := `
program p
function sum(h: handle): int
  s, sl, sr: int
begin
  if h = nil then s := 0
  else
  begin
    sl := sum(h.left);
    sr := sum(h.right);
    s := h.value + sl + sr
  end
end
return (s);
procedure main()
  root: handle; total: int
begin
  total := sum(root)
end;`
	prog := compile(t, src)
	var want int64
	res, err := Run(prog, Config{}, func(h *heap.Heap, env map[string]Value) {
		root := h.BuildBalanced(3, 1)
		env["root"] = HandleV(root)
		for id := range h.Reachable(root) {
			v, _ := h.Value(id)
			want += v
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Env["total"].Int; got != want {
		t.Errorf("total = %d, want %d", got, want)
	}
}

func TestNilDereferenceError(t *testing.T) {
	prog := compile(t, `
program p
procedure main()
  a: handle; x: int
begin
  x := a.value
end;`)
	if _, err := Run(prog, Config{}, nil); err == nil || !strings.Contains(err.Error(), "nil handle") {
		t.Errorf("want nil deref error, got %v", err)
	}
}

func TestDivisionByZero(t *testing.T) {
	prog := compile(t, `
program p
procedure main()
  x: int
begin
  x := 1 / (x - x)
end;`)
	if _, err := Run(prog, Config{}, nil); err == nil || !strings.Contains(err.Error(), "division by zero") {
		t.Errorf("want division error, got %v", err)
	}
}

func TestStepLimit(t *testing.T) {
	prog := compile(t, `
program p
procedure main()
  x: int
begin
  while 1 = 1 do x := x + 1
end;`)
	if _, err := Run(prog, Config{MaxSteps: 1000}, nil); err == nil || !strings.Contains(err.Error(), "step limit") {
		t.Errorf("want step limit error, got %v", err)
	}
}

func TestWorkAndSpanSequential(t *testing.T) {
	res := run(t, `
program p
procedure main()
  x, y: int
begin
  x := 1;
  y := 2
end;`, Config{})
	if res.Work != res.Span {
		t.Errorf("sequential program: work %d != span %d", res.Work, res.Span)
	}
	if res.Work != 2 {
		t.Errorf("work = %d, want 2", res.Work)
	}
}

func TestWorkAndSpanParallel(t *testing.T) {
	res := run(t, `
program p
procedure main()
  x, y, z: int
begin
  x := 1 || y := 2 || z := 3
end;`, Config{})
	if res.Work != 3 {
		t.Errorf("work = %d, want 3", res.Work)
	}
	if res.Span != 1 {
		t.Errorf("span = %d, want 1", res.Span)
	}
}

func TestParallelDeterministicSemantics(t *testing.T) {
	res := run(t, `
program p
procedure main()
  a, b: handle; x, y: int
begin
  a := new() || b := new();
  a.value := 1 || b.value := 2;
  x := a.value || y := b.value
end;`, Config{})
	if res.Env["x"].Int != 1 || res.Env["y"].Int != 2 {
		t.Errorf("x=%v y=%v", res.Env["x"], res.Env["y"])
	}
}

func TestRaceDetectorVarConflict(t *testing.T) {
	res := run(t, `
program p
procedure main()
  x, y: int
begin
  x := 1 || y := x
end;`, Config{DetectRaces: true})
	if len(res.Races) != 1 {
		t.Fatalf("races = %v", res.Races)
	}
	if res.Races[0].Kind != "read/write" {
		t.Errorf("kind = %s", res.Races[0].Kind)
	}
}

func TestRaceDetectorFieldConflict(t *testing.T) {
	// Example 2 of Figure 6: x := a.left reads the same left field that
	// b.left := nil writes, when a and b alias.
	res := run(t, `
program p
procedure main()
  a, b, x, n: handle
begin
  a := new();
  b := a;
  x := a.left || b.left := n
end;`, Config{DetectRaces: true})
	found := false
	for _, r := range res.Races {
		if strings.Contains(r.Location, "left") {
			found = true
		}
	}
	if !found {
		t.Errorf("want left-field race, got %v", res.Races)
	}
}

func TestRaceDetectorNoFalsePositiveOnDisjointSubtrees(t *testing.T) {
	res := run(t, `
program p
procedure main()
  root, l, r: handle; x, y: int
begin
  root := new();
  l := new();
  r := new();
  root.left := l;
  root.right := r;
  l.value := 1 || r.value := 2
end;`, Config{DetectRaces: true})
	if len(res.Races) != 0 {
		t.Errorf("disjoint subtrees raced: %v", res.Races)
	}
}

func TestRaceDetectorNestedPar(t *testing.T) {
	// The inner parallel statement's accesses must propagate outward: the
	// outer conflict is between y and the inner branch writing y.
	res := run(t, `
program p
procedure main()
  x, y, z: int
begin
  begin x := 1 || y := 2 end || z := y
end;`, Config{DetectRaces: true})
	if len(res.Races) != 1 {
		t.Fatalf("races = %v", res.Races)
	}
}

func TestCheckStructureObservesDAG(t *testing.T) {
	res := run(t, `
program p
procedure main()
  a, b, c: handle
begin
  a := new();
  b := new();
  c := new();
  a.left := c;
  b.left := c
end;`, Config{CheckStructure: true})
	if res.Shape != heap.DAG {
		t.Errorf("worst shape = %v, want DAG", res.Shape)
	}
}

func TestCheckStructureObservesCycle(t *testing.T) {
	res := run(t, `
program p
procedure main()
  a, b: handle
begin
  a := new();
  b := new();
  a.left := b;
  b.left := a
end;`, Config{CheckStructure: true})
	if res.Shape != heap.Cyclic {
		t.Errorf("worst shape = %v, want CYCLE", res.Shape)
	}
}

func TestTraceWorkSpanConsistency(t *testing.T) {
	res := run(t, `
program p
procedure main()
  x, y, z: int
begin
  x := 1;
  y := 2 || z := 3;
  x := x + 1
end;`, Config{RecordTrace: true})
	if res.Trace == nil {
		t.Fatal("no trace")
	}
	if w := res.Trace.Work(); w != res.Work {
		t.Errorf("trace work %d != result work %d", w, res.Work)
	}
	if s := res.Trace.Span(); s != res.Span {
		t.Errorf("trace span %d != result span %d", s, res.Span)
	}
}

func TestConcurrentExecutionMatchesSequential(t *testing.T) {
	src := `
program p
procedure main()
  root: handle; total: int
begin
  build(root, 6);
  walk(root)
end;
procedure build(h: handle; d: int)
begin
  if d > 0 and h <> nil then
  begin
    h.left := new();
    h.right := new();
    build(h.left, d - 1);
    build(h.right, d - 1)
  end
end;
procedure walk(h: handle)
begin
  if h <> nil then
  begin
    h.value := h.value + 1;
    walk(h.left) || walk(h.right)
  end
end;
`
	setup := func(h *heap.Heap, env map[string]Value) {
		env["root"] = HandleV(h.Alloc())
	}
	seq, err := Run(compile(t, src), Config{}, setup)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		con, err := Run(compile(t, src), Config{Concurrent: true}, setup)
		if err != nil {
			t.Fatal(err)
		}
		sf := seq.Heap.Fingerprint(seq.Env["root"].Node)
		cf := con.Heap.Fingerprint(con.Env["root"].Node)
		if sf != cf {
			t.Fatalf("concurrent run diverged:\nseq %s\ncon %s", sf, cf)
		}
	}
}

func TestRacesString(t *testing.T) {
	s := RacesString([]Race{
		{Location: "v:1:x", Kind: "write/write"},
		{Location: "n:2:left", Kind: "read/write"},
	})
	if !strings.Contains(s, "v:1:x") || !strings.Contains(s, "n:2:left") {
		t.Errorf("RacesString = %q", s)
	}
}
