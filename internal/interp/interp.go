// Package interp executes SIL programs on the concrete heap. It provides:
//
//   - call-by-value semantics per §3.2 (handles are node names; passing a
//     handle copies the name, not the structure);
//   - the parallel statement s1 || s2 || …, executed either deterministically
//     (branches in order, used as the semantic reference) or concurrently
//     with real goroutines (statement-level atomicity);
//   - work/span accounting: Work is total operation cost (T1), Span is the
//     critical path (T∞) where parallel branches contribute their maximum;
//   - a dynamic race detector: in deterministic mode each parallel branch's
//     read and write locations are recorded and conflicting sibling accesses
//     are reported — the paper's §1 debugging application, and the oracle
//     for the static interference analysis' soundness tests;
//   - optional runtime structure checking (worst concrete shape observed).
package interp

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"repro/internal/heap"
	"repro/internal/sil/ast"
	"repro/internal/sil/token"
)

// CostModel assigns abstract time units to operations; the simulated
// machine in the runtime package schedules these costs.
type CostModel struct {
	Stmt int64 // any basic statement
	Cond int64 // evaluating an if/while condition
	Call int64 // procedure/function call overhead
	New  int64 // allocation
}

// DefaultCosts charges one unit per operation.
var DefaultCosts = CostModel{Stmt: 1, Cond: 1, Call: 1, New: 1}

// Config controls one execution.
type Config struct {
	// MaxSteps bounds the number of executed statements (0 = default).
	MaxSteps int64
	// Costs is the cost model (zero value = DefaultCosts).
	Costs CostModel
	// DetectRaces records per-branch access sets at every parallel
	// statement and reports conflicts (deterministic mode only).
	DetectRaces bool
	// RecordTrace builds the fork-join trace consumed by the simulated
	// multiprocessor.
	RecordTrace bool
	// CheckStructure classifies the reachable heap after every structure
	// update and records the worst shape observed.
	CheckStructure bool
	// Concurrent executes parallel branches on real goroutines with
	// statement-level atomicity instead of deterministic order.
	Concurrent bool
}

const defaultMaxSteps = 200_000_000

// Race describes one dynamic interference between parallel branches.
type Race struct {
	Pos      token.Pos // position of the parallel statement
	Location string    // conflicting location (variable or node field)
	Kind     string    // "write/write" or "read/write"
}

func (r Race) String() string {
	return fmt.Sprintf("%s: %s race on %s", r.Pos, r.Kind, r.Location)
}

// Trace is a fork-join execution trace. A leaf (no Kids) carries Cost;
// a Par node runs its Kids concurrently; a non-Par interior node runs them
// in sequence.
type Trace struct {
	Par  bool
	Cost int64
	Kids []*Trace
}

// Work returns the total cost of the trace (T1).
func (t *Trace) Work() int64 {
	if t == nil {
		return 0
	}
	w := t.Cost
	for _, k := range t.Kids {
		w += k.Work()
	}
	return w
}

// Span returns the critical-path cost of the trace (T∞).
func (t *Trace) Span() int64 {
	if t == nil {
		return 0
	}
	if t.Par {
		var max int64
		for _, k := range t.Kids {
			if s := k.Span(); s > max {
				max = s
			}
		}
		return t.Cost + max
	}
	s := t.Cost
	for _, k := range t.Kids {
		s += k.Span()
	}
	return s
}

// Result is the outcome of a run.
type Result struct {
	Heap  *heap.Heap
	Env   map[string]Value // main's variables at exit
	Work  int64            // T1
	Span  int64            // T∞
	Steps int64
	Races []Race
	Trace *Trace
	Shape heap.Shape // worst shape observed (CheckStructure only)
}

// Value is a SIL runtime value.
type Value struct {
	IsHandle bool
	Int      int64
	Node     heap.NodeID
}

// IntV makes an int value.
func IntV(v int64) Value { return Value{Int: v} }

// HandleV makes a handle value.
func HandleV(id heap.NodeID) Value { return Value{IsHandle: true, Node: id} }

func (v Value) String() string {
	if v.IsHandle {
		if v.Node.IsNil() {
			return "nil"
		}
		return fmt.Sprintf("node#%d", v.Node)
	}
	return fmt.Sprintf("%d", v.Int)
}

// Run executes prog starting at main. Setup, when non-nil, runs against the
// fresh heap and main's frame before the body (tests and benchmarks use it
// to build input structures "… build a tree at root …" as the paper's
// Figure 7 comment does).
func Run(prog *ast.Program, cfg Config, setup func(h *heap.Heap, env map[string]Value)) (*Result, error) {
	main := prog.Proc("main")
	if main == nil {
		return nil, fmt.Errorf("interp: program has no main")
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = defaultMaxSteps
	}
	if cfg.Costs == (CostModel{}) {
		cfg.Costs = DefaultCosts
	}
	ex := &exec{prog: prog, cfg: cfg, heap: heap.New()}
	fr := ex.newFrame(main)
	if setup != nil {
		setup(ex.heap, fr.vars)
	}
	var tr *Trace
	if cfg.RecordTrace {
		tr = &Trace{}
	}
	w, s, err := ex.stmt(fr, main.Body, tr)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Heap: ex.heap, Env: fr.vars, Work: w, Span: s,
		Steps: ex.steps, Races: ex.races, Trace: tr, Shape: ex.worst,
	}
	return res, nil
}

type frame struct {
	decl *ast.ProcDecl
	vars map[string]Value
	id   int
}

type exec struct {
	prog  *ast.Program
	cfg   Config
	heap  *heap.Heap
	steps int64
	races []Race
	worst heap.Shape

	// concMu serializes every basic statement in concurrent mode: the heap
	// and the frames are shared between parallel branches, and the paper's
	// parallel statements assume basic statements as atomic units.
	concMu sync.Mutex
	// stepMu guards the step and frame counters in concurrent mode.
	stepMu sync.Mutex
	frames int
	access []*accessSet // stack of active race-detection collectors
}

type accessSet struct {
	reads  map[string]bool
	writes map[string]bool
}

func newAccessSet() *accessSet {
	return &accessSet{reads: map[string]bool{}, writes: map[string]bool{}}
}

func (ex *exec) record(write bool, loc string) {
	if len(ex.access) == 0 {
		return
	}
	top := ex.access[len(ex.access)-1]
	if write {
		top.writes[loc] = true
	} else {
		top.reads[loc] = true
	}
}

func (ex *exec) newFrame(d *ast.ProcDecl) *frame {
	if ex.cfg.Concurrent {
		ex.stepMu.Lock()
		defer ex.stepMu.Unlock()
	}
	ex.frames++
	fr := &frame{decl: d, vars: make(map[string]Value), id: ex.frames}
	for _, v := range append(append([]*ast.VarDecl{}, d.Params...), d.Locals...) {
		if v.Type == ast.HandleT {
			fr.vars[v.Name] = HandleV(heap.Nil)
		} else {
			fr.vars[v.Name] = IntV(0)
		}
	}
	return fr
}

func (ex *exec) fuel(pos token.Pos) error {
	if ex.cfg.Concurrent {
		ex.stepMu.Lock()
		defer ex.stepMu.Unlock()
	}
	ex.steps++
	if ex.steps > ex.cfg.MaxSteps {
		return fmt.Errorf("%s: step limit (%d) exceeded — possible non-termination", pos, ex.cfg.MaxSteps)
	}
	return nil
}

// errAt wraps heap errors with a source position.
func errAt(pos token.Pos, err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%s: %v", pos, err)
}

func (ex *exec) varLoc(fr *frame, name string) string {
	return fmt.Sprintf("v:%d:%s", fr.id, name)
}

func nodeLoc(id heap.NodeID, field string) string {
	return fmt.Sprintf("n:%d:%s", id, field)
}

func (ex *exec) readVar(fr *frame, name string, pos token.Pos) (Value, error) {
	v, ok := fr.vars[name]
	if !ok {
		return Value{}, fmt.Errorf("%s: undeclared variable %s", pos, name)
	}
	ex.record(false, ex.varLoc(fr, name))
	return v, nil
}

func (ex *exec) writeVar(fr *frame, name string, v Value, pos token.Pos) error {
	if _, ok := fr.vars[name]; !ok {
		return fmt.Errorf("%s: undeclared variable %s", pos, name)
	}
	ex.record(true, ex.varLoc(fr, name))
	fr.vars[name] = v
	return nil
}

// stmt executes s, returning its (work, span). The trace node tr, when
// non-nil, accumulates the fork-join shape: sequential cost folds into the
// last leaf, parallel statements append Par children.
func (ex *exec) stmt(fr *frame, s ast.Stmt, tr *Trace) (int64, int64, error) {
	switch s := s.(type) {
	case *ast.Block:
		var w, sp int64
		for _, st := range s.Stmts {
			bw, bs, err := ex.stmt(fr, st, tr)
			if err != nil {
				return 0, 0, err
			}
			w += bw
			sp += bs
		}
		return w, sp, nil
	case *ast.Par:
		return ex.parStmt(fr, s, tr)
	case *ast.If:
		if err := ex.fuel(s.Pos()); err != nil {
			return 0, 0, err
		}
		c := ex.cfg.Costs.Cond
		addCost(tr, c)
		cond, err := ex.cond(fr, s.Cond)
		if err != nil {
			return 0, 0, err
		}
		var w, sp int64
		if cond {
			w, sp, err = ex.stmt(fr, s.Then, tr)
		} else if s.Else != nil {
			w, sp, err = ex.stmt(fr, s.Else, tr)
		}
		if err != nil {
			return 0, 0, err
		}
		return w + c, sp + c, nil
	case *ast.While:
		var w, sp int64
		for {
			if err := ex.fuel(s.Pos()); err != nil {
				return 0, 0, err
			}
			c := ex.cfg.Costs.Cond
			addCost(tr, c)
			w += c
			sp += c
			cond, err := ex.cond(fr, s.Cond)
			if err != nil {
				return 0, 0, err
			}
			if !cond {
				return w, sp, nil
			}
			bw, bs, err := ex.stmt(fr, s.Body, tr)
			if err != nil {
				return 0, 0, err
			}
			w += bw
			sp += bs
		}
	case *ast.CallStmt:
		_, w, sp, err := ex.call(fr, s.Name, s.Args, s.Pos(), tr)
		return w, sp, err
	case *ast.Assign:
		if err := ex.fuel(s.Pos()); err != nil {
			return 0, 0, err
		}
		return ex.assign(fr, s, tr)
	}
	return 0, 0, fmt.Errorf("%s: unknown statement %T", s.Pos(), s)
}

func addCost(tr *Trace, c int64) {
	if tr == nil {
		return
	}
	if n := len(tr.Kids); n > 0 && !tr.Kids[n-1].Par && len(tr.Kids[n-1].Kids) == 0 {
		tr.Kids[n-1].Cost += c
		return
	}
	tr.Kids = append(tr.Kids, &Trace{Cost: c})
}

// parStmt executes a parallel statement. Deterministic mode runs branches
// in order, collecting access sets for race detection; concurrent mode
// spawns one goroutine per branch with statement-level atomicity.
func (ex *exec) parStmt(fr *frame, s *ast.Par, tr *Trace) (int64, int64, error) {
	if ex.cfg.Concurrent {
		return ex.parConcurrent(fr, s)
	}
	var parNode *Trace
	if tr != nil {
		parNode = &Trace{Par: true}
		tr.Kids = append(tr.Kids, parNode)
	}
	var work, maxSpan int64
	sets := make([]*accessSet, 0, len(s.Branches))
	for _, br := range s.Branches {
		var branchTr *Trace
		if parNode != nil {
			branchTr = &Trace{}
			parNode.Kids = append(parNode.Kids, branchTr)
		}
		if ex.cfg.DetectRaces {
			ex.access = append(ex.access, newAccessSet())
		}
		w, sp, err := ex.stmt(fr, br, branchTr)
		if err != nil {
			return 0, 0, err
		}
		if ex.cfg.DetectRaces {
			set := ex.access[len(ex.access)-1]
			ex.access = ex.access[:len(ex.access)-1]
			sets = append(sets, set)
			// Propagate to the enclosing collector, if any.
			if len(ex.access) > 0 {
				outer := ex.access[len(ex.access)-1]
				for l := range set.reads {
					outer.reads[l] = true
				}
				for l := range set.writes {
					outer.writes[l] = true
				}
			}
		}
		work += w
		if sp > maxSpan {
			maxSpan = sp
		}
	}
	if ex.cfg.DetectRaces {
		ex.reportConflicts(s.Pos(), sets)
	}
	return work, maxSpan, nil
}

func (ex *exec) reportConflicts(pos token.Pos, sets []*accessSet) {
	seen := map[string]bool{}
	add := func(kind, loc string) {
		key := kind + loc
		if !seen[key] {
			seen[key] = true
			ex.races = append(ex.races, Race{Pos: pos, Location: loc, Kind: kind})
		}
	}
	for i := 0; i < len(sets); i++ {
		for j := i + 1; j < len(sets); j++ {
			for loc := range sets[i].writes {
				if sets[j].writes[loc] {
					add("write/write", loc)
				}
				if sets[j].reads[loc] {
					add("read/write", loc)
				}
			}
			for loc := range sets[j].writes {
				if sets[i].reads[loc] {
					add("read/write", loc)
				}
			}
		}
	}
}

func (ex *exec) parConcurrent(fr *frame, s *ast.Par) (int64, int64, error) {
	var wg sync.WaitGroup
	errs := make([]error, len(s.Branches))
	works := make([]int64, len(s.Branches))
	spans := make([]int64, len(s.Branches))
	for i, br := range s.Branches {
		wg.Add(1)
		go func(i int, br ast.Stmt) {
			defer wg.Done()
			w, sp, err := ex.stmt(fr, br, nil)
			works[i], spans[i], errs[i] = w, sp, err
		}(i, br)
	}
	wg.Wait()
	var work, maxSpan int64
	for i := range s.Branches {
		if errs[i] != nil {
			return 0, 0, errs[i]
		}
		work += works[i]
		if spans[i] > maxSpan {
			maxSpan = spans[i]
		}
	}
	return work, maxSpan, nil
}

// lock acquires statement-level atomicity in concurrent mode.
func (ex *exec) lock(fr *frame) func() {
	if !ex.cfg.Concurrent {
		return func() {}
	}
	_ = fr
	ex.concMu.Lock()
	done := false
	return func() {
		if !done {
			done = true
			ex.concMu.Unlock()
		}
	}
}

func (ex *exec) assign(fr *frame, s *ast.Assign, tr *Trace) (int64, int64, error) {
	unlock := ex.lock(fr)
	defer unlock()
	cost := ex.cfg.Costs.Stmt
	// Function-call right sides release the lock around the call.
	if call, ok := s.Rhs.(*ast.CallExpr); ok {
		unlock()
		v, w, sp, err := ex.call(fr, call.Name, call.Args, call.Pos(), tr)
		if err != nil {
			return 0, 0, err
		}
		unlock2 := ex.lock(fr)
		defer unlock2()
		lhs, ok := s.Lhs.(*ast.VarLV)
		if !ok {
			return 0, 0, fmt.Errorf("%s: function result must be assigned to a variable", s.Pos())
		}
		if err := ex.writeVar(fr, lhs.Name, v, lhs.Pos()); err != nil {
			return 0, 0, err
		}
		addCost(tr, cost)
		return w + cost, sp + cost, nil
	}
	if _, ok := s.Rhs.(*ast.NewExpr); ok {
		cost = ex.cfg.Costs.New
	}
	addCost(tr, cost)
	v, err := ex.expr(fr, s.Rhs)
	if err != nil {
		return 0, 0, err
	}
	switch lhs := s.Lhs.(type) {
	case *ast.VarLV:
		if err := ex.writeVar(fr, lhs.Name, v, lhs.Pos()); err != nil {
			return 0, 0, err
		}
	case *ast.FieldLV:
		base, err := ex.readVar(fr, lhs.Base, lhs.Pos())
		if err != nil {
			return 0, 0, err
		}
		if !base.IsHandle {
			return 0, 0, fmt.Errorf("%s: %s is not a handle", lhs.Pos(), lhs.Base)
		}
		switch lhs.Field {
		case ast.Value:
			if v.IsHandle {
				return 0, 0, fmt.Errorf("%s: value field needs an int", lhs.Pos())
			}
			ex.record(true, nodeLoc(base.Node, "value"))
			if err := errAt(lhs.Pos(), ex.heap.SetValue(base.Node, v.Int)); err != nil {
				return 0, 0, err
			}
		case ast.Left, ast.Right:
			if !v.IsHandle {
				return 0, 0, fmt.Errorf("%s: link field needs a handle", lhs.Pos())
			}
			f := heap.Left
			if lhs.Field == ast.Right {
				f = heap.Right
			}
			ex.record(true, nodeLoc(base.Node, f.String()))
			if err := errAt(lhs.Pos(), ex.heap.SetLink(base.Node, f, v.Node)); err != nil {
				return 0, 0, err
			}
			if ex.cfg.CheckStructure {
				// Sharing is tracked exactly via heap indegrees; any new
				// cycle must be reachable from the updated node.
				if ex.heap.AnyShared() && ex.worst < heap.DAG {
					ex.worst = heap.DAG
				}
				if ex.worst < heap.Cyclic && ex.heap.HasCycleFrom(base.Node) {
					ex.worst = heap.Cyclic
				}
			}
		}
	}
	return cost, cost, nil
}

func (ex *exec) call(fr *frame, name string, args []ast.Expr, pos token.Pos, tr *Trace) (Value, int64, int64, error) {
	if err := ex.fuel(pos); err != nil {
		return Value{}, 0, 0, err
	}
	callee := ex.prog.Proc(name)
	if callee == nil {
		return Value{}, 0, 0, fmt.Errorf("%s: call to undeclared %s", pos, name)
	}
	if len(args) != len(callee.Params) {
		return Value{}, 0, 0, fmt.Errorf("%s: %s wants %d args, got %d", pos, name, len(callee.Params), len(args))
	}
	vals := make([]Value, len(args))
	unlock := ex.lock(fr)
	for i, a := range args {
		v, err := ex.expr(fr, a)
		if err != nil {
			unlock()
			return Value{}, 0, 0, err
		}
		vals[i] = v
	}
	unlock()
	nf := ex.newFrame(callee)
	for i, p := range callee.Params {
		if p.Type == ast.HandleT && !vals[i].IsHandle || p.Type == ast.IntT && vals[i].IsHandle {
			return Value{}, 0, 0, fmt.Errorf("%s: argument %d of %s has wrong type", pos, i+1, name)
		}
		nf.vars[p.Name] = vals[i]
	}
	c := ex.cfg.Costs.Call
	addCost(tr, c)
	w, sp, err := ex.stmt(nf, callee.Body, tr)
	if err != nil {
		return Value{}, 0, 0, err
	}
	var ret Value
	if callee.IsFunction() {
		ret = nf.vars[callee.ReturnVar]
	}
	return ret, w + c, sp + c, nil
}

// cond evaluates a boolean condition.
func (ex *exec) cond(fr *frame, e ast.Expr) (bool, error) {
	unlock := ex.lock(fr)
	defer unlock()
	return ex.condLocked(fr, e)
}

func (ex *exec) condLocked(fr *frame, e ast.Expr) (bool, error) {
	switch e := e.(type) {
	case *ast.Unary:
		if e.Op == ast.Not {
			v, err := ex.condLocked(fr, e.X)
			return !v, err
		}
	case *ast.Binary:
		switch e.Op {
		case ast.And:
			l, err := ex.condLocked(fr, e.X)
			if err != nil || !l {
				return false, err
			}
			return ex.condLocked(fr, e.Y)
		case ast.Or:
			l, err := ex.condLocked(fr, e.X)
			if err != nil || l {
				return l, err
			}
			return ex.condLocked(fr, e.Y)
		case ast.Eq, ast.Neq, ast.Lt, ast.Gt, ast.Leq, ast.Geq:
			x, err := ex.expr(fr, e.X)
			if err != nil {
				return false, err
			}
			y, err := ex.expr(fr, e.Y)
			if err != nil {
				return false, err
			}
			return compare(e.Op, x, y, e.Pos())
		}
	}
	return false, fmt.Errorf("%s: expression is not a condition", e.Pos())
}

func compare(op ast.Op, x, y Value, pos token.Pos) (bool, error) {
	if x.IsHandle != y.IsHandle {
		return false, fmt.Errorf("%s: comparing handle with int", pos)
	}
	if x.IsHandle {
		switch op {
		case ast.Eq:
			return x.Node == y.Node, nil
		case ast.Neq:
			return x.Node != y.Node, nil
		default:
			return false, fmt.Errorf("%s: handles support only = and <>", pos)
		}
	}
	switch op {
	case ast.Eq:
		return x.Int == y.Int, nil
	case ast.Neq:
		return x.Int != y.Int, nil
	case ast.Lt:
		return x.Int < y.Int, nil
	case ast.Gt:
		return x.Int > y.Int, nil
	case ast.Leq:
		return x.Int <= y.Int, nil
	case ast.Geq:
		return x.Int >= y.Int, nil
	}
	return false, fmt.Errorf("%s: bad comparison", pos)
}

// expr evaluates a value expression (no calls — normalization hoists them;
// the assign path handles the x := f(…) basic form directly).
func (ex *exec) expr(fr *frame, e ast.Expr) (Value, error) {
	switch e := e.(type) {
	case *ast.IntLit:
		return IntV(e.Val), nil
	case *ast.NilLit:
		return HandleV(heap.Nil), nil
	case *ast.NewExpr:
		return HandleV(ex.heap.Alloc()), nil
	case *ast.VarRef:
		return ex.readVar(fr, e.Name, e.Pos())
	case *ast.FieldRef:
		base, err := ex.readVar(fr, e.Base, e.Pos())
		if err != nil {
			return Value{}, err
		}
		if !base.IsHandle {
			return Value{}, fmt.Errorf("%s: %s is not a handle", e.Pos(), e.Base)
		}
		cur := base.Node
		for _, f := range e.Chain {
			hf := heap.Left
			if f == ast.Right {
				hf = heap.Right
			}
			ex.record(false, nodeLoc(cur, hf.String()))
			next, err := ex.heap.Link(cur, hf)
			if err != nil {
				return Value{}, errAt(e.Pos(), err)
			}
			cur = next
		}
		switch e.Field {
		case ast.Value:
			ex.record(false, nodeLoc(cur, "value"))
			v, err := ex.heap.Value(cur)
			if err != nil {
				return Value{}, errAt(e.Pos(), err)
			}
			return IntV(v), nil
		default:
			hf := heap.Left
			if e.Field == ast.Right {
				hf = heap.Right
			}
			ex.record(false, nodeLoc(cur, hf.String()))
			id, err := ex.heap.Link(cur, hf)
			if err != nil {
				return Value{}, errAt(e.Pos(), err)
			}
			return HandleV(id), nil
		}
	case *ast.Unary:
		x, err := ex.expr(fr, e.X)
		if err != nil {
			return Value{}, err
		}
		if e.Op == ast.Neg {
			if x.IsHandle {
				return Value{}, fmt.Errorf("%s: cannot negate a handle", e.Pos())
			}
			return IntV(-x.Int), nil
		}
		return Value{}, fmt.Errorf("%s: boolean in value position", e.Pos())
	case *ast.Binary:
		x, err := ex.expr(fr, e.X)
		if err != nil {
			return Value{}, err
		}
		y, err := ex.expr(fr, e.Y)
		if err != nil {
			return Value{}, err
		}
		if x.IsHandle || y.IsHandle {
			return Value{}, fmt.Errorf("%s: arithmetic on handles", e.Pos())
		}
		switch e.Op {
		case ast.Add:
			return IntV(x.Int + y.Int), nil
		case ast.Sub:
			return IntV(x.Int - y.Int), nil
		case ast.Mul:
			return IntV(x.Int * y.Int), nil
		case ast.Div:
			if y.Int == 0 {
				return Value{}, fmt.Errorf("%s: division by zero", e.Pos())
			}
			return IntV(x.Int / y.Int), nil
		default:
			return Value{}, fmt.Errorf("%s: boolean in value position", e.Pos())
		}
	case *ast.CallExpr:
		return Value{}, fmt.Errorf("%s: call in expression position (normalize first)", e.Pos())
	}
	return Value{}, fmt.Errorf("%s: unknown expression %T", e.Pos(), e)
}

// RacesString renders the race report deterministically.
func RacesString(races []Race) string {
	lines := make([]string, len(races))
	for i, r := range races {
		lines[i] = r.String()
	}
	sort.Strings(lines)
	return strings.Join(lines, "\n")
}
