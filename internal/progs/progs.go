// Package progs is the SIL program corpus: the paper's Figure 7 program,
// the adaptive-bitonic-sort-style tree kernel of §6, and the tree/list
// workloads used by the examples, tests and benchmarks. It also provides
// compilation and workload-setup helpers and a random-program generator
// for the soundness property tests.
package progs

import (
	"fmt"

	"repro/internal/heap"
	"repro/internal/interp"
	"repro/internal/sil/ast"
	"repro/internal/sil/parser"
	"repro/internal/sil/types"
)

// AddAndReverse is the paper's Figure 7 program verbatim, with the
// "... build a tree at root ..." comment realized by the build procedure.
// The tree depth is fixed in-source; use TreeAdd/TreeReverse with a Setup
// for parameterized depths.
const AddAndReverse = `
program add_and_reverse
procedure main()
  root, lside, rside: handle; i: int
begin
  root := new();
  build(root, 5);
  lside := root.left;
  rside := root.right;
  add_n(lside, 1);
  add_n(rside, -1);
  reverse(root)
end;
procedure build(h: handle; d: int)
  l, r: handle
begin
  if d > 0 then
  begin
    l := new();
    r := new();
    h.left := l;
    h.right := r;
    build(l, d - 1);
    build(r, d - 1)
  end
end;
procedure add_n(h: handle; n: int)
  l, r: handle
begin
  if h <> nil then
  begin
    h.value := h.value + n;
    l := h.left;
    r := h.right;
    add_n(l, n);
    add_n(r, n)
  end
end;
procedure reverse(h: handle)
  l, r: handle
begin
  if h <> nil then
  begin
    l := h.left;
    r := h.right;
    reverse(l);
    reverse(r);
    h.left := r;
    h.right := l
  end
end;
`

// TreeAdd applies add_n to an externally built tree (root comes from the
// Setup): the paper's update workload, parameterizable in depth.
const TreeAdd = `
program treeadd
procedure main()
  root: handle
begin
  add_n(root, 1)
end;
procedure add_n(h: handle; n: int)
  l, r: handle
begin
  if h <> nil then
  begin
    h.value := h.value + n;
    l := h.left;
    r := h.right;
    add_n(l, n);
    add_n(r, n)
  end
end;
`

// TreeReverse mirrors an externally built tree: the paper's structure-
// modifying workload.
const TreeReverse = `
program treereverse
procedure main()
  root: handle
begin
  reverse(root)
end;
procedure reverse(h: handle)
  l, r: handle
begin
  if h <> nil then
  begin
    l := h.left;
    r := h.right;
    reverse(l);
    reverse(r);
    h.left := r;
    h.right := l
  end
end;
`

// TreeSum is the read-only workload: the §5.2 refinement classifies its
// parameter read-only, so even same-argument calls parallelize.
const TreeSum = `
program treesum
procedure main()
  root: handle; total, t1, t2: int
begin
  t1 := sum(root);
  t2 := sum(root);
  total := t1 + t2
end;
function sum(h: handle): int
  s, a, b: int; l, r: handle
begin
  if h = nil then s := 0
  else
  begin
    l := h.left;
    r := h.right;
    a := sum(l);
    b := sum(r);
    s := h.value + a + b
  end
end
return (s);
`

// BitonicMerge is the §6 case study in SIL form: the Bilardi–Nicolau
// adaptive bitonic sort works on bitonic trees with conditional subtree
// swaps; this kernel performs the per-level compare-exchange (value
// compare, conditional subtree swap) followed by recursive descent into
// both halves — the access/update pattern the paper reports analyzing
// "resulting in significant parallelism detection". SIL has no arrays
// (Figure 1), so this tree formulation replaces the array variant; the
// recursion and swap structure is the part the analysis must prove
// independent, and it is preserved exactly.
const BitonicMerge = `
program bitonicmerge
procedure main()
  root: handle
begin
  bimerge(root)
end;
procedure bimerge(h: handle)
  l, r: handle; a, b: int
begin
  if h <> nil then
  begin
    l := h.left;
    r := h.right;
    if l <> nil then
      if r <> nil then
      begin
        a := l.value;
        b := r.value;
        if a > b then
        begin
          h.left := r;
          h.right := l
        end
      end;
    l := h.left;
    r := h.right;
    bimerge(l);
    bimerge(r)
  end
end;
`

// TreeCopy clones an external tree through a handle-returning function —
// the corpus program exercising function-result mapping across calls. The
// two recursive copies are independent, and the fresh nodes are provably
// unrelated to everything else.
const TreeCopy = `
program treecopy
procedure main()
  root, twin: handle
begin
  twin := copy(root)
end;
function copy(h: handle): handle
  c, l, r: handle
begin
  if h <> nil then
  begin
    c := new();
    c.value := h.value;
    l := copy(h.left);
    r := copy(h.right);
    c.left := l;
    c.right := r
  end
end
return (c);
`

// MutualWalk walks a tree with two mutually recursive procedures (even
// and odd levels apply different increments) — the mutual-recursion
// stress for the summary fixpoint.
const MutualWalk = `
program mutualwalk
procedure main()
  root: handle
begin
  even(root)
end;
procedure even(h: handle)
  l, r: handle
begin
  if h <> nil then
  begin
    h.value := h.value + 2;
    l := h.left;
    r := h.right;
    odd(l);
    odd(r)
  end
end;
procedure odd(h: handle)
  l, r: handle
begin
  if h <> nil then
  begin
    h.value := h.value + 1;
    l := h.left;
    r := h.right;
    even(l);
    even(r)
  end
end;
`

// LeftmostMax walks the left spine with a while loop and then reads a
// value — the Figure 3 pattern embedded in a runnable workload.
const LeftmostMax = `
program leftmost
procedure main()
  root, cur: handle; best: int
begin
  cur := root;
  if cur <> nil then
  begin
    best := cur.value;
    while cur.left <> nil do
    begin
      cur := cur.left;
      if cur.value > best then best := cur.value
    end
  end
end;
`

// ListIncrement walks a left-spine list adding one to every value: the
// negative control — the analysis finds no parallelism in a linear chain,
// so the parallelized program's speedup stays at 1.
const ListIncrement = `
program listinc
procedure main()
  cur: handle
begin
  while cur <> nil do
  begin
    cur.value := cur.value + 1;
    cur := cur.left
  end
end;
`

// TreeDagDemo deliberately builds a DAG and then a cycle — the structure
// verification showcase (§3.1).
const TreeDagDemo = `
program dagdemo
procedure main()
  a, b, c: handle
begin
  a := new();
  b := new();
  c := new();
  a.left := c;
  b.left := c;
  c.right := a
end;
`

// CtxPair is the context-sensitivity showcase: bump is called once on two
// externally built roots (which the environment may have aliased) and once
// on two fresh, provably unrelated nodes. A merged (context-insensitive)
// summary joins both entries, so bump's exit re-imports the aliased
// context's S?/D+? relation between its h* argument nodes into the fresh
// call — x and y end up spuriously related and their value writes cannot
// fuse. Context-sensitive summaries keep the two entry fingerprints apart:
// in the fresh context x and y stay unrelated, a strictly more precise
// result.
const CtxPair = `
program ctxpair
procedure main()
  ra, rb, x, y: handle
begin
  bump(ra, rb);
  x := new();
  y := new();
  bump(x, y);
  x.value := 1;
  y.value := 2
end;
procedure bump(a, b: handle)
begin
  if a <> nil then
    a.left := nil;
  if b <> nil then
    b.value := 0
end;
`

// ShareRead is the entry-invariant exit-sharing showcase: depth is a
// read-only recursive function first called on an externally built tree
// (a maybe-nil, unknown-indegree entry) and then on a freshly allocated
// node, whose entry — definitely non-nil, root indegree — is covered by
// the first one. Since mod-ref proves depth never writes through (or
// attaches) its argument, the second context cannot observe the
// difference: the analysis binds the converged first exit to it instead of
// analyzing a second context (silbench reports it under exitsShared).
const ShareRead = `
program shareread
procedure main()
  root, x: handle; d1, d2: int
begin
  d1 := depth(root);
  x := new();
  d2 := depth(x)
end;
function depth(t: handle): int
  l, r: handle; dl, dr: int
begin
  if t <> nil then
  begin
    l := t.left;
    r := t.right;
    dl := depth(l);
    dr := depth(r);
    if dl < dr then
      dr := dl;
    dl := dr + 1
  end
end
return (dl);
`

// Entry describes one corpus program.
type Entry struct {
	Name   string
	Source string
	// NeedsTree reports that main expects Setup to provide a structure.
	NeedsTree bool
	// Roots names the main locals a Setup binds (passed to the analysis as
	// analysis.Options.ExternalRoots so it treats them as unknown trees).
	Roots []string
	About string
}

// Catalog lists the corpus for the experiment driver.
var Catalog = []Entry{
	{"add_and_reverse", AddAndReverse, false, nil, "Figure 7/8 program (builds its own depth-5 tree)"},
	{"treeadd", TreeAdd, true, []string{"root"}, "value update over an external tree (E-SP1)"},
	{"treereverse", TreeReverse, true, []string{"root"}, "structure reversal over an external tree (E-SP1)"},
	{"treesum", TreeSum, true, []string{"root"}, "read-only double traversal (§5.2 refinement)"},
	{"bitonicmerge", BitonicMerge, true, []string{"root"}, "§6 adaptive-bitonic-style tree merge (E-S6)"},
	{"treecopy", TreeCopy, true, []string{"root"}, "tree clone via handle-returning function"},
	{"mutualwalk", MutualWalk, true, []string{"root"}, "mutually recursive even/odd walk"},
	{"leftmost", LeftmostMax, true, []string{"root"}, "Figure 3's spine walk as a workload"},
	{"listinc", ListIncrement, true, []string{"cur"}, "linear list walk — no parallelism (negative control)"},
	{"dagdemo", TreeDagDemo, false, nil, "DAG and cycle creation for structure verification"},
	{"ctxpair", CtxPair, false, []string{"ra", "rb"}, "context-sensitivity demo: aliased-roots call vs fresh-pair call"},
	{"shareread", ShareRead, true, []string{"root"}, "entry-invariant exit sharing: read-only depth on external tree then fresh node"},
}

// Compile parses, checks and normalizes a corpus source.
func Compile(src string) (*ast.Program, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("progs: %w", err)
	}
	if err := types.Check(prog); err != nil {
		return nil, fmt.Errorf("progs: %w", err)
	}
	types.Normalize(prog)
	return prog, nil
}

// MustCompile panics on error (fixtures).
func MustCompile(src string) *ast.Program {
	p, err := Compile(src)
	if err != nil {
		panic(err)
	}
	return p
}

// BalancedTreeSetup binds main's root to a fresh balanced tree of the
// given depth.
func BalancedTreeSetup(depth int) func(h *heap.Heap, env map[string]interp.Value) {
	return func(h *heap.Heap, env map[string]interp.Value) {
		env["root"] = interp.HandleV(h.BuildBalanced(depth, 1))
	}
}

// ListSetup binds main's cur to a fresh list of n nodes.
func ListSetup(n int) func(h *heap.Heap, env map[string]interp.Value) {
	return func(h *heap.Heap, env map[string]interp.Value) {
		env["cur"] = interp.HandleV(h.BuildList(n))
	}
}

// BitonicTreeSetup builds a depth-d tree whose values form a bitonic-ish
// sequence (ascending left spine, descending right spine), the natural
// input for BitonicMerge.
func BitonicTreeSetup(depth int) func(h *heap.Heap, env map[string]interp.Value) {
	return func(h *heap.Heap, env map[string]interp.Value) {
		var build func(d int, lo, hi int64, up bool) heap.NodeID
		build = func(d int, lo, hi int64, up bool) heap.NodeID {
			id := h.Alloc()
			mid := (lo + hi) / 2
			if up {
				_ = h.SetValue(id, lo)
			} else {
				_ = h.SetValue(id, hi)
			}
			if d > 0 {
				l := build(d-1, lo, mid, up)
				r := build(d-1, mid+1, hi, !up)
				_ = h.SetLink(id, heap.Left, l)
				_ = h.SetLink(id, heap.Right, r)
			}
			return id
		}
		env["root"] = interp.HandleV(build(depth, 0, 1<<uint(depth+1), true))
	}
}
