package progs

import (
	"strings"
	"testing"

	"repro/internal/heap"
	"repro/internal/interp"
)

func TestCatalogCompiles(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range Catalog {
		if seen[e.Name] {
			t.Errorf("duplicate catalog name %s", e.Name)
		}
		seen[e.Name] = true
		if _, err := Compile(e.Source); err != nil {
			t.Errorf("%s: %v", e.Name, err)
		}
		if e.About == "" {
			t.Errorf("%s: missing description", e.Name)
		}
		if e.NeedsTree && len(e.Roots) == 0 {
			t.Errorf("%s: NeedsTree but no Roots", e.Name)
		}
	}
}

func TestCompileRejectsBadSource(t *testing.T) {
	if _, err := Compile("program broken procedure main() begin x := end;"); err == nil {
		t.Error("parse error expected")
	}
	if _, err := Compile("program broken procedure main() begin x := 1 end;"); err == nil {
		t.Error("check error expected (undeclared x)")
	}
}

func TestMustCompilePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustCompile should panic on bad source")
		}
	}()
	MustCompile("not a program")
}

func TestBalancedTreeSetup(t *testing.T) {
	h := heap.New()
	env := map[string]interp.Value{}
	BalancedTreeSetup(3)(h, env)
	root := env["root"]
	if !root.IsHandle || root.Node.IsNil() {
		t.Fatal("root not bound")
	}
	if got := len(h.Reachable(root.Node)); got != 15 {
		t.Errorf("depth-3 tree has %d nodes, want 15", got)
	}
	if h.Classify(root.Node) != heap.Tree {
		t.Error("setup must build a tree")
	}
}

func TestListSetup(t *testing.T) {
	h := heap.New()
	env := map[string]interp.Value{}
	ListSetup(7)(h, env)
	n := 0
	for id := env["cur"].Node; !id.IsNil(); {
		n++
		id, _ = h.Link(id, heap.Left)
	}
	if n != 7 {
		t.Errorf("list length %d, want 7", n)
	}
}

func TestBitonicTreeSetup(t *testing.T) {
	h := heap.New()
	env := map[string]interp.Value{}
	BitonicTreeSetup(4)(h, env)
	root := env["root"].Node
	if h.Classify(root) != heap.Tree {
		t.Error("bitonic setup must build a tree")
	}
	if got := len(h.Reachable(root)); got != 31 {
		t.Errorf("depth-4 tree has %d nodes, want 31", got)
	}
	// Left child ascends, right child descends (the bitonic shape).
	l, _ := h.Link(root, heap.Left)
	r, _ := h.Link(root, heap.Right)
	lv, _ := h.Value(l)
	rv, _ := h.Value(r)
	if lv > rv {
		t.Errorf("bitonic shape: left head %d should not exceed right head %d", lv, rv)
	}
}

func TestRandomProgramDeterministic(t *testing.T) {
	a, b := RandomProgram(42), RandomProgram(42)
	if a != b {
		t.Error("same seed must give same program")
	}
	c := RandomProgram(43)
	if a == c {
		t.Error("different seeds should differ")
	}
	if !strings.Contains(a, "procedure walk") {
		t.Error("generator must include the recursive walker")
	}
}

func TestRandomProgramsCompileAndRun(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		src := RandomProgram(seed)
		prog, err := Compile(src)
		if err != nil {
			t.Fatalf("seed %d: %v\n%s", seed, err, src)
		}
		// Runtime errors other than the step limit are generator bugs:
		// every dereference is guarded.
		if _, err := interp.Run(prog, interp.Config{MaxSteps: 200_000}, nil); err != nil {
			if !strings.Contains(err.Error(), "step limit") {
				t.Errorf("seed %d: unexpected runtime error: %v\n%s", seed, err, src)
			}
		}
	}
}
