package progs

import (
	"fmt"
	"math/rand"
	"strings"
)

// RandomProgram generates a deterministic, terminating, runtime-safe SIL
// program from the seed: straight-line basic statements over a small set
// of handle and int variables, guarded conditionals, bounded counter
// loops, and a recursive tree walker. Every dereference is nil-guarded so
// the program never faults, which lets the soundness property tests run
// the parallelizer's output against the sequential semantics on thousands
// of random programs.
func RandomProgram(seed int64) string {
	rng := rand.New(rand.NewSource(seed))
	handles := []string{"a", "b", "c", "d"}
	ints := []string{"x", "y", "z"}
	var b strings.Builder
	b.WriteString("program rnd\nprocedure main()\n  a, b, c, d: handle; x, y, z, i: int\nbegin\n")
	var stmts []string
	// Start with some allocations so dereferences have targets.
	for _, h := range handles[:2+rng.Intn(2)] {
		stmts = append(stmts, fmt.Sprintf("%s := new()", h))
	}
	n := 6 + rng.Intn(10)
	for k := 0; k < n; k++ {
		h := handles[rng.Intn(len(handles))]
		g := handles[rng.Intn(len(handles))]
		x := ints[rng.Intn(len(ints))]
		f := []string{"left", "right"}[rng.Intn(2)]
		switch rng.Intn(10) {
		case 0:
			stmts = append(stmts, fmt.Sprintf("%s := new()", h))
		case 1:
			stmts = append(stmts, fmt.Sprintf("%s := nil", h))
		case 2:
			stmts = append(stmts, fmt.Sprintf("%s := %s", h, g))
		case 3:
			stmts = append(stmts, fmt.Sprintf("if %s <> nil then %s := %s.%s", g, h, g, f))
		case 4:
			stmts = append(stmts, fmt.Sprintf("if %s <> nil then %s.%s := %s", h, h, f, g))
		case 5:
			stmts = append(stmts, fmt.Sprintf("if %s <> nil then %s.value := %s + %d", h, h, x, rng.Intn(9)))
		case 6:
			stmts = append(stmts, fmt.Sprintf("if %s <> nil then %s := %s.value", h, x, h))
		case 7:
			stmts = append(stmts, fmt.Sprintf("%s := %s + %d", x, ints[rng.Intn(len(ints))], rng.Intn(5)))
		case 8:
			// Bounded counter loop touching a value.
			stmts = append(stmts, fmt.Sprintf(
				"i := 0;\n  while i < %d do\n  begin\n    if %s <> nil then %s.value := %s.value + 1;\n    i := i + 1\n  end",
				1+rng.Intn(4), h, h, h))
		case 9:
			stmts = append(stmts, fmt.Sprintf("walk(%s)", h))
		}
	}
	b.WriteString("  " + strings.Join(stmts, ";\n  "))
	b.WriteString("\nend;\n")
	b.WriteString(`procedure walk(h: handle)
  l, r: handle
begin
  if h <> nil then
  begin
    h.value := h.value + 1;
    l := h.left;
    r := h.right;
    walk(l);
    walk(r)
  end
end;
`)
	return b.String()
}
