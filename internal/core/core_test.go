package core

import (
	"strings"
	"testing"

	"repro/internal/interp"
	"repro/internal/matrix"
	"repro/internal/progs"
)

func TestBuildPipeline(t *testing.T) {
	pipe, err := Build(progs.AddAndReverse, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if pipe.Prog.Name != "add_and_reverse" {
		t.Errorf("name = %q", pipe.Prog.Name)
	}
	if pipe.Par.Stats.ParStatements == 0 {
		t.Error("no parallelism found")
	}
	par := pipe.ParallelText()
	if !strings.Contains(par, "add_n(l, n) || add_n(r, n)") {
		t.Errorf("Figure 8 line missing:\n%s", par)
	}
	seq := pipe.SequentialText()
	if strings.Contains(seq, "||") {
		t.Error("sequential text must not contain parallel statements")
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build("garbage", DefaultOptions()); err == nil || !strings.Contains(err.Error(), "parse") {
		t.Errorf("parse error expected, got %v", err)
	}
	if _, err := Build("program p procedure main() begin x := 1 end;", DefaultOptions()); err == nil || !strings.Contains(err.Error(), "check") {
		t.Errorf("check error expected, got %v", err)
	}
}

func TestVerifyAndSpeedup(t *testing.T) {
	opts := DefaultOptions()
	opts.Analysis.ExternalRoots = []string{"root"}
	pipe, err := Build(progs.TreeAdd, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := pipe.Verify(interp.Config{}, progs.BalancedTreeSetup(6))
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Err(); err != nil {
		t.Fatal(err)
	}
	sp, err := pipe.Speedup(interp.Config{}, progs.BalancedTreeSetup(6), []int{1, 4})
	if err != nil {
		t.Fatal(err)
	}
	if sp.SpeedupAt(1) < 2 {
		t.Errorf("P=4 speedup %.2f too low", sp.SpeedupAt(1))
	}
}

func TestReportContents(t *testing.T) {
	opts := DefaultOptions()
	opts.Analysis.ExternalRoots = []string{"root"}
	pipe, err := Build(progs.TreeSum, opts)
	if err != nil {
		t.Fatal(err)
	}
	rep := pipe.Report()
	if !strings.Contains(rep, "read-only handle parameters of sum: h") {
		t.Errorf("report lacks read-only classification:\n%s", rep)
	}
	if !strings.Contains(rep, "structure: worst point TREE, at main exit TREE") {
		t.Errorf("report lacks structure line:\n%s", rep)
	}
}

func TestShapeAndDiagnostics(t *testing.T) {
	pipe, err := Build(progs.TreeDagDemo, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if pipe.Shape() < matrix.ShapeDAG {
		t.Errorf("dagdemo shape = %v", pipe.Shape())
	}
	found := false
	for _, d := range pipe.Diagnostics() {
		if strings.Contains(d, "cycle") {
			found = true
		}
	}
	if !found {
		t.Errorf("dagdemo should report the cycle: %v", pipe.Diagnostics())
	}
}

func TestMatrixBefore(t *testing.T) {
	pipe, err := Build(progs.AddAndReverse, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	first := pipe.Prog.Proc("main").Body.Stmts[0]
	if s := pipe.MatrixBefore(first); !strings.Contains(s, "shape:") {
		t.Errorf("MatrixBefore = %q", s)
	}
	if s := pipe.MatrixBefore(nil); s != "(unreachable)" {
		t.Errorf("nil statement: %q", s)
	}
}

func TestRunSequentialAndParallel(t *testing.T) {
	pipe, err := Build(progs.AddAndReverse, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	seq, err := pipe.RunSequential(interp.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	par, err := pipe.RunParallel(interp.Config{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Work != par.Work {
		t.Errorf("work differs: %d vs %d", seq.Work, par.Work)
	}
	if par.Span >= seq.Span {
		t.Errorf("parallel span %d should beat sequential %d", par.Span, seq.Span)
	}
}
