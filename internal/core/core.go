// Package core is the library's stable surface: it wires the full
// Hendren–Nicolau pipeline — parse → type-check → normalize → path-matrix
// analysis → structure verification → interference analysis →
// parallelization → execution/measurement — behind one Pipeline type.
// Examples and commands use this package; the internal packages remain
// directly importable for fine-grained use.
package core

import (
	"context"

	"fmt"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/interp"
	"repro/internal/matrix"
	"repro/internal/par"
	"repro/internal/runtime"
	"repro/internal/sil/ast"
	"repro/internal/sil/parser"
	"repro/internal/sil/printer"
	"repro/internal/sil/types"
)

// Options configures a pipeline run.
type Options struct {
	Analysis analysis.Options
	Par      par.Options
}

// DefaultOptions enables every transformation with default widening.
func DefaultOptions() Options {
	return Options{Par: par.DefaultOptions}
}

// Pipeline is one compiled-and-analyzed SIL program.
type Pipeline struct {
	Source string
	Prog   *ast.Program // checked, normalized
	Info   *analysis.Info
	Par    *par.Result
	Opts   Options
}

// Build runs the whole static pipeline on a SIL source text.
func Build(src string, opts Options) (*Pipeline, error) {
	prog, err := parser.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	if err := types.Check(prog); err != nil {
		return nil, fmt.Errorf("check: %w", err)
	}
	types.Normalize(prog)
	// Build is the one-shot CLI/test pipeline: no caller deadline to
	// thread, so it runs uncancelable (budgets still apply via Options).
	info, err := analysis.Analyze(context.Background(), prog, opts.Analysis) //sillint:allow ctxflow one-shot CLI/test pipeline: no caller deadline exists to thread
	if err != nil {
		return nil, fmt.Errorf("analyze: %w", err)
	}
	return &Pipeline{
		Source: src,
		Prog:   prog,
		Info:   info,
		Par:    par.Parallelize(info, opts.Par),
		Opts:   opts,
	}, nil
}

// SequentialText renders the normalized sequential program.
func (p *Pipeline) SequentialText() string { return printer.Print(p.Prog) }

// ParallelText renders the parallelized program (Figure 8 style).
func (p *Pipeline) ParallelText() string { return printer.Print(p.Par.Prog) }

// Shape returns the overall structure verification verdict.
func (p *Pipeline) Shape() matrix.Shape { return p.Info.Shape() }

// Diagnostics returns the structure/safety findings, deterministically.
func (p *Pipeline) Diagnostics() []string { return p.Info.DiagStrings() }

// MatrixBefore returns the path matrix before a statement, rendered in the
// paper's layout (for inspection tools).
func (p *Pipeline) MatrixBefore(s ast.Stmt) string {
	m := p.Info.Before[s]
	if m == nil {
		return "(unreachable)"
	}
	return m.String()
}

// RunSequential executes the normalized sequential program.
func (p *Pipeline) RunSequential(cfg interp.Config, setup runtime.Setup) (*interp.Result, error) {
	return interp.Run(p.Prog, cfg, setup)
}

// RunParallel executes the parallelized program (deterministic parallel
// semantics; set cfg.Concurrent for real goroutines).
func (p *Pipeline) RunParallel(cfg interp.Config, setup runtime.Setup) (*interp.Result, error) {
	return interp.Run(p.Par.Prog, cfg, setup)
}

// Verify runs the sequential and parallel programs from identical states
// and checks observable equivalence plus race freedom.
func (p *Pipeline) Verify(cfg interp.Config, setup runtime.Setup) (*runtime.EquivalenceReport, error) {
	return runtime.CheckEquivalence(p.Prog, p.Par.Prog, cfg, setup)
}

// Speedup measures the parallelized program on the simulated machine.
func (p *Pipeline) Speedup(cfg interp.Config, setup runtime.Setup, procs []int) (*runtime.Speedup, error) {
	return runtime.MeasureSpeedup(p.Par.Prog, cfg, setup, procs)
}

// Report renders a human-readable summary of the static results.
func (p *Pipeline) Report() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s\n", p.Prog.Name)
	fmt.Fprintf(&b, "structure: worst point %s, at main exit %s\n", p.Shape(), p.Info.ExitShape())
	fmt.Fprintf(&b, "parallel statements: %d (branches %d; leaf groups %d, sequence groups %d)\n",
		p.Par.Stats.ParStatements, p.Par.Stats.Branches, p.Par.Stats.LeafGroups, p.Par.Stats.SeqGroups)
	names := make([]string, 0, len(p.Info.Summaries))
	for name := range p.Info.Summaries {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		sum := p.Info.Summaries[name]
		var ro []string
		for i, prm := range sum.Proc.Params {
			if prm.Type == ast.HandleT && sum.ReadOnlyParam(i) {
				ro = append(ro, prm.Name)
			}
		}
		if len(ro) > 0 {
			fmt.Fprintf(&b, "read-only handle parameters of %s: %s\n", name, strings.Join(ro, ", "))
		}
	}
	if ds := p.Diagnostics(); len(ds) > 0 {
		b.WriteString("diagnostics:\n")
		for _, d := range ds {
			fmt.Fprintf(&b, "  %s\n", d)
		}
	}
	return b.String()
}
