package interfere

import (
	"repro/internal/analysis"
	"repro/internal/matrix"
	"repro/internal/sil/ast"
)

// This file implements §5.2: coarse-grain interference between procedure
// calls. Two calls do not interfere when every update argument of one is
// unrelated to every handle argument of the other (in a TREE, unrelated
// handles root disjoint sub-structures). Without the read-only refinement
// (useReadOnly=false — the paper's "first approximation", and our E-AB1
// ablation), every handle argument counts as an update argument.

// callHandleArgs extracts a call's handle-actual names.
func callHandleArgs(prog *ast.Program, name string, args []ast.Expr) []string {
	callee := prog.Proc(name)
	if callee == nil {
		return nil
	}
	var out []string
	for i, p := range callee.Params {
		if p.Type != ast.HandleT || i >= len(args) {
			continue
		}
		if v, ok := args[i].(*ast.VarRef); ok {
			out = append(out, v.Name)
		}
	}
	return out
}

// callUpdateArgs extracts the actuals bound to update parameters.
func callUpdateArgs(prog *ast.Program, info *analysis.Info, name string, args []ast.Expr, useReadOnly bool) []string {
	callee := prog.Proc(name)
	if callee == nil {
		return nil
	}
	sum := info.Summaries[name]
	var out []string
	for i, p := range callee.Params {
		if p.Type != ast.HandleT || i >= len(args) {
			continue
		}
		if useReadOnly && sum != nil && sum.ReadOnlyParam(i) {
			continue
		}
		if v, ok := args[i].(*ast.VarRef); ok {
			out = append(out, v.Name)
		}
	}
	return out
}

// unrelated implements the §5.2 test p[x,y] = p[y,x] = {} (same names are
// trivially related).
func unrelated(p *matrix.Matrix, x, y string) bool {
	if x == y {
		return false
	}
	return !p.Related(matrix.Handle(x), matrix.Handle(y))
}

// CallsInterfere decides whether two procedure calls may interfere when
// executed in parallel from a program point with path matrix p. Scalar
// arguments never interfere (call-by-value); handle arguments interfere
// through the structure per the paper's rule.
func CallsInterfere(prog *ast.Program, info *analysis.Info, p *matrix.Matrix,
	c1, c2 *ast.CallStmt, useReadOnly bool) bool {
	args1 := callHandleArgs(prog, c1.Name, c1.Args)
	args2 := callHandleArgs(prog, c2.Name, c2.Args)
	upd1 := callUpdateArgs(prog, info, c1.Name, c1.Args, useReadOnly)
	upd2 := callUpdateArgs(prog, info, c2.Name, c2.Args, useReadOnly)
	for _, u := range upd1 {
		for _, y := range args2 {
			if !unrelated(p, u, y) {
				return true
			}
		}
	}
	for _, u := range upd2 {
		for _, x := range args1 {
			if !unrelated(p, u, x) {
				return true
			}
		}
	}
	return false
}

// stmtHandleUses lists the handles a basic statement reads or writes
// through, and whether it writes into the structure at all.
func stmtHandleUses(s *ast.Assign) (reads, writes []string, writesVar string) {
	switch lhs := s.Lhs.(type) {
	case *ast.VarLV:
		writesVar = lhs.Name
	case *ast.FieldLV:
		writes = append(writes, lhs.Base)
	}
	var scan func(e ast.Expr)
	scan = func(e ast.Expr) {
		switch e := e.(type) {
		case *ast.VarRef:
			reads = append(reads, e.Name)
		case *ast.FieldRef:
			reads = append(reads, e.Base)
		case *ast.Unary:
			scan(e.X)
		case *ast.Binary:
			scan(e.X)
			scan(e.Y)
		}
	}
	scan(s.Rhs)
	return reads, writes, writesVar
}

// StmtCallInterfere decides whether a basic statement and a procedure call
// may interfere when run in parallel: the statement's structure accesses
// must be unrelated to the call's update arguments, its structure writes
// unrelated to every argument, and it must not write a variable the call
// passes (the call reads its argument variables).
func StmtCallInterfere(prog *ast.Program, info *analysis.Info, p *matrix.Matrix,
	s ast.Stmt, call *ast.CallStmt, useReadOnly bool) bool {
	asg, ok := s.(*ast.Assign)
	if !ok {
		return true // not basic: be conservative
	}
	args := callHandleArgs(prog, call.Name, call.Args)
	upd := callUpdateArgs(prog, info, call.Name, call.Args, useReadOnly)
	reads, writes, writesVar := stmtHandleUses(asg)
	// A variable the call evaluates (either type) must not be overwritten.
	if writesVar != "" {
		for _, a := range call.Args {
			if v, okV := a.(*ast.VarRef); okV && v.Name == writesVar {
				return true
			}
		}
	}
	// The statement's heap reads clash with the call's heap writes.
	isFieldRead := func(name string) bool {
		// Only dereferences matter; (x, var) reads were handled above.
		switch rhs := asg.Rhs.(type) {
		case *ast.FieldRef:
			return rhs.Base == name
		default:
			// Scalar expressions read value fields of every FieldRef base.
			found := false
			var scan func(e ast.Expr)
			scan = func(e ast.Expr) {
				if fr, okF := e.(*ast.FieldRef); okF && fr.Base == name {
					found = true
				}
				switch e := e.(type) {
				case *ast.Unary:
					scan(e.X)
				case *ast.Binary:
					scan(e.X)
					scan(e.Y)
				}
			}
			scan(asg.Rhs)
			return found
		}
	}
	for _, h := range reads {
		if !isFieldRead(h) {
			continue
		}
		for _, u := range upd {
			if !unrelated(p, h, u) {
				return true
			}
		}
	}
	// The statement's heap writes clash with anything the call can reach.
	for _, h := range writes {
		for _, a := range args {
			if !unrelated(p, h, a) {
				return true
			}
		}
	}
	return false
}
