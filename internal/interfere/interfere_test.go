package interfere

import (
	"context"

	"testing"

	"repro/internal/analysis"
	"repro/internal/matrix"
	"repro/internal/path"
	"repro/internal/sil/ast"
	"repro/internal/sil/parser"
	"repro/internal/sil/types"
)

// fig6Matrix builds the tree and matrix at the top of Figure 6:
// a and b are handles to the same node; c and d hang below with
// p[c,d] = {S?, R+?}.
func fig6Matrix(t *testing.T) *matrix.Matrix {
	t.Helper()
	m := matrix.New()
	nonNil := matrix.Attr{Nil: matrix.NonNil, Indeg: matrix.UnknownDeg}
	for _, h := range []matrix.Handle{"a", "b", "c", "d"} {
		m.Add(h, nonNil)
	}
	m.Put("a", "b", path.MustParseSet("S"))
	m.Put("b", "a", path.MustParseSet("S"))
	m.Put("a", "d", path.MustParseSet("D+"))
	m.Put("b", "d", path.MustParseSet("D+"))
	m.Put("c", "d", path.MustParseSet("S?, R+?"))
	m.Put("d", "c", path.MustParseSet("S?"))
	// Scalar variables referenced by the examples.
	return m
}

func parseStmt(t *testing.T, src string) ast.Stmt {
	t.Helper()
	stmts, err := parser.ParseStmts(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return stmts[0]
}

// TestFig6Example1: variable interference — x := a.left writes x, y := x
// reads it.
func TestFig6Example1(t *testing.T) {
	p := fig6Matrix(t)
	s1 := parseStmt(t, "x := a.left")
	s2 := parseStmt(t, "y := x")
	got, ok := Interference(s1, s2, p)
	if !ok {
		t.Fatal("statements should be basic")
	}
	if want := "{(x,var)}"; got.String() != want {
		t.Errorf("I(s1,s2) = %s, want %s", got, want)
	}
}

// TestFig6Example2: field interference through aliases — x := a.left reads
// the left field that b.left := nil writes (a and b are the same node).
func TestFig6Example2(t *testing.T) {
	p := fig6Matrix(t)
	s1 := parseStmt(t, "x := a.left")
	s2 := parseStmt(t, "b.left := nil")
	r1, w1, _ := ReadWrite(s1, p)
	if want := "{(a,left),(a,var),(b,left)}"; r1.String() != want {
		t.Errorf("R(s1) = %s, want %s", r1, want)
	}
	if want := "{(x,var)}"; w1.String() != want {
		t.Errorf("W(s1) = %s, want %s", w1, want)
	}
	_, w2, _ := ReadWrite(s2, p)
	if want := "{(a,left),(b,left)}"; w2.String() != want {
		t.Errorf("W(s2) = %s, want %s", w2, want)
	}
	got, _ := Interference(s1, s2, p)
	if want := "{(a,left),(b,left)}"; got.String() != want {
		t.Errorf("I(s1,s2) = %s, want %s", got, want)
	}
}

// TestFig6Example3: conservative interference — c and d may be the same
// node, so n := d.value and c.value := 0 may clash on the value field.
func TestFig6Example3(t *testing.T) {
	p := fig6Matrix(t)
	s1 := parseStmt(t, "n := d.value")
	s2 := parseStmt(t, "c.value := 0")
	r1, _, _ := ReadWrite(s1, p)
	if want := "{(c,value),(d,value),(d,var)}"; r1.String() != want {
		t.Errorf("R(s1) = %s, want %s", r1, want)
	}
	_, w2, _ := ReadWrite(s2, p)
	if want := "{(c,value),(d,value)}"; w2.String() != want {
		t.Errorf("W(s2) = %s, want %s", w2, want)
	}
	got, _ := Interference(s1, s2, p)
	if want := "{(c,value),(d,value)}"; got.String() != want {
		t.Errorf("I(s1,s2) = %s, want %s", got, want)
	}
}

// TestFig5ReadWriteSets covers every row of Figure 5.
func TestFig5ReadWriteSets(t *testing.T) {
	p := fig6Matrix(t)
	cases := []struct {
		src   string
		wantR string
		wantW string
	}{
		{"a := nil", "{}", "{(a,var)}"},
		{"a := new()", "{}", "{(a,var)}"},
		{"a := b", "{(b,var)}", "{(a,var)}"},
		{"a := b.left", "{(a,left),(b,left),(b,var)}", "{(a,var)}"}, // A(b,left,p) includes the alias a
		{"a.left := b", "{(a,var),(b,var)}", "{(a,left),(b,left)}"},
		{"x := a.value", "{(a,value),(a,var),(b,value)}", "{(x,var)}"},
		{"a.value := x", "{(a,var),(x,var)}", "{(a,value),(b,value)}"},
	}
	for _, c := range cases {
		r, w, ok := ReadWrite(parseStmt(t, c.src), p)
		if !ok {
			t.Errorf("%q should be basic", c.src)
			continue
		}
		if r.String() != c.wantR {
			t.Errorf("R(%q) = %s, want %s", c.src, r, c.wantR)
		}
		if w.String() != c.wantW {
			t.Errorf("W(%q) = %s, want %s", c.src, w, c.wantW)
		}
	}
}

func TestNoInterferenceNFusion(t *testing.T) {
	// Figure 8's three-way parallel statement inside add_n.
	m := matrix.New()
	nonNil := matrix.Attr{Nil: matrix.NonNil, Indeg: matrix.UnknownDeg}
	m.Add("h", nonNil)
	m.Add("l", matrix.Attr{Nil: matrix.DefNil, Indeg: matrix.Root})
	m.Add("r", matrix.Attr{Nil: matrix.DefNil, Indeg: matrix.Root})
	m.Add("n", nonNil) // n is an int; harmless in the matrix
	stmts := []ast.Stmt{
		parseStmt(t, "h.value := h.value + n"),
		parseStmt(t, "l := h.left"),
		parseStmt(t, "r := h.right"),
	}
	if !NoInterferenceN(stmts, m) {
		t.Error("the Figure 8 triple should fuse")
	}
	// Adding a conflicting fourth statement breaks it.
	bad := append(append([]ast.Stmt{}, stmts...), parseStmt(t, "l := h.right"))
	if NoInterferenceN(bad, m) {
		t.Error("duplicate write of l must interfere")
	}
	// Value write vs value read through a possible alias.
	m2 := fig6Matrix(t)
	pair := []ast.Stmt{parseStmt(t, "n := d.value"), parseStmt(t, "c.value := 0")}
	if NoInterferenceN(pair, m2) {
		t.Error("Figure 6 example 3 must interfere")
	}
}

// ------------------------- §5.2 procedure calls -------------------------

func analyzeFig7(t *testing.T) *analysis.Info {
	t.Helper()
	src := `
program add_and_reverse
procedure main()
  root, lside, rside: handle; i: int
begin
  root := new();
  build(root, 5);
  lside := root.left;
  rside := root.right;
  add_n(lside, 1);
  add_n(rside, -1);
  reverse(root)
end;
procedure build(h: handle; d: int)
  l, r: handle
begin
  if d > 0 then
  begin
    l := new();
    r := new();
    h.left := l;
    h.right := r;
    build(l, d - 1);
    build(r, d - 1)
  end
end;
procedure add_n(h: handle; n: int)
  l, r: handle
begin
  if h <> nil then
  begin
    h.value := h.value + n;
    l := h.left;
    r := h.right;
    add_n(l, n);
    add_n(r, n)
  end
end;
procedure reverse(h: handle)
  l, r: handle
begin
  if h <> nil then
  begin
    l := h.left;
    r := h.right;
    reverse(l);
    reverse(r);
    h.left := r;
    h.right := l
  end
end;
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := types.Check(prog); err != nil {
		t.Fatalf("check: %v", err)
	}
	types.Normalize(prog)
	info, err := analysis.Analyze(context.Background(), prog, analysis.Options{})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return info
}

func findCallStmt(prog *ast.Program, proc, callee string, n int) *ast.CallStmt {
	var out *ast.CallStmt
	count := 0
	var walk func(s ast.Stmt)
	walk = func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.Block:
			for _, st := range s.Stmts {
				walk(st)
			}
		case *ast.Par:
			for _, st := range s.Branches {
				walk(st)
			}
		case *ast.If:
			walk(s.Then)
			if s.Else != nil {
				walk(s.Else)
			}
		case *ast.While:
			walk(s.Body)
		case *ast.CallStmt:
			if s.Name == callee {
				if count == n {
					out = s
				}
				count++
			}
		}
	}
	walk(prog.Proc(proc).Body)
	return out
}

// TestFig7CallsDoNotInterfere: the two add_n calls at point A, and the
// recursive call pairs inside add_n and reverse, are all independent.
func TestFig7CallsDoNotInterfere(t *testing.T) {
	info := analyzeFig7(t)
	cases := []struct{ proc, callee string }{
		{"main", "add_n"},
		{"add_n", "add_n"},
		{"reverse", "reverse"},
	}
	for _, c := range cases {
		c1 := findCallStmt(info.Prog, c.proc, c.callee, 0)
		c2 := findCallStmt(info.Prog, c.proc, c.callee, 1)
		if c1 == nil || c2 == nil {
			t.Fatalf("calls to %s in %s not found", c.callee, c.proc)
		}
		p := info.Before[c1]
		if p == nil {
			t.Fatalf("no matrix before first %s call in %s", c.callee, c.proc)
		}
		if CallsInterfere(info.Prog, info, p, c1, c2, true) {
			t.Errorf("%s calls in %s should not interfere", c.callee, c.proc)
		}
		// The first approximation (no read-only refinement) also proves
		// these, because the arguments are unrelated.
		if CallsInterfere(info.Prog, info, p, c1, c2, false) {
			t.Errorf("%s calls in %s should not interfere even coarsely", c.callee, c.proc)
		}
	}
}

// TestCallsSameArgInterfere: passing the same handle to two updating calls
// interferes; read-only calls on the same argument do not (the §5.2
// refinement), but only when the refinement is enabled.
func TestCallsSameArgInterfere(t *testing.T) {
	src := `
program sharing
procedure main()
  root: handle; x, y: int
begin
  root := new();
  bump(root);
  bump(root);
  x := peek(root);
  y := peek(root)
end;
procedure bump(h: handle)
begin
  if h <> nil then h.value := h.value + 1
end;
function peek(h: handle): int
  v: int
begin
  if h <> nil then v := h.value
end
return (v);
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := types.Check(prog); err != nil {
		t.Fatal(err)
	}
	types.Normalize(prog)
	info, err := analysis.Analyze(context.Background(), prog, analysis.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b1 := findCallStmt(prog, "main", "bump", 0)
	b2 := findCallStmt(prog, "main", "bump", 1)
	p := info.Before[b1]
	if !CallsInterfere(prog, info, p, b1, b2, true) {
		t.Error("two bump(root) calls must interfere")
	}
	// peek is read-only: simulate two calls via synthetic CallStmts.
	pk := &ast.CallStmt{Name: "peek", Args: b1.Args}
	if CallsInterfere(prog, info, p, pk, pk, true) {
		t.Error("two peek(root) calls should not interfere with refinement")
	}
	if !CallsInterfere(prog, info, p, pk, pk, false) {
		t.Error("without the refinement, same-argument calls interfere")
	}
}

// TestStmtCallInterference: a basic statement against a call.
func TestStmtCallInterference(t *testing.T) {
	info := analyzeFig7(t)
	call := findCallStmt(info.Prog, "main", "add_n", 0) // add_n(lside,1)
	p := info.Before[call]
	// Writing rside's value does not disturb add_n(lside, 1).
	s := parseStmt(t, "rside.value := 0")
	if StmtCallInterfere(info.Prog, info, p, s, call, true) {
		t.Error("rside write vs add_n(lside) should not interfere")
	}
	// Writing lside's value does.
	s2 := parseStmt(t, "lside.value := 0")
	if !StmtCallInterfere(info.Prog, info, p, s2, call, true) {
		t.Error("lside write vs add_n(lside) must interfere")
	}
	// Reassigning the variable passed as argument interferes (the call
	// reads it).
	s3 := parseStmt(t, "lside := nil")
	if !StmtCallInterfere(info.Prog, info, p, s3, call, true) {
		t.Error("overwriting the argument variable must interfere")
	}
	// Reading root's value vs an updating call on lside: root is related
	// to lside, but add_n only writes value fields below lside, and root's
	// own value is above — still conservative: related ⇒ interfere.
	s4 := parseStmt(t, "i := root.value")
	if !StmtCallInterfere(info.Prog, info, p, s4, call, true) {
		t.Error("conservative: root related to lside ⇒ interfere")
	}
}

// ------------------------- §5.3 statement sequences -------------------------

func TestSequencesDisjointSubtrees(t *testing.T) {
	info := analyzeFig7(t)
	// At point A: U touches lside's subtree, V touches rside's.
	callA := findCallStmt(info.Prog, "main", "add_n", 0)
	p0 := info.Before[callA]
	U := []ast.Stmt{parseStmt(t, "lside.value := 1")}
	V := []ast.Stmt{parseStmt(t, "rside.value := 2")}
	interferes, err := SequencesInterfere(info, "main", p0, U, V, true)
	if err != nil {
		t.Fatalf("SequencesInterfere: %v", err)
	}
	if interferes {
		t.Error("disjoint subtree sequences should not interfere")
	}
	// Same subtree: interference.
	V2 := []ast.Stmt{parseStmt(t, "lside.value := 2")}
	interferes, err = SequencesInterfere(info, "main", p0, U, V2, true)
	if err != nil {
		t.Fatal(err)
	}
	if !interferes {
		t.Error("same-location sequences must interfere")
	}
}

func TestSequencesWithCalls(t *testing.T) {
	info := analyzeFig7(t)
	c1 := findCallStmt(info.Prog, "main", "add_n", 0)
	c2 := findCallStmt(info.Prog, "main", "add_n", 1)
	p0 := info.Before[c1]
	interferes, err := SequencesInterfere(info, "main", p0, []ast.Stmt{c1}, []ast.Stmt{c2}, true)
	if err != nil {
		t.Fatal(err)
	}
	if interferes {
		t.Error("add_n(lside) ; add_n(rside) as sequences should not interfere")
	}
	// add_n(lside) vs a read of lside's region.
	U := []ast.Stmt{c1}
	V := []ast.Stmt{parseStmt(t, "i := lside.value")}
	interferes, err = SequencesInterfere(info, "main", p0, U, V, true)
	if err != nil {
		t.Fatal(err)
	}
	if !interferes {
		t.Error("updating call vs read of same region must interfere")
	}
}

func TestSequencesRequireTree(t *testing.T) {
	info := analyzeFig7(t)
	callA := findCallStmt(info.Prog, "main", "add_n", 0)
	p0 := info.Before[callA].Copy()
	p0.SetShape(matrix.ShapeMaybeDAG)
	_, err := SequencesInterfere(info, "main", p0,
		[]ast.Stmt{parseStmt(t, "lside.value := 1")},
		[]ast.Stmt{parseStmt(t, "rside.value := 2")}, true)
	if err != ErrNotTree {
		t.Errorf("want ErrNotTree, got %v", err)
	}
}

func TestRelConflictTranslation(t *testing.T) {
	// Roots related by L1: (root, value, L1) and (lside, value, S) clash.
	m := matrix.New()
	nonNil := matrix.Attr{Nil: matrix.NonNil, Indeg: matrix.UnknownDeg}
	m.Add("root", nonNil)
	m.Add("lside", nonNil)
	m.Put("root", "lside", path.MustParseSet("L1"))
	a := RelLocation{"root", ValueLoc, path.MustParseSet("L1")}
	b := RelLocation{"lside", ValueLoc, path.MustParseSet("S")}
	if !RelConflict(a, b, m) {
		t.Error("L1-from-root and S-from-lside are the same node")
	}
	c := RelLocation{"root", ValueLoc, path.MustParseSet("R1")}
	if RelConflict(c, b, m) {
		t.Error("R1-from-root is not lside")
	}
	// Different fields never conflict.
	d := RelLocation{"root", LeftLoc, path.MustParseSet("L1")}
	if RelConflict(d, b, m) {
		t.Error("left vs value cannot conflict")
	}
	// Var locations conflict by name.
	v1 := RelLocation{"x", VarLoc, sameS}
	v2 := RelLocation{"x", VarLoc, sameS}
	if !RelConflict(v1, v2, m) {
		t.Error("same variable conflicts")
	}
	if RelConflict(v1, RelLocation{"y", VarLoc, sameS}, m) {
		t.Error("different variables do not conflict")
	}
}

func TestUsedBeforeDefined(t *testing.T) {
	src := `
program ubd
procedure main()
  a, b, c: handle; x: int
begin
  a := new();
  b := a.left;
  x := c.value
end;
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	d := prog.Proc("main")
	live := UsedBeforeDefined(d, d.Body.Stmts)
	if live["a"] {
		t.Error("a is defined first; not live-in")
	}
	if !live["c"] {
		t.Error("c is used before defined")
	}
	if live["b"] {
		t.Error("b is defined before use")
	}
}
