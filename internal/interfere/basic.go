// Package interfere implements the three interference analyses of §5 of
// Hendren & Nicolau (1989):
//
//   - basic statements (§5.1): location abstraction, the alias function A,
//     the read/write sets of Figure 5, the pairwise interference set
//     I(si,sj,p) of Figure 6 and its incremental n-statement extension
//     (Figure 4);
//   - procedure calls (§5.2): the argument-relatedness test with the
//     read-only/update refinement;
//   - statement sequences (§5.3): relative locations rooted at live
//     handles (Figures 9–10), valid on TREE-shaped stores.
package interfere

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/matrix"
	"repro/internal/sil/ast"
)

// LocKind is the kind component of the paper's location abstraction.
type LocKind uint8

// Location kinds: a variable, or one of the three node fields.
const (
	VarLoc LocKind = iota
	LeftLoc
	RightLoc
	ValueLoc
)

func (k LocKind) String() string {
	switch k {
	case VarLoc:
		return "var"
	case LeftLoc:
		return "left"
	case RightLoc:
		return "right"
	case ValueLoc:
		return "value"
	}
	return "?"
}

func kindOf(f ast.Field) LocKind {
	switch f {
	case ast.Left:
		return LeftLoc
	case ast.Right:
		return RightLoc
	default:
		return ValueLoc
	}
}

// Location is the paper's (name, kind) pair: (x, var) is the variable x
// itself; (a, left/right/value) is a field of the node named by a.
type Location struct {
	Name string
	Kind LocKind
}

func (l Location) String() string { return fmt.Sprintf("(%s,%s)", l.Name, l.Kind) }

// LocSet is a set of locations.
type LocSet map[Location]bool

// Add inserts a location.
func (s LocSet) Add(l Location) { s[l] = true }

// AddAll inserts every location of t.
func (s LocSet) AddAll(t LocSet) {
	for l := range t {
		s[l] = true
	}
}

// Intersects reports whether the sets share a location.
func (s LocSet) Intersects(t LocSet) bool {
	for l := range s {
		if t[l] {
			return true
		}
	}
	return false
}

// Intersection returns the common locations.
func (s LocSet) Intersection(t LocSet) LocSet {
	out := LocSet{}
	for l := range s {
		if t[l] {
			out.Add(l)
		}
	}
	return out
}

// String renders the set deterministically, in the figures' notation.
func (s LocSet) String() string {
	if len(s) == 0 {
		return "{}"
	}
	parts := make([]string, 0, len(s))
	for l := range s {
		parts = append(parts, l.String())
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ",") + "}"
}

// Alias is the paper's A(a, f, p): the set of locations that may be aliased
// to (a, f). Location (x, f) is in the result iff p[a,x] (or p[x,a])
// contains S or S?.
func Alias(a string, f LocKind, p *matrix.Matrix) LocSet {
	out := LocSet{}
	out.Add(Location{a, f})
	ha := matrix.Handle(a)
	for _, x := range p.Handles() {
		if x == ha || x.IsSymbolic() {
			continue
		}
		if p.Get(ha, x).HasSame() || p.Get(x, ha).HasSame() {
			out.Add(Location{string(x), f})
		}
	}
	return out
}

// ReadWrite computes the paper's R(s, p) and W(s, p) (Figure 5, extended
// to the scalar-expression granularity Figure 8 itself uses). ok is false
// for statements outside the basic fragment (blocks, ifs, loops, calls —
// calls are handled by the coarse-grain §5.2 analysis).
func ReadWrite(s ast.Stmt, p *matrix.Matrix) (r, w LocSet, ok bool) {
	r, w = LocSet{}, LocSet{}
	asg, isAssign := s.(*ast.Assign)
	if !isAssign {
		return nil, nil, false
	}
	switch lhs := asg.Lhs.(type) {
	case *ast.VarLV:
		w.Add(Location{lhs.Name, VarLoc})
		switch rhs := asg.Rhs.(type) {
		case *ast.NilLit, *ast.NewExpr:
			// R = {}
		case *ast.VarRef:
			r.Add(Location{rhs.Name, VarLoc})
		case *ast.FieldRef:
			r.Add(Location{rhs.Base, VarLoc})
			r.AddAll(Alias(rhs.Base, kindOf(rhs.Field), p))
		case *ast.CallExpr:
			return nil, nil, false
		default:
			exprReads(asg.Rhs, p, r)
		}
	case *ast.FieldLV:
		r.Add(Location{lhs.Base, VarLoc})
		if lhs.Field == ast.Value {
			exprReads(asg.Rhs, p, r)
		} else {
			if v, okV := asg.Rhs.(*ast.VarRef); okV {
				r.Add(Location{v.Name, VarLoc})
			}
		}
		w.AddAll(Alias(lhs.Base, kindOf(lhs.Field), p))
	default:
		return nil, nil, false
	}
	return r, w, true
}

// exprReads collects the read locations of a scalar expression.
func exprReads(e ast.Expr, p *matrix.Matrix, r LocSet) {
	switch e := e.(type) {
	case *ast.VarRef:
		r.Add(Location{e.Name, VarLoc})
	case *ast.FieldRef:
		r.Add(Location{e.Base, VarLoc})
		r.AddAll(Alias(e.Base, kindOf(e.Field), p))
	case *ast.Unary:
		exprReads(e.X, p, r)
	case *ast.Binary:
		exprReads(e.X, p, r)
		exprReads(e.Y, p, r)
	}
}

// Interference is the paper's I(si, sj, p): the locations through which
// the two statements may interfere. The second result is false when either
// statement is outside the basic fragment.
func Interference(si, sj ast.Stmt, p *matrix.Matrix) (LocSet, bool) {
	ri, wi, ok1 := ReadWrite(si, p)
	rj, wj, ok2 := ReadWrite(sj, p)
	if !ok1 || !ok2 {
		return nil, false
	}
	out := LocSet{}
	rwj := LocSet{}
	rwj.AddAll(rj)
	rwj.AddAll(wj)
	out.AddAll(wi.Intersection(rwj))
	rwi := LocSet{}
	rwi.AddAll(ri)
	rwi.AddAll(wi)
	out.AddAll(wj.Intersection(rwi))
	return out, true
}

// NoInterferenceN reports whether the n statements may all execute in
// parallel: the incremental scheme of §5.1 — each statement is checked
// against the accumulated read and write sets of those before it.
func NoInterferenceN(stmts []ast.Stmt, p *matrix.Matrix) bool {
	accR, accW := LocSet{}, LocSet{}
	for _, s := range stmts {
		r, w, ok := ReadWrite(s, p)
		if !ok {
			return false
		}
		rw := LocSet{}
		rw.AddAll(r)
		rw.AddAll(w)
		if accW.Intersects(rw) || w.Intersects(accR) {
			return false
		}
		accR.AddAll(r)
		accW.AddAll(w)
	}
	return true
}
