package interfere

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/matrix"
	"repro/internal/path"
	"repro/internal/sil/ast"
)

// This file implements §5.3: interference between statement sequences U
// and V executed from the same program point (Figure 9). Locations are
// relative: (name, field, access-path) where name is a live root handle
// and the access path is a set of path expressions from that root
// (Figure 10). The method is valid when the store is a TREE at the initial
// point; the paper's induction on tree height fails for DAGs, and
// SequencesInterfere refuses accordingly.

// ErrNotTree reports that the §5.3 analysis was applied to a store that
// may not be a TREE.
var ErrNotTree = errors.New("interfere: sequence analysis requires a TREE store at the initial point")

// RelLocation is the paper's relative location triple.
type RelLocation struct {
	Root  string
	Kind  LocKind
	Paths path.Set
}

func (l RelLocation) String() string {
	return fmt.Sprintf("(%s,%s,%s)", l.Root, l.Kind, l.Paths)
}

// RelSet is a set of relative locations.
type RelSet []RelLocation

// String renders deterministically.
func (s RelSet) String() string {
	parts := make([]string, len(s))
	for i, l := range s {
		parts[i] = l.String()
	}
	sort.Strings(parts)
	return "{" + strings.Join(parts, ",") + "}"
}

func (s *RelSet) add(l RelLocation) {
	if l.Kind != VarLoc && l.Paths.IsEmpty() {
		return
	}
	*s = append(*s, l)
}

// sortedRoots returns live's keys in canonical (sorted) order. RelSets
// are built root by root, so building them in map iteration order would
// leak process history into their member order; every iteration over the
// live-root set goes through here.
func sortedRoots(live map[string]bool) []string {
	roots := make([]string, 0, len(live))
	for l := range live {
		roots = append(roots, l)
	}
	sort.Strings(roots)
	return roots
}

// RelAlias is the paper's A^r(h, f, L, p): the relative locations possibly
// aliased to h.f, expressed from the live roots. When h itself is live,
// the diagonal S entry contributes (h, f, S) automatically.
func RelAlias(h string, f LocKind, live map[string]bool, p *matrix.Matrix) RelSet {
	var out RelSet
	for _, l := range sortedRoots(live) {
		rel := p.Get(matrix.Handle(l), matrix.Handle(h))
		if !rel.IsEmpty() {
			out.add(RelLocation{Root: l, Kind: f, Paths: rel})
		}
	}
	return out
}

// sameS is the access path {S}.
var sameS = path.NewSet(path.Same())

// relReadWrite computes R^r(s, p, L) and W^r(s, p, L) for one basic
// statement (Figure 10, extended to scalar expressions and calls; for a
// call, every node reachable from a handle argument is readable and every
// node reachable from an update argument is writable — the D* closure).
func relReadWrite(prog *ast.Program, info *analysis.Info, s ast.Stmt, p *matrix.Matrix,
	live map[string]bool, useReadOnly bool) (r, w RelSet, ok bool) {
	switch s := s.(type) {
	case *ast.Assign:
		switch lhs := s.Lhs.(type) {
		case *ast.VarLV:
			w.add(RelLocation{lhs.Name, VarLoc, sameS})
			switch rhs := s.Rhs.(type) {
			case *ast.NilLit, *ast.NewExpr:
			case *ast.VarRef:
				r.add(RelLocation{rhs.Name, VarLoc, sameS})
			case *ast.FieldRef:
				r.add(RelLocation{rhs.Base, VarLoc, sameS})
				r = append(r, RelAlias(rhs.Base, kindOf(rhs.Field), live, p)...)
			case *ast.CallExpr:
				cr, cw := relCall(prog, info, p, live, rhs.Name, rhs.Args, useReadOnly)
				r = append(r, cr...)
				w = append(w, cw...)
			default:
				relExprReads(s.Rhs, p, live, &r)
			}
		case *ast.FieldLV:
			r.add(RelLocation{lhs.Base, VarLoc, sameS})
			if lhs.Field == ast.Value {
				relExprReads(s.Rhs, p, live, &r)
			} else if v, okV := s.Rhs.(*ast.VarRef); okV {
				r.add(RelLocation{v.Name, VarLoc, sameS})
			}
			w = append(w, RelAlias(lhs.Base, kindOf(lhs.Field), live, p)...)
		}
		return r, w, true
	case *ast.CallStmt:
		cr, cw := relCall(prog, info, p, live, s.Name, s.Args, useReadOnly)
		return cr, cw, true
	}
	return nil, nil, false
}

// relCall abstracts a call's effects as relative locations: each handle
// argument contributes its whole subtree (paths p[l,arg]·D*) as reads, and
// each update argument contributes it as writes, across all three fields.
func relCall(prog *ast.Program, info *analysis.Info, p *matrix.Matrix, live map[string]bool,
	name string, args []ast.Expr, useReadOnly bool) (r, w RelSet) {
	star := path.NewSet(path.SamePossible(), info.PathSpace().NewPossible(path.Plus(path.DownD)))
	handleArgs := callHandleArgs(prog, name, args)
	updateArgs := map[string]bool{}
	for _, u := range callUpdateArgs(prog, info, name, args, useReadOnly) {
		updateArgs[u] = true
	}
	// The call reads its argument variables (of either type).
	for _, a := range args {
		if v, ok := a.(*ast.VarRef); ok {
			r.add(RelLocation{v.Name, VarLoc, sameS})
		}
	}
	fields := []LocKind{LeftLoc, RightLoc, ValueLoc}
	for _, h := range handleArgs {
		for _, l := range sortedRoots(live) {
			rel := p.Get(matrix.Handle(l), matrix.Handle(h))
			if rel.IsEmpty() {
				continue
			}
			sub := rel.ConcatAll(star)
			for _, f := range fields {
				r.add(RelLocation{l, f, sub})
				if updateArgs[h] {
					w.add(RelLocation{l, f, sub})
				}
			}
		}
	}
	return r, w
}

func relExprReads(e ast.Expr, p *matrix.Matrix, live map[string]bool, r *RelSet) {
	switch e := e.(type) {
	case *ast.VarRef:
		r.add(RelLocation{e.Name, VarLoc, sameS})
	case *ast.FieldRef:
		r.add(RelLocation{e.Base, VarLoc, sameS})
		*r = append(*r, RelAlias(e.Base, kindOf(e.Field), live, p)...)
	case *ast.Unary:
		relExprReads(e.X, p, live, r)
	case *ast.Binary:
		relExprReads(e.X, p, live, r)
		relExprReads(e.Y, p, live, r)
	}
}

// RelConflict decides whether two relative locations can denote the same
// concrete location, given the initial-point matrix p0. Variable locations
// conflict on name equality; field locations need the same field kind and
// overlapping access paths, translated across roots via p0.
func RelConflict(a, b RelLocation, p0 *matrix.Matrix) bool {
	if a.Kind == VarLoc || b.Kind == VarLoc {
		return a.Kind == VarLoc && b.Kind == VarLoc && a.Root == b.Root
	}
	if a.Kind != b.Kind {
		return false
	}
	if a.Root == b.Root {
		return path.MayOverlapSet(a.Paths, b.Paths)
	}
	// Translate b's paths into a's root (and vice versa) via p0.
	if rel := p0.Get(matrix.Handle(a.Root), matrix.Handle(b.Root)); !rel.IsEmpty() {
		if path.MayOverlapSet(a.Paths, rel.ConcatAll(b.Paths)) {
			return true
		}
	}
	if rel := p0.Get(matrix.Handle(b.Root), matrix.Handle(a.Root)); !rel.IsEmpty() {
		if path.MayOverlapSet(b.Paths, rel.ConcatAll(a.Paths)) {
			return true
		}
	}
	// Unrelated roots head disjoint subtrees in a TREE.
	return false
}

// anyConflict checks W against R∪W location-wise.
func anyConflict(w, rw RelSet, p0 *matrix.Matrix) bool {
	for _, x := range w {
		for _, y := range rw {
			if RelConflict(x, y, p0) {
				return true
			}
		}
	}
	return false
}

// UsedBeforeDefined computes the live-root set L of §5.3 for a sequence:
// handles read by some statement before any statement of the sequence
// assigns them.
func UsedBeforeDefined(d *ast.ProcDecl, seq []ast.Stmt) map[string]bool {
	used := map[string]bool{}
	defined := map[string]bool{}
	isHandle := func(name string) bool {
		v := d.Lookup(name)
		return v != nil && v.Type == ast.HandleT
	}
	noteUse := func(name string) {
		if isHandle(name) && !defined[name] {
			used[name] = true
		}
	}
	var scanExpr func(e ast.Expr)
	scanExpr = func(e ast.Expr) {
		switch e := e.(type) {
		case *ast.VarRef:
			noteUse(e.Name)
		case *ast.FieldRef:
			noteUse(e.Base)
		case *ast.Unary:
			scanExpr(e.X)
		case *ast.Binary:
			scanExpr(e.X)
			scanExpr(e.Y)
		case *ast.CallExpr:
			for _, a := range e.Args {
				scanExpr(a)
			}
		}
	}
	var scanStmt func(s ast.Stmt)
	scanStmt = func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.Block:
			for _, st := range s.Stmts {
				scanStmt(st)
			}
		case *ast.Par:
			for _, st := range s.Branches {
				scanStmt(st)
			}
		case *ast.If:
			scanExpr(s.Cond)
			scanStmt(s.Then)
			if s.Else != nil {
				scanStmt(s.Else)
			}
		case *ast.While:
			scanExpr(s.Cond)
			scanStmt(s.Body)
		case *ast.CallStmt:
			for _, a := range s.Args {
				scanExpr(a)
			}
		case *ast.Assign:
			scanExpr(s.Rhs)
			switch lhs := s.Lhs.(type) {
			case *ast.FieldLV:
				noteUse(lhs.Base)
			case *ast.VarLV:
				if isHandle(lhs.Name) {
					// Straight-line definition kills later uses; inside
					// branches/loops the definition may not execute, so
					// only top-level assignments count as definitions.
					defined[lhs.Name] = true
				}
			}
		}
	}
	for _, s := range seq {
		if asg, ok := s.(*ast.Assign); ok {
			scanStmt(asg)
			continue
		}
		// Conservatively treat nested statements as uses only.
		saved := defined
		defined = map[string]bool{}
		for k, v := range saved {
			defined[k] = v
		}
		scanStmt(s)
		defined = saved
	}
	return used
}

// SequencesInterfere implements §5.3: given two statement sequences U and
// V at a common initial point with matrix p0 inside procedure procName, it
// decides whether U ‖ V is safe. It returns ErrNotTree when the store may
// not be a TREE (the method's validity condition).
func SequencesInterfere(info *analysis.Info, procName string, p0 *matrix.Matrix,
	U, V []ast.Stmt, useReadOnly bool) (bool, error) {
	if !p0.Shape().IsTree() {
		return true, ErrNotTree
	}
	d := info.Prog.Proc(procName)
	if d == nil {
		return true, fmt.Errorf("interfere: unknown procedure %s", procName)
	}
	live := UsedBeforeDefined(d, U)
	for h := range UsedBeforeDefined(d, V) {
		live[h] = true
	}
	collect := func(seq []ast.Stmt) (RelSet, RelSet, error) {
		mats, _ := info.Replay(procName, p0, seq)
		var rAll, wAll RelSet
		bad := false
		// Visit the replayed statements in program order, not in the
		// order mats happens to iterate: the RelSets' member order is
		// part of the deterministic verdict pipeline.
		var visit func(s ast.Stmt)
		visit = func(s ast.Stmt) {
			if m := mats[s]; m != nil {
				switch s := s.(type) {
				case *ast.Assign, *ast.CallStmt:
					r, w, ok := relReadWrite(info.Prog, info, s, m, live, useReadOnly)
					if !ok {
						bad = true
						break
					}
					rAll = append(rAll, r...)
					wAll = append(wAll, w...)
				case *ast.If:
					var rs RelSet
					relExprReads(s.Cond, m, live, &rs)
					rAll = append(rAll, rs...)
				case *ast.While:
					var rs RelSet
					relExprReads(s.Cond, m, live, &rs)
					rAll = append(rAll, rs...)
				}
			}
			switch s := s.(type) {
			case *ast.Block:
				for _, st := range s.Stmts {
					visit(st)
				}
			case *ast.Par:
				for _, st := range s.Branches {
					visit(st)
				}
			case *ast.If:
				visit(s.Then)
				if s.Else != nil {
					visit(s.Else)
				}
			case *ast.While:
				visit(s.Body)
			}
		}
		for _, s := range seq {
			visit(s)
		}
		if bad {
			return nil, nil, fmt.Errorf("interfere: sequence contains non-analyzable statements")
		}
		return rAll, wAll, nil
	}
	rU, wU, err := collect(U)
	if err != nil {
		return true, err
	}
	rV, wV, err := collect(V)
	if err != nil {
		return true, err
	}
	rwU := append(append(RelSet{}, rU...), wU...)
	rwV := append(append(RelSet{}, rV...), wV...)
	if anyConflict(wU, rwV, p0) || anyConflict(wV, rwU, p0) {
		return true, nil
	}
	return false, nil
}
