package analysis

// Interprocedural stress tests beyond the Figure 7 replay: function
// results, mutual recursion, and call-effect mapping.

import (
	"context"

	"testing"

	"repro/internal/matrix"
	"repro/internal/progs"
)

func analyzeCorpus(t *testing.T, src string, roots ...string) *Info {
	t.Helper()
	prog, err := progs.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := Analyze(context.Background(), prog, Options{ExternalRoots: roots})
	if err != nil {
		t.Fatal(err)
	}
	return info
}

// TestTreeCopyReturnMapping: the clone returned by copy(root) must be
// unrelated to the original tree — fresh nodes only.
func TestTreeCopyReturnMapping(t *testing.T) {
	info := analyzeCorpus(t, progs.TreeCopy, "root")
	main := info.Prog.Proc("main")
	last := main.Body.Stmts[len(main.Body.Stmts)-1]
	m := info.After[last]
	if m == nil {
		t.Fatal("no exit matrix")
	}
	if !m.Get("root", "twin").IsEmpty() || !m.Get("twin", "root").IsEmpty() {
		t.Errorf("twin should be unrelated to root: root→twin=%s twin→root=%s",
			m.Get("root", "twin"), m.Get("twin", "root"))
	}
	sum := info.Summaries["copy"]
	if sum == nil {
		t.Fatal("no summary for copy")
	}
	if !sum.ReadOnlyParam(0) {
		t.Error("copy only reads its argument")
	}
	if !sum.ModifiesLinks {
		t.Error("copy builds structure (links fresh nodes)")
	}
	if sum.LinkParams[0] {
		t.Error("copy never updates through its parameter")
	}
}

// TestMutualRecursionConverges: the even/odd walker's summaries reach a
// fixpoint and classify both handle parameters as update (value writes).
func TestMutualRecursionConverges(t *testing.T) {
	info := analyzeCorpus(t, progs.MutualWalk, "root")
	for _, name := range []string{"even", "odd"} {
		sum := info.Summaries[name]
		if sum == nil {
			t.Fatalf("no summary for %s", name)
		}
		if !sum.UpdateParams[0] {
			t.Errorf("%s writes values through its parameter", name)
		}
		if sum.ModifiesLinks {
			t.Errorf("%s modifies no links", name)
		}
		if sum.MergedExit() == nil {
			t.Errorf("%s has no exit matrix", name)
		}
	}
	// The recursive call pair inside even stays independent.
	callA := findCall(info.Prog, "even", "odd", 0)
	if callA == nil {
		t.Fatal("no odd call in even")
	}
	m := info.Before[callA]
	if m == nil {
		t.Fatal("no matrix before odd(l)")
	}
	if m.Related("l", "r") {
		t.Errorf("l and r must be unrelated in mutual recursion: %s / %s",
			m.Get("l", "r"), m.Get("r", "l"))
	}
	if m.Shape() != matrix.ShapeTree {
		t.Errorf("shape = %v", m.Shape())
	}
}

// TestLeftmostLoopMatrixShape: the workload version of Figure 3.
func TestLeftmostLoopMatrixShape(t *testing.T) {
	info := analyzeCorpus(t, progs.LeftmostMax, "root")
	w := findWhile(info.Prog, "main", 0)
	if w == nil {
		t.Fatal("no while")
	}
	after := info.After[w]
	got := after.Get("root", "cur").String()
	if got != "S?, L+?" {
		t.Errorf("root→cur = %q, want S?, L+?", got)
	}
}

// TestExternalRootsAreRelatedPairwise: two external roots may overlap, so
// updating through one must be seen as possibly affecting the other.
func TestExternalRootsAreRelatedPairwise(t *testing.T) {
	src := `
program tworoots
procedure main()
  ra, rb: handle
begin
  if ra <> nil then ra.value := 1
end;
`
	prog, err := progs.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := Analyze(context.Background(), prog, Options{ExternalRoots: []string{"ra", "rb"}})
	if err != nil {
		t.Fatal(err)
	}
	main := info.Prog.Proc("main")
	m := info.Before[main.Body.Stmts[0]]
	if m.Get("ra", "rb").IsEmpty() || m.Get("rb", "ra").IsEmpty() {
		t.Error("external roots must be pairwise possibly related")
	}
	if m.Attr("ra").Nil != matrix.MaybeNil {
		t.Errorf("external root nilness = %v, want maybe", m.Attr("ra").Nil)
	}
	if m.Attr("ra").Indeg != matrix.UnknownDeg {
		t.Errorf("external root indegree = %v, want unknown", m.Attr("ra").Indeg)
	}
}

// TestCallEffectHavocOnRelatedHandles: after a structure-modifying call,
// a caller handle inside the modified region is demoted to possible and
// re-covered.
func TestCallEffectHavocOnRelatedHandles(t *testing.T) {
	src := `
program havoc
procedure main()
  root, kid: handle
begin
  root := new();
  kid := new();
  root.left := kid;
  shake(root)
end;
procedure shake(h: handle)
  l: handle
begin
  if h <> nil then
  begin
    l := h.left;
    h.left := nil;
    h.right := l
  end
end;
`
	prog, err := progs.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := Analyze(context.Background(), prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	main := info.Prog.Proc("main")
	last := main.Body.Stmts[len(main.Body.Stmts)-1]
	m := info.After[last]
	entry := m.Get("root", "kid")
	if entry.IsEmpty() {
		t.Fatal("kid should still be possibly below root")
	}
	// The definite L1 must be gone: shake moved kid to the right side.
	for _, p := range entry.Paths() {
		if p.Definite() {
			t.Errorf("no definite path may survive the call: %s", entry)
		}
	}
}
