package analysis

// Regression tests for the quiescent-Info contract that the serving layer
// (internal/service) depends on: Replay must resolve call contexts against
// the converged tables read-only — binding the merged fallback for entries
// whose exact context was LRU-evicted — and a shared *Info must tolerate
// concurrent readers (ProcOf/Shape/DiagStrings/Replay) without any
// mutation-after-Analyze.

import (
	"context"

	"fmt"
	"sync"
	"testing"

	"repro/internal/matrix"
	"repro/internal/progs"
	"repro/internal/sil/ast"
)

// callStmtsTo returns main's call statements to the named procedure, in
// source order.
func callStmtsTo(prog *ast.Program, name string) []*ast.CallStmt {
	var out []*ast.CallStmt
	walkStmts(prog.Proc("main").Body, func(s ast.Stmt) {
		if c, ok := s.(*ast.CallStmt); ok && c.Name == name {
			out = append(out, c)
		}
	})
	return out
}

// TestReplayBindsFallbackAfterEviction drives the context table of ctxpair
// past its cap (MaxContexts=1): the aliased-roots call's exact context is
// LRU-evicted into the merged fallback when the fresh-pair call is
// admitted. A later Replay that re-presents the evicted entry must bind
// the fallback (whose widened entry absorbs every context ever presented),
// not a stale exact context — and certainly not bottom.
func TestReplayBindsFallbackAfterEviction(t *testing.T) {
	prog, err := progs.Compile(progs.CtxPair)
	if err != nil {
		t.Fatal(err)
	}
	roots := []string{"ra", "rb"}
	info, err := Analyze(context.Background(), prog, Options{ExternalRoots: roots, MaxContexts: 1, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	sum := info.Summaries["bump"]
	exact, hasMerged, evictions := sum.ContextStats()
	if evictions == 0 || !hasMerged || exact != 1 {
		t.Fatalf("precondition: cap 1 must evict into the fallback (exact=%d merged=%v evictions=%d)",
			exact, hasMerged, evictions)
	}

	// Replay main's whole body with the same machinery Info.Replay uses,
	// plus an onCall probe capturing which context every call site binds.
	main := prog.Proc("main")
	p0 := entryForMain(main, info.Opts)
	a := &analyzer{
		eng:       newEngine(nil, info.Prog, info.Opts, info),
		recording: true,
		mute:      true,
		sink:      map[ast.Stmt]*matrix.Matrix{},
		cur:       main,
	}
	bound := map[*ast.CallStmt]*ProcContext{}
	m := p0.Copy()
	for _, s := range main.Body.Stmts {
		if c, ok := s.(*ast.CallStmt); ok && c.Name == "bump" {
			// Capture the binding exactly as a.call resolves it.
			prev := m.Copy()
			m = a.stmt(m, s)
			bound[c] = replayBinding(t, a, sum, prev, c)
			continue
		}
		m = a.stmt(m, s)
	}
	if m == nil {
		t.Fatal("replay of main must not end in bottom")
	}
	calls := callStmtsTo(prog, "bump")
	if len(calls) != 2 {
		t.Fatalf("ctxpair main should call bump twice, found %d", len(calls))
	}
	evictedBinding, survivorBinding := bound[calls[0]], bound[calls[1]]
	if evictedBinding == nil || survivorBinding == nil {
		t.Fatal("replay did not resolve both bump call sites")
	}
	if !evictedBinding.IsMerged() {
		t.Errorf("evicted entry must bind the merged fallback, got exact context (entry %v)",
			evictedBinding.Entry().Handles())
	}
	if survivorBinding.IsMerged() {
		t.Error("surviving exact context must still resolve exactly, got the fallback")
	}
	if evictedBinding.Exit() == nil {
		t.Error("fallback bound by the replay must have a materialized exit")
	}
	// The fallback's widened entry must cover the surviving exact entry —
	// it absorbed every context ever presented, which is what makes it a
	// sound stand-in for the evicted one.
	if !entryCoveredBy(survivorBinding.Entry(), evictedBinding.Entry()) {
		t.Error("fallback entry does not cover the surviving exact entry — not the widened join")
	}

	// The public API agrees: Replay over the same sequence is non-bottom
	// and records a matrix before every statement it visited.
	mats, final := info.Replay("main", p0, []ast.Stmt{calls[0]})
	if final == nil {
		t.Fatal("Info.Replay of the evicted-context call returned bottom")
	}
	if len(mats) == 0 {
		t.Error("Info.Replay recorded no before-matrices")
	}
}

// replayBinding resolves the context a replayed call site binds, using the
// same read-only lookup a.call performs (the staged matrix prev is the
// state immediately before the call).
func replayBinding(t *testing.T, a *analyzer, sum *Summary, prev *matrix.Matrix, c *ast.CallStmt) *ProcContext {
	t.Helper()
	callee := a.eng.prog.Proc(c.Name)
	hIdx := handleParams(callee)
	actuals := make([]matrix.Handle, len(hIdx))
	nilArg := make([]bool, len(hIdx))
	for k, pi := range hIdx {
		switch v := c.Args[pi].(type) {
		case *ast.VarRef:
			actuals[k] = matrix.Handle(v.Name)
		case *ast.NilLit:
			nilArg[k] = true
		}
	}
	ent := a.buildEntry(prev, callee, actuals, nilArg)
	return sum.lookupContext(ent, a.eng.sameSCC(a.cur.Name, c.Name))
}

// TestReplayDeadCodeCallStaysQuiescent: a call only reachable after a
// non-returning call is never analyzed, so its callee has no summary.
// Replaying that statement must return bottom WITHOUT creating a summary —
// the old code materialized one in the shared Info.Summaries map, a data
// race under concurrent Replay.
func TestReplayDeadCodeCallStaysQuiescent(t *testing.T) {
	src := `
program deadcall
procedure main()
  x: handle
begin
  x := new();
  spin(x);
  touch(x)
end;
procedure spin(h: handle)
begin
  spin(h)
end;
procedure touch(h: handle)
begin
  h.value := 1
end;
`
	prog, err := progs.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := Analyze(context.Background(), prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := info.Summaries["touch"]; ok {
		t.Fatal("precondition: touch must be unreachable (no summary)")
	}
	call := callStmtsTo(prog, "touch")[0]
	p0 := matrix.New()
	p0.Add("x", matrix.Attr{Nil: matrix.NonNil, Indeg: matrix.Root})

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				if _, final := info.Replay("main", p0, []ast.Stmt{call}); final != nil {
					t.Error("replay of a dead-code call must be bottom")
					return
				}
			}
		}()
	}
	wg.Wait()
	if _, ok := info.Summaries["touch"]; ok {
		t.Error("Replay mutated Info.Summaries (created a summary for touch)")
	}
}

// TestSharedInfoConcurrentReaders hammers one shared Info from 8
// goroutines mixing every read surface the serving layer uses — ProcOf,
// Shape, ExitShape, DiagStrings, ContextTableStats, summary accessors, and
// full-body Replay. Run under -race this pins the immutability-after-
// Analyze contract.
func TestSharedInfoConcurrentReaders(t *testing.T) {
	for _, tc := range []struct {
		name, src string
		roots     []string
		ctx       int
	}{
		{"add_and_reverse", progs.AddAndReverse, nil, 0},
		{"ctxpair-cap1", progs.CtxPair, []string{"ra", "rb"}, 1},
		{"mutualwalk", progs.MutualWalk, []string{"root"}, 0},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			prog, err := progs.Compile(tc.src)
			if err != nil {
				t.Fatal(err)
			}
			info, err := Analyze(context.Background(), prog, Options{ExternalRoots: tc.roots, MaxContexts: tc.ctx})
			if err != nil {
				t.Fatal(err)
			}
			main := prog.Proc("main")
			p0 := entryForMain(main, info.Opts)
			want := fmt.Sprintf("%v|%v|%v", info.Shape(), info.ExitShape(), info.DiagStrings())
			var wg sync.WaitGroup
			for g := 0; g < 8; g++ {
				wg.Add(1)
				go func() {
					defer wg.Done()
					for i := 0; i < 10; i++ {
						got := fmt.Sprintf("%v|%v|%v", info.Shape(), info.ExitShape(), info.DiagStrings())
						if got != want {
							t.Errorf("concurrent read diverged: %s != %s", got, want)
							return
						}
						for s := range info.Before {
							if _, ok := info.ProcOf(s); !ok {
								t.Error("ProcOf lost a statement")
								return
							}
						}
						_ = info.ContextTableStats()
						for _, sum := range info.Summaries {
							_ = sum.ReadOnlyParam(0)
							_ = sum.MergedEntry()
							_ = sum.MergedExit()
							for _, c := range sum.Contexts() {
								_, _ = c.Entry(), c.Exit()
							}
						}
						if _, final := info.Replay("main", p0, main.Body.Stmts); final == nil {
							t.Error("replay of main went to bottom")
							return
						}
					}
				}()
			}
			wg.Wait()
		})
	}
}
