package analysis

// Structure-verification tests (§3.1, §4): the analyzer must detect cycle
// and DAG creation, report nil dereferences, and agree with the concrete
// heap classification on whole programs.

import (
	"strings"
	"testing"

	"repro/internal/matrix"
)

func hasDiag(info *Info, level, substr string) bool {
	for _, d := range info.Diags {
		if d.Level == level && strings.Contains(d.Msg, substr) {
			return true
		}
	}
	return false
}

func TestVerifyCycleCreation(t *testing.T) {
	src := `
program cyc
procedure main()
  a, b: handle
begin
  a := new();
  b := new();
  a.left := b;
  b.left := a
end;
`
	info := mustAnalyze(t, src, Options{})
	if got := info.Shape(); got != matrix.ShapeCyclic {
		t.Errorf("shape = %v, want CYCLE", got)
	}
	if !hasDiag(info, "error", "creates a cycle") {
		t.Errorf("missing cycle diagnostic: %v", info.DiagStrings())
	}
}

func TestVerifySelfLoop(t *testing.T) {
	src := `
program selfloop
procedure main()
  a: handle
begin
  a := new();
  a.right := a
end;
`
	info := mustAnalyze(t, src, Options{})
	if got := info.Shape(); got != matrix.ShapeCyclic {
		t.Errorf("shape = %v, want CYCLE", got)
	}
}

func TestVerifyDAGCreation(t *testing.T) {
	src := `
program dag
procedure main()
  a, b, c: handle
begin
  a := new();
  b := new();
  c := new();
  a.left := c;
  b.left := c
end;
`
	info := mustAnalyze(t, src, Options{})
	if got := info.Shape(); got != matrix.ShapeDAG {
		t.Errorf("shape = %v, want DAG", got)
	}
	if !hasDiag(info, "warn", "DAG") {
		t.Errorf("missing DAG diagnostic: %v", info.DiagStrings())
	}
}

func TestVerifyTreeStaysTree(t *testing.T) {
	src := `
program tree
procedure main()
  a, b, c: handle
begin
  a := new();
  b := new();
  c := new();
  a.left := b;
  a.right := c
end;
`
	info := mustAnalyze(t, src, Options{})
	if got := info.Shape(); got != matrix.ShapeTree {
		t.Errorf("shape = %v, want TREE", got)
	}
	if len(info.Diags) != 0 {
		t.Errorf("unexpected diagnostics: %v", info.DiagStrings())
	}
}

// TestVerifySwapRecoversTree: the §1 motivating case — the temporary DAG
// during a child swap is reported but the final estimate is TREE again.
func TestVerifySwapRecoversTree(t *testing.T) {
	src := `
program swap
procedure main()
  h, l, r: handle
begin
  h := new();
  l := new();
  r := new();
  h.left := l;
  h.right := r;
  h.left := r;
  h.right := l
end;
`
	info := mustAnalyze(t, src, Options{})
	if !hasDiag(info, "warn", "DAG") {
		t.Errorf("the temporary DAG should be reported: %v", info.DiagStrings())
	}
	// The matrix after the final statement must be TREE again.
	main := info.Prog.Proc("main")
	last := main.Body.Stmts[len(main.Body.Stmts)-1]
	after := info.After[last]
	if after == nil {
		t.Fatal("no matrix after last statement")
	}
	if got := after.Shape(); got != matrix.ShapeTree {
		t.Errorf("shape after swap = %v, want TREE", got)
	}
}

func TestVerifyNilDereference(t *testing.T) {
	src := `
program nildef
procedure main()
  a: handle; x: int
begin
  x := a.value
end;
`
	info := mustAnalyze(t, src, Options{})
	if !hasDiag(info, "error", "definitely-nil") {
		t.Errorf("missing nil-deref error: %v", info.DiagStrings())
	}
}

func TestVerifyPossibleNilDereference(t *testing.T) {
	src := `
program maybenil
procedure main()
  a, b: handle; x: int
begin
  a := new();
  b := a.left;
  x := b.value
end;
`
	info := mustAnalyze(t, src, Options{})
	if !hasDiag(info, "warn", "possible nil dereference") {
		t.Errorf("missing possible-nil warn: %v", info.DiagStrings())
	}
}

func TestNilGuardSuppressesWarning(t *testing.T) {
	src := `
program guarded
procedure main()
  a, b: handle; x: int
begin
  a := new();
  b := a.left;
  if b <> nil then
    x := b.value
end;
`
	info := mustAnalyze(t, src, Options{})
	if hasDiag(info, "warn", "possible nil dereference") {
		t.Errorf("guard should suppress the warning: %v", info.DiagStrings())
	}
}

func TestGuardedCycleOnlyPossible(t *testing.T) {
	// The analysis cannot see that the branch never runs, but the path
	// being merely possible must downgrade the verdict.
	src := `
program maybecyc
procedure main()
  a, b, c: handle
begin
  a := new();
  b := a.left;
  if b <> nil then
    b.left := a
end;
`
	info := mustAnalyze(t, src, Options{})
	// After the if-merge the damage is only possible: one branch is clean.
	main := info.Prog.Proc("main")
	last := main.Body.Stmts[len(main.Body.Stmts)-1]
	if got := info.After[last].Shape(); got != matrix.ShapeMaybeCyclic {
		t.Errorf("shape after merge = %v, want CYCLE?", got)
	}
	// Inside the branch the guard assumes b non-nil, so the update there
	// definitely builds a cycle — the diagnostic is definite; the merged
	// verdict above is only possible.
	if !hasDiag(info, "error", "creates a cycle") {
		t.Errorf("missing cycle diagnostic: %v", info.DiagStrings())
	}
}

// TestListAppendStaysTree: classic list building in a loop.
func TestListAppendStaysTree(t *testing.T) {
	src := `
program listbuild
procedure main()
  head, cur, fresh: handle; i: int
begin
  head := new();
  cur := head;
  i := 0;
  while i < 10 do
  begin
    fresh := new();
    cur.left := fresh;
    cur := fresh;
    i := i + 1
  end
end;
`
	info := mustAnalyze(t, src, Options{})
	if got := info.Shape(); got != matrix.ShapeTree {
		t.Errorf("list building shape = %v, want TREE\ndiags: %v", got, info.DiagStrings())
	}
}

// TestInterproceduralDAGDetection: the sharing happens inside a callee.
func TestInterproceduralDAGDetection(t *testing.T) {
	src := `
program procdag
procedure main()
  a, b, c: handle
begin
  a := new();
  b := new();
  c := new();
  attach(a, c);
  attach(b, c)
end;
procedure attach(p: handle; q: handle)
begin
  p.left := q
end;
`
	info := mustAnalyze(t, src, Options{})
	if got := info.Shape(); got < matrix.ShapeMaybeDAG {
		t.Errorf("shape = %v, want at least DAG?", got)
	}
	sum := info.Summaries["attach"]
	if sum == nil || !sum.LinkParams[0] {
		t.Fatal("attach should link through param 0")
	}
	if !sum.AttachesParams[1] {
		t.Error("attach should attach its second parameter")
	}
	if sum.UpdateParams[1] {
		t.Error("attach does not write through its second parameter")
	}
}

// TestWhileLoopDeepensPaths: walking down in a loop produces the widened
// L+ family, and updating below the cursor keeps soundness.
func TestWhileLoopDeepensPaths(t *testing.T) {
	src := `
program walker
procedure main()
  root, cur: handle; i: int
begin
  root := new();
  build(root, 6);
  cur := root;
  i := 0;
  while i < 5 do
  begin
    cur := cur.left;
    i := i + 1
  end
end;
procedure build(h: handle; d: int)
  l, r: handle
begin
  if d > 0 then
  begin
    l := new();
    r := new();
    h.left := l;
    h.right := r;
    build(l, d - 1);
    build(r, d - 1)
  end
end;
`
	info := mustAnalyze(t, src, Options{})
	w := findWhile(info.Prog, "main", 0)
	after := info.After[w]
	if after == nil {
		t.Fatal("no matrix after loop")
	}
	got := after.Get("root", "cur").String()
	// root→cur: zero or more left steps.
	if got != "S?, L+?" {
		t.Errorf("root→cur = %q, want S?, L+?", got)
	}
}
