package analysis

// Tests for the demand-driven side of the context table: lazy fallback
// activation (a fallback nobody consumes is never analyzed), the drain
// barrier (a multi-context procedure's fallback is still materialized for
// Replay), and entry-invariant exit sharing between contexts of read-only
// procedures.

import (
	"context"

	"testing"

	"repro/internal/progs"
)

// TestLazyFallbackZeroAnalyses: corpus programs whose procedures are all
// bound from a single context must report zero fallback activations and
// zero fallback analyses — laziness makes them pay exactly merged-mode
// cost. The remaining corpus programs may only activate fallbacks that
// have a consumer (recursion, eviction, or a second distinct context).
func TestLazyFallbackZeroAnalyses(t *testing.T) {
	singleContext := map[string]bool{"leftmost": true, "listinc": true, "dagdemo": true}
	for _, e := range progs.Catalog {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			prog, err := progs.Compile(e.Source)
			if err != nil {
				t.Fatal(err)
			}
			info, err := Analyze(context.Background(), prog, Options{ExternalRoots: e.Roots})
			if err != nil {
				t.Fatal(err)
			}
			ct := info.ContextTableStats()
			if singleContext[e.Name] {
				if ct.FallbacksActivated != 0 || ct.FallbackAnalyses != 0 {
					t.Errorf("single-context program activated fallbacks: %+v", ct)
				}
			}
			// Nowhere may a fallback analysis happen without an activation,
			// and per summary, a summary without a fallback has no analyses.
			if ct.FallbackAnalyses > 0 && ct.FallbacksActivated == 0 {
				t.Errorf("fallback analyzed without activation: %+v", ct)
			}
			for name, s := range info.Summaries {
				act, ana, _ := s.LazyStats()
				if act == 0 && ana != 0 {
					t.Errorf("%s: %d fallback analyses but no activation", name, ana)
				}
			}
		})
	}
}

// TestDrainFallbackActivation: bump in ctxpair is non-recursive and bound
// through two exact contexts, so during the fixpoint nothing consumes its
// fallback — it must be activated by the drain barrier and analyzed a
// handful of times at the very end, leaving a materialized exit as the
// Replay stand-in.
func TestDrainFallbackActivation(t *testing.T) {
	prog, err := progs.Compile(progs.CtxPair)
	if err != nil {
		t.Fatal(err)
	}
	info, err := Analyze(context.Background(), prog, Options{ExternalRoots: []string{"ra", "rb"}})
	if err != nil {
		t.Fatal(err)
	}
	bump := info.Summaries["bump"]
	act, ana, _ := bump.LazyStats()
	if act != 1 {
		t.Fatalf("bump's fallback should be drain-activated exactly once, got %d", act)
	}
	if ana == 0 {
		t.Error("drain-activated fallback was never analyzed")
	}
	if bump.MergedExit() == nil {
		t.Error("drain-activated fallback must leave a materialized exit for Replay")
	}
	// The residual activation stays cheap: the fallback converges from
	// already-converged callee exits in a few passes, not a full ladder.
	if ana > 4 {
		t.Errorf("drain-time fallback took %d analyses; expected a short tail", ana)
	}
}

// TestExitSharingReadOnly: in shareread, depth's second entry (fresh
// non-nil node) is covered by its first (external maybe-nil tree), and
// mod-ref proves depth read-only — the second presentation must bind the
// first context's exit as a shared alias instead of being analyzed.
func TestExitSharingReadOnly(t *testing.T) {
	prog, err := progs.Compile(progs.ShareRead)
	if err != nil {
		t.Fatal(err)
	}
	info, err := Analyze(context.Background(), prog, Options{ExternalRoots: []string{"root"}})
	if err != nil {
		t.Fatal(err)
	}
	depth := info.Summaries["depth"]
	_, _, shared := depth.LazyStats()
	if shared != 1 {
		t.Fatalf("depth should share exactly one exit, got %d", shared)
	}
	exact, _, _ := depth.ContextStats()
	if exact != 1 {
		t.Errorf("the shared entry must not become a context of its own: %d exact contexts", exact)
	}
	// Sharing is a ctx-mode mechanism only.
	mergedInfo, err := Analyze(context.Background(), prog, Options{ExternalRoots: []string{"root"}, MaxContexts: -1})
	if err != nil {
		t.Fatal(err)
	}
	if ct := mergedInfo.ContextTableStats(); ct.ExitsShared != 0 {
		t.Errorf("merged mode must not share exits: %+v", ct)
	}
}

// TestNoSharingForWritingProcedure: the same call shape as shareread but
// with a write through the parameter — mod-ref withdraws the read-only
// premise, so the second entry must get its own context, never an alias.
func TestNoSharingForWritingProcedure(t *testing.T) {
	src := `
program sharewrite
procedure main()
  root, x: handle
begin
  mark(root);
  x := new();
  mark(x)
end;
procedure mark(t: handle)
  l, r: handle
begin
  if t <> nil then
  begin
    t.value := 1;
    l := t.left;
    r := t.right;
    mark(l);
    mark(r)
  end
end;
`
	prog, err := progs.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := Analyze(context.Background(), prog, Options{ExternalRoots: []string{"root"}})
	if err != nil {
		t.Fatal(err)
	}
	mark := info.Summaries["mark"]
	if _, _, shared := mark.LazyStats(); shared != 0 {
		t.Fatalf("a writing procedure must not share exits, got %d aliases", shared)
	}
	if exact, _, _ := mark.ContextStats(); exact != 2 {
		t.Errorf("both entries of mark should be exact contexts, got %d", exact)
	}
	if !mark.UpdateParams[0] {
		t.Error("mark's parameter should be classified as an update argument")
	}
}

// TestEvictionActivatesFallback: with a cap of 1, admitting the second
// distinct context evicts the first into the fallback — an eviction is a
// consumer, so the fallback must be activated by the redirect, not by the
// drain barrier, and the analysis stays sound (covered by the generic
// overflow suite; here we pin the activation accounting).
func TestEvictionActivatesFallback(t *testing.T) {
	prog, err := progs.Compile(progs.CtxPair)
	if err != nil {
		t.Fatal(err)
	}
	info, err := Analyze(context.Background(), prog, Options{ExternalRoots: []string{"ra", "rb"}, MaxContexts: 1})
	if err != nil {
		t.Fatal(err)
	}
	bump := info.Summaries["bump"]
	_, _, evictions := bump.ContextStats()
	act, ana, _ := bump.LazyStats()
	if evictions == 0 {
		t.Fatal("cap 1 should evict")
	}
	if act != 1 || ana == 0 {
		t.Errorf("eviction should activate and analyze the fallback (act=%d ana=%d)", act, ana)
	}
	if bump.MergedExit() == nil {
		t.Error("redirected fallback must have an exit")
	}
}

// TestSharedAliasSameBarrierPresenters: two distinct callers present
// structurally equal entries to a read-only procedure at the SAME round
// barrier, after the covering donor context has already converged (the
// if/else in main puts viaa and viab on the work list simultaneously —
// sequential call chains would be serialized by bottom propagation). The
// first presentation creates the shared-exit alias; the second hits the
// fresh alias — and must be re-run too (its in-round resolution was
// bottom, and the donor's already-converged exit will never fire a
// dependency). A missed re-run leaves the second caller's exit bottom and
// punches a hole in main's recorded matrices.
func TestSharedAliasSameBarrierPresenters(t *testing.T) {
	src := `
program samebarrier
procedure main()
  root: handle; d, da, db: int
begin
  d := depth(root);
  if d > 0 then
    da := viaa()
  else
    db := viab()
end;
function viaa(): int
  x: handle; d: int
begin
  x := new();
  d := depth(x)
end
return (d);
function viab(): int
  y: handle; d: int
begin
  y := new();
  d := depth(y)
end
return (d);
function depth(t: handle): int
  l: handle; dl: int
begin
  if t <> nil then
  begin
    l := t.left;
    if l <> nil then
      dl := 2
    else
      dl := 1
  end
end
return (dl);
`
	prog, err := progs.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := Analyze(context.Background(), prog, Options{ExternalRoots: []string{"root"}})
	if err != nil {
		t.Fatal(err)
	}
	main := info.Prog.Proc("main")
	last := main.Body.Stmts[len(main.Body.Stmts)-1]
	if info.After[last] == nil {
		t.Fatal("main's exit matrix is missing: a presenter of a same-barrier alias was never re-run")
	}
	for _, fn := range []string{"viaa", "viab"} {
		if info.Summaries[fn].MergedExit() == nil {
			t.Errorf("%s's exit stayed bottom", fn)
		}
	}
	if _, _, shared := info.Summaries["depth"].LazyStats(); shared == 0 {
		t.Error("expected depth to share exits across the equal fresh-node entries")
	}
}
