package analysis_test

// The warm-equals-cold property suite: seeding Analyze with the exported
// summaries of a converged run must return bit-identical results to a
// cold run — over the corpus and random programs, in context-sensitive
// and merged modes, at every worker count, and across Space boundaries
// (seeds carry no interned state). A fully seeded re-run of the same
// program must also cost zero fixpoint steps: that is the incremental
// payoff the service's summary store builds on.

import (
	"context"

	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/analysis"
	"repro/internal/matrix"
	"repro/internal/path"
	"repro/internal/progs"
	"repro/internal/sil/ast"
)

func walkAll(s ast.Stmt, f func(ast.Stmt)) {
	if s == nil {
		return
	}
	f(s)
	switch s := s.(type) {
	case *ast.Block:
		for _, st := range s.Stmts {
			walkAll(st, f)
		}
	case *ast.Par:
		for _, st := range s.Branches {
			walkAll(st, f)
		}
	case *ast.If:
		walkAll(s.Then, f)
		walkAll(s.Else, f)
	case *ast.While:
		walkAll(s.Body, f)
	}
}

// dumpInfo renders every observable of an analysis deterministically:
// per-procedure summaries (contexts, exits, mod-ref), per-statement
// Before/After matrices in declaration order, and diagnostics. Two
// analyses of the same compiled program are bit-identical iff their
// dumps are equal.
func dumpInfo(in *analysis.Info) string {
	var b strings.Builder
	for _, d := range in.Prog.Decls {
		fmt.Fprintf(&b, "== proc %s ==\n", d.Name)
		s := in.Summaries[d.Name]
		if s == nil {
			b.WriteString("(no summary)\n")
		} else {
			fmt.Fprintf(&b, "modifiesLinks=%v update=%v link=%v attach=%v\n",
				s.ModifiesLinks, s.UpdateParams, s.LinkParams, s.AttachesParams)
			exact, hasMerged, evict := s.ContextStats()
			fmt.Fprintf(&b, "contexts=%d merged=%v evictions=%d\n", exact, hasMerged, evict)
			for i, c := range s.Contexts() {
				fmt.Fprintf(&b, "-- ctx %d merged=%v --\nentry:\n%s\n", i, c.IsMerged(), c.Entry())
				if c.Exit() != nil {
					fmt.Fprintf(&b, "exit:\n%s\n", c.Exit())
				} else {
					b.WriteString("exit: bottom\n")
				}
			}
		}
		idx := 0
		walkAll(d.Body, func(st ast.Stmt) {
			if m := in.Before[st]; m != nil {
				fmt.Fprintf(&b, "before %d:\n%s\n", idx, m)
			}
			if m := in.After[st]; m != nil {
				fmt.Fprintf(&b, "after %d:\n%s\n", idx, m)
			}
			idx++
		})
	}
	fmt.Fprintf(&b, "diags: %v\nshape=%v exit=%v\n", in.DiagStrings(), in.Shape(), in.ExitShape())
	return b.String()
}

func analyzeIn(t *testing.T, prog *ast.Program, roots []string, maxCtx, workers int, sp *matrix.Space, seeds map[string]*analysis.ProcSeed) *analysis.Info {
	t.Helper()
	info, err := analysis.Analyze(context.Background(), prog, analysis.Options{
		ExternalRoots: roots,
		MaxContexts:   maxCtx,
		Workers:       workers,
		Space:         sp,
		Seeds:         seeds,
	})
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	return info
}

func TestSeededWarmEqualsCold(t *testing.T) {
	type prg struct {
		name, src string
		roots     []string
	}
	var cases []prg
	for _, e := range progs.Catalog {
		cases = append(cases, prg{e.Name, e.Source, e.Roots})
	}
	for seed := int64(1); seed <= 4; seed++ {
		cases = append(cases, prg{fmt.Sprintf("random%d", seed), progs.RandomProgram(seed), nil})
	}
	for _, maxCtx := range []int{0, -1} {
		mode := "ctx"
		if maxCtx < 0 {
			mode = "merged"
		}
		for _, tc := range cases {
			t.Run(mode+"/"+tc.name, func(t *testing.T) {
				prog := progs.MustCompile(tc.src)
				sp := matrix.NewSpace(path.NewSpace())
				cold := analyzeIn(t, prog, tc.roots, maxCtx, 1, sp, nil)
				coldDump := dumpInfo(cold)
				seeds := analysis.ExportSeeds(cold)
				if len(seeds) == 0 {
					t.Fatal("no seeds exported")
				}
				for _, workers := range []int{1, 2, 8} {
					// A fresh Space each time: seeds must not depend on
					// the exporting run's interned state.
					wsp := matrix.NewSpace(path.NewSpace())
					warm := analyzeIn(t, prog, tc.roots, maxCtx, workers, wsp, seeds)
					if warm.SeedsFellBack {
						t.Fatalf("workers=%d: seeds rejected on identical program", workers)
					}
					if warm.SeededProcs == 0 {
						t.Fatalf("workers=%d: nothing seeded", workers)
					}
					if warm.FixpointSteps != 0 {
						t.Errorf("workers=%d: fully seeded re-run cost %d fixpoint steps, want 0", workers, warm.FixpointSteps)
					}
					if d := dumpInfo(warm); d != coldDump {
						t.Fatalf("workers=%d: warm dump differs from cold\n--- warm ---\n%s\n--- cold ---\n%s", workers, d, coldDump)
					}
				}
			})
		}
	}
}

// TestSeededAcrossSpaceReset pins that seeds survive an epoch reset of
// the Space they are decoded into — the session-pool lifecycle.
func TestSeededAcrossSpaceReset(t *testing.T) {
	e := progs.Catalog[1] // treeadd
	prog := progs.MustCompile(e.Source)
	sp := matrix.NewSpace(path.NewSpace())
	cold := analyzeIn(t, prog, e.Roots, 0, 2, sp, nil)
	coldDump := dumpInfo(cold)
	seeds := analysis.ExportSeeds(cold)
	sp.Paths().Reset()
	warm := analyzeIn(t, prog, e.Roots, 0, 2, sp, seeds)
	if warm.SeedsFellBack || warm.FixpointSteps != 0 {
		t.Fatalf("after reset: fellBack=%v steps=%d", warm.SeedsFellBack, warm.FixpointSteps)
	}
	if d := dumpInfo(warm); d != coldDump {
		t.Fatalf("dump differs across Space reset:\n%s\nvs\n%s", d, coldDump)
	}
}

// TestPartialSeedsClosureFilter pins the all-or-nothing closure rule: a
// seed whose callee closure is not seeded is dropped, the dropped
// procedures analyze cold, and the result is still identical.
func TestPartialSeedsClosureFilter(t *testing.T) {
	e := progs.Catalog[1] // treeadd: main -> add_n
	prog := progs.MustCompile(e.Source)
	sp := matrix.NewSpace(path.NewSpace())
	cold := analyzeIn(t, prog, e.Roots, 0, 1, sp, nil)
	coldDump := dumpInfo(cold)
	seeds := analysis.ExportSeeds(cold)

	var leaf string
	for name := range seeds {
		if name != "main" {
			leaf = name
		}
	}
	if leaf == "" {
		t.Fatal("expected a non-main seeded procedure")
	}
	// Dropping the leaf must drop main too (its closure includes leaf).
	partial := map[string]*analysis.ProcSeed{"main": seeds["main"]}
	warm := analyzeIn(t, prog, e.Roots, 0, 1, matrix.NewSpace(path.NewSpace()), partial)
	if warm.SeededProcs != 0 {
		t.Fatalf("closure filter kept %d seeds, want 0", warm.SeededProcs)
	}
	if warm.FixpointSteps == 0 {
		t.Fatal("cold-due-to-filter run reported 0 steps")
	}
	if d := dumpInfo(warm); d != coldDump {
		t.Fatal("filtered warm run differs from cold")
	}

	// Seeding only the leaf keeps the leaf warm and re-analyzes main.
	partial = map[string]*analysis.ProcSeed{leaf: seeds[leaf]}
	warm = analyzeIn(t, prog, e.Roots, 0, 1, matrix.NewSpace(path.NewSpace()), partial)
	if warm.SeededProcs != 1 {
		t.Fatalf("leaf-only seeding kept %d seeds, want 1", warm.SeededProcs)
	}
	if d := dumpInfo(warm); d != coldDump {
		t.Fatal("leaf-seeded warm run differs from cold")
	}
	full := analyzeIn(t, prog, e.Roots, 0, 1, matrix.NewSpace(path.NewSpace()), seeds)
	if full.FixpointSteps >= cold.FixpointSteps {
		t.Fatalf("fully seeded steps %d not below cold %d", full.FixpointSteps, cold.FixpointSteps)
	}
	if warm.FixpointSteps >= cold.FixpointSteps {
		t.Fatalf("leaf-seeded steps %d not below cold %d", warm.FixpointSteps, cold.FixpointSteps)
	}
}

// TestSeedExportDeterminism pins that two exports of the same converged
// run are deep-equal — the summary store hashes and compares records.
func TestSeedExportDeterminism(t *testing.T) {
	e := progs.Catalog[10] // ctxpair: multi-context tables
	prog := progs.MustCompile(e.Source)
	dump := func() string {
		sp := matrix.NewSpace(path.NewSpace())
		info := analyzeIn(t, prog, e.Roots, 0, 4, sp, nil)
		seeds := analysis.ExportSeeds(info)
		names := make([]string, 0, len(seeds))
		for n := range seeds {
			names = append(names, n)
		}
		sort.Strings(names)
		var b strings.Builder
		for _, n := range names {
			j, err := json.Marshal(seeds[n])
			if err != nil {
				t.Fatalf("marshal seed %s: %v", n, err)
			}
			fmt.Fprintf(&b, "%s: %s\n", n, j)
		}
		return b.String()
	}
	d1, d2 := dump(), dump()
	if d1 != d2 {
		t.Fatalf("export not deterministic:\n%s\nvs\n%s", d1, d2)
	}
}
