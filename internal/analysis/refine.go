package analysis

import (
	"repro/internal/matrix"
	"repro/internal/path"
	"repro/internal/sil/ast"
)

// refineCond sharpens the matrix using the branch condition: in the branch
// where the condition holds (want == true) or fails (want == false). This
// is what lets the recursive base-case guard "if h <> nil" prove h non-nil
// inside the body — without it, Figure 7's matrices would drown in
// possible-nil noise.
func refineCond(m *matrix.Matrix, cond ast.Expr, want bool) *matrix.Matrix {
	if m == nil {
		return nil
	}
	switch e := cond.(type) {
	case *ast.Unary:
		if e.Op == ast.Not {
			return refineCond(m, e.X, !want)
		}
	case *ast.Binary:
		switch e.Op {
		case ast.And:
			if want {
				return refineCond(refineCond(m, e.X, true), e.Y, true)
			}
			// !(X and Y) gives no single-branch fact.
			return m
		case ast.Or:
			if !want {
				return refineCond(refineCond(m, e.X, false), e.Y, false)
			}
			return m
		case ast.Eq, ast.Neq:
			eq := e.Op == ast.Eq
			if !want {
				eq = !eq
			}
			return refineComparison(m, e.X, e.Y, eq)
		}
	}
	return m
}

// refineComparison applies h = nil / h <> nil / h = g facts.
func refineComparison(m *matrix.Matrix, x, y ast.Expr, equal bool) *matrix.Matrix {
	xv, xIsVar := x.(*ast.VarRef)
	yv, yIsVar := y.(*ast.VarRef)
	_, xIsNil := x.(*ast.NilLit)
	_, yIsNil := y.(*ast.NilLit)
	switch {
	case xIsVar && yIsNil:
		return refineNil(m, matrix.Handle(xv.Name), equal)
	case yIsVar && xIsNil:
		return refineNil(m, matrix.Handle(yv.Name), equal)
	case xIsVar && yIsVar:
		hx, hy := matrix.Handle(xv.Name), matrix.Handle(yv.Name)
		if !m.Has(hx) || !m.Has(hy) {
			return m // int comparison, or unknown handles
		}
		nx, ny := m.Attr(hx).Nil, m.Attr(hy).Nil
		if equal {
			// h = g: nil-ness flows across the equality. A definitely-nil
			// side forces the other nil too (its relations vanish); a
			// definitely-non-nil side forces the other non-nil.
			switch {
			case nx == matrix.DefNil && ny == matrix.DefNil:
				// Both already nil: nothing new.
			case nx == matrix.DefNil:
				return refineNil(m, hy, true)
			case ny == matrix.DefNil:
				return refineNil(m, hx, true)
			default:
				// Same node: each side gains a definite S to the other.
				m.AddPaths(hx, hy, path.NewSet(path.Same()))
				m.AddPaths(hy, hx, path.NewSet(path.Same()))
				if nx == matrix.NonNil && ny != matrix.NonNil {
					m = refineNil(m, hy, false)
				} else if ny == matrix.NonNil && nx != matrix.NonNil {
					m = refineNil(m, hx, false)
				}
			}
			return m
		}
		// h <> g: known different nodes, drop S members.
		notSame := func(p path.Path) bool { return !p.IsSame() }
		m.Put(hx, hy, m.Get(hx, hy).Filter(notSame))
		m.Put(hy, hx, m.Get(hy, hx).Filter(notSame))
		// A definitely-nil side forces the other non-nil: h <> g with h =
		// nil means g holds a node. (Both sides nil makes the branch dead;
		// no refinement is sound or needed there.)
		if nx == matrix.DefNil && ny != matrix.DefNil {
			m = refineNil(m, hy, false)
		} else if ny == matrix.DefNil && nx != matrix.DefNil {
			m = refineNil(m, hx, false)
		}
		return m
	}
	return m
}

// refineNil records that h is (equal == true) or is not nil.
func refineNil(m *matrix.Matrix, h matrix.Handle, isNil bool) *matrix.Matrix {
	if !m.Has(h) {
		return m
	}
	at := m.Attr(h)
	if isNil {
		// h denotes no node: its relations vanish in this branch.
		m.Remove(h)
		m.Add(h, matrix.Attr{Nil: matrix.DefNil, Indeg: matrix.Root})
		return m
	}
	if at.Nil != matrix.NonNil {
		at.Nil = matrix.NonNil
		m.Add(h, at) // restores the definite S diagonal
		// Paths guarded on h's existence firm up only for the diagonal;
		// other entries keep their flags (they may still depend on other
		// handles' existence).
	}
	return m
}
