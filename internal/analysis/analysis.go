// Package analysis computes a path matrix for every program point of a SIL
// program — the core contribution of Hendren & Nicolau (§4). It implements:
//
//   - transfer functions for every basic handle statement (transfer.go),
//     validated against the paper's Figure 2;
//   - condition refinement for nil tests (refine.go);
//   - the iterative approximation for while loops (Figure 3) with the
//     widening bounds of path.Limits guaranteeing convergence;
//   - interprocedural analysis with the symbolic handles h*i (the caller's
//     i-th handle argument) and h**i (all stacked recursive arguments),
//     reproducing Figure 7's matrices pA and pB, via a worklist fixpoint
//     over per-procedure summaries;
//   - mod-ref classification of handle parameters into read-only and
//     update arguments (§5.2's refinement);
//   - structure verification: TREE/DAG/cycle verdicts on every structure
//     update (§3.1), reported as diagnostics.
//
// The engine requires normalized (basic-statement) programs; run
// types.Normalize first.
package analysis

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/matrix"
	"repro/internal/path"
	"repro/internal/sil/ast"
	"repro/internal/sil/token"
	"repro/internal/sil/types"
)

// Options tunes the analysis.
type Options struct {
	// Limits bounds the path-expression domain (zero value: DefaultLimits).
	Limits path.Limits
	// MaxLoopIters caps Figure 3's iteration as a backstop beyond widening.
	MaxLoopIters int
	// MaxWorklist caps procedure reanalyses.
	MaxWorklist int
	// Workers bounds the worker pool that drains the interprocedural
	// worklist: independent (non-mutually-recursive) procedures are analyzed
	// concurrently, with per-summary locking. 0 picks a default from the
	// machine; 1 reproduces the sequential driver exactly.
	Workers int
	// ExternalRoots names main locals that the execution environment binds
	// to externally built structures before main runs (the paper's
	// "... build a tree at root ..." realized by a Setup function). They
	// start possibly-non-nil with unknown indegree, and — since the
	// builder may have aliased them — pairwise possibly related.
	ExternalRoots []string
}

func (o Options) withDefaults() Options {
	if o.Limits == (path.Limits{}) {
		o.Limits = path.DefaultLimits
	}
	if o.MaxLoopIters == 0 {
		o.MaxLoopIters = 40
	}
	if o.MaxWorklist == 0 {
		o.MaxWorklist = 400
	}
	if o.Workers == 0 {
		o.Workers = runtime.NumCPU()
		if o.Workers > 8 {
			o.Workers = 8
		}
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	return o
}

// EffectiveWorkers returns the worker-pool size Analyze will actually use
// for this Options value (reporting hook for silbench).
func (o Options) EffectiveWorkers() int { return o.withDefaults().Workers }

// Diagnostic is a structure-verification or safety finding.
type Diagnostic struct {
	Pos   token.Pos
	Level string // "warn" or "error"
	Msg   string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Level, d.Msg)
}

// Summary is the interprocedural abstraction of one procedure. During the
// concurrent fixpoint, mu guards every mutable field; the matrices held in
// Entry and Exit are immutable once published, so workers snapshot the
// pointers under the lock and read the matrices lock-free. After Analyze
// returns, summaries are quiescent and may be read directly.
type Summary struct {
	mu sync.Mutex

	Proc *ast.ProcDecl
	// Entry is the merged entry matrix over formals and symbolic handles
	// (h*i, h**i), combining every call context seen so far.
	Entry *matrix.Matrix
	// Exit is the matrix at procedure exit projected onto the formals,
	// symbolic handles and (for functions) the return variable. nil means
	// bottom: no terminating path analyzed yet.
	Exit *matrix.Matrix
	// UpdateParams[i] reports that the i-th parameter is an update argument
	// (§5.2): some write (value or link) may occur through it. Non-handle
	// parameters are always false.
	UpdateParams []bool
	// LinkParams[i] reports that a structure update (a.f := …) may occur
	// through the i-th parameter.
	LinkParams []bool
	// AttachesParams[i] reports that the i-th argument's node itself may
	// gain a parent inside the callee (it appears as the right side of a
	// structure update).
	AttachesParams []bool
	// ModifiesLinks reports any structure update anywhere in the procedure
	// or its callees.
	ModifiesLinks bool
	// HandleParamIdx maps handle-parameter order (1-based symbolic index)
	// to parameter positions.
	HandleParamIdx []int

	// entryMemo is the §5.2 summary memoization keyed by entry-matrix
	// fingerprint: call contexts already proven to fold into Entry without
	// changing it. A fingerprint hit still verifies the candidate
	// structurally (collision fallback) before skipping the Merge+Widen
	// allocation. The memo is only valid against the current Entry, so any
	// Entry growth clears it; entryMemoN bounds the retained matrices.
	entryMemo  map[matrix.Fp][]*matrix.Matrix
	entryMemoN int
}

// entryMemoCap bounds how many no-op call contexts a summary retains.
const entryMemoCap = 64

// ReadOnlyParam reports whether parameter i is read-only (§5.2).
func (s *Summary) ReadOnlyParam(i int) bool {
	return i < len(s.UpdateParams) && !s.UpdateParams[i]
}

// snapshotEntry returns the current entry matrix pointer (immutable value).
func (s *Summary) snapshotEntry() *matrix.Matrix {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Entry
}

// snapshotExit returns the current exit matrix pointer (nil while bottom).
func (s *Summary) snapshotExit() *matrix.Matrix {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Exit
}

// mergeEntry folds one more call context into the entry matrix, reporting
// whether the entry grew. Contexts already known (by fingerprint, with a
// structural fallback) to leave the entry unchanged return immediately:
// at and near the fixpoint every call site re-presents the same context on
// every pass, and the memo turns those passes allocation-free. The caller
// must not mutate ent after the call (call sites build a fresh entry per
// call, so this holds).
func (s *Summary) mergeEntry(ent *matrix.Matrix, lim path.Limits) (changed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fp := ent.Fingerprint()
	for _, seen := range s.entryMemo[fp] {
		if seen.Equal(ent) {
			return false
		}
	}
	merged := s.Entry.Merge(ent)
	merged.Widen(lim)
	if merged.Equal(s.Entry) {
		if s.entryMemoN < entryMemoCap {
			if s.entryMemo == nil {
				s.entryMemo = make(map[matrix.Fp][]*matrix.Matrix)
			}
			s.entryMemo[fp] = append(s.entryMemo[fp], ent)
			s.entryMemoN++
		}
		return false
	}
	s.Entry = merged
	s.entryMemo = nil
	s.entryMemoN = 0
	return true
}

// updateExit folds a freshly computed exit projection into the summary,
// reporting whether the exit changed.
func (s *Summary) updateExit(proj *matrix.Matrix, lim path.Limits) (changed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.Exit != nil && s.Exit.Equal(proj) {
		return false
	}
	if s.Exit != nil {
		merged := s.Exit.Merge(proj)
		merged.Widen(lim)
		if s.Exit.Equal(merged) {
			return false
		}
		proj = merged
	}
	s.Exit = proj
	return true
}

// modref is a consistent snapshot of a summary's mod-ref classification.
type modref struct {
	update, links, attaches []bool
	modifiesLinks           bool
}

func (s *Summary) modrefSnapshot() modref {
	s.mu.Lock()
	defer s.mu.Unlock()
	return modref{
		update:        append([]bool(nil), s.UpdateParams...),
		links:         append([]bool(nil), s.LinkParams...),
		attaches:      append([]bool(nil), s.AttachesParams...),
		modifiesLinks: s.ModifiesLinks,
	}
}

// setModifiesLinks records a link write, reporting whether this was news.
func (s *Summary) setModifiesLinks() (changed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ModifiesLinks {
		return false
	}
	s.ModifiesLinks = true
	return true
}

// Info is the analysis result.
type Info struct {
	Prog *ast.Program
	Opts Options
	// Before and After give the path matrix at the program point
	// immediately before / after each statement (merged over all contexts
	// of the final fixpoint iteration).
	Before map[ast.Stmt]*matrix.Matrix
	After  map[ast.Stmt]*matrix.Matrix
	// Summaries maps procedure names to their fixpoint summaries.
	Summaries map[string]*Summary
	// Diags are the structure-verification findings, deduplicated.
	Diags []Diagnostic

	stmtProc map[ast.Stmt]string
}

// ProcOf returns the name of the procedure containing the statement.
func (in *Info) ProcOf(s ast.Stmt) (string, bool) {
	name, ok := in.stmtProc[s]
	return name, ok
}

// Shape returns the worst structure estimate over every program point of
// the whole program. A temporary DAG (the §1 node swap) degrades this
// verdict even when the structure recovers; see ExitShape for the estimate
// at main's exit.
func (in *Info) Shape() matrix.Shape {
	worst := matrix.ShapeTree
	for _, m := range in.After {
		if m != nil && m.Shape() > worst {
			worst = m.Shape()
		}
	}
	return worst
}

// ExitShape returns the structure estimate at the end of main — TREE for
// programs that only pass through temporary violations.
func (in *Info) ExitShape() matrix.Shape {
	main := in.Prog.Proc("main")
	if main == nil || len(main.Body.Stmts) == 0 {
		return matrix.ShapeTree
	}
	m := in.After[main.Body.Stmts[len(main.Body.Stmts)-1]]
	if m == nil {
		return matrix.ShapeTree
	}
	return m.Shape()
}

// DiagStrings renders diagnostics deterministically.
func (in *Info) DiagStrings() []string {
	out := make([]string, len(in.Diags))
	for i, d := range in.Diags {
		out[i] = d.String()
	}
	sort.Strings(out)
	return out
}

// Analyze runs the whole-program analysis. The program must be checked and
// normalized; Analyze verifies the basic-statement invariants first.
//
// The interprocedural fixpoint is a concurrent worklist: opts.Workers
// goroutines pop procedures and re-analyze them against their current entry
// summaries, with per-summary locking (a given procedure is never analyzed
// by two workers at once, but independent procedures proceed in parallel).
// Diagnostics and the Before/After matrices are collected by a final
// sequential pass over the converged summaries, so the reported output is
// deterministic regardless of worker scheduling.
func Analyze(prog *ast.Program, opts Options) (*Info, error) {
	if err := types.VerifyBasic(prog); err != nil {
		return nil, fmt.Errorf("analysis: program is not in basic form: %w", err)
	}
	main := prog.Proc("main")
	if main == nil {
		return nil, fmt.Errorf("analysis: no main procedure")
	}
	opts = opts.withDefaults()
	eng := newEngine(prog, opts, &Info{
		Prog:      prog,
		Opts:      opts,
		Before:    map[ast.Stmt]*matrix.Matrix{},
		After:     map[ast.Stmt]*matrix.Matrix{},
		Summaries: map[string]*Summary{},
		stmtProc:  map[ast.Stmt]string{},
	})
	for _, d := range prog.Decls {
		walkStmts(d.Body, func(s ast.Stmt) { eng.info.stmtProc[s] = d.Name })
	}
	eng.summaryFor(main, entryForMain(main, opts))
	eng.enqueue("main")
	var wg sync.WaitGroup
	for i := 0; i < opts.Workers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Workers are muted: diagnostics from intermediate fixpoint
			// states would depend on scheduling; the recording pass below
			// re-derives them from the converged summaries.
			w := &analyzer{eng: eng, mute: true}
			for {
				name, ok := eng.next()
				if !ok {
					return
				}
				w.reanalyze(name)
				eng.done(name)
			}
		}()
	}
	wg.Wait()
	if err := eng.failure(); err != nil {
		return nil, err
	}
	// One final sequential pass per reachable procedure so Before/After and
	// the diagnostics reflect the fixpoint summaries deterministically.
	rec := &analyzer{eng: eng, recording: true}
	for _, name := range eng.analysisOrder() {
		rec.reanalyze(name)
	}
	return eng.info, nil
}

// engine is the state shared by every worker of one Analyze run: the
// program, the worklist, the call graph discovered so far, and the result
// under construction. All mutable fields are guarded by mu.
type engine struct {
	prog *ast.Program
	opts Options
	info *Info

	mu       sync.Mutex
	cond     *sync.Cond
	queue    []string
	queued   map[string]bool
	running  map[string]bool
	inflight int
	steps    int
	err      error
	callers  map[string]map[string]bool
	diagSet  map[string]bool
}

func newEngine(prog *ast.Program, opts Options, info *Info) *engine {
	e := &engine{
		prog:    prog,
		opts:    opts,
		info:    info,
		queued:  map[string]bool{},
		running: map[string]bool{},
		callers: map[string]map[string]bool{},
		diagSet: map[string]bool{},
	}
	e.cond = sync.NewCond(&e.mu)
	return e
}

// enqueue schedules a procedure for (re-)analysis.
func (e *engine) enqueue(name string) {
	e.mu.Lock()
	if !e.queued[name] {
		e.queued[name] = true
		e.queue = append(e.queue, name)
		e.cond.Broadcast()
	}
	e.mu.Unlock()
}

// next blocks until a procedure not currently being analyzed is available,
// or the fixpoint has drained (queue empty, no worker in flight), or the
// run failed. The second result is false when the worker should exit.
func (e *engine) next() (string, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for {
		if e.err != nil {
			return "", false
		}
		for i, n := range e.queue {
			if e.running[n] {
				continue
			}
			e.queue = append(e.queue[:i:i], e.queue[i+1:]...)
			e.queued[n] = false
			e.running[n] = true
			e.inflight++
			e.steps++
			// Concurrent workers can pop a procedure against an entry a
			// caller is still growing, spending pops that a sequential
			// drain would not, so the budget scales with the pool size;
			// Workers=1 reproduces the sequential cap exactly.
			if e.steps > e.opts.MaxWorklist*e.opts.Workers {
				e.err = fmt.Errorf("analysis: worklist did not converge in %d steps", e.opts.MaxWorklist*e.opts.Workers)
				e.cond.Broadcast()
				return "", false
			}
			return n, true
		}
		if e.inflight == 0 {
			e.cond.Broadcast()
			return "", false
		}
		e.cond.Wait()
	}
}

// done marks a popped procedure as finished.
func (e *engine) done(name string) {
	e.mu.Lock()
	e.running[name] = false
	e.inflight--
	e.cond.Broadcast()
	e.mu.Unlock()
}

func (e *engine) failure() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.err
}

// summary returns the summary for name, or nil.
func (e *engine) summary(name string) *Summary {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.info.Summaries[name]
}

// summaryFor returns the summary for the procedure, creating it with the
// given entry matrix if this is the first sighting. created reports whether
// this call performed the creation (the entry argument was consumed).
func (e *engine) summaryFor(d *ast.ProcDecl, entry *matrix.Matrix) (s *Summary, created bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.info.Summaries[d.Name]
	if !ok {
		s = &Summary{
			Proc:           d,
			Entry:          entry,
			UpdateParams:   make([]bool, len(d.Params)),
			LinkParams:     make([]bool, len(d.Params)),
			AttachesParams: make([]bool, len(d.Params)),
			HandleParamIdx: handleParams(d),
		}
		e.info.Summaries[d.Name] = s
		return s, true
	}
	return s, false
}

// addCaller records a call edge caller → callee.
func (e *engine) addCaller(callee, caller string) {
	e.mu.Lock()
	if e.callers[callee] == nil {
		e.callers[callee] = map[string]bool{}
	}
	e.callers[callee][caller] = true
	e.mu.Unlock()
}

// callersOf snapshots the recorded callers of name, and whether name calls
// itself through a recorded edge.
func (e *engine) callersOf(name string) (callers []string, selfEdge bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	for c := range e.callers[name] {
		callers = append(callers, c)
	}
	return callers, e.callers[name][name]
}

// analyzer is the per-worker view of an engine: the procedure currently
// being analyzed plus the recording/muting flags. Workers never share an
// analyzer value.
type analyzer struct {
	eng *engine
	// recording enables Before/After capture (final pass only).
	recording bool
	// sink, when non-nil, receives before-matrices instead of info.Before
	// (used by Replay).
	sink map[ast.Stmt]*matrix.Matrix
	// mute suppresses diagnostics (replays re-traverse analyzed code).
	mute bool
	// cur is the procedure under analysis; curSum caches its summary so the
	// per-statement transfer path does not take the engine lock.
	cur    *ast.ProcDecl
	curSum *Summary
}

// currentSummary returns the summary of the procedure under analysis.
func (a *analyzer) currentSummary() *Summary {
	if a.curSum != nil && a.curSum.Proc == a.cur {
		return a.curSum
	}
	return a.eng.summary(a.cur.Name)
}

// Replay re-runs the abstract transformers over a statement sequence from
// an explicit starting matrix, returning the matrix before every statement
// in the sequence (including nested ones) and the final matrix. §5.3 uses
// it to obtain Figure 9's per-statement matrices for U and V from the same
// initial point, independent of the sequential order the program text has.
func (in *Info) Replay(procName string, p0 *matrix.Matrix, seq []ast.Stmt) (map[ast.Stmt]*matrix.Matrix, *matrix.Matrix) {
	d := in.Prog.Proc(procName)
	a := &analyzer{
		eng:       newEngine(in.Prog, in.Opts, in),
		recording: true,
		mute:      true, // replays must not duplicate diagnostics
		sink:      map[ast.Stmt]*matrix.Matrix{},
		cur:       d,
	}
	m := p0.Copy()
	for _, s := range seq {
		m = a.stmt(m, s)
	}
	return a.sink, m
}

func (e *engine) analysisOrder() []string {
	e.mu.Lock()
	names := make([]string, 0, len(e.info.Summaries))
	for n := range e.info.Summaries {
		names = append(names, n)
	}
	e.mu.Unlock()
	sort.Strings(names)
	return names
}

func (a *analyzer) enqueue(name string) {
	if a.recording {
		return // the final recording pass must not perturb the fixpoint
	}
	a.eng.enqueue(name)
}

func (a *analyzer) diag(pos token.Pos, level, msg string) {
	if a.mute {
		return
	}
	d := Diagnostic{Pos: pos, Level: level, Msg: msg}
	key := d.String()
	e := a.eng
	e.mu.Lock()
	if !e.diagSet[key] {
		e.diagSet[key] = true
		e.info.Diags = append(e.info.Diags, d)
	}
	e.mu.Unlock()
}

// handleParams returns the positions of handle parameters.
func handleParams(d *ast.ProcDecl) []int {
	var out []int
	for i, p := range d.Params {
		if p.Type == ast.HandleT {
			out = append(out, i)
		}
	}
	return out
}

// entryForMain builds main's entry matrix: every local starts definitely
// nil (the interpreter's semantics for uninitialized handles), except the
// declared external roots, which the environment may bind to arbitrary
// tree structures.
func entryForMain(main *ast.ProcDecl, opts Options) *matrix.Matrix {
	ext := make(map[string]bool, len(opts.ExternalRoots))
	for _, r := range opts.ExternalRoots {
		ext[r] = true
	}
	m := matrix.New()
	var roots []matrix.Handle
	for _, v := range main.Locals {
		if v.Type != ast.HandleT {
			continue
		}
		if ext[v.Name] {
			h := matrix.Handle(v.Name)
			m.Add(h, matrix.Attr{Nil: matrix.MaybeNil, Indeg: matrix.UnknownDeg})
			roots = append(roots, h)
		} else {
			m.Add(matrix.Handle(v.Name), matrix.Attr{Nil: matrix.DefNil, Indeg: matrix.Root})
		}
	}
	maybeAnywhere := path.NewSet(path.SamePossible(), path.NewPossible(path.Plus(path.DownD)))
	for _, a := range roots {
		for _, b := range roots {
			if a != b {
				m.Put(a, b, maybeAnywhere)
			}
		}
	}
	return m
}

// reanalyze runs one pass over a procedure body from its current entry.
func (a *analyzer) reanalyze(name string) {
	s := a.eng.summary(name)
	if s == nil {
		return
	}
	a.cur = s.Proc
	a.curSum = s
	m := s.snapshotEntry().Copy()
	// Locals start definitely nil — unless the entry matrix already binds
	// them (main's external roots).
	for _, v := range s.Proc.Locals {
		if v.Type == ast.HandleT && !m.Has(matrix.Handle(v.Name)) {
			m.Add(matrix.Handle(v.Name), matrix.Attr{Nil: matrix.DefNil, Indeg: matrix.Root})
		}
	}
	if a.recording {
		clearRecords(a.eng.info, s.Proc)
	}
	exit := a.stmt(m, s.Proc.Body)
	changed := false
	if exit != nil {
		// Project onto the caller-visible handles.
		keep := make([]matrix.Handle, 0, 8)
		for _, h := range exit.Handles() {
			if h.IsSymbolic() {
				keep = append(keep, h)
			}
		}
		for _, v := range s.Proc.Params {
			if v.Type == ast.HandleT {
				keep = append(keep, matrix.Handle(v.Name))
			}
		}
		if s.Proc.IsFunction() {
			keep = append(keep, matrix.Handle(s.Proc.ReturnVar))
		}
		proj := exit.Project(keep)
		proj.Widen(a.eng.opts.Limits)
		changed = s.updateExit(proj, a.eng.opts.Limits)
	}
	if changed {
		callers, selfEdge := a.eng.callersOf(name)
		for _, caller := range callers {
			a.enqueue(caller)
		}
		// Self-recursive procedures must also converge.
		if selfEdge || a.selfCalls(s.Proc) {
			a.enqueue(name)
		}
	}
}

func (a *analyzer) selfCalls(d *ast.ProcDecl) bool {
	found := false
	walkStmts(d.Body, func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.CallStmt:
			if s.Name == d.Name {
				found = true
			}
		case *ast.Assign:
			if c, ok := s.Rhs.(*ast.CallExpr); ok && c.Name == d.Name {
				found = true
			}
		}
	})
	return found
}

func clearRecords(in *Info, d *ast.ProcDecl) {
	walkStmts(d.Body, func(s ast.Stmt) {
		delete(in.Before, s)
		delete(in.After, s)
	})
}

// walkStmts visits every statement in a subtree.
func walkStmts(s ast.Stmt, f func(ast.Stmt)) {
	if s == nil {
		return
	}
	f(s)
	switch s := s.(type) {
	case *ast.Block:
		for _, st := range s.Stmts {
			walkStmts(st, f)
		}
	case *ast.Par:
		for _, st := range s.Branches {
			walkStmts(st, f)
		}
	case *ast.If:
		walkStmts(s.Then, f)
		walkStmts(s.Else, f)
	case *ast.While:
		walkStmts(s.Body, f)
	}
}

func (a *analyzer) record(before bool, s ast.Stmt, m *matrix.Matrix) {
	if !a.recording || m == nil {
		return
	}
	if a.sink != nil {
		if !before {
			return
		}
		if prev, ok := a.sink[s]; ok {
			merged := prev.Merge(m)
			merged.Widen(a.eng.opts.Limits)
			a.sink[s] = merged
		} else {
			a.sink[s] = m.Copy()
		}
		return
	}
	tab := a.eng.info.Before
	if !before {
		tab = a.eng.info.After
	}
	if prev, ok := tab[s]; ok {
		merged := prev.Merge(m)
		merged.Widen(a.eng.opts.Limits)
		tab[s] = merged
	} else {
		tab[s] = m.Copy()
	}
}

// stmt is the abstract transformer: given the matrix before s, it returns
// the matrix after s, or nil (bottom) when the point after s is not
// reachable in the current approximation.
func (a *analyzer) stmt(m *matrix.Matrix, s ast.Stmt) *matrix.Matrix {
	if m == nil {
		return nil
	}
	a.record(true, s, m)
	var out *matrix.Matrix
	switch s := s.(type) {
	case *ast.Block:
		out = m
		for _, st := range s.Stmts {
			out = a.stmt(out, st)
		}
	case *ast.Par:
		// The analysis treats parallel branches as sequential composition;
		// the interference analyses of §5 independently verify that the
		// branches do not interfere, which makes any order equivalent.
		out = m
		for _, st := range s.Branches {
			out = a.stmt(out, st)
		}
	case *ast.If:
		thenIn := refineCond(m.Copy(), s.Cond, true)
		elseIn := refineCond(m.Copy(), s.Cond, false)
		thenOut := a.stmt(thenIn, s.Then)
		elseOut := elseIn
		if s.Else != nil {
			elseOut = a.stmt(elseIn, s.Else)
		}
		out = mergeMaybe(thenOut, elseOut)
		if out != nil {
			out.Widen(a.eng.opts.Limits)
		}
	case *ast.While:
		out = a.while(m, s)
	case *ast.CallStmt:
		out = a.call(m, s.Name, s.Args, nil, s.Pos())
	case *ast.Assign:
		out = a.assign(m, s)
	default:
		out = m
	}
	a.record(false, s, out)
	return out
}

// mergeMaybe joins two possibly-bottom matrices.
func mergeMaybe(x, y *matrix.Matrix) *matrix.Matrix {
	switch {
	case x == nil:
		return y
	case y == nil:
		return x
	default:
		return x.Merge(y)
	}
}

// while implements the iterative approximation of Figure 3: starting from
// p0 (zero iterations), repeatedly analyze one more iteration and merge,
// widening until the matrix stabilizes at p+.
func (a *analyzer) while(m *matrix.Matrix, s *ast.While) *matrix.Matrix {
	acc := m.Copy()
	for i := 0; i < a.eng.opts.MaxLoopIters; i++ {
		bodyIn := refineCond(acc.Copy(), s.Cond, true)
		bodyOut := a.stmt(bodyIn, s.Body)
		next := mergeMaybe(acc, bodyOut)
		if next == nil {
			return nil
		}
		next.Widen(a.eng.opts.Limits)
		if next.Equal(acc) {
			break
		}
		acc = next
	}
	return refineCond(acc.Copy(), s.Cond, false)
}
