// Package analysis computes a path matrix for every program point of a SIL
// program — the core contribution of Hendren & Nicolau (§4). It implements:
//
//   - transfer functions for every basic handle statement (transfer.go),
//     validated against the paper's Figure 2;
//   - condition refinement for nil tests (refine.go);
//   - the iterative approximation for while loops (Figure 3) with the
//     widening bounds of path.Limits guaranteeing convergence;
//   - interprocedural analysis with the symbolic handles h*i (the caller's
//     i-th handle argument) and h**i (all stacked recursive arguments),
//     reproducing Figure 7's matrices pA and pB, via a worklist fixpoint
//     over per-procedure summaries;
//   - mod-ref classification of handle parameters into read-only and
//     update arguments (§5.2's refinement);
//   - structure verification: TREE/DAG/cycle verdicts on every structure
//     update (§3.1), reported as diagnostics.
//
// The engine requires normalized (basic-statement) programs; run
// types.Normalize first.
package analysis

import (
	"fmt"
	"sort"

	"repro/internal/matrix"
	"repro/internal/path"
	"repro/internal/sil/ast"
	"repro/internal/sil/token"
	"repro/internal/sil/types"
)

// Options tunes the analysis.
type Options struct {
	// Limits bounds the path-expression domain (zero value: DefaultLimits).
	Limits path.Limits
	// MaxLoopIters caps Figure 3's iteration as a backstop beyond widening.
	MaxLoopIters int
	// MaxWorklist caps procedure reanalyses.
	MaxWorklist int
	// ExternalRoots names main locals that the execution environment binds
	// to externally built structures before main runs (the paper's
	// "... build a tree at root ..." realized by a Setup function). They
	// start possibly-non-nil with unknown indegree, and — since the
	// builder may have aliased them — pairwise possibly related.
	ExternalRoots []string
}

func (o Options) withDefaults() Options {
	if o.Limits == (path.Limits{}) {
		o.Limits = path.DefaultLimits
	}
	if o.MaxLoopIters == 0 {
		o.MaxLoopIters = 40
	}
	if o.MaxWorklist == 0 {
		o.MaxWorklist = 400
	}
	return o
}

// Diagnostic is a structure-verification or safety finding.
type Diagnostic struct {
	Pos   token.Pos
	Level string // "warn" or "error"
	Msg   string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Level, d.Msg)
}

// Summary is the interprocedural abstraction of one procedure.
type Summary struct {
	Proc *ast.ProcDecl
	// Entry is the merged entry matrix over formals and symbolic handles
	// (h*i, h**i), combining every call context seen so far.
	Entry *matrix.Matrix
	// Exit is the matrix at procedure exit projected onto the formals,
	// symbolic handles and (for functions) the return variable. nil means
	// bottom: no terminating path analyzed yet.
	Exit *matrix.Matrix
	// UpdateParams[i] reports that the i-th parameter is an update argument
	// (§5.2): some write (value or link) may occur through it. Non-handle
	// parameters are always false.
	UpdateParams []bool
	// LinkParams[i] reports that a structure update (a.f := …) may occur
	// through the i-th parameter.
	LinkParams []bool
	// AttachesParams[i] reports that the i-th argument's node itself may
	// gain a parent inside the callee (it appears as the right side of a
	// structure update).
	AttachesParams []bool
	// ModifiesLinks reports any structure update anywhere in the procedure
	// or its callees.
	ModifiesLinks bool
	// HandleParamIdx maps handle-parameter order (1-based symbolic index)
	// to parameter positions.
	HandleParamIdx []int
}

// ReadOnlyParam reports whether parameter i is read-only (§5.2).
func (s *Summary) ReadOnlyParam(i int) bool {
	return i < len(s.UpdateParams) && !s.UpdateParams[i]
}

// Info is the analysis result.
type Info struct {
	Prog *ast.Program
	Opts Options
	// Before and After give the path matrix at the program point
	// immediately before / after each statement (merged over all contexts
	// of the final fixpoint iteration).
	Before map[ast.Stmt]*matrix.Matrix
	After  map[ast.Stmt]*matrix.Matrix
	// Summaries maps procedure names to their fixpoint summaries.
	Summaries map[string]*Summary
	// Diags are the structure-verification findings, deduplicated.
	Diags []Diagnostic

	stmtProc map[ast.Stmt]string
}

// ProcOf returns the name of the procedure containing the statement.
func (in *Info) ProcOf(s ast.Stmt) (string, bool) {
	name, ok := in.stmtProc[s]
	return name, ok
}

// Shape returns the worst structure estimate over every program point of
// the whole program. A temporary DAG (the §1 node swap) degrades this
// verdict even when the structure recovers; see ExitShape for the estimate
// at main's exit.
func (in *Info) Shape() matrix.Shape {
	worst := matrix.ShapeTree
	for _, m := range in.After {
		if m != nil && m.Shape() > worst {
			worst = m.Shape()
		}
	}
	return worst
}

// ExitShape returns the structure estimate at the end of main — TREE for
// programs that only pass through temporary violations.
func (in *Info) ExitShape() matrix.Shape {
	main := in.Prog.Proc("main")
	if main == nil || len(main.Body.Stmts) == 0 {
		return matrix.ShapeTree
	}
	m := in.After[main.Body.Stmts[len(main.Body.Stmts)-1]]
	if m == nil {
		return matrix.ShapeTree
	}
	return m.Shape()
}

// DiagStrings renders diagnostics deterministically.
func (in *Info) DiagStrings() []string {
	out := make([]string, len(in.Diags))
	for i, d := range in.Diags {
		out[i] = d.String()
	}
	sort.Strings(out)
	return out
}

// Analyze runs the whole-program analysis. The program must be checked and
// normalized; Analyze verifies the basic-statement invariants first.
func Analyze(prog *ast.Program, opts Options) (*Info, error) {
	if err := types.VerifyBasic(prog); err != nil {
		return nil, fmt.Errorf("analysis: program is not in basic form: %w", err)
	}
	main := prog.Proc("main")
	if main == nil {
		return nil, fmt.Errorf("analysis: no main procedure")
	}
	opts = opts.withDefaults()
	a := &analyzer{
		prog: prog,
		opts: opts,
		info: &Info{
			Prog:      prog,
			Opts:      opts,
			Before:    map[ast.Stmt]*matrix.Matrix{},
			After:     map[ast.Stmt]*matrix.Matrix{},
			Summaries: map[string]*Summary{},
			stmtProc:  map[ast.Stmt]string{},
		},
		callers: map[string]map[string]bool{},
		diagSet: map[string]bool{},
	}
	for _, d := range prog.Decls {
		walkStmts(d.Body, func(s ast.Stmt) { a.info.stmtProc[s] = d.Name })
	}
	a.ensureSummary(main, entryForMain(main, opts))
	a.enqueue("main")
	for steps := 0; len(a.work) > 0; steps++ {
		if steps > opts.MaxWorklist {
			return nil, fmt.Errorf("analysis: worklist did not converge in %d steps", opts.MaxWorklist)
		}
		name := a.work[0]
		a.work = a.work[1:]
		a.inWork[name] = false
		a.reanalyze(name)
	}
	// One final pass per reachable procedure so Before/After reflect the
	// fixpoint summaries.
	a.recording = true
	for _, name := range a.analysisOrder() {
		a.reanalyze(name)
	}
	return a.info, nil
}

type analyzer struct {
	prog    *ast.Program
	opts    Options
	info    *Info
	work    []string
	inWork  map[string]bool
	callers map[string]map[string]bool
	diagSet map[string]bool
	// recording enables Before/After capture (final pass only).
	recording bool
	// sink, when non-nil, receives before-matrices instead of info.Before
	// (used by Replay).
	sink map[ast.Stmt]*matrix.Matrix
	// mute suppresses diagnostics (replays re-traverse analyzed code).
	mute bool
	// cur is the procedure under analysis.
	cur *ast.ProcDecl
}

// Replay re-runs the abstract transformers over a statement sequence from
// an explicit starting matrix, returning the matrix before every statement
// in the sequence (including nested ones) and the final matrix. §5.3 uses
// it to obtain Figure 9's per-statement matrices for U and V from the same
// initial point, independent of the sequential order the program text has.
func (in *Info) Replay(procName string, p0 *matrix.Matrix, seq []ast.Stmt) (map[ast.Stmt]*matrix.Matrix, *matrix.Matrix) {
	d := in.Prog.Proc(procName)
	a := &analyzer{
		prog:      in.Prog,
		opts:      in.Opts,
		info:      in,
		callers:   map[string]map[string]bool{},
		diagSet:   map[string]bool{},
		recording: true,
		mute:      true, // replays must not duplicate diagnostics
		sink:      map[ast.Stmt]*matrix.Matrix{},
		cur:       d,
	}
	m := p0.Copy()
	for _, s := range seq {
		m = a.stmt(m, s)
	}
	return a.sink, m
}

func (a *analyzer) analysisOrder() []string {
	names := make([]string, 0, len(a.info.Summaries))
	for n := range a.info.Summaries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (a *analyzer) enqueue(name string) {
	if a.recording {
		return // the final recording pass must not perturb the fixpoint
	}
	if a.inWork == nil {
		a.inWork = map[string]bool{}
	}
	if !a.inWork[name] {
		a.inWork[name] = true
		a.work = append(a.work, name)
	}
}

func (a *analyzer) diag(pos token.Pos, level, msg string) {
	if a.mute {
		return
	}
	d := Diagnostic{Pos: pos, Level: level, Msg: msg}
	key := d.String()
	if !a.diagSet[key] {
		a.diagSet[key] = true
		a.info.Diags = append(a.info.Diags, d)
	}
}

// handleParams returns the positions of handle parameters.
func handleParams(d *ast.ProcDecl) []int {
	var out []int
	for i, p := range d.Params {
		if p.Type == ast.HandleT {
			out = append(out, i)
		}
	}
	return out
}

// entryForMain builds main's entry matrix: every local starts definitely
// nil (the interpreter's semantics for uninitialized handles), except the
// declared external roots, which the environment may bind to arbitrary
// tree structures.
func entryForMain(main *ast.ProcDecl, opts Options) *matrix.Matrix {
	ext := make(map[string]bool, len(opts.ExternalRoots))
	for _, r := range opts.ExternalRoots {
		ext[r] = true
	}
	m := matrix.New()
	var roots []matrix.Handle
	for _, v := range main.Locals {
		if v.Type != ast.HandleT {
			continue
		}
		if ext[v.Name] {
			h := matrix.Handle(v.Name)
			m.Add(h, matrix.Attr{Nil: matrix.MaybeNil, Indeg: matrix.UnknownDeg})
			roots = append(roots, h)
		} else {
			m.Add(matrix.Handle(v.Name), matrix.Attr{Nil: matrix.DefNil, Indeg: matrix.Root})
		}
	}
	maybeAnywhere := path.NewSet(path.SamePossible(), path.NewPossible(path.Plus(path.DownD)))
	for _, a := range roots {
		for _, b := range roots {
			if a != b {
				m.Put(a, b, maybeAnywhere)
			}
		}
	}
	return m
}

func (a *analyzer) ensureSummary(d *ast.ProcDecl, entry *matrix.Matrix) *Summary {
	s, ok := a.info.Summaries[d.Name]
	if !ok {
		s = &Summary{
			Proc:           d,
			Entry:          entry,
			UpdateParams:   make([]bool, len(d.Params)),
			LinkParams:     make([]bool, len(d.Params)),
			AttachesParams: make([]bool, len(d.Params)),
			HandleParamIdx: handleParams(d),
		}
		a.info.Summaries[d.Name] = s
	}
	return s
}

// reanalyze runs one pass over a procedure body from its current entry.
func (a *analyzer) reanalyze(name string) {
	s := a.info.Summaries[name]
	if s == nil {
		return
	}
	a.cur = s.Proc
	m := s.Entry.Copy()
	// Locals start definitely nil — unless the entry matrix already binds
	// them (main's external roots).
	for _, v := range s.Proc.Locals {
		if v.Type == ast.HandleT && !m.Has(matrix.Handle(v.Name)) {
			m.Add(matrix.Handle(v.Name), matrix.Attr{Nil: matrix.DefNil, Indeg: matrix.Root})
		}
	}
	if a.recording {
		clearRecords(a.info, s.Proc)
	}
	exit := a.stmt(m, s.Proc.Body)
	changed := false
	if exit != nil {
		// Project onto the caller-visible handles.
		keep := make([]matrix.Handle, 0, 8)
		for _, h := range exit.Handles() {
			if h.IsSymbolic() {
				keep = append(keep, h)
			}
		}
		for _, v := range s.Proc.Params {
			if v.Type == ast.HandleT {
				keep = append(keep, matrix.Handle(v.Name))
			}
		}
		if s.Proc.IsFunction() {
			keep = append(keep, matrix.Handle(s.Proc.ReturnVar))
		}
		proj := exit.Project(keep)
		proj.Widen(a.opts.Limits)
		if s.Exit == nil || !s.Exit.Equal(proj) {
			if s.Exit != nil {
				merged := s.Exit.Merge(proj)
				merged.Widen(a.opts.Limits)
				proj = merged
			}
			if s.Exit == nil || !s.Exit.Equal(proj) {
				s.Exit = proj
				changed = true
			}
		}
	}
	if changed {
		for caller := range a.callers[name] {
			a.enqueue(caller)
		}
		// Self-recursive procedures must also converge.
		if a.callers[name][name] || a.selfCalls(s.Proc) {
			a.enqueue(name)
		}
	}
}

func (a *analyzer) selfCalls(d *ast.ProcDecl) bool {
	found := false
	walkStmts(d.Body, func(s ast.Stmt) {
		switch s := s.(type) {
		case *ast.CallStmt:
			if s.Name == d.Name {
				found = true
			}
		case *ast.Assign:
			if c, ok := s.Rhs.(*ast.CallExpr); ok && c.Name == d.Name {
				found = true
			}
		}
	})
	return found
}

func clearRecords(in *Info, d *ast.ProcDecl) {
	walkStmts(d.Body, func(s ast.Stmt) {
		delete(in.Before, s)
		delete(in.After, s)
	})
}

// walkStmts visits every statement in a subtree.
func walkStmts(s ast.Stmt, f func(ast.Stmt)) {
	if s == nil {
		return
	}
	f(s)
	switch s := s.(type) {
	case *ast.Block:
		for _, st := range s.Stmts {
			walkStmts(st, f)
		}
	case *ast.Par:
		for _, st := range s.Branches {
			walkStmts(st, f)
		}
	case *ast.If:
		walkStmts(s.Then, f)
		walkStmts(s.Else, f)
	case *ast.While:
		walkStmts(s.Body, f)
	}
}

func (a *analyzer) record(before bool, s ast.Stmt, m *matrix.Matrix) {
	if !a.recording || m == nil {
		return
	}
	if a.sink != nil {
		if !before {
			return
		}
		if prev, ok := a.sink[s]; ok {
			merged := prev.Merge(m)
			merged.Widen(a.opts.Limits)
			a.sink[s] = merged
		} else {
			a.sink[s] = m.Copy()
		}
		return
	}
	tab := a.info.Before
	if !before {
		tab = a.info.After
	}
	if prev, ok := tab[s]; ok {
		merged := prev.Merge(m)
		merged.Widen(a.opts.Limits)
		tab[s] = merged
	} else {
		tab[s] = m.Copy()
	}
}

// stmt is the abstract transformer: given the matrix before s, it returns
// the matrix after s, or nil (bottom) when the point after s is not
// reachable in the current approximation.
func (a *analyzer) stmt(m *matrix.Matrix, s ast.Stmt) *matrix.Matrix {
	if m == nil {
		return nil
	}
	a.record(true, s, m)
	var out *matrix.Matrix
	switch s := s.(type) {
	case *ast.Block:
		out = m
		for _, st := range s.Stmts {
			out = a.stmt(out, st)
		}
	case *ast.Par:
		// The analysis treats parallel branches as sequential composition;
		// the interference analyses of §5 independently verify that the
		// branches do not interfere, which makes any order equivalent.
		out = m
		for _, st := range s.Branches {
			out = a.stmt(out, st)
		}
	case *ast.If:
		thenIn := refineCond(m.Copy(), s.Cond, true)
		elseIn := refineCond(m.Copy(), s.Cond, false)
		thenOut := a.stmt(thenIn, s.Then)
		elseOut := elseIn
		if s.Else != nil {
			elseOut = a.stmt(elseIn, s.Else)
		}
		out = mergeMaybe(thenOut, elseOut)
		if out != nil {
			out.Widen(a.opts.Limits)
		}
	case *ast.While:
		out = a.while(m, s)
	case *ast.CallStmt:
		out = a.call(m, s.Name, s.Args, nil, s.Pos())
	case *ast.Assign:
		out = a.assign(m, s)
	default:
		out = m
	}
	a.record(false, s, out)
	return out
}

// mergeMaybe joins two possibly-bottom matrices.
func mergeMaybe(x, y *matrix.Matrix) *matrix.Matrix {
	switch {
	case x == nil:
		return y
	case y == nil:
		return x
	default:
		return x.Merge(y)
	}
}

// while implements the iterative approximation of Figure 3: starting from
// p0 (zero iterations), repeatedly analyze one more iteration and merge,
// widening until the matrix stabilizes at p+.
func (a *analyzer) while(m *matrix.Matrix, s *ast.While) *matrix.Matrix {
	acc := m.Copy()
	for i := 0; i < a.opts.MaxLoopIters; i++ {
		bodyIn := refineCond(acc.Copy(), s.Cond, true)
		bodyOut := a.stmt(bodyIn, s.Body)
		next := mergeMaybe(acc, bodyOut)
		if next == nil {
			return nil
		}
		next.Widen(a.opts.Limits)
		if next.Equal(acc) {
			break
		}
		acc = next
	}
	return refineCond(acc.Copy(), s.Cond, false)
}
