// Package analysis computes a path matrix for every program point of a SIL
// program — the core contribution of Hendren & Nicolau (§4). It implements:
//
//   - transfer functions for every basic handle statement (transfer.go),
//     validated against the paper's Figure 2;
//   - condition refinement for nil tests (refine.go);
//   - the iterative approximation for while loops (Figure 3) with the
//     widening bounds of path.Limits guaranteeing convergence;
//   - interprocedural analysis with the symbolic handles h*i (the caller's
//     i-th handle argument) and h**i (all stacked recursive arguments),
//     reproducing Figure 7's matrices pA and pB, via a worklist fixpoint
//     over per-procedure summaries;
//   - mod-ref classification of handle parameters into read-only and
//     update arguments (§5.2's refinement);
//   - structure verification: TREE/DAG/cycle verdicts on every structure
//     update (§3.1), reported as diagnostics.
//
// The engine requires normalized (basic-statement) programs; run
// types.Normalize first.
package analysis

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/matrix"
	"repro/internal/path"
	"repro/internal/sil/ast"
	"repro/internal/sil/token"
	"repro/internal/sil/types"
)

// Options tunes the analysis.
type Options struct {
	// Limits bounds the path-expression domain (zero value: DefaultLimits).
	Limits path.Limits
	// MaxLoopIters caps Figure 3's iteration as a backstop beyond widening.
	MaxLoopIters int
	// MaxWorklist scales the cap on total (procedure, context) item
	// analyses — the non-convergence backstop.
	MaxWorklist int
	// Workers bounds the worker pool of the round-based interprocedural
	// fixpoint. Work items are (procedure, context) pairs, so independent
	// procedures AND independent call contexts of the same procedure are
	// analyzed concurrently within a round. Rounds read a frozen snapshot
	// and apply updates at a deterministic barrier, so the result is
	// bit-identical for every pool size. 0 picks a default from the
	// machine.
	Workers int
	// MaxContexts bounds the per-procedure context table of the
	// context-sensitive summaries (see context.go): each distinct call
	// context, keyed by its entry-matrix fingerprint, gets its own
	// entry→exit mapping; beyond the cap, least-recently-used contexts
	// collapse into a merged widened fallback context, degrading gracefully
	// to the paper's single-summary behavior. 0 picks DefaultMaxContexts;
	// negative values disable context sensitivity entirely ("merged mode":
	// every call context folds into the one fallback summary).
	MaxContexts int
	// ExternalRoots names main locals that the execution environment binds
	// to externally built structures before main runs (the paper's
	// "... build a tree at root ..." realized by a Setup function). They
	// start possibly-non-nil with unknown indegree, and — since the
	// builder may have aliased them — pairwise possibly related.
	ExternalRoots []string
	// Space selects the matrix/path Space the analysis interns into; nil
	// picks matrix.DefaultSpace(), the process-wide tables one-shot CLI
	// runs share. Long-lived services give each session worker its own
	// Space so epoch resets stay worker-local. The choice of Space never
	// affects results (matrices render content-based), so it is no part of
	// any result-cache key.
	Space *matrix.Space
	// Budgets bounds the work this run may consume (budget.go). Checked
	// only at round barriers; the zero value is unlimited. Budgets can
	// fail a run with ErrBudgetExceeded, never change a successful one,
	// so — like Workers — they are no part of any result-cache key.
	Budgets Budgets
	// Seeds provides converged per-procedure summaries from an earlier
	// run of a program containing the same procedures (incremental.go).
	// Seeds are validated hints: the fixpoint runs from the seeded tables
	// and the result is checked against every seed afterwards; on any
	// mismatch Analyze transparently re-runs cold, so seeding never
	// changes what is returned — only how much fixpoint work it costs.
	// Keying seeds correctly (procedure body + reachable callees + every
	// option above) is the caller's job; internal/service does.
	Seeds map[string]*ProcSeed
}

// withDefaults fills the scalar knobs. It deliberately leaves Space alone:
// the process-global fallback is bound in exactly one place (Analyze), so
// reading ContextSensitive/EffectiveWorkers off an Options value never
// materializes the global Space as a side effect.
func (o Options) withDefaults() Options {
	if o.Limits == (path.Limits{}) {
		o.Limits = path.DefaultLimits
	}
	if o.MaxLoopIters == 0 {
		o.MaxLoopIters = 40
	}
	if o.MaxWorklist == 0 {
		o.MaxWorklist = 400
	}
	if o.Workers == 0 {
		o.Workers = runtime.NumCPU()
		if o.Workers > 8 {
			o.Workers = 8
		}
	}
	if o.Workers < 1 {
		o.Workers = 1
	}
	if o.MaxContexts == 0 {
		o.MaxContexts = DefaultMaxContexts
	}
	return o
}

// ContextSensitive reports whether Analyze will keep per-context summaries
// for this Options value (reporting hook for silbench).
func (o Options) ContextSensitive() bool { return o.withDefaults().MaxContexts > 0 }

// EffectiveWorkers returns the worker-pool size Analyze will actually use
// for this Options value (reporting hook for silbench).
func (o Options) EffectiveWorkers() int { return o.withDefaults().Workers }

// Diagnostic is a structure-verification or safety finding.
type Diagnostic struct {
	Pos   token.Pos
	Level string // "warn" or "error"
	Msg   string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Level, d.Msg)
}

// Summary is the interprocedural abstraction of one procedure: the
// context table (see context.go) mapping each distinct call context to its
// own entry→exit pair, plus the per-procedure mod-ref classification,
// which stays joined over every context (a parameter is an update argument
// if ANY context may write through it). During the concurrent fixpoint, mu
// guards every mutable field; matrices are immutable once published, so
// workers snapshot pointers under the lock and read them lock-free. After
// Analyze returns, summaries are quiescent and may be read directly.
type Summary struct {
	mu sync.Mutex

	Proc *ast.ProcDecl
	// UpdateParams[i] reports that the i-th parameter is an update argument
	// (§5.2): some write (value or link) may occur through it. Non-handle
	// parameters are always false.
	UpdateParams []bool
	// LinkParams[i] reports that a structure update (a.f := …) may occur
	// through the i-th parameter.
	LinkParams []bool
	// AttachesParams[i] reports that the i-th argument's node itself may
	// gain a parent inside the callee (it appears as the right side of a
	// structure update).
	AttachesParams []bool
	// ModifiesLinks reports any structure update anywhere in the procedure
	// or its callees.
	ModifiesLinks bool
	// HandleParamIdx maps handle-parameter order (1-based symbolic index)
	// to parameter positions.
	HandleParamIdx []int

	// The context table (context.go): exact contexts keyed by entry
	// fingerprint in an LRU bounded by maxContexts, a lazily created —
	// and lazily ANALYZED — merged fallback context, and the
	// evicted-fingerprint redirect set.
	maxContexts int
	contexts    map[matrix.Fp][]*ProcContext
	lru         []*ProcContext
	merged      *ProcContext
	evicted     map[matrix.Fp]bool
	evictions   int
	// shared maps presented-entry fingerprints to shared-exit aliases:
	// entries bound to a converged context's exit instead of a context of
	// their own (context.go). Cleared whenever the mod-ref bits sharpen.
	shared map[matrix.Fp][]sharedBinding
	// fbActivations / fbAnalyses count merged-fallback activations and the
	// fixpoint analyses the activated fallback consumed; exitsShared
	// counts live shared-exit aliases. Barrier-only mutation.
	fbActivations int
	fbAnalyses    int
	exitsShared   int
	// mergedMemo memoizes entries proven to fold into the fallback without
	// growing it (fingerprint-keyed, structural fallback on collision).
	mergedMemo  map[matrix.Fp][]*matrix.Matrix
	mergedMemoN int
	// seqCounter issues ProcContext.seq values (barrier-only mutation).
	seqCounter int
}

// ReadOnlyParam reports whether parameter i is read-only (§5.2).
func (s *Summary) ReadOnlyParam(i int) bool {
	return i < len(s.UpdateParams) && !s.UpdateParams[i]
}

// modref is a consistent snapshot of a summary's mod-ref classification.
type modref struct {
	update, links, attaches []bool
	modifiesLinks           bool
}

func (s *Summary) modrefSnapshot() modref {
	s.mu.Lock()
	defer s.mu.Unlock()
	return modref{
		update:        append([]bool(nil), s.UpdateParams...),
		links:         append([]bool(nil), s.LinkParams...),
		attaches:      append([]bool(nil), s.AttachesParams...),
		modifiesLinks: s.ModifiesLinks,
	}
}

// Info is the analysis result.
type Info struct {
	Prog *ast.Program
	Opts Options
	// Before and After give the path matrix at the program point
	// immediately before / after each statement, merged over every live
	// call context of the converged fixpoint.
	Before map[ast.Stmt]*matrix.Matrix
	After  map[ast.Stmt]*matrix.Matrix
	// Summaries maps procedure names to their fixpoint summaries.
	Summaries map[string]*Summary
	// Diags are the structure-verification findings, deduplicated.
	Diags []Diagnostic

	// FixpointSteps counts the (procedure, context) item analyses the
	// fixpoint consumed — the dirty-work metric of incremental runs (a
	// fully warm resubmit costs 0; a cold run costs the whole program).
	FixpointSteps int
	// SeededProcs counts the summaries seeded from Options.Seeds that
	// this run committed before the fixpoint.
	SeededProcs int
	// SeedsFellBack reports that a seeded run failed post-run validation
	// and this result came from the automatic cold re-run.
	SeedsFellBack bool

	stmtProc map[ast.Stmt]string
	seeded   []seededProc
}

// ProcOf returns the name of the procedure containing the statement.
func (in *Info) ProcOf(s ast.Stmt) (string, bool) {
	name, ok := in.stmtProc[s]
	return name, ok
}

// PathSpace returns the path.Space this analysis interned into — consumers
// building fresh path expressions against the Info's matrices (e.g. the
// interference analysis) must intern there.
func (in *Info) PathSpace() *path.Space {
	// Analyze binds Opts.Space before constructing the Info, so a real
	// Info always carries its Space; no global fallback.
	return in.Opts.Space.Paths()
}

// Shape returns the worst structure estimate over every program point of
// the whole program. A temporary DAG (the §1 node swap) degrades this
// verdict even when the structure recovers; see ExitShape for the estimate
// at main's exit.
func (in *Info) Shape() matrix.Shape {
	worst := matrix.ShapeTree
	for _, m := range in.After {
		if m != nil && m.Shape() > worst {
			worst = m.Shape()
		}
	}
	return worst
}

// ExitShape returns the structure estimate at the end of main — TREE for
// programs that only pass through temporary violations.
func (in *Info) ExitShape() matrix.Shape {
	main := in.Prog.Proc("main")
	if main == nil || len(main.Body.Stmts) == 0 {
		return matrix.ShapeTree
	}
	m := in.After[main.Body.Stmts[len(main.Body.Stmts)-1]]
	if m == nil {
		return matrix.ShapeTree
	}
	return m.Shape()
}

// DiagStrings renders diagnostics deterministically.
func (in *Info) DiagStrings() []string {
	out := make([]string, len(in.Diags))
	for i, d := range in.Diags {
		out[i] = d.String()
	}
	sort.Strings(out)
	return out
}

// Analyze runs the whole-program analysis. The program must be checked and
// normalized; Analyze verifies the basic-statement invariants first.
//
// The interprocedural fixpoint is round-based (bulk-synchronous) over
// (procedure, context) work items: within a round, opts.Workers goroutines
// analyze the dirty items in parallel against a FROZEN snapshot of every
// summary — each analysis stages its writes (call entries, exit
// projection, mod-ref flags) into a private buffer instead of mutating
// shared state. At the round barrier the staged updates apply sequentially
// in a canonical, content-sorted order. Because in-round reads see only
// the snapshot and the barrier is deterministic, the converged result is
// bit-identical for every worker-pool size — unlike a chaotic worklist,
// where the order in which joins meet the widening changes which (equally
// sound) fixpoint the merged summaries land on.
//
// Work items are born on demand (context.go): exact contexts when a caller
// presents a new entry, the merged fallback only when a consumer appears —
// a same-SCC call, an eviction redirect, or the drain barrier below.
// Dependencies are context-granular (engine.ctxDeps), so a caller bound to
// an exact context is not re-run by the fallback's widening ladder, and
// exact items of a recursive SCC are parked while that ladder converges
// (deferBehindFallbacks). All of this is decided at barriers from barrier
// state only, so the bit-identical-across-workers property is preserved.
//
// Diagnostics and the Before/After matrices are collected afterwards by a
// sequential closure pass over the context bindings reachable from main;
// contexts only visited by transient fixpoint states are pruned.
//
// ctx and opts.Budgets bound the run (budget.go): both are checked at
// round barriers and between recording-pass items, returning ErrCanceled /
// ErrBudgetExceeded. A nil ctx means context.Background(). Interrupts
// never alter a successful result's bytes — they only stop runs that would
// otherwise keep working.
func Analyze(ctx context.Context, prog *ast.Program, opts Options) (*Info, error) {
	ctx = background(ctx)
	if err := types.VerifyBasic(prog); err != nil {
		return nil, fmt.Errorf("analysis: program is not in basic form: %w", err)
	}
	main := prog.Proc("main")
	if main == nil {
		return nil, fmt.Errorf("analysis: no main procedure")
	}
	opts = opts.withDefaults()
	if opts.Space == nil {
		// The one sanctioned global-Space binding: Analyze is the library's
		// entry point, and a nil Options.Space is the documented "one-shot
		// process-wide tables" contract for CLI runs and tests. Everything
		// downstream (engine, entry matrices, Info.PathSpace) reads the
		// Space from the defaulted Options and never falls back again.
		opts.Space = matrix.DefaultSpace() //sillint:allow spacediscipline documented nil-Space contract, bound only here
	}
	info, err := analyzeOnce(ctx, prog, main, opts)
	if err == nil && (info.SeededProcs == 0 || info.seedsHeld()) {
		return info, nil
	}
	if err != nil && (len(opts.Seeds) == 0 || errors.Is(err, ErrCanceled) || errors.Is(err, ErrBudgetExceeded)) {
		// An interrupted seeded run must not trigger the cold fallback:
		// the caller is gone or out of budget either way.
		return nil, err
	}
	// A seed was not confirmed by the converged run: the callers of some
	// seeded procedure present a different context set than the run the
	// seeds came from, so the warm result may not match a cold run
	// bit-for-bit. Re-run cold (same Space; the stale interned paths are
	// reclaimed by the session's normal epoch resets).
	cold := opts
	cold.Seeds = nil
	info, err = analyzeOnce(ctx, prog, main, cold)
	if info != nil {
		info.SeedsFellBack = true
	}
	return info, err
}

// analyzeOnce is one full fixpoint + recording pass; Analyze wraps it
// with seed validation and the cold re-run.
func analyzeOnce(ctx context.Context, prog *ast.Program, main *ast.ProcDecl, opts Options) (*Info, error) {
	eng := newEngine(ctx, prog, opts, &Info{
		Prog:      prog,
		Opts:      opts,
		Before:    map[ast.Stmt]*matrix.Matrix{},
		After:     map[ast.Stmt]*matrix.Matrix{},
		Summaries: map[string]*Summary{},
		stmtProc:  map[ast.Stmt]string{},
	})
	for _, d := range prog.Decls {
		walkStmts(d.Body, func(s ast.Stmt) { eng.info.stmtProc[s] = d.Name })
	}
	eng.info.seeded = importSeeds(eng, opts.Seeds)
	eng.info.SeededProcs = len(eng.info.seeded)
	mainSum := eng.summaryFor(main)
	lk := mainSum.contextFor(entryForMain(main, opts), opts.Limits, false, false)
	eng.rootCtx = lk.ctx
	work := make([]item, 0, len(lk.analyze))
	for _, c := range lk.analyze {
		work = append(work, item{"main", c})
	}
	for {
		for len(work) > 0 {
			// Barrier interrupt point: cancellation and work budgets are
			// only observed here, between rounds, so an interrupted run
			// never exposes scheduling-dependent partial state.
			if err := eng.checkInterrupt(); err != nil {
				return nil, err
			}
			if err := eng.checkRoundBudget(); err != nil {
				return nil, err
			}
			eng.steps += len(work)
			if eng.steps > eng.budget {
				return nil, fmt.Errorf("analysis: fixpoint did not converge in %d item analyses", eng.budget)
			}
			for _, it := range work {
				if it.ctx.merged {
					eng.summary(it.name).noteFallbackAnalysis()
				}
			}
			stages := eng.runRound(work)
			eng.rounds++
			work = eng.applyRound(work, stages)
		}
		// Drain barrier: fallbacks whose entry accumulated two or more
		// distinct contexts but that never found a consumer activate now,
		// from already-converged callee exits — a few residual passes that
		// keep the fallback exit a sound, materialized stand-in for Replay
		// without a seat in every widening round.
		work = eng.activateDormantFallbacks()
		if len(work) == 0 {
			break
		}
	}
	eng.info.FixpointSteps = eng.steps
	// Final sequential recording pass: a breadth-first closure over the
	// (procedure, context) bindings reachable from main's root context.
	// Each reached item is replayed once; record() merges the matrices of
	// a procedure's contexts pointwise, and the call resolution is
	// read-only (lookupContext), so the pass cannot perturb the fixpoint.
	rec := &analyzer{eng: eng, recording: true}
	recorded := map[item]bool{}
	queue := []item{{"main", eng.rootCtx}}
	rec.onCall = func(it item) {
		if !recorded[it] {
			queue = append(queue, it)
		}
	}
	for len(queue) > 0 {
		// The recording pass replays one item per iteration, so between
		// items is the sequential analogue of the round barrier.
		if err := eng.checkInterrupt(); err != nil {
			return nil, err
		}
		it := queue[0]
		queue = queue[1:]
		if recorded[it] {
			continue
		}
		recorded[it] = true
		rec.reanalyze(it)
	}
	// Prune contexts the converged program does not bind (visited only by
	// transient fixpoint states — their membership depends on worker
	// scheduling, so they must not leak into the reported result).
	live := map[string]map[*ProcContext]bool{}
	for it := range recorded {
		if live[it.name] == nil {
			live[it.name] = map[*ProcContext]bool{}
		}
		live[it.name][it.ctx] = true
	}
	for name, sum := range eng.info.Summaries {
		sum.pruneContexts(live[name])
	}
	return eng.info, nil
}

// item is one unit of fixpoint work: a procedure analyzed against one of
// its call contexts.
type item struct {
	name string
	ctx  *ProcContext
}

// engine is the state shared by every worker of one Analyze run: the
// program, the round-based fixpoint bookkeeping, and the result under
// construction. During a round, workers only read summary state (under the
// per-summary locks) and only write their private staging buffers; mu
// guards the few shared tables that may grow mid-round (summary creation,
// diagnostics).
type engine struct {
	prog *ast.Program
	opts Options
	info *Info
	// msp/psp are the run's interning Spaces (opts.Space and its path
	// Space), resolved once so transfer functions don't re-derive them.
	msp *matrix.Space
	psp *path.Space

	mu sync.Mutex
	// procDeps maps a callee name to its caller items: when the callee's
	// mod-ref bits sharpen, every registered caller re-runs. Mutated only
	// at round barriers.
	procDeps map[string]map[item]bool
	// ctxDeps maps one callee CONTEXT to the caller items bound to it —
	// the exit-granular dependency edge: a context's exit growth (or its
	// eviction) re-runs only the callers that actually consume that
	// context, so a caller bound to an exact context is insulated from the
	// fallback's widening ladder. Registrations persist (a stale edge
	// costs a spurious re-run, never a missed one). Barrier-only mutation.
	ctxDeps map[*ProcContext]map[item]bool
	// deferred holds dirty exact-context items parked while a fallback of
	// their procedure's SCC is still converging: inside a recursive cycle
	// the exact context's body re-reads the fallback exit every round, so
	// analyzing it before the fallback ladder stabilizes only burns passes
	// on approximations that are immediately invalidated. Released when
	// the fallback leaves the work list (or, as a progress guarantee, when
	// nothing else is runnable). Barrier-only mutation.
	deferred map[item]bool
	diagSet  map[string]bool
	steps    int
	budget   int
	// ctx, rounds, and internBase drive the barrier interrupt checks
	// (budget.go): ctx is the caller's cancellation scope (Background for
	// Replay and nil-ctx callers), rounds counts completed barriers, and
	// internBase is the Space's interned-path population at engine
	// creation, so the intern budget charges only this run's growth.
	ctx        context.Context
	rounds     int
	internBase int
	// rootCtx is main's entry context, the recording pass's seed.
	rootCtx *ProcContext
	// keyCache memoizes canonicalKey by matrix fingerprint (structural
	// Equal fallback on collision). Barrier-only access.
	keyCache map[matrix.Fp][]keyEntry
	// scc maps each procedure to its static call-graph SCC id (computed
	// once, read-only afterwards): calls within one SCC — self or mutual
	// recursion — bind the merged fallback context (see context.go).
	scc map[string]int
}

// stagedEntry is one call-site context presentation, applied at the round
// barrier.
type stagedEntry struct {
	callee    string
	ent       *matrix.Matrix
	recursive bool
	caller    item
	key       string // canonical content key, filled at the barrier
}

// stagedUpdates collects everything one item's in-round analysis wants to
// write: the call entries it presented, its exit projection, and the
// mod-ref flags it derived for its own procedure. Buffers are private to
// the analyzing goroutine until the barrier.
type stagedUpdates struct {
	entries       []stagedEntry
	exit          *matrix.Matrix // projected exit, nil while bottom
	modUpdate     map[int]bool   // parameter positions flagged as update
	modLink       map[int]bool
	modAttach     map[int]bool
	modifiesLinks bool
}

func (st *stagedUpdates) flagParam(m map[int]bool, pos int) map[int]bool {
	if m == nil {
		m = map[int]bool{}
	}
	m[pos] = true
	return m
}

// runRound analyzes every work item in parallel against the frozen summary
// state, returning one staging buffer per item (indexed like work).
func (e *engine) runRound(work []item) []*stagedUpdates {
	stages := make([]*stagedUpdates, len(work))
	workers := e.opts.Workers
	if workers > len(work) {
		workers = len(work)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Workers are muted: diagnostics from intermediate fixpoint
			// states would depend on the iteration strategy; the recording
			// pass re-derives them from the converged summaries.
			a := &analyzer{eng: e, mute: true}
			for {
				i := int(next.Add(1)) - 1
				if i >= len(work) {
					return
				}
				a.st = &stagedUpdates{}
				a.reanalyze(work[i])
				stages[i] = a.st
			}
		}()
	}
	wg.Wait() //sillint:allow ctxflow round barrier by design: workers always drain their share, cancellation lands at the next round boundary
	return stages
}

// applyRound applies the staged updates of one round sequentially and
// returns the next round's work list. Every ordering here is canonical
// (content-sorted entries, work-order exits, context sequence numbers), so
// the resulting state — and therefore the whole fixpoint — does not depend
// on how many workers ran the round.
func (e *engine) applyRound(work []item, stages []*stagedUpdates) []item {
	lim := e.opts.Limits
	dirty := map[item]bool{}
	dirtyProcs := map[string]bool{}

	// 1. Register caller dependencies, then apply context presentations in
	// canonical order: sorted by callee, binding kind, and the entry's
	// content rendering (fingerprints would not do — they incorporate
	// intern IDs, which depend on process history).
	var reqs []stagedEntry
	for _, st := range stages {
		for _, se := range st.entries {
			e.addProcDep(se.callee, se.caller)
			se.key = e.canonicalKeyCached(se.ent)
			reqs = append(reqs, se)
		}
	}
	sort.SliceStable(reqs, func(i, j int) bool {
		if reqs[i].callee != reqs[j].callee {
			return reqs[i].callee < reqs[j].callee
		}
		if reqs[i].recursive != reqs[j].recursive {
			return !reqs[i].recursive
		}
		return reqs[i].key < reqs[j].key
	})
	// Aliases created at THIS barrier, keyed by callee and entry
	// fingerprint: every presenter of such an entry — not just the one
	// whose presentation created the alias — resolved it to bottom
	// in-round, and the donor's already-converged exit will never fire a
	// dependency, so all of them must re-run.
	newAliases := map[string]map[matrix.Fp]bool{}
	for _, se := range reqs {
		sum := e.summary(se.callee)
		lk := sum.contextFor(se.ent, lim, se.recursive, !se.caller.ctx.merged)
		e.addCtxDep(lk.ctx, se.caller)
		for _, c := range lk.analyze {
			dirty[item{se.callee, c}] = true
		}
		if lk.sharedNew {
			if newAliases[se.callee] == nil {
				newAliases[se.callee] = map[matrix.Fp]bool{}
			}
			newAliases[se.callee][se.ent.Fingerprint()] = true
		}
		if newAliases[se.callee][se.ent.Fingerprint()] {
			// The caller resolved this entry to bottom in-round; it now
			// has a converged donor exit to pick up.
			dirty[se.caller] = true
		}
		if lk.evicted != nil {
			// Only the items actually bound to the victim must rebind (to
			// the now-active fallback).
			for dep := range e.ctxDeps[lk.evicted] {
				dirty[dep] = true
			}
		}
	}

	// 2. Apply exit projections (one item owns one context, so these are
	// pairwise independent). An exit change re-runs exactly the items
	// bound to that context — context-granular, so exact-context callers
	// never chase the fallback's widening ladder.
	for i, st := range stages {
		if st.exit == nil {
			continue
		}
		it := work[i]
		if e.summary(it.name).updateCtxExit(it.ctx, st.exit, lim) {
			for dep := range e.ctxDeps[it.ctx] {
				dirty[dep] = true
			}
		}
	}

	// 3. Apply mod-ref flags (monotone booleans; order-free). Mod-ref
	// stays per-procedure, so a change re-runs every registered caller.
	for i, st := range stages {
		if e.summary(work[i].name).applyModref(st) {
			dirtyProcs[work[i].name] = true
		}
	}

	for p := range dirtyProcs {
		for it := range e.procDeps[p] {
			dirty[it] = true
		}
	}
	// Fold previously deferred items back in; the partition below decides
	// afresh whether their SCC's fallback still churns.
	for it := range e.deferred {
		dirty[it] = true
	}
	e.deferred = map[item]bool{}
	next := make([]item, 0, len(dirty))
	for it := range dirty {
		if !it.ctx.dropped {
			next = append(next, it)
		}
	}
	sort.Slice(next, func(i, j int) bool {
		if next[i].name != next[j].name {
			return next[i].name < next[j].name
		}
		return next[i].ctx.seq < next[j].ctx.seq
	})
	return e.deferBehindFallbacks(next)
}

// deferBehindFallbacks parks exact-context items whose procedure's SCC has
// a fallback in the work list: a recursive cycle's exact contexts re-read
// the fallback exit on every pass, so they are analyzed only once the
// fallback ladder has stabilized — the scheduling change that lets context
// mode track merged-mode cost. If nothing else is runnable the deferred
// items run anyway (progress guarantee), so convergence is unaffected; the
// partition is a pure function of the barrier state, so determinism across
// worker counts is preserved.
func (e *engine) deferBehindFallbacks(next []item) []item {
	fbSCC := map[int]bool{}
	for _, it := range next {
		if it.ctx.merged {
			fbSCC[e.scc[it.name]] = true
		}
	}
	if len(fbSCC) == 0 {
		return next
	}
	runnable := make([]item, 0, len(next))
	var parked []item
	for _, it := range next {
		if !it.ctx.merged && fbSCC[e.scc[it.name]] {
			parked = append(parked, it)
		} else {
			runnable = append(runnable, it)
		}
	}
	if len(runnable) == 0 {
		return next
	}
	for _, it := range parked {
		e.deferred[it] = true
	}
	return runnable
}

// sameSCC reports whether a call from caller to callee stays inside one
// call-graph SCC (i.e. is part of a recursive cycle).
func (e *engine) sameSCC(caller, callee string) bool {
	return e.scc[caller] != 0 && e.scc[caller] == e.scc[callee]
}

// callGraphSCC computes the strongly connected components of the static
// call graph (SIL has no indirect calls, so the AST graph is exact) with
// Tarjan's algorithm. Components are numbered from 1; procedures missing
// from the program map to 0, which sameSCC never matches.
func callGraphSCC(prog *ast.Program) map[string]int {
	callees := map[string][]string{}
	for _, d := range prog.Decls {
		seen := map[string]bool{}
		walkStmts(d.Body, func(s ast.Stmt) {
			name := ""
			switch s := s.(type) {
			case *ast.CallStmt:
				name = s.Name
			case *ast.Assign:
				if c, ok := s.Rhs.(*ast.CallExpr); ok {
					name = c.Name
				}
			}
			if name != "" && !seen[name] && prog.Proc(name) != nil {
				seen[name] = true
				callees[d.Name] = append(callees[d.Name], name)
			}
		})
	}
	scc := map[string]int{}
	index := map[string]int{}
	low := map[string]int{}
	onStack := map[string]bool{}
	var stack []string
	next, comp := 0, 0
	var strongconnect func(v string)
	strongconnect = func(v string) {
		next++
		index[v], low[v] = next, next
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range callees[v] {
			if _, ok := index[w]; !ok {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			comp++
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc[w] = comp
				if w == v {
					break
				}
			}
		}
	}
	for _, d := range prog.Decls {
		if _, ok := index[d.Name]; !ok {
			strongconnect(d.Name)
		}
	}
	return scc
}

// newEngine threads the caller's context at construction so every engine
// has the lifetime its caller chose; a nil ctx (Replay, whose recording
// pass observes no interrupt points) defaults through background().
func newEngine(ctx context.Context, prog *ast.Program, opts Options, info *Info) *engine {
	msp := opts.Space // non-nil: every caller passes Analyze-defaulted Options
	e := &engine{
		prog:     prog,
		opts:     opts,
		info:     info,
		msp:      msp,
		psp:      msp.Paths(),
		ctx:      background(ctx),
		procDeps: map[string]map[item]bool{},
		ctxDeps:  map[*ProcContext]map[item]bool{},
		deferred: map[item]bool{},
		diagSet:  map[string]bool{},
		keyCache: map[matrix.Fp][]keyEntry{},
	}
	e.internBase = e.psp.InternedCount()
	if prog != nil {
		e.scc = callGraphSCC(prog)
	}
	// The budget caps total item analyses as a non-convergence backstop.
	// Context-sensitive runs multiply the item count by the live contexts
	// per procedure, so it scales with the table cap.
	e.budget = opts.MaxWorklist * 8
	if opts.MaxContexts > 0 {
		e.budget *= opts.MaxContexts + 1
	}
	return e
}

// keyEntry is one canonicalKey cache line.
type keyEntry struct {
	m   *matrix.Matrix
	key string
}

// canonicalKeyCached memoizes canonicalKey by fingerprint: at and near
// the fixpoint the same entries are re-presented every round, and the
// rendering is the barrier's main cost.
func (e *engine) canonicalKeyCached(m *matrix.Matrix) string {
	fp := m.Fingerprint()
	for _, ke := range e.keyCache[fp] {
		if ke.m.Equal(m) {
			return ke.key
		}
	}
	key := canonicalKey(m)
	e.keyCache[fp] = append(e.keyCache[fp], keyEntry{m, key})
	return key
}

// canonicalKey renders a matrix in a purely content-based, deterministic
// form — the barrier's sort key for staged call entries. (Fingerprints
// would not do: they incorporate interned IDs, which depend on the
// process's interning history.)
func canonicalKey(m *matrix.Matrix) string {
	hs := append([]matrix.Handle(nil), m.Handles()...)
	sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	var b strings.Builder
	fmt.Fprintf(&b, "%d|", m.StickyShape())
	for _, h := range hs {
		a := m.Attr(h)
		fmt.Fprintf(&b, "%s=%d,%d|", h, a.Nil, a.Indeg)
	}
	for _, r := range hs {
		for _, c := range hs {
			if e := m.Get(r, c); !e.IsEmpty() {
				fmt.Fprintf(&b, "%s>%s:%s|", r, c, e)
			}
		}
	}
	return b.String()
}

// summary returns the summary for name, or nil.
func (e *engine) summary(name string) *Summary {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.info.Summaries[name]
}

// summaryFor returns the summary for the procedure, creating it (with an
// empty context table) on first sighting.
func (e *engine) summaryFor(d *ast.ProcDecl) *Summary {
	e.mu.Lock()
	defer e.mu.Unlock()
	s, ok := e.info.Summaries[d.Name]
	if !ok {
		s = &Summary{
			Proc:           d,
			UpdateParams:   make([]bool, len(d.Params)),
			LinkParams:     make([]bool, len(d.Params)),
			AttachesParams: make([]bool, len(d.Params)),
			HandleParamIdx: handleParams(d),
			maxContexts:    e.opts.MaxContexts,
		}
		e.info.Summaries[d.Name] = s
	}
	return s
}

// addProcDep records that it calls the named procedure (and therefore
// consumes its mod-ref bits). Called only from round barriers
// (single-threaded), but locked for uniformity.
func (e *engine) addProcDep(name string, it item) {
	e.mu.Lock()
	if e.procDeps[name] == nil {
		e.procDeps[name] = map[item]bool{}
	}
	e.procDeps[name][it] = true
	e.mu.Unlock()
}

// addCtxDep records that it is bound to the context (and therefore
// consumes its exit). Barrier-only.
func (e *engine) addCtxDep(ctx *ProcContext, it item) {
	if e.ctxDeps[ctx] == nil {
		e.ctxDeps[ctx] = map[item]bool{}
	}
	e.ctxDeps[ctx][it] = true
}

// activateDormantFallbacks runs the drain barrier (see Analyze): every
// summary with two or more table entries and a dormant fallback activates
// it, and the activated fallbacks come back as the continuation work list
// in canonical name order.
func (e *engine) activateDormantFallbacks() []item {
	names := make([]string, 0, len(e.info.Summaries))
	for name := range e.info.Summaries {
		names = append(names, name)
	}
	sort.Strings(names)
	var work []item
	for _, name := range names {
		if s := e.info.Summaries[name]; s.activateDormantFallback() {
			work = append(work, item{name, s.merged})
		}
	}
	return work
}

// analyzer is the per-worker view of an engine: the work item currently
// being analyzed plus the staging/recording/muting state. Workers never
// share an analyzer value.
type analyzer struct {
	eng *engine
	// st, when non-nil, receives this item's writes (call entries, exit,
	// mod-ref flags) instead of mutating summaries — the in-round fixpoint
	// mode; the engine applies the buffer at the round barrier.
	st *stagedUpdates
	// recording enables Before/After capture (final pass only). A
	// recording analyzer resolves call contexts read-only and never
	// mutates summaries.
	recording bool
	// onCall, when set on a recording analyzer, receives the (procedure,
	// context) binding of every call site — the recording pass uses it to
	// close over the reachable bindings.
	onCall func(item)
	// sink, when non-nil, receives before-matrices instead of info.Before
	// (used by Replay).
	sink map[ast.Stmt]*matrix.Matrix
	// mute suppresses diagnostics (replays re-traverse analyzed code).
	mute bool
	// cur is the procedure under analysis; curSum caches its summary so the
	// per-statement transfer path does not take the engine lock; curItem is
	// the work item, recorded as the dependent of every call it makes.
	cur     *ast.ProcDecl
	curSum  *Summary
	curItem item
}

// currentSummary returns the summary of the procedure under analysis.
func (a *analyzer) currentSummary() *Summary {
	if a.curSum != nil && a.curSum.Proc == a.cur {
		return a.curSum
	}
	return a.eng.summary(a.cur.Name)
}

// Replay re-runs the abstract transformers over a statement sequence from
// an explicit starting matrix, returning the matrix before every statement
// in the sequence (including nested ones) and the final matrix. §5.3 uses
// it to obtain Figure 9's per-statement matrices for U and V from the same
// initial point, independent of the sequential order the program text has.
func (in *Info) Replay(procName string, p0 *matrix.Matrix, seq []ast.Stmt) (map[ast.Stmt]*matrix.Matrix, *matrix.Matrix) {
	d := in.Prog.Proc(procName)
	a := &analyzer{
		eng:       newEngine(nil, in.Prog, in.Opts, in),
		recording: true,
		mute:      true, // replays must not duplicate diagnostics
		sink:      map[ast.Stmt]*matrix.Matrix{},
		cur:       d,
	}
	m := p0.Copy()
	for _, s := range seq {
		m = a.stmt(m, s)
	}
	return a.sink, m
}

func (a *analyzer) diag(pos token.Pos, level, msg string) {
	if a.mute {
		return
	}
	d := Diagnostic{Pos: pos, Level: level, Msg: msg}
	key := d.String()
	e := a.eng
	e.mu.Lock()
	if !e.diagSet[key] {
		e.diagSet[key] = true
		e.info.Diags = append(e.info.Diags, d)
	}
	e.mu.Unlock()
}

// handleParams returns the positions of handle parameters.
func handleParams(d *ast.ProcDecl) []int {
	var out []int
	for i, p := range d.Params {
		if p.Type == ast.HandleT {
			out = append(out, i)
		}
	}
	return out
}

// entryForMain builds main's entry matrix: every local starts definitely
// nil (the interpreter's semantics for uninitialized handles), except the
// declared external roots, which the environment may bind to arbitrary
// tree structures.
func entryForMain(main *ast.ProcDecl, opts Options) *matrix.Matrix {
	ext := make(map[string]bool, len(opts.ExternalRoots))
	for _, r := range opts.ExternalRoots {
		ext[r] = true
	}
	m := matrix.NewIn(opts.Space)
	var roots []matrix.Handle
	for _, v := range main.Locals {
		if v.Type != ast.HandleT {
			continue
		}
		if ext[v.Name] {
			h := matrix.Handle(v.Name)
			m.Add(h, matrix.Attr{Nil: matrix.MaybeNil, Indeg: matrix.UnknownDeg})
			roots = append(roots, h)
		} else {
			m.Add(matrix.Handle(v.Name), matrix.Attr{Nil: matrix.DefNil, Indeg: matrix.Root})
		}
	}
	maybeAnywhere := path.NewSet(path.SamePossible(), opts.Space.Paths().NewPossible(path.Plus(path.DownD)))
	for _, a := range roots {
		for _, b := range roots {
			if a != b {
				m.Put(a, b, maybeAnywhere)
			}
		}
	}
	return m
}

// reanalyze runs one pass over a procedure body from one context's entry.
// In fixpoint mode (a.st != nil) the computed exit projection is staged
// for the round barrier; in recording mode the pass is read-only
// (Before/After and diagnostics aside).
func (a *analyzer) reanalyze(it item) {
	s := a.eng.summary(it.name)
	if s == nil {
		return
	}
	a.cur = s.Proc
	a.curSum = s
	a.curItem = it
	m := s.ctxEntry(it.ctx).Copy()
	// Locals start definitely nil — unless the entry matrix already binds
	// them (main's external roots).
	for _, v := range s.Proc.Locals {
		if v.Type == ast.HandleT && !m.Has(matrix.Handle(v.Name)) {
			m.Add(matrix.Handle(v.Name), matrix.Attr{Nil: matrix.DefNil, Indeg: matrix.Root})
		}
	}
	exit := a.stmt(m, s.Proc.Body)
	if a.st == nil || exit == nil {
		return
	}
	// Project onto the caller-visible handles.
	keep := make([]matrix.Handle, 0, 8)
	for _, h := range exit.Handles() {
		if h.IsSymbolic() {
			keep = append(keep, h)
		}
	}
	for _, v := range s.Proc.Params {
		if v.Type == ast.HandleT {
			keep = append(keep, matrix.Handle(v.Name))
		}
	}
	if s.Proc.IsFunction() {
		keep = append(keep, matrix.Handle(s.Proc.ReturnVar))
	}
	proj := exit.Project(keep)
	proj.Widen(a.eng.opts.Limits)
	a.st.exit = proj
}

// walkStmts visits every statement in a subtree.
func walkStmts(s ast.Stmt, f func(ast.Stmt)) {
	if s == nil {
		return
	}
	f(s)
	switch s := s.(type) {
	case *ast.Block:
		for _, st := range s.Stmts {
			walkStmts(st, f)
		}
	case *ast.Par:
		for _, st := range s.Branches {
			walkStmts(st, f)
		}
	case *ast.If:
		walkStmts(s.Then, f)
		walkStmts(s.Else, f)
	case *ast.While:
		walkStmts(s.Body, f)
	}
}

func (a *analyzer) record(before bool, s ast.Stmt, m *matrix.Matrix) {
	if !a.recording || m == nil {
		return
	}
	if a.sink != nil {
		if !before {
			return
		}
		if prev, ok := a.sink[s]; ok {
			merged := prev.Merge(m)
			merged.Widen(a.eng.opts.Limits)
			a.sink[s] = merged
		} else {
			a.sink[s] = m.Copy()
		}
		return
	}
	tab := a.eng.info.Before
	if !before {
		tab = a.eng.info.After
	}
	if prev, ok := tab[s]; ok {
		merged := prev.Merge(m)
		merged.Widen(a.eng.opts.Limits)
		tab[s] = merged
	} else {
		tab[s] = m.Copy()
	}
}

// stmt is the abstract transformer: given the matrix before s, it returns
// the matrix after s, or nil (bottom) when the point after s is not
// reachable in the current approximation.
func (a *analyzer) stmt(m *matrix.Matrix, s ast.Stmt) *matrix.Matrix {
	if m == nil {
		return nil
	}
	a.record(true, s, m)
	var out *matrix.Matrix
	switch s := s.(type) {
	case *ast.Block:
		out = m
		for _, st := range s.Stmts {
			out = a.stmt(out, st)
		}
	case *ast.Par:
		// The analysis treats parallel branches as sequential composition;
		// the interference analyses of §5 independently verify that the
		// branches do not interfere, which makes any order equivalent.
		out = m
		for _, st := range s.Branches {
			out = a.stmt(out, st)
		}
	case *ast.If:
		thenIn := refineCond(m.Copy(), s.Cond, true)
		elseIn := refineCond(m.Copy(), s.Cond, false)
		thenOut := a.stmt(thenIn, s.Then)
		elseOut := elseIn
		if s.Else != nil {
			elseOut = a.stmt(elseIn, s.Else)
		}
		out = mergeMaybe(thenOut, elseOut)
		if out != nil {
			out.Widen(a.eng.opts.Limits)
		}
	case *ast.While:
		out = a.while(m, s)
	case *ast.CallStmt:
		out = a.call(m, s.Name, s.Args, nil, s.Pos())
	case *ast.Assign:
		out = a.assign(m, s)
	default:
		out = m
	}
	a.record(false, s, out)
	return out
}

// mergeMaybe joins two possibly-bottom matrices.
func mergeMaybe(x, y *matrix.Matrix) *matrix.Matrix {
	switch {
	case x == nil:
		return y
	case y == nil:
		return x
	default:
		return x.Merge(y)
	}
}

// while implements the iterative approximation of Figure 3: starting from
// p0 (zero iterations), repeatedly analyze one more iteration and merge,
// widening until the matrix stabilizes at p+.
func (a *analyzer) while(m *matrix.Matrix, s *ast.While) *matrix.Matrix {
	acc := m.Copy()
	for i := 0; i < a.eng.opts.MaxLoopIters; i++ {
		bodyIn := refineCond(acc.Copy(), s.Cond, true)
		bodyOut := a.stmt(bodyIn, s.Body)
		next := mergeMaybe(acc, bodyOut)
		if next == nil {
			return nil
		}
		next.Widen(a.eng.opts.Limits)
		if next.Equal(acc) {
			break
		}
		acc = next
	}
	return refineCond(acc.Copy(), s.Cond, false)
}
