package analysis

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/progs"
	"repro/internal/sil/ast"
)

// countdownCtx is a deterministic mid-fixpoint cancellation point: Err()
// stays nil for the first `left` barrier checks, then reports Canceled.
// The engine consults ctx.Err() only at round barriers and between
// recording items, so "cancel on the N-th check" lands at an exact,
// scheduler-independent spot in the run.
type countdownCtx struct {
	context.Context
	left int
}

func (c *countdownCtx) Err() error {
	if c.left <= 0 {
		return context.Canceled
	}
	c.left--
	return nil
}

func compileTreeAdd(t *testing.T) (prog *ast.Program, roots []string) {
	t.Helper()
	p, err := progs.Compile(progs.TreeAdd)
	if err != nil {
		t.Fatal(err)
	}
	return p, []string{"root"}
}

func TestAnalyzePreCanceledContext(t *testing.T) {
	prog, roots := compileTreeAdd(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := Analyze(ctx, prog, Options{ExternalRoots: roots})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled ctx: err = %v, want ErrCanceled", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err must wrap the context cause: %v", err)
	}
	if errors.Is(err, ErrBudgetExceeded) {
		t.Errorf("cancellation must not read as a budget failure: %v", err)
	}
}

func TestAnalyzeExpiredDeadline(t *testing.T) {
	prog, roots := compileTreeAdd(t)
	ctx, cancel := context.WithDeadline(context.Background(), time.Unix(1, 0))
	defer cancel()
	_, err := Analyze(ctx, prog, Options{ExternalRoots: roots})
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expired deadline: err = %v, want ErrCanceled wrapping DeadlineExceeded", err)
	}
}

// TestAnalyzeMidFixpointCancel cancels after exactly one round and checks
// the typed error; the run's partial state is discarded by the engine, so
// there is nothing else observable — the service-level suite pins the
// pool-stays-clean half.
func TestAnalyzeMidFixpointCancel(t *testing.T) {
	prog, roots := compileTreeAdd(t)
	ctx := &countdownCtx{Context: context.Background(), left: 1}
	_, err := Analyze(ctx, prog, Options{ExternalRoots: roots})
	if !errors.Is(err, ErrCanceled) {
		t.Fatalf("mid-fixpoint cancel: err = %v, want ErrCanceled", err)
	}
}

func TestAnalyzeRoundBudget(t *testing.T) {
	prog, roots := compileTreeAdd(t)
	_, err := Analyze(context.Background(), prog, Options{
		ExternalRoots: roots,
		Budgets:       Budgets{MaxRounds: 1},
	})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("1-round budget on a recursive program: err = %v, want ErrBudgetExceeded", err)
	}
	if errors.Is(err, ErrCanceled) {
		t.Errorf("budget failure must not read as cancellation: %v", err)
	}
}

func TestAnalyzeInternBudget(t *testing.T) {
	prog, roots := compileTreeAdd(t)
	_, err := Analyze(context.Background(), prog, Options{
		ExternalRoots: roots,
		Budgets:       Budgets{MaxInternedPaths: 1},
	})
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("1-path intern budget: err = %v, want ErrBudgetExceeded", err)
	}
}

// TestBudgetedRunIdenticalToUnbudgeted: generous budgets must not change
// anything about a successful run — same fixpoint cost, same diagnostics,
// same shape verdicts. (The service-level suite additionally pins rendered
// byte-identity across the whole corpus.)
func TestBudgetedRunIdenticalToUnbudgeted(t *testing.T) {
	for _, e := range progs.Catalog {
		prog, err := progs.Compile(e.Source)
		if err != nil {
			t.Fatal(err)
		}
		plain, err := Analyze(context.Background(), prog, Options{ExternalRoots: e.Roots})
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		prog2, err := progs.Compile(e.Source)
		if err != nil {
			t.Fatal(err)
		}
		budgeted, err := Analyze(context.Background(), prog2, Options{
			ExternalRoots: e.Roots,
			Budgets:       Budgets{MaxRounds: 1 << 20, MaxInternedPaths: 1 << 30},
		})
		if err != nil {
			t.Fatalf("%s (budgeted): %v", e.Name, err)
		}
		if plain.FixpointSteps != budgeted.FixpointSteps {
			t.Errorf("%s: budgets changed fixpoint cost: %d vs %d", e.Name, plain.FixpointSteps, budgeted.FixpointSteps)
		}
		if plain.Shape() != budgeted.Shape() || plain.ExitShape() != budgeted.ExitShape() {
			t.Errorf("%s: budgets changed shape verdicts", e.Name)
		}
		pd, bd := plain.DiagStrings(), budgeted.DiagStrings()
		if len(pd) != len(bd) {
			t.Errorf("%s: budgets changed diagnostics: %v vs %v", e.Name, pd, bd)
		} else {
			for i := range pd {
				if pd[i] != bd[i] {
					t.Errorf("%s: diagnostic %d differs: %q vs %q", e.Name, i, pd[i], bd[i])
				}
			}
		}
	}
}
