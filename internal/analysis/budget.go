// Work budgets and cancellation for the round-based fixpoint.
//
// A long-lived serving process cannot let one pathological program stall a
// session-pool worker indefinitely, so Analyze accepts a context and an
// optional Budgets. Both are checked only at round barriers (and between
// items of the sequential recording pass): the bulk-synchronous engine's
// rounds are the natural preemption points, and checking anywhere finer
// would let the interrupt observe scheduling-dependent intermediate state.
//
// Determinism contract: budgets and cancellation never change what a
// SUCCESSFUL run returns — they only convert a run that would have kept
// working into a typed error. A program that converges within its budgets
// yields bytes identical to an unbudgeted run (pinned by the equivalence
// tests), which is why Budgets — like Workers — is no part of any
// result-cache fingerprint.
package analysis

import (
	"context"
	"errors"
	"fmt"
)

// Budgets bounds the work one Analyze call may consume. The zero value
// means unlimited (as does any non-positive field). Budgets are pure work
// caps: they can fail a run, never change a successful one.
type Budgets struct {
	// MaxRounds caps the number of fixpoint rounds (barrier-to-barrier
	// parallel passes). A run that needs more returns ErrBudgetExceeded.
	MaxRounds int
	// MaxInternedPaths caps the number of path expressions this run may
	// intern into its Space, measured as growth since the run started (so
	// a warm session's existing interned population is not charged).
	MaxInternedPaths int
}

// ErrBudgetExceeded reports that an analysis was stopped at a round
// barrier because it exceeded a Budgets cap. Match with errors.Is.
var ErrBudgetExceeded = errors.New("analysis budget exceeded")

// ErrCanceled reports that an analysis was stopped at a round barrier
// because its context was done. Match with errors.Is; the context's own
// cause (context.Canceled or context.DeadlineExceeded) is wrapped, so
// errors.Is(err, context.DeadlineExceeded) also works.
var ErrCanceled = errors.New("analysis canceled")

// canceledError carries the context cause behind ErrCanceled.
type canceledError struct{ cause error }

func (e *canceledError) Error() string        { return "analysis canceled: " + e.cause.Error() }
func (e *canceledError) Unwrap() error        { return e.cause }
func (e *canceledError) Is(target error) bool { return target == ErrCanceled }

// checkInterrupt is the barrier hook: context first (a dead caller's run
// should stop even if within budget), then the work caps. The partial
// fixpoint state is discarded by the caller; the session's Space keeps the
// interned paths until its normal epoch reset, exactly as an over-budget
// successful run would.
func (e *engine) checkInterrupt() error {
	if err := e.ctx.Err(); err != nil {
		return &canceledError{cause: err}
	}
	b := e.opts.Budgets
	if b.MaxInternedPaths > 0 {
		if grown := e.psp.InternedCount() - e.internBase; grown > b.MaxInternedPaths {
			return fmt.Errorf("%w: run interned %d paths (cap %d)", ErrBudgetExceeded, grown, b.MaxInternedPaths)
		}
	}
	return nil
}

// checkRoundBudget guards the start of ANOTHER fixpoint round: a run that
// converged in exactly MaxRounds rounds is within budget, so the cap is
// only consulted when more work remains. Not checked during the recording
// pass, which runs no rounds.
func (e *engine) checkRoundBudget() error {
	if b := e.opts.Budgets; b.MaxRounds > 0 && e.rounds >= b.MaxRounds {
		return fmt.Errorf("%w: fixpoint needs more than %d rounds", ErrBudgetExceeded, b.MaxRounds)
	}
	return nil
}

// background returns ctx, defaulting a nil context to context.Background()
// so library callers (Replay, tests) need not thread one.
func background(ctx context.Context) context.Context {
	if ctx == nil {
		return context.Background() //sillint:allow ctxflow nil-default for library callers (Replay, tests); servers thread a real ctx
	}
	return ctx
}
