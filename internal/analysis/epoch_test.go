package analysis

// Epoch-reset equivalence: a long-lived service resets the process
// path.Space between analysis batches to bound the intern/memo tables.
// Resetting must be invisible in the results — analyzing the same corpus
// with the concurrent fixpoint (Workers > 1) before and after a Reset must
// produce bit-identical diagnostics, shapes, mod-ref bits, and matrices.
// The snapshot deliberately renders matrices through String() (handle
// names + paper path notation) rather than fingerprints: fingerprints
// incorporate interned IDs and are not comparable across epochs.
//
// This file runs under -race in CI: the batches exercise the shared
// tables from many workers right up to the reset boundary.

import (
	"context"

	"fmt"
	"sort"
	"strings"
	"testing"

	"repro/internal/matrix"
	"repro/internal/path"
	"repro/internal/progs"
)

// canonicalMatrix renders a matrix with handles sorted by name: summary
// matrices are built by concurrent merges, so their insertion order (what
// String() shows) is scheduling-dependent even though their content is
// deterministic — only a canonical rendering can be compared bit-for-bit
// across batches.
func canonicalMatrix(m *matrix.Matrix) string {
	hs := append([]matrix.Handle(nil), m.Handles()...)
	sort.Slice(hs, func(i, j int) bool { return hs[i] < hs[j] })
	var b strings.Builder
	fmt.Fprintf(&b, "shape=%s\n", m.Shape())
	for _, h := range hs {
		a := m.Attr(h)
		fmt.Fprintf(&b, "  %s[%s,%s]\n", h, a.Nil, a.Indeg)
	}
	for _, r := range hs {
		for _, c := range hs {
			if e := m.Get(r, c); !e.IsEmpty() {
				fmt.Fprintf(&b, "  %s->%s: %s\n", r, c, e)
			}
		}
	}
	return b.String()
}

// epochSnapshot renders every analysis output the pipeline consumes in an
// epoch-independent form.
func epochSnapshot(t *testing.T, src string, roots []string, workers int) string {
	t.Helper()
	prog, err := progs.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	info, err := Analyze(context.Background(), prog, Options{Workers: workers, ExternalRoots: roots})
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "shape=%s exit=%s\n", info.Shape(), info.ExitShape())
	for _, d := range info.DiagStrings() {
		b.WriteString("diag " + d + "\n")
	}
	for _, name := range sortedSummaryNames(info) {
		s := info.Summaries[name]
		fmt.Fprintf(&b, "proc %s mod=%v upd=%v link=%v attach=%v\n",
			name, s.ModifiesLinks, s.UpdateParams, s.LinkParams, s.AttachesParams)
		// Contexts() order is content-canonical (comparable across
		// epochs), but the full renderings are sorted here too so this
		// dump stands on its own.
		var ctxs []string
		for _, c := range s.Contexts() {
			r := "context"
			if c.IsMerged() {
				r = "merged-context"
			}
			r += "\nentry\n" + canonicalMatrix(c.Entry())
			if c.Exit() != nil {
				r += "exit\n" + canonicalMatrix(c.Exit())
			} else {
				r += "exit bottom\n"
			}
			ctxs = append(ctxs, r)
		}
		sort.Strings(ctxs)
		b.WriteString(strings.Join(ctxs, ""))
	}
	return b.String()
}

func TestEpochResetEquivalence(t *testing.T) {
	sp := path.DefaultSpace()
	batch := func() map[string]string {
		out := make(map[string]string, len(progs.Catalog)+8)
		for _, e := range progs.Catalog {
			out[e.Name] = epochSnapshot(t, e.Source, e.Roots, 4)
		}
		for seed := int64(1); seed <= 8; seed++ {
			name := fmt.Sprintf("random-%d", seed)
			out[name] = epochSnapshot(t, progs.RandomProgram(seed), nil, 4)
		}
		return out
	}

	ref := batch()
	if st := sp.Stats(); st.InternedPaths == 0 || st.Verdicts() == 0 {
		t.Fatalf("batch did not populate the space: %+v", st)
	}
	if matrix.InternedHandles() == 0 {
		t.Fatal("batch did not populate the handle table")
	}

	sp.Reset()
	st := sp.Stats()
	if st.InternedPaths != 0 || st.Verdicts() != 0 || st.ResidueEntries != 0 {
		t.Fatalf("Space.Reset must empty every table: %+v", st)
	}
	if matrix.InternedHandles() != 0 {
		t.Fatal("Space.Reset must cascade to the matrix handle table")
	}

	got := batch()
	for name, want := range ref {
		if got[name] != want {
			t.Errorf("%s: results diverged across an epoch reset:\n--- before reset\n%s--- after reset\n%s",
				name, want, got[name])
		}
	}

	// A second immediate reset (empty epoch) is fine too.
	sp.Reset()
	if got := epochSnapshot(t, progs.AddAndReverse, nil, 4); got != ref["add_and_reverse"] {
		t.Error("add_and_reverse diverged after a second reset")
	}
}
