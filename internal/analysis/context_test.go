package analysis

// Tests for the context-sensitive summary table (context.go): the ctxpair
// precision pin, mode subsumption (context-sensitive results never add
// coverage beyond merged mode), graceful cap overflow, call-site edge
// cases (nil actuals, repeated actuals, non-VarRef actuals), and
// stacked-handle survival across a Space.Reset epoch.

import (
	"context"

	"fmt"
	"testing"

	"repro/internal/matrix"
	"repro/internal/path"
	"repro/internal/progs"
	"repro/internal/sil/parser"
	"repro/internal/sil/types"
)

func analyzeMode(t *testing.T, src string, roots []string, maxContexts int) *Info {
	t.Helper()
	prog, err := progs.Compile(src)
	if err != nil {
		t.Fatal(err)
	}
	info, err := Analyze(context.Background(), prog, Options{ExternalRoots: roots, MaxContexts: maxContexts})
	if err != nil {
		t.Fatal(err)
	}
	return info
}

func mainExit(t *testing.T, info *Info) *matrix.Matrix {
	t.Helper()
	main := info.Prog.Proc("main")
	m := info.After[main.Body.Stmts[len(main.Body.Stmts)-1]]
	if m == nil {
		t.Fatal("no matrix at main exit")
	}
	return m
}

// TestCtxPairContextPrecision pins the acceptance criterion: on the
// ctxpair corpus program, context-sensitive mode drops the possible paths
// between the fresh pair that merged mode re-imports from the aliased-
// roots call — a strictly more precise result.
func TestCtxPairContextPrecision(t *testing.T) {
	roots := []string{"ra", "rb"}
	merged := mainExit(t, analyzeMode(t, progs.CtxPair, roots, -1))
	ctx := mainExit(t, analyzeMode(t, progs.CtxPair, roots, 0))
	// Sanity: the merged summary really does pollute the fresh pair —
	// otherwise this test would pass vacuously.
	if merged.Get("x", "y").IsEmpty() && merged.Get("y", "x").IsEmpty() {
		t.Fatalf("merged mode should relate x and y spuriously; got p[x,y]=%s p[y,x]=%s",
			merged.Get("x", "y"), merged.Get("y", "x"))
	}
	if !ctx.Get("x", "y").IsEmpty() || !ctx.Get("y", "x").IsEmpty() {
		t.Errorf("context-sensitive mode must keep the fresh pair unrelated: p[x,y]=%s p[y,x]=%s",
			ctx.Get("x", "y"), ctx.Get("y", "x"))
	}
	// bump really is analyzed under two distinct contexts.
	exact, hasMerged, _ := analyzeMode(t, progs.CtxPair, roots, 0).Summaries["bump"].ContextStats()
	if exact < 2 {
		t.Errorf("bump should keep 2 exact contexts, got %d (merged fallback: %v)", exact, hasMerged)
	}
}

// leqNil reports a ≤ b in the nil-ness precision lattice (MaybeNil top).
func leqNil(a, b matrix.Nilness) bool {
	return a == b || b == matrix.MaybeNil
}

// damageClass folds the maybe/definite split out of a shape verdict,
// leaving only the coverage axis (what damage the estimate admits).
func damageClass(s matrix.Shape) int {
	switch s {
	case matrix.ShapeTree:
		return 0
	case matrix.ShapeMaybeDAG, matrix.ShapeDAG:
		return 1
	default:
		return 2
	}
}

// subsumptionWords enumerates every edge word over l/r up to the given
// length — the bounded universe the entry-coverage check tests against
// (set-level language inclusion has no direct API, and per-path Subsumes
// is too strict: D+? is covered by the union {L+?, R+?, D+L1?, D+R1?}
// without any single member subsuming it).
func subsumptionWords(maxLen int) []string {
	words := []string{""}
	for start, l := 0, 1; l <= maxLen; l++ {
		end := len(words)
		for _, w := range words[start:end] {
			if len(w) == l-1 {
				words = append(words, w+"l", w+"r")
			}
		}
		start = end
	}
	return words[1:]
}

// entryCovered reports that every relationship sharp claims is also
// claimed by wide: S membership, and every concrete edge word up to the
// bound (flags ignored — maybe-vs-definite is a must-claim axis, not
// coverage).
func entryCovered(sharp, wide path.Set, words []string) bool {
	if sharp.HasSame() && !wide.HasSame() {
		return false
	}
	inSet := func(w string, s path.Set) bool {
		wp := wordPath(w)
		for _, p := range s.Paths() {
			if !p.IsSame() && path.MayOverlap(wp, p) {
				return true
			}
		}
		return false
	}
	for _, w := range words {
		if inSet(w, sharp) && !inSet(w, wide) {
			return false
		}
	}
	return true
}

// matrixCovered reports that sharp claims no relationship wide does not.
func matrixCovered(sharp, wide *matrix.Matrix, words []string) (string, bool) {
	for _, h := range sharp.Handles() {
		if !wide.Has(h) {
			return fmt.Sprintf("handle %s missing from merged-mode matrix", h), false
		}
		if !leqNil(sharp.Attr(h).Nil, wide.Attr(h).Nil) {
			return fmt.Sprintf("nilness of %s: %v not ≤ %v", h, sharp.Attr(h).Nil, wide.Attr(h).Nil), false
		}
		for _, g := range sharp.Handles() {
			if !entryCovered(sharp.Get(h, g), wide.Get(h, g), words) {
				return fmt.Sprintf("p[%s,%s]: %s not covered by %s", h, g, sharp.Get(h, g), wide.Get(h, g)), false
			}
		}
	}
	if damageClass(sharp.Shape()) > damageClass(wide.Shape()) {
		return fmt.Sprintf("shape %v exceeds merged-mode %v", sharp.Shape(), wide.Shape()), false
	}
	return "", true
}

// TestModePrecisionSubsumption: across the corpus and a batch of random
// programs, every program-point matrix of context-sensitive mode must be
// covered by the merged-mode matrix — context sensitivity may only drop
// possible relationships, never add them (and the separate soundness suite
// pins that what remains still covers the concrete executions).
func TestModePrecisionSubsumption(t *testing.T) {
	type target struct {
		name, src string
		roots     []string
	}
	var targets []target
	for _, e := range progs.Catalog {
		targets = append(targets, target{e.Name, e.Source, e.Roots})
	}
	for seed := int64(1); seed <= 25; seed++ {
		targets = append(targets, target{fmt.Sprintf("random-%d", seed), progs.RandomProgram(seed), nil})
	}
	words := subsumptionWords(5)
	for _, tgt := range targets {
		tgt := tgt
		t.Run(tgt.name, func(t *testing.T) {
			// One compiled program: the Before/After maps are keyed by
			// statement identity, so both modes must share the AST.
			prog, err := progs.Compile(tgt.src)
			if err != nil {
				t.Fatal(err)
			}
			mergedInfo, err := Analyze(context.Background(), prog, Options{ExternalRoots: tgt.roots, MaxContexts: -1})
			if err != nil {
				t.Fatal(err)
			}
			ctxInfo, err := Analyze(context.Background(), prog, Options{ExternalRoots: tgt.roots, MaxContexts: 0})
			if err != nil {
				t.Fatal(err)
			}
			for s, wide := range mergedInfo.After {
				sharp, ok := ctxInfo.After[s]
				if !ok {
					continue // point unreachable under the sharper analysis
				}
				if msg, ok := matrixCovered(sharp, wide, words); !ok {
					t.Errorf("%s: After matrix not subsumed: %s", tgt.name, msg)
				}
			}
			for s, sharp := range ctxInfo.After {
				if _, ok := mergedInfo.After[s]; !ok {
					t.Errorf("%s: point reachable in ctx mode but not merged mode", tgt.name)
					_ = sharp
				}
			}
		})
	}
}

// TestContextTableOverflowGraceful: with a cap of 1 the second distinct
// context evicts the first into the merged fallback; the analysis still
// converges, stays within merged-mode coverage, and is deterministic.
func TestContextTableOverflowGraceful(t *testing.T) {
	prog, err := progs.Compile(progs.CtxPair)
	if err != nil {
		t.Fatal(err)
	}
	roots := []string{"ra", "rb"}
	run := func() *Info {
		info, err := Analyze(context.Background(), prog, Options{ExternalRoots: roots, MaxContexts: 1, Workers: 1})
		if err != nil {
			t.Fatal(err)
		}
		return info
	}
	info := run()
	_, hasMerged, evictions := info.Summaries["bump"].ContextStats()
	if evictions == 0 || !hasMerged {
		t.Fatalf("cap 1 should evict into the merged fallback (evictions=%d merged=%v)", evictions, hasMerged)
	}
	// Coverage never exceeds merged mode.
	mergedInfo, err := Analyze(context.Background(), prog, Options{ExternalRoots: roots, MaxContexts: -1})
	if err != nil {
		t.Fatal(err)
	}
	words := subsumptionWords(5)
	for s, wide := range mergedInfo.After {
		if sharp, ok := info.After[s]; ok {
			if msg, ok := matrixCovered(sharp, wide, words); !ok {
				t.Errorf("overflowed table lost soundness vs merged mode: %s", msg)
			}
		}
	}
	// Sequential determinism across runs.
	if a, b := fingerprint(t, info), fingerprint(t, run()); a != b {
		t.Errorf("overflowed analysis not deterministic:\n--- run 1\n%s--- run 2\n%s", a, b)
	}
}

// analyzeBasic analyzes a source that is already in basic form, skipping
// normalization — the path that presents literal nil actuals directly.
func analyzeBasic(t *testing.T, src string) *Info {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	if err := types.Check(prog); err != nil {
		t.Fatal(err)
	}
	info, err := Analyze(context.Background(), prog, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return info
}

// TestNilActualBindsDefinitelyNil: f(nil) must bind the formal and h*1 as
// definitely nil with root indegree and no relations — not as an unknown
// handle. The unguarded dereference inside f is then a definite error, not
// a possible-nil warning.
func TestNilActualBindsDefinitelyNil(t *testing.T) {
	src := `
program nilarg
procedure main()
begin
  f(nil)
end;
procedure f(h: handle)
  v: int
begin
  v := h.value
end;
`
	info := analyzeBasic(t, src)
	if !hasDiag(info, "error", "dereference of definitely-nil handle h") {
		t.Errorf("f(nil) must make the dereference a definite error: %v", info.DiagStrings())
	}
	if hasDiag(info, "warn", "possible nil dereference") {
		t.Errorf("nil actual must not degrade to possible-nil: %v", info.DiagStrings())
	}
	ctxs := info.Summaries["f"].Contexts()
	if len(ctxs) == 0 {
		t.Fatal("no context for f")
	}
	ent := ctxs[0].Entry()
	for _, h := range []matrix.Handle{"h", matrix.Symbolic(1)} {
		if got := ent.Attr(h); got != (matrix.Attr{Nil: matrix.DefNil, Indeg: matrix.Root}) {
			t.Errorf("entry attr of %s = %+v, want DefNil/Root", h, got)
		}
	}
	if !ent.Get("h", matrix.Symbolic(1)).IsEmpty() || !ent.Get(matrix.Symbolic(1), "h").IsEmpty() {
		t.Errorf("a nil actual must induce no relations: p[h,h*1]=%s p[h*1,h]=%s",
			ent.Get("h", matrix.Symbolic(1)), ent.Get(matrix.Symbolic(1), "h"))
	}
}

// TestNilActualThroughNormalization: the same program through the full
// pipeline (normalization hoists the nil into a temporary) reaches the
// same definite verdict.
func TestNilActualThroughNormalization(t *testing.T) {
	src := `
program nilarg2
procedure main()
begin
  f(nil)
end;
procedure f(h: handle)
  v: int
begin
  v := h.value
end;
`
	info := analyzeMode(t, src, nil, 0)
	if !hasDiag(info, "error", "dereference of definitely-nil handle h") {
		t.Errorf("normalized f(nil) must still be a definite error: %v", info.DiagStrings())
	}
}

// TestSameActualPassedTwice: f(x, x) takes the actuals[i] == actuals[j]
// diagonal path — the two formals (and h*1, h*2) enter definitely aliased.
func TestSameActualPassedTwice(t *testing.T) {
	src := `
program twice
procedure main()
  x: handle; s: int
begin
  x := new();
  s := sum2(x, x)
end;
function sum2(a, b: handle): int
  s1, s2: int
begin
  if a <> nil then s1 := a.value;
  if b <> nil then s2 := b.value;
  s1 := s1 + s2
end
return (s1);
`
	info := analyzeMode(t, src, nil, 0)
	ctxs := info.Summaries["sum2"].Contexts()
	if len(ctxs) == 0 {
		t.Fatal("no context for sum2")
	}
	ent := ctxs[0].Entry()
	for _, pair := range [][2]matrix.Handle{
		{"a", "b"},
		{matrix.Symbolic(1), matrix.Symbolic(2)},
		{"a", matrix.Symbolic(2)},
	} {
		if !ent.Get(pair[0], pair[1]).HasDefiniteSame() || !ent.Get(pair[1], pair[0]).HasDefiniteSame() {
			t.Errorf("same actual passed twice: p[%s,%s]=%s p[%s,%s]=%s want definite S both ways",
				pair[0], pair[1], ent.Get(pair[0], pair[1]), pair[1], pair[0], ent.Get(pair[1], pair[0]))
		}
	}
}

// TestNonVarRefActuals: a literal nil handle actual mixed with a compound
// int actual is basic and analyzes cleanly.
func TestNonVarRefActuals(t *testing.T) {
	src := `
program nonvar
procedure main()
  x: int
begin
  x := 1;
  p(nil, x + 1)
end;
procedure p(h: handle; n: int)
  v: int
begin
  if h <> nil then v := h.value
end;
`
	info := analyzeBasic(t, src)
	if len(info.Diags) != 0 {
		t.Errorf("guarded nil actual should produce no diagnostics: %v", info.DiagStrings())
	}
	ctxs := info.Summaries["p"].Contexts()
	if len(ctxs) == 0 {
		t.Fatal("no context for p")
	}
	if got := ctxs[0].Entry().Attr("h").Nil; got != matrix.DefNil {
		t.Errorf("nil actual entry nilness = %v, want DefNil", got)
	}
}

// TestStackedRelationsSurviveSpaceReset: the h**k relations of a recursive
// summary must be bit-identical when the same program is re-analyzed in a
// fresh Space epoch (interned IDs and fingerprints all change; the
// canonical rendering must not).
func TestStackedRelationsSurviveSpaceReset(t *testing.T) {
	capture := func() string {
		info := analyzeMode(t, progs.AddAndReverse, nil, 0)
		ent := info.Summaries["add_n"].MergedEntry()
		if ent == nil || !ent.Has(matrix.Stacked(1)) {
			t.Fatalf("add_n's merged entry must carry h**1; got %v", ent)
		}
		if ent.Get(matrix.Stacked(1), "h").IsEmpty() {
			t.Fatal("p[h**1,h] must be non-empty (stacked args are ancestors)")
		}
		return canonicalMatrix(ent)
	}
	before := capture()
	path.DefaultSpace().Reset()
	after := capture()
	if before != after {
		t.Errorf("stacked-handle relations diverged across a Space.Reset epoch:\n--- before\n%s--- after\n%s", before, after)
	}
}
