package analysis

// Table-driven tests for condition refinement on handle-handle
// comparisons (refine.go): nil-ness must propagate across h = g in the
// true branch (a definitely-nil side forces the other nil; a definitely-
// non-nil side forces the other non-nil), and the false branch of h = g
// with one side definitely nil must mark the other non-nil.

import (
	"testing"

	"repro/internal/matrix"
	"repro/internal/path"
	"repro/internal/sil/ast"
)

func refineMatrix(attrs map[matrix.Handle]matrix.Attr, rels map[[2]matrix.Handle]string) *matrix.Matrix {
	m := matrix.New()
	for _, h := range []matrix.Handle{"h", "g", "o"} {
		if a, ok := attrs[h]; ok {
			m.Add(h, a)
		}
	}
	for pair, set := range rels {
		m.Put(pair[0], pair[1], path.MustParseSet(set))
	}
	return m
}

func TestRefineComparisonNilness(t *testing.T) {
	var (
		defNil  = matrix.Attr{Nil: matrix.DefNil, Indeg: matrix.Root}
		nonNil  = matrix.Attr{Nil: matrix.NonNil, Indeg: matrix.UnknownDeg}
		mayNil  = matrix.Attr{Nil: matrix.MaybeNil, Indeg: matrix.Attached}
		hg      = [2]matrix.Handle{"h", "g"}
		gh      = [2]matrix.Handle{"g", "h"}
		og      = [2]matrix.Handle{"o", "g"}
		refineC = func(m *matrix.Matrix, equal bool) *matrix.Matrix {
			return refineComparison(m,
				&ast.VarRef{Name: "h"}, &ast.VarRef{Name: "g"}, equal)
		}
	)
	tests := []struct {
		name  string
		attrs map[matrix.Handle]matrix.Attr
		rels  map[[2]matrix.Handle]string
		equal bool
		check func(t *testing.T, m *matrix.Matrix)
	}{
		{
			name:  "equal/left-nil-forces-right-nil",
			attrs: map[matrix.Handle]matrix.Attr{"h": defNil, "g": mayNil, "o": nonNil},
			rels:  map[[2]matrix.Handle]string{og: "L1?"},
			equal: true,
			check: func(t *testing.T, m *matrix.Matrix) {
				if got := m.Attr("g"); got.Nil != matrix.DefNil || got.Indeg != matrix.Root {
					t.Errorf("g = %+v, want DefNil/Root", got)
				}
				if !m.Get("o", "g").IsEmpty() {
					t.Errorf("a nil handle keeps no relations: p[o,g]=%s", m.Get("o", "g"))
				}
			},
		},
		{
			name:  "equal/right-nil-forces-left-nil",
			attrs: map[matrix.Handle]matrix.Attr{"h": mayNil, "g": defNil},
			equal: true,
			check: func(t *testing.T, m *matrix.Matrix) {
				if got := m.Attr("h").Nil; got != matrix.DefNil {
					t.Errorf("h nilness = %v, want DefNil", got)
				}
			},
		},
		{
			name:  "equal/non-nil-propagates",
			attrs: map[matrix.Handle]matrix.Attr{"h": nonNil, "g": mayNil},
			equal: true,
			check: func(t *testing.T, m *matrix.Matrix) {
				if got := m.Attr("g").Nil; got != matrix.NonNil {
					t.Errorf("g nilness = %v, want NonNil", got)
				}
				if !m.Get("h", "g").HasDefiniteSame() || !m.Get("g", "h").HasDefiniteSame() {
					t.Errorf("equal handles must alias by definite S: %s / %s",
						m.Get("h", "g"), m.Get("g", "h"))
				}
			},
		},
		{
			name:  "equal/both-nil-unchanged",
			attrs: map[matrix.Handle]matrix.Attr{"h": defNil, "g": defNil},
			equal: true,
			check: func(t *testing.T, m *matrix.Matrix) {
				if m.Attr("h").Nil != matrix.DefNil || m.Attr("g").Nil != matrix.DefNil {
					t.Error("both handles stay definitely nil")
				}
				if !m.Get("h", "g").IsEmpty() {
					t.Errorf("no S between two nil handles: %s", m.Get("h", "g"))
				}
			},
		},
		{
			name:  "notequal/left-nil-forces-right-nonnil",
			attrs: map[matrix.Handle]matrix.Attr{"h": defNil, "g": mayNil},
			equal: false,
			check: func(t *testing.T, m *matrix.Matrix) {
				if got := m.Attr("g").Nil; got != matrix.NonNil {
					t.Errorf("g nilness = %v, want NonNil (h <> g with h = nil)", got)
				}
			},
		},
		{
			name:  "notequal/right-nil-forces-left-nonnil",
			attrs: map[matrix.Handle]matrix.Attr{"h": mayNil, "g": defNil},
			equal: false,
			check: func(t *testing.T, m *matrix.Matrix) {
				if got := m.Attr("h").Nil; got != matrix.NonNil {
					t.Errorf("h nilness = %v, want NonNil (h <> g with g = nil)", got)
				}
			},
		},
		{
			name:  "notequal/both-nil-no-refinement",
			attrs: map[matrix.Handle]matrix.Attr{"h": defNil, "g": defNil},
			equal: false,
			check: func(t *testing.T, m *matrix.Matrix) {
				// The branch is dead (nil <> nil is false); refining either
				// side to non-nil would be confusing even if vacuously sound.
				if m.Attr("h").Nil != matrix.DefNil || m.Attr("g").Nil != matrix.DefNil {
					t.Error("dead branch must not invent non-nil facts")
				}
			},
		},
		{
			name:  "notequal/drops-same-members",
			attrs: map[matrix.Handle]matrix.Attr{"h": nonNil, "g": mayNil},
			rels:  map[[2]matrix.Handle]string{hg: "S?, L1?", gh: "S?"},
			equal: false,
			check: func(t *testing.T, m *matrix.Matrix) {
				if m.Get("h", "g").HasSame() || m.Get("g", "h").HasSame() {
					t.Errorf("S members must not survive h <> g: %s / %s",
						m.Get("h", "g"), m.Get("g", "h"))
				}
				if m.Get("h", "g").IsEmpty() {
					t.Errorf("non-S members survive: %s", m.Get("h", "g"))
				}
				if m.Attr("g").Nil != matrix.MaybeNil {
					t.Errorf("no nil-ness fact without a definitely-nil side: %v", m.Attr("g").Nil)
				}
			},
		},
	}
	for _, tc := range tests {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			tc.check(t, refineC(refineMatrix(tc.attrs, tc.rels), tc.equal))
		})
	}
}

// TestRefineNilPropagationEndToEnd drives the refinement through a whole
// program: inside "if g = h" with h freshly assigned nil, reading g.value
// must be a definite nil-dereference error, and in the false branch of
// "if g = nil" chained with "if h = g", h inherits non-nil, suppressing
// the possible-nil warning.
func TestRefineNilPropagationEndToEnd(t *testing.T) {
	src := `
program refprop
procedure main()
  g, h, r: handle; v: int
begin
  r := new();
  g := r.left;
  h := nil;
  if g = h then
    v := g.value
end;
`
	info := analyzeMode(t, src, nil, 0)
	if !hasDiag(info, "error", "dereference of definitely-nil handle g") {
		t.Errorf("g = h with h nil must make g.value a definite error: %v", info.DiagStrings())
	}

	src2 := `
program refprop2
procedure main()
  g, h, r: handle; v: int
begin
  r := new();
  g := r.left;
  h := r.right;
  if g <> nil then
    if h = g then
      v := h.value
end;
`
	info2 := analyzeMode(t, src2, nil, 0)
	if hasDiag(info2, "warn", "possible nil dereference of handle h") {
		t.Errorf("h = g with g non-nil must suppress the possible-nil warning on h: %v", info2.DiagStrings())
	}
}
