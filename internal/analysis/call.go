package analysis

import (
	"strconv"
	"strings"

	"repro/internal/matrix"
	"repro/internal/path"
	"repro/internal/sil/ast"
	"repro/internal/sil/token"
)

// This file implements the interprocedural analysis of §5.2 / Figure 7.
//
// At a call f(a1, …, an), the callee is analyzed against an entry matrix
// over three groups of handles (the paper's grouping for pB):
//
//	formals   — the callee's handle parameters, bound to the actuals;
//	h*i       — symbolic names for the caller's actual argument nodes
//	            (the formals may be reassigned; h*i always names the node
//	            that was passed);
//	h**i      — symbolic names collecting every stacked argument from
//	            outer recursive invocations: the caller's own h*i and h**i
//	            fold into the callee's h**i.
//
// Summaries are per-procedure context tables (context.go): each distinct
// entry matrix gets its own exit, so a call on a fresh tree is not polluted
// by a call on aliased roots (the paper's single pB "summarizes all
// possible relationships … for the recursive calls of add_n" — the merged
// fallback context reproduces exactly that view). Call-site binding is
// demand-driven: a non-recursive call binds an exact context (or a
// shared-exit alias when a converged context's entry covers this one and
// mod-ref proves the body cannot tell them apart), while same-SCC calls
// and evicted-fingerprint redirects bind — and thereby activate — the
// merged fallback; a fallback nobody binds is never analyzed. In fixpoint
// mode the binding resolves against the frozen table (resolveFrozen) and
// the presentation is staged for the barrier; the recording pass and
// Replay resolve read-only (lookupContext). The round-based engine
// (analysis.go) iterates (procedure, context) items until entries, exits
// and mod-ref bits stabilize; mod-ref stays per-procedure, joined over
// contexts.
//
// On return the caller maps the exit matrix back: relations among actuals
// are replaced by the exit's h* relations; when the callee may update
// links, every caller path into an update argument's region is demoted and
// re-covered by D+? (the region rule — callees reach only nodes below
// their arguments, so all structural damage is confined there).

// symIndex parses the position of a symbolic handle ("h*2" → 2, false;
// "h**3" → 3, true).
func symIndex(h matrix.Handle) (idx int, stacked, ok bool) {
	s := string(h)
	if !strings.HasPrefix(s, "h*") {
		return 0, false, false
	}
	s = s[2:]
	if strings.HasPrefix(s, "*") {
		stacked = true
		s = s[1:]
	}
	n, err := strconv.Atoi(s)
	if err != nil || n < 1 {
		return 0, false, false
	}
	return n, stacked, true
}

// call analyzes one call statement or call expression. dst, when non-nil,
// receives a handle-typed function result. Returns nil (bottom) while the
// callee has no computed exit yet (first iterations of recursion).
func (a *analyzer) call(m *matrix.Matrix, name string, args []ast.Expr, dst *matrix.Handle, pos token.Pos) *matrix.Matrix {
	callee := a.eng.prog.Proc(name)
	if callee == nil {
		return m
	}

	// Handle actuals in handle-parameter order. Normalization produces
	// plain names; a literal nil is also basic and binds the formal to no
	// node at all (nilArg), not to an unknown handle.
	hIdx := handleParams(callee)
	actuals := make([]matrix.Handle, len(hIdx))
	nilArg := make([]bool, len(hIdx))
	for k, pi := range hIdx {
		switch v := args[pi].(type) {
		case *ast.VarRef:
			actuals[k] = matrix.Handle(v.Name)
		case *ast.NilLit:
			nilArg[k] = true
		}
	}
	ent := a.buildEntry(m, callee, actuals, nilArg)
	var sum *Summary
	if a.st != nil {
		sum = a.eng.summaryFor(callee)
	} else {
		// Recording pass and Replay run against a quiescent Info that may be
		// shared by concurrent readers: they must not create summaries (the
		// old summaryFor call here mutated Info.Summaries, a data race under
		// concurrent Replay). A missing summary means the fixpoint never
		// analyzed any call to this procedure — the call site is unreachable
		// in the converged approximation, so the point after it is bottom.
		if sum = a.eng.summary(name); sum == nil {
			return nil
		}
	}
	// Same-SCC calls (self or mutual recursion) bind the merged fallback
	// context: recursion is summarized, as in the paper's pB (context.go).
	recursive := a.eng.sameSCC(a.cur.Name, name)
	var ctx *ProcContext
	if a.st != nil {
		// Fixpoint mode: resolve against the frozen table and stage the
		// presentation; the round barrier admits/folds it and re-runs the
		// affected items.
		ctx = sum.resolveFrozen(ent, recursive)
		a.st.entries = append(a.st.entries, stagedEntry{
			callee: name, ent: ent, recursive: recursive, caller: a.curItem,
		})
	} else {
		// Recording pass and Replay: read-only resolution against the
		// converged tables.
		ctx = sum.lookupContext(ent, recursive)
		if ctx != nil && a.onCall != nil {
			a.onCall(item{name, ctx})
		}
	}

	// Propagate mod-ref through the call (snapshot the callee's bits once;
	// they are frozen for the duration of a round). Staged only: outside
	// fixpoint mode the summaries are quiescent and must stay untouched.
	mr := sum.modrefSnapshot()
	if mr.modifiesLinks && a.st != nil {
		a.st.modifiesLinks = true
	}
	for k, pi := range hIdx {
		if actuals[k] == "" {
			continue
		}
		if mr.update[pi] {
			a.markWrite(m, actuals[k], mr.links[pi])
		}
		if mr.attaches[pi] {
			a.markAttach(m, actuals[k])
		}
	}

	var E *matrix.Matrix
	if ctx != nil {
		E = sum.ctxExit(ctx)
	}
	if E == nil {
		return nil // bottom: callee never returns in the current approximation
	}
	a.applyExit(m, E, sum.HandleParamIdx, mr, actuals, dst, callee)
	m.Widen(a.eng.opts.Limits)
	return m
}

// buildEntry constructs the callee entry matrix from the caller's matrix.
func (a *analyzer) buildEntry(m *matrix.Matrix, callee *ast.ProcDecl, actuals []matrix.Handle, nilArg []bool) *matrix.Matrix {
	ent := matrix.NewIn(a.eng.msp)
	ent.ResetShape(m.Shape())
	hIdx := handleParams(callee)
	formals := make([]matrix.Handle, len(hIdx))
	for k, pi := range hIdx {
		formals[k] = matrix.Handle(callee.Params[pi].Name)
	}
	attrOf := func(k int) matrix.Attr {
		if nilArg[k] {
			// A literal nil actual binds the formal (and h*k) to no node:
			// definitely nil with root indegree and no relations — not to
			// an unknown handle, which would drown the callee in
			// possible-nil, unknown-indegree noise.
			return matrix.Attr{Nil: matrix.DefNil, Indeg: matrix.Root}
		}
		if actuals[k] == "" || !m.Has(actuals[k]) {
			return matrix.Attr{Nil: matrix.MaybeNil, Indeg: matrix.UnknownDeg}
		}
		return m.Attr(actuals[k])
	}
	// Formals and h* handles.
	for k := range hIdx {
		at := attrOf(k)
		ent.Add(formals[k], at)
		ent.Add(matrix.Symbolic(k+1), at)
	}
	sameSet := func(at matrix.Attr) path.Set {
		switch at.Nil {
		case matrix.NonNil:
			return path.NewSet(path.Same())
		case matrix.MaybeNil:
			return path.NewSet(path.SamePossible())
		default:
			return path.EmptySet()
		}
	}
	for k := range hIdx {
		s := sameSet(attrOf(k))
		ent.Put(matrix.Symbolic(k+1), formals[k], s)
		ent.Put(formals[k], matrix.Symbolic(k+1), s)
	}
	// Pairwise relations among actuals (covers an actual passed twice:
	// the caller diagonal supplies S).
	for i := range hIdx {
		for j := range hIdx {
			if i == j || actuals[i] == "" || actuals[j] == "" {
				continue
			}
			rel := m.Get(actuals[i], actuals[j])
			if actuals[i] == actuals[j] {
				rel = sameSet(attrOf(i))
			}
			if rel.IsEmpty() {
				continue
			}
			for _, row := range []matrix.Handle{matrix.Symbolic(i + 1), formals[i]} {
				for _, col := range []matrix.Handle{matrix.Symbolic(j + 1), formals[j]} {
					ent.Put(row, col, rel)
				}
			}
		}
	}
	// Stacked handles: the caller's h*k and h**k fold into the callee's
	// h**k.
	type src struct{ h matrix.Handle }
	stacked := map[int][]src{}
	for _, h := range m.Handles() {
		if idx, _, ok := symIndex(h); ok && idx <= len(hIdx) {
			stacked[idx] = append(stacked[idx], src{h})
		}
	}
	mergeRel := func(sets []path.Set) path.Set {
		if len(sets) == 0 {
			return path.EmptySet()
		}
		out := sets[0]
		for _, s := range sets[1:] {
			out = out.MergeJoin(s)
		}
		return out
	}
	for k, sources := range stacked {
		hh := matrix.Stacked(k)
		at := matrix.Attr{Nil: matrix.MaybeNil, Indeg: matrix.UnknownDeg}
		ent.Add(hh, at)
		// Relations stacked → actuals (and the reverse).
		for j := range hIdx {
			if actuals[j] == "" {
				continue
			}
			var down, up []path.Set
			for _, s := range sources {
				down = append(down, m.Get(s.h, actuals[j]))
				up = append(up, m.Get(actuals[j], s.h))
			}
			d, u := mergeRel(down), mergeRel(up)
			for _, col := range []matrix.Handle{matrix.Symbolic(j + 1), formals[j]} {
				if !d.IsEmpty() {
					ent.Put(hh, col, d)
				}
				if !u.IsEmpty() {
					ent.Put(col, hh, u)
				}
			}
		}
	}
	// Relations among stacked handles.
	for k1, ss1 := range stacked {
		for k2, ss2 := range stacked {
			if k1 == k2 && len(ss1) < 2 {
				continue
			}
			var rels []path.Set
			for _, s1 := range ss1 {
				for _, s2 := range ss2 {
					if s1.h == s2.h {
						continue
					}
					rels = append(rels, m.Get(s1.h, s2.h))
				}
			}
			if r := mergeRel(rels); !r.IsEmpty() {
				ent.AddPaths(matrix.Stacked(k1), matrix.Stacked(k2), r.AllPossible())
			}
		}
	}
	ent.Widen(a.eng.opts.Limits)
	return ent
}

// applyExit maps the callee's exit matrix back into the caller. E and mr
// are the caller's snapshots of the callee summary's exit and mod-ref
// state; hIdx is the callee's (immutable) handle-parameter index.
func (a *analyzer) applyExit(m *matrix.Matrix, E *matrix.Matrix, hIdx []int, mr modref,
	actuals []matrix.Handle, dst *matrix.Handle, callee *ast.ProcDecl) {
	// Only unrecoverable damage propagates as sticky shape; recoverable
	// sharing travels through the argument attributes below.
	m.SetShape(E.StickyShape())
	if mr.modifiesLinks {
		// Relations among actual-argument nodes: the callee's exit h*
		// relations are authoritative.
		for i := range hIdx {
			for j := range hIdx {
				if i == j || actuals[i] == "" || actuals[j] == "" || actuals[i] == actuals[j] {
					continue
				}
				m.Put(actuals[i], actuals[j], E.Get(matrix.Symbolic(i+1), matrix.Symbolic(j+1)))
			}
			// The argument node's indegree changes only if the callee may
			// attach it somewhere; its nil-ness cannot (call-by-value).
			if actuals[i] == "" || !m.Has(actuals[i]) {
				continue
			}
			if mr.attaches[hIdx[i]] {
				at := m.Attr(actuals[i])
				if hs := matrix.Symbolic(i + 1); E.Has(hs) && E.Attr(hs).Indeg == matrix.Shared {
					at.Indeg = matrix.Shared
				} else {
					at.Indeg = matrix.UnknownDeg
				}
				m.SetAttr(actuals[i], at)
			}
		}
		a.regionHavoc(m, hIdx, mr, actuals)
	}
	if dst != nil {
		a.mapReturn(m, E, actuals, *dst, callee)
	}
}

// regionHavoc applies the region rule after a structure-modifying call:
// every caller handle strictly below an update argument may have been
// rearranged anywhere within the update arguments' regions.
func (a *analyzer) regionHavoc(m *matrix.Matrix, hIdx []int, mr modref, actuals []matrix.Handle) {
	var updates []matrix.Handle
	for k, pi := range hIdx {
		if mr.links[pi] && actuals[k] != "" && m.Has(actuals[k]) {
			updates = append(updates, actuals[k])
		}
	}
	if len(updates) == 0 {
		return
	}
	isActual := map[matrix.Handle]bool{}
	for _, ac := range actuals {
		isActual[ac] = true
	}
	// Affected handles: strictly below some update argument.
	affected := map[matrix.Handle]bool{}
	for _, u := range updates {
		for _, y := range m.Handles() {
			if y == u || isActual[y] {
				continue // actual-pair relations were replaced from the exit
			}
			if below := m.Get(u, y).Filter(func(p path.Path) bool { return !p.IsSame() }); !below.IsEmpty() {
				affected[y] = true
			}
		}
	}
	down := path.NewSet(a.eng.psp.NewPossible(path.Plus(path.DownD)))
	for y := range affected {
		// Old paths to and from y are in doubt.
		for _, x := range m.Handles() {
			if x == y {
				continue
			}
			if e := m.Get(x, y); !e.IsEmpty() {
				m.Put(x, y, e.AllPossible())
			}
			if e := m.Get(y, x); !e.IsEmpty() {
				m.Put(y, x, e.AllPossible())
			}
		}
		// y may now sit anywhere below any update argument.
		for _, u := range updates {
			m.AddPaths(u, y, down)
			for _, x := range m.Handles() {
				if x == u || x == y {
					continue
				}
				if toU := m.Get(x, u); !toU.IsEmpty() {
					m.AddPaths(x, y, toU.ConcatAll(down).AllPossible())
				}
			}
		}
		// Its attachment count is no longer known.
		at := m.Attr(y)
		at.Indeg = matrix.UnknownDeg
		m.SetAttr(y, at)
	}
}

// mapReturn binds a handle-typed function result: the exit matrix relates
// the callee's return variable to the h* argument nodes, which the caller
// translates to its actuals.
func (a *analyzer) mapReturn(m *matrix.Matrix, E *matrix.Matrix, actuals []matrix.Handle, dst matrix.Handle, callee *ast.ProcDecl) {
	ret := matrix.Handle(callee.ReturnVar)
	retAttr := matrix.Attr{Nil: matrix.MaybeNil, Indeg: matrix.UnknownDeg}
	if E.Has(ret) {
		retAttr = E.Attr(ret)
	}
	type pair struct{ down, up path.Set }
	rels := make([]pair, len(actuals))
	for i := range actuals {
		rels[i] = pair{
			down: E.Get(matrix.Symbolic(i+1), ret),
			up:   E.Get(ret, matrix.Symbolic(i+1)),
		}
	}
	m.Remove(dst)
	m.Add(dst, retAttr)
	for i, ai := range actuals {
		if ai == "" || !m.Has(ai) || ai == dst {
			continue
		}
		if !rels[i].down.IsEmpty() {
			m.AddPaths(ai, dst, rels[i].down)
			for _, x := range m.Handles() {
				if x == ai || x == dst {
					continue
				}
				if toA := m.Get(x, ai); !toA.IsEmpty() {
					m.AddPaths(x, dst, toA.ConcatAll(rels[i].down))
				}
			}
		}
		if !rels[i].up.IsEmpty() {
			m.AddPaths(dst, ai, rels[i].up)
			for _, y := range m.Handles() {
				if y == ai || y == dst {
					continue
				}
				if fromA := m.Get(ai, y); !fromA.IsEmpty() {
					m.AddPaths(dst, y, rels[i].up.ConcatAll(fromA))
				}
			}
		}
	}
}
