package analysis

import (
	"fmt"

	"repro/internal/matrix"
	"repro/internal/path"
	"repro/internal/sil/ast"
	"repro/internal/sil/token"
)

// This file implements the analysis functions for the basic handle
// statements of §4. The rules are reconstructed from the paper's Figure 2
// and validated by the figure-replay tests:
//
//	a := nil      kill a; a becomes definitely nil
//	a := new()    kill a; fresh unrelated root node
//	a := b        kill a; copy b's row and column; p[a,b] gains S
//	a := b.f      kill a; ancestors of b extend by f; entries from b to
//	              other handles residuate by f (Figure 2(b,c))
//	a.f := b      structure update: cycle/DAG verification, kill of paths
//	              that may route through a's old f edge, closure of
//	              x→a·f·b→y paths
//	value forms   no shape effect; nil-dereference checks and mod-ref only
func dirOf(f ast.Field) path.Dir {
	if f == ast.Left {
		return path.LeftD
	}
	return path.RightD
}

// fieldName spells a link direction the way SIL programs do.
func fieldName(f path.Dir) string {
	if f == path.LeftD {
		return "left"
	}
	return "right"
}

// markWrite records that the current procedure writes through handle a
// (mod-ref analysis of §5.2): every handle parameter whose original node
// (h*k) may reach a is an update parameter. The flags are only ever
// staged for a round barrier — outside fixpoint mode (the recording pass,
// Replay) this is a no-op: the bits are already maximal at the fixpoint,
// and Replay in particular walks states the fixpoint never did (e.g. one
// branch of a candidate parallel pair in isolation), so applying its
// observations would corrupt the quiescent summaries.
func (a *analyzer) markWrite(m *matrix.Matrix, target matrix.Handle, link bool) {
	sum := a.currentSummary()
	if sum == nil || a.st == nil {
		return
	}
	if link {
		a.st.modifiesLinks = true
	}
	for symIdx, paramPos := range sum.HandleParamIdx {
		h := matrix.Symbolic(symIdx + 1)
		if !m.Has(h) {
			// The summary has not seen a call yet (first pass); fall back
			// to the formal name.
			h = matrix.Handle(a.cur.Params[paramPos].Name)
		}
		if h == target || !m.Get(h, target).IsEmpty() || m.MayAlias(h, target) {
			a.st.modUpdate = a.st.flagParam(a.st.modUpdate, paramPos)
			if link {
				a.st.modLink = a.st.flagParam(a.st.modLink, paramPos)
			}
		}
	}
}

// markAttach records that the current procedure may give the node of some
// handle parameter a new parent (the argument appears as the right side of
// a structure update). Staged only, like markWrite.
func (a *analyzer) markAttach(m *matrix.Matrix, src matrix.Handle) {
	sum := a.currentSummary()
	if sum == nil || a.st == nil {
		return
	}
	for symIdx, paramPos := range sum.HandleParamIdx {
		h := matrix.Symbolic(symIdx + 1)
		if !m.Has(h) {
			h = matrix.Handle(a.cur.Params[paramPos].Name)
		}
		if h == src || m.MayAlias(h, src) {
			a.st.modAttach = a.st.flagParam(a.st.modAttach, paramPos)
		}
	}
}

// checkDeref emits nil-dereference diagnostics for reading or writing
// through h, and refines h to non-nil afterwards (execution only continues
// if the dereference succeeded).
func (a *analyzer) checkDeref(m *matrix.Matrix, h matrix.Handle, pos token.Pos) {
	switch m.Attr(h).Nil {
	case matrix.DefNil:
		a.diag(pos, "error", fmt.Sprintf("dereference of definitely-nil handle %s", h))
	case matrix.MaybeNil:
		a.diag(pos, "warn", fmt.Sprintf("possible nil dereference of handle %s", h))
	}
	if at := m.Attr(h); m.Has(h) && at.Nil != NonNilConst {
		at.Nil = matrix.NonNil
		m.Add(h, at) // re-add restores the S diagonal
	}
}

// NonNilConst aliases matrix.NonNil for readability in checkDeref.
const NonNilConst = matrix.NonNil

// assign dispatches the basic assignment forms.
func (a *analyzer) assign(m *matrix.Matrix, s *ast.Assign) *matrix.Matrix {
	switch lhs := s.Lhs.(type) {
	case *ast.VarLV:
		v := a.cur.Lookup(lhs.Name)
		if v == nil {
			return m
		}
		if v.Type == ast.IntT {
			// x := <int expr> | x := f(args): scalar destination. Reads of
			// a.value are dereferences; calls have their own effects.
			if call, ok := s.Rhs.(*ast.CallExpr); ok {
				return a.call(m, call.Name, call.Args, nil, call.Pos())
			}
			a.scalarReads(m, s.Rhs)
			return m
		}
		return a.assignHandle(m, matrix.Handle(lhs.Name), s.Rhs)
	case *ast.FieldLV:
		base := matrix.Handle(lhs.Base)
		a.checkDeref(m, base, lhs.Pos())
		if lhs.Field == ast.Value {
			a.scalarReads(m, s.Rhs)
			a.markWrite(m, base, false)
			return m
		}
		a.markWrite(m, base, true)
		return a.update(m, base, dirOf(lhs.Field), s.Rhs, lhs.Pos())
	}
	return m
}

// scalarReads walks an int expression and checks value-field dereferences.
func (a *analyzer) scalarReads(m *matrix.Matrix, e ast.Expr) {
	switch e := e.(type) {
	case *ast.FieldRef:
		a.checkDeref(m, matrix.Handle(e.Base), e.Pos())
	case *ast.Unary:
		a.scalarReads(m, e.X)
	case *ast.Binary:
		a.scalarReads(m, e.X)
		a.scalarReads(m, e.Y)
	}
}

// assignHandle implements a := nil | new() | b | b.f | f(args).
func (a *analyzer) assignHandle(m *matrix.Matrix, dst matrix.Handle, rhs ast.Expr) *matrix.Matrix {
	switch rhs := rhs.(type) {
	case *ast.NilLit:
		m.Remove(dst)
		m.Add(dst, matrix.Attr{Nil: matrix.DefNil, Indeg: matrix.Root})
		return m
	case *ast.NewExpr:
		m.Remove(dst)
		m.Add(dst, matrix.Attr{Nil: matrix.NonNil, Indeg: matrix.Root})
		return m
	case *ast.VarRef:
		src := matrix.Handle(rhs.Name)
		if src == dst {
			return m
		}
		attr := m.Attr(src)
		// Copy src's row and column to dst, then relate them by S.
		rels := map[matrix.Handle][2]path.Set{}
		for _, x := range m.Handles() {
			if x == dst {
				continue
			}
			rels[x] = [2]path.Set{m.Get(x, src), m.Get(src, x)}
		}
		m.Remove(dst)
		m.Add(dst, attr)
		for x, rc := range rels {
			if x == src {
				continue
			}
			m.Put(x, dst, rc[0])
			m.Put(dst, x, rc[1])
		}
		if attr.Nil == matrix.NonNil {
			m.Put(dst, src, path.NewSet(path.Same()))
			m.Put(src, dst, path.NewSet(path.Same()))
		} else if attr.Nil == matrix.MaybeNil {
			m.Put(dst, src, path.NewSet(path.SamePossible()))
			m.Put(src, dst, path.NewSet(path.SamePossible()))
		}
		return m
	case *ast.FieldRef:
		return a.loadField(m, dst, matrix.Handle(rhs.Base), dirOf(rhs.Field), rhs.Pos())
	case *ast.CallExpr:
		return a.call(m, rhs.Name, rhs.Args, &dst, rhs.Pos())
	}
	return m
}

// loadField implements a := b.f — the rule of Figure 2. Handles a == b
// (e.g. l := l.left in Figure 3's loop) by reading b's relations first.
func (a *analyzer) loadField(m *matrix.Matrix, dst, src matrix.Handle, f path.Dir, pos token.Pos) *matrix.Matrix {
	a.checkDeref(m, src, pos)
	// Snapshot src's relations before killing dst (dst may equal src).
	type rel struct {
		toSrc, fromSrc path.Set
	}
	rels := map[matrix.Handle]rel{}
	for _, x := range m.Handles() {
		if x == dst {
			continue
		}
		rels[x] = rel{toSrc: m.Get(x, src), fromSrc: m.Get(src, x)}
	}
	m.Remove(dst)
	m.Add(dst, matrix.Attr{Nil: matrix.MaybeNil, Indeg: matrix.Attached})
	for x, r := range rels {
		if x == dst {
			continue
		}
		// Ancestors and aliases of src: x→dst = (x→src)·f. The set may
		// contain S (aliases of src), so the extension names the engine's
		// Space explicitly.
		if !r.toSrc.IsEmpty() {
			m.Put(x, dst, a.eng.psp.ExtendAll(r.toSrc, f))
		}
		// Handles below src: dst→x = residue of (src→x) by f.
		if !r.fromSrc.IsEmpty() {
			res := r.fromSrc.Filter(func(p path.Path) bool { return !p.IsSame() }).ResidueAll(f)
			if !res.IsEmpty() {
				m.Put(dst, x, m.Get(dst, x).Union(res))
				// Aliasing is symmetric: an S (same node) member appears
				// in both cells, as in the paper's Figure 6 matrix.
				for _, p := range res.Paths() {
					if p.IsSame() {
						m.AddPaths(x, dst, path.NewSet(p))
					}
				}
			}
		}
	}
	if dst != src {
		// src→dst is exactly one f edge (Figure 2(b): d := a.right gives
		// a→d = R1, definite).
		m.Put(src, dst, m.Get(src, dst).Union(path.NewSet(a.eng.psp.New(path.Exact(f, 1)))))
	}
	// When dst == src (Figure 3's l := l.left) the old identity dies with
	// the kill; the ancestor extensions above already used the snapshot.
	return m
}

// update implements a.f := b (b a plain handle name or nil): the paper's
// structure-update rule with TREE/DAG verification.
func (a *analyzer) update(m *matrix.Matrix, base matrix.Handle, f path.Dir, rhs ast.Expr, pos token.Pos) *matrix.Matrix {
	// The overwritten edge's definite old target loses a parent. This is
	// what keeps the paper's reverse (§1's node swap) from accumulating
	// spurious permanent DAG verdicts: h.left := r detaches the old left
	// child, so the later h.right := l re-attaches a root, not a shared
	// node.
	for _, y := range m.Handles() {
		for _, p := range m.Get(base, y).Paths() {
			if p.Definite() && p.IsExactEdge(f) {
				at := m.Attr(y)
				switch at.Indeg {
				case matrix.Attached:
					at.Indeg = matrix.Root
				case matrix.Shared:
					at.Indeg = matrix.Attached
				}
				m.SetAttr(y, at)
			}
		}
	}
	// Kill: any path x→y that may route through a's old f edge can no
	// longer be definite.
	a.killThroughEdge(m, base, f)
	nilRHS := false
	var src matrix.Handle
	switch rhs := rhs.(type) {
	case *ast.NilLit:
		nilRHS = true
	case *ast.VarRef:
		src = matrix.Handle(rhs.Name)
		if m.Attr(src).Nil == matrix.DefNil {
			nilRHS = true
		}
	}
	if nilRHS {
		return m
	}

	// Structure verification (§3.1). Cycle: b at or below a.
	srcAttr := m.Attr(src)
	maybeNil := srcAttr.Nil == matrix.MaybeNil
	if toBase := m.Get(src, base); !toBase.IsEmpty() || src == base {
		definite := src == base || toBase.HasDefinite()
		if definite && !maybeNil {
			m.SetShape(matrix.ShapeCyclic)
			a.diag(pos, "error", fmt.Sprintf("%s.%s := %s creates a cycle: %s is a descendant of %s",
				base, fieldName(f), src, base, src))
		} else {
			m.SetShape(matrix.ShapeMaybeCyclic)
			a.diag(pos, "warn", fmt.Sprintf("%s.%s := %s may create a cycle", base, fieldName(f), src))
		}
	}
	// DAG: b may already have a parent. Known sharing lives in the Shared
	// attribute (recoverable when an edge is later overwritten — the
	// temporary DAG of §1's node swap); sharing through a handle of
	// unknown indegree is unrecoverable and goes to the sticky estimate.
	var newIndeg matrix.Indegree
	switch srcAttr.Indeg {
	case matrix.Root:
		newIndeg = matrix.Attached // first parent: still a tree
	case matrix.Attached, matrix.Shared:
		newIndeg = matrix.Shared
		if maybeNil {
			a.diag(pos, "warn", fmt.Sprintf("%s.%s := %s may create a DAG (node may already have a parent)", base, fieldName(f), src))
		} else {
			a.diag(pos, "warn", fmt.Sprintf("%s.%s := %s creates a DAG: node already has a parent", base, fieldName(f), src))
		}
	default:
		newIndeg = matrix.UnknownDeg
		m.SetShape(matrix.ShapeMaybeDAG)
		a.diag(pos, "warn", fmt.Sprintf("%s.%s := %s may create a DAG (unknown indegree)", base, fieldName(f), src))
	}
	// Keep every name of the attached node consistent: definite aliases
	// take the same indegree; possible aliases can no longer be trusted.
	m.SetAttr(src, matrix.Attr{Nil: srcAttr.Nil, Indeg: newIndeg})
	for _, y := range m.Handles() {
		if y == src {
			continue
		}
		to, from := m.Get(src, y), m.Get(y, src)
		at := m.Attr(y)
		switch {
		case to.HasDefiniteSame() || from.HasDefiniteSame():
			at.Indeg = newIndeg
			m.SetAttr(y, at)
		case to.HasSame() || from.HasSame():
			at.Indeg = matrix.UnknownDeg
			m.SetAttr(y, at)
		}
	}
	a.markAttach(m, src)

	// Gen: the new edge and its closure.
	edge := a.eng.psp.New(path.Exact(f, 1))
	if maybeNil {
		edge = edge.AsPossible()
	}
	edgeSet := path.NewSet(edge)

	// Snapshot before mutation.
	toBase := map[matrix.Handle]path.Set{}  // x → base (including aliases via S)
	fromSrc := map[matrix.Handle]path.Set{} // src → y
	for _, x := range m.Handles() {
		if s := m.Get(x, base); !s.IsEmpty() && x != base {
			toBase[x] = s
		}
		if s := m.Get(src, x); !s.IsEmpty() && x != src {
			fromSrc[x] = s
		}
	}

	// base → src gains f.
	m.AddPaths(base, src, edgeSet)
	// Ancestors/aliases of base reach src: x→src ∪= (x→base)·f.
	for x, s := range toBase {
		m.AddPaths(x, src, s.ConcatAll(edgeSet))
	}
	// base reaches what src reaches: base→y ∪= f·(src→y).
	for y, s := range fromSrc {
		if y == base {
			continue
		}
		m.AddPaths(base, y, edgeSet.ConcatAll(s))
	}
	// Full closure: x→y ∪= (x→base)·f·(src→y).
	for x, xs := range toBase {
		for y, ys := range fromSrc {
			if x == y || y == base {
				continue
			}
			m.AddPaths(x, y, xs.ConcatAll(edgeSet).ConcatAll(ys))
		}
	}
	m.Widen(a.eng.opts.Limits)
	return m
}

// killThroughEdge demotes every path that may pass through the f edge out
// of the node named by base: the edge is being overwritten, so such paths
// may no longer exist.
func (a *analyzer) killThroughEdge(m *matrix.Matrix, base matrix.Handle, f path.Dir) {
	for _, x := range m.Handles() {
		// Paths from x to base's node (S for x == base or aliases).
		var prefixes []path.Path
		if x == base {
			prefixes = append(prefixes, path.Same())
		}
		for _, p := range m.Get(x, base).Paths() {
			prefixes = append(prefixes, p)
		}
		if len(prefixes) == 0 {
			continue
		}
		for _, y := range m.Handles() {
			if y == base && x == base {
				continue
			}
			entry := m.Get(x, y)
			if entry.IsEmpty() {
				continue
			}
			demoted := entry.Demote(func(q path.Path) bool {
				if q.IsSame() {
					return false
				}
				for _, pre := range prefixes {
					if a.eng.psp.MayRouteThrough(q, pre, f) {
						return true
					}
				}
				return false
			})
			m.Put(x, y, demoted)
		}
	}
}
