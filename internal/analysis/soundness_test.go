package analysis

// Whole-analysis soundness property test: for random programs, the path
// matrix at main's exit must cover every concrete relationship among
// main's handles — if node(y) is reachable from node(x) by an edge word
// w, then p[x,y] contains a path expression denoting w; if x and y name
// the same node, p[x,y] contains S. This is the defining invariant of §4
// ("the path matrix ... is guaranteed to contain all possible
// relationships among handles").

import (
	"context"

	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro/internal/heap"
	"repro/internal/interp"
	"repro/internal/matrix"
	"repro/internal/path"
	"repro/internal/progs"
	"repro/internal/sil/ast"
)

// concreteWords enumerates all edge words (over 'l'/'r') from node a to
// node b up to maxLen, on the given heap. Cycles are cut by the length
// bound.
func concreteWords(h *heap.Heap, a, b heap.NodeID, maxLen int) []string {
	var out []string
	var walk func(cur heap.NodeID, w string)
	walk = func(cur heap.NodeID, w string) {
		if cur.IsNil() || len(w) > maxLen {
			return
		}
		if cur == b && len(w) > 0 {
			out = append(out, w)
		}
		l, _ := h.Link(cur, heap.Left)
		r, _ := h.Link(cur, heap.Right)
		walk(l, w+"l")
		walk(r, w+"r")
	}
	walk(a, "")
	return out
}

// wordPath converts a concrete edge word into an exact path expression.
func wordPath(w string) path.Path {
	segs := make([]path.Seg, 0, len(w))
	for i := 0; i < len(w); i++ {
		d := path.LeftD
		if w[i] == 'r' {
			d = path.RightD
		}
		segs = append(segs, path.Exact(d, 1))
	}
	return path.New(segs...)
}

func coveredBy(entry path.Set, w string) bool {
	wp := wordPath(w)
	for _, p := range entry.Paths() {
		if path.MayOverlap(wp, p) {
			return true
		}
	}
	return false
}

func TestAnalysisCoversConcreteRelationships(t *testing.T) {
	// Every summary mode must cover the concrete executions: the default
	// context-sensitive table, the merged (context-insensitive) mode, and
	// a cap-1 table, which forces the eviction/redirect machinery (every
	// second distinct context evicts the first into the fallback) on every
	// multi-context random program. The scheduled soundness workflow runs
	// the cap-1 shard in a job of its own (and sets SIL_SKIP_CAP1 in the
	// main job so the budget is not spent twice); per-PR runs keep all
	// three modes inline.
	for _, mode := range []struct {
		name        string
		maxContexts int
	}{{"ctx", 0}, {"merged", -1}, {"ctx-cap1", 1}} {
		mode := mode
		t.Run(mode.name, func(t *testing.T) {
			if mode.maxContexts == 1 && os.Getenv("SIL_SKIP_CAP1") != "" {
				t.Skip("cap-1 shard runs in its own scheduled job")
			}
			coverSoundness(t, mode.maxContexts)
		})
	}
}

// dumpFailureSeed writes the failing random program to SIL_FAILURE_DIR (if
// set), so CI can upload the reproducing seeds as artifacts.
func dumpFailureSeed(t *testing.T, seed int64, src string) {
	dir := os.Getenv("SIL_FAILURE_DIR")
	if dir == "" {
		return
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Logf("seed dump: %v", err)
		return
	}
	name := filepath.Join(dir, fmt.Sprintf("%s-seed-%d.sil", strings.ReplaceAll(t.Name(), "/", "_"), seed))
	if err := os.WriteFile(name, []byte(src), 0o644); err != nil {
		t.Logf("seed dump: %v", err)
	}
}

func coverSoundness(t *testing.T, maxContexts int) {
	// The scheduled CI soundness job widens the random-program budget via
	// SIL_QUICK_SCALE; per-PR runs keep the fast default.
	trials := 250
	if v, err := strconv.Atoi(os.Getenv("SIL_QUICK_SCALE")); err == nil && v > 0 {
		trials *= v
	}
	const maxWordLen = 6
	checked := 0
	for seed := int64(0); seed < int64(trials); seed++ {
		src := progs.RandomProgram(seed)
		dumped := false
		fail := func(format string, args ...any) {
			t.Helper()
			t.Errorf(format, args...)
			if !dumped {
				dumped = true
				dumpFailureSeed(t, seed, src)
			}
		}
		prog, err := progs.Compile(src)
		if err != nil {
			t.Fatalf("seed %d: compile: %v", seed, err)
		}
		info, err := Analyze(context.Background(), prog, Options{MaxContexts: maxContexts})
		if err != nil {
			t.Fatalf("seed %d: analyze: %v", seed, err)
		}
		res, err := interp.Run(prog, interp.Config{MaxSteps: 300_000}, nil)
		if err != nil {
			continue // non-terminating random structure; skip
		}
		main := prog.Proc("main")
		last := main.Body.Stmts[len(main.Body.Stmts)-1]
		m := info.After[last]
		if m == nil {
			t.Fatalf("seed %d: no exit matrix", seed)
		}
		checked++
		// Collect main's handle bindings.
		type bind struct {
			name string
			node heap.NodeID
		}
		var binds []bind
		for _, v := range main.Locals {
			if v.Type != ast.HandleT {
				continue
			}
			val := res.Env[v.Name]
			if !val.IsHandle || val.Node.IsNil() {
				continue
			}
			binds = append(binds, bind{v.Name, val.Node})
		}
		// Word coverage is the TREE/DAG invariant; once the analyzer has
		// flagged a (possible) cycle, the matrix can no longer enumerate
		// the unbounded cycle words — the paper's own scoping ("the
		// structure can no longer be considered a TREE or a DAG", §4).
		// Aliasing and shape soundness still hold and stay checked.
		cyclic := m.Shape() >= matrix.ShapeMaybeCyclic
		for _, x := range binds {
			for _, y := range binds {
				hx, hy := matrix.Handle(x.name), matrix.Handle(y.name)
				entry := m.Get(hx, hy)
				if x.node == y.node && x.name != y.name {
					if !entry.HasSame() {
						fail("seed %d: %s and %s are the same node but p[%s,%s]=%s lacks S\n%s",
							seed, x.name, y.name, x.name, y.name, entry, src)
					}
				}
				if cyclic {
					continue
				}
				for _, w := range concreteWords(res.Heap, x.node, y.node, maxWordLen) {
					if !coveredBy(entry, w) {
						fail("seed %d: concrete path %q from %s to %s not covered by p[%s,%s]=%s\n%s",
							seed, w, x.name, y.name, x.name, y.name, entry, src)
					}
				}
				// Nil-ness soundness: a handle claimed definitely nil must
				// be nil (checked by construction above: binds only holds
				// non-nil handles).
				if m.Attr(hx).Nil == matrix.DefNil {
					fail("seed %d: %s claimed definitely nil but holds node %d", seed, x.name, x.node)
				}
			}
		}
		// Structure soundness: the concrete shape must be covered by the
		// static estimate at exit (TREE < DAG < CYCLE severity order).
		roots := make([]heap.NodeID, 0, len(binds))
		for _, b := range binds {
			roots = append(roots, b.node)
		}
		concrete := res.Heap.Classify(roots...)
		static := m.Shape()
		ok := true
		switch concrete {
		case heap.Cyclic:
			ok = static >= matrix.ShapeMaybeCyclic
		case heap.DAG:
			ok = static >= matrix.ShapeMaybeDAG
		}
		if !ok {
			fail("seed %d: concrete shape %v but static estimate %v\n%s", seed, concrete, static, src)
		}
	}
	if checked < trials/2 {
		t.Errorf("only %d/%d random programs checkable", checked, trials)
	}
}
