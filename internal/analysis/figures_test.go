package analysis

// Figure-replay tests: each test reproduces one figure of Hendren &
// Nicolau (1989) and asserts the exact matrices (modulo the canonical
// spelling of path expressions: the paper's L^1L+L^2 coalesces to L4+).

import (
	"context"

	"testing"

	"repro/internal/matrix"
	"repro/internal/path"
	"repro/internal/sil/ast"
	"repro/internal/sil/parser"
	"repro/internal/sil/token"
	"repro/internal/sil/types"
)

func newTestAnalyzer() *analyzer {
	info := &Info{
		Before:    map[ast.Stmt]*matrix.Matrix{},
		After:     map[ast.Stmt]*matrix.Matrix{},
		Summaries: map[string]*Summary{},
	}
	return &analyzer{
		eng: newEngine(nil, nil, Options{Space: matrix.DefaultSpace()}.withDefaults(), info),
		cur: &ast.ProcDecl{Name: "test"},
	}
}

func wantEntry(t *testing.T, m *matrix.Matrix, row, col matrix.Handle, want string) {
	t.Helper()
	got := m.Get(row, col).String()
	if got != want {
		t.Errorf("p[%s,%s] = %q, want %q", row, col, got, want)
	}
}

// TestFig2HandleAssignments replays Figure 2: the initial three-handle
// matrix, then d := a.right (2b), then e := d.left (2c).
func TestFig2HandleAssignments(t *testing.T) {
	a := newTestAnalyzer()
	m := matrix.New()
	nonNil := matrix.Attr{Nil: matrix.NonNil, Indeg: matrix.UnknownDeg}
	for _, h := range []matrix.Handle{"a", "b", "c"} {
		m.Add(h, nonNil)
	}
	// Figure 2(a): a→b = L^1L+L^2 (canonically L4+), a→c = R^1D+.
	m.Put("a", "b", path.MustParseSet("L4+"))
	m.Put("a", "c", path.MustParseSet("R1D+"))

	// Figure 2(b): d := a.right.
	m = a.loadField(m, "d", "a", path.RightD, token.Pos{})
	wantEntry(t, m, "a", "d", "R1")
	wantEntry(t, m, "d", "c", "D+") // definite: the R edge surely matched
	wantEntry(t, m, "d", "b", "{}") // b is down the left spine
	wantEntry(t, m, "a", "b", "L4+")
	wantEntry(t, m, "d", "d", "S")

	// Figure 2(c): e := d.left.
	m = a.loadField(m, "e", "d", path.LeftD, token.Pos{})
	wantEntry(t, m, "d", "e", "L1")
	wantEntry(t, m, "a", "e", "R1L1")
	// The paper's highlighted result: e and c may be the same node, or c
	// is one or more edges below e.
	wantEntry(t, m, "e", "c", "S?, D+?")
	wantEntry(t, m, "e", "b", "{}")
	for _, d := range a.eng.info.Diags {
		if d.Level == "error" {
			t.Errorf("unexpected error diagnostic: %v", d)
		}
	}
}

func mustAnalyze(t *testing.T, src string, opts Options) *Info {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := types.Check(prog); err != nil {
		t.Fatalf("check: %v", err)
	}
	types.Normalize(prog)
	info, err := Analyze(context.Background(), prog, opts)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return info
}

// findWhile returns the n-th while statement of the named procedure.
func findWhile(prog *ast.Program, proc string, n int) *ast.While {
	var out *ast.While
	count := 0
	walkStmts(prog.Proc(proc).Body, func(s ast.Stmt) {
		if w, ok := s.(*ast.While); ok {
			if count == n {
				out = w
			}
			count++
		}
	})
	return out
}

// findCall returns the n-th call to callee inside proc.
func findCall(prog *ast.Program, proc, callee string, n int) ast.Stmt {
	var out ast.Stmt
	count := 0
	walkStmts(prog.Proc(proc).Body, func(s ast.Stmt) {
		if c, ok := s.(*ast.CallStmt); ok && c.Name == callee {
			if count == n {
				out = c
			}
			count++
		}
	})
	return out
}

// TestFig3WhileLoopFixpoint replays Figure 3: h := l's chain converges to
// L+ under the iterative approximation. Our loop estimate also retains the
// zero-iteration S? alternative (the paper's p0).
func TestFig3WhileLoopFixpoint(t *testing.T) {
	src := `
program fig3
procedure main()
  h, l: handle
begin
  h := new();
  l := h;
  while l.left <> nil do
    l := l.left
end;
`
	info := mustAnalyze(t, src, Options{})
	w := findWhile(info.Prog, "main", 0)
	if w == nil {
		t.Fatal("no while")
	}
	after := info.After[w]
	if after == nil {
		t.Fatal("no matrix after loop")
	}
	// p+ merged with p0: h→l ∈ {S?, L+?}.
	wantEntry(t, after, "h", "l", "S?, L+?")
	wantEntry(t, after, "l", "h", "S?")
	if after.Shape() != matrix.ShapeTree {
		t.Errorf("shape = %v", after.Shape())
	}
}

// fig7Source is the paper's Figure 7 program with the "... build a tree at
// root ..." comment realized by an explicit builder procedure.
const fig7Source = `
program add_and_reverse

procedure main()
  root, lside, rside: handle; i: int
begin
  root := new();
  build(root, 5);
  lside := root.left;
  rside := root.right;
  { PROGRAM POINT A }
  add_n(lside, 1);
  add_n(rside, -1);
  reverse(root)
end;

procedure build(h: handle; d: int)
  l, r: handle
begin
  if d > 0 then
  begin
    l := new();
    r := new();
    h.left := l;
    h.right := r;
    build(l, d - 1);
    build(r, d - 1)
  end
end;

procedure add_n(h: handle; n: int)
  l, r: handle
begin
  if h <> nil then
  begin
    h.value := h.value + n;
    l := h.left;
    r := h.right;
    { PROGRAM POINT B }
    add_n(l, n);
    add_n(r, n)
  end
end;

procedure reverse(h: handle)
  l, r: handle
begin
  if h <> nil then
  begin
    l := h.left;
    r := h.right;
    { PROGRAM POINT C }
    reverse(l);
    reverse(r);
    h.left := r;
    h.right := l
  end
end;
`

// TestFig7PointA replays the matrix pA: root relates to lside by one left
// edge and to rside by one right edge, and lside/rside are unrelated —
// which licenses running the two add_n calls in parallel (§5.2).
func TestFig7PointA(t *testing.T) {
	info := mustAnalyze(t, fig7Source, Options{})
	callA := findCall(info.Prog, "main", "add_n", 0)
	if callA == nil {
		t.Fatal("no add_n call")
	}
	pA := info.Before[callA]
	if pA == nil {
		t.Fatal("no matrix at point A")
	}
	wantEntry(t, pA, "root", "lside", "L1")
	wantEntry(t, pA, "root", "rside", "R1")
	wantEntry(t, pA, "lside", "rside", "{}")
	wantEntry(t, pA, "rside", "lside", "{}")
	wantEntry(t, pA, "root", "root", "S")
	if pA.Shape() != matrix.ShapeTree {
		t.Errorf("shape at A = %v, want TREE", pA.Shape())
	}
}

// TestFig7PointB replays the matrix pB inside add_n before the recursive
// calls: the three handle groups of the paper (h* for the caller's
// argument, h** for stacked recursive arguments, and the locals h, l, r).
// The crucial entries are pB[l,r] = pB[r,l] = {}, which make the recursive
// calls safe to run in parallel.
func TestFig7PointB(t *testing.T) {
	info := mustAnalyze(t, fig7Source, Options{})
	callB := findCall(info.Prog, "add_n", "add_n", 0)
	if callB == nil {
		t.Fatal("no recursive call")
	}
	pB := info.Before[callB]
	if pB == nil {
		t.Fatal("no matrix at point B")
	}
	// The parallelization-critical entries.
	wantEntry(t, pB, "l", "r", "{}")
	wantEntry(t, pB, "r", "l", "{}")
	// Local structure below the current node.
	wantEntry(t, pB, "h", "l", "L1")
	wantEntry(t, pB, "h", "r", "R1")
	// The caller's argument node h*1: equal to h on the first invocation.
	if !pB.Has(matrix.Symbolic(1)) {
		t.Fatalf("pB lacks h*1; handles: %v", pB.Handles())
	}
	hstar := pB.Get(matrix.Symbolic(1), "h")
	if !hstar.HasSame() {
		t.Errorf("p[h*1,h] = %s should include S", hstar)
	}
	// Stacked arguments h**1 sit at or above h.
	if !pB.Has(matrix.Stacked(1)) {
		t.Fatalf("pB lacks h**1; handles: %v", pB.Handles())
	}
	if down := pB.Get(matrix.Stacked(1), "h"); down.IsEmpty() {
		t.Errorf("p[h**1,h] should be non-empty (stacked args are ancestors), got {}")
	}
	if pB.Shape() != matrix.ShapeTree {
		t.Errorf("shape at B = %v, want TREE", pB.Shape())
	}
}

// TestFig7PointC checks the reverse procedure's recursion point: l and r
// remain unrelated (the parallel recursive calls of Figure 8), and the
// structure is still a TREE before the swap.
func TestFig7PointC(t *testing.T) {
	info := mustAnalyze(t, fig7Source, Options{})
	callC := findCall(info.Prog, "reverse", "reverse", 0)
	if callC == nil {
		t.Fatal("no recursive reverse call")
	}
	pC := info.Before[callC]
	if pC == nil {
		t.Fatal("no matrix at point C")
	}
	wantEntry(t, pC, "l", "r", "{}")
	wantEntry(t, pC, "r", "l", "{}")
	wantEntry(t, pC, "h", "l", "L1")
	wantEntry(t, pC, "h", "r", "R1")
	if pC.Shape() != matrix.ShapeTree {
		t.Errorf("shape at C = %v, want TREE (swap happens after recursion)", pC.Shape())
	}
}

// TestFig7ModRef checks §5.2's read-only/update classification: add_n and
// reverse update through their handle parameter; build does too; and a
// pure reader is classified read-only.
func TestFig7ModRef(t *testing.T) {
	info := mustAnalyze(t, fig7Source, Options{})
	for _, name := range []string{"add_n", "reverse", "build"} {
		s := info.Summaries[name]
		if s == nil {
			t.Fatalf("no summary for %s", name)
		}
		if !s.UpdateParams[0] {
			t.Errorf("%s param 0 should be update", name)
		}
	}
	if !info.Summaries["reverse"].LinkParams[0] {
		t.Error("reverse modifies links through its parameter")
	}
	if info.Summaries["add_n"].LinkParams[0] {
		t.Error("add_n does not modify links")
	}
	if info.Summaries["add_n"].ModifiesLinks {
		t.Error("add_n.ModifiesLinks should be false")
	}
	if !info.Summaries["reverse"].ModifiesLinks {
		t.Error("reverse.ModifiesLinks should be true")
	}
}

// TestReadOnlyClassification: a pure reader is read-only (§5.2's
// refinement), even though it traverses the whole structure.
func TestReadOnlyClassification(t *testing.T) {
	src := `
program reader
procedure main()
  root: handle; total: int
begin
  root := new();
  total := sum(root)
end;
function sum(h: handle): int
  s, a, b: int; l, r: handle
begin
  if h = nil then s := 0
  else
  begin
    l := h.left;
    r := h.right;
    a := sum(l);
    b := sum(r);
    s := h.value + a + b
  end
end
return (s);
`
	info := mustAnalyze(t, src, Options{})
	s := info.Summaries["sum"]
	if s == nil {
		t.Fatal("no summary")
	}
	if !s.ReadOnlyParam(0) {
		t.Error("sum's handle parameter should be read-only")
	}
	if s.ModifiesLinks {
		t.Error("sum modifies no links")
	}
}
