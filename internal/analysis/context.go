package analysis

// Context-sensitive procedure summaries. The paper's §5.2 keeps ONE entry
// matrix per procedure (pB merges "all possible relationships … for the
// recursive calls of add_n"), which over-approximates as soon as a
// procedure is called from dissimilar contexts: a call on a fresh,
// unrelated tree inherits the aliasing of a call on overlapping external
// roots. This file replaces the merged pair with a per-context table —
// each distinct call context, keyed by its entry-matrix fingerprint
// (structural Equal fallback on collision), maps to the exit computed from
// exactly that entry.
//
// The table is bounded by Options.MaxContexts with an LRU-with-merge-
// fallback policy (blind truncation — the old entryMemo clear-on-growth
// hack — discards exactly the hot contexts a high-fan-in fixpoint keeps
// re-presenting; recency keeps them): beyond the cap the least recently
// used context is evicted into a merged widened fallback context whose
// entry joins every context ever presented, so precision degrades
// gracefully to the paper's single-summary behavior instead of failing.
// An evicted fingerprint is remembered and redirected to the fallback
// forever after — re-admitting it would let a >cap working set recreate
// and evict contexts in a cycle and the fixpoint would never drain.
//
// Calls whose caller and callee share a call-graph SCC (self or mutual
// recursion) always bind the merged fallback: inside a recursive cycle the
// stacked-handle relations (h**k) generate an unbounded family of pairwise
// incomparable entries (L1?, R1L1?, L1R1L2?, …), so keying recursion by
// exact entry would enumerate that family instead of converging — the
// fallback joins them exactly the way the paper's pB "summarizes all
// possible relationships … for the recursive calls of add_n". Context
// sensitivity therefore distinguishes how a procedure is REACHED (fresh
// tree vs aliased roots), not its recursion depth.
//
// The merged fallback is otherwise created lazily, on the second distinct
// context: single-context procedures (the common case) pay nothing for the
// table. Once it exists it absorbs every presented entry, which keeps it a
// sound stand-in for any context the procedure has seen — Replay and the
// recording pass fall back to it when an entry has no exact match.

import (
	"sort"

	"repro/internal/matrix"
	"repro/internal/path"
)

// DefaultMaxContexts is the per-procedure context-table cap used when
// Options.MaxContexts is zero.
const DefaultMaxContexts = 16

// mergedMemoCap bounds how many no-op entries the merged fallback's
// fold memo retains (cleared whenever the merged entry grows).
const mergedMemoCap = 64

// ProcContext is one call context of a procedure: an entry matrix over the
// formals and symbolic handles (h*i, h**i) paired with the exit computed
// from exactly that entry. The merged fallback context (IsMerged) is the
// join of every context presented to the procedure — the paper's original
// single-summary view. During the fixpoint every field is guarded by the
// owning Summary's lock; after Analyze returns, contexts are quiescent and
// may be read directly.
type ProcContext struct {
	// entry is immutable for exact contexts; the merged fallback replaces
	// it (with a fresh matrix) as more contexts fold in.
	entry *matrix.Matrix
	// exit is the matrix at procedure exit projected onto the
	// caller-visible handles; nil means bottom (no terminating path
	// analyzed from this entry yet).
	exit *matrix.Matrix
	// merged marks the widened fallback context.
	merged bool
	// seq is the context's creation sequence number within its summary —
	// contexts are only created at round barriers, so seq is deterministic
	// and serves as the canonical work-list tiebreaker.
	seq int
	// dropped marks contexts evicted from the table (or pruned); pending
	// work items for them are discarded.
	dropped bool
}

// Entry returns the context's entry matrix. Callers outside the analysis
// fixpoint (tests, tools) may use it freely once Analyze has returned.
func (c *ProcContext) Entry() *matrix.Matrix { return c.entry }

// Exit returns the context's exit matrix, nil while bottom.
func (c *ProcContext) Exit() *matrix.Matrix { return c.exit }

// IsMerged reports whether this is the merged fallback context.
func (c *ProcContext) IsMerged() bool { return c.merged }

// ctxLookup is the result of binding one call site to a context.
type ctxLookup struct {
	// ctx is the binding for this call site.
	ctx *ProcContext
	// analyze lists contexts that need (re-)analysis: a freshly admitted
	// exact context, and/or the merged fallback when its entry grew.
	analyze []*ProcContext
	// evicted is the exact context this lookup pushed into the fallback,
	// if any; its dependents must be re-enqueued to rebind.
	evicted *ProcContext
}

// contextFor binds a call entry to a context, admitting it into the table
// if it is new. recursive marks a same-SCC call, which always binds the
// merged fallback (see the package comment above). The caller must not
// mutate ent afterwards (call sites build a fresh entry per call, so this
// holds).
func (s *Summary) contextFor(ent *matrix.Matrix, lim path.Limits, recursive bool) ctxLookup {
	s.mu.Lock()
	defer s.mu.Unlock()
	fp := ent.Fingerprint()
	if !recursive {
		// Exact hit: the entry was folded into the fallback (if any) when
		// it was admitted, so nothing else to do.
		for _, c := range s.contexts[fp] {
			if c.entry.Equal(ent) {
				s.touchLocked(c)
				return ctxLookup{ctx: c}
			}
		}
	}
	var lk ctxLookup
	if !recursive && s.maxContexts > 0 && !s.evicted[fp] {
		c := &ProcContext{entry: ent, seq: s.nextSeq()}
		if s.contexts == nil {
			s.contexts = make(map[matrix.Fp][]*ProcContext)
		}
		s.contexts[fp] = append(s.contexts[fp], c)
		s.lru = append(s.lru, c)
		lk.ctx = c
		lk.analyze = append(lk.analyze, c)
		if len(s.lru) > 1 || s.merged != nil {
			// Second distinct context: the fallback starts existing (or
			// keeps absorbing).
			if s.foldMergedLocked(ent, lim) {
				lk.analyze = append(lk.analyze, s.merged)
			}
		}
		if len(s.lru) > s.maxContexts {
			victim := s.lru[0]
			s.lru = s.lru[1:]
			s.dropContextLocked(victim)
			s.evictions++
			lk.evicted = victim
		}
		return lk
	}
	// Recursive call, context sensitivity off, or the fingerprint was
	// evicted: fold into the merged fallback.
	if s.foldMergedLocked(ent, lim) {
		lk.analyze = append(lk.analyze, s.merged)
	}
	lk.ctx = s.merged
	return lk
}

// touchLocked marks an exact context as recently used.
func (s *Summary) touchLocked(c *ProcContext) {
	if c.merged {
		return
	}
	for i, o := range s.lru {
		if o == c {
			s.lru = append(append(s.lru[:i:i], s.lru[i+1:]...), c)
			return
		}
	}
}

// dropContextLocked removes an exact context from the fingerprint buckets
// and remembers its fingerprint as evicted. Its entry is already part of
// the fallback (folded at admission), so eviction is a pure cache drop.
func (s *Summary) dropContextLocked(victim *ProcContext) {
	fp := victim.entry.Fingerprint()
	bucket := s.contexts[fp]
	for i, c := range bucket {
		if c == victim {
			s.contexts[fp] = append(bucket[:i:i], bucket[i+1:]...)
			break
		}
	}
	if len(s.contexts[fp]) == 0 {
		delete(s.contexts, fp)
	}
	if s.evicted == nil {
		s.evicted = make(map[matrix.Fp]bool)
	}
	s.evicted[fp] = true
	victim.dropped = true
}

// foldMergedLocked joins one entry into the merged fallback, creating it
// (seeded with every exact entry admitted so far) on first use. Reports
// whether the fallback's entry grew. Entries already known to be no-ops
// (by fingerprint, with a structural fallback) return immediately: at and
// near the fixpoint every call site re-presents the same context on every
// pass, and the memo turns those passes allocation-free.
func (s *Summary) foldMergedLocked(ent *matrix.Matrix, lim path.Limits) (grew bool) {
	if s.merged == nil {
		seed := ent
		for _, c := range s.lru {
			if c.entry == ent {
				continue
			}
			seed = seed.Merge(c.entry)
		}
		if seed != ent {
			seed.Widen(lim)
		}
		s.merged = &ProcContext{entry: seed, merged: true, seq: s.nextSeq()}
		return true
	}
	fp := ent.Fingerprint()
	for _, seen := range s.mergedMemo[fp] {
		if seen.Equal(ent) {
			return false
		}
	}
	next := s.merged.entry.Merge(ent)
	next.Widen(lim)
	if next.Equal(s.merged.entry) {
		if s.mergedMemoN < mergedMemoCap {
			if s.mergedMemo == nil {
				s.mergedMemo = make(map[matrix.Fp][]*matrix.Matrix)
			}
			s.mergedMemo[fp] = append(s.mergedMemo[fp], ent)
			s.mergedMemoN++
		}
		return false
	}
	s.merged.entry = next
	s.mergedMemo = nil
	s.mergedMemoN = 0
	return true
}

// lookupContext resolves an entry without mutating the table — the
// read-only binding used by the recording pass and Replay, applying the
// same rules as contextFor: recursive calls bind the fallback, others
// match exactly first; for a single-context procedure (no fallback yet)
// that one context stands in.
func (s *Summary) lookupContext(ent *matrix.Matrix, recursive bool) *ProcContext {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !recursive {
		for _, c := range s.contexts[ent.Fingerprint()] {
			if c.entry.Equal(ent) {
				return c
			}
		}
	}
	if s.merged != nil {
		return s.merged
	}
	if len(s.lru) == 1 {
		return s.lru[0]
	}
	return nil
}

// resolveFrozen resolves a call entry against the frozen table during a
// fixpoint round, without mutating anything: an exact match binds it; a
// recursive call or an evicted fingerprint binds the merged fallback; a
// genuinely new entry binds nothing (bottom) until the round barrier
// admits it.
func (s *Summary) resolveFrozen(ent *matrix.Matrix, recursive bool) *ProcContext {
	s.mu.Lock()
	defer s.mu.Unlock()
	fp := ent.Fingerprint()
	if !recursive {
		for _, c := range s.contexts[fp] {
			if c.entry.Equal(ent) {
				return c
			}
		}
		if s.maxContexts > 0 && !s.evicted[fp] {
			return nil // admitted (with a bottom exit) at the barrier
		}
	}
	return s.merged // may be nil: folded in at the barrier
}

// nextSeq issues the next context creation sequence number (caller holds
// s.mu).
func (s *Summary) nextSeq() int {
	s.seqCounter++
	return s.seqCounter
}

// applyModref ORs one item's staged mod-ref flags into the summary,
// reporting whether any bit was news. Called at round barriers.
func (s *Summary) applyModref(st *stagedUpdates) (changed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st.modifiesLinks && !s.ModifiesLinks {
		s.ModifiesLinks = true
		changed = true
	}
	apply := func(dst []bool, flags map[int]bool) {
		for pos := range flags {
			if pos < len(dst) && !dst[pos] {
				dst[pos] = true
				changed = true
			}
		}
	}
	apply(s.UpdateParams, st.modUpdate)
	apply(s.LinkParams, st.modLink)
	apply(s.AttachesParams, st.modAttach)
	return changed
}

// ctxEntry snapshots a context's entry matrix pointer (immutable value).
func (s *Summary) ctxEntry(c *ProcContext) *matrix.Matrix {
	s.mu.Lock()
	defer s.mu.Unlock()
	return c.entry
}

// ctxExit snapshots a context's exit matrix pointer (nil while bottom).
func (s *Summary) ctxExit(c *ProcContext) *matrix.Matrix {
	s.mu.Lock()
	defer s.mu.Unlock()
	return c.exit
}

// updateCtxExit folds a freshly computed exit projection into the context,
// reporting whether the exit changed.
func (s *Summary) updateCtxExit(c *ProcContext, proj *matrix.Matrix, lim path.Limits) (changed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c.exit != nil && c.exit.Equal(proj) {
		return false
	}
	if c.exit != nil {
		next := c.exit.Merge(proj)
		next.Widen(lim)
		if c.exit.Equal(next) {
			return false
		}
		proj = next
	}
	c.exit = proj
	return true
}

// pruneContexts drops exact contexts the converged program does not bind
// (transient fixpoint states); the survivors are exactly what Contexts()
// returns afterwards. The merged fallback always survives: Replay needs
// it as the sound stand-in for entries outside the table.
func (s *Summary) pruneContexts(live map[*ProcContext]bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	kept := s.lru[:0]
	for _, c := range s.lru {
		if live[c] {
			kept = append(kept, c)
		} else {
			s.dropContextLocked(c)
		}
	}
	s.lru = kept
}

// Contexts returns the summary's contexts in a deterministic order: exact
// contexts sorted by entry fingerprint, then the merged fallback (if any).
// After Analyze returns only live exact contexts remain.
func (s *Summary) Contexts() []*ProcContext {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := append([]*ProcContext(nil), s.lru...)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].entry.Fingerprint(), out[j].entry.Fingerprint()
		if a.Hi != b.Hi {
			return a.Hi < b.Hi
		}
		return a.Lo < b.Lo
	})
	if s.merged != nil {
		out = append(out, s.merged)
	}
	return out
}

// MergedEntry returns the context-insensitive entry view: the merged
// fallback's entry, or the single context's entry when no fallback exists
// (what the pre-context-table Summary.Entry field held). Nil for a
// procedure never called.
func (s *Summary) MergedEntry() *matrix.Matrix {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.merged != nil {
		return s.merged.entry
	}
	if len(s.lru) == 1 {
		return s.lru[0].entry
	}
	return nil
}

// MergedExit returns the context-insensitive exit view (nil while bottom),
// symmetric to MergedEntry.
func (s *Summary) MergedExit() *matrix.Matrix {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.merged != nil {
		return s.merged.exit
	}
	if len(s.lru) == 1 {
		return s.lru[0].exit
	}
	return nil
}

// ContextStats reports the table's post-run shape: live exact contexts,
// whether the merged fallback exists, and how many evictions occurred.
func (s *Summary) ContextStats() (exact int, hasMerged bool, evictions int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.lru), s.merged != nil, s.evictions
}

// ContextTableStats sums the per-summary context-table statistics over the
// whole analysis (reporting hook for silbench).
func (in *Info) ContextTableStats() (exact, mergedProcs, evictions int) {
	for _, s := range in.Summaries {
		e, m, ev := s.ContextStats()
		exact += e
		if m {
			mergedProcs++
		}
		evictions += ev
	}
	return exact, mergedProcs, evictions
}
