package analysis

// Context-sensitive procedure summaries. The paper's §5.2 keeps ONE entry
// matrix per procedure (pB merges "all possible relationships … for the
// recursive calls of add_n"), which over-approximates as soon as a
// procedure is called from dissimilar contexts: a call on a fresh,
// unrelated tree inherits the aliasing of a call on overlapping external
// roots. This file replaces the merged pair with a per-context table —
// each distinct call context, keyed by its entry-matrix fingerprint
// (structural Equal fallback on collision), maps to the exit computed from
// exactly that entry.
//
// The table is bounded by Options.MaxContexts with an LRU-with-merge-
// fallback policy (blind truncation — the old entryMemo clear-on-growth
// hack — discards exactly the hot contexts a high-fan-in fixpoint keeps
// re-presenting; recency keeps them): beyond the cap the least recently
// used context is evicted into a merged widened fallback context whose
// entry joins every context ever presented, so precision degrades
// gracefully to the paper's single-summary behavior instead of failing.
// An evicted fingerprint is remembered and redirected to the fallback
// forever after — re-admitting it would let a >cap working set recreate
// and evict contexts in a cycle and the fixpoint would never drain.
//
// Calls whose caller and callee share a call-graph SCC (self or mutual
// recursion) always bind the merged fallback: inside a recursive cycle the
// stacked-handle relations (h**k) generate an unbounded family of pairwise
// incomparable entries (L1?, R1L1?, L1R1L2?, …), so keying recursion by
// exact entry would enumerate that family instead of converging — the
// fallback joins them exactly the way the paper's pB "summarizes all
// possible relationships … for the recursive calls of add_n". Context
// sensitivity therefore distinguishes how a procedure is REACHED (fresh
// tree vs aliased roots), not its recursion depth.
//
// The merged fallback is lazy twice over. Its ENTRY is created (and keeps
// absorbing every presented entry) from the second distinct context on,
// which keeps it a sound stand-in for any context the procedure has seen —
// Replay and the recording pass fall back to it when an entry has no exact
// match. Its ANALYSIS, by contrast, is demand-driven: the fallback is not
// enqueued as fixpoint work until a consumer appears — a same-SCC call
// binds it, an eviction (or an evicted fingerprint's re-presentation)
// redirects into it, or, at the latest, the engine's drain barrier
// activates it because a second distinct entry is live in the converged
// table (preserving the Replay stand-in property at a residual cost of a
// few post-convergence passes instead of a full seat in every widening
// round). Single-context procedures — the common case — never analyze a
// fallback at all and pay exactly merged-mode cost.
//
// Orthogonally, converged exits are SHARED between contexts instead of
// re-analyzed when mod-ref proves the body cannot tell them apart: a new
// entry whose every claim is covered by an already-converged context's
// entry (entryCoveredBy — language inclusion per cell, attribute lattice
// order, definite claims preserved) binds that context's exit directly
// when the procedure is read-only (no update/attach parameters, no link
// modifications — so the exit is entry-invariant over the differing
// paths). The binding is an alias, not a context: it is remembered by
// fingerprint, re-resolved on every presentation, and invalidated
// wholesale whenever the mod-ref bits sharpen (the read-only premise was
// provisional; the affected callers re-present and the entry is admitted
// as a real context instead).

import (
	"sort"

	"repro/internal/matrix"
	"repro/internal/path"
)

// DefaultMaxContexts is the per-procedure context-table cap used when
// Options.MaxContexts is zero.
const DefaultMaxContexts = 16

// mergedMemoCap bounds how many no-op entries the merged fallback's
// fold memo retains (cleared whenever the merged entry grows).
const mergedMemoCap = 64

// ProcContext is one call context of a procedure: an entry matrix over the
// formals and symbolic handles (h*i, h**i) paired with the exit computed
// from exactly that entry. The merged fallback context (IsMerged) is the
// join of every context presented to the procedure — the paper's original
// single-summary view. During the fixpoint every field is guarded by the
// owning Summary's lock; after Analyze returns, contexts are quiescent and
// may be read directly.
type ProcContext struct {
	// entry is immutable for exact contexts; the merged fallback replaces
	// it (with a fresh matrix) as more contexts fold in.
	entry *matrix.Matrix
	// exit is the matrix at procedure exit projected onto the
	// caller-visible handles; nil means bottom (no terminating path
	// analyzed from this entry yet).
	exit *matrix.Matrix
	// merged marks the widened fallback context.
	merged bool
	// active reports that the context participates in the fixpoint as a
	// work item. Exact contexts are born active; the merged fallback is
	// born dormant (entry accumulation only) and activated by its first
	// consumer — a same-SCC binding, an eviction redirect, or the engine's
	// drain barrier (see the package comment).
	active bool
	// seq is the context's creation sequence number within its summary —
	// contexts are only created at round barriers, so seq is deterministic
	// and serves as the canonical work-list tiebreaker.
	seq int
	// dropped marks contexts evicted from the table (or pruned); pending
	// work items for them are discarded.
	dropped bool
}

// sharedBinding is one shared-exit alias: a presented entry that was bound
// to an already-converged context's exit instead of being admitted (and
// analyzed) as a context of its own.
type sharedBinding struct {
	ent   *matrix.Matrix
	donor *ProcContext
}

// Entry returns the context's entry matrix. Callers outside the analysis
// fixpoint (tests, tools) may use it freely once Analyze has returned.
func (c *ProcContext) Entry() *matrix.Matrix { return c.entry }

// Exit returns the context's exit matrix, nil while bottom.
func (c *ProcContext) Exit() *matrix.Matrix { return c.exit }

// IsMerged reports whether this is the merged fallback context.
func (c *ProcContext) IsMerged() bool { return c.merged }

// ctxLookup is the result of binding one call site to a context.
type ctxLookup struct {
	// ctx is the binding for this call site.
	ctx *ProcContext
	// analyze lists contexts that need (re-)analysis: a freshly admitted
	// exact context, and/or the merged fallback when it is active and its
	// entry grew (or it was just activated).
	analyze []*ProcContext
	// evicted is the exact context this lookup pushed into the fallback,
	// if any; its dependents must be re-enqueued to rebind.
	evicted *ProcContext
	// sharedNew reports that this lookup created a fresh shared-exit
	// alias: the presenting caller resolved bottom in-round and must
	// re-run to pick up the donor's exit.
	sharedNew bool
}

// contextFor binds a call entry to a context, admitting it into the table
// if it is new. recursive marks a same-SCC call, which always binds the
// merged fallback (see the package comment above); presenterExact marks a
// recursive presentation staged by an EXACT context's body. Such a
// presentation binds and activates the fallback but does not fold its
// entry (once the fallback exists): the fallback's own body — analyzed
// from an entry that covers every exact entry — re-presents a covering
// entry at the same call sites, so folding the exact body's sharper
// spelling too only bloats the fallback entry with set members the
// widening cannot collapse (they are covered by unions, not by single
// paths) and makes every fallback pass pay for precision the fallback
// exists to forget. The caller must not mutate ent afterwards (call sites
// build a fresh entry per call, so this holds). Called only at round
// barriers.
func (s *Summary) contextFor(ent *matrix.Matrix, lim path.Limits, recursive, presenterExact bool) ctxLookup {
	s.mu.Lock()
	defer s.mu.Unlock()
	fp := ent.Fingerprint()
	if !recursive {
		// Exact hit: the entry was folded into the fallback (if any) when
		// it was admitted, so nothing else to do.
		for _, c := range s.contexts[fp] {
			if c.entry.Equal(ent) {
				s.touchLocked(c)
				return ctxLookup{ctx: c}
			}
		}
		// Alias hit: the entry already shares a converged donor's exit.
		for _, sb := range s.shared[fp] {
			if sb.ent.Equal(ent) {
				s.touchLocked(sb.donor)
				return ctxLookup{ctx: sb.donor}
			}
		}
	}
	var lk ctxLookup
	if !recursive && s.maxContexts > 0 && !s.evicted[fp] {
		// Entry-invariant exit sharing: a read-only procedure cannot tell
		// this entry apart from a converged context that covers it — bind
		// that context's exit instead of admitting (and analyzing) a new
		// context.
		if donor := s.shareDonorLocked(ent); donor != nil {
			if s.shared == nil {
				s.shared = make(map[matrix.Fp][]sharedBinding)
			}
			s.shared[fp] = append(s.shared[fp], sharedBinding{ent: ent, donor: donor})
			s.exitsShared++
			s.touchLocked(donor)
			return ctxLookup{ctx: donor, sharedNew: true}
		}
		c := &ProcContext{entry: ent, active: true, seq: s.nextSeq()}
		if s.contexts == nil {
			s.contexts = make(map[matrix.Fp][]*ProcContext)
		}
		s.contexts[fp] = append(s.contexts[fp], c)
		s.lru = append(s.lru, c)
		lk.ctx = c
		lk.analyze = append(lk.analyze, c)
		if len(s.lru) > 1 || s.merged != nil {
			// Second distinct context: the fallback entry starts existing
			// (or keeps absorbing) — but stays dormant until a consumer
			// activates it.
			grew := s.foldMergedLocked(ent, lim)
			if s.merged.active && grew {
				lk.analyze = append(lk.analyze, s.merged)
			}
		}
		if len(s.lru) > s.maxContexts {
			victim := s.lru[0]
			s.lru = s.lru[1:]
			s.dropContextLocked(victim)
			s.evictions++
			lk.evicted = victim
			// The eviction redirects future presentations of the victim's
			// fingerprint into the fallback: that is a consumer.
			if s.activateFallbackLocked() {
				lk.analyze = append(lk.analyze, s.merged)
			}
		}
		return lk
	}
	// Recursive call, context sensitivity off, or the fingerprint was
	// evicted: fold into the merged fallback — and since this presentation
	// BINDS the fallback, it is a consumer and activates it. A recursive
	// presentation from an exact body skips the fold (see above) unless it
	// has to create a fallback for a procedure with no exact context of
	// its own (mutual recursion entered sideways), where nothing else
	// would seed the first analysis with a real entry.
	grew := false
	if !recursive || !presenterExact || (s.merged == nil && len(s.lru) == 0) {
		grew = s.foldMergedLocked(ent, lim)
	} else if s.merged == nil {
		// Create the fallback seeded from the exact entries alone; the
		// fallback body's own presentations (which cover this one — they
		// are computed from an entry that joins every exact entry) grow it
		// from there, exactly as in merged mode.
		grew = s.seedMergedLocked(lim)
	}
	newly := s.activateFallbackLocked()
	if grew || newly {
		lk.analyze = append(lk.analyze, s.merged)
	}
	lk.ctx = s.merged
	return lk
}

// activateFallbackLocked marks the merged fallback as live fixpoint work,
// reporting whether this call flipped it (the fallback then needs an
// initial analysis from its accumulated entry). The fallback must already
// exist.
func (s *Summary) activateFallbackLocked() bool {
	if s.merged == nil || s.merged.active {
		return false
	}
	s.merged.active = true
	s.fbActivations++
	return true
}

// activateDormantFallback is the drain-barrier activation: a summary whose
// table holds two or more distinct entries but whose fallback never found
// a consumer during the fixpoint activates now, so the fallback exit is
// materialized as the sound stand-in Replay and the recording pass expect
// from a multi-context procedure. Reports whether the fallback was
// activated (the engine then enqueues it).
func (s *Summary) activateDormantFallback() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.merged == nil || s.merged.active || len(s.lru) < 2 {
		return false
	}
	return s.activateFallbackLocked()
}

// noteFallbackAnalysis counts one fixpoint analysis of the merged
// fallback (reporting hook; single-threaded scheduling path).
func (s *Summary) noteFallbackAnalysis() {
	s.mu.Lock()
	s.fbAnalyses++
	s.mu.Unlock()
}

// readOnlyLocked reports that no context of the procedure has been seen to
// write through (or attach) any parameter nor modify links — the premise
// of entry-invariant exit sharing. The bits are monotone during the
// fixpoint, so a true verdict is provisional; applyModref invalidates the
// aliases if it is later withdrawn.
func (s *Summary) readOnlyLocked() bool {
	if s.ModifiesLinks {
		return false
	}
	for i := range s.UpdateParams {
		if s.UpdateParams[i] || s.AttachesParams[i] {
			return false
		}
	}
	return true
}

// shareDonorLocked returns the converged exact context whose entry covers
// ent (language inclusion per cell, attribute lattice order, definite
// claims preserved — entryCoveredBy), or nil when none qualifies or the
// procedure is not read-only. Candidates are scanned in creation order so
// the donor choice is schedule-independent.
func (s *Summary) shareDonorLocked(ent *matrix.Matrix) *ProcContext {
	if len(s.lru) == 0 || !s.readOnlyLocked() {
		return nil
	}
	cands := append([]*ProcContext(nil), s.lru...)
	sort.Slice(cands, func(i, j int) bool { return cands[i].seq < cands[j].seq })
	for _, c := range cands {
		if c.exit != nil && entryCoveredBy(ent, c.entry) {
			return c
		}
	}
	return nil
}

// entryCoveredBy reports that every claim sub makes is also made by sup —
// sub's concretization is contained in sup's, so sup's exit is a sound
// over-approximation of the exit sub's analysis would compute. Possible
// claims of sub must appear in sup; definite (must) claims of sup must be
// backed by at least as strong a definite claim in sub; attributes follow
// the precision lattice (MaybeNil and UnknownDeg on top).
func entryCoveredBy(sub, sup *matrix.Matrix) bool {
	if sub.StickyShape() > sup.StickyShape() {
		return false
	}
	hs := sub.Handles()
	if len(hs) != len(sup.Handles()) {
		return false
	}
	for _, h := range hs {
		if !sup.Has(h) {
			return false
		}
		as, ap := sub.Attr(h), sup.Attr(h)
		if as.Nil != ap.Nil && ap.Nil != matrix.MaybeNil {
			return false
		}
		if as.Indeg != ap.Indeg && ap.Indeg != matrix.UnknownDeg {
			return false
		}
	}
	for _, a := range hs {
		for _, b := range hs {
			if !setCoveredBy(sub.Get(a, b), sup.Get(a, b)) {
				return false
			}
		}
	}
	return true
}

// setCoveredBy reports cell-level coverage: every path (and S) sub claims
// possible is inside sup's language, and every definite claim of sup is
// backed by a definite claim of sub it subsumes.
func setCoveredBy(sub, sup path.Set) bool {
	for _, p := range sub.Paths() {
		if p.IsSame() {
			if !sup.HasSame() {
				return false
			}
			continue
		}
		covered := false
		for _, q := range sup.Paths() {
			if !q.IsSame() && path.Subsumes(q, p) {
				covered = true
				break
			}
		}
		if !covered {
			return false
		}
	}
	for _, q := range sup.Paths() {
		if q.Possible() {
			continue
		}
		if q.IsSame() {
			if !sub.HasDefiniteSame() {
				return false
			}
			continue
		}
		backed := false
		for _, p := range sub.Paths() {
			if !p.Possible() && !p.IsSame() && path.Subsumes(q, p) {
				backed = true
				break
			}
		}
		if !backed {
			return false
		}
	}
	return true
}

// touchLocked marks an exact context as recently used.
func (s *Summary) touchLocked(c *ProcContext) {
	if c.merged {
		return
	}
	for i, o := range s.lru {
		if o == c {
			s.lru = append(append(s.lru[:i:i], s.lru[i+1:]...), c)
			return
		}
	}
}

// dropContextLocked removes an exact context from the fingerprint buckets
// and remembers its fingerprint as evicted. Its entry is already part of
// the fallback (folded at admission), so eviction is a pure cache drop.
func (s *Summary) dropContextLocked(victim *ProcContext) {
	fp := victim.entry.Fingerprint()
	bucket := s.contexts[fp]
	for i, c := range bucket {
		if c == victim {
			s.contexts[fp] = append(bucket[:i:i], bucket[i+1:]...)
			break
		}
	}
	if len(s.contexts[fp]) == 0 {
		delete(s.contexts, fp)
	}
	if s.evicted == nil {
		s.evicted = make(map[matrix.Fp]bool)
	}
	s.evicted[fp] = true
	victim.dropped = true
	// Shared-exit aliases pointing at the victim dissolve: their
	// fingerprints are NOT marked evicted, so re-presentations are free to
	// re-admit them as contexts of their own (or find a new donor).
	for afp, bucket := range s.shared {
		kept := bucket[:0]
		for _, sb := range bucket {
			if sb.donor != victim {
				kept = append(kept, sb)
			} else {
				s.exitsShared--
			}
		}
		if len(kept) == 0 {
			delete(s.shared, afp)
		} else {
			s.shared[afp] = kept
		}
	}
}

// seedMergedLocked creates the merged fallback from the join of the exact
// entries admitted so far, without folding the presentation that triggered
// it. The caller guarantees at least one exact context exists.
func (s *Summary) seedMergedLocked(lim path.Limits) bool {
	seed := s.lru[0].entry
	for _, c := range s.lru[1:] {
		seed = seed.Merge(c.entry)
	}
	if len(s.lru) > 1 {
		seed.Widen(lim)
	}
	s.merged = &ProcContext{entry: seed, merged: true, seq: s.nextSeq()}
	return true
}

// foldMergedLocked joins one entry into the merged fallback, creating it
// (seeded with every exact entry admitted so far) on first use. Reports
// whether the fallback's entry grew. Entries already known to be no-ops
// (by fingerprint, with a structural fallback) return immediately: at and
// near the fixpoint every call site re-presents the same context on every
// pass, and the memo turns those passes allocation-free.
func (s *Summary) foldMergedLocked(ent *matrix.Matrix, lim path.Limits) (grew bool) {
	if s.merged == nil {
		seed := ent
		for _, c := range s.lru {
			if c.entry == ent { //sillint:allow internedeq identity on purpose: skip folding ent into itself
				continue
			}
			seed = seed.Merge(c.entry)
		}
		// Identity, not content: Merge returns a fresh matrix iff the loop
		// folded anything, and only a fresh (unshared) one may be widened
		// in place.
		if seed != ent { //sillint:allow internedeq
			seed.Widen(lim)
		}
		s.merged = &ProcContext{entry: seed, merged: true, seq: s.nextSeq()}
		return true
	}
	fp := ent.Fingerprint()
	for _, seen := range s.mergedMemo[fp] {
		if seen.Equal(ent) {
			return false
		}
	}
	next := s.merged.entry.Merge(ent)
	next.Widen(lim)
	if next.Equal(s.merged.entry) {
		if s.mergedMemoN < mergedMemoCap {
			if s.mergedMemo == nil {
				s.mergedMemo = make(map[matrix.Fp][]*matrix.Matrix)
			}
			s.mergedMemo[fp] = append(s.mergedMemo[fp], ent)
			s.mergedMemoN++
		}
		return false
	}
	s.merged.entry = next
	s.mergedMemo = nil
	s.mergedMemoN = 0
	return true
}

// lookupContext resolves an entry without mutating the table — the
// read-only binding used by the recording pass and Replay, applying the
// same rules as contextFor: recursive calls bind the fallback, others
// match exactly first; for a single-context procedure (no fallback yet)
// that one context stands in.
func (s *Summary) lookupContext(ent *matrix.Matrix, recursive bool) *ProcContext {
	s.mu.Lock()
	defer s.mu.Unlock()
	if !recursive {
		fp := ent.Fingerprint()
		for _, c := range s.contexts[fp] {
			if c.entry.Equal(ent) {
				return c
			}
		}
		for _, sb := range s.shared[fp] {
			if sb.ent.Equal(ent) {
				return sb.donor
			}
		}
	}
	if s.merged != nil {
		return s.merged
	}
	if len(s.lru) == 1 {
		return s.lru[0]
	}
	return nil
}

// resolveFrozen resolves a call entry against the frozen table during a
// fixpoint round, without mutating anything: an exact match binds it; a
// recursive call or an evicted fingerprint binds the merged fallback; a
// genuinely new entry binds nothing (bottom) until the round barrier
// admits it.
func (s *Summary) resolveFrozen(ent *matrix.Matrix, recursive bool) *ProcContext {
	s.mu.Lock()
	defer s.mu.Unlock()
	fp := ent.Fingerprint()
	if !recursive {
		for _, c := range s.contexts[fp] {
			if c.entry.Equal(ent) {
				return c
			}
		}
		for _, sb := range s.shared[fp] {
			if sb.ent.Equal(ent) {
				return sb.donor
			}
		}
		if s.maxContexts > 0 && !s.evicted[fp] {
			return nil // admitted (or aliased) at the barrier
		}
	}
	return s.merged // may be nil, or dormant with a bottom exit
}

// nextSeq issues the next context creation sequence number (caller holds
// s.mu).
func (s *Summary) nextSeq() int {
	s.seqCounter++
	return s.seqCounter
}

// applyModref ORs one item's staged mod-ref flags into the summary,
// reporting whether any bit was news. Called at round barriers.
func (s *Summary) applyModref(st *stagedUpdates) (changed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if st.modifiesLinks && !s.ModifiesLinks {
		s.ModifiesLinks = true
		changed = true
	}
	apply := func(dst []bool, flags map[int]bool) {
		for pos := range flags {
			if pos < len(dst) && !dst[pos] {
				dst[pos] = true
				changed = true
			}
		}
	}
	apply(s.UpdateParams, st.modUpdate)
	apply(s.LinkParams, st.modLink)
	apply(s.AttachesParams, st.modAttach)
	if changed && len(s.shared) > 0 {
		// The read-only premise behind every shared-exit alias just got
		// weaker: dissolve them. The mod-ref change dirties all callers of
		// this procedure, so the aliased entries are re-presented and
		// re-admitted under the sharpened bits.
		s.shared = nil
		s.exitsShared = 0
	}
	return changed
}

// ctxEntry snapshots a context's entry matrix pointer (immutable value).
func (s *Summary) ctxEntry(c *ProcContext) *matrix.Matrix {
	s.mu.Lock()
	defer s.mu.Unlock()
	return c.entry
}

// ctxExit snapshots a context's exit matrix pointer (nil while bottom).
func (s *Summary) ctxExit(c *ProcContext) *matrix.Matrix {
	s.mu.Lock()
	defer s.mu.Unlock()
	return c.exit
}

// updateCtxExit folds a freshly computed exit projection into the context,
// reporting whether the exit changed.
func (s *Summary) updateCtxExit(c *ProcContext, proj *matrix.Matrix, lim path.Limits) (changed bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if c.exit != nil && c.exit.Equal(proj) {
		return false
	}
	if c.exit != nil {
		next := c.exit.Merge(proj)
		next.Widen(lim)
		if c.exit.Equal(next) {
			return false
		}
		proj = next
	}
	c.exit = proj
	return true
}

// pruneContexts drops exact contexts the converged program does not bind
// (transient fixpoint states); the survivors are exactly what Contexts()
// returns afterwards. The merged fallback always survives: Replay needs
// it as the sound stand-in for entries outside the table.
func (s *Summary) pruneContexts(live map[*ProcContext]bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	kept := s.lru[:0]
	for _, c := range s.lru {
		if live[c] {
			kept = append(kept, c)
		} else {
			s.dropContextLocked(c)
		}
	}
	s.lru = kept
}

// Contexts returns the summary's contexts in a deterministic order: exact
// contexts sorted by the canonical content rendering of their entries,
// then the merged fallback (if any). Content order — not fingerprint
// order — so the sequence is comparable across Spaces, epochs, and
// seeded/cold runs: fingerprints incorporate interned IDs, and a seeded
// run interns the decoded summaries before the program's own matrices,
// which permuted fingerprint order run-to-run (Options.Seeds is a map).
// After Analyze returns only live exact contexts remain.
func (s *Summary) Contexts() []*ProcContext {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := append([]*ProcContext(nil), s.lru...)
	keys := make(map[*ProcContext]string, len(out))
	for _, c := range out {
		keys[c] = canonicalKey(c.entry)
	}
	sort.Slice(out, func(i, j int) bool { return keys[out[i]] < keys[out[j]] })
	if s.merged != nil {
		out = append(out, s.merged)
	}
	return out
}

// MergedEntry returns the context-insensitive entry view: the merged
// fallback's entry, or the single context's entry when no fallback exists
// (what the pre-context-table Summary.Entry field held). Nil for a
// procedure never called.
func (s *Summary) MergedEntry() *matrix.Matrix {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.merged != nil {
		return s.merged.entry
	}
	if len(s.lru) == 1 {
		return s.lru[0].entry
	}
	return nil
}

// MergedExit returns the context-insensitive exit view (nil while bottom),
// symmetric to MergedEntry.
func (s *Summary) MergedExit() *matrix.Matrix {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.merged != nil {
		return s.merged.exit
	}
	if len(s.lru) == 1 {
		return s.lru[0].exit
	}
	return nil
}

// ContextStats reports the table's post-run shape: live exact contexts,
// whether the merged fallback exists, and how many evictions occurred.
func (s *Summary) ContextStats() (exact int, hasMerged bool, evictions int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.lru), s.merged != nil, s.evictions
}

// LazyStats reports the demand-driven side of the table: fallback
// activations (0 or 1), the fixpoint analyses the activated fallback
// consumed, and the live shared-exit aliases.
func (s *Summary) LazyStats() (activations, analyses, shared int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fbActivations, s.fbAnalyses, s.exitsShared
}

// CtxTableStats aggregates the context-table statistics of a whole
// analysis (reporting hook for silbench).
type CtxTableStats struct {
	// Exact counts live exact contexts; MergedProcs counts procedures
	// whose merged fallback exists; Evictions counts cap evictions.
	Exact, MergedProcs, Evictions int
	// FallbacksActivated counts procedures whose fallback found a consumer
	// (recursion, eviction redirect, or the drain barrier);
	// FallbackAnalyses counts the fixpoint analyses those fallbacks
	// consumed; ExitsShared counts live shared-exit aliases.
	FallbacksActivated, FallbackAnalyses, ExitsShared int
}

// ContextTableStats sums the per-summary context-table statistics over the
// whole analysis.
func (in *Info) ContextTableStats() CtxTableStats {
	var t CtxTableStats
	for _, s := range in.Summaries {
		e, m, ev := s.ContextStats()
		t.Exact += e
		if m {
			t.MergedProcs++
		}
		t.Evictions += ev
		act, ana, sh := s.LazyStats()
		t.FallbacksActivated += act
		t.FallbackAnalyses += ana
		t.ExitsShared += sh
	}
	return t
}
