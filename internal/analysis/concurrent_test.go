package analysis

// Tests for the concurrent worklist fixpoint: the analysis output —
// diagnostics, shapes, summaries, mod-ref bits — must be identical no
// matter how many workers drain the worklist, and whole Analyze runs must
// be safe to launch in parallel (shared intern/memo tables; run with
// -race).

import (
	"context"

	"fmt"
	"sort"
	"sync"
	"testing"

	"repro/internal/progs"
)

// fingerprint reduces an Info to a deterministic string covering every
// output the rest of the pipeline consumes, including every live context
// of every summary (Contexts() orders them by the canonical content
// rendering of their entries, which is schedule-independent).
func fingerprint(t *testing.T, info *Info) string {
	out := fmt.Sprintf("shape=%s exit=%s\n", info.Shape(), info.ExitShape())
	for _, d := range info.DiagStrings() {
		out += "diag " + d + "\n"
	}
	for _, name := range sortedSummaryNames(info) {
		s := info.Summaries[name]
		out += fmt.Sprintf("proc %s mod=%v upd=%v link=%v attach=%v\n",
			name, s.ModifiesLinks, s.UpdateParams, s.LinkParams, s.AttachesParams)
		for _, c := range s.Contexts() {
			tag := "ctx"
			if c.IsMerged() {
				tag = "merged-ctx"
			}
			out += tag + " entry " + c.Entry().Fingerprint().String() + "\n"
			if c.Exit() != nil {
				out += tag + " exit " + c.Exit().Fingerprint().String() + "\n"
			} else {
				out += tag + " exit bottom\n"
			}
		}
	}
	return out
}

func sortedSummaryNames(info *Info) []string {
	names := make([]string, 0, len(info.Summaries))
	for n := range info.Summaries {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func analyzeWith(t *testing.T, src string, roots []string, workers, maxContexts int) string {
	t.Helper()
	prog, err := progs.Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	info, err := Analyze(context.Background(), prog, Options{Workers: workers, ExternalRoots: roots, MaxContexts: maxContexts})
	if err != nil {
		t.Fatalf("analyze (workers=%d): %v", workers, err)
	}
	return fingerprint(t, info)
}

// TestConcurrentFixpointEquivalence analyzes the whole corpus — plus a
// batch of random programs — with one worker and with many, in both
// summary modes (context-sensitive and merged), and requires bit-identical
// results.
func TestConcurrentFixpointEquivalence(t *testing.T) {
	type target struct {
		name, src string
		roots     []string
	}
	var targets []target
	for _, e := range progs.Catalog {
		targets = append(targets, target{e.Name, e.Source, e.Roots})
	}
	for seed := int64(1); seed <= 25; seed++ {
		targets = append(targets, target{
			fmt.Sprintf("random-%d", seed), progs.RandomProgram(seed), nil,
		})
	}
	modes := []struct {
		name        string
		maxContexts int
	}{
		{"ctx", 0},     // default context-sensitive summaries
		{"merged", -1}, // single merged summary per procedure
	}
	for _, mode := range modes {
		mode := mode
		for _, tgt := range targets {
			tgt := tgt
			t.Run(mode.name+"/"+tgt.name, func(t *testing.T) {
				ref := analyzeWith(t, tgt.src, tgt.roots, 1, mode.maxContexts)
				for _, workers := range []int{2, 8} {
					if got := analyzeWith(t, tgt.src, tgt.roots, workers, mode.maxContexts); got != ref {
						t.Errorf("workers=%d diverged from sequential:\n--- sequential\n%s--- workers=%d\n%s",
							workers, ref, workers, got)
					}
				}
			})
		}
	}
}

// TestParallelAnalyzeRuns launches independent Analyze runs concurrently:
// they share the process-wide path/handle intern tables and memo caches,
// so this is the cross-run race check.
func TestParallelAnalyzeRuns(t *testing.T) {
	const runs = 8
	var wg sync.WaitGroup
	results := make([]string, runs)
	for i := 0; i < runs; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			prog, err := progs.Compile(progs.AddAndReverse)
			if err != nil {
				t.Errorf("compile: %v", err)
				return
			}
			info, err := Analyze(context.Background(), prog, Options{})
			if err != nil {
				t.Errorf("analyze: %v", err)
				return
			}
			results[i] = fingerprint(t, info)
		}()
	}
	wg.Wait()
	for i := 1; i < runs; i++ {
		if results[i] != results[0] {
			t.Errorf("run %d diverged from run 0:\n%s\nvs\n%s", i, results[i], results[0])
		}
	}
}
