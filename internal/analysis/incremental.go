package analysis

// Incremental analysis: per-procedure summary export and seeding.
//
// A converged context table is a pure function of the procedure's own
// transfer function — its body plus everything it can reach through
// calls — and of the entries its callers present. The first part is the
// summary-store key (the caller hashes body + reachable-callee bodies
// into a cohort fingerprint, internal/service); the second part cannot
// be keyed, so seeding is a VALIDATED HINT, not a contract: Analyze runs
// the normal round-based fixpoint from the seeded tables, and afterwards
// checks that the converged run confirmed every seed — every imported
// context was re-presented and stayed live, no eviction occurred, the
// merged fallback and the mod-ref bits ended exactly as imported. Any
// deviation means the callers of a seeded procedure present a different
// context set than the run the seeds came from, and the whole analysis
// transparently re-runs cold, so a seeded Analyze returns bit-identical
// results to an unseeded one by construction — warm runs only change how
// much fixpoint work is spent, never what is returned.
//
// Seeding is all-or-nothing per reachable closure: the recording pass
// resolves calls read-only (lookupContext), so a seeded procedure that
// converges without re-analysis needs every callee's table populated
// too. importSeeds drops any seed whose closure is not fully available.
//
// Seeds carry no interned IDs (matrix.Encoded renders paths in paper
// notation), so they survive Space epochs, session handoffs, and — in
// principle — processes. Records from a run with cap evictions are not
// exportable: an evicted fingerprint redirect cannot be reproduced from
// content (only the fingerprint was kept), so ExportSeeds skips those
// procedures and the callers fall back to cold analysis for them.

import (
	"fmt"
	"sort"

	"repro/internal/matrix"
	"repro/internal/sil/ast"
)

// CtxSeed is one exported context: an entry matrix and its converged
// exit (nil exit = bottom: no terminating path from this entry).
type CtxSeed struct {
	Entry matrix.Encoded  `json:"entry"`
	Exit  *matrix.Encoded `json:"exit,omitempty"`
}

// SharedSeed is one exported shared-exit alias: a presented entry bound
// to the exit of the Donor-th exported context instead of a context of
// its own.
type SharedSeed struct {
	Entry matrix.Encoded `json:"entry"`
	Donor int            `json:"donor"`
}

// ProcSeed is the exported converged state of one procedure's summary:
// the exact context table, the merged fallback, the shared-exit aliases,
// and the mod-ref classification. It is Space-free and deterministic
// (two exports of the same converged summary are deep-equal).
type ProcSeed struct {
	// Contexts lists the live exact contexts in creation (seq) order.
	Contexts []CtxSeed `json:"contexts,omitempty"`
	// LRU lists indices into Contexts from least to most recently used.
	LRU []int `json:"lru,omitempty"`
	// Merged is the widened fallback context, if one exists.
	Merged *CtxSeed `json:"merged,omitempty"`
	// MergedActive preserves whether the fallback was live fixpoint work.
	MergedActive bool `json:"merged_active,omitempty"`
	// Shared lists the shared-exit aliases in canonical entry order.
	Shared []SharedSeed `json:"shared,omitempty"`

	UpdateParams   []bool `json:"update_params,omitempty"`
	LinkParams     []bool `json:"link_params,omitempty"`
	AttachesParams []bool `json:"attaches_params,omitempty"`
	ModifiesLinks  bool   `json:"modifies_links,omitempty"`
}

// SizeBytes approximates the in-memory footprint for store accounting.
func (ps *ProcSeed) SizeBytes() int {
	n := 64
	size := func(cs *CtxSeed) {
		n += cs.Entry.SizeBytes()
		if cs.Exit != nil {
			n += cs.Exit.SizeBytes()
		}
	}
	for i := range ps.Contexts {
		size(&ps.Contexts[i])
	}
	if ps.Merged != nil {
		size(ps.Merged)
	}
	for i := range ps.Shared {
		n += ps.Shared[i].Entry.SizeBytes() + 8
	}
	n += 8*len(ps.LRU) + 3*len(ps.UpdateParams)
	return n
}

// ExportSeeds extracts the per-procedure summary records of a converged
// analysis. Procedures whose table suffered cap evictions (or that were
// never called) are omitted.
func ExportSeeds(in *Info) map[string]*ProcSeed {
	out := make(map[string]*ProcSeed, len(in.Summaries))
	for name, s := range in.Summaries {
		if ps := s.exportSeed(); ps != nil {
			out[name] = ps
		}
	}
	return out
}

// exportSeed renders one summary's converged state, or nil when the
// summary is not exportable (cap evictions, never called, or an alias
// donor outside the live table).
func (s *Summary) exportSeed() *ProcSeed {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.evictions > 0 {
		return nil
	}
	if len(s.lru) == 0 && s.merged == nil {
		return nil
	}
	ctxs := append([]*ProcContext(nil), s.lru...)
	sort.Slice(ctxs, func(i, j int) bool { return ctxs[i].seq < ctxs[j].seq })
	idx := make(map[*ProcContext]int, len(ctxs))
	ps := &ProcSeed{
		UpdateParams:   append([]bool(nil), s.UpdateParams...),
		LinkParams:     append([]bool(nil), s.LinkParams...),
		AttachesParams: append([]bool(nil), s.AttachesParams...),
		ModifiesLinks:  s.ModifiesLinks,
	}
	for i, c := range ctxs {
		idx[c] = i
		cs := CtxSeed{Entry: c.entry.Encode()}
		if c.exit != nil {
			e := c.exit.Encode()
			cs.Exit = &e
		}
		ps.Contexts = append(ps.Contexts, cs)
	}
	for _, c := range s.lru {
		ps.LRU = append(ps.LRU, idx[c])
	}
	if s.merged != nil {
		cs := CtxSeed{Entry: s.merged.entry.Encode()}
		if s.merged.exit != nil {
			e := s.merged.exit.Encode()
			cs.Exit = &e
		}
		ps.Merged = &cs
		ps.MergedActive = s.merged.active
	}
	type flatAlias struct {
		key   string
		ent   *matrix.Matrix
		donor int
	}
	var aliases []flatAlias
	for _, bucket := range s.shared {
		for _, sb := range bucket {
			di, ok := idx[sb.donor]
			if !ok {
				return nil
			}
			aliases = append(aliases, flatAlias{canonicalKey(sb.ent), sb.ent, di})
		}
	}
	sort.Slice(aliases, func(i, j int) bool { return aliases[i].key < aliases[j].key })
	for _, a := range aliases {
		ps.Shared = append(ps.Shared, SharedSeed{Entry: a.ent.Encode(), Donor: a.donor})
	}
	return ps
}

// decodedSeed is one seed decoded into the run's Space, staged before
// commit (decode of the whole closure must succeed before any summary is
// touched).
type decodedSeed struct {
	name   string
	ctxs   []*ProcContext // creation order, seq unassigned
	lru    []int
	merged *ProcContext
	shared []sharedBinding // donor resolved against ctxs
	seed   *ProcSeed
}

// decodeSeed re-interns one ProcSeed into the run's Space, validating
// shape invariants; it does not touch the summary yet.
func decodeSeed(sp *matrix.Space, name string, ps *ProcSeed, nparams, maxContexts int) (*decodedSeed, error) {
	if len(ps.UpdateParams) != nparams || len(ps.LinkParams) != nparams || len(ps.AttachesParams) != nparams {
		return nil, fmt.Errorf("analysis: seed %s: mod-ref arity mismatch", name)
	}
	if maxContexts > 0 && len(ps.Contexts) > maxContexts {
		return nil, fmt.Errorf("analysis: seed %s: %d contexts over cap %d", name, len(ps.Contexts), maxContexts)
	}
	if maxContexts < 0 && len(ps.Contexts) > 0 {
		return nil, fmt.Errorf("analysis: seed %s: exact contexts in merged mode", name)
	}
	if len(ps.LRU) != len(ps.Contexts) {
		return nil, fmt.Errorf("analysis: seed %s: lru/context length mismatch", name)
	}
	d := &decodedSeed{name: name, seed: ps}
	decodeCtx := func(cs *CtxSeed, merged bool) (*ProcContext, error) {
		ent, err := matrix.DecodeIn(sp, cs.Entry)
		if err != nil {
			return nil, err
		}
		c := &ProcContext{entry: ent, merged: merged, active: !merged}
		if cs.Exit != nil {
			if c.exit, err = matrix.DecodeIn(sp, *cs.Exit); err != nil {
				return nil, err
			}
		}
		return c, nil
	}
	for i := range ps.Contexts {
		c, err := decodeCtx(&ps.Contexts[i], false)
		if err != nil {
			return nil, fmt.Errorf("analysis: seed %s context %d: %w", name, i, err)
		}
		d.ctxs = append(d.ctxs, c)
	}
	seen := make([]bool, len(ps.Contexts))
	for _, li := range ps.LRU {
		if li < 0 || li >= len(ps.Contexts) || seen[li] {
			return nil, fmt.Errorf("analysis: seed %s: bad lru permutation", name)
		}
		seen[li] = true
	}
	d.lru = ps.LRU
	if ps.Merged != nil {
		c, err := decodeCtx(ps.Merged, true)
		if err != nil {
			return nil, fmt.Errorf("analysis: seed %s merged: %w", name, err)
		}
		c.active = ps.MergedActive
		d.merged = c
	}
	for i := range ps.Shared {
		sh := &ps.Shared[i]
		if sh.Donor < 0 || sh.Donor >= len(d.ctxs) {
			return nil, fmt.Errorf("analysis: seed %s alias %d: bad donor", name, i)
		}
		ent, err := matrix.DecodeIn(sp, sh.Entry)
		if err != nil {
			return nil, fmt.Errorf("analysis: seed %s alias %d: %w", name, i, err)
		}
		d.shared = append(d.shared, sharedBinding{ent: ent, donor: d.ctxs[sh.Donor]})
	}
	return d, nil
}

// seededProc is the validation record of one committed seed: the
// pointers and fingerprints the post-run check compares against.
type seededProc struct {
	name      string
	ctxs      []*ProcContext
	hasMerged bool
	mergedFp  matrix.Fp
	sharedN   int
	seed      *ProcSeed
}

// adoptSeed commits a decoded seed into a fresh summary (creation-order
// seq assignment reproduces the exported relative order) and returns the
// validation record.
func (s *Summary) adoptSeed(d *decodedSeed) seededProc {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range d.ctxs {
		c.seq = s.nextSeq()
		fp := c.entry.Fingerprint()
		if s.contexts == nil {
			s.contexts = make(map[matrix.Fp][]*ProcContext)
		}
		s.contexts[fp] = append(s.contexts[fp], c)
	}
	s.lru = s.lru[:0]
	for _, li := range d.lru {
		s.lru = append(s.lru, d.ctxs[li])
	}
	sp := seededProc{name: d.name, ctxs: d.ctxs, sharedN: len(d.shared), seed: d.seed}
	if d.merged != nil {
		d.merged.seq = s.nextSeq()
		s.merged = d.merged
		sp.hasMerged = true
		sp.mergedFp = d.merged.entry.Fingerprint()
	}
	for _, sb := range d.shared {
		if s.shared == nil {
			s.shared = make(map[matrix.Fp][]sharedBinding)
		}
		fp := sb.ent.Fingerprint()
		s.shared[fp] = append(s.shared[fp], sb)
		s.exitsShared++
	}
	copy(s.UpdateParams, d.seed.UpdateParams)
	copy(s.LinkParams, d.seed.LinkParams)
	copy(s.AttachesParams, d.seed.AttachesParams)
	s.ModifiesLinks = d.seed.ModifiesLinks
	return sp
}

// importSeeds decodes and commits the usable subset of opts.Seeds before
// the fixpoint starts: seeds for procedures missing from the program,
// failing to decode, or whose reachable-callee closure is not itself
// fully seeded are dropped (those procedures analyze cold). Returns the
// validation records in sorted name order.
func importSeeds(e *engine, seeds map[string]*ProcSeed) []seededProc {
	if len(seeds) == 0 {
		return nil
	}
	callees := make(map[string][]string, len(e.prog.Decls))
	for _, decl := range e.prog.Decls {
		d := decl
		seen := map[string]bool{}
		walkStmts(d.Body, func(st ast.Stmt) {
			name := ""
			switch st := st.(type) {
			case *ast.CallStmt:
				name = st.Name
			case *ast.Assign:
				if c, ok := st.Rhs.(*ast.CallExpr); ok {
					name = c.Name
				}
			}
			if name != "" && !seen[name] && e.prog.Proc(name) != nil {
				seen[name] = true
				callees[d.Name] = append(callees[d.Name], name)
			}
		})
	}
	decoded := map[string]*decodedSeed{}
	for name, ps := range seeds {
		decl := e.prog.Proc(name)
		if decl == nil {
			continue
		}
		d, err := decodeSeed(e.msp, name, ps, len(decl.Params), e.opts.MaxContexts)
		if err != nil {
			continue
		}
		decoded[name] = d
	}
	// Closure filter: drop any seed calling an unseeded procedure, to a
	// fixpoint (removal is monotone, so the result is order-independent).
	for changed := true; changed; {
		changed = false
		for name := range decoded {
			for _, c := range callees[name] {
				if c != name && decoded[c] == nil {
					delete(decoded, name)
					changed = true
					break
				}
			}
		}
	}
	names := make([]string, 0, len(decoded))
	for name := range decoded {
		names = append(names, name)
	}
	sort.Strings(names)
	out := make([]seededProc, 0, len(names))
	for _, name := range names {
		s := e.summaryFor(e.prog.Proc(name))
		out = append(out, s.adoptSeed(decoded[name]))
	}
	return out
}

// seedsHeld is the post-run validation: the converged run must have
// confirmed every committed seed — all imported contexts re-presented
// and live, no context the seeds did not predict surviving the prune, no
// cap eviction, the merged fallback and mod-ref bits exactly as
// imported, and no alias churn. Any miss means the seeded tables were
// not the fixpoint of THIS program (a caller changed what it presents),
// and the result cannot be trusted to match a cold run bit-for-bit.
func (in *Info) seedsHeld() bool {
	for i := range in.seeded {
		sp := &in.seeded[i]
		s := in.Summaries[sp.name]
		if s == nil || !s.seedHeld(sp) {
			return false
		}
	}
	return true
}

func (s *Summary) seedHeld(sp *seededProc) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.evictions > 0 || len(s.lru) != len(sp.ctxs) {
		return false
	}
	for _, c := range sp.ctxs {
		if c.dropped {
			return false
		}
	}
	if (s.merged != nil) != sp.hasMerged {
		return false
	}
	if s.merged != nil && s.merged.entry.Fingerprint() != sp.mergedFp {
		return false
	}
	n := 0
	for _, bucket := range s.shared {
		n += len(bucket)
	}
	if n != sp.sharedN {
		return false
	}
	if s.ModifiesLinks != sp.seed.ModifiesLinks ||
		!boolsEqual(s.UpdateParams, sp.seed.UpdateParams) ||
		!boolsEqual(s.LinkParams, sp.seed.LinkParams) ||
		!boolsEqual(s.AttachesParams, sp.seed.AttachesParams) {
		return false
	}
	return true
}

func boolsEqual(a, b []bool) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
