package matrix

import (
	"fmt"

	"repro/internal/path"
)

// Content encoding of a matrix, used by the incremental-analysis summary
// store. A converged summary must outlive the path.Space it was computed
// in (session Spaces are epoch-reset between requests), so the encoded
// form stores no interned IDs: handles are their names and every relation
// entry is rendered in the paper's path notation, which Space.ParseSet
// round-trips losslessly (canonical interned segments always have
// Min >= 1, so String and Parse are exact inverses). DecodeIn re-interns
// into an arbitrary target Space and reproduces a matrix that is Equal to
// — and, within one Space, fingerprint-identical to — the original.

// EncodedHandle is one live handle with its attribute record, in the
// matrix's insertion order (insertion order is part of the analysis
// identity: Handles() feeds deterministic iteration throughout the
// engine, so decode must reproduce it exactly).
type EncodedHandle struct {
	Handle Handle   `json:"handle"`
	Nil    Nilness  `json:"nil"`
	Indeg  Indegree `json:"indeg"`
}

// EncodedCell is one non-empty relation entry p[row, col] rendered in
// path notation.
type EncodedCell struct {
	Row   Handle `json:"row"`
	Col   Handle `json:"col"`
	Paths string `json:"paths"`
}

// Encoded is the Space-free content form of a Matrix.
type Encoded struct {
	Sticky  Shape           `json:"sticky"`
	Handles []EncodedHandle `json:"handles"`
	Cells   []EncodedCell   `json:"cells,omitempty"`
}

// SizeBytes approximates the in-memory footprint of the encoded form,
// for summary-store accounting.
func (e *Encoded) SizeBytes() int {
	n := 16 // sticky + slice headers, roughly
	for _, h := range e.Handles {
		n += len(h.Handle) + 4
	}
	for _, c := range e.Cells {
		n += len(c.Row) + len(c.Col) + len(c.Paths) + 8
	}
	return n
}

// Encode renders the matrix into its Space-free content form. Handle
// order follows insertion order; cells follow the (row, col) order of the
// handle list, so the encoding of a given matrix is deterministic.
func (m *Matrix) Encode() Encoded {
	e := Encoded{Sticky: m.sticky}
	e.Handles = make([]EncodedHandle, 0, len(m.order))
	for _, h := range m.order {
		a := m.attrs[h]
		e.Handles = append(e.Handles, EncodedHandle{Handle: h, Nil: a.Nil, Indeg: a.Indeg})
	}
	for _, r := range m.order {
		for _, c := range m.order {
			if s := m.Get(r, c); !s.IsEmpty() {
				e.Cells = append(e.Cells, EncodedCell{Row: r, Col: c, Paths: s.String()})
			}
		}
	}
	return e
}

// DecodeIn rebuilds a matrix from its content form, interning every path
// into sp. The result is structurally Equal to the matrix Encode was
// called on, with the same handle insertion order and sticky shape.
func DecodeIn(sp *Space, e Encoded) (*Matrix, error) {
	m := NewIn(sp)
	for _, h := range e.Handles {
		if m.Has(h.Handle) {
			return nil, fmt.Errorf("matrix: decode: duplicate handle %q", h.Handle)
		}
		m.Add(h.Handle, Attr{Nil: h.Nil, Indeg: h.Indeg})
		// Add seeds the S diagonal for non-nil handles; the true diagonal
		// arrives with the cells, so clear it to match encode exactly.
		m.Put(h.Handle, h.Handle, path.EmptySet())
	}
	for _, c := range e.Cells {
		if !m.Has(c.Row) || !m.Has(c.Col) {
			return nil, fmt.Errorf("matrix: decode: cell %q>%q names unknown handle", c.Row, c.Col)
		}
		s, err := sp.Paths().ParseSet(c.Paths)
		if err != nil {
			return nil, fmt.Errorf("matrix: decode cell %q>%q: %v", c.Row, c.Col, err)
		}
		m.Put(c.Row, c.Col, s)
	}
	m.setSticky(e.Sticky)
	return m, nil
}
