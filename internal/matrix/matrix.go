// Package matrix implements the path matrices of Hendren & Nicolau (§4):
// for every pair of live handles (a, b), the matrix entry p[a,b] is a set of
// path expressions estimating every possible way b sits at or below a in the
// linked structure. Alongside the relation, each handle carries a nil-ness
// and an indegree attribute, and the matrix carries an overall structure
// estimate (TREE / DAG / cyclic), which together implement the paper's
// structural verification (§3.1).
package matrix

import (
	"fmt"
	"strings"
	"text/tabwriter"

	"repro/internal/path"
)

// Handle names a live handle variable. The interprocedural analysis also
// uses the symbolic handles of Figure 7: "h*1" (the caller's first actual
// argument) and "h**1" (all stacked recursive first arguments).
type Handle string

// Symbolic constructs the caller-argument symbolic handle h*i.
func Symbolic(i int) Handle { return Handle(fmt.Sprintf("h*%d", i)) }

// Stacked constructs the stacked-recursion symbolic handle h**i.
func Stacked(i int) Handle { return Handle(fmt.Sprintf("h**%d", i)) }

// IsSymbolic reports whether h is an h* or h** handle.
func (h Handle) IsSymbolic() bool { return strings.Contains(string(h), "*") }

// Nilness is the nil attribute lattice for a handle.
type Nilness uint8

// Nilness values: definitely nil, definitely non-nil, or unknown.
const (
	DefNil Nilness = iota
	NonNil
	MaybeNil
)

func (n Nilness) String() string {
	switch n {
	case DefNil:
		return "nil"
	case NonNil:
		return "nonnil"
	case MaybeNil:
		return "maybe"
	}
	return fmt.Sprintf("Nilness(%d)", uint8(n))
}

// mergeNilness joins two nil estimates from alternative control paths.
func mergeNilness(a, b Nilness) Nilness {
	if a == b {
		return a
	}
	return MaybeNil
}

// Indegree estimates how many parents the node referred to by a handle has.
// It drives the possible-DAG verdict on a.f := b: attaching a node that may
// already have a parent creates sharing.
type Indegree uint8

// Indegree values.
const (
	Root       Indegree = iota // no parent (fresh from new(), or a known root)
	Attached                   // exactly one parent known
	Shared                     // more than one parent possible (DAG territory)
	UnknownDeg                 // no information (e.g. procedure arguments)
)

func (d Indegree) String() string {
	switch d {
	case Root:
		return "root"
	case Attached:
		return "attached"
	case Shared:
		return "shared"
	case UnknownDeg:
		return "unknown"
	}
	return fmt.Sprintf("Indegree(%d)", uint8(d))
}

func mergeIndegree(a, b Indegree) Indegree {
	if a == b {
		return a
	}
	if a == Shared || b == Shared {
		return Shared
	}
	return UnknownDeg
}

// Attr is the per-handle attribute record.
type Attr struct {
	Nil   Nilness
	Indeg Indegree
}

// Shape is the overall structure estimate, ordered by severity; merging
// takes the maximum. It realizes the paper's TREE/DAG classification with
// definite and possible levels.
type Shape uint8

// Shape values, from best to worst.
const (
	ShapeTree Shape = iota
	ShapeMaybeDAG
	ShapeDAG
	ShapeMaybeCyclic
	ShapeCyclic
)

func (s Shape) String() string {
	switch s {
	case ShapeTree:
		return "TREE"
	case ShapeMaybeDAG:
		return "DAG?"
	case ShapeDAG:
		return "DAG"
	case ShapeMaybeCyclic:
		return "CYCLE?"
	case ShapeCyclic:
		return "CYCLE"
	}
	return fmt.Sprintf("Shape(%d)", uint8(s))
}

// IsTree reports whether the structure is certainly a TREE.
func (s Shape) IsTree() bool { return s == ShapeTree }

// DefinitelyAcyclic reports whether no cycle can exist.
func (s Shape) DefinitelyAcyclic() bool { return s <= ShapeDAG }

// Matrix is a path matrix at one program point. Matrices are mutable; use
// Copy before a destructive update when the original must survive (the
// analysis engine copies at every control-flow split).
//
// The structure estimate has two components. The sticky part records
// unrecoverable damage: cycles, sharing through handles of unknown
// indegree, and shared nodes whose handles died. The recoverable part is
// derived from the live indegree attributes: a handle marked Shared means
// its node currently has two parents. This split is what lets the paper's
// reverse (§1: "a tree may be changed temporarily into a DAG, as an
// intermediate step in swapping some nodes") verify as TREE again once the
// swap completes.
type Matrix struct {
	// sp is the Space whose handle table keys the entries; derived matrices
	// (Copy, Merge, Rename, Project) inherit it.
	sp      *Space
	order   []Handle // insertion order, for paper-layout printing
	entries map[entryKey]path.Set
	attrs   map[Handle]Attr
	sticky  Shape
	// fp is the incrementally maintained 128-bit fingerprint of
	// (sticky, attrs, entries); see fingerprint.go. Every mutation of the
	// three fingerprinted fields must go through setSticky / putAttr /
	// dropAttr / setEntry so the roll-up stays exact.
	fp Fp
}

// New returns an empty matrix describing a TREE store with no live
// handles, interning in the default Space (one-shot CLI/test convenience;
// long-lived consumers use NewIn).
func New() *Matrix { return NewIn(DefaultSpace()) }

// NewIn returns an empty TREE matrix whose handles intern into sp.
func NewIn(sp *Space) *Matrix {
	return &Matrix{
		sp:      sp,
		entries: make(map[entryKey]path.Set),
		attrs:   make(map[Handle]Attr),
		fp:      stickyFP(ShapeTree),
	}
}

// Space returns the matrix's owning Space.
func (m *Matrix) Space() *Space { return m.sp }

// Copy returns a deep copy (in the same Space).
func (m *Matrix) Copy() *Matrix {
	c := &Matrix{
		sp:      m.sp,
		order:   append([]Handle(nil), m.order...),
		entries: make(map[entryKey]path.Set, len(m.entries)),
		attrs:   make(map[Handle]Attr, len(m.attrs)),
		sticky:  m.sticky,
		fp:      m.fp,
	}
	for k, v := range m.entries {
		c.entries[k] = v
	}
	for k, v := range m.attrs {
		c.attrs[k] = v
	}
	return c
}

// setSticky, putAttr, dropAttr and setEntry are the only writers of the
// fingerprinted fields: each keeps m.fp in sync by subtracting the old
// contribution and adding the new one.

func (m *Matrix) setSticky(s Shape) {
	if s == m.sticky {
		return
	}
	m.fpSub(stickyFP(m.sticky))
	m.sticky = s
	m.fpAdd(stickyFP(s))
}

func (m *Matrix) putAttr(h Handle, a Attr) {
	if old, ok := m.attrs[h]; ok {
		if old == a {
			return
		}
		m.fpSub(attrFP(m.sp, h, old))
	}
	m.attrs[h] = a
	m.fpAdd(attrFP(m.sp, h, a))
}

func (m *Matrix) dropAttr(h Handle) {
	if old, ok := m.attrs[h]; ok {
		m.fpSub(attrFP(m.sp, h, old))
		delete(m.attrs, h)
	}
}

func (m *Matrix) setEntry(k entryKey, s path.Set) {
	if old, ok := m.entries[k]; ok {
		m.fpSub(entryFP(k, old))
	}
	if s.IsEmpty() {
		delete(m.entries, k)
		return
	}
	m.entries[k] = s
	m.fpAdd(entryFP(k, s))
}

// Shape returns the current structure estimate: the sticky damage joined
// with sharing visible in the live indegree attributes.
func (m *Matrix) Shape() Shape {
	s := m.sticky
	for _, a := range m.attrs {
		if a.Indeg != Shared || a.Nil == DefNil {
			continue
		}
		derived := ShapeDAG
		if a.Nil == MaybeNil {
			derived = ShapeMaybeDAG
		}
		if derived > s {
			s = derived
		}
	}
	return s
}

// StickyShape returns only the unrecoverable component of the estimate
// (used when mapping a callee's exit into the caller: recoverable sharing
// travels through the h* attributes instead).
func (m *Matrix) StickyShape() Shape { return m.sticky }

// SetShape records a sticky structure verdict; the estimate only degrades.
func (m *Matrix) SetShape(s Shape) {
	if s > m.sticky {
		m.setSticky(s)
	}
}

// ResetShape forcibly sets the sticky estimate (used when entering a fresh
// store or seeding a callee entry).
func (m *Matrix) ResetShape(s Shape) { m.setSticky(s) }

// foldDyingAttr preserves structure evidence carried by a handle that is
// about to disappear: a shared node without a name can never be proven
// un-shared again.
func (m *Matrix) foldDyingAttr(a Attr) {
	if a.Indeg == Shared && a.Nil != DefNil {
		if a.Nil == MaybeNil {
			m.SetShape(ShapeMaybeDAG)
		} else {
			m.SetShape(ShapeDAG)
		}
	}
}

// Has reports whether h is live in the matrix.
func (m *Matrix) Has(h Handle) bool {
	_, ok := m.attrs[h]
	return ok
}

// Handles returns the live handles in insertion order. Callers must not
// modify the returned slice.
func (m *Matrix) Handles() []Handle { return m.order }

// Attr returns the attribute record for h (zero Attr if not live).
func (m *Matrix) Attr(h Handle) Attr { return m.attrs[h] }

// SetAttr updates the attribute record for a live handle.
func (m *Matrix) SetAttr(h Handle, a Attr) {
	if !m.Has(h) {
		return
	}
	m.putAttr(h, a)
}

// Add introduces a handle with the given attributes. A non-nil handle
// relates to itself by definite S; re-adding an existing handle only
// updates its attributes.
func (m *Matrix) Add(h Handle, a Attr) {
	if !m.Has(h) {
		m.order = append(m.order, h)
	}
	m.putAttr(h, a)
	if a.Nil != DefNil {
		m.setEntry(m.sp.ek(h, h), path.NewSet(path.Same()))
	} else {
		m.setEntry(m.sp.ek(h, h), path.EmptySet())
	}
}

// Remove kills a handle: its row and column disappear (the paper's
// treatment of dead or reassigned handles). Structure evidence the handle
// carried folds into the sticky estimate.
func (m *Matrix) Remove(h Handle) {
	if !m.Has(h) {
		return
	}
	m.foldDyingAttr(m.attrs[h])
	for i, o := range m.order {
		if o == h {
			m.order = append(m.order[:i:i], m.order[i+1:]...)
			break
		}
	}
	m.dropAttr(h)
	hid := m.sp.idOf(h)
	for k, v := range m.entries {
		if uint32(k>>32) == hid || uint32(k) == hid {
			m.fpSub(entryFP(k, v))
			delete(m.entries, k)
		}
	}
}

// Get returns the entry p[a,b] (empty set when absent or handles unknown).
func (m *Matrix) Get(a, b Handle) path.Set {
	return m.entries[m.sp.ek(a, b)]
}

// Put sets the entry p[a,b]; an empty set deletes it.
func (m *Matrix) Put(a, b Handle, s path.Set) {
	if !m.Has(a) || !m.Has(b) {
		return
	}
	m.setEntry(m.sp.ek(a, b), s)
}

// AddPaths unions extra paths into p[a,b].
func (m *Matrix) AddPaths(a, b Handle, s path.Set) {
	if s.IsEmpty() {
		return
	}
	m.Put(a, b, m.Get(a, b).Union(s))
}

// Related reports whether a and b are related in either direction
// (including aliasing). Per §5.2, unrelated handles guarantee disjoint
// reachable node sets in a TREE store.
func (m *Matrix) Related(a, b Handle) bool {
	if a == b {
		return true
	}
	return !m.Get(a, b).IsEmpty() || !m.Get(b, a).IsEmpty()
}

// MayAlias reports whether a and b may refer to the same node.
func (m *Matrix) MayAlias(a, b Handle) bool {
	if a == b {
		return true
	}
	return m.Get(a, b).HasSame() || m.Get(b, a).HasSame()
}

// Equal compares matrices: same handles (any order), equal entries, equal
// attributes and shape. This is the convergence test of the Figure 3
// iteration; the fingerprint comparison rejects unequal matrices in O(1)
// and equality is still decided structurally (collision safety).
func (m *Matrix) Equal(o *Matrix) bool {
	if m.fp != o.fp {
		return false
	}
	if m.sticky != o.sticky || len(m.attrs) != len(o.attrs) {
		return false
	}
	for h, a := range m.attrs {
		oa, ok := o.attrs[h]
		if !ok || a != oa {
			return false
		}
	}
	if len(m.entries) != len(o.entries) {
		return false
	}
	for k, v := range m.entries {
		if !o.entries[k].Equal(v) {
			return false
		}
	}
	return true
}

// mergeShape joins the sticky estimates of two alternative control paths:
// damage definite on only one side is merely possible afterwards.
func mergeShape(a, b Shape) Shape {
	if a == b {
		return a
	}
	lo, hi := a, b
	if lo > hi {
		lo, hi = hi, lo
	}
	weakened := hi
	switch hi {
	case ShapeDAG:
		weakened = ShapeMaybeDAG
	case ShapeCyclic:
		weakened = ShapeMaybeCyclic
	}
	if weakened > lo {
		return weakened
	}
	return lo
}

// Merge joins two estimates from alternative control-flow paths into a new
// matrix: handles live on only one side stay live (their relations demoted
// to possible), entries merge pointwise with definite-iff-definite-in-both,
// attributes join in their lattices, sticky shape joins with one-sided
// weakening.
func (m *Matrix) Merge(o *Matrix) *Matrix {
	out := NewIn(m.sp)
	out.setSticky(mergeShape(m.sticky, o.sticky))
	// Preserve m's ordering first, then o's extras. A node shared on only
	// one side is possibly shared: the Indegree lattice has no value for
	// that, so the evidence moves to the sticky estimate.
	mergeAttrs := func(a, b Attr) Attr {
		if (a.Indeg == Shared) != (b.Indeg == Shared) {
			out.SetShape(ShapeMaybeDAG)
		}
		return Attr{Nil: mergeNilness(a.Nil, b.Nil), Indeg: mergeIndegree(a.Indeg, b.Indeg)}
	}
	for _, h := range m.order {
		if oa, ok := o.attrs[h]; ok {
			out.Add(h, mergeAttrs(m.attrs[h], oa))
		} else {
			a := m.attrs[h]
			out.Add(h, Attr{Nil: mergeNilness(a.Nil, MaybeNil), Indeg: a.Indeg})
		}
	}
	for _, h := range o.order {
		if !m.Has(h) {
			a := o.attrs[h]
			out.Add(h, Attr{Nil: mergeNilness(a.Nil, MaybeNil), Indeg: a.Indeg})
		}
	}
	seen := make(map[entryKey]bool, len(m.entries)+len(o.entries))
	for k, v := range m.entries {
		seen[k] = true
		row, col := m.sp.keyHandles(k)
		merged := v.MergeJoin(o.entries[k])
		if k.diagonal() && out.attrs[row].Nil != DefNil {
			// Keep the definite S diagonal for handles live on both sides.
			merged = merged.Add(path.Same())
		}
		out.Put(row, col, merged)
	}
	for k, v := range o.entries {
		if seen[k] {
			continue
		}
		row, col := m.sp.keyHandles(k)
		merged := path.EmptySet().MergeJoin(v)
		if k.diagonal() && out.attrs[row].Nil != DefNil {
			merged = merged.Add(path.Same())
		}
		out.Put(row, col, merged)
	}
	return out
}

// Widen applies the domain bounds to every entry.
func (m *Matrix) Widen(lim path.Limits) {
	for k, v := range m.entries {
		m.setEntry(k, v.Widen(lim))
	}
}

// Rename rewrites handle names (used to map actuals to formals at calls).
// Unmapped handles keep their names. The substitution need not be
// injective: when several handles collapse onto one name, their attribute
// records join in the attribute lattices (Shared indegree evidence
// survives the join) and their entries union pointwise — the previous
// last-Put-wins behavior silently dropped entries and attribute evidence.
func (m *Matrix) Rename(sub map[Handle]Handle) *Matrix {
	name := func(h Handle) Handle {
		if n, ok := sub[h]; ok {
			return n
		}
		return h
	}
	out := NewIn(m.sp)
	out.setSticky(m.sticky)
	for _, h := range m.order {
		n, a := name(h), m.attrs[h]
		if out.Has(n) {
			prev := out.attrs[n]
			a = Attr{Nil: mergeNilness(prev.Nil, a.Nil), Indeg: mergeIndegree(prev.Indeg, a.Indeg)}
		}
		out.Add(n, a)
	}
	for k, v := range m.entries {
		row, col := m.sp.keyHandles(k)
		out.AddPaths(name(row), name(col), v)
	}
	return out
}

// Project restricts the matrix to the given handles (dropping all others).
func (m *Matrix) Project(keep []Handle) *Matrix {
	want := make(map[Handle]bool, len(keep))
	for _, h := range keep {
		want[h] = true
	}
	out := NewIn(m.sp)
	out.setSticky(m.sticky)
	for _, h := range m.order {
		if want[h] {
			out.Add(h, m.attrs[h])
		} else {
			out.foldDyingAttr(m.attrs[h])
		}
	}
	for k, v := range m.entries {
		row, col := m.sp.keyHandles(k)
		if want[row] && want[col] {
			out.Put(row, col, v)
		}
	}
	return out
}

// String renders the matrix as the paper's figures lay it out: one row and
// column per handle in insertion order, entries in path notation, plus the
// shape and attribute summary.
func (m *Matrix) String() string {
	var sb strings.Builder
	tw := tabwriter.NewWriter(&sb, 2, 0, 2, ' ', 0)
	fmt.Fprintf(tw, ".\t")
	for _, c := range m.order {
		fmt.Fprintf(tw, "%s\t", c)
	}
	fmt.Fprintln(tw)
	for _, r := range m.order {
		fmt.Fprintf(tw, "%s\t", r)
		for _, c := range m.order {
			e := m.Get(r, c)
			if e.IsEmpty() {
				fmt.Fprintf(tw, ".\t")
			} else {
				fmt.Fprintf(tw, "%s\t", strings.ReplaceAll(e.String(), ", ", ","))
			}
		}
		fmt.Fprintln(tw)
	}
	tw.Flush()
	fmt.Fprintf(&sb, "shape: %s", m.Shape())
	return sb.String()
}
