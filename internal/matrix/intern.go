package matrix

import "sync"

// Handle interning: every handle name used by any matrix is mapped once to
// a small process-wide ID, and matrix entries are keyed by packed ID pairs
// (uint64) instead of string pairs. Map lookups on the analysis hot path
// then hash one machine word instead of two strings, and IDs are stable
// across matrices, so keys survive Copy/Merge/Project without re-hashing.
// The table is mutex-guarded for the concurrent analysis fixpoint; handle
// universes are tiny (program variables plus symbolic h*/h** names), so a
// single RWMutex does not contend.

var handleTab = struct {
	mu    sync.RWMutex
	ids   map[Handle]uint32
	names []Handle // index id → name
}{ids: make(map[Handle]uint32)}

// idOf interns h and returns its stable ID.
func idOf(h Handle) uint32 {
	handleTab.mu.RLock()
	id, ok := handleTab.ids[h]
	handleTab.mu.RUnlock()
	if ok {
		return id
	}
	handleTab.mu.Lock()
	defer handleTab.mu.Unlock()
	if id, ok := handleTab.ids[h]; ok {
		return id
	}
	id = uint32(len(handleTab.names))
	handleTab.ids[h] = id
	handleTab.names = append(handleTab.names, h)
	return id
}

// nameOf returns the handle with the given interned ID.
func nameOf(id uint32) Handle {
	handleTab.mu.RLock()
	h := handleTab.names[id]
	handleTab.mu.RUnlock()
	return h
}

// entryKey packs an interned (row, col) handle pair into one map key.
type entryKey uint64

// ek resolves both IDs under a single read-lock acquisition — it sits on
// the hottest path of the concurrent fixpoint (every Get/Put), where two
// separate idOf calls would double the traffic on the shared lock word.
func ek(row, col Handle) entryKey {
	handleTab.mu.RLock()
	r, okR := handleTab.ids[row]
	c, okC := handleTab.ids[col]
	handleTab.mu.RUnlock()
	if !okR {
		r = idOf(row)
	}
	if !okC {
		c = idOf(col)
	}
	return entryKey(uint64(r)<<32 | uint64(c))
}

func (k entryKey) handles() (row, col Handle) {
	return nameOf(uint32(k >> 32)), nameOf(uint32(k))
}

func (k entryKey) diagonal() bool { return uint32(k>>32) == uint32(k) }
