package matrix

import (
	"sync"

	"repro/internal/path"
)

// Handle interning: every handle name used by any matrix of one Space is
// mapped once to a small ID, and matrix entries are keyed by packed ID
// pairs (uint64) instead of string pairs. Map lookups on the analysis hot
// path then hash one machine word instead of two strings, and IDs are
// stable across matrices of the same Space, so keys survive
// Copy/Merge/Project without re-hashing. The table is mutex-guarded for
// the concurrent analysis fixpoint; handle universes are tiny (program
// variables plus symbolic h*/h** names), so a single RWMutex does not
// contend.

// A Space scopes the handle interner to one path.Space: matrices built in
// the Space intern their handles here and their path sets there, so a
// long-lived service can give every session worker a private matrix Space
// and keep the whole analysis cache hierarchy — paths, memo verdicts, and
// handles — worker-local.
//
// The handle table is epoch-scoped alongside its path.Space's tables: an
// OnReset hook registered at construction drops the handle universe
// whenever the path Space resets, so one Reset call bounds the whole
// hierarchy between batches. The epoch contract of path.Space applies —
// matrices built before a Reset must not be used after it. Because IDs are
// never reused, a stale matrix keeps the benign failure mode the contract
// promises: its packed entry keys can never collide with fresh IDs and
// silently read another handle's entry (lookups miss, and resolving a
// stale ID to a name fails loudly).
type Space struct {
	paths *path.Space

	mu  sync.RWMutex
	ids map[Handle]uint32
	// base is the first ID of the current epoch; like path node IDs,
	// handle IDs are monotonic and never reused across epochs.
	base  uint32
	names []Handle // index (id - base) → name
}

// NewSpace builds a matrix Space bound to ps, tying its handle table to
// ps's epoch lifecycle.
func NewSpace(ps *path.Space) *Space {
	sp := &Space{paths: ps, ids: make(map[Handle]uint32)}
	ps.OnReset(func() {
		sp.mu.Lock()
		sp.base += uint32(len(sp.names))
		sp.ids = make(map[Handle]uint32)
		sp.names = nil
		sp.mu.Unlock()
	})
	return sp
}

// Paths returns the path.Space this matrix Space is bound to.
func (sp *Space) Paths() *path.Space { return sp.paths }

var (
	defaultSpace     *Space
	defaultSpaceOnce sync.Once
)

// DefaultSpace returns the matrix Space bound to path.DefaultSpace() — the
// convenience for one-shot CLI runs and tests; long-lived services
// construct their own via NewSpace.
func DefaultSpace() *Space {
	defaultSpaceOnce.Do(func() { defaultSpace = NewSpace(path.DefaultSpace()) })
	return defaultSpace
}

// InternedHandles reports how many distinct handle names the Space's
// current epoch has interned.
func (sp *Space) InternedHandles() int {
	sp.mu.RLock()
	n := len(sp.names)
	sp.mu.RUnlock()
	return n
}

// InternedHandles reports the default Space's count (monitoring hook for
// silbench).
func InternedHandles() int { return DefaultSpace().InternedHandles() }

// idOf interns h and returns its stable ID within the Space.
func (sp *Space) idOf(h Handle) uint32 {
	sp.mu.RLock()
	id, ok := sp.ids[h]
	sp.mu.RUnlock()
	if ok {
		return id
	}
	sp.mu.Lock()
	defer sp.mu.Unlock()
	if id, ok := sp.ids[h]; ok {
		return id
	}
	id = sp.base + uint32(len(sp.names))
	if id < sp.base {
		// Monotonic-ID exhaustion: a wrap would let a stale matrix's packed
		// keys collide with fresh handles, so fail fast (cf. path.intern).
		panic("matrix: interned handle IDs exhausted; restart the process")
	}
	sp.ids[h] = id
	sp.names = append(sp.names, h)
	return id
}

// nameOf returns the handle with the given interned ID (current epoch).
func (sp *Space) nameOf(id uint32) Handle {
	sp.mu.RLock()
	h := sp.names[id-sp.base]
	sp.mu.RUnlock()
	return h
}

// entryKey packs an interned (row, col) handle pair into one map key.
type entryKey uint64

// ek resolves both IDs under a single read-lock acquisition — it sits on
// the hottest path of the concurrent fixpoint (every Get/Put), where two
// separate idOf calls would double the traffic on the shared lock word.
func (sp *Space) ek(row, col Handle) entryKey {
	sp.mu.RLock()
	r, okR := sp.ids[row]
	c, okC := sp.ids[col]
	sp.mu.RUnlock()
	if !okR {
		r = sp.idOf(row)
	}
	if !okC {
		c = sp.idOf(col)
	}
	return entryKey(uint64(r)<<32 | uint64(c))
}

// keyHandles resolves a packed key back to its handle names.
func (sp *Space) keyHandles(k entryKey) (row, col Handle) {
	return sp.nameOf(uint32(k >> 32)), sp.nameOf(uint32(k))
}

func (k entryKey) diagonal() bool { return uint32(k>>32) == uint32(k) }
