package matrix

import (
	"sync"

	"repro/internal/path"
)

// Handle interning: every handle name used by any matrix is mapped once to
// a small process-wide ID, and matrix entries are keyed by packed ID pairs
// (uint64) instead of string pairs. Map lookups on the analysis hot path
// then hash one machine word instead of two strings, and IDs are stable
// across matrices, so keys survive Copy/Merge/Project without re-hashing.
// The table is mutex-guarded for the concurrent analysis fixpoint; handle
// universes are tiny (program variables plus symbolic h*/h** names), so a
// single RWMutex does not contend.

var handleTab = struct {
	mu  sync.RWMutex
	ids map[Handle]uint32
	// base is the first ID of the current epoch; like path node IDs,
	// handle IDs are monotonic and never reused across epochs.
	base  uint32
	names []Handle // index (id - base) → name
}{ids: make(map[Handle]uint32)}

// The handle table is epoch-scoped alongside the path tables: resetting
// the process path.Space also drops the handle universe, so one Reset call
// bounds the whole analysis cache hierarchy between batches. The epoch
// contract of path.Space applies — matrices built before a Reset must not
// be used after it. Because IDs are never reused, a stale matrix keeps the
// benign failure mode the contract promises: its packed entry keys can
// never collide with fresh IDs and silently read another handle's entry
// (lookups miss, and resolving a stale ID to a name fails loudly).
func init() {
	path.DefaultSpace().OnReset(func() {
		handleTab.mu.Lock()
		handleTab.base += uint32(len(handleTab.names))
		handleTab.ids = make(map[Handle]uint32)
		handleTab.names = nil
		handleTab.mu.Unlock()
	})
}

// InternedHandles reports how many distinct handle names the current epoch
// has interned (monitoring hook for silbench).
func InternedHandles() int {
	handleTab.mu.RLock()
	n := len(handleTab.names)
	handleTab.mu.RUnlock()
	return n
}

// idOf interns h and returns its stable ID.
func idOf(h Handle) uint32 {
	handleTab.mu.RLock()
	id, ok := handleTab.ids[h]
	handleTab.mu.RUnlock()
	if ok {
		return id
	}
	handleTab.mu.Lock()
	defer handleTab.mu.Unlock()
	if id, ok := handleTab.ids[h]; ok {
		return id
	}
	id = handleTab.base + uint32(len(handleTab.names))
	if id < handleTab.base {
		// Monotonic-ID exhaustion: a wrap would let a stale matrix's packed
		// keys collide with fresh handles, so fail fast (cf. path.intern).
		panic("matrix: interned handle IDs exhausted; restart the process")
	}
	handleTab.ids[h] = id
	handleTab.names = append(handleTab.names, h)
	return id
}

// nameOf returns the handle with the given interned ID (current epoch).
func nameOf(id uint32) Handle {
	handleTab.mu.RLock()
	h := handleTab.names[id-handleTab.base]
	handleTab.mu.RUnlock()
	return h
}

// entryKey packs an interned (row, col) handle pair into one map key.
type entryKey uint64

// ek resolves both IDs under a single read-lock acquisition — it sits on
// the hottest path of the concurrent fixpoint (every Get/Put), where two
// separate idOf calls would double the traffic on the shared lock word.
func ek(row, col Handle) entryKey {
	handleTab.mu.RLock()
	r, okR := handleTab.ids[row]
	c, okC := handleTab.ids[col]
	handleTab.mu.RUnlock()
	if !okR {
		r = idOf(row)
	}
	if !okC {
		c = idOf(col)
	}
	return entryKey(uint64(r)<<32 | uint64(c))
}

func (k entryKey) handles() (row, col Handle) {
	return nameOf(uint32(k >> 32)), nameOf(uint32(k))
}

func (k entryKey) diagonal() bool { return uint32(k>>32) == uint32(k) }
