package matrix

import (
	"testing"

	"repro/internal/path"
)

func mustSet(t *testing.T, sp *path.Space, src string) path.Set {
	t.Helper()
	s, err := sp.ParseSet(src)
	if err != nil {
		t.Fatalf("ParseSet(%q): %v", src, err)
	}
	return s
}

// buildSample constructs a matrix exercising every encoded dimension:
// attribute lattice points, definite and possible paths, multi-member
// sets, a cleared diagonal, and a sticky shape.
func buildSample(sp *Space) *Matrix {
	ps := sp.Paths()
	m := NewIn(sp)
	m.Add("root", Attr{Nil: NonNil, Indeg: Root})
	m.Add("cur", Attr{Nil: MaybeNil, Indeg: UnknownDeg})
	m.Add("t", Attr{Nil: DefNil, Indeg: Attached})
	m.Add("h*1", Attr{Nil: MaybeNil, Indeg: Shared})
	set := func(src string) path.Set {
		s, err := ps.ParseSet(src)
		if err != nil {
			panic(err)
		}
		return s
	}
	m.Put("root", "cur", set("L1, D2+?"))
	m.Put("root", "root", set("S"))
	m.Put("cur", "cur", set("S?"))
	m.Put("h*1", "cur", set("R1L2?, L+"))
	m.Put("root", "h*1", set("D1?"))
	m.ResetShape(ShapeMaybeDAG)
	return m
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	sp := NewSpace(path.NewSpace())
	m := buildSample(sp)
	enc := m.Encode()
	got, err := DecodeIn(sp, enc)
	if err != nil {
		t.Fatalf("DecodeIn: %v", err)
	}
	if !got.Equal(m) {
		t.Fatalf("decoded matrix differs:\n got:\n%s\nwant:\n%s", got, m)
	}
	if got.Fingerprint() != m.Fingerprint() {
		t.Fatalf("fingerprint mismatch: %s vs %s", got.Fingerprint(), m.Fingerprint())
	}
	if gh, wh := got.Handles(), m.Handles(); len(gh) != len(wh) {
		t.Fatalf("handle count: %d vs %d", len(gh), len(wh))
	} else {
		for i := range gh {
			if gh[i] != wh[i] {
				t.Fatalf("handle order diverged at %d: %s vs %s", i, gh[i], wh[i])
			}
		}
	}
	if got.StickyShape() != m.StickyShape() {
		t.Fatalf("sticky: %v vs %v", got.StickyShape(), m.StickyShape())
	}
}

// TestEncodeDecodeAcrossSpaces pins the incremental-analysis contract:
// the encoding carries no interned IDs, so it decodes into a completely
// fresh Space to the same content.
func TestEncodeDecodeAcrossSpaces(t *testing.T) {
	sp1 := NewSpace(path.NewSpace())
	m := buildSample(sp1)
	enc := m.Encode()

	sp2 := NewSpace(path.NewSpace())
	// Skew sp2's intern tables so IDs cannot accidentally line up.
	skew := NewIn(sp2)
	skew.Add("zzz", Attr{Nil: NonNil, Indeg: Root})
	mustSet(t, sp2.Paths(), "L1R1D+?")

	got, err := DecodeIn(sp2, enc)
	if err != nil {
		t.Fatalf("DecodeIn: %v", err)
	}
	// Cross-Space comparison must be content-based: re-encode.
	got2 := got.Encode()
	if len(got2.Handles) != len(enc.Handles) || len(got2.Cells) != len(enc.Cells) {
		t.Fatalf("re-encode shape mismatch: %+v vs %+v", got2, enc)
	}
	for i := range enc.Handles {
		if got2.Handles[i] != enc.Handles[i] {
			t.Fatalf("handle %d: %+v vs %+v", i, got2.Handles[i], enc.Handles[i])
		}
	}
	for i := range enc.Cells {
		if got2.Cells[i] != enc.Cells[i] {
			t.Fatalf("cell %d: %+v vs %+v", i, got2.Cells[i], enc.Cells[i])
		}
	}
	if got2.Sticky != enc.Sticky {
		t.Fatalf("sticky: %v vs %v", got2.Sticky, enc.Sticky)
	}
}

func TestDecodeRejectsCorruptInput(t *testing.T) {
	sp := NewSpace(path.NewSpace())
	enc := buildSample(sp).Encode()

	bad := enc
	bad.Cells = append([]EncodedCell(nil), enc.Cells...)
	bad.Cells[0].Paths = "not a path"
	if _, err := DecodeIn(sp, bad); err == nil {
		t.Fatal("want error for corrupt path notation")
	}

	bad = enc
	bad.Cells = append([]EncodedCell(nil), enc.Cells...)
	bad.Cells[0].Row = "ghost"
	if _, err := DecodeIn(sp, bad); err == nil {
		t.Fatal("want error for unknown handle")
	}

	bad = enc
	bad.Handles = append(append([]EncodedHandle(nil), enc.Handles...), enc.Handles[0])
	if _, err := DecodeIn(sp, bad); err == nil {
		t.Fatal("want error for duplicate handle")
	}
}
