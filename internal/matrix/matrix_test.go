package matrix

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/path"
)

func nonNil() Attr { return Attr{Nil: NonNil, Indeg: UnknownDeg} }

func TestAddDiagonal(t *testing.T) {
	m := New()
	m.Add("a", nonNil())
	if got := m.Get("a", "a").String(); got != "S" {
		t.Errorf("diagonal = %q, want S", got)
	}
	m.Add("n", Attr{Nil: DefNil})
	if !m.Get("n", "n").IsEmpty() {
		t.Error("nil handle should have no diagonal")
	}
	if len(m.Handles()) != 2 {
		t.Errorf("handles = %v", m.Handles())
	}
}

func TestReAddUpdatesAttr(t *testing.T) {
	m := New()
	m.Add("a", Attr{Nil: MaybeNil})
	m.Add("a", Attr{Nil: NonNil, Indeg: Root})
	if len(m.Handles()) != 1 {
		t.Error("re-add should not duplicate")
	}
	if m.Attr("a") != (Attr{Nil: NonNil, Indeg: Root}) {
		t.Errorf("attr = %+v", m.Attr("a"))
	}
}

func TestRemoveKillsRowAndColumn(t *testing.T) {
	m := New()
	m.Add("a", nonNil())
	m.Add("b", nonNil())
	m.Put("a", "b", path.MustParseSet("L1"))
	m.Remove("b")
	if m.Has("b") {
		t.Error("b should be gone")
	}
	if !m.Get("a", "b").IsEmpty() {
		t.Error("entry should be gone")
	}
	if got := len(m.Handles()); got != 1 {
		t.Errorf("handles = %d", got)
	}
}

func TestPutEmptyDeletes(t *testing.T) {
	m := New()
	m.Add("a", nonNil())
	m.Add("b", nonNil())
	m.Put("a", "b", path.MustParseSet("L1"))
	m.Put("a", "b", path.EmptySet())
	if !m.Get("a", "b").IsEmpty() {
		t.Error("empty Put should delete")
	}
	// Put on unknown handles is a no-op.
	m.Put("zz", "a", path.MustParseSet("L1"))
	if !m.Get("zz", "a").IsEmpty() {
		t.Error("Put on unknown handle should be ignored")
	}
}

func TestRelatedAndMayAlias(t *testing.T) {
	m := New()
	for _, h := range []Handle{"a", "b", "c"} {
		m.Add(h, nonNil())
	}
	m.Put("a", "b", path.MustParseSet("L1"))
	if !m.Related("a", "b") || !m.Related("b", "a") {
		t.Error("a,b related both ways")
	}
	if m.Related("b", "c") {
		t.Error("b,c unrelated")
	}
	if m.MayAlias("a", "b") {
		t.Error("L1 is not an alias")
	}
	m.Put("a", "c", path.MustParseSet("S?"))
	if !m.MayAlias("a", "c") || !m.MayAlias("c", "a") {
		t.Error("S? should alias both ways")
	}
	if !m.MayAlias("a", "a") {
		t.Error("self-alias")
	}
}

func TestMergeDefiniteBothSides(t *testing.T) {
	a := New()
	a.Add("x", nonNil())
	a.Add("y", nonNil())
	a.Put("x", "y", path.MustParseSet("L1"))
	b := a.Copy()
	m := a.Merge(b)
	if got := m.Get("x", "y").String(); got != "L1" {
		t.Errorf("def/def merge = %q", got)
	}
	if got := m.Get("x", "x").String(); got != "S" {
		t.Errorf("diagonal after merge = %q", got)
	}
}

func TestMergeOneSided(t *testing.T) {
	a := New()
	a.Add("x", nonNil())
	a.Add("y", nonNil())
	a.Put("x", "y", path.MustParseSet("L1"))
	b := New()
	b.Add("x", nonNil())
	b.Add("y", nonNil())
	m := a.Merge(b)
	if got := m.Get("x", "y").String(); got != "L1?" {
		t.Errorf("one-sided merge = %q", got)
	}
	// Handle live on one side only: stays, nilness degrades to maybe.
	c := New()
	c.Add("x", nonNil())
	m2 := a.Merge(c)
	if !m2.Has("y") {
		t.Error("y should survive merge")
	}
	if m2.Attr("y").Nil != MaybeNil {
		t.Errorf("y nilness = %v, want maybe", m2.Attr("y").Nil)
	}
}

func TestMergeShapeTakesWorst(t *testing.T) {
	a := New()
	b := New()
	b.SetShape(ShapeMaybeDAG)
	if got := a.Merge(b).Shape(); got != ShapeMaybeDAG {
		t.Errorf("shape = %v", got)
	}
	b.SetShape(ShapeCyclic)
	if got := b.Shape(); got != ShapeCyclic {
		t.Errorf("SetShape should degrade: %v", got)
	}
	b.SetShape(ShapeTree) // cannot improve
	if got := b.Shape(); got != ShapeCyclic {
		t.Errorf("SetShape must not improve: %v", got)
	}
	b.ResetShape(ShapeTree)
	if got := b.Shape(); got != ShapeTree {
		t.Errorf("ResetShape: %v", got)
	}
}

func TestMergeAttrLattices(t *testing.T) {
	a := New()
	a.Add("x", Attr{Nil: NonNil, Indeg: Root})
	b := New()
	b.Add("x", Attr{Nil: DefNil, Indeg: Attached})
	m := a.Merge(b)
	if got := m.Attr("x"); got != (Attr{Nil: MaybeNil, Indeg: UnknownDeg}) {
		t.Errorf("attr join = %+v", got)
	}
	c := New()
	c.Add("x", Attr{Nil: NonNil, Indeg: Shared})
	if got := a.Merge(c).Attr("x").Indeg; got != Shared {
		t.Errorf("shared absorbs: %v", got)
	}
}

func TestEqualIgnoresOrder(t *testing.T) {
	a := New()
	a.Add("x", nonNil())
	a.Add("y", nonNil())
	a.Put("x", "y", path.MustParseSet("L1"))
	b := New()
	b.Add("y", nonNil())
	b.Add("x", nonNil())
	b.Put("x", "y", path.MustParseSet("L1"))
	if !a.Equal(b) {
		t.Error("Equal should ignore insertion order")
	}
	b.Put("x", "y", path.MustParseSet("L1?"))
	if a.Equal(b) {
		t.Error("flag difference must be detected")
	}
}

func TestMergeIdempotentAndCommutative(t *testing.T) {
	mk := func(seed int64) *Matrix {
		m := New()
		hs := []Handle{"a", "b", "c"}
		for _, h := range hs {
			m.Add(h, nonNil())
		}
		sets := []string{"", "S?", "L1", "L+, R1?", "D+"}
		s := seed
		next := func() int64 { s = s*6364136223846793005 + 1442695040888963407; return s }
		for _, r := range hs {
			for _, c := range hs {
				if r == c {
					continue
				}
				pick := sets[int(uint64(next())%uint64(len(sets)))]
				if pick != "" {
					m.Put(r, c, path.MustParseSet(pick))
				}
			}
		}
		return m
	}
	f := func(sa, sb int64) bool {
		a, b := mk(sa), mk(sb)
		if !a.Merge(a).Equal(a) {
			t.Log("merge not idempotent")
			return false
		}
		return a.Merge(b).Equal(b.Merge(a))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRename(t *testing.T) {
	m := New()
	m.Add("a", nonNil())
	m.Add("b", nonNil())
	m.Put("a", "b", path.MustParseSet("L1"))
	r := m.Rename(map[Handle]Handle{"a": "h", "b": "l"})
	if !r.Has("h") || !r.Has("l") || r.Has("a") {
		t.Errorf("rename handles: %v", r.Handles())
	}
	if got := r.Get("h", "l").String(); got != "L1" {
		t.Errorf("rename entry = %q", got)
	}
}

// TestRenameNonInjective is the regression test for the silent-drop bug:
// with a non-injective substitution the old last-Put-wins behavior lost
// colliding entries and attribute evidence. Colliding entries must union
// and attributes must join in their lattices.
func TestRenameNonInjective(t *testing.T) {
	m := New()
	m.Add("a", Attr{Nil: NonNil, Indeg: Root})
	m.Add("b", Attr{Nil: NonNil, Indeg: Shared})
	m.Add("x", nonNil())
	m.Put("a", "x", path.MustParseSet("L1"))
	m.Put("b", "x", path.MustParseSet("R1?"))
	m.Put("x", "a", path.MustParseSet("S?"))
	r := m.Rename(map[Handle]Handle{"a": "c", "b": "c"})
	if r.Has("a") || r.Has("b") || !r.Has("c") {
		t.Fatalf("rename handles: %v", r.Handles())
	}
	// Both outgoing entries survive as a union, not last-wins.
	if got := r.Get("c", "x").String(); got != "L1, R1?" {
		t.Errorf("collided entry = %q, want union L1, R1?", got)
	}
	if got := r.Get("x", "c").String(); got != "S?" {
		t.Errorf("reverse entry = %q", got)
	}
	// Shared indegree evidence from b must survive the attribute join.
	if got := r.Attr("c").Indeg; got != Shared {
		t.Errorf("merged indegree = %v, want shared", got)
	}
	if got := r.Attr("c").Nil; got != NonNil {
		t.Errorf("merged nilness = %v, want nonnil", got)
	}
	// An injective rename is unchanged by the fix.
	inj := m.Rename(map[Handle]Handle{"a": "p", "b": "q"})
	if got := inj.Get("p", "x").String(); got != "L1" {
		t.Errorf("injective entry = %q", got)
	}
	if got := inj.Attr("p"); got != (Attr{Nil: NonNil, Indeg: Root}) {
		t.Errorf("injective attr = %+v", got)
	}
}

func TestProject(t *testing.T) {
	m := New()
	for _, h := range []Handle{"a", "b", "c"} {
		m.Add(h, nonNil())
	}
	m.Put("a", "b", path.MustParseSet("L1"))
	m.Put("a", "c", path.MustParseSet("R1"))
	p := m.Project([]Handle{"a", "b"})
	if p.Has("c") {
		t.Error("c should be projected away")
	}
	if got := p.Get("a", "b").String(); got != "L1" {
		t.Errorf("projected entry = %q", got)
	}
	if !p.Get("a", "c").IsEmpty() {
		t.Error("entry to projected handle should vanish")
	}
}

func TestFingerprintStableUnderOrder(t *testing.T) {
	a := New()
	a.Add("x", nonNil())
	a.Add("y", nonNil())
	a.Put("x", "y", path.MustParseSet("L1"))
	b := New()
	b.Add("y", nonNil())
	b.Add("x", nonNil())
	b.Put("x", "y", path.MustParseSet("L1"))
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("Fingerprint must be order-insensitive")
	}
	b.Put("y", "x", path.MustParseSet("S?"))
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("Fingerprint must reflect entries")
	}
	b.Put("y", "x", path.EmptySet())
	if a.Fingerprint() != b.Fingerprint() {
		t.Error("deleting the entry must restore the fingerprint")
	}
	b.SetAttr("y", Attr{Nil: MaybeNil, Indeg: Shared})
	if a.Fingerprint() == b.Fingerprint() {
		t.Error("Fingerprint must reflect attributes")
	}
}

// TestFingerprintIncrementalAgreesWithRecompute drives random mutation and
// derivation sequences and checks the incrementally maintained fingerprint
// against the from-scratch roll-up — the invariant the Equal fast-reject
// and the summary memoization rely on.
func TestFingerprintIncrementalAgreesWithRecompute(t *testing.T) {
	handles := []Handle{"a", "b", "c", "d"}
	sets := []string{"", "S?", "L1", "L+, R1?", "D+", "S, D2+?"}
	f := func(seed int64) bool {
		s := seed
		next := func(n int) int {
			s = s*6364136223846793005 + 1442695040888963407
			return int(uint64(s) % uint64(n))
		}
		m := New()
		check := func(stage string, mm *Matrix) bool {
			if mm.Fingerprint() != mm.recomputeFP() {
				t.Logf("seed %d: %s: incremental fp diverged from recompute", seed, stage)
				return false
			}
			return true
		}
		for op := 0; op < 40; op++ {
			switch next(7) {
			case 0:
				m.Add(handles[next(len(handles))], Attr{Nil: Nilness(next(3)), Indeg: Indegree(next(4))})
			case 1:
				m.Remove(handles[next(len(handles))])
			case 2:
				pick := sets[next(len(sets))]
				set := path.EmptySet()
				if pick != "" {
					set = path.MustParseSet(pick)
				}
				m.Put(handles[next(len(handles))], handles[next(len(handles))], set)
			case 3:
				m.SetShape(Shape(next(5)))
			case 4:
				m.SetAttr(handles[next(len(handles))], Attr{Nil: Nilness(next(3)), Indeg: Indegree(next(4))})
			case 5:
				m.AddPaths(handles[next(len(handles))], handles[next(len(handles))], path.MustParseSet("L1?"))
			case 6:
				m.Widen(path.Limits{MaxExact: 2, MaxSegs: 2, MaxPaths: 2})
			}
			if !check("mutate", m) {
				return false
			}
		}
		other := m.Copy()
		other.Add("e", nonNil())
		for _, stage := range []struct {
			name string
			mm   *Matrix
		}{
			{"copy", m.Copy()},
			{"merge", m.Merge(other)},
			{"rename", m.Rename(map[Handle]Handle{"a": "z", "b": "z"})},
			{"project", m.Project([]Handle{"a", "b"})},
		} {
			if !check(stage.name, stage.mm) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestWiden(t *testing.T) {
	m := New()
	m.Add("a", nonNil())
	m.Add("b", nonNil())
	m.Put("a", "b", path.MustParseSet("L5"))
	m.Widen(path.Limits{MaxExact: 2, MaxSegs: 6, MaxPaths: 8})
	if got := m.Get("a", "b").String(); got != "L2+" {
		t.Errorf("widen = %q", got)
	}
}

func TestStringLayout(t *testing.T) {
	m := New()
	m.Add("root", nonNil())
	m.Add("lside", nonNil())
	m.Put("root", "lside", path.MustParseSet("L1"))
	s := m.String()
	if !strings.Contains(s, "L1") || !strings.Contains(s, "shape: TREE") {
		t.Errorf("String = %q", s)
	}
}

func TestSymbolicHandles(t *testing.T) {
	if Symbolic(2) != "h*2" || Stacked(2) != "h**2" {
		t.Errorf("symbolic names: %s %s", Symbolic(2), Stacked(2))
	}
	if !Symbolic(1).IsSymbolic() || !Stacked(1).IsSymbolic() {
		t.Error("IsSymbolic")
	}
	if Handle("root").IsSymbolic() {
		t.Error("root is not symbolic")
	}
}

func TestShapeStrings(t *testing.T) {
	want := map[Shape]string{
		ShapeTree: "TREE", ShapeMaybeDAG: "DAG?", ShapeDAG: "DAG",
		ShapeMaybeCyclic: "CYCLE?", ShapeCyclic: "CYCLE",
	}
	for s, w := range want {
		if s.String() != w {
			t.Errorf("%d -> %q want %q", s, s.String(), w)
		}
	}
	if !ShapeTree.IsTree() || ShapeMaybeDAG.IsTree() {
		t.Error("IsTree")
	}
	if !ShapeDAG.DefinitelyAcyclic() || ShapeMaybeCyclic.DefinitelyAcyclic() {
		t.Error("DefinitelyAcyclic")
	}
}

// TestHandleIDsNotReusedAcrossEpochs: like path node IDs, handle IDs must
// be monotonic across Space resets — a stale matrix's packed entry keys
// must never collide with a fresh handle's ID and silently resolve to the
// wrong entry (the benign-failure clause of the epoch contract).
func TestHandleIDsNotReusedAcrossEpochs(t *testing.T) {
	sp := DefaultSpace()
	a := sp.idOf("epoch-probe-a")
	path.DefaultSpace().Reset()
	if got := InternedHandles(); got != 0 {
		t.Fatalf("reset must empty the handle table, have %d", got)
	}
	b := sp.idOf("epoch-probe-b")
	if b <= a {
		t.Errorf("handle ID %d reused/regressed across epochs (previous %d)", b, a)
	}
	if sp.nameOf(b) != "epoch-probe-b" {
		t.Errorf("nameOf(%d) = %q", b, sp.nameOf(b))
	}
}

// TestSpacesIsolated: two matrix Spaces are fully independent — interning
// in one never shows up in the other, and resetting one leaves the other's
// tables (and in-flight matrices) intact. This is the property the
// per-session service Spaces rely on.
func TestSpacesIsolated(t *testing.T) {
	spA := NewSpace(path.NewSpace())
	spB := NewSpace(path.NewSpace())
	mA, mB := NewIn(spA), NewIn(spB)
	mA.Add("x", Attr{Nil: NonNil, Indeg: Root})
	mA.Add("y", Attr{Nil: NonNil, Indeg: Root})
	mA.AddPaths("x", "y", path.NewSet(spA.Paths().New(path.Exact(path.LeftD, 1))))
	mB.Add("x", Attr{Nil: NonNil, Indeg: Root})
	if got := spB.InternedHandles(); got != 1 {
		t.Fatalf("space B saw %d handles, want its own 1", got)
	}
	if got := spA.InternedHandles(); got != 2 {
		t.Fatalf("space A saw %d handles, want 2", got)
	}
	epochA := spA.Paths().Epoch()
	spB.Paths().Reset()
	if spA.Paths().Epoch() != epochA {
		t.Fatalf("resetting space B bumped space A's epoch")
	}
	if got := spA.InternedHandles(); got != 2 {
		t.Fatalf("resetting space B dropped space A's handles (%d left)", got)
	}
	if got := mA.Get("x", "y").String(); got != "L1" {
		t.Fatalf("space A matrix entry damaged by space B reset: %q", got)
	}
	if got := spB.InternedHandles(); got != 0 {
		t.Fatalf("space B reset left %d handles", got)
	}
}

func TestAttrStrings(t *testing.T) {
	if DefNil.String() != "nil" || NonNil.String() != "nonnil" || MaybeNil.String() != "maybe" {
		t.Error("nilness strings")
	}
	if Root.String() != "root" || Attached.String() != "attached" || Shared.String() != "shared" || UnknownDeg.String() != "unknown" {
		t.Error("indegree strings")
	}
}

func TestAddPaths(t *testing.T) {
	m := New()
	m.Add("a", nonNil())
	m.Add("b", nonNil())
	m.AddPaths("a", "b", path.MustParseSet("L1"))
	m.AddPaths("a", "b", path.MustParseSet("R1?"))
	if got := m.Get("a", "b").String(); got != "L1, R1?" {
		t.Errorf("AddPaths = %q", got)
	}
	m.AddPaths("a", "b", path.EmptySet())
	if got := m.Get("a", "b").String(); got != "L1, R1?" {
		t.Errorf("AddPaths empty changed entry: %q", got)
	}
}
