package matrix

import (
	"fmt"

	"repro/internal/path"
)

// Per-matrix 128-bit fingerprints. Every component of the convergence
// identity — the sticky shape, each (handle, attribute) record, and each
// (row, col) → path-set entry — contributes a two-lane hash; lanes combine
// by modular addition, so the fingerprint is independent of map iteration
// and handle insertion order and is maintained incrementally: every
// mutation subtracts the old contribution and adds the new one instead of
// re-rendering the matrix. This replaces the sorted-string Matrix.Key of
// the §5.2 summary memoization with a fixed-size comparable value.
//
// Fingerprint equality is a filter, not an identity: Equal uses it only to
// reject fast, and the analysis summary memo keys by Fp but verifies
// structurally on hit (the collision fallback). Fingerprints incorporate
// interned path and handle IDs, so they are only comparable within one
// path.Space epoch.

// Fp is a 128-bit matrix fingerprint, comparable and usable as a map key.
type Fp struct{ Hi, Lo uint64 }

// String renders the fingerprint as 32 hex digits (debugging/test output).
func (f Fp) String() string { return fmt.Sprintf("%016x%016x", f.Hi, f.Lo) }

const (
	fpStickySeed uint64 = 0x8ebc6af09c88c6e3
	fpAttrSeed   uint64 = 0x589965cc75374cc3
	fpEntrySeed  uint64 = 0x1d8e4e27c47d124f
)

func fpLanes(x, seed uint64) Fp {
	return Fp{path.Mix64(x + seed), path.Mix64(path.Mix64(x) ^ seed)}
}

// stickyFP is the contribution of the sticky shape verdict.
func stickyFP(s Shape) Fp { return fpLanes(uint64(s)+1, fpStickySeed) }

// attrFP is the contribution of one live handle's attribute record, keyed
// by the handle's ID in the matrix's Space.
func attrFP(sp *Space, h Handle, a Attr) Fp {
	x := uint64(sp.idOf(h))<<16 | uint64(a.Nil)<<8 | uint64(a.Indeg)
	return fpLanes(x, fpAttrSeed)
}

// entryFP is the contribution of one non-empty matrix entry: the packed
// handle-pair key mixed with the set's own 128-bit fingerprint.
func entryFP(k entryKey, s path.Set) Fp {
	f := s.Fingerprint()
	return Fp{
		path.Mix64(uint64(k) + fpEntrySeed + f[0]),
		path.Mix64(path.Mix64(uint64(k)) ^ fpEntrySeed ^ f[1]),
	}
}

func (m *Matrix) fpAdd(d Fp) { m.fp.Hi += d.Hi; m.fp.Lo += d.Lo }
func (m *Matrix) fpSub(d Fp) { m.fp.Hi -= d.Hi; m.fp.Lo -= d.Lo }

// recomputeFP derives the fingerprint from scratch; it is the reference
// the incremental maintenance is property-tested against.
func (m *Matrix) recomputeFP() Fp {
	fp := stickyFP(m.sticky)
	for h, a := range m.attrs {
		f := attrFP(m.sp, h, a)
		fp.Hi += f.Hi
		fp.Lo += f.Lo
	}
	for k, v := range m.entries {
		f := entryFP(k, v)
		fp.Hi += f.Hi
		fp.Lo += f.Lo
	}
	return fp
}

// Fingerprint returns the matrix's order-independent 128-bit fingerprint:
// equal matrices (same handles, attributes, entries, and sticky shape —
// exactly the Equal relation) always share a fingerprint, distinct ones
// collide with probability ~2^-128. It replaces the former string Key() as
// the §5.2 summary-memoization key; consumers must keep an Equal fallback
// for collisions and must not compare fingerprints across Space epochs.
func (m *Matrix) Fingerprint() Fp { return m.fp }
