// Package lintest is the analysistest counterpart for lintkit analyzers:
// it loads a testdata package, collects the `// want "regexp"` expectations
// from its comments, runs one analyzer, and diffs reported findings against
// the expectations line by line.
package lintest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"repro/internal/lint/lintkit"
)

// wantRx matches one expectation: `// want "rx"` or `// want `+"`rx`"+“.
// Multiple expectations may share one comment: // want "a" "b".
var wantRx = regexp.MustCompile("\"(?:[^\"\\\\]|\\\\.)*\"|`[^`]*`")

type expectation struct {
	file string
	line int
	rx   *regexp.Regexp
	met  bool
}

// Run loads dir as one package (test files included, so analyzers'
// _test.go exemptions are exercised), runs the analyzer, and reports any
// mismatch between findings and `// want` expectations on t.
func Run(t *testing.T, analyzer *lintkit.Analyzer, dir string) {
	t.Helper()
	loader := lintkit.NewLoader()
	pkg, err := loader.LoadDir("testdata/"+filepath.Base(dir), dir, true)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	expects := collectExpectations(t, pkg)
	diags, err := lintkit.RunAnalyzers(pkg, []*lintkit.Analyzer{analyzer})
	if err != nil {
		t.Fatalf("running %s on %s: %v", analyzer.Name, dir, err)
	}
	for _, d := range diags {
		if !matchExpectation(expects, d) {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, e := range expects {
		if !e.met {
			t.Errorf("%s:%d: expected finding matching %q, got none", e.file, e.line, e.rx)
		}
	}
}

// RunTree is the multi-package counterpart of Run: it loads every package
// directory under root as one program (the root directory becomes package
// base(root), subdirectories become base(root)/<relative-path>, and
// fixtures may import each other by those paths), runs the analyzers over
// the whole program so cross-package facts propagate, and diffs findings
// against `// want` expectations found in any file of the tree.
func RunTree(t *testing.T, analyzers []*lintkit.Analyzer, root string) {
	t.Helper()
	loader := lintkit.NewLoader()
	pkgs, err := loader.LoadTree(filepath.Base(root), root, true)
	if err != nil {
		t.Fatalf("loading tree %s: %v", root, err)
	}
	var expects []*expectation
	for _, pkg := range pkgs {
		expects = append(expects, collectExpectations(t, pkg)...)
	}
	diags, err := lintkit.NewProgram(pkgs).Run(analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", root, err)
	}
	for _, d := range diags {
		if !matchExpectation(expects, d) {
			t.Errorf("unexpected finding: %s", d)
		}
	}
	for _, e := range expects {
		if !e.met {
			t.Errorf("%s:%d: expected finding matching %q, got none", e.file, e.line, e.rx)
		}
	}
}

func collectExpectations(t *testing.T, pkg *lintkit.Package) []*expectation {
	t.Helper()
	var out []*expectation
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				idx := strings.Index(text, "// want ")
				if idx < 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, lit := range wantRx.FindAllString(text[idx+len("// want "):], -1) {
					var pat string
					if lit[0] == '`' {
						pat = lit[1 : len(lit)-1]
					} else {
						var err error
						pat, err = strconv.Unquote(lit)
						if err != nil {
							t.Fatalf("%s: bad want pattern %s: %v", pos, lit, err)
						}
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, pat, err)
					}
					out = append(out, &expectation{file: pos.Filename, line: pos.Line, rx: rx})
				}
			}
		}
	}
	return out
}

func matchExpectation(expects []*expectation, d lintkit.Diagnostic) bool {
	for _, e := range expects {
		if !e.met && e.file == d.Pos.Filename && e.line == d.Pos.Line && e.rx.MatchString(d.Message) {
			e.met = true
			return true
		}
	}
	return false
}
