// Package internedeq enforces the two halves of the repo's equality
// discipline (PR 1's interning): interned values (path.Path and the nodes
// behind it) are canonical, so they are compared with ==/EqualExpr —
// reflect.DeepEqual on them is a slow re-derivation of pointer equality;
// conversely, non-interned content types that define an Equal method
// (*matrix.Matrix, path.Set) must be compared with Equal — == on a
// *matrix.Matrix compares identity, not content, and reflect.DeepEqual on
// one compares memo caches that differ between structurally equal values.
package internedeq

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/lintkit"
)

// internedTypes are the canonical-by-construction types: one node per
// distinct value per Space, equality is pointer equality.
var internedTypes = map[[2]string]string{
	{"repro/internal/path", "Path"}: "path.Path is interned: compare with == / Equal / EqualExpr, not reflect.DeepEqual",
}

// Analyzer is the internedeq check.
var Analyzer = &lintkit.Analyzer{
	Name: "internedeq",
	Doc: "interned types are compared with ==; content types defining an " +
		"Equal method are compared with Equal (never pointer == or " +
		"reflect.DeepEqual)",
	Run: run,
}

func run(pass *lintkit.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				checkDeepEqual(pass, n)
			case *ast.BinaryExpr:
				checkPointerCompare(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkDeepEqual flags reflect.DeepEqual whose arguments are interned
// values or content types with an Equal method.
func checkDeepEqual(pass *lintkit.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "DeepEqual" {
		return
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
	if !ok || pkgName.Imported().Path() != "reflect" {
		return
	}
	for _, arg := range call.Args {
		tv, ok := pass.TypesInfo.Types[arg]
		if !ok || tv.Type == nil {
			continue
		}
		t := deref(tv.Type)
		if msg, interned := internedTypeMessage(t); interned {
			pass.Reportf(call.Pos(), "reflect.DeepEqual on interned type %s: %s", types.TypeString(t, nil), msg)
			return
		}
		if hasEqualMethod(t) && declaredOutside(pass, t) {
			pass.Reportf(call.Pos(),
				"reflect.DeepEqual on %s compares unexported cache state; use its Equal method",
				types.TypeString(t, nil))
			return
		}
	}
}

// checkPointerCompare flags ==/!= between two pointers to a content type
// that defines an Equal method: pointer identity is not content equality.
// Comparisons against nil stay legal, as does the defining package itself
// (it implements Equal and may legitimately compare identity).
func checkPointerCompare(pass *lintkit.Pass, bin *ast.BinaryExpr) {
	if bin.Op != token.EQL && bin.Op != token.NEQ {
		return
	}
	if isNilLiteral(pass, bin.X) || isNilLiteral(pass, bin.Y) {
		return
	}
	tx, ok := pass.TypesInfo.Types[bin.X]
	if !ok || tx.Type == nil {
		return
	}
	ptr, ok := tx.Type.Underlying().(*types.Pointer)
	if !ok {
		return
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return
	}
	if _, isStruct := named.Underlying().(*types.Struct); !isStruct {
		return
	}
	if _, interned := internedTypeMessage(named); interned {
		return // pointer identity IS equality for interned nodes
	}
	if !hasEqualMethod(named) || !declaredOutside(pass, named) {
		return
	}
	pass.Reportf(bin.OpPos,
		"%s on *%s compares pointer identity, not content; use Equal (or //sillint:allow internedeq when identity is intended)",
		bin.Op, named.Obj().Name())
}

// deref strips one level of pointer indirection.
func deref(t types.Type) types.Type {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		return ptr.Elem()
	}
	return t
}

func internedTypeMessage(t types.Type) (string, bool) {
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", false
	}
	msg, ok := internedTypes[[2]string{named.Obj().Pkg().Path(), named.Obj().Name()}]
	return msg, ok
}

// hasEqualMethod reports whether t (or *t) defines Equal(T) bool for some
// parameter shape — the marker of a content type.
func hasEqualMethod(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	for i := 0; i < named.NumMethods(); i++ {
		m := named.Method(i)
		if m.Name() != "Equal" {
			continue
		}
		sig := m.Type().(*types.Signature)
		if sig.Params().Len() == 1 && sig.Results().Len() == 1 &&
			types.Identical(sig.Results().At(0).Type(), types.Typ[types.Bool]) {
			return true
		}
	}
	return false
}

// declaredOutside reports whether t is declared outside the package under
// analysis — a package may pointer-compare or deep-walk its own values.
func declaredOutside(pass *lintkit.Pass, t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Pkg() != nil && named.Obj().Pkg().Path() != pass.Pkg.Path()
}

func isNilLiteral(pass *lintkit.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.IsNil()
}
