// Package ieq is internedeq testdata: equality discipline for interned
// values vs content types.
package ieq

import (
	"reflect"

	"repro/internal/matrix"
	"repro/internal/path"
)

// deepEqualOnInterned re-derives pointer equality the slow way: finding.
func deepEqualOnInterned(p, q path.Path) bool {
	return reflect.DeepEqual(p, q) // want `reflect\.DeepEqual on interned type .*Path`
}

// internedCompares are the blessed forms.
func internedCompares(p, q path.Path) bool {
	return p == q || p.Equal(q) || p.EqualExpr(q)
}

// deepEqualOnContent walks unexported memo caches that differ between
// structurally equal matrices: finding.
func deepEqualOnContent(a, b *matrix.Matrix) bool {
	return reflect.DeepEqual(a, b) // want `reflect\.DeepEqual on .*Matrix compares unexported cache state`
}

// deepEqualOnSet likewise: Set carries a fingerprint cache.
func deepEqualOnSet(a, b path.Set) bool {
	return reflect.DeepEqual(a, b) // want `reflect\.DeepEqual on .*Set compares unexported cache state`
}

// deepEqualOnPlainData has no Equal contract to violate: clean.
func deepEqualOnPlainData(a, b []string) bool {
	return reflect.DeepEqual(a, b)
}

// pointerCompareOnContent compares identity where content was meant:
// finding.
func pointerCompareOnContent(a, b *matrix.Matrix) bool {
	if a == b { // want `== on \*Matrix compares pointer identity, not content`
		return true
	}
	return a != b // want `!= on \*Matrix compares pointer identity, not content`
}

// contentCompares uses the Equal contract: clean.
func contentCompares(a, b *matrix.Matrix) bool {
	return a.Equal(b)
}

// nilChecks are not content comparisons: clean.
func nilChecks(a *matrix.Matrix) bool {
	return a == nil || nil != a
}

// identityIntended is the audited escape hatch for alias/sharing checks.
func identityIntended(a, b *matrix.Matrix) bool {
	return a == b //sillint:allow internedeq sharing check: exit aliasing is identity by design
}

// localContent is declared in this package: a package may pointer-compare
// its own values, so this is clean.
type localContent struct{ n int }

func (c *localContent) Equal(o *localContent) bool { return c.n == o.n }

func ownPackageIdentity(a, b *localContent) bool {
	return a == b
}
