package internedeq_test

import (
	"testing"

	"repro/internal/lint/internedeq"
	"repro/internal/lint/lintest"
)

// TestEqualityDiscipline seeds both halves of the rule: DeepEqual on
// interned/content types and pointer == on content types (positive), and
// the blessed forms — == on interned values, Equal on content types, nil
// checks, own-package identity, //sillint:allow — as negatives.
func TestEqualityDiscipline(t *testing.T) {
	lintest.Run(t, internedeq.Analyzer, "testdata/src/ieq")
}
