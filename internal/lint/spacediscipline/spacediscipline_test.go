package spacediscipline_test

import (
	"testing"

	"repro/internal/lint/lintest"
	"repro/internal/lint/spacediscipline"
)

// TestLibraryPackage seeds every banned process-global form (positive
// cases), the Space-receiver forms (negative cases), the //sillint:allow
// escape hatch, and the _test.go exemption.
func TestLibraryPackage(t *testing.T) {
	lintest.Run(t, spacediscipline.Analyzer, "testdata/src/a")
}

// TestMainPackageExempt proves package main is a composition root: the
// same banned forms produce zero findings.
func TestMainPackageExempt(t *testing.T) {
	lintest.Run(t, spacediscipline.Analyzer, "testdata/src/mainpkg")
}
