// Package spacediscipline enforces the per-Space isolation invariant from
// the Space refactor (PR 6): library code threads an explicit *path.Space /
// *matrix.Space and never falls back to the process-global one. The
// process-global convenience forms (path.DefaultSpace, path.Parse,
// matrix.New, ...) are for composition roots — package main binaries and
// test files — where the choice of the global Space is an explicit
// top-level decision, not a silent default deep in a call chain.
package spacediscipline

import (
	"go/ast"
	"go/types"

	"repro/internal/lint/lintkit"
)

// banned maps the import path of a Space-owning package to its
// process-global convenience functions and, per function, the
// Space-receiver form library code must use instead.
var banned = map[string]map[string]string{
	"repro/internal/path": {
		"DefaultSpace":  "thread a *path.Space (path.NewSpace, or the Space owned by the caller)",
		"New":           "use (*path.Space).New",
		"NewPossible":   "use (*path.Space).NewPossible",
		"Parse":         "use (*path.Space).Parse",
		"MustParse":     "use (*path.Space).Parse on an explicit Space",
		"ParseSet":      "use (*path.Space).ParseSet",
		"MustParseSet":  "use (*path.Space).ParseSet on an explicit Space",
		"InternedCount": "use (*path.Space).InternedCount",
	},
	"repro/internal/matrix": {
		"DefaultSpace":    "thread a *matrix.Space (matrix.NewSpace, or Options.Space)",
		"New":             "use matrix.NewIn with an explicit *matrix.Space",
		"InternedHandles": "use (*matrix.Space).InternedHandles",
	},
}

// Analyzer is the spacediscipline check.
var Analyzer = &lintkit.Analyzer{
	Name: "spacediscipline",
	Doc: "forbid process-global Space fallbacks (path.DefaultSpace, path.Parse, " +
		"matrix.New, ...) outside package main and _test.go files, so library " +
		"code always interns into an explicitly threaded Space",
	Run: run,
}

func run(pass *lintkit.Pass) error {
	// Composition roots pick the global Space deliberately; the defining
	// packages implement it. Both are exempt wholesale.
	if pass.Pkg.Name() == "main" {
		return nil
	}
	if _, defining := banned[pass.Pkg.Path()]; defining {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
			if !ok {
				return true
			}
			fns := banned[pkgName.Imported().Path()]
			if fns == nil {
				return true
			}
			fix, ok := fns[sel.Sel.Name]
			if !ok {
				return true
			}
			pass.Reportf(sel.Pos(),
				"%s.%s binds the process-global Space in library code; %s",
				pkgName.Imported().Name(), sel.Sel.Name, fix)
			return true
		})
	}
	return nil
}
