// Package main is a composition root: binaries pick the process-global
// Space deliberately, so no form is a finding here.
package main

import (
	"repro/internal/matrix"
	"repro/internal/path"
)

func main() {
	_ = path.DefaultSpace()
	_ = path.MustParseSet("S, D+?")
	_ = matrix.New()
	_ = matrix.DefaultSpace()
}
