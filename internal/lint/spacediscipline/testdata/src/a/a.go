// Package a is spacediscipline testdata: a library package that must
// thread Spaces explicitly.
package a

import (
	"repro/internal/matrix"
	"repro/internal/path"
)

// Bad: every process-global convenience form is a finding in library code.
func bad() {
	_ = path.DefaultSpace()                 // want `path\.DefaultSpace binds the process-global Space`
	_ = path.New(path.Exact(path.DownD, 1)) // want `path\.New binds the process-global Space`
	_, _ = path.Parse("D+")                 // want `path\.Parse binds the process-global Space`
	_ = path.MustParse("D+")                // want `path\.MustParse binds the process-global Space`
	_ = path.MustParseSet("S, D+?")         // want `path\.MustParseSet binds the process-global Space`
	_ = path.InternedCount()                // want `path\.InternedCount binds the process-global Space`
	_ = matrix.New()                        // want `matrix\.New binds the process-global Space`
	_ = matrix.DefaultSpace()               // want `matrix\.DefaultSpace binds the process-global Space`
	_ = matrix.InternedHandles()            // want `matrix\.InternedHandles binds the process-global Space`
	_, _ = path.ParseSet("S, R1D+?")        // want `path\.ParseSet binds the process-global Space`
}

// Good: Space-receiver forms thread an explicit Space.
func good(psp *path.Space, msp *matrix.Space) {
	_ = psp.New(path.Exact(path.DownD, 1))
	_, _ = psp.Parse("D+")
	_, _ = psp.ParseSet("S, D+?")
	_ = psp.InternedCount()
	_ = matrix.NewIn(msp)
	_ = msp.InternedHandles()
	_ = path.NewSet(path.Same()) // Space-neutral: aggregates interned values
	_ = path.NewSpace()          // creating a fresh Space is the fix, not a finding
	_ = matrix.NewSpace(path.NewSpace())
}

// allowed: an explicit, audited fallback is suppressed case by case.
func allowed() {
	_ = matrix.DefaultSpace() //sillint:allow spacediscipline audited composition-root fallback
	//sillint:allow spacediscipline directive on the preceding line also suppresses
	_ = path.DefaultSpace()
}
