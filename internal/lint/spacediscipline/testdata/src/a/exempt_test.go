package a

import (
	"repro/internal/matrix"
	"repro/internal/path"
)

// _test.go files are exempt: tests legitimately exercise the process-wide
// convenience API. No findings expected anywhere in this file.
func testOnlyHelpers() {
	_ = path.DefaultSpace()
	_ = path.MustParse("D+")
	_ = matrix.New()
	_ = matrix.DefaultSpace()
}
