// Package dep mirrors ctxtree/dep without expectations: out of Scope,
// the same shapes must be silent.
package dep

func Fetch(ch chan int) int { return <-ch }

func Indirect(ch chan int) int { return Fetch(ch) }
