// Package ctxclean repeats the ctxtree violations outside ctxflow's
// Scope; none of them may report.
package ctxclean

import (
	"context"

	"ctxclean/dep"
)

func Handle(ctx context.Context, ch chan int) int {
	<-ctx.Done()
	return dep.Indirect(ch)
}

func Dropped(ctx context.Context, ch chan int) int {
	return <-ch
}

func Detaches() context.Context {
	return context.Background()
}
