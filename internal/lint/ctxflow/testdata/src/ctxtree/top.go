// Package ctxtree is the in-Scope side of the ctxflow fixtures: the
// violations here are only visible through callees in the sibling package
// dep.
package ctxtree

import (
	"context"

	"ctxtree/dep"
)

// Handle holds a ctx but hands work to a blocking callee that cannot
// receive it — and the blocking is two calls away, in another package.
func Handle(ctx context.Context, ch chan int) int {
	<-ctx.Done()
	return dep.Indirect(ch) // want `blocking callee Indirect cannot receive this function's ctx \(.*dep\.Indirect -> .*dep\.Fetch: channel receive\)`
}

// Threaded forwards its ctx to a callee that accepts one: clean.
func Threaded(ctx context.Context, ch chan int) int {
	return dep.Poll(ctx, ch)
}

// CallsPure calls a non-blocking callee without forwarding ctx: clean.
func CallsPure(ctx context.Context, n int) int {
	<-ctx.Done()
	return dep.Pure(n)
}

// Dropped receives a ctx, never consults it, and blocks.
func Dropped(ctx context.Context, ch chan int) int { // want `Dropped receives a ctx but drops it before blocking`
	return <-ch
}

// Blank declares its context away entirely while blocking.
func Blank(_ context.Context, ch chan int) int { // want `Blank receives a ctx but drops it before blocking`
	return <-ch
}

// Detaches materializes a fresh root context inside threaded code.
func Detaches(ch chan int) int {
	ctx := context.Background() // want `context.Background materializes a context detached from the caller's lifetime`
	return dep.Poll(ctx, ch)
}

// Todos is the same mistake with TODO.
func Todos(ch chan int) int {
	return dep.Poll(context.TODO(), ch) // want `context.TODO materializes a context detached from the caller's lifetime`
}

// DetachFlight re-arms a detached context the sanctioned way: annotated,
// with a reason.
func DetachFlight(ctx context.Context, ch chan int) int {
	flight := context.WithoutCancel(ctx) //sillint:allow ctxflow fixture: coalesced flight outlives its first caller
	return dep.Poll(flight, ch)
}

// CallsAllowed calls through an allow-annotated seed: clean, because
// allowed occurrences do not taint callers.
func CallsAllowed(ctx context.Context, ch chan int) {
	<-ctx.Done()
	dep.CallsSanctioned(ch)
}
