// Package dep is the callee side of the cross-package fixtures: nothing
// in this package is in ctxflow's Scope, so nothing here reports — but
// the blocks fact computed over these bodies drives the findings in the
// parent package.
package dep

import "context"

// Fetch blocks directly and cannot receive a context.
func Fetch(ch chan int) int { return <-ch }

// Indirect has no blocking syntax of its own: it blocks only through
// Fetch, which is what makes the caller-side finding interprocedural.
func Indirect(ch chan int) int { return Fetch(ch) }

// Poll blocks but threads a context, so calling it with a ctx is fine.
func Poll(ctx context.Context, ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-ctx.Done():
		return 0
	}
}

// Pure neither blocks nor does I/O.
func Pure(n int) int { return n + 1 }

// Spawner starts work asynchronously; `go` edges do not make the spawner
// itself blocking.
func Spawner(ch chan int) {
	go Fetch(ch)
}

// Sanctioned blocks, but the occurrence carries an allow directive with a
// capacity argument, so it must not seed the fact nor taint callers.
func Sanctioned(ch chan int) {
	ch <- 1 //sillint:allow ctxflow fixture: buffered channel sized to its writers
}

// CallsSanctioned must stay clean: the allowed seed does not propagate.
func CallsSanctioned(ch chan int) { Sanctioned(ch) }
