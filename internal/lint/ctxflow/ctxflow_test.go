package ctxflow_test

import (
	"testing"

	"repro/internal/lint/ctxflow"
	"repro/internal/lint/lintest"
	"repro/internal/lint/lintkit"
)

// TestContextThreading drives the cross-package fixtures: blocking is
// seeded in the sibling package dep, findings appear in the in-Scope
// parent, allow-annotated seeds taint nobody, and detached-context
// materializations report wherever they occur.
func TestContextThreading(t *testing.T) {
	orig := ctxflow.Scope
	ctxflow.Scope = append([]string{"ctxtree"}, orig...)
	defer func() { ctxflow.Scope = orig }()
	lintest.RunTree(t, []*lintkit.Analyzer{ctxflow.Analyzer}, "testdata/src/ctxtree")
}

// TestOutOfScopePackagesPass proves the same fixtures are silent when the
// package is not in Scope: the contract covers the serving surface, not
// every helper in the module.
func TestOutOfScopePackagesPass(t *testing.T) {
	orig := ctxflow.Scope
	ctxflow.Scope = []string{"repro/internal/service"}
	defer func() { ctxflow.Scope = orig }()
	lintest.RunTree(t, []*lintkit.Analyzer{ctxflow.Analyzer}, "testdata/src/ctxclean")
}
