// Package ctxflow enforces the context-threading contract of the v1
// serving surface: every function on a path from the HTTP handlers or
// Analyze(ctx, ...) must thread the incoming context down to whatever
// blocks. The check is interprocedural — a "blocks" fact (channel
// operations, selects, joins, network/process I/O) is computed for every
// function in the program and propagated bottom-up over the call graph, so
// a function two packages away from the blocking syscall still counts as
// blocking at its call sites.
//
// Three rules, all scoped to Scope packages and non-test files:
//
//  1. context.Background(), context.TODO(), and context.WithoutCancel()
//     materialize a context detached from the caller's lifetime; inside
//     ctx-threaded code that silently outlives deadlines and
//     cancellation. The sanctioned detach points (the coalesced-flight
//     re-arm, the nil-ctx library default) carry //sillint:allow
//     directives with reasons.
//  2. A function that receives a context but never consults it, while
//     transitively blocking, has dropped the caller's lifetime on the
//     floor.
//  3. A function that holds a context and directly calls a blocking
//     callee with no context parameter cannot forward its deadline; the
//     callee needs a parameter (or an annotation arguing it never blocks
//     in practice, as the pool-channel operations with capacity
//     invariants do).
package ctxflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"slices"

	"repro/internal/lint/lintkit"
)

// Scope lists the packages whose functions must thread contexts: the
// serving layer, the analysis engine it drives, and the one-shot pipeline.
var Scope = []string{
	"repro/internal/service",
	"repro/internal/analysis",
	"repro/internal/core",
}

// blockPkgFuncs are package-level functions that block or perform I/O.
var blockPkgFuncs = map[string]map[string]bool{
	"time": {"Sleep": true},
	"net":  {"Dial": true, "DialTimeout": true, "Listen": true},
	"net/http": {
		"Get": true, "Head": true, "Post": true, "PostForm": true,
		"ListenAndServe": true, "ListenAndServeTLS": true, "Serve": true,
	},
}

// blockMethodPkgs are packages whose method calls count as blocking or
// I/O-bound: connection and body reads/writes, process waits, lock-free
// channel-based sync joins.
var blockMethodPkgs = map[string]bool{
	"net":      true,
	"net/http": true,
	"io":       true,
	"os/exec":  true,
}

// blockSyncMethods are the blocking joins of package sync.
var blockSyncMethods = map[string]bool{"Wait": true}

// BlocksFact marks functions that may block: directly (channel operations,
// select without default, sync joins, network/process I/O) or through any
// in-program callee. //sillint:allow ctxflow on the blocking occurrence
// (with a reason — e.g. a channel send whose capacity invariant makes it
// non-blocking) keeps it from seeding the fact.
var BlocksFact = &lintkit.FactDef{
	Analyzer: "ctxflow",
	Name:     "blocks",
	Doc:      "function may block or do I/O, directly or through a callee",
	Local:    localBlocks,
}

func localBlocks(fp *lintkit.FuncPass) string {
	desc := ""
	seed := func(pos token.Pos, what string) {
		if desc == "" && !fp.Allowed("ctxflow", pos) {
			desc = what
		}
	}
	ast.Inspect(fp.Decl.Body, func(n ast.Node) bool {
		if desc != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // independent scope, like the call graph
		case *ast.GoStmt:
			return false // spawned work does not block this stack
		case *ast.SendStmt:
			seed(n.Pos(), "channel send")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				seed(n.Pos(), "channel receive")
			}
		case *ast.RangeStmt:
			if tv, ok := fp.Pkg.Info.Types[n.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					seed(n.Pos(), "range over channel")
				}
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				seed(n.Pos(), "select without default")
			}
		case *ast.CallExpr:
			if fn := lintkit.CalleeOf(fp.Pkg.Info, n); fn != nil && fn.Pkg() != nil {
				path, name := fn.Pkg().Path(), fn.Name()
				if fn.Type().(*types.Signature).Recv() == nil {
					if blockPkgFuncs[path][name] {
						seed(n.Pos(), path+"."+name)
					}
				} else if blockMethodPkgs[path] || (path == "sync" && blockSyncMethods[name]) {
					seed(n.Pos(), "("+path+")."+name)
				}
			}
		}
		return true
	})
	return desc
}

// Analyzer is the ctxflow check.
var Analyzer = &lintkit.Analyzer{
	Name:  "ctxflow",
	Doc:   "contexts from the serving surface must be threaded to everything that blocks: no detached contexts outside sanctioned sites, no dropped ctx parameters, no blocking callees that cannot receive the caller's ctx",
	Facts: []*lintkit.FactDef{BlocksFact},
	Run:   run,
}

func run(pass *lintkit.Pass) error {
	if !slices.Contains(Scope, pass.Package.Path) || pass.Pkg.Name() == "main" {
		return nil
	}
	// Rule 1: detached-context materializations, anywhere in the package
	// (function literals included — the HTTP handlers are closures).
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := lintkit.CalleeOf(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
				return true
			}
			switch fn.Name() {
			case "Background", "TODO", "WithoutCancel":
				pass.Reportf(call.Pos(),
					"context.%s materializes a context detached from the caller's lifetime; thread the incoming ctx, or annotate a sanctioned detach point with its reason",
					fn.Name())
			}
			return true
		})
	}
	// Rules 2 and 3 work on declared functions via the program facts.
	for _, f := range pass.Prog.Funcs() {
		if f.Pkg != pass.Package || f.Decl.Body == nil {
			continue
		}
		ctxParams := contextParams(pass, f.Decl)
		if len(ctxParams) == 0 {
			continue
		}
		for _, p := range ctxParams {
			if p.obj != nil && usesObject(pass, f.Decl.Body, p.obj) {
				continue
			}
			if pass.Prog.HasFact("ctxflow", "blocks", f.Fn) {
				pass.Reportf(p.pos,
					"%s receives a ctx but drops it before blocking (%s); consult it or forward it",
					f.Fn.Name(), pass.Prog.Why("ctxflow", "blocks", f.Fn))
			}
		}
		ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			if _, ok := n.(*ast.GoStmt); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := lintkit.CalleeOf(pass.TypesInfo, call)
			if callee == nil {
				return true
			}
			if _, inProg := pass.Prog.FuncOf(callee); !inProg {
				return true
			}
			if !pass.Prog.HasFact("ctxflow", "blocks", callee) {
				return true
			}
			if hasContextParam(callee) {
				return true
			}
			pass.Reportf(call.Pos(),
				"blocking callee %s cannot receive this function's ctx (%s); add a context parameter or annotate why it never blocks",
				callee.Name(), pass.Prog.Why("ctxflow", "blocks", callee))
			return true
		})
	}
	return nil
}

type ctxParam struct {
	pos token.Pos
	obj types.Object // nil for the blank identifier
}

// contextParams returns the declared context.Context parameters.
func contextParams(pass *lintkit.Pass, decl *ast.FuncDecl) []ctxParam {
	var out []ctxParam
	if decl.Type.Params == nil {
		return nil
	}
	for _, field := range decl.Type.Params.List {
		tv, ok := pass.TypesInfo.Types[field.Type]
		if !ok || !isContextType(tv.Type) {
			continue
		}
		for _, name := range field.Names {
			if name.Name == "_" {
				out = append(out, ctxParam{pos: name.Pos()})
				continue
			}
			out = append(out, ctxParam{pos: name.Pos(), obj: pass.TypesInfo.Defs[name]})
		}
	}
	return out
}

func usesObject(pass *lintkit.Pass, body *ast.BlockStmt, obj types.Object) bool {
	used := false
	ast.Inspect(body, func(n ast.Node) bool {
		if used {
			return false
		}
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			used = true
		}
		return true
	})
	return used
}

func hasContextParam(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
