package determinism_test

import (
	"testing"

	"repro/internal/lint/determinism"
	"repro/internal/lint/lintest"
	"repro/internal/lint/lintkit"
)

func loadDet(t *testing.T) *lintkit.Package {
	t.Helper()
	pkg, err := lintkit.NewLoader().LoadDir("testdata/det", "testdata/src/det", true)
	if err != nil {
		t.Fatalf("loading testdata: %v", err)
	}
	return pkg
}

func runAnalyzer(t *testing.T, pkg *lintkit.Package) []lintkit.Diagnostic {
	t.Helper()
	diags, err := lintkit.RunAnalyzers(pkg, []*lintkit.Analyzer{determinism.Analyzer})
	if err != nil {
		t.Fatalf("running analyzer: %v", err)
	}
	return diags
}

// TestMapOrderAndClockRules seeds every positive pattern (map-order
// appends, pointer-receiver slice mutation, printing in map ranges,
// time.Now/Since, math/rand imports) and the negative idioms
// (collect-then-sort, map-to-map transfer, commutative accumulation,
// loop-local slices), plus the _test.go exemption and the
// //sillint:allow escape hatch.
func TestMapOrderAndClockRules(t *testing.T) {
	orig := determinism.Scope
	determinism.Scope = append([]string{"testdata/det"}, orig...)
	defer func() { determinism.Scope = orig }()
	lintest.Run(t, determinism.Analyzer, "testdata/src/det")
}

// TestTransitiveFactsAcrossPackages drives the interprocedural layer:
// scoped code consuming a clock read two hops away in a sibling package,
// and map-ordered slices forwarded through out-of-scope returns — plus
// the clean shapes (pure callees, annotated seeds, collect-then-sort
// across the call boundary, callees that sort before returning).
func TestTransitiveFactsAcrossPackages(t *testing.T) {
	orig := determinism.Scope
	determinism.Scope = append([]string{"dettree"}, orig...)
	defer func() { determinism.Scope = orig }()
	lintest.RunTree(t, []*lintkit.Analyzer{determinism.Analyzer}, "testdata/src/dettree")
}

// TestOutOfScopePackagesPass proves the analyzer only covers the
// bit-identical packages: the same seeded patterns produce zero findings
// when the package is not in Scope.
func TestOutOfScopePackagesPass(t *testing.T) {
	orig := determinism.Scope
	determinism.Scope = []string{"repro/internal/analysis"}
	defer func() { determinism.Scope = orig }()
	pkg := loadDet(t)
	diags := runAnalyzer(t, pkg)
	if len(diags) != 0 {
		t.Errorf("out-of-scope package produced findings: %v", diags)
	}
}
