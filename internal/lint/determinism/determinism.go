// Package determinism enforces the bit-identical-results invariant: the
// analysis core (internal/analysis, internal/path, internal/matrix, and the
// interference layer that renders its verdicts) must produce the same bytes
// for the same program regardless of worker count, shard count, or process
// history. Two rule families:
//
//  1. Wall-clock and randomness are banned outright in the scoped packages
//     (time.Now/Since/Until, math/rand): any value derived from them would
//     leak schedule or process history into results.
//
//  2. Ranging over a map is unordered, so a map-range loop body must not
//     leak iteration order: appending to a slice declared outside the loop
//     (directly, or through a pointer-receiver method on a slice-typed
//     value — the RelSet.add shape), or printing, is flagged unless the
//     slice is sorted by a sort./slices. call later in the same function
//     (the repo's collect-then-sort idiom). Writes keyed by the loop
//     variable into maps, and commutative scalar accumulation (fingerprint
//     mixing), stay legal.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"slices"

	"repro/internal/lint/lintkit"
)

// Scope lists the packages the bit-identical property covers. The
// equivalence suites pin exactly these: analysis results (analysis, path,
// matrix), the interference verdicts rendered from them, and the service
// layer (rendered bodies, fingerprints, and summary-store records must be
// byte-identical across shards, sessions, and warm/cold paths).
var Scope = []string{
	"repro/internal/analysis",
	"repro/internal/path",
	"repro/internal/matrix",
	"repro/internal/interfere",
	"repro/internal/service",
}

// bannedTimeFuncs are the wall-clock reads; time.Duration arithmetic and
// constants stay legal.
var bannedTimeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

var bannedImports = map[string]bool{"math/rand": true, "math/rand/v2": true}

// printFuncs are agent-visible output calls that must not run in map
// iteration order (the pure Sprint* family stays legal: its result is a
// value, and the rules below catch the value escaping unordered).
var printFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// Analyzer is the determinism check.
var Analyzer = &lintkit.Analyzer{
	Name: "determinism",
	Doc: "in the bit-identical packages, forbid wall-clock/randomness and " +
		"map-iteration-order leaks (appends to escaping slices or printing " +
		"inside a map range without a later sort)",
	Run: run,
}

func run(pass *lintkit.Pass) error {
	if !slices.Contains(Scope, pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		checkImports(pass, f)
		checkTimeCalls(pass, f)
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkMapRanges(pass, fn)
		}
	}
	return nil
}

func checkImports(pass *lintkit.Pass, f *ast.File) {
	for _, imp := range f.Imports {
		path := imp.Path.Value
		if bannedImports[path[1:len(path)-1]] {
			pass.Reportf(imp.Pos(),
				"import of %s in a bit-identical package: randomness would make results depend on process history",
				path)
		}
	}
}

func checkTimeCalls(pass *lintkit.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if pkg := usedPackage(pass, sel); pkg == "time" && bannedTimeFuncs[sel.Sel.Name] {
			pass.Reportf(sel.Pos(),
				"time.%s in a bit-identical package: wall-clock reads leak schedule into results",
				sel.Sel.Name)
		}
		return true
	})
}

// usedPackage returns the import path of the package a selector's base
// identifier names, or "" when the base is not a package name.
func usedPackage(pass *lintkit.Pass, sel *ast.SelectorExpr) string {
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
	if !ok {
		return ""
	}
	return pkgName.Imported().Path()
}

func checkMapRanges(pass *lintkit.Pass, fn *ast.FuncDecl) {
	reported := map[token.Pos]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok || !isMapType(pass, rs.X) {
			return true
		}
		checkMapRangeBody(pass, fn, rs, reported)
		return true
	})
}

func isMapType(pass *lintkit.Pass, x ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

func checkMapRangeBody(pass *lintkit.Pass, fn *ast.FuncDecl, rs *ast.RangeStmt, reported map[token.Pos]bool) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if !isAppendCall(pass, rhs) || i >= len(n.Lhs) {
					continue
				}
				if obj := slicelikeTarget(pass, n.Lhs[i]); obj != nil && declaredOutside(obj, rs) {
					reportOrderLeak(pass, fn, rs, n.Pos(), obj, reported,
						"append to %q (declared outside this map range) leaks map iteration order", obj.Name())
				}
			}
		case *ast.CallExpr:
			checkCallInMapRange(pass, fn, rs, n, reported)
		}
		return true
	})
}

func checkCallInMapRange(pass *lintkit.Pass, fn *ast.FuncDecl, rs *ast.RangeStmt, call *ast.CallExpr, reported map[token.Pos]bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	// Printing under map iteration emits in map order.
	if pkg := usedPackage(pass, sel); pkg == "fmt" && printFuncs[sel.Sel.Name] {
		if !reported[call.Pos()] {
			reported[call.Pos()] = true
			pass.Reportf(call.Pos(), "fmt.%s inside a map range emits in map iteration order", sel.Sel.Name)
		}
		return
	}
	// A pointer-receiver method on a slice-typed value declared outside the
	// loop is the RelSet.add shape: an append in map order, one call away.
	selection := pass.TypesInfo.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return
	}
	recv, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	obj := pass.TypesInfo.ObjectOf(recv)
	if obj == nil || !declaredOutside(obj, rs) {
		return
	}
	if _, isSlice := obj.Type().Underlying().(*types.Slice); !isSlice {
		return
	}
	sig, ok := selection.Obj().Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	if _, ptrRecv := sig.Recv().Type().(*types.Pointer); !ptrRecv {
		return
	}
	reportOrderLeak(pass, fn, rs, call.Pos(), obj, reported,
		"mutating slice %q through a pointer-receiver method inside a map range leaks iteration order", obj.Name())
}

func reportOrderLeak(pass *lintkit.Pass, fn *ast.FuncDecl, rs *ast.RangeStmt, pos token.Pos, obj types.Object, reported map[token.Pos]bool, format, name string) {
	if reported[pos] || sortedAfter(pass, fn, rs, obj) {
		return
	}
	reported[pos] = true
	pass.Reportf(pos, format+" (sort it after the loop, or iterate sorted keys)", name)
}

func isAppendCall(pass *lintkit.Pass, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	ident, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[ident].(*types.Builtin)
	return ok && b.Name() == "append"
}

// slicelikeTarget resolves `x` or `*x` assignment targets to their object.
func slicelikeTarget(pass *lintkit.Pass, lhs ast.Expr) types.Object {
	if star, ok := lhs.(*ast.StarExpr); ok {
		lhs = star.X
	}
	ident, ok := lhs.(*ast.Ident)
	if !ok {
		return nil
	}
	return pass.TypesInfo.ObjectOf(ident)
}

func declaredOutside(obj types.Object, rs *ast.RangeStmt) bool {
	return obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
}

// sortedAfter reports whether a sort./slices. call after the range loop in
// the same function mentions obj — the repo's collect-then-sort idiom,
// which restores a canonical order before the slice can escape.
func sortedAfter(pass *lintkit.Pass, fn *ast.FuncDecl, rs *ast.RangeStmt, obj types.Object) bool {
	found := false
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rs.End() || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if pkg := usedPackage(pass, sel); pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if mentionsObject(pass, arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func mentionsObject(pass *lintkit.Pass, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if ident, ok := n.(*ast.Ident); ok && pass.TypesInfo.ObjectOf(ident) == obj {
			found = true
		}
		return !found
	})
	return found
}
