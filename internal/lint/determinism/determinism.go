// Package determinism enforces the bit-identical-results invariant: the
// analysis core (internal/analysis, internal/path, internal/matrix, and the
// interference layer that renders its verdicts) must produce the same bytes
// for the same program regardless of worker count, shard count, or process
// history. Two rule families:
//
//  1. Wall-clock and randomness are banned outright in the scoped packages
//     (time.Now/Since/Until, math/rand): any value derived from them would
//     leak schedule or process history into results.
//
//  2. Ranging over a map is unordered, so a map-range loop body must not
//     leak iteration order: appending to a slice declared outside the loop
//     (directly, or through a pointer-receiver method on a slice-typed
//     value — the RelSet.add shape), or printing, is flagged unless the
//     slice is sorted by a sort./slices. call later in the same function
//     (the repo's collect-then-sort idiom). Writes keyed by the loop
//     variable into maps, and commutative scalar accumulation (fingerprint
//     mixing), stay legal.
//
// Both families are interprocedural: a "wallclock" fact (reads the wall
// clock or randomness, directly or through any in-program callee) is
// computed bottom-up over the program call graph, and a parallel fixpoint
// marks functions whose returned slices are built in map-iteration order
// without a sanitizing sort. Scoped call sites into out-of-scope program
// code report against those summaries, so moving the clock read or the
// unsorted collect into a helper package no longer hides it. Calls whose
// results the caller itself sorts before use stay legal — the
// collect-then-sort idiom works across call boundaries too.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"
	"slices"

	"repro/internal/lint/lintkit"
)

// Scope lists the packages the bit-identical property covers. The
// equivalence suites pin exactly these: analysis results (analysis, path,
// matrix), the interference verdicts rendered from them, and the service
// layer (rendered bodies, fingerprints, and summary-store records must be
// byte-identical across shards, sessions, and warm/cold paths).
var Scope = []string{
	"repro/internal/analysis",
	"repro/internal/path",
	"repro/internal/matrix",
	"repro/internal/interfere",
	"repro/internal/service",
}

// bannedTimeFuncs are the wall-clock reads; time.Duration arithmetic and
// constants stay legal.
var bannedTimeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

var bannedImports = map[string]bool{"math/rand": true, "math/rand/v2": true}

// printFuncs are agent-visible output calls that must not run in map
// iteration order (the pure Sprint* family stays legal: its result is a
// value, and the rules below catch the value escaping unordered).
var printFuncs = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// WallclockFact marks functions that read the wall clock or randomness —
// directly, or through any in-program callee. An //sillint:allow
// determinism directive on the occurrence keeps it from seeding the fact.
var WallclockFact = &lintkit.FactDef{
	Analyzer: "determinism",
	Name:     "wallclock",
	Doc:      "function reads the wall clock or randomness, directly or through a callee",
	Local:    localWallclock,
}

func localWallclock(fp *lintkit.FuncPass) string {
	desc := ""
	ast.Inspect(fp.Decl.Body, func(n ast.Node) bool {
		if desc != "" {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false // independent scope, like the call graph
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg := usedPackage(fp.Pkg.Info, sel)
		banned := (pkg == "time" && bannedTimeFuncs[sel.Sel.Name]) || bannedImports[pkg]
		if banned && !fp.Allowed("determinism", sel.Pos()) {
			desc = pkg + "." + sel.Sel.Name
		}
		return true
	})
	return desc
}

// Analyzer is the determinism check.
var Analyzer = &lintkit.Analyzer{
	Name: "determinism",
	Doc: "in the bit-identical packages, forbid wall-clock/randomness and " +
		"map-iteration-order leaks (appends to escaping slices or printing " +
		"inside a map range without a later sort), directly or through any " +
		"transitive callee",
	Facts: []*lintkit.FactDef{WallclockFact},
	Run:   run,
}

func run(pass *lintkit.Pass) error {
	if !slices.Contains(Scope, pass.Pkg.Path()) {
		return nil
	}
	unordered := unorderedFuncs(pass.Prog)
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		checkImports(pass, f)
		checkTimeCalls(pass, f)
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkMapRanges(pass, fn)
			checkTransitive(pass, fn, unordered)
		}
	}
	return nil
}

func checkImports(pass *lintkit.Pass, f *ast.File) {
	for _, imp := range f.Imports {
		path := imp.Path.Value
		if bannedImports[path[1:len(path)-1]] {
			pass.Reportf(imp.Pos(),
				"import of %s in a bit-identical package: randomness would make results depend on process history",
				path)
		}
	}
}

func checkTimeCalls(pass *lintkit.Pass, f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if pkg := usedPackage(pass.TypesInfo, sel); pkg == "time" && bannedTimeFuncs[sel.Sel.Name] {
			pass.Reportf(sel.Pos(),
				"time.%s in a bit-identical package: wall-clock reads leak schedule into results",
				sel.Sel.Name)
		}
		return true
	})
}

// checkTransitive reports scoped calls into out-of-scope program code that
// reaches the wall clock or returns a map-ordered slice. In-scope callees
// are skipped: their seeds are flagged directly in their own package.
func checkTransitive(pass *lintkit.Pass, fn *ast.FuncDecl, unordered map[*lintkit.ProgFunc]string) {
	// An assignment whose RHS is an unordered call sanitizes the call when
	// the target is sorted later in this function — collect-then-sort
	// across the call boundary. Inspect visits the AssignStmt before the
	// call itself, so the set is populated in time.
	sanitized := map[*ast.CallExpr]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || i >= len(n.Lhs) {
					continue
				}
				obj := slicelikeTarget(pass.TypesInfo, n.Lhs[i])
				if obj != nil && sortedAfter(pass.TypesInfo, fn.Body, call.End(), obj) {
					sanitized[call] = true
				}
			}
		case *ast.CallExpr:
			callee := lintkit.CalleeOf(pass.TypesInfo, n)
			if callee == nil {
				return true
			}
			pf, ok := pass.Prog.FuncOf(callee)
			if !ok || slices.Contains(Scope, pf.Pkg.Path) {
				return true
			}
			if pass.Prog.HasFact("determinism", "wallclock", callee) {
				pass.Reportf(n.Pos(),
					"call reaches a wall-clock or randomness read (%s): results would leak schedule or process history",
					pass.Prog.Why("determinism", "wallclock", callee))
			}
			if desc, bad := unordered[pf]; bad && !sanitized[n] {
				pass.Reportf(n.Pos(),
					"result is built in map iteration order (%s); sort it here or in the callee", desc)
			}
		}
		return true
	})
}

// unorderedFuncs computes, program-wide, the functions whose returned
// slices are built in map-iteration order without a sanitizing sort — a
// bottom-up fixpoint over return statements (monotone, so it terminates
// and is order-independent).
func unorderedFuncs(prog *lintkit.Program) map[*lintkit.ProgFunc]string {
	un := map[*lintkit.ProgFunc]string{}
	funcs := prog.Funcs()
	for changed := true; changed; {
		changed = false
		for _, f := range funcs {
			if f.Decl.Body == nil {
				continue
			}
			if _, done := un[f]; done {
				continue
			}
			if desc := returnsUnordered(prog, f, un); desc != "" {
				un[f] = desc
				changed = true
			}
		}
	}
	return un
}

// returnsUnordered reports whether f returns a slice appended to inside a
// map range (and never sorted), or forwards another unordered function's
// result unsorted.
func returnsUnordered(prog *lintkit.Program, f *lintkit.ProgFunc, un map[*lintkit.ProgFunc]string) string {
	info := f.Pkg.Info
	ordered := mapOrderedLocals(f)
	desc := ""
	ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
		if desc != "" {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			switch res := ast.Unparen(res).(type) {
			case *ast.Ident:
				if obj := info.ObjectOf(res); obj != nil {
					if d, bad := ordered[obj]; bad {
						desc = d
						return false
					}
				}
			case *ast.CallExpr:
				if callee := lintkit.CalleeOf(info, res); callee != nil {
					if pf, ok := prog.FuncOf(callee); ok {
						if d, bad := un[pf]; bad {
							desc = d + " via " + f.Fn.Name()
							return false
						}
					}
				}
			}
		}
		return true
	})
	return desc
}

// mapOrderedLocals finds f's locals appended to inside a map range and not
// sorted afterwards. An //sillint:allow determinism directive on the
// append keeps it from seeding.
func mapOrderedLocals(f *lintkit.ProgFunc) map[types.Object]string {
	info := f.Pkg.Info
	ordered := map[types.Object]string{}
	ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok || !isMapType(info, rs.X) {
			return true
		}
		ast.Inspect(rs.Body, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, rhs := range assign.Rhs {
				if !isAppendCall(info, rhs) || i >= len(assign.Lhs) {
					continue
				}
				obj := slicelikeTarget(info, assign.Lhs[i])
				if obj == nil || !declaredOutside(obj, rs) {
					continue
				}
				if f.Pkg.AllowedAt(f.Pkg.Fset.Position(rhs.Pos()), "determinism") {
					continue
				}
				if sortedAfter(info, f.Decl.Body, rs.End(), obj) {
					continue
				}
				ordered[obj] = "map-range append in " + f.Fn.Name()
			}
			return true
		})
		return true
	})
	return ordered
}

func checkMapRanges(pass *lintkit.Pass, fn *ast.FuncDecl) {
	reported := map[token.Pos]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok || !isMapType(pass.TypesInfo, rs.X) {
			return true
		}
		checkMapRangeBody(pass, fn, rs, reported)
		return true
	})
}

func isMapType(info *types.Info, x ast.Expr) bool {
	tv, ok := info.Types[x]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

func checkMapRangeBody(pass *lintkit.Pass, fn *ast.FuncDecl, rs *ast.RangeStmt, reported map[token.Pos]bool) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if !isAppendCall(pass.TypesInfo, rhs) || i >= len(n.Lhs) {
					continue
				}
				if obj := slicelikeTarget(pass.TypesInfo, n.Lhs[i]); obj != nil && declaredOutside(obj, rs) {
					reportOrderLeak(pass, fn, rs, n.Pos(), obj, reported,
						"append to %q (declared outside this map range) leaks map iteration order", obj.Name())
				}
			}
		case *ast.CallExpr:
			checkCallInMapRange(pass, fn, rs, n, reported)
		}
		return true
	})
}

func checkCallInMapRange(pass *lintkit.Pass, fn *ast.FuncDecl, rs *ast.RangeStmt, call *ast.CallExpr, reported map[token.Pos]bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	// Printing under map iteration emits in map order.
	if pkg := usedPackage(pass.TypesInfo, sel); pkg == "fmt" && printFuncs[sel.Sel.Name] {
		if !reported[call.Pos()] {
			reported[call.Pos()] = true
			pass.Reportf(call.Pos(), "fmt.%s inside a map range emits in map iteration order", sel.Sel.Name)
		}
		return
	}
	// A pointer-receiver method on a slice-typed value declared outside the
	// loop is the RelSet.add shape: an append in map order, one call away.
	selection := pass.TypesInfo.Selections[sel]
	if selection == nil || selection.Kind() != types.MethodVal {
		return
	}
	recv, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	obj := pass.TypesInfo.ObjectOf(recv)
	if obj == nil || !declaredOutside(obj, rs) {
		return
	}
	if _, isSlice := obj.Type().Underlying().(*types.Slice); !isSlice {
		return
	}
	sig, ok := selection.Obj().Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	if _, ptrRecv := sig.Recv().Type().(*types.Pointer); !ptrRecv {
		return
	}
	reportOrderLeak(pass, fn, rs, call.Pos(), obj, reported,
		"mutating slice %q through a pointer-receiver method inside a map range leaks iteration order", obj.Name())
}

func reportOrderLeak(pass *lintkit.Pass, fn *ast.FuncDecl, rs *ast.RangeStmt, pos token.Pos, obj types.Object, reported map[token.Pos]bool, format, name string) {
	if reported[pos] || sortedAfter(pass.TypesInfo, fn.Body, rs.End(), obj) {
		return
	}
	reported[pos] = true
	pass.Reportf(pos, format+" (sort it after the loop, or iterate sorted keys)", name)
}

func isAppendCall(info *types.Info, e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	ident, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[ident].(*types.Builtin)
	return ok && b.Name() == "append"
}

// slicelikeTarget resolves `x` or `*x` assignment targets to their object.
func slicelikeTarget(info *types.Info, lhs ast.Expr) types.Object {
	if star, ok := lhs.(*ast.StarExpr); ok {
		lhs = star.X
	}
	ident, ok := lhs.(*ast.Ident)
	if !ok {
		return nil
	}
	return info.ObjectOf(ident)
}

func declaredOutside(obj types.Object, rs *ast.RangeStmt) bool {
	return obj.Pos() < rs.Pos() || obj.Pos() > rs.End()
}

// usedPackage returns the import path of the package a selector's base
// identifier names, or "" when the base is not a package name.
func usedPackage(info *types.Info, sel *ast.SelectorExpr) string {
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	pkgName, ok := info.Uses[ident].(*types.PkgName)
	if !ok {
		return ""
	}
	return pkgName.Imported().Path()
}

// sortedAfter reports whether a sort./slices. call after pos in body
// mentions obj — the repo's collect-then-sort idiom, which restores a
// canonical order before the slice can escape.
func sortedAfter(info *types.Info, body *ast.BlockStmt, after token.Pos, obj types.Object) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= after || found {
			return !found
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if pkg := usedPackage(info, sel); pkg != "sort" && pkg != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if mentionsObject(info, arg, obj) {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func mentionsObject(info *types.Info, e ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if ident, ok := n.(*ast.Ident); ok && info.ObjectOf(ident) == obj {
			found = true
		}
		return !found
	})
	return found
}
