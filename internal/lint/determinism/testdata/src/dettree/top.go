// Package dettree is determinism testdata for the interprocedural layer:
// scoped code consuming clock reads and map-ordered slices hidden behind a
// sibling package.
package dettree

import (
	"sort"

	"dettree/dep"
)

// Tick reaches the clock through two out-of-package hops.
func Tick() int64 {
	return dep.Indirect() // want `call reaches a wall-clock or randomness read \(dettree/dep\.Indirect -> dettree/dep\.Stamp: time\.Now\)`
}

// TickDirect calls the seeding function itself.
func TickDirect() int64 {
	return dep.Stamp() // want `call reaches a wall-clock or randomness read \(dettree/dep\.Stamp: time\.Now\)`
}

// Calm calls the pure helper: clean.
func Calm() int64 { return dep.Steady() }

// CalmAudited inherits the callee's annotation: clean.
func CalmAudited() int64 { return dep.Audited() }

// Render forwards the callee's map-ordered slice unsorted.
func Render(m map[string]int) []string {
	return dep.KeysVia(m) // want `result is built in map iteration order \(map-range append in Keys via KeysVia\); sort it here or in the callee`
}

// RenderSorted sorts the result: collect-then-sort across the call
// boundary stays legal.
func RenderSorted(m map[string]int) []string {
	ks := dep.Keys(m)
	sort.Strings(ks)
	return ks
}

// RenderCanonical uses the callee that sorts before returning: clean.
func RenderCanonical(m map[string]int) []string { return dep.SortedKeys(m) }
