// Package dep is outside determinism's scope: it may read the clock and
// build unsorted slices, but scoped callers must not consume them.
package dep

import (
	"sort"
	"time"
)

// Stamp reads the wall clock.
func Stamp() int64 { return time.Now().UnixNano() }

// Indirect hides the read one hop down.
func Indirect() int64 { return Stamp() }

// Steady is pure: no fact.
func Steady() int64 { return 42 }

// Audited is the annotated escape hatch: it seeds no fact.
func Audited() int64 {
	return time.Now().UnixNano() //sillint:allow determinism fixture: diagnostics-only timestamp, never fingerprinted
}

// Keys returns the map's keys in iteration order.
func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

// KeysVia forwards the unordered slice through a second return.
func KeysVia(m map[string]int) []string { return Keys(m) }

// SortedKeys restores canonical order before returning: clean.
func SortedKeys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
