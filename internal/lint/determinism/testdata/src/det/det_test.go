package det

import (
	"math/rand"
	"time"
)

// _test.go files are exempt: randomized corpora and benchmark timing are
// exactly what tests are for. No findings expected in this file.
func seedHelpers() []string {
	_ = time.Now()
	r := rand.New(rand.NewSource(1))
	m := map[string]int{"a": r.Int()}
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
