// Package det is determinism testdata: map-iteration-order leaks and
// wall-clock/randomness reads in a bit-identical package.
package det

import (
	"fmt"
	"math/rand" // want `import of "math/rand" in a bit-identical package`
	"os"
	"sort"
	"time"
)

func clock() time.Duration {
	start := time.Now()   // want `time\.Now in a bit-identical package`
	_ = time.Since(start) // want `time\.Since in a bit-identical package`
	_ = rand.Int()
	return 5 * time.Millisecond // duration arithmetic stays legal
}

// leakAppend appends to an escaping slice in map order: finding.
func leakAppend(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to "out" .* leaks map iteration order`
	}
	return out
}

// collectThenSort is the repo's idiom: the later sort restores canonical
// order, so the append is clean.
func collectThenSort(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortSliceAlsoCounts recognizes sort.Slice with a comparator closure.
func sortSliceAlsoCounts(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// localAppend appends to a slice declared inside the loop body: each
// iteration gets its own, so no order leaks.
func localAppend(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		var local []int
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

// mapWrites keyed by the loop variable are order-independent.
func mapWrites(src map[string]int) map[string]int {
	dst := make(map[string]int, len(src))
	for k, v := range src {
		dst[k] = v
	}
	return dst
}

// commutativeAccumulation (fingerprint mixing) stays legal.
func commutativeAccumulation(m map[string]uint64) uint64 {
	var sum uint64
	for _, v := range m {
		sum += v
	}
	return sum
}

// printing emits in map order: finding.
func printing(m map[string]int) {
	for k := range m {
		fmt.Println(k) // want `fmt\.Println inside a map range emits in map iteration order`
	}
	for k := range m {
		fmt.Fprintf(os.Stderr, "%s\n", k) // want `fmt\.Fprintf inside a map range emits in map iteration order`
	}
}

// sliceRange is not a map range: appending is fine.
func sliceRange(s []string) []string {
	var out []string
	for _, v := range s {
		out = append(out, v)
	}
	return out
}

// addSet is the RelSet shape: a slice-backed set grown through a
// pointer-receiver method.
type addSet []string

func (s *addSet) add(v string) { *s = append(*s, v) }

// leakViaMethod mutates an outer slice through a pointer-receiver method
// inside a map range: finding.
func leakViaMethod(m map[string]bool) addSet {
	var out addSet
	for k := range m {
		out.add(k) // want `mutating slice "out" through a pointer-receiver method inside a map range`
	}
	return out
}

// mapSet is a map-backed set: insertion is commutative, so the same shape
// on a map type is clean.
type mapSet map[string]bool

func (s mapSet) add(v string) { s[v] = true }

func setViaMethod(m map[string]bool) mapSet {
	out := mapSet{}
	for k := range m {
		out.add(k)
	}
	return out
}

// suppressed demonstrates the audited escape hatch.
func suppressed(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) //sillint:allow determinism consumer sorts; pinned by its own property test
	}
	return out
}
