package lintkit

import (
	"go/ast"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// flagCalls reports every call of the function named "bad".
var flagCalls = &Analyzer{
	Name: "flagcalls",
	Doc:  "test analyzer: flag calls of bad()",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if ident, ok := call.Fun.(*ast.Ident); ok && ident.Name == "bad" {
					pass.Reportf(call.Pos(), "call of bad")
				}
				return true
			})
		}
		return nil
	},
}

func writePkg(t *testing.T, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "p.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

const directiveSrc = `package p

func bad() {}

func f() {
	bad()
	bad() //sillint:allow flagcalls audited
	//sillint:allow flagcalls directive above the line
	bad()
	bad() //sillint:allow otherchecker wrong analyzer does not suppress
	bad() //sillint:allow all blanket suppression
}
`

// TestAllowDirectives pins the suppression contract: same-line and
// line-above directives suppress the named analyzer (and "all"), while a
// different analyzer's directive does not.
func TestAllowDirectives(t *testing.T) {
	dir := writePkg(t, directiveSrc)
	pkg, err := NewLoader().LoadDir("p", dir, true)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	diags, err := RunAnalyzers(pkg, []*Analyzer{flagCalls})
	if err != nil {
		t.Fatal(err)
	}
	var lines []int
	for _, d := range diags {
		lines = append(lines, d.Pos.Line)
	}
	// Only the undirected call (line 6) and the wrongly-directed call
	// (line 10) survive.
	if len(lines) != 2 || lines[0] != 6 || lines[1] != 10 {
		t.Errorf("diagnostic lines = %v, want [6 10]", lines)
	}
}

// TestDiagnosticsSorted pins the deterministic output order across
// analyzers (position first, then analyzer name).
func TestDiagnosticsSorted(t *testing.T) {
	dir := writePkg(t, "package p\n\nfunc bad() {}\n\nfunc g() { bad(); bad() }\n")
	pkg, err := NewLoader().LoadDir("p", dir, true)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	second := &Analyzer{Name: "aaa", Doc: "alphabetically first", Run: flagCalls.Run}
	diags, err := RunAnalyzers(pkg, []*Analyzer{flagCalls, second})
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 4 {
		t.Fatalf("got %d diagnostics, want 4", len(diags))
	}
	for i := 1; i < len(diags); i++ {
		a, b := diags[i-1], diags[i]
		if a.Pos.Column > b.Pos.Column || (a.Pos.Column == b.Pos.Column && a.Analyzer > b.Analyzer) {
			t.Errorf("diagnostics out of order at %d: %s then %s", i, a, b)
		}
	}
}

// TestLoadResolvesModuleImports proves the source importer resolves both
// standard-library and module-local imports offline.
func TestLoadResolvesModuleImports(t *testing.T) {
	pkgs, err := Load("./...")
	if err != nil {
		t.Fatalf("Load ./...: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("Load ./... returned no packages")
	}
	for _, p := range pkgs {
		if !strings.HasPrefix(p.Path, "repro/internal/lint") {
			t.Errorf("unexpected package %s from ./... in internal/lint", p.Path)
		}
		if p.Types == nil || p.Info == nil {
			t.Errorf("%s: missing type info", p.Path)
		}
	}
}

// TestTestFileDetection pins the _test.go exemption helper.
func TestTestFileDetection(t *testing.T) {
	dir := t.TempDir()
	for name, src := range map[string]string{
		"p.go":      "package p\n\nfunc inLib() {}\n",
		"p_test.go": "package p\n\nfunc inTest() {}\n",
	} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pkg, err := NewLoader().LoadDir("p", dir, true)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	pass := &Pass{Analyzer: flagCalls, Fset: pkg.Fset, Files: pkg.Files, Pkg: pkg.Types, TypesInfo: pkg.Info}
	seen := map[string]bool{}
	for _, f := range pkg.Files {
		for _, d := range f.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok {
				seen[fn.Name.Name] = pass.InTestFile(fn.Pos())
			}
		}
	}
	if seen["inLib"] || !seen["inTest"] {
		t.Errorf("InTestFile: inLib=%v inTest=%v, want false/true", seen["inLib"], seen["inTest"])
	}
}
