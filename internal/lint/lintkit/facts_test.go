package lintkit

import (
	"go/ast"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"testing"
)

// seedFact is a test fact seeded by any call of a function literally named
// "seedme", skipping function literals the way real analyzers do (the call
// graph treats closures as independent scopes).
var seedFact = &FactDef{
	Analyzer: "tfact",
	Name:     "tainted",
	Doc:      "test fact: transitively calls seedme()",
	Local: func(fp *FuncPass) string {
		desc := ""
		ast.Inspect(fp.Decl.Body, func(n ast.Node) bool {
			if desc != "" {
				return false
			}
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "seedme" {
				if !fp.Allowed("tfact", call.Pos()) {
					desc = "seedme()"
				}
			}
			return true
		})
		return desc
	},
}

func loadPkgSrc(t *testing.T, src string) *Package {
	t.Helper()
	pkg, err := NewLoader().LoadDir("p", writePkg(t, src), true)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	return pkg
}

func factSet(p *Program) map[string]bool {
	out := map[string]bool{}
	for _, f := range p.Funcs() {
		if p.HasFact("tfact", "tainted", f.Fn) {
			out[string(f.ID)] = true
		}
	}
	return out
}

// TestFactPropagation pins the core transitive closure: a seed in a leaf
// reaches every caller chain, `go f()` spawns no edge, closures are
// independent scopes, and an allowed seed taints nobody.
func TestFactPropagation(t *testing.T) {
	pkg := loadPkgSrc(t, `package p

func seedme() {}

func leaf() { seedme() }

func mid() { leaf() }

func top() { mid() }

func clean() {}

func spawns() { go leaf() }

func closes() {
	f := func() { leaf() }
	f()
}

func allowed() {
	seedme() //sillint:allow tfact sanctioned for the test
}

func callsAllowed() { allowed() }
`)
	prog := NewProgram([]*Package{pkg})
	prog.computeFacts([]*FactDef{seedFact})
	got := factSet(prog)
	want := map[string]bool{"p.leaf": true, "p.mid": true, "p.top": true}
	for id, has := range want {
		if got[id] != has {
			t.Errorf("HasFact(%s) = %v, want %v", id, got[id], has)
		}
	}
	for _, id := range []string{"p.clean", "p.spawns", "p.closes", "p.allowed", "p.callsAllowed", "p.seedme"} {
		if got[id] {
			t.Errorf("HasFact(%s) = true, want false", id)
		}
	}
	top, _ := prog.FuncOf(prog.funcs["p.top"].Fn)
	why := prog.Why("tfact", "tainted", top.Fn)
	if !strings.Contains(why, "top") || !strings.Contains(why, "leaf: seedme()") {
		t.Errorf("Why chain = %q, want top -> mid -> leaf: seedme()", why)
	}
}

// TestSCCConvergence pins the recursion treatment: a mutually recursive
// pair joins at the SCC (both members get the fact seeded through either),
// the fixpoint terminates on cycles with no seed at all, and the result is
// independent of package presentation order.
func TestSCCConvergence(t *testing.T) {
	dir := t.TempDir()
	write := func(rel, src string) {
		t.Helper()
		p := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(p, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("dep/dep.go", `package dep

func Seedme() {}

func Hit(n int) {
	if n > 0 {
		Miss(n - 1)
	}
	seedme()
}

func Miss(n int) {
	if n > 0 {
		Hit(n - 1)
	}
}

// CleanA and CleanB are a seedless cycle: the fixpoint must terminate
// without granting either the fact.
func CleanA(n int) {
	if n > 0 {
		CleanB(n - 1)
	}
}

func CleanB(n int) {
	if n > 0 {
		CleanA(n - 1)
	}
}

func seedme() {}
`)
	write("top.go", `package sccfix

import "sccfix/dep"

func Caller() { dep.Miss(3) }

func Bystander() { dep.CleanA(3) }
`)
	// The dep fixture names its seed "seedme" lowercase; adjust the fact's
	// target: the shared seedFact looks for literal ident "seedme", which
	// the unqualified call in dep.Hit satisfies.
	pkgs, err := NewLoader().LoadTree("sccfix", dir, true)
	if err != nil {
		t.Fatalf("LoadTree: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("LoadTree returned %d packages, want 2", len(pkgs))
	}
	progA := NewProgram(pkgs)
	progA.computeFacts([]*FactDef{seedFact})

	rev := slices.Clone(pkgs)
	slices.Reverse(rev)
	progB := NewProgram(rev)
	progB.computeFacts([]*FactDef{seedFact})

	gotA, gotB := factSet(progA), factSet(progB)
	want := map[string]bool{
		"sccfix/dep.Hit":  true, // seeds directly
		"sccfix/dep.Miss": true, // SCC join with Hit
		"sccfix.Caller":   true, // cross-package edge into the SCC
	}
	for id, has := range want {
		if gotA[id] != has {
			t.Errorf("HasFact(%s) = %v, want %v", id, gotA[id], has)
		}
	}
	for _, id := range []string{"sccfix/dep.CleanA", "sccfix/dep.CleanB", "sccfix.Bystander"} {
		if gotA[id] {
			t.Errorf("HasFact(%s) = true, want false (seedless cycle must not self-seed)", id)
		}
	}
	if len(gotA) != len(gotB) {
		t.Fatalf("fact sets differ by package order: %v vs %v", gotA, gotB)
	}
	for id := range gotA {
		if !gotB[id] {
			t.Errorf("fact %s present in one package order, absent in the other", id)
		}
	}
	why := progA.Why("tfact", "tainted", progA.funcs["sccfix.Caller"].Fn)
	if !strings.Contains(why, "Caller") || !strings.Contains(why, "seedme()") {
		t.Errorf("cross-package Why chain = %q, want Caller -> ... -> seedme()", why)
	}
}

// TestMethodEdges pins that method calls produce graph edges keyed
// identically whether the receiver's package was type-checked directly or
// reached through the source importer.
func TestMethodEdges(t *testing.T) {
	pkg := loadPkgSrc(t, `package p

type S struct{}

func seedme() {}

func (s *S) dirty() { seedme() }

func useMethod() {
	var s S
	s.dirty()
}
`)
	prog := NewProgram([]*Package{pkg})
	prog.computeFacts([]*FactDef{seedFact})
	got := factSet(prog)
	if !got["(*p.S).dirty"] || !got["p.useMethod"] {
		t.Errorf("method facts = %v, want (*p.S).dirty and p.useMethod tainted", got)
	}
}
