// Package lintkit is a minimal, dependency-free analysis framework shaped
// after golang.org/x/tools/go/analysis. The repo's invariants — per-Space
// isolation of interned paths, bit-identical results across worker counts,
// pointer-equality semantics for interned nodes — are enforced by custom
// analyzers (internal/lint/...) driven by cmd/sillint; this package gives
// them the Analyzer/Pass/Diagnostic shapes and the loader, built on the
// standard library alone so the module keeps its zero-dependency go.mod.
package lintkit

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
	"strings"
)

// Analyzer describes one static check, mirroring analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //sillint:allow directives.
	Name string
	// Doc is the one-paragraph description printed by sillint -help.
	Doc string
	// Facts lists the per-function fact summaries this analyzer exports.
	// The driver computes them program-wide (bottom-up over SCCs) before
	// any Run executes, so Run can consult transitive verdicts via
	// Pass.Prog regardless of package boundaries.
	Facts []*FactDef
	// Run inspects one package and reports findings via pass.Reportf.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer, mirroring
// analysis.Pass.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Package is the loaded package record (allow-directive index, dir).
	Package *Package
	// Prog is the whole loaded program: call graph and fact summaries.
	// Single-package drivers (RunAnalyzers) still populate it, with a
	// one-package program whose cross-package edges dangle.
	Prog *Program

	diags []Diagnostic
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s (%s)", d.Pos, d.Message, d.Analyzer)
}

// Reportf records a finding unless a //sillint:allow directive on the same
// line (or the line above) allows this analyzer.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.Package.AllowedAt(position, p.Analyzer.Name) {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// InTestFile reports whether pos falls in a _test.go file. Several
// analyzers exempt tests: tests legitimately exercise the process-global
// convenience API and seed randomized corpora.
func (p *Pass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// allowDirective matches "//sillint:allow name[,name...] [reason]".
var allowDirective = regexp.MustCompile(`^//sillint:allow\s+([a-zA-Z0-9_,-]+)`)

// buildAllowed indexes every //sillint:allow directive by file and line. A
// directive suppresses findings on its own line and, when it stands alone,
// on the following line. The index lives on the Package — not the Pass —
// because fact seeding (FuncPass.Allowed) consults the same directives as
// diagnostic reporting: an allowed occurrence must neither report nor
// taint callers.
func (pkg *Package) buildAllowed() {
	pkg.allowed = map[allowKey]map[string]bool{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := allowDirective.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, name := range strings.Split(m[1], ",") {
					name = strings.TrimSpace(name)
					if name == "" {
						continue
					}
					for _, line := range []int{pos.Line, pos.Line + 1} {
						k := allowKey{pos.Filename, line}
						if pkg.allowed[k] == nil {
							pkg.allowed[k] = map[string]bool{}
						}
						pkg.allowed[k][name] = true
					}
				}
			}
		}
	}
}

// AllowedAt reports whether a //sillint:allow directive for the named
// analyzer (or "all") covers the position.
func (pkg *Package) AllowedAt(pos token.Position, analyzer string) bool {
	if pkg.allowed == nil {
		pkg.buildAllowed()
	}
	names := pkg.allowed[allowKey{pos.Filename, pos.Line}]
	return names[analyzer] || names["all"]
}

// RunAnalyzers applies every analyzer to the single package and returns the
// findings sorted by position. It is the one-package form of Program.Run:
// facts still compute, but edges into other packages dangle.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	return NewProgram([]*Package{pkg}).Run(analyzers)
}

func sortDiagnostics(out []Diagnostic) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
