package lintkit

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// This file is lintkit's interprocedural layer: a program-wide static call
// graph plus per-function boolean fact summaries propagated bottom-up over
// strongly connected components — the same shape as the analyzer the suite
// guards (per-procedure summaries, recursion widened to the SCC join).
//
// The graph is deliberately conservative in a direction that suits lint
// facts (may-properties joined with OR):
//
//   - only syntactically direct calls produce edges: calls through function
//     values, interfaces, or method values are invisible, so analyzers that
//     need them must seed facts from the call site's package instead;
//   - `go f()` produces no edge — the spawned work does not run on the
//     caller's stack, and ctxflow treats detachment explicitly;
//   - function literals are independent scopes, not part of the enclosing
//     declaration's summary (matching lockscope's treatment of closures);
//   - edges to functions outside the loaded program (stdlib, other modules)
//     are dropped: facts about them are seeded locally by each analyzer's
//     Local hook, which sees the full call expression.
type Program struct {
	Pkgs []*Package

	funcs   map[FuncID]*ProgFunc
	ids     []FuncID            // sorted
	callees map[FuncID][]FuncID // sorted, deduplicated, in-program only
	sccs    [][]FuncID          // Tarjan emission order: every SCC precedes its callers
	facts   map[string]map[FuncID]factVal
}

// FuncID is a stable cross-package identity for a declared function. The
// source importer materializes its own *types.Func for an imported
// function, distinct from the object created when that package is
// type-checked directly, so object identity cannot key the graph; the
// origin-normalized FullName ("(*repro/internal/service.Service).Analyze")
// is identical for both copies.
type FuncID string

func idOf(fn *types.Func) FuncID {
	return FuncID(fn.Origin().FullName())
}

// ProgFunc is one declared function in the loaded program.
type ProgFunc struct {
	ID   FuncID
	Pkg  *Package
	Decl *ast.FuncDecl
	Fn   *types.Func
}

type factVal struct {
	desc string // local seed description; "" when inherited
	via  FuncID // supporting callee when inherited
}

// FactDef declares one boolean per-function fact owned by an analyzer.
// A function has the fact when Local reports a seeding occurrence in its
// own body, or when any in-program callee has it; recursion joins at the
// SCC. The OR-join is monotone, so the fixpoint terminates and is
// independent of evaluation order.
type FactDef struct {
	// Analyzer names the owning analyzer; //sillint:allow directives for
	// that analyzer suppress seeds, so Local implementations must consult
	// FuncPass.Allowed at each seeding position.
	Analyzer string
	// Name identifies the fact ("blocks", "callout", "wallclock", ...).
	Name string
	// Doc describes what having the fact means.
	Doc string
	// Local inspects one function body and returns a short description of
	// the occurrence that seeds the fact ("channel send", "time.Now"), or
	// "" when the body itself is clean.
	Local func(*FuncPass) string
}

// FuncPass carries one declared function through one FactDef.Local call.
type FuncPass struct {
	Prog *Program
	Pkg  *Package
	Decl *ast.FuncDecl
	Fn   *types.Func
}

// Allowed reports whether a //sillint:allow directive for the named
// analyzer covers pos, so fact seeding respects the same suppressions as
// diagnostics: an allowed occurrence must not taint every transitive
// caller.
func (fp *FuncPass) Allowed(analyzer string, pos token.Pos) bool {
	return fp.Pkg.AllowedAt(fp.Pkg.Fset.Position(pos), analyzer)
}

// InTestFile reports whether pos falls in a _test.go file.
func (fp *FuncPass) InTestFile(pos token.Pos) bool {
	return strings.HasSuffix(fp.Pkg.Fset.Position(pos).Filename, "_test.go")
}

// NewProgram builds the call graph over the loaded packages. Declarations
// in _test.go files are excluded: the invariants facts encode are about
// library code, and tests legitimately use exempt idioms.
func NewProgram(pkgs []*Package) *Program {
	p := &Program{
		Pkgs:    pkgs,
		funcs:   map[FuncID]*ProgFunc{},
		callees: map[FuncID][]FuncID{},
		facts:   map[string]map[FuncID]factVal{},
	}
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			if strings.HasSuffix(pkg.Fset.Position(f.Pos()).Filename, "_test.go") {
				continue
			}
			for _, decl := range f.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				id := idOf(fn)
				if _, dup := p.funcs[id]; !dup {
					p.funcs[id] = &ProgFunc{ID: id, Pkg: pkg, Decl: fd, Fn: fn}
				}
			}
		}
	}
	for id := range p.funcs {
		p.ids = append(p.ids, id)
	}
	sort.Slice(p.ids, func(i, j int) bool { return p.ids[i] < p.ids[j] })
	for _, id := range p.ids {
		f := p.funcs[id]
		if f.Decl.Body == nil {
			continue
		}
		set := map[FuncID]bool{}
		goCalls := map[*ast.CallExpr]bool{}
		ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				goCalls[g.Call] = true
			}
			return true
		})
		ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.CallExpr:
				if goCalls[n] {
					return true // arguments still evaluate on this stack
				}
				if callee := CalleeOf(f.Pkg.Info, n); callee != nil {
					cid := idOf(callee)
					if _, inProg := p.funcs[cid]; inProg {
						set[cid] = true
					}
				}
			}
			return true
		})
		edges := make([]FuncID, 0, len(set))
		for cid := range set {
			edges = append(edges, cid)
		}
		sort.Slice(edges, func(i, j int) bool { return edges[i] < edges[j] })
		p.callees[id] = edges
	}
	p.sccs = p.condense()
	return p
}

// CalleeOf resolves a call expression to the *types.Func it directly
// invokes (package function or method), or nil for calls through function
// values, conversions, and builtins.
func CalleeOf(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// condense runs Tarjan's algorithm over the sorted node order. The
// emission order is the property the fact engine relies on: when an SCC is
// emitted, every SCC it can reach has already been emitted, so processing
// components in this order sees finalized callee facts outside the
// component and only iterates within it.
func (p *Program) condense() [][]FuncID {
	index := map[FuncID]int{}
	low := map[FuncID]int{}
	onStack := map[FuncID]bool{}
	var stack []FuncID
	var sccs [][]FuncID
	next := 0
	var strongconnect func(v FuncID)
	strongconnect = func(v FuncID) {
		index[v] = next
		low[v] = next
		next++
		stack = append(stack, v)
		onStack[v] = true
		for _, w := range p.callees[v] {
			if _, seen := index[w]; !seen {
				strongconnect(w)
				if low[w] < low[v] {
					low[v] = low[w]
				}
			} else if onStack[w] && index[w] < low[v] {
				low[v] = index[w]
			}
		}
		if low[v] == index[v] {
			var scc []FuncID
			for {
				w := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[w] = false
				scc = append(scc, w)
				if w == v {
					break
				}
			}
			sort.Slice(scc, func(i, j int) bool { return scc[i] < scc[j] })
			sccs = append(sccs, scc)
		}
	}
	for _, id := range p.ids {
		if _, seen := index[id]; !seen {
			strongconnect(id)
		}
	}
	return sccs
}

func (p *Program) computeFacts(defs []*FactDef) {
	for _, def := range defs {
		key := def.Analyzer + "/" + def.Name
		if _, done := p.facts[key]; done {
			continue
		}
		seeds := map[FuncID]string{}
		for _, id := range p.ids {
			f := p.funcs[id]
			if f.Decl.Body == nil {
				continue
			}
			fp := &FuncPass{Prog: p, Pkg: f.Pkg, Decl: f.Decl, Fn: f.Fn}
			if desc := def.Local(fp); desc != "" {
				seeds[id] = desc
			}
		}
		res := map[FuncID]factVal{}
		for _, scc := range p.sccs {
			for changed := true; changed; {
				changed = false
				for _, id := range scc {
					if _, has := res[id]; has {
						continue
					}
					if desc, ok := seeds[id]; ok {
						res[id] = factVal{desc: desc}
						changed = true
						continue
					}
					for _, c := range p.callees[id] {
						if _, has := res[c]; has {
							res[id] = factVal{via: c}
							changed = true
							break
						}
					}
				}
			}
		}
		p.facts[key] = res
	}
}

// HasFact reports whether fn (or anything it transitively calls within the
// program) carries the named fact. Unknown functions have no facts.
func (p *Program) HasFact(analyzer, name string, fn *types.Func) bool {
	if fn == nil {
		return false
	}
	res := p.facts[analyzer+"/"+name]
	_, ok := res[idOf(fn)]
	return ok
}

// Why renders the witness chain for a fact as "caller -> callee -> leaf:
// occurrence", for diagnostics that must explain a transitive verdict.
func (p *Program) Why(analyzer, name string, fn *types.Func) string {
	res := p.facts[analyzer+"/"+name]
	if fn == nil || res == nil {
		return ""
	}
	id := idOf(fn)
	seen := map[FuncID]bool{}
	var parts []string
	for {
		v, ok := res[id]
		if !ok || seen[id] {
			break
		}
		seen[id] = true
		if v.desc != "" {
			parts = append(parts, shortID(id)+": "+v.desc)
			break
		}
		parts = append(parts, shortID(id))
		id = v.via
	}
	return strings.Join(parts, " -> ")
}

// FuncOf returns the program's record for fn, if fn is declared in one of
// the loaded packages.
func (p *Program) FuncOf(fn *types.Func) (*ProgFunc, bool) {
	if fn == nil {
		return nil, false
	}
	f, ok := p.funcs[idOf(fn)]
	return f, ok
}

// Funcs returns every declared function in deterministic order.
func (p *Program) Funcs() []*ProgFunc {
	out := make([]*ProgFunc, 0, len(p.ids))
	for _, id := range p.ids {
		out = append(out, p.funcs[id])
	}
	return out
}

// CalleesOf returns f's in-program direct callees in deterministic order.
func (p *Program) CalleesOf(f *ProgFunc) []*ProgFunc {
	ids := p.callees[f.ID]
	out := make([]*ProgFunc, 0, len(ids))
	for _, id := range ids {
		out = append(out, p.funcs[id])
	}
	return out
}

// shortID strips the module prefix so chains stay readable:
// "(*repro/internal/service.Service).checkin" -> "(*service.Service).checkin".
func shortID(id FuncID) string {
	s := string(id)
	s = strings.ReplaceAll(s, "repro/internal/", "")
	return strings.ReplaceAll(s, "repro/", "")
}

// Run computes every analyzer's facts over the whole program, then applies
// each analyzer to each package, returning findings sorted by position.
func (p *Program) Run(analyzers []*Analyzer) ([]Diagnostic, error) {
	var defs []*FactDef
	for _, a := range analyzers {
		defs = append(defs, a.Facts...)
	}
	p.computeFacts(defs)
	var out []Diagnostic
	for _, a := range analyzers {
		for _, pkg := range p.Pkgs {
			pass := &Pass{
				Analyzer:  a,
				Fset:      pkg.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				Package:   pkg,
				Prog:      p,
			}
			if err := a.Run(pass); err != nil {
				return nil, &runError{analyzer: a.Name, pkg: pkg.Path, err: err}
			}
			out = append(out, pass.diags...)
		}
	}
	sortDiagnostics(out)
	return out, nil
}

type runError struct {
	analyzer, pkg string
	err           error
}

func (e *runError) Error() string {
	return e.analyzer + ": " + e.pkg + ": " + e.err.Error()
}

func (e *runError) Unwrap() error { return e.err }
