package lintkit

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLoadFilesReportsAllTypeErrors pins that one package's type errors
// are reported together: the old behavior stopped at the first, hiding
// the rest.
func TestLoadFilesReportsAllTypeErrors(t *testing.T) {
	dir := writePkg(t, `package p

func f() int { return "not an int" }

func g() { undeclared() }
`)
	_, err := NewLoader().LoadDir("p", dir, true)
	if err == nil {
		t.Fatal("LoadDir succeeded on a package with two type errors")
	}
	msg := err.Error()
	for _, frag := range []string{"2 error(s)", "cannot use", "undeclared"} {
		if !strings.Contains(msg, frag) {
			t.Errorf("error %q does not mention %q", msg, frag)
		}
	}
}

// TestLoadPackagesReportsSiblingErrors pins the batch contract: a broken
// package does not hide its siblings' errors, and clean siblings still
// load.
func TestLoadPackagesReportsSiblingErrors(t *testing.T) {
	root := t.TempDir()
	mk := func(name, src string) ListedPackage {
		t.Helper()
		dir := filepath.Join(root, name)
		if err := os.MkdirAll(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, name+".go"), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
		return ListedPackage{Dir: dir, ImportPath: name, Name: name, GoFiles: []string{name + ".go"}}
	}
	listed := []ListedPackage{
		mk("alpha", "package alpha\n\nfunc A() int { return nope }\n"),
		mk("beta", "package beta\n\nfunc B() {}\n"),
		mk("gamma", "package gamma\n\nfunc C() { missing() }\n"),
	}
	pkgs, err := NewLoader().LoadPackages(listed)
	if err == nil {
		t.Fatal("LoadPackages succeeded with two broken packages in the batch")
	}
	msg := err.Error()
	for _, frag := range []string{"alpha", "gamma"} {
		if !strings.Contains(msg, frag) {
			t.Errorf("batch error %q does not mention broken package %q", msg, frag)
		}
	}
	if len(pkgs) != 1 || pkgs[0].Path != "beta" {
		t.Errorf("clean sibling not returned: got %d packages", len(pkgs))
	}
}

// TestLoadTreeResolvesSiblingImports pins the fixture-tree loader: a
// testdata package importing a sibling testdata package type-checks, with
// the sibling's types visible.
func TestLoadTreeResolvesSiblingImports(t *testing.T) {
	dir := t.TempDir()
	sub := filepath.Join(dir, "dep")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(sub, "dep.go"),
		[]byte("package dep\n\ntype Thing struct{ N int }\n\nfunc Make() Thing { return Thing{N: 1} }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "top.go"),
		[]byte("package tree\n\nimport \"tree/dep\"\n\nfunc Use() int { return dep.Make().N }\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	pkgs, err := NewLoader().LoadTree("tree", dir, true)
	if err != nil {
		t.Fatalf("LoadTree: %v", err)
	}
	if len(pkgs) != 2 || pkgs[0].Path != "tree" || pkgs[1].Path != "tree/dep" {
		t.Fatalf("LoadTree packages = %v, want [tree tree/dep]", pkgPaths(pkgs))
	}
}

func pkgPaths(pkgs []*Package) []string {
	out := make([]string, len(pkgs))
	for i, p := range pkgs {
		out[i] = p.Path
	}
	return out
}
