package lintkit_test

import (
	"bufio"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"regexp"
	"slices"
	"strings"
	"testing"
)

// allowDirective matches a real //sillint:allow directive: the comment
// opener at line start or after whitespace (a quoted mention inside a doc
// comment does not count) followed by the analyzer name(s).
var allowDirective = regexp.MustCompile(`(?:^|\s)//sillint:allow[ \t]+(\S+)`)

// TestAllowBudget pins the repo's suppression budget: the set of
// //sillint:allow directives in the real tree (outside testdata, _test.go
// files, and the analyzers' own sources) must exactly match
// lint-allows.txt at the repo root. Growing the budget is a deliberate,
// reviewed act — the same commit must add the line.
func TestAllowBudget(t *testing.T) {
	root, err := filepath.Abs("../../..")
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	err = filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if name == ".git" || name == "testdata" || path == filepath.Join(root, "internal", "lint") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			return nil
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		for _, line := range strings.Split(string(data), "\n") {
			if m := allowDirective.FindStringSubmatch(line); m != nil {
				got = append(got, filepath.ToSlash(rel)+" "+m[1])
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	slices.Sort(got)

	var want []string
	f, err := os.Open(filepath.Join(root, "lint-allows.txt"))
	if err != nil {
		t.Fatalf("reading the budget file: %v", err)
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		want = append(want, line)
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	slices.Sort(want)

	if !slices.Equal(got, want) {
		var b strings.Builder
		fmt.Fprintf(&b, "suppression budget mismatch between the tree and lint-allows.txt\n")
		for _, line := range diffLines(want, got) {
			fmt.Fprintln(&b, line)
		}
		b.WriteString("every //sillint:allow needs a matching \"<path> <analyzer>\" line in lint-allows.txt (and vice versa)")
		t.Error(b.String())
	}
}

// diffLines renders a multiset diff: lines only in want (-) or got (+).
func diffLines(want, got []string) []string {
	count := map[string]int{}
	for _, w := range want {
		count[w]--
	}
	for _, g := range got {
		count[g]++
	}
	keys := make([]string, 0, len(count))
	for k, n := range count {
		if n != 0 {
			keys = append(keys, k)
		}
	}
	slices.Sort(keys)
	var out []string
	for _, k := range keys {
		n := count[k]
		sign := "+"
		if n < 0 {
			sign, n = "-", -n
		}
		for range n {
			out = append(out, sign+" "+k)
		}
	}
	return out
}
