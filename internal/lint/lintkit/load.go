package lintkit

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"io/fs"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path ("repro/internal/path", or synthetic for testdata)
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info

	allowed map[allowKey]map[string]bool // //sillint:allow index, built lazily
}

type allowKey struct {
	file string
	line int
}

// Loader parses and type-checks packages. Imports — both standard library
// and this module's own packages — resolve through one shared
// go/importer source importer, so dependencies are checked once and cached
// across every target package of a sillint run. Source-importing keeps the
// loader working offline with a zero-dependency go.mod (no export data,
// no golang.org/x/tools).
type Loader struct {
	fset *token.FileSet
	imp  types.ImporterFrom
}

// NewLoader returns a loader with a fresh file set and import cache.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		fset: fset,
		imp:  importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
}

// LoadFiles parses and type-checks the given files as one package named
// path. Files must belong to a single package. All parse errors across the
// file set, and all type errors across the package, are reported together
// rather than aborting on the first.
func (l *Loader) LoadFiles(path, dir string, filenames []string) (*Package, error) {
	return l.loadFiles(path, dir, filenames, l.imp)
}

func (l *Loader) loadFiles(path, dir string, filenames []string, imp types.Importer) (*Package, error) {
	if len(filenames) == 0 {
		return nil, fmt.Errorf("lintkit: no Go files for %s", path)
	}
	sort.Strings(filenames)
	var files []*ast.File
	var parseErrs []error
	for _, name := range filenames {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments)
		if err != nil {
			parseErrs = append(parseErrs, err)
			continue
		}
		files = append(files, f)
	}
	if len(parseErrs) > 0 {
		return nil, fmt.Errorf("lintkit: parsing %s: %w", path, errors.Join(parseErrs...))
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	// The Error hook makes the checker continue past each error so one
	// mistake does not mask the rest of the package's problems.
	var typeErrs []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	tpkg, checkErr := conf.Check(path, l.fset, files, info)
	if len(typeErrs) > 0 {
		msgs := make([]string, len(typeErrs))
		for i, e := range typeErrs {
			msgs[i] = e.Error()
		}
		return nil, fmt.Errorf("lintkit: type-checking %s: %d error(s):\n\t%s",
			path, len(typeErrs), strings.Join(msgs, "\n\t"))
	}
	if checkErr != nil {
		return nil, fmt.Errorf("lintkit: type-checking %s: %w", path, checkErr)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// LoadDir loads every .go file directly in dir (including _test.go files
// when includeTests is set — the analyzers' test-file exemptions are
// position-based, so the test harness loads them to exercise that path).
// Files must all declare the same package.
func (l *Loader) LoadDir(path, dir string, includeTests bool) (*Package, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	var filenames []string
	for _, m := range matches {
		if !includeTests && isTestFile(m) {
			continue
		}
		filenames = append(filenames, m)
	}
	return l.LoadFiles(path, dir, filenames)
}

func isTestFile(name string) bool {
	base := filepath.Base(name)
	return len(base) > len("_test.go") && base[len(base)-len("_test.go"):] == "_test.go"
}

// ListedPackage is the subset of `go list -json` output the driver needs.
type ListedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
}

// GoList expands package patterns (e.g. "./...") via the go command.
func GoList(patterns ...string) ([]ListedPackage, error) {
	args := append([]string{"list", "-json=Dir,ImportPath,Name,GoFiles"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []ListedPackage
	for {
		var p ListedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// LoadPackages parses and type-checks every listed package, continuing
// past failures so one broken package does not hide its siblings' errors:
// the returned error joins every package's failure. Packages that loaded
// cleanly are returned even when the batch as a whole errs.
func (l *Loader) LoadPackages(listed []ListedPackage) ([]*Package, error) {
	var pkgs []*Package
	var loadErrs []error
	for _, lp := range listed {
		if len(lp.GoFiles) == 0 {
			continue
		}
		files := make([]string, 0, len(lp.GoFiles))
		for _, f := range lp.GoFiles {
			files = append(files, filepath.Join(lp.Dir, f))
		}
		p, err := l.LoadFiles(lp.ImportPath, lp.Dir, files)
		if err != nil {
			loadErrs = append(loadErrs, err)
			continue
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, errors.Join(loadErrs...)
}

// Load lists, parses, and type-checks the packages matching the patterns,
// in deterministic import-path order.
func Load(patterns ...string) ([]*Package, error) {
	listed, err := GoList(patterns...)
	if err != nil {
		return nil, err
	}
	sort.Slice(listed, func(i, j int) bool { return listed[i].ImportPath < listed[j].ImportPath })
	pkgs, err := NewLoader().LoadPackages(listed)
	if err != nil {
		return nil, err
	}
	return pkgs, nil
}

// treeImporter resolves a fixture tree's own import paths to the packages
// type-checked so far, falling back to the module/stdlib source importer.
// This is what lets a testdata package import a sibling testdata package
// that no GOPATH or module file covers.
type treeImporter struct {
	local    map[string]*types.Package
	fallback types.ImporterFrom
}

func (t *treeImporter) Import(path string) (*types.Package, error) {
	return t.ImportFrom(path, "", 0)
}

func (t *treeImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	if p := t.local[path]; p != nil {
		return p, nil
	}
	return t.fallback.ImportFrom(path, dir, mode)
}

// LoadTree loads every directory under root that contains .go files as one
// multi-package program: the directory at root gets import path prefix,
// subdirectories get prefix + "/" + their slash-separated relative path,
// and imports of those paths resolve within the tree before falling back
// to the shared source importer. Packages are type-checked in dependency
// order and returned sorted by import path.
func (l *Loader) LoadTree(prefix, root string, includeTests bool) ([]*Package, error) {
	type treePkg struct {
		path, dir string
		filenames []string
		imports   map[string]bool
	}
	byPath := map[string]*treePkg{}
	var paths []string
	err := filepath.WalkDir(root, func(p string, d fs.DirEntry, err error) error {
		if err != nil || !d.IsDir() {
			return err
		}
		matches, err := filepath.Glob(filepath.Join(p, "*.go"))
		if err != nil {
			return err
		}
		var filenames []string
		for _, m := range matches {
			if !includeTests && isTestFile(m) {
				continue
			}
			filenames = append(filenames, m)
		}
		if len(filenames) == 0 {
			return nil
		}
		rel, err := filepath.Rel(root, p)
		if err != nil {
			return err
		}
		ip := prefix
		if rel != "." {
			ip = prefix + "/" + filepath.ToSlash(rel)
		}
		byPath[ip] = &treePkg{path: ip, dir: p, filenames: filenames, imports: map[string]bool{}}
		paths = append(paths, ip)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if len(paths) == 0 {
		return nil, fmt.Errorf("lintkit: no Go packages under %s", root)
	}
	sort.Strings(paths)
	// Record intra-tree imports (a cheap parse of import clauses only) to
	// type-check dependencies first; Go forbids import cycles, so a cycle
	// here is a fixture bug worth a clear error.
	for _, ip := range paths {
		tp := byPath[ip]
		for _, name := range tp.filenames {
			f, err := parser.ParseFile(token.NewFileSet(), name, nil, parser.ImportsOnly)
			if err != nil {
				continue // the real parse below reports this properly
			}
			for _, spec := range f.Imports {
				dep, err := strconv.Unquote(spec.Path.Value)
				if err == nil && byPath[dep] != nil && dep != ip {
					tp.imports[dep] = true
				}
			}
		}
	}
	imp := &treeImporter{local: map[string]*types.Package{}, fallback: l.imp}
	checked := map[string]*Package{}
	visiting := map[string]bool{}
	var loadErrs []error
	var check func(ip string) *Package
	check = func(ip string) *Package {
		if p, ok := checked[ip]; ok {
			return p
		}
		if visiting[ip] {
			loadErrs = append(loadErrs, fmt.Errorf("lintkit: import cycle through %s", ip))
			return nil
		}
		visiting[ip] = true
		defer delete(visiting, ip)
		tp := byPath[ip]
		deps := make([]string, 0, len(tp.imports))
		for dep := range tp.imports {
			deps = append(deps, dep)
		}
		sort.Strings(deps)
		for _, dep := range deps {
			check(dep)
		}
		p, err := l.loadFiles(ip, tp.dir, tp.filenames, imp)
		if err != nil {
			loadErrs = append(loadErrs, err)
			checked[ip] = nil
			return nil
		}
		checked[ip] = p
		imp.local[ip] = p.Types
		return p
	}
	var pkgs []*Package
	for _, ip := range paths {
		if p := check(ip); p != nil {
			pkgs = append(pkgs, p)
		}
	}
	if err := errors.Join(loadErrs...); err != nil {
		return nil, err
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}
