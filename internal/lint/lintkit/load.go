package lintkit

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, type-checked package.
type Package struct {
	Path  string // import path ("repro/internal/path", or synthetic for testdata)
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader parses and type-checks packages. Imports — both standard library
// and this module's own packages — resolve through one shared
// go/importer source importer, so dependencies are checked once and cached
// across every target package of a sillint run. Source-importing keeps the
// loader working offline with a zero-dependency go.mod (no export data,
// no golang.org/x/tools).
type Loader struct {
	fset *token.FileSet
	imp  types.ImporterFrom
}

// NewLoader returns a loader with a fresh file set and import cache.
func NewLoader() *Loader {
	fset := token.NewFileSet()
	return &Loader{
		fset: fset,
		imp:  importer.ForCompiler(fset, "source", nil).(types.ImporterFrom),
	}
}

// LoadFiles parses and type-checks the given files as one package named
// path. Files must belong to a single package.
func (l *Loader) LoadFiles(path, dir string, filenames []string) (*Package, error) {
	if len(filenames) == 0 {
		return nil, fmt.Errorf("lintkit: no Go files for %s", path)
	}
	sort.Strings(filenames)
	var files []*ast.File
	for _, name := range filenames {
		f, err := parser.ParseFile(l.fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: l.imp}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lintkit: type-checking %s: %w", path, err)
	}
	return &Package{
		Path:  path,
		Dir:   dir,
		Fset:  l.fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	}, nil
}

// LoadDir loads every .go file directly in dir (including _test.go files
// when includeTests is set — the analyzers' test-file exemptions are
// position-based, so the test harness loads them to exercise that path).
// Files must all declare the same package.
func (l *Loader) LoadDir(path, dir string, includeTests bool) (*Package, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.go"))
	if err != nil {
		return nil, err
	}
	var filenames []string
	for _, m := range matches {
		if !includeTests && isTestFile(m) {
			continue
		}
		filenames = append(filenames, m)
	}
	return l.LoadFiles(path, dir, filenames)
}

func isTestFile(name string) bool {
	base := filepath.Base(name)
	return len(base) > len("_test.go") && base[len(base)-len("_test.go"):] == "_test.go"
}

// ListedPackage is the subset of `go list -json` output the driver needs.
type ListedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	GoFiles    []string
}

// GoList expands package patterns (e.g. "./...") via the go command.
func GoList(patterns ...string) ([]ListedPackage, error) {
	args := append([]string{"list", "-json=Dir,ImportPath,Name,GoFiles"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}
	dec := json.NewDecoder(bytes.NewReader(out))
	var pkgs []ListedPackage
	for {
		var p ListedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}

// Load lists, parses, and type-checks the packages matching the patterns,
// in deterministic import-path order.
func Load(patterns ...string) ([]*Package, error) {
	listed, err := GoList(patterns...)
	if err != nil {
		return nil, err
	}
	sort.Slice(listed, func(i, j int) bool { return listed[i].ImportPath < listed[j].ImportPath })
	l := NewLoader()
	var pkgs []*Package
	for _, lp := range listed {
		if len(lp.GoFiles) == 0 {
			continue
		}
		files := make([]string, 0, len(lp.GoFiles))
		for _, f := range lp.GoFiles {
			files = append(files, filepath.Join(lp.Dir, f))
		}
		p, err := l.LoadFiles(lp.ImportPath, lp.Dir, files)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, p)
	}
	return pkgs, nil
}
