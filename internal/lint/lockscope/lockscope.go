// Package lockscope enforces the serving layer's lock discipline: a
// Session/Router/Service method holds its sync locks only around its own
// state — never across a call that leaves the package (HTTP render, user
// callbacks, the analysis pipeline) or blocks on the scheduler (channel
// operations, WaitGroup.Wait). The session is held for the whole request
// pipeline by DESIGN; the mutexes guarding the cache and stats must not
// be, or one slow render serializes the pool.
//
// The check is a linear source-order scan per function: a lock counts as
// held from its Lock()/RLock() call until the matching Unlock()/RUnlock()
// in the same function body; a deferred unlock keeps it held to the end.
// Branch-released locks (unlock inside an if arm) conservatively count as
// released for the statements after the branch, so the analyzer
// under-approximates and never false-positives on the
// check-unlock-early-return idiom.
//
// Callouts are interprocedural: a "callout" fact (does I/O, renders, runs
// the pipeline, or blocks — directly or through any in-program callee) is
// computed bottom-up over the program call graph, so hiding the HTTP call
// behind a helper method, even in another package, no longer hides it from
// the held-lock scan.
package lockscope

import (
	"go/ast"
	"go/token"
	"go/types"
	"slices"
	"sort"
	"strings"

	"repro/internal/lint/lintkit"
)

// Scope lists the packages whose lock discipline is enforced.
var Scope = []string{"repro/internal/service"}

// calloutPkgs are packages a method must not call into while holding a
// sync lock: they render, write to the network, or run the (expensive)
// analysis pipeline.
var calloutPkgs = map[string]string{
	"net/http":                 "HTTP I/O",
	"io":                       "stream I/O",
	"html/template":            "template render",
	"text/template":            "template render",
	"repro/internal/analysis":  "the analysis pipeline",
	"repro/internal/par":       "the parallelism analysis",
	"repro/internal/interfere": "the interference analysis",
}

// fmtWriters are the fmt functions that write to an io.Writer (the pure
// Sprint* family stays legal under a lock).
var fmtWriters = map[string]bool{"Fprint": true, "Fprintf": true, "Fprintln": true}

// CalloutFact marks functions that call out or block — directly, or
// through any in-program callee. An //sillint:allow lockscope directive on
// the occurrence keeps it from seeding the fact.
var CalloutFact = &lintkit.FactDef{
	Analyzer: "lockscope",
	Name:     "callout",
	Doc:      "function does I/O, renders, runs the analysis pipeline, or blocks, directly or through a callee",
	Local:    localCallout,
}

func localCallout(fp *lintkit.FuncPass) string {
	desc := ""
	seed := func(pos token.Pos, what string) {
		if desc == "" && what != "" && !fp.Allowed("lockscope", pos) {
			desc = what
		}
	}
	ast.Inspect(fp.Decl.Body, func(n ast.Node) bool {
		if desc != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // independent scope, like the call graph
		case *ast.GoStmt:
			return false // spawned work runs on another stack
		case *ast.SendStmt:
			seed(n.Pos(), "channel send")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				seed(n.Pos(), "channel receive")
			}
		case *ast.SelectStmt:
			seed(n.Pos(), "select")
		case *ast.CallExpr:
			seed(n.Pos(), calloutDesc(fp.Pkg.Info, n))
		}
		return true
	})
	return desc
}

// Analyzer is the lockscope check.
var Analyzer = &lintkit.Analyzer{
	Name: "lockscope",
	Doc: "service methods must not call out (HTTP render, callbacks, the " +
		"analysis pipeline) or block on channels while holding a sync lock, " +
		"directly or through any transitive callee",
	Facts: []*lintkit.FactDef{CalloutFact},
	Run:   run,
}

func run(pass *lintkit.Pass) error {
	if !slices.Contains(Scope, pass.Pkg.Path()) {
		return nil
	}
	for _, f := range pass.Files {
		if pass.InTestFile(f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				checkFuncBody(pass, fn.Body)
			}
		}
	}
	return nil
}

// event is one lock-relevant occurrence in source order.
type event struct {
	pos  token.Pos
	kind string // "lock", "rlock", "unlock", "runlock", "deferred-unlock", "callout", "block"
	key  string // lock expression rendering, e.g. "s.mu"
	desc string // what the callout/blocking op is
}

// checkFuncBody scans one function scope. Nested function literals are
// independent scopes (their locks/callouts are theirs).
func checkFuncBody(pass *lintkit.Pass, body *ast.BlockStmt) {
	// go-statement calls are recorded so the transitive check can skip
	// them: the spawned callee runs on its own stack, not under this
	// function's locks. (Direct callout syntax under a lock still flags —
	// even spawning mid-critical-section is scan-visible work.)
	goCalls := map[*ast.CallExpr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			goCalls[g.Call] = true
		}
		return true
	})
	var events []event
	collect(pass, body, goCalls, &events)
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	held := map[string]bool{}
	for _, ev := range events {
		switch ev.kind {
		case "lock", "rlock":
			if held[ev.key] {
				pass.Reportf(ev.pos, "%s locked again while already held: self-deadlock", ev.key)
			}
			held[ev.key] = true
		case "unlock", "runlock":
			delete(held, ev.key)
		case "deferred-unlock":
			// Held until return; nothing to release during the scan.
		case "callout", "block":
			if len(held) == 0 {
				continue
			}
			keys := make([]string, 0, len(held))
			for k := range held {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			pass.Reportf(ev.pos, "%s while holding %s: release the lock first (one slow call under it serializes every request)",
				ev.desc, strings.Join(keys, ", "))
		}
	}
}

// collect walks stmts in source order, recording lock events and
// flaggable operations. FuncLit bodies are recursed into as fresh scopes.
func collect(pass *lintkit.Pass, n ast.Node, goCalls map[*ast.CallExpr]bool, events *[]event) {
	ast.Inspect(n, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			checkFuncBody(pass, n.Body)
			return false
		case *ast.DeferStmt:
			if key, kind := lockCall(pass.TypesInfo, n.Call); kind == "unlock" || kind == "runlock" {
				*events = append(*events, event{pos: n.Pos(), kind: "deferred-" + "unlock", key: key})
				return false
			}
			collect(pass, n.Call, goCalls, events)
			return false
		case *ast.SendStmt:
			*events = append(*events, event{pos: n.Pos(), kind: "block", desc: "channel send"})
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				*events = append(*events, event{pos: n.Pos(), kind: "block", desc: "channel receive"})
			}
		case *ast.SelectStmt:
			*events = append(*events, event{pos: n.Pos(), kind: "block", desc: "select"})
		case *ast.CallExpr:
			if key, kind := lockCall(pass.TypesInfo, n); kind != "" {
				*events = append(*events, event{pos: n.Pos(), kind: kind, key: key})
				return true
			}
			if desc := calloutDesc(pass.TypesInfo, n); desc != "" {
				*events = append(*events, event{pos: n.Pos(), kind: "callout", desc: desc})
				return true
			}
			// The interprocedural case: a direct call to an in-program
			// function that calls out or blocks somewhere down its call
			// tree. `go f()` is exempt — the spawned work is not under
			// this function's locks.
			if goCalls[n] {
				return true
			}
			if callee := lintkit.CalleeOf(pass.TypesInfo, n); callee != nil {
				if _, inProg := pass.Prog.FuncOf(callee); inProg &&
					pass.Prog.HasFact("lockscope", "callout", callee) {
					*events = append(*events, event{pos: n.Pos(), kind: "callout",
						desc: "transitive callout (" + pass.Prog.Why("lockscope", "callout", callee) + ")"})
				}
			}
		}
		return true
	})
}

// lockCall classifies x.Lock/RLock/Unlock/RUnlock calls on sync mutexes,
// returning the lock's key expression and the event kind.
func lockCall(info *types.Info, call *ast.CallExpr) (key, kind string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	obj := info.Uses[sel.Sel]
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", ""
	}
	switch fn.Name() {
	case "Lock":
		kind = "lock"
	case "RLock":
		kind = "rlock"
	case "Unlock":
		kind = "unlock"
	case "RUnlock":
		kind = "runlock"
	case "Wait":
		// sync.WaitGroup.Wait / sync.Cond.Wait block on other goroutines.
		return "", ""
	default:
		return "", ""
	}
	return types.ExprString(sel.X), kind
}

// calloutDesc describes a call that must not run under a lock, or "".
func calloutDesc(info *types.Info, call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		// sync.WaitGroup.Wait blocks on other goroutines' progress.
		if obj, ok := info.Uses[fun.Sel].(*types.Func); ok && obj.Pkg() != nil &&
			obj.Pkg().Path() == "sync" && obj.Name() == "Wait" {
			return "sync Wait"
		}
		// Package-level function of a callout package, or fmt writer.
		if ident, ok := fun.X.(*ast.Ident); ok {
			if pkgName, ok := info.Uses[ident].(*types.PkgName); ok {
				path := pkgName.Imported().Path()
				if what, ok := calloutPkgs[path]; ok {
					return what + " (" + path + "." + fun.Sel.Name + ")"
				}
				if path == "fmt" && fmtWriters[fun.Sel.Name] {
					return "writer output (fmt." + fun.Sel.Name + ")"
				}
				return ""
			}
		}
		// Method whose defining package is a callout package (e.g.
		// http.ResponseWriter.Write, json.Encoder.Encode on a net/http
		// response body).
		if selection := info.Selections[fun]; selection != nil && selection.Kind() == types.MethodVal {
			if fn, ok := selection.Obj().(*types.Func); ok && fn.Pkg() != nil {
				if what, ok := calloutPkgs[fn.Pkg().Path()]; ok {
					return what + " (" + fn.Pkg().Name() + " " + fn.Name() + " method)"
				}
			}
			return ""
		}
		// Calling a func-typed field (a stored callback).
		if v, ok := info.Uses[fun.Sel].(*types.Var); ok {
			if _, isFunc := v.Type().Underlying().(*types.Signature); isFunc {
				return "callback " + types.ExprString(fun)
			}
		}
	case *ast.Ident:
		// Calling a func-typed parameter or variable (a callback handed in
		// by the user), as opposed to a declared function.
		if v, ok := info.Uses[fun].(*types.Var); ok {
			if _, isFunc := v.Type().Underlying().(*types.Signature); isFunc {
				return "callback " + fun.Name
			}
		}
	}
	return ""
}
