package lockscope_test

import (
	"testing"

	"repro/internal/lint/lintest"
	"repro/internal/lint/lockscope"
)

// TestLockDiscipline seeds every callout/blocking shape under a held lock
// (HTTP render, callbacks, channel ops, WaitGroup.Wait, the analysis
// pipeline, self-deadlock) and the clean idioms (release-first,
// check-unlock-early-return, lock-balanced closures, own-state work).
func TestLockDiscipline(t *testing.T) {
	orig := lockscope.Scope
	lockscope.Scope = append([]string{"testdata/lock"}, orig...)
	defer func() { lockscope.Scope = orig }()
	lintest.Run(t, lockscope.Analyzer, "testdata/src/lock")
}

// TestOutOfScopePackagesPass proves the discipline is scoped to the
// serving layer: the same seeded patterns are silent out of scope.
func TestOutOfScopePackagesPass(t *testing.T) {
	orig := lockscope.Scope
	lockscope.Scope = []string{"repro/internal/service"}
	defer func() { lockscope.Scope = orig }()
	lintest.Run(t, lockscope.Analyzer, "testdata/src/lockclean")
}
