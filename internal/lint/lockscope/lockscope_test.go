package lockscope_test

import (
	"testing"

	"repro/internal/lint/lintest"
	"repro/internal/lint/lintkit"
	"repro/internal/lint/lockscope"
)

// TestLockDiscipline seeds every callout/blocking shape under a held lock
// (HTTP render, callbacks, channel ops, WaitGroup.Wait, the analysis
// pipeline, self-deadlock) and the clean idioms (release-first,
// check-unlock-early-return, lock-balanced closures, own-state work).
func TestLockDiscipline(t *testing.T) {
	orig := lockscope.Scope
	lockscope.Scope = append([]string{"testdata/lock"}, orig...)
	defer func() { lockscope.Scope = orig }()
	lintest.Run(t, lockscope.Analyzer, "testdata/src/lock")
}

// TestTransitiveCalloutAcrossPackages is the regression the direct scan
// provably missed: the HTTP call hides behind a helper chain in a sibling
// package (a method, which the selector-based scan could never classify),
// and only the bottom-up callout fact carries it back under the held lock.
func TestTransitiveCalloutAcrossPackages(t *testing.T) {
	orig := lockscope.Scope
	lockscope.Scope = append([]string{"lockm"}, orig...)
	defer func() { lockscope.Scope = orig }()
	lintest.RunTree(t, []*lintkit.Analyzer{lockscope.Analyzer}, "testdata/src/lockm")
}

// TestOutOfScopePackagesPass proves the discipline is scoped to the
// serving layer: the same seeded patterns are silent out of scope.
func TestOutOfScopePackagesPass(t *testing.T) {
	orig := lockscope.Scope
	lockscope.Scope = []string{"repro/internal/service"}
	defer func() { lockscope.Scope = orig }()
	lintest.Run(t, lockscope.Analyzer, "testdata/src/lockclean")
}
