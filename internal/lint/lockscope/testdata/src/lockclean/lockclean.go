// Package lockclean repeats a render-under-lock pattern in a package the
// lockscope discipline does not cover: no findings expected.
package lockclean

import (
	"fmt"
	"net/http"
	"sync"
)

type widget struct {
	mu sync.Mutex
	n  int
}

func (w *widget) render(rw http.ResponseWriter) {
	w.mu.Lock()
	defer w.mu.Unlock()
	fmt.Fprintf(rw, "%d", w.n)
}
