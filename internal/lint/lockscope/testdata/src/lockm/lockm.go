// Package lockm is the cross-package regression: the callout hides
// behind a helper chain in a sibling package, and only the bottom-up
// callout fact carries it back under the held lock.
package lockm

import (
	"sync"

	"lockm/dep"
)

type pool struct {
	mu sync.Mutex
	c  dep.Client
	n  int
}

// pingUnderLock holds the lock across a sibling package's helper chain
// whose leaf does HTTP I/O: finding.
func (p *pool) pingUnderLock() {
	p.mu.Lock()
	defer p.mu.Unlock()
	_ = dep.Relay(p.c) // want `transitive callout \(lockm/dep\.Relay -> \(lockm/dep\.Client\)\.Ping: HTTP I/O \(net/http\.Get\)\) while holding p\.mu`
}

// pingReleased releases first: clean.
func (p *pool) pingReleased() {
	p.mu.Lock()
	p.mu.Unlock()
	_ = dep.Relay(p.c)
}

// sizeUnderLock calls a pure sibling helper under the lock: clean.
func (p *pool) sizeUnderLock() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.n = dep.Size()
}
