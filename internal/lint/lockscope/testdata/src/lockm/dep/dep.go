// Package dep hosts the leaf I/O one package away from the lock.
package dep

import "net/http"

// Client pings an upstream; the HTTP call is a method, so the old
// direct scan's package-selector check could never see it.
type Client struct{}

// Ping does the actual network I/O.
func (Client) Ping() error {
	_, err := http.Get("http://upstream/ping")
	return err
}

// Relay adds a second hop between the lock and the I/O.
func Relay(c Client) error { return c.Ping() }

// Size is a pure helper: no callout fact, callers stay clean.
func Size() int { return 4 }
