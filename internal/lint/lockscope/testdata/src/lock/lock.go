// Package lock is lockscope testdata: callouts and blocking operations
// under a sync lock in a serving type.
package lock

import (
	"context"

	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"repro/internal/analysis"
	"repro/internal/sil/ast"
)

type server struct {
	mu      sync.Mutex
	state   map[string]int
	onEvict func(string)
	work    chan string
}

// renderUnderLock holds the cache lock across HTTP I/O: findings.
func (s *server) renderUnderLock(w http.ResponseWriter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Fprintf(w, "%d entries", len(s.state)) // want `writer output \(fmt\.Fprintf\) while holding s\.mu`
	http.Error(w, "busy", 503)                 // want `HTTP I/O \(net/http\.Error\) while holding s\.mu`
}

// encodeUnderLock renders through a json.Encoder onto the response writer
// while holding the lock: finding (the ResponseWriter Write method).
func (s *server) encodeUnderLock(w http.ResponseWriter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, _ = w.Write([]byte("x")) // want `HTTP I/O \(http Write method\) while holding s\.mu`
	_ = json.NewEncoder(w)
}

// callbackUnderLock invokes a stored user callback under the lock: finding.
func (s *server) callbackUnderLock(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.state, key)
	s.onEvict(key) // want `callback s\.onEvict while holding s\.mu`
}

// callbackParamUnderLock invokes a callback parameter under the lock.
func (s *server) callbackParamUnderLock(visit func(string)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for k := range s.state {
		visit(k) // want `callback visit while holding s\.mu`
	}
}

// channelUnderLock blocks the pool on scheduler progress: findings.
func (s *server) channelUnderLock(k string) {
	s.mu.Lock()
	s.work <- k // want `channel send while holding s\.mu`
	<-s.work    // want `channel receive while holding s\.mu`
	s.mu.Unlock()
}

// analyzeUnderLock runs the expensive pipeline under the cache lock:
// finding.
func (s *server) analyzeUnderLock(prog *ast.Program) {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, _ = analysis.Analyze(context.Background(), prog, analysis.Options{}) // want `the analysis pipeline \(repro/internal/analysis\.Analyze\) while holding s\.mu`
}

// waitUnderLock blocks on other goroutines' progress: finding.
func (s *server) waitUnderLock(wg *sync.WaitGroup) {
	s.mu.Lock()
	defer s.mu.Unlock()
	wg.Wait() // want `sync Wait while holding s\.mu`
}

// doubleLock re-acquires a held lock: finding.
func (s *server) doubleLock() {
	s.mu.Lock()
	s.mu.Lock() // want `s\.mu locked again while already held: self-deadlock`
	s.mu.Unlock()
	s.mu.Unlock()
}

// releaseFirst is the correct shape: the lock guards only own state.
func (s *server) releaseFirst(w http.ResponseWriter) {
	s.mu.Lock()
	n := len(s.state)
	s.mu.Unlock()
	fmt.Fprintf(w, "%d entries", n)
}

// checkUnlockEarlyReturn is the coalescing idiom: the branch releases
// before blocking, so the receive is clean.
func (s *server) checkUnlockEarlyReturn(k string) int {
	s.mu.Lock()
	if n, ok := s.state[k]; ok {
		s.mu.Unlock()
		return n
	}
	s.mu.Unlock()
	<-s.work
	return 0
}

// lockedClosure lock-balances inside a function literal: a fresh scope,
// no findings.
func (s *server) lockedClosure() func() {
	return func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.state["x"]++
	}
}

// pureWorkUnderLock touches only own state: clean.
func (s *server) pureWorkUnderLock(k string) string {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state[k]++
	return fmt.Sprintf("%s=%d", k, s.state[k])
}

// suppressed is the audited escape hatch.
func (s *server) suppressed(w http.ResponseWriter) {
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Fprint(w, "ok") //sillint:allow lockscope startup-only path, never concurrent
}

// flush hides the HTTP call one hop below the lock scope.
func (s *server) flush() {
	_, _ = http.Get("http://upstream/flush")
}

// notify hides it a second hop down.
func (s *server) notify() { s.flush() }

// notifyUnderLock is the regression the direct scan provably missed: the
// callout is two same-package helper calls away, so no callout syntax is
// visible in this body — only the bottom-up fact carries it back here.
func (s *server) notifyUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.notify() // want `transitive callout \(.*notify -> .*flush: HTTP I/O \(net/http\.Get\)\) while holding s\.mu`
}

// spawnUnderLock spawns the same helper: the goroutine runs on its own
// stack, not under s.mu, so the transitive check stays silent.
func (s *server) spawnUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go s.notify()
}

// bump is a pure own-state helper: no callout fact.
func (s *server) bump(k string) { s.state[k]++ }

// bumpUnderLock calls the pure helper under the lock: clean.
func (s *server) bumpUnderLock(k string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bump(k)
}

// auditedFlush's occurrence is annotated, so it seeds no callout fact and
// lock-holding callers stay clean.
func (s *server) auditedFlush() {
	_, _ = http.Get("http://localhost/healthz") //sillint:allow lockscope startup probe, never under load
}

// auditedUnderLock inherits the audit: clean.
func (s *server) auditedUnderLock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.auditedFlush()
}
