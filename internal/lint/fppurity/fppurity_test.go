package fppurity_test

import (
	"testing"

	"repro/internal/lint/fppurity"
	"repro/internal/lint/lintest"
	"repro/internal/lint/lintkit"
)

// TestFingerprintPurity drives the cross-package fixtures: poisoned values
// (wall clock, env, pointer addresses, schedule knobs, pure work caps)
// reach Mix-family sinks directly, through locals, and through callees in
// a sibling package; clean flows (canonical bytes, semantics-affecting
// options, constant-returning callees) stay silent.
func TestFingerprintPurity(t *testing.T) {
	orig := fppurity.Scope
	fppurity.Scope = append([]string{"fptree"}, orig...)
	defer func() { fppurity.Scope = orig }()
	lintest.RunTree(t, []*lintkit.Analyzer{fppurity.Analyzer}, "testdata/src/fptree")
}

// TestOutOfScopePackagesPass proves sinks outside Scope are silent — e.g.
// the ring-hash Mix64 in shard routing is not a result fingerprint.
func TestOutOfScopePackagesPass(t *testing.T) {
	orig := fppurity.Scope
	fppurity.Scope = []string{"repro/internal/service"}
	defer func() { fppurity.Scope = orig }()
	lintest.RunTree(t, []*lintkit.Analyzer{fppurity.Analyzer}, "testdata/src/fpclean")
}
