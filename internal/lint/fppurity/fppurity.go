// Package fppurity is the static side of the serving layer's fingerprint
// contract: a result fingerprint may fold ONLY the canonical program
// bytes and semantics-affecting options. Anything tied to the process,
// the schedule, or pure work caps — wall-clock reads, environment
// variables, pointer addresses, Workers, Budgets, MaxWorklist, pool and
// cache capacities — must never reach a Mix-family sink, or byte-identical
// programs would stop sharing cache entries (and worse, entries could
// collide across genuinely different results only by luck of the knobs).
//
// The analysis is a taint analysis over the program call graph: poisoned
// sources are classified syntactically (with type information), functions
// whose return values derive from a poisoned source are computed by a
// bottom-up fixpoint (so a wall-clock read two packages away still
// poisons the value at the sink), and every argument of every Mix-family
// sink call in Scope is checked for poisoned subexpressions.
package fppurity

import (
	"go/ast"
	"go/types"
	"slices"
	"strings"

	"repro/internal/lint/lintkit"
)

// Scope lists the packages whose fingerprint sinks are checked.
var Scope = []string{"repro/internal/service"}

// poisonFields are struct fields that never affect a successful result's
// bytes: scheduling knobs, pure work caps, and serving capacities. The
// key is the defining struct's type name — the repo keeps these on
// analysis.Options/analysis.Budgets and service.Options.
var poisonFields = map[string]map[string]string{
	"Options": {
		"Workers":            "worker count (schedule knob)",
		"Budgets":            "work budgets (pure caps)",
		"MaxWorklist":        "worklist cap (pure work cap)",
		"Sessions":           "session-pool capacity",
		"CacheCapacity":      "cache capacity",
		"SummaryCapacity":    "summary-store capacity",
		"MaxQueue":           "admission-queue bound",
		"RequestTimeout":     "request deadline",
		"ResetInternedPaths": "epoch-reset budget",
	},
	"Budgets": {
		"MaxRounds":        "round budget (pure work cap)",
		"MaxInternedPaths": "interned-path budget (pure work cap)",
	},
}

// poisonCalls are functions whose results are process- or time-dependent.
var poisonCalls = map[string]map[string]string{
	"time":      {"Now": "wall clock", "Since": "wall clock", "Until": "wall clock"},
	"os":        {"Getenv": "environment", "LookupEnv": "environment", "Environ": "environment", "Getpid": "process identity"},
	"math/rand": {"Int": "randomness", "Intn": "randomness", "Int63": "randomness", "Uint64": "randomness", "Float64": "randomness"},
}

// Analyzer is the fppurity check.
var Analyzer = &lintkit.Analyzer{
	Name: "fppurity",
	Doc:  "only canonical program bytes and semantics-affecting options may flow into fingerprint Mix-family sinks; wall-clock, env, pointer addresses, Workers, Budgets, and capacity knobs are poisoned",
	Run:  run,
}

func run(pass *lintkit.Pass) error {
	if !slices.Contains(Scope, pass.Package.Path) {
		return nil
	}
	tf := taintedFuncs(pass.Prog)
	for _, f := range pass.Prog.Funcs() {
		if f.Pkg != pass.Package || f.Decl.Body == nil {
			continue
		}
		locals := taintedLocals(f, tf)
		ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sink := sinkName(pass.TypesInfo, call)
			if sink == "" {
				return true
			}
			for _, arg := range call.Args {
				if desc := poisonIn(f.Pkg.Info, arg, locals, tf); desc != "" {
					pass.Reportf(arg.Pos(),
						"%s flows into fingerprint sink %s; only canonical program bytes and semantics-affecting options may be fingerprinted",
						desc, sink)
				}
			}
			return true
		})
	}
	return nil
}

// sinkName reports a Mix-family method call on a fingerprint type (a named
// type called Fp, or any method whose name starts with "mix"/"Mix" on such
// a type), returning a printable sink name or "".
func sinkName(info *types.Info, call *ast.CallExpr) string {
	fn := lintkit.CalleeOf(info, call)
	if fn == nil {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	if !strings.HasPrefix(strings.ToLower(fn.Name()), "mix") {
		return ""
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Name() != "Fp" {
		return ""
	}
	return "Fp." + fn.Name()
}

// taintedFuncs computes, program-wide, the functions whose return values
// derive from a poisoned source — a bottom-up boolean fixpoint over the
// call graph (monotone, so it terminates and is order-independent; SCCs
// converge by iteration exactly like the fact engine).
func taintedFuncs(prog *lintkit.Program) map[*lintkit.ProgFunc]string {
	tainted := map[*lintkit.ProgFunc]string{}
	funcs := prog.Funcs()
	for changed := true; changed; {
		changed = false
		for _, f := range funcs {
			if f.Decl.Body == nil {
				continue
			}
			if _, done := tainted[f]; done {
				continue
			}
			if desc := returnsTaint(f, tainted); desc != "" {
				tainted[f] = desc
				changed = true
			}
		}
	}
	return tainted
}

// returnsTaint reports whether any return statement of f yields a value
// containing a poisoned source or a tainted local.
func returnsTaint(f *lintkit.ProgFunc, tainted map[*lintkit.ProgFunc]string) string {
	locals := taintedLocals(f, tainted)
	desc := ""
	ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
		if desc != "" {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		for _, res := range ret.Results {
			if d := poisonIn(f.Pkg.Info, res, locals, tainted); d != "" {
				desc = d + " via " + f.Fn.Name()
				return false
			}
		}
		return true
	})
	return desc
}

// taintedLocals finds local variables assigned (transitively) from
// poisoned expressions. Assignments are re-scanned until no new local
// taints, so ordering and loops don't matter.
func taintedLocals(f *lintkit.ProgFunc, tainted map[*lintkit.ProgFunc]string) map[types.Object]string {
	locals := map[types.Object]string{}
	info := f.Pkg.Info
	for changed := true; changed; {
		changed = false
		ast.Inspect(f.Decl.Body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			assign, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, lhs := range assign.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok || id.Name == "_" {
					continue
				}
				obj := info.Defs[id]
				if obj == nil {
					obj = info.Uses[id]
				}
				if obj == nil {
					continue
				}
				if _, done := locals[obj]; done {
					continue
				}
				// With one RHS feeding many LHS (multi-value call), any
				// poison taints every result conservatively.
				var rhs ast.Expr
				if len(assign.Rhs) == len(assign.Lhs) {
					rhs = assign.Rhs[i]
				} else if len(assign.Rhs) == 1 {
					rhs = assign.Rhs[0]
				} else {
					continue
				}
				if desc := poisonIn(info, rhs, locals, tainted); desc != "" {
					locals[obj] = desc
					changed = true
				}
			}
			return true
		})
	}
	return locals
}

// poisonIn scans an expression for a poisoned subexpression and returns a
// description of the first one found (deterministic: source order), or "".
func poisonIn(info *types.Info, expr ast.Expr, locals map[types.Object]string, tainted map[*lintkit.ProgFunc]string) string {
	desc := ""
	ast.Inspect(expr, func(n ast.Node) bool {
		if desc != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.Ident:
			if obj := info.Uses[n]; obj != nil {
				if d, ok := locals[obj]; ok {
					desc = n.Name + " (tainted by " + d + ")"
				}
			}
		case *ast.SelectorExpr:
			if d := poisonField(info, n); d != "" {
				desc = d
			}
		case *ast.CallExpr:
			if d := poisonCall(info, n, tainted); d != "" {
				desc = d
			}
		}
		return true
	})
	return desc
}

func poisonField(info *types.Info, sel *ast.SelectorExpr) string {
	sn, ok := info.Selections[sel]
	if !ok || sn.Kind() != types.FieldVal {
		return ""
	}
	recv := sn.Recv()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return ""
	}
	fields, ok := poisonFields[named.Obj().Name()]
	if !ok {
		return ""
	}
	if why, bad := fields[sel.Sel.Name]; bad {
		return named.Obj().Name() + "." + sel.Sel.Name + " (" + why + ")"
	}
	return ""
}

func poisonCall(info *types.Info, call *ast.CallExpr, tainted map[*lintkit.ProgFunc]string) string {
	// uintptr(unsafe.Pointer(...)) — a pointer address.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && len(call.Args) == 1 {
		if tn, ok := info.Uses[id].(*types.TypeName); ok && tn.Name() == "uintptr" {
			return "pointer address (uintptr conversion)"
		}
	}
	fn := lintkit.CalleeOf(info, call)
	if fn == nil {
		return ""
	}
	if fn.Pkg() != nil {
		if why, bad := poisonCalls[fn.Pkg().Path()][fn.Name()]; bad {
			return fn.Pkg().Path() + "." + fn.Name() + " (" + why + ")"
		}
		// reflect pointer extraction is an address, whatever the method.
		if fn.Pkg().Path() == "reflect" && (fn.Name() == "Pointer" || fn.Name() == "UnsafeAddr") {
			return "pointer address (reflect." + fn.Name() + ")"
		}
	}
	// Calls to in-program functions whose returns are tainted.
	for f, desc := range tainted {
		if f.Fn.Origin() == fn.Origin() || f.Fn.FullName() == fn.FullName() {
			return desc
		}
	}
	return ""
}
