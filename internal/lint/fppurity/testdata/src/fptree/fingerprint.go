package fptree

import (
	"os"
	"time"
	"unsafe"

	"fptree/knobs"
)

// Key exercises every poisoned-source class against the Mix-family sinks.
func Key(src string, o knobs.Options) Fp {
	f := Fp{}
	f.mixString(src)                // clean: canonical bytes
	f.mixInt(o.MaxLoopIters)        // clean: semantics-affecting option
	f.mixInt(o.Workers)             // want `Options.Workers \(worker count \(schedule knob\)\) flows into fingerprint sink Fp.mixInt`
	f.mixInt(o.MaxWorklist)         // want `Options.MaxWorklist.*pure work cap.* flows into fingerprint sink Fp.mixInt`
	f.mixInt(int(knobs.Wall()))     // want `wall clock.* flows into fingerprint sink Fp.mixInt`
	f.mixInt(int(knobs.Indirect())) // want `wall clock.* flows into fingerprint sink Fp.mixInt`
	f.mixInt(int(knobs.Steady()))   // clean: constant-returning callee
	return f
}

// Direct sources poison without a callee in between.
func Direct(f *Fp) {
	f.mix(uint64(time.Now().UnixNano())) // want `time.Now \(wall clock\) flows into fingerprint sink Fp.mix`
	f.mixString(os.Getenv("HOME"))       // want `os.Getenv \(environment\) flows into fingerprint sink Fp.mixString`
}

// Laundered walks a poisoned value through a local before the sink.
func Laundered(f *Fp) {
	stamp := time.Now().UnixNano()
	later := stamp + 10
	f.mix(uint64(later)) // want `later \(tainted by .*wall clock.*\) flows into fingerprint sink Fp.mix`
}

// Address mixes a pointer address.
func Address(f *Fp, p *int) {
	f.mix(uint64(uintptr(unsafe.Pointer(p)))) // want `pointer address \(uintptr conversion\) flows into fingerprint sink Fp.mix`
}

// Allowed is the sanctioned escape hatch: an annotated sink call with a
// reason does not report.
func Allowed(f *Fp, o knobs.Options) {
	f.mixInt(o.Workers) //sillint:allow fppurity fixture: deliberately splitting a debug cache by worker count
}
