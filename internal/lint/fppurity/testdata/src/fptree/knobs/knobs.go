// Package knobs is the sibling package of the fppurity fixtures: poisoned
// values originate here, out of Scope, and reach the sinks in the parent
// package only through the taint fixpoint.
package knobs

import "time"

// Options mirrors the shape the real tree uses: a mix of
// semantics-affecting options and pure scheduling/capacity knobs.
type Options struct {
	MaxLoopIters int // semantics-affecting: may change a successful result
	Workers      int // schedule knob: poisoned
	MaxWorklist  int // pure work cap: poisoned
}

// Wall returns a wall-clock reading; its return value is tainted.
func Wall() int64 { return time.Now().UnixNano() }

// Indirect launders Wall through a second function; still tainted.
func Indirect() int64 {
	v := Wall()
	return v + 1
}

// Steady returns a constant; clean.
func Steady() int64 { return 42 }
