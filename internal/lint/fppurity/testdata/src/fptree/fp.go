// Package fptree holds the in-Scope fingerprint type and its mixers,
// mirroring internal/service's Fp.
package fptree

// Fp is a two-lane fingerprint accumulator.
type Fp struct{ Hi, Lo uint64 }

func (f *Fp) mix(v uint64) { f.Hi ^= v; f.Lo += v }

func (f *Fp) mixInt(v int) { f.mix(uint64(int64(v))) }

func (f *Fp) mixString(s string) {
	for i := 0; i < len(s); i++ {
		f.mix(uint64(s[i]))
	}
}
