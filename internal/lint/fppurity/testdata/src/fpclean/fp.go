// Package fpclean repeats a poisoned sink flow outside fppurity's Scope;
// it must be silent there.
package fpclean

import "time"

type Fp struct{ Hi, Lo uint64 }

func (f *Fp) mix(v uint64) { f.Hi ^= v; f.Lo += v }

func Stamp(f *Fp) {
	f.mix(uint64(time.Now().UnixNano()))
}
