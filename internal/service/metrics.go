// Prometheus text exposition (format 0.0.4) for the serving layer,
// stdlib-only: fixed counter/gauge families over the Service's atomic
// counters plus per-phase latency histograms. A Router aggregates by
// emitting one series per shard under a uniform shard="N" label, so label
// sets stay consistent whatever -shards is and per-shard imbalance stays
// visible to the scraper (sum() in the query layer recovers totals).
//
// Wall-clock timing lives HERE and only here: phase latencies feed
// /metrics and never a rendered result body, so the determinism contract
// (bodies are pure functions of canonical source + options) is untouched.
package service

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync/atomic"
	"time"
)

// metricsNow is the single sanctioned wall-clock read of the serving
// layer. Everything downstream of it ends up in monitoring output only.
func metricsNow() time.Time {
	return time.Now() //sillint:allow determinism phase latencies feed /metrics only, never result bytes
}

// Request phases instrumented with latency histograms.
const (
	phaseParse       = iota // parse + type-check + normalize (prepare)
	phaseFingerprint        // canonical print + program fingerprint
	phaseFixpoint           // analysis fixpoint + parallelize
	phaseRender             // result rendering + seed backfill
	nPhases
)

var phaseNames = [nPhases]string{"parse", "fingerprint", "fixpoint", "render"}

// phaseBuckets holds the histogram upper bounds in seconds: exponential
// from 100µs to ~10s, wide enough for a budgeted pathological fixpoint.
var phaseBuckets = [...]float64{0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 10}

// histogram is a fixed-bound latency histogram with atomic cells. Buckets
// store per-bin counts (not cumulative); the writer accumulates into the
// cumulative le-form the exposition format wants.
type histogram struct {
	buckets [len(phaseBuckets)]atomic.Uint64
	over    atomic.Uint64 // observations beyond the last bound (+Inf bin)
	count   atomic.Uint64
	sumNs   atomic.Int64
}

func (h *histogram) observe(d time.Duration) {
	h.count.Add(1)
	h.sumNs.Add(d.Nanoseconds())
	secs := d.Seconds()
	for i := range phaseBuckets {
		if secs <= phaseBuckets[i] {
			h.buckets[i].Add(1)
			return
		}
	}
	h.over.Add(1)
}

// histSnapshot is one histogram's consistent-enough copy (per-cell atomic
// reads; scrape-time skew of a few observations is normal for Prometheus).
type histSnapshot struct {
	buckets [len(phaseBuckets)]uint64
	over    uint64
	count   uint64
	sumSecs float64
}

func (h *histogram) snapshot() histSnapshot {
	var out histSnapshot
	for i := range h.buckets {
		out.buckets[i] = h.buckets[i].Load()
	}
	out.over = h.over.Load()
	out.count = h.count.Load()
	out.sumSecs = time.Duration(h.sumNs.Load()).Seconds()
	return out
}

// errorCodes is the fixed vocabulary, in emission order.
var errorCodes = [...]string{
	CodeInvalidRequest,
	CodeParseError,
	CodeBudgetExceeded,
	CodeDeadlineExceeded,
	CodeCanceled,
	CodeOverloaded,
	CodeDraining,
	CodeInternal,
}

// codeCounters counts failures per error code with one atomic cell per
// known code (unknown codes — which would indicate a bug — fold into
// internal).
type codeCounters struct {
	cells [len(errorCodes)]atomic.Uint64
}

func (c *codeCounters) inc(code string) {
	for i, name := range errorCodes {
		if name == code {
			c.cells[i].Add(1)
			return
		}
	}
	c.cells[len(errorCodes)-1].Add(1)
}

// snapshot returns the non-zero codes (the /stats rendering; JSON
// marshalling sorts keys, so output order is deterministic).
func (c *codeCounters) snapshot() map[string]uint64 {
	var out map[string]uint64
	for i, name := range errorCodes {
		if v := c.cells[i].Load(); v > 0 {
			if out == nil {
				out = map[string]uint64{}
			}
			out[name] = v
		}
	}
	return out
}

// metricsSnapshot is one shard's full metric state at scrape time.
type metricsSnapshot struct {
	stats  Stats
	codes  [len(errorCodes)]uint64
	phases [nPhases]histSnapshot
}

func (s *Service) metricsSnapshot() metricsSnapshot {
	snap := metricsSnapshot{stats: s.Stats()}
	for i := range s.errCodes.cells {
		snap.codes[i] = s.errCodes.cells[i].Load()
	}
	for i := range s.phases {
		snap.phases[i] = s.phases[i].snapshot()
	}
	return snap
}

// WriteMetrics writes this Service's metrics as one single-shard
// exposition (shard="0").
func (s *Service) WriteMetrics(w io.Writer) {
	writePrometheus(w, []metricsSnapshot{s.metricsSnapshot()})
}

// family is one metric family: name, type, help, and a per-shard scalar
// extractor (histogram families are emitted separately).
type family struct {
	name, kind, help string
	value            func(metricsSnapshot) float64
}

var scalarFamilies = []family{
	{"sil_requests_total", "counter", "Requests served (single programs; batch items count individually).",
		func(m metricsSnapshot) float64 { return float64(m.stats.Served) }},
	{"sil_analyses_total", "counter", "Fresh analyses that ran to a rendered result.",
		func(m metricsSnapshot) float64 { return float64(m.stats.Analyses) }},
	{"sil_request_failures_total", "counter", "Failed requests, all error codes (see sil_request_errors_total).",
		func(m metricsSnapshot) float64 { return float64(m.stats.Errors) }},
	{"sil_cache_hits_total", "counter", "Result-cache hits (byte-identical replay of a rendered result).",
		func(m metricsSnapshot) float64 { return float64(m.stats.CacheHits) }},
	{"sil_cache_misses_total", "counter", "Result-cache misses (coalesced-flight leaders included).",
		func(m metricsSnapshot) float64 { return float64(m.stats.CacheMisses) }},
	{"sil_cache_evictions_total", "counter", "Result-cache LRU evictions.",
		func(m metricsSnapshot) float64 { return float64(m.stats.CacheEvictions) }},
	{"sil_cache_entries", "gauge", "Result-cache current size (entries).",
		func(m metricsSnapshot) float64 { return float64(m.stats.CacheSize) }},
	{"sil_coalesced_total", "counter", "Misses served from another request's in-flight analysis.",
		func(m metricsSnapshot) float64 { return float64(m.stats.Coalesced) }},
	{"sil_admission_shed_total", "counter", "Requests shed by admission control (429: pool and queue full).",
		func(m metricsSnapshot) float64 { return float64(m.stats.Shed) }},
	{"sil_admission_expired_total", "counter", "Requests whose deadline ended while queued for a session.",
		func(m metricsSnapshot) float64 { return float64(m.stats.Expired) }},
	{"sil_sessions", "gauge", "Session-pool size (the concurrent-analysis budget).",
		func(m metricsSnapshot) float64 { return float64(m.stats.Sessions) }},
	{"sil_sessions_busy", "gauge", "Sessions currently checked out by running analyses.",
		func(m metricsSnapshot) float64 { return float64(m.stats.Busy) }},
	{"sil_queue_depth", "gauge", "Admitted requests currently waiting for a session.",
		func(m metricsSnapshot) float64 { return float64(m.stats.Queued) }},
	{"sil_queue_capacity", "gauge", "Admission-queue capacity (-max-queue after defaulting).",
		func(m metricsSnapshot) float64 { return float64(m.stats.QueueCapacity) }},
	{"sil_epoch_resets_total", "counter", "Per-session Space epoch resets.",
		func(m metricsSnapshot) float64 { return float64(m.stats.EpochResets) }},
	{"sil_interned_paths", "gauge", "Interned path expressions across the shard's session Spaces.",
		func(m metricsSnapshot) float64 { return float64(m.stats.InternedPaths) }},
	{"sil_summary_hits_total", "counter", "Summary-store hits (seeded procedures on the incremental warm path).",
		func(m metricsSnapshot) float64 { return float64(m.stats.SummaryStore.Hits) }},
	{"sil_summary_misses_total", "counter", "Summary-store misses.",
		func(m metricsSnapshot) float64 { return float64(m.stats.SummaryStore.Misses) }},
	{"sil_summary_evictions_total", "counter", "Summary-store LRU evictions.",
		func(m metricsSnapshot) float64 { return float64(m.stats.SummaryStore.Evictions) }},
	{"sil_summary_invalidations_total", "counter", "Summary-store records invalidated by body edits.",
		func(m metricsSnapshot) float64 { return float64(m.stats.SummaryStore.Invalidations) }},
	{"sil_summary_entries", "gauge", "Summary-store current size (records).",
		func(m metricsSnapshot) float64 { return float64(m.stats.SummaryStore.Entries) }},
}

func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// writePrometheus renders the exposition for one or more shards. Shard
// order is positional (the Router's shard index), HELP/TYPE once per
// family, series ordered by shard — fully deterministic for a given
// counter state.
func writePrometheus(w io.Writer, shards []metricsSnapshot) {
	for _, f := range scalarFamilies {
		fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind)
		for sh, m := range shards {
			fmt.Fprintf(w, "%s{shard=%q} %s\n", f.name, strconv.Itoa(sh), fmtFloat(f.value(m)))
		}
	}
	fmt.Fprintf(w, "# HELP sil_request_errors_total Failed requests by machine-readable error code.\n# TYPE sil_request_errors_total counter\n")
	for sh, m := range shards {
		for i, code := range errorCodes {
			fmt.Fprintf(w, "sil_request_errors_total{shard=%q,code=%q} %d\n", strconv.Itoa(sh), code, m.codes[i])
		}
	}
	fmt.Fprintf(w, "# HELP sil_phase_seconds Request-phase latency (parse, fingerprint, fixpoint, render).\n# TYPE sil_phase_seconds histogram\n")
	for sh, m := range shards {
		shard := strconv.Itoa(sh)
		for ph, name := range phaseNames {
			h := m.phases[ph]
			cum := uint64(0)
			for i, ub := range phaseBuckets {
				cum += h.buckets[i]
				fmt.Fprintf(w, "sil_phase_seconds_bucket{shard=%q,phase=%q,le=%q} %d\n", shard, name, fmtFloat(ub), cum)
			}
			fmt.Fprintf(w, "sil_phase_seconds_bucket{shard=%q,phase=%q,le=\"+Inf\"} %d\n", shard, name, cum+h.over)
			fmt.Fprintf(w, "sil_phase_seconds_sum{shard=%q,phase=%q} %s\n", shard, name, fmtFloat(h.sumSecs))
			fmt.Fprintf(w, "sil_phase_seconds_count{shard=%q,phase=%q} %d\n", shard, name, h.count)
		}
	}
	// Session-load balance: one series per pooled session.
	fmt.Fprintf(w, "# HELP sil_session_served_total Checkouts per pooled session (worker-budget balance).\n# TYPE sil_session_served_total counter\n")
	for sh, m := range shards {
		for i, n := range m.stats.SessionLoads {
			fmt.Fprintf(w, "sil_session_served_total{shard=%q,session=%q} %d\n", strconv.Itoa(sh), strconv.Itoa(i), n)
		}
	}
}

// sortedCodes returns the error-code vocabulary sorted (doc/test hook).
func sortedCodes() []string {
	out := append([]string(nil), errorCodes[:]...)
	sort.Strings(out)
	return out
}
