package service

import (
	"context"

	"bytes"
	"encoding/json"
	"testing"

	"repro/internal/analysis"
	"repro/internal/progs"
)

// Service-level incremental-analysis suite: the summary store must never
// change a rendered body (warm == cold, byte for byte), and its counters
// must move the way the keying rule promises — an edit invalidates
// exactly the edited procedure's dependents while everything else stays
// warm.

// threeProcV1/V2 differ in ONE procedure body (shift's increment), so a
// resubmit of V2 after V1 must hit the store for bump (body and cohort
// untouched), miss for shift (body changed) and main (cohort changed),
// and invalidate main's stale record (same body, new key).
const threeProcV1 = `
program threeproc
procedure main()
  a, b: handle
begin
  bump(a);
  shift(b)
end;
procedure bump(h: handle)
begin
  if h <> nil then
  begin
    h.value := h.value + 1
  end
end;
procedure shift(h: handle)
begin
  if h <> nil then
  begin
    h.value := h.value + 2
  end
end;
`

const threeProcV2 = `
program threeproc
procedure main()
  a, b: handle
begin
  bump(a);
  shift(b)
end;
procedure bump(h: handle)
begin
  if h <> nil then
  begin
    h.value := h.value + 1
  end
end;
procedure shift(h: handle)
begin
  if h <> nil then
  begin
    h.value := h.value + 3
  end
end;
`

// TestSummaryWarmEqualsColdCorpus pins the service-level warm-equals-cold
// contract over the whole corpus: with the result cache disabled, every
// resubmit re-analyzes seeded from the summary store, and the body must
// stay byte-identical to a cold service's.
func TestSummaryWarmEqualsColdCorpus(t *testing.T) {
	for _, e := range progs.Catalog {
		ref := New(Options{})
		want := ref.Analyze(context.Background(), Request{Name: e.Name, Source: e.Source, Roots: e.Roots})
		if want.Err != nil {
			t.Fatalf("%s: %v", e.Name, want.Err)
		}
		svc := New(Options{CacheCapacity: -1})
		for pass := 0; pass < 3; pass++ {
			got := svc.Analyze(context.Background(), Request{Name: e.Name, Source: e.Source, Roots: e.Roots})
			if got.Err != nil {
				t.Fatalf("%s pass %d: %v", e.Name, pass, got.Err)
			}
			if !bytes.Equal(got.Body, want.Body) {
				t.Errorf("%s pass %d: warm body diverged from cold\n got: %s\nwant: %s",
					e.Name, pass, got.Body, want.Body)
				break
			}
		}
		st := svc.Stats()
		if st.SummaryStore.Hits == 0 {
			t.Errorf("%s: no summary-store hits across warm passes", e.Name)
		}
	}
}

// TestSummaryStoreEditWarmPath walks the edit lifecycle and checks every
// counter transition.
func TestSummaryStoreEditWarmPath(t *testing.T) {
	svc := New(Options{CacheCapacity: -1})

	// Cold: all three procedures miss and are stored.
	if resp := svc.Analyze(context.Background(), Request{Source: threeProcV1}); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	st := svc.Stats().SummaryStore
	if st.Misses != 3 || st.Hits != 0 || st.Entries != 3 {
		t.Fatalf("after cold: %+v", st)
	}

	// Identical resubmit: every procedure hits.
	if resp := svc.Analyze(context.Background(), Request{Source: threeProcV1}); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	st = svc.Stats().SummaryStore
	if st.Hits != 3 || st.Misses != 3 {
		t.Fatalf("after resubmit: %+v", st)
	}

	// Edit shift: bump stays warm (1 hit); shift (new body) and main (new
	// cohort) miss; main's stale record is invalidated by its body
	// fingerprint, shift's old record merely goes stale in LRU.
	resp := svc.Analyze(context.Background(), Request{Source: threeProcV2})
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	st = svc.Stats().SummaryStore
	if st.Hits != 4 {
		t.Errorf("bump did not stay warm across the edit: %+v", st)
	}
	if st.Misses != 5 {
		t.Errorf("edited shift/main should re-miss: %+v", st)
	}
	if st.Invalidations != 1 {
		t.Errorf("main's stale record should be the one invalidation: %+v", st)
	}
	if st.Entries != 4 { // v1{main,bump,shift} - main + v2{main,shift}
		t.Errorf("entry count after edit: %+v", st)
	}

	// The edited warm body matches a cold service's bit for bit.
	cold := New(Options{}).Analyze(context.Background(), Request{Source: threeProcV2})
	if cold.Err != nil {
		t.Fatal(cold.Err)
	}
	if !bytes.Equal(resp.Body, cold.Body) {
		t.Errorf("edited warm body diverged:\n got: %s\nwant: %s", resp.Body, cold.Body)
	}
}

// TestSummaryKeysDistinctWithinSCC is the regression pin for the cohort
// aliasing bug: members of one SCC share their reachable closure, so a
// set-only cohort key handed even's store slot to odd's summary. The key
// must distinguish the procedure itself.
func TestSummaryKeysDistinctWithinSCC(t *testing.T) {
	prog := progs.MustCompile(progs.MutualWalk)
	fps := ProcFingerprints(prog)
	even, odd := fps["even"], fps["odd"]
	if even.Body == odd.Body {
		t.Fatal("distinct bodies share a body fingerprint")
	}
	if even.Cohort == odd.Cohort {
		t.Fatal("SCC members share a cohort fingerprint — store records would alias")
	}
	// And the cohort still ignores everything outside the closure: main
	// reaches both, so its cohort differs from either.
	if fps["main"].Cohort == even.Cohort || fps["main"].Cohort == odd.Cohort {
		t.Fatal("caller cohort collides with callee cohort")
	}
}

// TestLRUSummaryStore unit-tests the baseline store policy.
func TestLRUSummaryStore(t *testing.T) {
	st := NewLRUSummaryStore(2)
	mk := func(hi uint64) Fp { return Fp{Hi: hi, Lo: hi} }
	rec := &analysis.ProcSeed{}
	st.Put(mk(1), mk(101), rec)
	st.Put(mk(2), mk(102), rec)
	if _, ok := st.Get(mk(1)); !ok { // refresh 1: now 2 is LRU
		t.Fatal("warm record missing")
	}
	st.Put(mk(3), mk(103), rec) // evicts 2
	if _, ok := st.Get(mk(2)); ok {
		t.Fatal("LRU record not evicted")
	}
	if _, ok := st.Get(mk(1)); !ok {
		t.Fatal("refreshed record evicted instead of LRU")
	}
	// Same body under a new key invalidates the old record.
	st.Put(mk(4), mk(103), rec)
	if _, ok := st.Get(mk(3)); ok {
		t.Fatal("stale record for re-keyed body not invalidated")
	}
	s := st.Stats()
	if s.Evictions != 1 || s.Invalidations != 1 || s.Entries != 2 || s.Capacity != 2 {
		t.Fatalf("stats: %+v", s)
	}
	// Re-Put of an existing key keeps the incumbent (no growth).
	st.Put(mk(4), mk(103), rec)
	if got := st.Stats().Entries; got != 2 {
		t.Fatalf("same-key re-put grew the store to %d", got)
	}
}

// TestSummaryStoreDisabled: a negative capacity turns the store off; the
// service still answers correctly and reports zero store counters.
func TestSummaryStoreDisabled(t *testing.T) {
	svc := New(Options{SummaryCapacity: -1, CacheCapacity: -1})
	want := New(Options{}).Analyze(context.Background(), Request{Source: threeProcV1})
	for pass := 0; pass < 2; pass++ {
		got := svc.Analyze(context.Background(), Request{Source: threeProcV1})
		if got.Err != nil {
			t.Fatal(got.Err)
		}
		if !bytes.Equal(got.Body, want.Body) {
			t.Fatal("storeless body diverged")
		}
	}
	if st := svc.Stats().SummaryStore; st != (SummaryStoreStats{}) {
		t.Fatalf("disabled store reported activity: %+v", st)
	}
}

// TestRequestLimitsOverride covers the per-request Limits satellite:
// validation, reflection in the document, and fingerprint separation.
func TestRequestLimitsOverride(t *testing.T) {
	svc := New(Options{})

	bad := svc.Analyze(context.Background(), Request{Source: threeProcV1, Limits: &LimitsSpec{MaxExact: -1}})
	if bad.Err == nil || bad.Err.Status != 400 {
		t.Fatalf("negative limit accepted: %+v", bad.Err)
	}

	def := svc.Analyze(context.Background(), Request{Source: threeProcV1})
	if def.Err != nil {
		t.Fatal(def.Err)
	}
	tight := svc.Analyze(context.Background(), Request{Source: threeProcV1, Limits: &LimitsSpec{MaxPaths: 2}})
	if tight.Err != nil {
		t.Fatal(tight.Err)
	}
	if def.Fingerprint == tight.Fingerprint {
		t.Error("limits override did not separate result fingerprints")
	}
	var doc ResultDoc
	if err := json.Unmarshal(tight.Body, &doc); err != nil {
		t.Fatal(err)
	}
	// Zero fields keep the defaults; the override is reflected verbatim.
	if doc.Limits != (LimitsDoc{MaxExact: 8, MaxSegs: 6, MaxPaths: 2}) {
		t.Errorf("effective limits misreflected: %+v", doc.Limits)
	}
	// Both variants live in the result cache independently.
	st := svc.Stats()
	if st.CacheSize != 2 {
		t.Errorf("cache size %d, want 2 (default + override)", st.CacheSize)
	}
}
