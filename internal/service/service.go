// Package service is the analysis-as-a-service layer: it turns the one-shot
// Analyze pipeline into a long-lived serving subsystem with
//
//   - a bounded SESSION POOL that reuses analysis workspaces across
//     requests, where every session owns a PRIVATE path/matrix Space with
//     its own epoch lifecycle: a session's intern, memo, and residue
//     tables are touched only by the request that has the session checked
//     out, so epoch resets are worker-local — no gate, no quiescing, and a
//     reset on one session never blocks a sibling's in-flight analysis;
//   - a bounded LRU RESULT CACHE keyed by a canonical 128-bit program
//     fingerprint (the printed canonical AST plus the semantics-affecting
//     options, hashed with the same two-lane mixing the matrix/set
//     fingerprints use), with hit/miss/eviction counters. Cached entries
//     hold the RENDERED response bytes, not live analysis objects, so they
//     are epoch-independent: a Space reset never invalidates the cache,
//     and a cache hit is byte-identical to the fresh response by
//     construction;
//   - BATCHED requests: a multi-program request analyzes its independent
//     programs in parallel under one worker budget (the session pool);
//     per-program results come back in request order;
//   - a SHARD ROUTER (shard.go) that consistent-hashes the canonical
//     program fingerprint across N independent Services, each with its own
//     sessions, Spaces, and result cache.
//
// The determinism this leans on is load-bearing and separately tested: the
// analysis is bit-identical across worker-pool sizes (the round-based
// engine), Info is immutable after Analyze (replay_test.go), and
// Parse(Print(p)) is structurally equal to p (roundtrip_test.go), which
// is what makes the canonical-print fingerprint a sound cache key. Because
// rendered bodies are pure functions of the canonical source and options —
// never of intern IDs or Space identity — they are also byte-identical
// across shard counts, which is what the shard-equivalence suite pins.
package service

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/matrix"
	"repro/internal/par"
	"repro/internal/path"
	"repro/internal/progs"
	"repro/internal/sil/ast"
	"repro/internal/sil/printer"
)

// Options tunes a Service.
type Options struct {
	// Analysis is the default analysis configuration; per-request overrides
	// (Roots, MaxContexts) apply on top. Workers is per-analysis and does
	// not affect results (the engine is bit-identical across pool sizes),
	// so it is excluded from cache keys. Analysis.Space is ignored: every
	// pooled session substitutes its own private Space.
	Analysis analysis.Options
	// Par configures the parallelizer pass (zero value: par.DefaultOptions).
	Par par.Options
	// CacheCapacity bounds the result cache (entries). 0 picks 256;
	// negative disables caching.
	CacheCapacity int
	// Sessions bounds the session pool — the worker budget: at most this
	// many analyses run concurrently; further requests queue. 0 picks
	// min(NumCPU, 8).
	Sessions int
	// ResetInternedPaths is the per-session epoch policy: after a request
	// completes, if the session's private Space holds more interned path
	// expressions than this, that Space is reset while the session is still
	// exclusively checked out (dropping its intern/memo/residue tables and,
	// via the reset hook, its matrix handle table). Other sessions are
	// never involved. 0 picks 1<<20; negative disables epoch resets.
	ResetInternedPaths int
	// SummaryCapacity bounds the per-procedure summary store (records) —
	// the incremental-analysis warm path consulted on result-cache
	// misses (summarystore.go). 0 picks 4096; negative disables
	// incremental analysis entirely.
	SummaryCapacity int
	// SummaryStore overrides the store implementation (policy sweeps);
	// nil builds the LRU baseline with SummaryCapacity.
	SummaryStore SummaryStore
	// MaxQueue bounds the ADMISSION QUEUE in front of the session pool:
	// beyond the Sessions analyses that can run concurrently, at most
	// MaxQueue further analyses may wait for a session; any request past
	// that is shed immediately with a 429-style "overloaded" error instead
	// of queueing unboundedly. Cache hits and coalesced waiters bypass
	// admission (they consume no session). 0 picks 256; negative admits
	// only when a session is free (no queue at all).
	MaxQueue int
	// RequestTimeout is the per-request deadline the serving layers apply:
	// the HTTP handler derives each request context from it, and a
	// coalesced flight's detached context is re-armed with it so a shared
	// analysis still has SOME deadline after its first caller's scope is
	// detached. 0 means no service-imposed deadline (callers may still
	// bring their own via ctx).
	RequestTimeout time.Duration
}

func (o Options) withDefaults() Options {
	if o.Par == (par.Options{}) {
		o.Par = par.DefaultOptions
	}
	if o.CacheCapacity == 0 {
		o.CacheCapacity = 256
	}
	if o.Sessions == 0 {
		o.Sessions = runtime.NumCPU()
		if o.Sessions > 8 {
			o.Sessions = 8
		}
	}
	if o.Sessions < 1 {
		o.Sessions = 1
	}
	if o.ResetInternedPaths == 0 {
		o.ResetInternedPaths = 1 << 20
	}
	if o.SummaryCapacity == 0 {
		o.SummaryCapacity = 4096
	}
	if o.MaxQueue == 0 {
		o.MaxQueue = 256
	}
	if o.MaxQueue < 0 {
		o.MaxQueue = -1 // normalized "no queue" (admit only on a free session)
	}
	return o
}

// Request is one program to analyze.
type Request struct {
	// Name labels the program in responses (defaults to the program's own
	// name from the source).
	Name string `json:"name,omitempty"`
	// Source is the SIL program text.
	Source string `json:"source"`
	// Roots names main locals bound to externally built structures
	// (analysis.Options.ExternalRoots).
	Roots []string `json:"roots,omitempty"`
	// MaxContexts overrides the context-table cap when non-zero (negative
	// = merged mode), mirroring silbench -ctx.
	MaxContexts int `json:"max_contexts,omitempty"`
	// Limits overrides path-domain budgets per request so interactive
	// clients can set tighter budgets than batch ones. Zero fields keep
	// the service default; negative fields are rejected with a 400. The
	// effective limits are part of the result fingerprint and reflected
	// in the response document.
	Limits *LimitsSpec `json:"limits,omitempty"`
}

// LimitsSpec is the wire form of a per-request path.Limits override.
type LimitsSpec struct {
	// MaxExact caps exact edge counts per path segment (wider widens to
	// the >= form); MaxSegs caps direction runs per path; MaxPaths caps
	// the path set per matrix entry.
	MaxExact int `json:"max_exact,omitempty"`
	MaxSegs  int `json:"max_segs,omitempty"`
	MaxPaths int `json:"max_paths,omitempty"`
}

// validate rejects malformed per-request overrides before compilation.
func (r Request) validate() *RequestError {
	if l := r.Limits; l != nil {
		if l.MaxExact < 0 || l.MaxSegs < 0 || l.MaxPaths < 0 {
			return &RequestError{Status: 400, Code: CodeInvalidRequest, Msg: "limits: fields must be non-negative (zero keeps the default)"}
		}
	}
	return nil
}

// Machine-readable error codes, the stable vocabulary of the v1 error
// envelope. errorCodes (metrics.go) lists them all for counters.
const (
	// CodeInvalidRequest: malformed request fields (negative limits, …).
	CodeInvalidRequest = "invalid_request"
	// CodeParseError: the program failed to compile (parse/type errors).
	CodeParseError = "parse_error"
	// CodeBudgetExceeded: the analysis hit a work budget (rounds or
	// interned paths) and was stopped at a round barrier.
	CodeBudgetExceeded = "budget_exceeded"
	// CodeDeadlineExceeded: the request deadline expired before the
	// result was ready.
	CodeDeadlineExceeded = "deadline_exceeded"
	// CodeCanceled: the caller went away (client disconnect).
	CodeCanceled = "canceled"
	// CodeOverloaded: admission control shed the request — the session
	// pool and its bounded queue are full. Retry after backoff.
	CodeOverloaded = "overloaded"
	// CodeDraining: the server is shutting down gracefully and refuses
	// new analyses; in-flight work finishes. Retry against another
	// replica.
	CodeDraining = "draining"
	// CodeInternal: unexpected analysis/render failure.
	CodeInternal = "internal"
)

// RequestError describes a per-program failure.
type RequestError struct {
	// Status is the suggested HTTP status: 400 for parse/type errors, 429
	// for shed requests, 503 for exceeded budgets, 504 for expired
	// deadlines, 499 (nginx convention) for a gone client, 500 for
	// internal analysis failures.
	Status int `json:"status"`
	// Code is the machine-readable error code (Code* constants).
	Code string `json:"code"`
	// Msg is the error rendering.
	Msg string `json:"error"`
	// Diags carries the compile diagnostics behind a 400.
	Diags []string `json:"diagnostics,omitempty"`
}

func (e *RequestError) Error() string { return e.Msg }

// ctxRequestError classifies a done context: deadline vs client-gone.
func ctxRequestError(ctx context.Context) *RequestError {
	if errors.Is(ctx.Err(), context.DeadlineExceeded) {
		return &RequestError{Status: 504, Code: CodeDeadlineExceeded, Msg: "request deadline exceeded"}
	}
	return &RequestError{Status: 499, Code: CodeCanceled, Msg: "request canceled by caller"}
}

// analysisRequestError maps an analysis failure onto the error vocabulary.
func analysisRequestError(err error) *RequestError {
	switch {
	case errors.Is(err, analysis.ErrBudgetExceeded):
		return &RequestError{Status: 503, Code: CodeBudgetExceeded, Msg: err.Error()}
	case errors.Is(err, context.DeadlineExceeded):
		return &RequestError{Status: 504, Code: CodeDeadlineExceeded, Msg: err.Error()}
	case errors.Is(err, analysis.ErrCanceled):
		return &RequestError{Status: 499, Code: CodeCanceled, Msg: err.Error()}
	default:
		return &RequestError{Status: 500, Code: CodeInternal, Msg: err.Error()}
	}
}

// Response is the outcome for one Request.
type Response struct {
	// Name echoes the request (or the program's declared name).
	Name string
	// Fingerprint is the canonical 128-bit program fingerprint (hex).
	Fingerprint string
	// Cached reports whether Body came from the result cache. It is
	// deliberately NOT part of Body: cached and fresh bodies are
	// byte-identical (transport layers surface it out of band).
	Cached bool
	// Body is the canonical JSON result document.
	Body []byte
	// Err is set instead of Body when the program failed.
	Err *RequestError
}

// Service is a concurrent analysis server: session pool, result cache,
// per-session epoch management. Safe for use from many goroutines.
type Service struct {
	opts Options

	// sessions is the pool; every analysis checks a session out and back
	// in, so pool size == worker budget. sessionList holds the same
	// sessions permanently for Stats to read their counters and Spaces.
	sessions    chan *Session
	sessionList []*Session

	mu    sync.Mutex
	lru   *list.List // front = most recent; values are *cacheEntry
	cache map[Fp]*list.Element
	// inflight coalesces concurrent cold misses per fingerprint: the first
	// requester analyzes, the rest wait for its rendered bytes instead of
	// burning sessions on byte-identical work (the Zipf-skewed mixes the
	// load mode serves make simultaneous same-program misses the common
	// cold-start case).
	inflight map[Fp]*flight

	// sumStore is the per-procedure summary store behind incremental
	// analysis (summarystore.go); nil when disabled. It is service-level
	// (not per-session): records are Space-free, so any session can seed
	// from any record.
	sumStore SummaryStore

	// admit is the admission-control token bucket: capacity Sessions +
	// MaxQueue. An analysis must take a token (non-blocking — failure is
	// an immediate shed) before it may wait for a session, so at most
	// MaxQueue requests ever queue behind the pool and the rest fail fast
	// with 429 instead of stacking up. Tokens are held until the session
	// returns. Cache hits and coalesced waiters never take tokens.
	admit chan struct{}

	served    atomic.Uint64
	analyses  atomic.Uint64
	hits      atomic.Uint64
	misses    atomic.Uint64
	coalesced atomic.Uint64
	evictions atomic.Uint64
	resets    atomic.Uint64
	errors    atomic.Uint64
	// shed counts requests refused admission outright; expired counts
	// requests whose context ended while queued for a session.
	shed    atomic.Uint64
	expired atomic.Uint64
	// busy/queued are instantaneous gauges: sessions checked out and
	// requests waiting for one.
	busy   atomic.Int64
	queued atomic.Int64
	// errCodes counts failures by error code; phases holds the per-phase
	// latency histograms (metrics.go).
	errCodes codeCounters
	phases   [nPhases]histogram
}

// flight is one in-progress analysis other requests may wait on. The
// executor runs on a context DETACHED from the caller that started it
// (re-armed with the service RequestTimeout), so one waiter's deadline can
// never cancel the shared work: each caller independently stops waiting
// when its own context ends, while the flight runs to completion and
// populates the cache for the next requester either way.
type flight struct {
	done chan struct{}
	body []byte        // rendered bytes on success
	err  *RequestError // terminal failure, delivered to every waiter
}

// Session is one pooled analysis workspace. It owns a private matrix/path
// Space — the interned path expressions, memoized verdicts, and handle
// table a request's matrices are built from — so the heavyweight state is
// per-session, not process-wide. A session is exclusively checked out for
// the whole request pipeline (analyze, parallelize, render, epoch check),
// which is what makes its Space single-threaded by construction: resets
// happen between checkouts with no locking at all.
type Session struct {
	id     int
	space  *matrix.Space
	served atomic.Uint64
}

type cacheEntry struct {
	key  Fp
	name string
	body []byte
}

// New builds a Service.
func New(opts Options) *Service {
	opts = opts.withDefaults()
	s := &Service{
		opts:     opts,
		sessions: make(chan *Session, opts.Sessions),
		lru:      list.New(),
		cache:    map[Fp]*list.Element{},
		inflight: map[Fp]*flight{},
	}
	queue := opts.MaxQueue
	if queue < 0 {
		queue = 0
	}
	s.admit = make(chan struct{}, opts.Sessions+queue)
	for i := 0; i < opts.Sessions; i++ {
		sess := &Session{id: i + 1, space: matrix.NewSpace(path.NewSpace())}
		s.sessionList = append(s.sessionList, sess)
		s.sessions <- sess
	}
	if opts.SummaryStore != nil {
		s.sumStore = opts.SummaryStore
	} else if opts.SummaryCapacity > 0 {
		s.sumStore = NewLRUSummaryStore(opts.SummaryCapacity)
	}
	return s
}

// prepared is a compiled, fingerprinted request ready to be served — the
// routing unit: prepare is side-effect-free on the service counters, so a
// shard router can prepare once, pick the owning shard by fingerprint, and
// hand the prepared request to that shard's analyzePrepared.
type prepared struct {
	name string
	prog *ast.Program
	opts analysis.Options
	fp   Fp
	err  *RequestError // compile failure; fp is zero and prog is nil
}

// prepare compiles and fingerprints a request. It touches no counters and
// no session state, so any Service instance built from the same Options
// prepares identically.
func (s *Service) prepare(req Request) prepared {
	if verr := req.validate(); verr != nil {
		return prepared{name: req.Name, err: verr}
	}
	t := metricsNow()
	prog, err := progs.Compile(req.Source)
	s.phases[phaseParse].observe(metricsNow().Sub(t))
	if err != nil {
		return prepared{name: req.Name, err: &RequestError{
			Status: 400,
			Code:   CodeParseError,
			Msg:    err.Error(),
			Diags:  []string{err.Error()},
		}}
	}
	name := req.Name
	if name == "" {
		name = prog.Name
	}
	opts := s.requestOptions(req)
	t = metricsNow()
	canon := printer.Print(prog)
	fp := ProgramFingerprint(canon, opts)
	s.phases[phaseFingerprint].observe(metricsNow().Sub(t))
	return prepared{name: name, prog: prog, opts: opts, fp: fp}
}

// Analyze serves one program: cache lookup by canonical fingerprint, then
// a pooled fresh analysis on a miss. ctx bounds the caller's wait and the
// caller's own analysis (deadline/cancel); a nil ctx means Background.
// Deadlines, budgets, and admission can only FAIL a request — a successful
// response's bytes are identical whatever they are set to.
func (s *Service) Analyze(ctx context.Context, req Request) Response {
	return s.analyzePrepared(ctx, s.prepare(req))
}

// analyzePrepared serves a prepared request on this Service's own cache
// and session pool.
func (s *Service) analyzePrepared(ctx context.Context, p prepared) Response {
	if ctx == nil {
		ctx = context.Background() //sillint:allow ctxflow nil-default for direct library callers; HTTP paths always thread the request ctx
	}
	s.served.Add(1)
	if p.err != nil {
		return s.errResponse(p.name, "", p.err)
	}
	if body, ok := s.cacheGet(p.fp); ok {
		s.hits.Add(1)
		return Response{Name: p.name, Fingerprint: p.fp.String(), Cached: true, Body: body}
	}
	if s.opts.CacheCapacity < 0 {
		// Caching disabled: no flights either (nothing to share), every
		// request runs its own admission-controlled analysis.
		s.misses.Add(1)
		body, rerr := s.runAnalysis(ctx, p)
		if rerr != nil {
			return s.errResponse(p.name, p.fp.String(), rerr)
		}
		return Response{Name: p.name, Fingerprint: p.fp.String(), Body: body}
	}
	// Coalesce concurrent misses on the same program: the first requester
	// starts the flight, the rest wait for its rendered bytes instead of
	// burning sessions on byte-identical work (the Zipf-skewed mixes the
	// load mode serves make simultaneous same-program misses the common
	// cold-start case). The flight executor is detached from every
	// caller's context (flight doc above), so each caller only waits as
	// long as its OWN context allows.
	s.mu.Lock()
	fl := s.inflight[p.fp]
	leader := fl == nil
	if leader {
		fl = &flight{done: make(chan struct{})}
		s.inflight[p.fp] = fl
	}
	s.mu.Unlock()
	if leader {
		s.misses.Add(1)
		go s.runFlight(ctx, p, fl)
	}
	select {
	case <-fl.done:
	case <-ctx.Done():
		return s.errResponse(p.name, p.fp.String(), ctxRequestError(ctx))
	}
	if fl.err != nil {
		// Terminal flight failures (parse-independent: budget, internal)
		// apply to every waiter — the same program would fail the same way.
		return s.errResponse(p.name, p.fp.String(), fl.err)
	}
	if !leader {
		s.coalesced.Add(1)
	}
	return Response{Name: p.name, Fingerprint: p.fp.String(), Cached: !leader, Body: fl.body}
}

// runFlight executes one coalesced analysis to completion on a context
// detached from the starting caller, then publishes the outcome to every
// waiter. Detachment is what keeps one caller's deadline from cancelling
// work other waiters (and the cache) still want; the service's own
// RequestTimeout is re-armed so a detached flight still cannot run
// forever.
func (s *Service) runFlight(callerCtx context.Context, p prepared, fl *flight) {
	ctx := context.WithoutCancel(callerCtx) //sillint:allow ctxflow sanctioned detach: a coalesced flight outlives any one caller; RequestTimeout re-arms a bound below
	if s.opts.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.opts.RequestTimeout)
		defer cancel()
	}
	fl.body, fl.err = s.runAnalysis(ctx, p)
	s.mu.Lock()
	delete(s.inflight, p.fp)
	s.mu.Unlock()
	close(fl.done)
}

// checkout admits the request and takes a session. Admission is two-step:
// a non-blocking token acquire (failure = the pool AND the bounded queue
// are full → shed with 429), then a context-bounded wait for a session.
// The token is held until checkin returns the session, so token capacity
// (Sessions + MaxQueue) is exactly the maximum number of analyses running
// or waiting.
func (s *Service) checkout(ctx context.Context) (*Session, *RequestError) {
	select {
	case s.admit <- struct{}{}:
	default:
		s.shed.Add(1)
		return nil, &RequestError{
			Status: 429,
			Code:   CodeOverloaded,
			Msg:    fmt.Sprintf("overloaded: %d analyses running and %d queued; retry later", s.opts.Sessions, cap(s.admit)-s.opts.Sessions),
		}
	}
	// Fast path: a free session, no queueing.
	select {
	case sess := <-s.sessions:
		s.busy.Add(1)
		return sess, nil
	default:
	}
	s.queued.Add(1)
	defer s.queued.Add(-1)
	select {
	case sess := <-s.sessions:
		s.busy.Add(1)
		return sess, nil
	case <-ctx.Done():
		<-s.admit // release the admission token
		s.expired.Add(1)
		return nil, ctxRequestError(ctx)
	}
}

// checkin retires the request's exclusive session use — per-session epoch
// bookkeeping runs here, while the session is still exclusively held —
// then returns the session before releasing the admission token (token
// count must never undercount live session claims).
func (s *Service) checkin(sess *Session) {
	sess.served.Add(1)
	s.maybeReset(sess)
	s.busy.Add(-1)
	s.sessions <- sess //sillint:allow ctxflow check-in send: sessions is buffered to pool size and every live session owns a slot
	<-s.admit          //sillint:allow ctxflow admission release: admit always holds this request's own token
}

// runAnalysis is one full admission-controlled analysis pipeline: session
// checkout, summary-store seeding, fixpoint, parallelize, render, seed
// backfill, cache fill. The session is held for the whole pipeline: the
// analysis interns into the session's private Space, and the render reads
// path sets that live there, so the session (and with it exclusive
// ownership of the Space) must not return to the pool until the bytes are
// final. On any failure the session still checks in clean — budgets and
// cancellation stop the engine at a round barrier, and the Space's next
// epoch reset reclaims whatever the aborted run interned.
func (s *Service) runAnalysis(ctx context.Context, p prepared) ([]byte, *RequestError) {
	sess, rerr := s.checkout(ctx)
	if rerr != nil {
		return nil, rerr
	}
	defer s.checkin(sess)
	opts := p.opts
	opts.Space = sess.space
	opts.Budgets = s.opts.Analysis.Budgets
	// Incremental warm path: on a result-cache miss, probe the summary
	// store for every procedure's (cohort, options) key and seed the
	// engine with the hits — an edit re-analyzes only the edited SCC and
	// its callers. The engine validates seeds post-run and re-runs cold
	// on any mismatch, so this never changes the rendered bytes.
	var procFps map[string]ProcFp
	var missing map[string]Fp // procedure -> summary key to backfill
	if s.sumStore != nil {
		procFps = ProcFingerprints(p.prog)
		missing = make(map[string]Fp, len(procFps))
		seeds := make(map[string]*analysis.ProcSeed, len(procFps))
		for name, pf := range procFps {
			key := SummaryKey(pf.Cohort, p.opts)
			if seed, ok := s.sumStore.Get(key); ok {
				seeds[name] = seed
			} else {
				missing[name] = key
			}
		}
		if len(seeds) > 0 {
			opts.Seeds = seeds
		}
	}
	t := metricsNow()
	info, aerr := analysis.Analyze(ctx, p.prog, opts)
	if aerr != nil {
		return nil, analysisRequestError(aerr)
	}
	parRes := par.Parallelize(info, s.opts.Par)
	s.phases[phaseFixpoint].observe(metricsNow().Sub(t))
	// The document is rendered under the program's DECLARED name — a
	// pure function of the canonical source, like everything else in
	// the body — so a cache hit is correct for every requester
	// regardless of the request label (Response.Name carries the
	// label), and the bytes are identical whichever session (or shard)
	// produced them.
	t = metricsNow()
	body, rendErr := renderResult(p.prog.Name, p.fp, info, parRes)
	if rendErr != nil {
		return nil, &RequestError{Status: 500, Code: CodeInternal, Msg: rendErr.Error()}
	}
	if len(missing) > 0 {
		// Backfill only the store misses: hits were just refreshed by
		// Get, and deterministic exports make a re-Put a no-op.
		exported := analysis.ExportSeeds(info)
		for name, key := range missing {
			if seed := exported[name]; seed != nil {
				s.sumStore.Put(key, procFps[name].Body, seed)
			}
		}
	}
	s.phases[phaseRender].observe(metricsNow().Sub(t))
	s.analyses.Add(1)
	s.cachePut(p.fp, p.name, body)
	return body, nil
}

// errResponse counts one failed request (total and per-code) and shapes
// the Response.
func (s *Service) errResponse(name, fp string, rerr *RequestError) Response {
	s.errors.Add(1)
	s.errCodes.inc(rerr.Code)
	return Response{Name: name, Fingerprint: fp, Err: rerr}
}

// AnalyzeBatch serves a multi-program request: the programs are analyzed
// in parallel under the session-pool budget, and the responses come back
// in request order. The pool bounds the whole per-program pipeline —
// compile, fingerprint, cache probe, analysis — not just the analysis, so
// an arbitrarily large batch runs at most Sessions programs (and spawns
// at most Sessions goroutines) at a time. ctx applies to every program in
// the batch (one deadline for the whole request).
func (s *Service) AnalyzeBatch(ctx context.Context, reqs []Request) []Response {
	out := make([]Response, len(reqs))
	if len(reqs) == 1 {
		out[0] = s.Analyze(ctx, reqs[0])
		return out
	}
	workers := s.opts.Sessions
	if workers > len(reqs) {
		workers = len(reqs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(reqs) {
					return
				}
				out[i] = s.Analyze(ctx, reqs[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// requestOptions merges a request's overrides into the service defaults.
func (s *Service) requestOptions(req Request) analysis.Options {
	opts := s.opts.Analysis
	opts.Space = nil // per-session Spaces are substituted at analysis time
	if len(req.Roots) > 0 {
		roots := append([]string(nil), req.Roots...)
		sort.Strings(roots)
		opts.ExternalRoots = roots
	}
	if req.MaxContexts != 0 {
		opts.MaxContexts = req.MaxContexts
	}
	if req.Limits != nil {
		lim := opts.Limits
		if lim == (path.Limits{}) {
			lim = path.DefaultLimits
		}
		if req.Limits.MaxExact > 0 {
			lim.MaxExact = req.Limits.MaxExact
		}
		if req.Limits.MaxSegs > 0 {
			lim.MaxSegs = req.Limits.MaxSegs
		}
		if req.Limits.MaxPaths > 0 {
			lim.MaxPaths = req.Limits.MaxPaths
		}
		opts.Limits = lim
	}
	return opts
}

func (s *Service) cacheGet(fp Fp) ([]byte, bool) {
	if s.opts.CacheCapacity < 0 {
		return nil, false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.cache[fp]
	if !ok {
		return nil, false
	}
	s.lru.MoveToFront(el)
	return el.Value.(*cacheEntry).body, true
}

func (s *Service) cachePut(fp Fp, name string, body []byte) {
	if s.opts.CacheCapacity < 0 {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.cache[fp]; ok {
		// A concurrent miss on the same program raced us here; both bodies
		// are byte-identical (deterministic render), keep the incumbent.
		s.lru.MoveToFront(el)
		return
	}
	s.cache[fp] = s.lru.PushFront(&cacheEntry{key: fp, name: name, body: body})
	for s.lru.Len() > s.opts.CacheCapacity {
		oldest := s.lru.Back()
		s.lru.Remove(oldest)
		delete(s.cache, oldest.Value.(*cacheEntry).key)
		s.evictions.Add(1)
	}
}

// FlushCache drops every cached result (test and operations hook).
func (s *Service) FlushCache() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.lru.Init()
	s.cache = map[Fp]*list.Element{}
}

// maybeReset starts a new epoch on the session's private Space when its
// intern table has outgrown the budget. The caller still holds the session
// exclusively, so no other goroutine can be touching this Space — the
// reset needs no gate and never waits for (or blocks) sibling sessions.
// Cached results survive: they hold rendered bytes, not epoch-bound
// objects.
func (s *Service) maybeReset(sess *Session) {
	if s.opts.ResetInternedPaths < 0 {
		return
	}
	if sess.space.Paths().InternedCount() <= s.opts.ResetInternedPaths {
		return
	}
	sess.space.Paths().Reset()
	s.resets.Add(1)
}

// Stats is the monitoring snapshot (the /stats document).
type Stats struct {
	Served   uint64 `json:"served"`
	Analyses uint64 `json:"analyses"`
	Errors   uint64 `json:"errors"`

	CacheHits      uint64  `json:"cache_hits"`
	CacheMisses    uint64  `json:"cache_misses"`
	CacheEvictions uint64  `json:"cache_evictions"`
	CacheSize      int     `json:"cache_size"`
	CacheCapacity  int     `json:"cache_capacity"`
	HitRate        float64 `json:"hit_rate"`
	// Coalesced counts misses served from another request's in-flight
	// analysis of the same program (cold-start thundering herd absorbed).
	Coalesced uint64 `json:"coalesced"`

	// Shed counts requests refused admission (pool + queue full, 429);
	// Expired counts requests whose deadline ended while queued. Busy and
	// Queued are instantaneous gauges; QueueCapacity echoes MaxQueue
	// after defaulting (0 = no queue).
	Shed          uint64 `json:"shed"`
	Expired       uint64 `json:"expired"`
	Busy          int64  `json:"sessions_busy"`
	Queued        int64  `json:"queue_depth"`
	QueueCapacity int    `json:"queue_capacity"`

	// ErrorCodes counts failed requests by machine-readable error code
	// (only non-zero codes appear).
	ErrorCodes map[string]uint64 `json:"error_codes,omitempty"`

	Sessions uint64 `json:"sessions"`
	// SessionLoads is each pooled session's checkout count, in session
	// order — the balance of the worker budget over the pool.
	SessionLoads []uint64 `json:"session_loads"`
	// SessionEpochs is each pooled session's private-Space epoch, in
	// session order; Epoch is their sum.
	SessionEpochs []uint64 `json:"session_epochs"`

	Epoch         uint64  `json:"epoch"`
	EpochResets   uint64  `json:"epoch_resets"`
	InternedPaths int     `json:"interned_paths"`
	MemoVerdicts  int     `json:"memo_verdicts"`
	MemoHitRate   float64 `json:"memo_hit_rate"`

	// SummaryStore is the per-procedure summary store's counters (all
	// zero when the store is disabled).
	SummaryStore SummaryStoreStats `json:"summary_store"`
}

// Stats snapshots the service counters and the per-session Space tables.
// Epoch, InternedPaths, and MemoVerdicts aggregate (sum) across the
// sessions' private Spaces; per-session epochs are in SessionEpochs.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	size := s.lru.Len()
	s.mu.Unlock()
	st := Stats{
		Served:         s.served.Load(),
		Analyses:       s.analyses.Load(),
		Errors:         s.errors.Load(),
		CacheHits:      s.hits.Load(),
		CacheMisses:    s.misses.Load(),
		CacheEvictions: s.evictions.Load(),
		CacheSize:      size,
		CacheCapacity:  s.opts.CacheCapacity,
		Coalesced:      s.coalesced.Load(),
		Shed:           s.shed.Load(),
		Expired:        s.expired.Load(),
		Busy:           s.busy.Load(),
		Queued:         s.queued.Load(),
		QueueCapacity:  cap(s.admit) - s.opts.Sessions,
		ErrorCodes:     s.errCodes.snapshot(),
		Sessions:       uint64(s.opts.Sessions),
		EpochResets:    s.resets.Load(),
	}
	if s.sumStore != nil {
		st.SummaryStore = s.sumStore.Stats()
	}
	var memoHits, memoMisses uint64
	for _, sess := range s.sessionList {
		st.SessionLoads = append(st.SessionLoads, sess.served.Load())
		sp := sess.space.Paths().Stats()
		st.SessionEpochs = append(st.SessionEpochs, sp.Epoch)
		st.Epoch += sp.Epoch
		st.InternedPaths += sp.InternedPaths
		st.MemoVerdicts += sp.Verdicts()
		memoHits += sp.MemoHits
		memoMisses += sp.MemoMisses
	}
	if total := memoHits + memoMisses; total > 0 {
		st.MemoHitRate = float64(memoHits) / float64(total)
	}
	if total := st.CacheHits + st.CacheMisses; total > 0 {
		st.HitRate = float64(st.CacheHits) / float64(total)
	}
	return st
}

// String renders the stats compactly (logging hook).
func (st Stats) String() string {
	return fmt.Sprintf("served=%d analyses=%d hits=%d misses=%d coalesced=%d evictions=%d size=%d/%d epoch=%d resets=%d paths=%d",
		st.Served, st.Analyses, st.CacheHits, st.CacheMisses, st.Coalesced, st.CacheEvictions,
		st.CacheSize, st.CacheCapacity, st.Epoch, st.EpochResets, st.InternedPaths)
}
