package service

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"

	"repro/internal/progs"
)

// parseExposition indexes a Prometheus text exposition by full series name
// (with labels), dropping comment lines.
func parseExposition(t *testing.T, text string) map[string]float64 {
	t.Helper()
	out := map[string]float64{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed exposition line: %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("malformed value in %q: %v", line, err)
		}
		if _, dup := out[line[:i]]; dup {
			t.Fatalf("duplicate series %q", line[:i])
		}
		out[line[:i]] = v
	}
	return out
}

// TestMetricsFamiliesMoveWithTraffic drives one miss, one hit, and one
// parse failure through a Service and checks the exposition: counters
// moved, every error code has a series (zeros included), and the phase
// histograms obey the le-form invariants.
func TestMetricsFamiliesMoveWithTraffic(t *testing.T) {
	svc := New(Options{Sessions: 2})
	if resp := svc.Analyze(context.Background(), treeAddReq()); resp.Err != nil {
		t.Fatal(resp.Err)
	}
	if resp := svc.Analyze(context.Background(), treeAddReq()); resp.Err != nil || !resp.Cached {
		t.Fatalf("second request: err=%+v cached=%v, want hit", resp.Err, resp.Cached)
	}
	if resp := svc.Analyze(context.Background(), Request{Name: "bad", Source: "program broken\nprocedure main()\nbegin\n  x :=\nend;"}); resp.Err == nil {
		t.Fatal("broken program must fail")
	}

	var buf bytes.Buffer
	svc.WriteMetrics(&buf)
	series := parseExposition(t, buf.String())

	want := map[string]float64{
		`sil_requests_total{shard="0"}`:         3,
		`sil_analyses_total{shard="0"}`:         1,
		`sil_request_failures_total{shard="0"}`: 1,
		`sil_cache_hits_total{shard="0"}`:       1,
		`sil_cache_misses_total{shard="0"}`:     1,
		`sil_cache_entries{shard="0"}`:          1,
		`sil_sessions{shard="0"}`:               2,
		`sil_sessions_busy{shard="0"}`:          0,
		`sil_queue_depth{shard="0"}`:            0,
	}
	for name, v := range want {
		if got, ok := series[name]; !ok || got != v {
			t.Errorf("%s = %v (present=%v), want %v", name, got, ok, v)
		}
	}

	// The full error-code vocabulary is always exposed, zeros included, so
	// dashboards never see series appear out of nowhere.
	codes := sortedCodes()
	if len(codes) != len(errorCodes) || !sort.StringsAreSorted(codes) {
		t.Fatalf("sortedCodes() = %v, want the sorted %d-code vocabulary", codes, len(errorCodes))
	}
	for _, code := range codes {
		name := fmt.Sprintf(`sil_request_errors_total{shard="0",code=%q}`, code)
		wantV := 0.0
		if code == CodeParseError {
			wantV = 1
		}
		if got, ok := series[name]; !ok || got != wantV {
			t.Errorf("%s = %v (present=%v), want %v", name, got, ok, wantV)
		}
	}

	// Histogram invariants per phase: cumulative buckets nondecreasing,
	// +Inf bucket == _count, and the observation counts match the traffic
	// (3 prepares parsed, 2 fingerprinted, 1 analyzed and rendered).
	wantCounts := map[string]float64{"parse": 3, "fingerprint": 2, "fixpoint": 1, "render": 1}
	for _, phase := range phaseNames {
		prev := -1.0
		for _, ub := range phaseBuckets {
			name := fmt.Sprintf(`sil_phase_seconds_bucket{shard="0",phase=%q,le=%q}`, phase, fmtFloat(ub))
			v, ok := series[name]
			if !ok {
				t.Fatalf("missing bucket series %s", name)
			}
			if v < prev {
				t.Errorf("%s: cumulative bucket decreased (%v after %v)", name, v, prev)
			}
			prev = v
		}
		inf := series[fmt.Sprintf(`sil_phase_seconds_bucket{shard="0",phase=%q,le="+Inf"}`, phase)]
		count := series[fmt.Sprintf(`sil_phase_seconds_count{shard="0",phase=%q}`, phase)]
		if inf != count {
			t.Errorf("phase %s: +Inf bucket %v != count %v", phase, inf, count)
		}
		if count != wantCounts[phase] {
			t.Errorf("phase %s: count %v, want %v", phase, count, wantCounts[phase])
		}
		if count > 0 && series[fmt.Sprintf(`sil_phase_seconds_sum{shard="0",phase=%q}`, phase)] < 0 {
			t.Errorf("phase %s: negative latency sum", phase)
		}
	}
}

// TestMetricsShardSeries: a Router exposition carries one series per shard
// under uniform labels, and the per-shard request counters sum to the
// total traffic.
func TestMetricsShardSeries(t *testing.T) {
	r := NewRouter(2, Options{Sessions: 1})
	for _, e := range progs.Catalog {
		if resp := r.Analyze(context.Background(), Request{Name: e.Name, Source: e.Source, Roots: e.Roots}); resp.Err != nil {
			t.Fatalf("%s: %+v", e.Name, resp.Err)
		}
	}
	var buf bytes.Buffer
	r.WriteMetrics(&buf)
	series := parseExposition(t, buf.String())
	s0, ok0 := series[`sil_requests_total{shard="0"}`]
	s1, ok1 := series[`sil_requests_total{shard="1"}`]
	if !ok0 || !ok1 {
		t.Fatalf("missing per-shard request series (shard0=%v shard1=%v)", ok0, ok1)
	}
	if int(s0+s1) != len(progs.Catalog) {
		t.Errorf("per-shard requests sum to %v, want %d", s0+s1, len(progs.Catalog))
	}
	if _, ok := series[`sil_sessions{shard="1"}`]; !ok {
		t.Error("shard 1 must expose its gauge families too")
	}
}

// TestHTTPMetricsEndpoint: /v1/metrics serves the exposition with the
// 0.0.4 content type, and the legacy /metrics alias is byte-identical.
func TestHTTPMetricsEndpoint(t *testing.T) {
	srv := httptest.NewServer(NewHandler(New(Options{})))
	defer srv.Close()
	body, _ := json.Marshal(treeAddReq())
	if resp, data := post(t, srv, string(body)); resp.StatusCode != 200 {
		t.Fatalf("warmup POST: %d %s", resp.StatusCode, data)
	}
	resp, v1 := get(t, srv, "/v1/metrics")
	if resp.StatusCode != 200 {
		t.Fatalf("/v1/metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "version=0.0.4") {
		t.Errorf("Content-Type = %q, want the 0.0.4 text exposition", ct)
	}
	if !strings.Contains(string(v1), "# TYPE sil_phase_seconds histogram") {
		t.Error("exposition must declare the phase histogram family")
	}
	series := parseExposition(t, string(v1))
	if series[`sil_cache_misses_total{shard="0"}`] != 1 {
		t.Errorf("one warmup miss must be visible over HTTP: %v", series[`sil_cache_misses_total{shard="0"}`])
	}
	if resp, legacy := get(t, srv, "/metrics"); resp.StatusCode != 200 || !bytes.Equal(v1, legacy) {
		t.Errorf("legacy /metrics alias must serve identical bytes (status %d)", resp.StatusCode)
	}
}

// TestHTTPV1AnalyzeAlias: /v1/analyze and /analyze serve byte-identical
// result documents for the same program.
func TestHTTPV1AnalyzeAlias(t *testing.T) {
	srv := httptest.NewServer(NewHandler(New(Options{})))
	defer srv.Close()
	body, _ := json.Marshal(treeAddReq())
	legacy, legacyBody := post(t, srv, string(body))
	if legacy.StatusCode != 200 {
		t.Fatalf("/analyze: %d %s", legacy.StatusCode, legacyBody)
	}
	resp, err := srv.Client().Post(srv.URL+"/v1/analyze", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v1Body bytes.Buffer
	if _, err := v1Body.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		t.Fatalf("/v1/analyze: %d %s", resp.StatusCode, v1Body.String())
	}
	if !bytes.Equal(legacyBody, v1Body.Bytes()) {
		t.Error("/v1/analyze body differs from /analyze body")
	}
}
