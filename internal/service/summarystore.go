package service

import (
	"container/list"
	"sync"

	"repro/internal/analysis"
)

// The summary store is the procedure-granular caching axis behind
// incremental analysis. Where the result cache keys whole programs (one
// edited procedure misses everything), the summary store keys individual
// procedures by SummaryKey(cohort fingerprint, options): a record stays
// valid as long as the procedure's body and every reachable callee are
// unchanged. On a result-cache miss the service probes the store for
// every procedure of the program and seeds the engine with the hits;
// after a successful analysis the converged summaries of the misses are
// stored back. Records are Space-free (analysis.ProcSeed), shared by
// pointer, and treated as immutable by everyone.

// SummaryStore is the bounded per-procedure summary cache behind an
// interface so eviction/admission policies can be swept independently
// (the LRU below is the baseline; see ROADMAP's caching-policy item).
// Implementations must be safe for concurrent use.
type SummaryStore interface {
	// Get returns the record for a summary key, or false.
	Get(key Fp) (*analysis.ProcSeed, bool)
	// Put stores a record. bodyFp is the procedure's body fingerprint:
	// stores track body→key so a re-Put of the same body under a new key
	// (the body's callee cohort changed) invalidates the stale record.
	Put(key Fp, bodyFp Fp, seed *analysis.ProcSeed)
	// Stats snapshots the counters.
	Stats() SummaryStoreStats
}

// SummaryStoreStats is the /stats block for one shard's summary store.
type SummaryStoreStats struct {
	Entries  int    `json:"entries"`
	Bytes    int64  `json:"bytes"`
	Capacity int    `json:"capacity"`
	Hits     uint64 `json:"hits"`
	Misses   uint64 `json:"misses"`
	// Invalidations counts records dropped because their procedure body
	// was re-stored under a different cohort key — the dependency-driven
	// (edit) invalidation channel, as opposed to capacity evictions.
	Invalidations uint64 `json:"invalidations"`
	Evictions     uint64 `json:"evictions"`
}

func (a SummaryStoreStats) add(b SummaryStoreStats) SummaryStoreStats {
	a.Entries += b.Entries
	a.Bytes += b.Bytes
	a.Capacity += b.Capacity
	a.Hits += b.Hits
	a.Misses += b.Misses
	a.Invalidations += b.Invalidations
	a.Evictions += b.Evictions
	return a
}

// lruSummaryStore is the baseline SummaryStore: a bounded LRU with a
// body→key index for edit invalidation.
type lruSummaryStore struct {
	mu       sync.Mutex
	capacity int
	lru      *list.List // front = most recent; values are *storeEntry
	byKey    map[Fp]*list.Element
	// byBody maps a procedure body fingerprint to the LAST summary key
	// stored for it. A Put whose body maps to a different key means the
	// procedure's reachable callees changed: the stale record can never
	// be requested again by the evolving program, so it is dropped and
	// counted as an invalidation. (Distinct programs sharing a body keep
	// each other's records alive only while both keys stay warm in LRU.)
	byBody map[Fp]Fp

	bytes                                  int64
	hits, misses, invalidations, evictions uint64
}

type storeEntry struct {
	key    Fp
	bodyFp Fp
	seed   *analysis.ProcSeed
	size   int
}

// NewLRUSummaryStore builds the baseline store bounded to capacity
// records (entries, not bytes; byte totals are reported for sizing).
func NewLRUSummaryStore(capacity int) SummaryStore {
	return &lruSummaryStore{
		capacity: capacity,
		lru:      list.New(),
		byKey:    map[Fp]*list.Element{},
		byBody:   map[Fp]Fp{},
	}
}

func (st *lruSummaryStore) Get(key Fp) (*analysis.ProcSeed, bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	el, ok := st.byKey[key]
	if !ok {
		st.misses++
		return nil, false
	}
	st.hits++
	st.lru.MoveToFront(el)
	return el.Value.(*storeEntry).seed, true
}

func (st *lruSummaryStore) Put(key Fp, bodyFp Fp, seed *analysis.ProcSeed) {
	size := seed.SizeBytes() // outside the lock: walks the whole record
	st.mu.Lock()
	defer st.mu.Unlock()
	if el, ok := st.byKey[key]; ok {
		// Same key: deterministic exports make the records deep-equal;
		// keep the incumbent, refresh recency.
		st.lru.MoveToFront(el)
		st.byBody[bodyFp] = key
		return
	}
	if old, ok := st.byBody[bodyFp]; ok && old != key {
		if el, ok := st.byKey[old]; ok {
			st.removeLocked(el)
			st.invalidations++
		}
	}
	e := &storeEntry{key: key, bodyFp: bodyFp, seed: seed, size: size}
	st.byKey[key] = st.lru.PushFront(e)
	st.byBody[bodyFp] = key
	st.bytes += int64(e.size)
	for st.lru.Len() > st.capacity {
		oldest := st.lru.Back()
		st.removeLocked(oldest)
		st.evictions++
	}
}

func (st *lruSummaryStore) removeLocked(el *list.Element) {
	e := el.Value.(*storeEntry)
	st.lru.Remove(el)
	delete(st.byKey, e.key)
	if st.byBody[e.bodyFp] == e.key {
		delete(st.byBody, e.bodyFp)
	}
	st.bytes -= int64(e.size)
}

func (st *lruSummaryStore) Stats() SummaryStoreStats {
	st.mu.Lock()
	defer st.mu.Unlock()
	return SummaryStoreStats{
		Entries:       st.lru.Len(),
		Bytes:         st.bytes,
		Capacity:      st.capacity,
		Hits:          st.hits,
		Misses:        st.misses,
		Invalidations: st.invalidations,
		Evictions:     st.evictions,
	}
}
