package service

import (
	"context"

	"bytes"
	"encoding/json"
	"fmt"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/progs"
)

func corpusRequests() []Request {
	var out []Request
	for _, e := range progs.Catalog {
		out = append(out, Request{Name: e.Name, Source: e.Source, Roots: e.Roots})
	}
	return out
}

// TestCachedResponseByteIdentical is the acceptance criterion: for every
// corpus program, the cached response body must be byte-for-byte identical
// to the freshly analyzed one — and a re-analysis with a flushed cache
// must reproduce the same bytes (the render is deterministic, so the cache
// is a pure shortcut, never a change of answer).
func TestCachedResponseByteIdentical(t *testing.T) {
	svc := New(Options{})
	for _, req := range corpusRequests() {
		fresh := svc.Analyze(context.Background(), req)
		if fresh.Err != nil {
			t.Fatalf("%s: %v", req.Name, fresh.Err)
		}
		if fresh.Cached {
			t.Fatalf("%s: first response must be a miss", req.Name)
		}
		cached := svc.Analyze(context.Background(), req)
		if !cached.Cached {
			t.Errorf("%s: second response must be a cache hit", req.Name)
		}
		if !bytes.Equal(fresh.Body, cached.Body) {
			t.Errorf("%s: cached body differs from fresh body", req.Name)
		}
		svc.FlushCache()
		reFresh := svc.Analyze(context.Background(), req)
		if reFresh.Cached {
			t.Fatalf("%s: post-flush response must be a miss", req.Name)
		}
		if !bytes.Equal(fresh.Body, reFresh.Body) {
			t.Errorf("%s: re-analysis after cache flush produced different bytes:\n%s\nvs\n%s",
				req.Name, fresh.Body, reFresh.Body)
		}
		svc.FlushCache()
	}
}

// TestResponsesStableAcrossEpochReset: rendered results never embed
// interned IDs, so forcing Space epoch resets between requests must not
// change a single byte — this is what lets cached bytes outlive epochs.
func TestResponsesStableAcrossEpochReset(t *testing.T) {
	svc := New(Options{CacheCapacity: -1}) // no cache: every request re-analyzes
	reference := map[string][]byte{}
	for _, req := range corpusRequests() {
		resp := svc.Analyze(context.Background(), req)
		if resp.Err != nil {
			t.Fatalf("%s: %v", req.Name, resp.Err)
		}
		reference[req.Name] = resp.Body
	}
	// Force a new epoch on every session's PRIVATE Space — the Spaces the
	// analyses above actually interned into. The sessions are all idle
	// between requests in this single-threaded test, so resetting directly
	// respects the epoch contract.
	epoch := svc.Stats().Epoch
	for _, sess := range svc.sessionList {
		sess.space.Paths().Reset()
	}
	if got := svc.Stats().Epoch; got != epoch+uint64(len(svc.sessionList)) {
		t.Fatalf("resets did not advance the session epochs: %d -> %d", epoch, got)
	}
	for _, req := range corpusRequests() {
		resp := svc.Analyze(context.Background(), req)
		if resp.Err != nil {
			t.Fatalf("%s: %v", req.Name, resp.Err)
		}
		if !bytes.Equal(reference[req.Name], resp.Body) {
			t.Errorf("%s: response changed across a Space epoch reset", req.Name)
		}
	}
}

// TestWarmAtLeastFiveTimesFasterThanCold is the acceptance criterion for
// the serving layer's point: on the corpus median, answering from the
// cache must be at least 5x faster than analyzing. (In practice the gap
// is orders of magnitude — a map lookup against a full fixpoint — so the
// 5x bar also holds on noisy CI runners.)
func TestWarmAtLeastFiveTimesFasterThanCold(t *testing.T) {
	svc := New(Options{})
	var speedups []float64
	for _, req := range corpusRequests() {
		start := time.Now()
		resp := svc.Analyze(context.Background(), req)
		cold := time.Since(start)
		if resp.Err != nil {
			t.Fatalf("%s: %v", req.Name, resp.Err)
		}
		// Median of several warm probes: one descheduled lookup must not
		// distort the ratio.
		var warms []time.Duration
		for i := 0; i < 5; i++ {
			start = time.Now()
			warm := svc.Analyze(context.Background(), req)
			warms = append(warms, time.Since(start))
			if !warm.Cached {
				t.Fatalf("%s: warm request missed the cache", req.Name)
			}
		}
		sort.Slice(warms, func(i, j int) bool { return warms[i] < warms[j] })
		w := warms[len(warms)/2]
		if w <= 0 {
			w = time.Nanosecond
		}
		speedups = append(speedups, float64(cold)/float64(w))
	}
	sort.Float64s(speedups)
	median := speedups[len(speedups)/2]
	t.Logf("corpus warm-vs-cold speedups: median %.0fx, min %.0fx, max %.0fx",
		median, speedups[0], speedups[len(speedups)-1])
	if median < 5 {
		t.Errorf("median warm speedup %.1fx < 5x", median)
	}
}

// TestBatchMatchesSequential: a batched request must return exactly the
// per-program bytes of sequential requests, in request order, regardless
// of the parallelism underneath.
func TestBatchMatchesSequential(t *testing.T) {
	ref := New(Options{})
	reqs := corpusRequests()
	want := make([][]byte, len(reqs))
	for i, req := range reqs {
		resp := ref.Analyze(context.Background(), req)
		if resp.Err != nil {
			t.Fatalf("%s: %v", req.Name, resp.Err)
		}
		want[i] = resp.Body
	}
	svc := New(Options{Sessions: 4})
	resps := svc.AnalyzeBatch(context.Background(), reqs)
	for i, resp := range resps {
		if resp.Err != nil {
			t.Fatalf("%s: %v", reqs[i].Name, resp.Err)
		}
		if resp.Name != reqs[i].Name {
			t.Errorf("batch response %d out of order: got %s want %s", i, resp.Name, reqs[i].Name)
		}
		if !bytes.Equal(resp.Body, want[i]) {
			t.Errorf("%s: batched body differs from sequential body", reqs[i].Name)
		}
	}
}

// TestConcurrentLoadWithEvictionsAndResets hammers one service from many
// goroutines with a cache too small for the corpus (forcing evictions) and
// an interned-path budget low enough to force epoch resets mid-load. Every
// response must still match the single-threaded reference bytes. Run under
// -race this also pins the session-pool checkout discipline that makes the
// per-session Space resets lock-free.
func TestConcurrentLoadWithEvictionsAndResets(t *testing.T) {
	ref := New(Options{})
	reqs := corpusRequests()
	want := map[string][]byte{}
	for _, req := range reqs {
		resp := ref.Analyze(context.Background(), req)
		if resp.Err != nil {
			t.Fatalf("%s: %v", req.Name, resp.Err)
		}
		want[req.Name] = resp.Body
	}
	svc := New(Options{
		CacheCapacity:      4,  // corpus is larger: constant evictions
		ResetInternedPaths: 40, // below the corpus working set: epoch resets throughout the load
		Sessions:           4,
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 3*len(reqs); i++ {
				req := reqs[(g+i)%len(reqs)]
				resp := svc.Analyze(context.Background(), req)
				if resp.Err != nil {
					t.Errorf("%s: %v", req.Name, resp.Err)
					return
				}
				if !bytes.Equal(resp.Body, want[req.Name]) {
					t.Errorf("%s: concurrent response diverged from reference", req.Name)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := svc.Stats()
	t.Logf("load stats: %s", st)
	if st.CacheEvictions == 0 {
		t.Error("load must have forced cache evictions")
	}
	if st.EpochResets == 0 {
		t.Error("load must have forced epoch resets")
	}
	if st.CacheSize > 4 {
		t.Errorf("cache exceeded its capacity: %d > 4", st.CacheSize)
	}
}

// TestParseErrorIs400 pins the error contract: parse/type failures are
// client errors carrying diagnostics, not server failures.
func TestParseErrorIs400(t *testing.T) {
	svc := New(Options{})
	for name, src := range map[string]string{
		"syntax": "program broken\nprocedure main()\nbegin\n  x := \nend;",
		"type":   "program broken\nprocedure main()\n  x: int\nbegin\n  x := new()\nend;",
		"nomain": "program broken\nprocedure helper()\nbegin\n  helper()\nend;",
	} {
		resp := svc.Analyze(context.Background(), Request{Name: name, Source: src})
		if resp.Err == nil {
			t.Errorf("%s: expected an error", name)
			continue
		}
		if resp.Err.Status != 400 {
			t.Errorf("%s: status = %d, want 400 (%s)", name, resp.Err.Status, resp.Err.Msg)
		}
		if len(resp.Err.Diags) == 0 {
			t.Errorf("%s: 400 must carry diagnostics", name)
		}
	}
}

// TestFingerprintCanonicalization: formatting differences that parse to
// the same structure must share a fingerprint (one cache entry), while a
// structural or option change must not.
func TestFingerprintCanonicalization(t *testing.T) {
	svc := New(Options{})
	spaced := "program p\nprocedure main()\n  a : handle\nbegin\n    a := new( )\nend;"
	compact := "program p procedure main() a: handle begin a := new() end;"
	r1 := svc.Analyze(context.Background(), Request{Source: spaced})
	if r1.Err != nil {
		t.Fatal(r1.Err)
	}
	r2 := svc.Analyze(context.Background(), Request{Source: compact})
	if r2.Err != nil {
		t.Fatal(r2.Err)
	}
	if r1.Fingerprint != r2.Fingerprint {
		t.Errorf("reformatted source changed the fingerprint: %s vs %s", r1.Fingerprint, r2.Fingerprint)
	}
	if !r2.Cached {
		t.Error("reformatted source must hit the cache")
	}
	if !bytes.Equal(r1.Body, r2.Body) {
		t.Error("reformatted source returned different bytes")
	}
	r3 := svc.Analyze(context.Background(), Request{Source: compact, MaxContexts: -1})
	if r3.Err != nil {
		t.Fatal(r3.Err)
	}
	if r3.Cached || r3.Fingerprint == r1.Fingerprint {
		t.Error("an option change must produce a distinct cache key")
	}
	r4 := svc.Analyze(context.Background(), Request{Source: "program p procedure main() a: handle begin a := nil end;"})
	if r4.Err != nil {
		t.Fatal(r4.Err)
	}
	if r4.Cached || r4.Fingerprint == r1.Fingerprint {
		t.Error("a structural change must produce a distinct cache key")
	}
}

// TestStatsCounters sanity-checks the monitoring surface.
func TestStatsCounters(t *testing.T) {
	svc := New(Options{CacheCapacity: 2})
	reqs := corpusRequests()[:3]
	for _, req := range reqs {
		if resp := svc.Analyze(context.Background(), req); resp.Err != nil {
			t.Fatal(resp.Err)
		}
	}
	// Re-request the last one (still cached: capacity 2 holds the two most
	// recent) and the first one (evicted: a miss).
	if resp := svc.Analyze(context.Background(), reqs[2]); resp.Err != nil || !resp.Cached {
		t.Errorf("most recent program should be cached (err=%v)", resp.Err)
	}
	if resp := svc.Analyze(context.Background(), reqs[0]); resp.Err != nil || resp.Cached {
		t.Errorf("evicted program should re-analyze (err=%v)", resp.Err)
	}
	st := svc.Stats()
	if st.Served != 5 || st.CacheHits != 1 || st.CacheMisses != 4 || st.CacheEvictions < 1 {
		t.Errorf("unexpected counters: %s", st)
	}
	if st.CacheSize != 2 {
		t.Errorf("cache size %d, want 2", st.CacheSize)
	}
	// The document is valid JSON with the fields the dashboard reads.
	data, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var m map[string]any
	if err := json.Unmarshal(data, &m); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"served", "cache_hits", "cache_misses", "hit_rate", "epoch", "interned_paths"} {
		if _, ok := m[k]; !ok {
			t.Errorf("stats document missing %q: %s", k, data)
		}
	}
}

// TestResultDocumentShape decodes one result body and checks the canonical
// document fields, including the deterministic procedure ordering.
func TestResultDocumentShape(t *testing.T) {
	svc := New(Options{})
	resp := svc.Analyze(context.Background(), Request{Name: "add_and_reverse", Source: progs.AddAndReverse})
	if resp.Err != nil {
		t.Fatal(resp.Err)
	}
	var doc ResultDoc
	if err := json.Unmarshal(resp.Body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Schema != "sil-analysis/v2" || doc.Name != "add_and_reverse" || doc.Mode != "context" {
		t.Errorf("unexpected document header: %+v", doc)
	}
	if doc.Limits != (LimitsDoc{MaxExact: 8, MaxSegs: 6, MaxPaths: 8}) {
		t.Errorf("default limits misreflected: %+v", doc.Limits)
	}
	if doc.Fingerprint != resp.Fingerprint {
		t.Error("document fingerprint differs from response fingerprint")
	}
	if doc.ParStatements == 0 {
		t.Error("add_and_reverse must parallelize (Figure 8)")
	}
	var names []string
	for _, p := range doc.Procedures {
		names = append(names, p.Name)
	}
	if !sort.StringsAreSorted(names) {
		t.Errorf("procedures not sorted: %v", names)
	}
	found := false
	for _, p := range doc.Procedures {
		if p.Name == "add_n" {
			found = true
			if len(p.Params) != 2 || p.Params[0].ReadOnly || p.Params[0].Type != "handle" {
				t.Errorf("add_n params misrendered: %+v", p.Params)
			}
		}
	}
	if !found {
		t.Error("add_n summary missing from the document")
	}
}

// TestCacheHitAcrossRequestNames: the cache key is the canonical program,
// not the request label — and the cached body must be correct for every
// requester, so the document carries the program's DECLARED name (a pure
// function of the source), while Response.Name echoes the label.
func TestCacheHitAcrossRequestNames(t *testing.T) {
	svc := New(Options{})
	a := svc.Analyze(context.Background(), Request{Name: "jobA", Source: progs.TreeDagDemo})
	if a.Err != nil {
		t.Fatal(a.Err)
	}
	b := svc.Analyze(context.Background(), Request{Name: "jobB", Source: progs.TreeDagDemo})
	if b.Err != nil {
		t.Fatal(b.Err)
	}
	if !b.Cached {
		t.Error("same program under a different label must hit the cache")
	}
	if !bytes.Equal(a.Body, b.Body) {
		t.Error("bodies must be byte-identical across request labels")
	}
	if a.Name != "jobA" || b.Name != "jobB" {
		t.Errorf("Response.Name must echo the label: %q, %q", a.Name, b.Name)
	}
	var doc ResultDoc
	if err := json.Unmarshal(b.Body, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Name != "dagdemo" {
		t.Errorf("document name = %q, want the declared program name dagdemo", doc.Name)
	}
}

// TestBatchBoundedBySessionPool: a batch far larger than the pool must
// never run more than Sessions programs concurrently, compile included.
func TestBatchBoundedBySessionPool(t *testing.T) {
	svc := New(Options{Sessions: 2, CacheCapacity: -1})
	var reqs []Request
	for i := 0; i < 40; i++ {
		reqs = append(reqs, Request{Name: fmt.Sprintf("r%d", i), Source: progs.TreeDagDemo})
	}
	resps := svc.AnalyzeBatch(context.Background(), reqs)
	for _, r := range resps {
		if r.Err != nil {
			t.Fatal(r.Err)
		}
	}
}
