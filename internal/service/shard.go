package service

import (
	"context"
	"io"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/path"
)

// Shard router: consistent-hashes the canonical program fingerprint across
// N independent Services ("shards"), each with its own session pool,
// private per-session Spaces, and result cache. Routing is BY CONTENT, not
// by connection: the same program always lands on the same shard, so each
// shard's result cache and warm memo tables see a stable slice of the
// program population, and no cross-shard coordination is ever needed.
//
// Shard count is a pure capacity knob. Rendered bodies are functions of
// the canonical source and options only — never of intern IDs, Space
// identity, or which shard served the request — so responses are
// byte-identical whatever N is; the shard-equivalence suite pins that.
// Programs that fail to compile have no fingerprint (zero Fp) and route
// deterministically to the zero-key shard.

// ringReplicas is the number of virtual points each shard contributes to
// the hash ring; more points smooth the key-space split across shards.
const ringReplicas = 64

type ringPoint struct {
	hash  uint64
	shard int
}

// Router fans requests out over fingerprint-sharded Services. It serves
// the same Analyzer surface as a single Service, so transports (the HTTP
// handler, silbench -server) are shard-count-agnostic.
type Router struct {
	shards []*Service
	ring   []ringPoint
}

const ringSeed uint64 = 0x9e3779b97f4a7c15

// NewRouter builds n identical shards from one Options value. n < 1 is
// treated as 1.
func NewRouter(n int, opts Options) *Router {
	if n < 1 {
		n = 1
	}
	r := &Router{}
	for i := 0; i < n; i++ {
		r.shards = append(r.shards, New(opts))
	}
	for i := 0; i < n; i++ {
		base := path.Mix64(uint64(i+1) * ringSeed)
		for v := 0; v < ringReplicas; v++ {
			r.ring = append(r.ring, ringPoint{
				hash:  path.Mix64(base ^ uint64(v+1)*ringSeed),
				shard: i,
			})
		}
	}
	// Deterministic ring: ties (vanishingly unlikely) break by shard index
	// so every Router over the same n routes identically.
	sort.Slice(r.ring, func(a, b int) bool {
		if r.ring[a].hash != r.ring[b].hash {
			return r.ring[a].hash < r.ring[b].hash
		}
		return r.ring[a].shard < r.ring[b].shard
	})
	return r
}

// NumShards reports the shard count.
func (r *Router) NumShards() int { return len(r.shards) }

// Shard returns shard i (stats and test access).
func (r *Router) Shard(i int) *Service { return r.shards[i] }

// shardFor picks the owning shard: the first ring point clockwise from the
// fingerprint's position, wrapping at the top. A zero fingerprint (compile
// failure) is as deterministic as any other key.
func (r *Router) shardFor(fp Fp) int {
	key := path.Mix64(fp.Hi ^ path.Mix64(fp.Lo+ringSeed))
	i := sort.Search(len(r.ring), func(i int) bool { return r.ring[i].hash >= key })
	if i == len(r.ring) {
		i = 0
	}
	return r.ring[i].shard
}

// Analyze prepares (compiles + fingerprints) the request once, then serves
// it on the fingerprint's owning shard. prepare touches no per-shard
// counters, so running it on shard 0 unconditionally is sound (phase
// latencies for parse/fingerprint land on shard 0's histograms — the
// scraper sums across shards anyway).
func (r *Router) Analyze(ctx context.Context, req Request) Response {
	p := r.shards[0].prepare(req)
	return r.shards[r.shardFor(p.fp)].analyzePrepared(ctx, p)
}

// AnalyzeBatch serves a multi-program request across the shards, responses
// in request order. The worker budget is the total session count across
// shards; per-shard queueing still bounds each shard to its own pool.
func (r *Router) AnalyzeBatch(ctx context.Context, reqs []Request) []Response {
	out := make([]Response, len(reqs))
	if len(reqs) == 1 {
		out[0] = r.Analyze(ctx, reqs[0])
		return out
	}
	workers := 0
	for _, s := range r.shards {
		workers += s.opts.Sessions
	}
	if workers > len(reqs) {
		workers = len(reqs)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(reqs) {
					return
				}
				out[i] = r.Analyze(ctx, reqs[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// RouterStats is the sharded /stats document: the per-shard snapshots plus
// a Total that aggregates them (counter fields sum; the cache hit rate
// recomputes from the summed traffic; the memo hit rate is a
// verdict-weighted mean; the per-session slices concatenate in shard
// order).
type RouterStats struct {
	Shards   int     `json:"shards"`
	Total    Stats   `json:"total"`
	PerShard []Stats `json:"per_shard"`
}

// Stats snapshots every shard.
func (r *Router) Stats() RouterStats {
	rs := RouterStats{Shards: len(r.shards)}
	var memoWeighted float64
	var memoVerdicts int
	for _, s := range r.shards {
		st := s.Stats()
		rs.PerShard = append(rs.PerShard, st)
		t := &rs.Total
		t.Served += st.Served
		t.Analyses += st.Analyses
		t.Errors += st.Errors
		t.CacheHits += st.CacheHits
		t.CacheMisses += st.CacheMisses
		t.CacheEvictions += st.CacheEvictions
		t.CacheSize += st.CacheSize
		t.CacheCapacity += st.CacheCapacity
		t.Coalesced += st.Coalesced
		t.Shed += st.Shed
		t.Expired += st.Expired
		t.Busy += st.Busy
		t.Queued += st.Queued
		t.QueueCapacity += st.QueueCapacity
		// Merge per-code counts over the FIXED code vocabulary (never by
		// ranging the map — map-range order must not shape output).
		for _, code := range errorCodes {
			if n := st.ErrorCodes[code]; n > 0 {
				if t.ErrorCodes == nil {
					t.ErrorCodes = map[string]uint64{}
				}
				t.ErrorCodes[code] += n
			}
		}
		t.Sessions += st.Sessions
		t.SessionLoads = append(t.SessionLoads, st.SessionLoads...)
		t.SessionEpochs = append(t.SessionEpochs, st.SessionEpochs...)
		t.Epoch += st.Epoch
		t.EpochResets += st.EpochResets
		t.InternedPaths += st.InternedPaths
		t.MemoVerdicts += st.MemoVerdicts
		t.SummaryStore = t.SummaryStore.add(st.SummaryStore)
		memoWeighted += st.MemoHitRate * float64(st.MemoVerdicts)
		memoVerdicts += st.MemoVerdicts
	}
	if total := rs.Total.CacheHits + rs.Total.CacheMisses; total > 0 {
		rs.Total.HitRate = float64(rs.Total.CacheHits) / float64(total)
	}
	if memoVerdicts > 0 {
		rs.Total.MemoHitRate = memoWeighted / float64(memoVerdicts)
	}
	return rs
}

// FlushCache drops every shard's result cache.
func (r *Router) FlushCache() {
	for _, s := range r.shards {
		s.FlushCache()
	}
}

// WriteMetrics writes the Prometheus exposition with one series per shard
// (uniform shard="N" labels; see metrics.go).
func (r *Router) WriteMetrics(w io.Writer) {
	snaps := make([]metricsSnapshot, len(r.shards))
	for i, s := range r.shards {
		snaps[i] = s.metricsSnapshot()
	}
	writePrometheus(w, snaps)
}
