package service

import (
	"sort"

	"repro/internal/analysis"
	"repro/internal/sil/ast"
	"repro/internal/sil/printer"
)

// Per-procedure fingerprints for the incremental-analysis layer. The
// result cache keys whole programs; the summary store keys procedures. A
// converged per-procedure summary is a function of the procedure's own
// transfer function — its body plus the bodies of everything it can
// reach through calls — so the store key folds the *cohort*: the
// procedure's body fingerprint combined with the body fingerprints of
// its reachable-callee closure (self included; SIL has no indirect
// calls, so the static call graph is exact). Editing any procedure
// changes the cohort fingerprint of exactly itself, its SCC, and its
// transitive callers — everything else keeps its key and stays warm.

// ProcFp carries the two fingerprints of one procedure.
type ProcFp struct {
	Body   Fp // over the printed canonical declaration
	Cohort Fp // Body folded with every reachable callee's Body
}

// ProcFingerprints computes body and cohort fingerprints for every
// procedure in a checked, normalized program.
func ProcFingerprints(prog *ast.Program) map[string]ProcFp {
	bodies := make(map[string]Fp, len(prog.Decls))
	callees := make(map[string][]string, len(prog.Decls))
	for _, d := range prog.Decls {
		f := Fp{Hi: fpSeedHi, Lo: fpSeedLo}
		f.mixString("sil-proc/v1")
		f.mixString(printer.PrintDecl(d))
		bodies[d.Name] = f
		seen := map[string]bool{}
		walkCalls(d.Body, func(name string) {
			if !seen[name] && prog.Proc(name) != nil {
				seen[name] = true
				callees[d.Name] = append(callees[d.Name], name)
			}
		})
	}
	out := make(map[string]ProcFp, len(prog.Decls))
	for _, d := range prog.Decls {
		reach := map[string]bool{}
		var visit func(string)
		visit = func(n string) {
			if reach[n] {
				return
			}
			reach[n] = true
			for _, c := range callees[n] {
				visit(c)
			}
		}
		visit(d.Name)
		names := make([]string, 0, len(reach))
		for n := range reach {
			names = append(names, n)
		}
		sort.Strings(names)
		f := Fp{Hi: fpSeedHi, Lo: fpSeedLo}
		f.mixString("sil-cohort/v1")
		// The procedure's own body is mixed FIRST, outside the symmetric
		// closure fold: members of one SCC share the reachable set, and a
		// set-only key would alias their (distinct!) summaries in the store.
		self := bodies[d.Name]
		f.mix(self.Hi)
		f.mix(self.Lo)
		for _, n := range names {
			f.mixString(n)
			b := bodies[n]
			f.mix(b.Hi)
			f.mix(b.Lo)
		}
		out[d.Name] = ProcFp{Body: bodies[d.Name], Cohort: f}
	}
	return out
}

// SummaryKey keys one procedure's converged summary in the summary
// store: the cohort fingerprint plus every analysis option that can
// change a summary — the same option set ProgramFingerprint folds, minus
// the source (the cohort replaces it). Like ProgramFingerprint, pure work
// caps (MaxWorklist) stay out: they cannot change a converged summary.
func SummaryKey(cohort Fp, opts analysis.Options) Fp {
	f := Fp{Hi: fpSeedHi, Lo: fpSeedLo}
	f.mixString("sil-summary/v1")
	f.mix(cohort.Hi)
	f.mix(cohort.Lo)
	f.mixInt(len(opts.ExternalRoots))
	for _, r := range opts.ExternalRoots {
		f.mixString(r)
	}
	f.mixInt(opts.MaxContexts)
	f.mixInt(opts.MaxLoopIters)
	f.mixInt(opts.Limits.MaxExact)
	f.mixInt(opts.Limits.MaxSegs)
	f.mixInt(opts.Limits.MaxPaths)
	return f
}

// walkCalls visits the callee name of every call in a statement subtree.
func walkCalls(s ast.Stmt, f func(string)) {
	if s == nil {
		return
	}
	switch s := s.(type) {
	case *ast.Block:
		for _, st := range s.Stmts {
			walkCalls(st, f)
		}
	case *ast.Par:
		for _, st := range s.Branches {
			walkCalls(st, f)
		}
	case *ast.If:
		walkCalls(s.Then, f)
		walkCalls(s.Else, f)
	case *ast.While:
		walkCalls(s.Body, f)
	case *ast.CallStmt:
		f(s.Name)
	case *ast.Assign:
		if c, ok := s.Rhs.(*ast.CallExpr); ok {
			f(c.Name)
		}
	}
}
