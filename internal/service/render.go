package service

import (
	"encoding/json"
	"sort"

	"repro/internal/analysis"
	"repro/internal/par"
	"repro/internal/sil/ast"
)

// The result document is the canonical JSON body for one analyzed program.
// Everything in it must be DETERMINISTIC — independent of worker counts,
// map iteration order, interning history, and wall-clock — because cached
// and freshly analyzed responses are required to be byte-identical (the
// cache stores the rendered bytes and replays them verbatim; a fresh
// analysis of the same program must produce the same bytes). Timing
// therefore lives in /stats and transport headers, never here.

// ParamDoc describes one procedure parameter's mod-ref classification.
type ParamDoc struct {
	Name     string `json:"name"`
	Type     string `json:"type"`
	ReadOnly bool   `json:"read_only"`
	Update   bool   `json:"update,omitempty"`
	Links    bool   `json:"links,omitempty"`
	Attaches bool   `json:"attaches,omitempty"`
}

// ProcDoc summarizes one procedure of the analyzed program.
type ProcDoc struct {
	Name          string     `json:"name"`
	Params        []ParamDoc `json:"params,omitempty"`
	ModifiesLinks bool       `json:"modifies_links"`
	// ExactContexts counts live exact call contexts; HasFallback reports a
	// materialized merged fallback; Evictions counts cap evictions.
	ExactContexts int  `json:"exact_contexts"`
	HasFallback   bool `json:"has_fallback"`
	Evictions     int  `json:"evictions,omitempty"`
}

// LimitsDoc reflects the effective path-domain budgets (after service
// defaults and any per-request override) back to the client.
type LimitsDoc struct {
	MaxExact int `json:"max_exact"`
	MaxSegs  int `json:"max_segs"`
	MaxPaths int `json:"max_paths"`
}

// ResultDoc is the canonical per-program analysis result.
//
// Schema history: v2 dropped the fallbacks_activated / fallback_analyses /
// exits_shared counters — they describe HOW a fixpoint was scheduled
// (lazy-fallback work, exit sharing), which warm summary-seeded runs
// legitimately skip, so they could not stay in a body that must be
// byte-identical between cold and warm analyses — and added the effective
// `limits` block.
type ResultDoc struct {
	Schema      string `json:"schema"`
	Name        string `json:"name"`
	Fingerprint string `json:"fingerprint"`
	// Mode is "context" or "merged"; Workers is omitted on purpose —
	// results are worker-independent.
	Mode   string    `json:"mode"`
	Limits LimitsDoc `json:"limits"`

	Shape     string   `json:"shape"`
	ExitShape string   `json:"exit_shape"`
	Diags     []string `json:"diagnostics"`

	// ParStatements/ParBranches report what the §5 parallelizer found.
	ParStatements int `json:"par_statements"`
	ParBranches   int `json:"par_branches"`

	// Context-table roll-up (see analysis.CtxTableStats).
	Contexts    int `json:"contexts"`
	MergedProcs int `json:"merged_procs"`
	Evictions   int `json:"evictions"`

	Procedures []ProcDoc `json:"procedures"`
}

// renderResult builds the canonical JSON body for one analysis.
func renderResult(name string, fp Fp, info *analysis.Info, parRes *par.Result) ([]byte, error) {
	mode := "merged"
	if info.Opts.ContextSensitive() {
		mode = "context"
	}
	ct := info.ContextTableStats()
	doc := ResultDoc{
		Schema:      "sil-analysis/v2",
		Name:        name,
		Fingerprint: fp.String(),
		Mode:        mode,
		Limits: LimitsDoc{
			MaxExact: info.Opts.Limits.MaxExact,
			MaxSegs:  info.Opts.Limits.MaxSegs,
			MaxPaths: info.Opts.Limits.MaxPaths,
		},
		Shape:       info.Shape().String(),
		ExitShape:   info.ExitShape().String(),
		Diags:       info.DiagStrings(),
		Contexts:    ct.Exact,
		MergedProcs: ct.MergedProcs,
		Evictions:   ct.Evictions,
	}
	if doc.Diags == nil {
		doc.Diags = []string{}
	}
	if parRes != nil {
		doc.ParStatements = parRes.Stats.ParStatements
		doc.ParBranches = parRes.Stats.Branches
	}
	names := make([]string, 0, len(info.Summaries))
	for n := range info.Summaries {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		sum := info.Summaries[n]
		pd := ProcDoc{Name: n, ModifiesLinks: sum.ModifiesLinks}
		for i, p := range sum.Proc.Params {
			pd.Params = append(pd.Params, ParamDoc{
				Name:     p.Name,
				Type:     p.Type.String(),
				ReadOnly: p.Type == ast.HandleT && sum.ReadOnlyParam(i),
				Update:   i < len(sum.UpdateParams) && sum.UpdateParams[i],
				Links:    i < len(sum.LinkParams) && sum.LinkParams[i],
				Attaches: i < len(sum.AttachesParams) && sum.AttachesParams[i],
			})
		}
		exact, hasMerged, evictions := sum.ContextStats()
		pd.ExactContexts = exact
		pd.HasFallback = hasMerged
		pd.Evictions = evictions
		doc.Procedures = append(doc.Procedures, pd)
	}
	return json.Marshal(doc)
}
