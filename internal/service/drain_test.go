package service

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/progs"
)

// TestDrainGateRefusesAnalyzeKeepsObservability drives the graceful-drain
// contract: before Drain everything serves; after, analyze routes get 503
// with the draining code and a Retry-After hint, while healthz, stats,
// and metrics (versioned and legacy paths) stay up for the orchestrator.
func TestDrainGateRefusesAnalyzeKeepsObservability(t *testing.T) {
	gate := NewDrainGate(NewHandler(New(Options{})))
	srv := httptest.NewServer(gate)
	defer srv.Close()
	body, _ := json.Marshal(Request{Name: "treeadd", Source: progs.TreeAdd, Roots: []string{"root"}})

	resp, err := http.Post(srv.URL+"/v1/analyze", "application/json", strings.NewReader(string(body)))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("pre-drain analyze: status %d, want 200", resp.StatusCode)
	}
	if gate.Draining() {
		t.Error("gate reports draining before Drain")
	}

	gate.Drain()
	gate.Drain() // idempotent

	for _, path := range []string{"/v1/analyze", "/analyze"} {
		resp, err := http.Post(srv.URL+path, "application/json", strings.NewReader(string(body)))
		if err != nil {
			t.Fatal(err)
		}
		data, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("draining POST %s: status %d, want 503", path, resp.StatusCode)
		}
		if resp.Header.Get("Retry-After") == "" {
			t.Errorf("draining POST %s: no Retry-After hint", path)
		}
		var env errorEnvelope
		if err := json.Unmarshal(data, &env); err != nil {
			t.Fatalf("draining POST %s: bad envelope %q: %v", path, data, err)
		}
		if env.Error.Code != CodeDraining {
			t.Errorf("draining POST %s: code %q, want %q", path, env.Error.Code, CodeDraining)
		}
	}
	if got := gate.Refused(); got != 2 {
		t.Errorf("Refused() = %d, want 2", got)
	}

	for _, path := range []string{"/v1/healthz", "/healthz", "/v1/stats", "/stats", "/v1/metrics", "/metrics"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != 200 {
			t.Errorf("draining GET %s: status %d, want 200", path, resp.StatusCode)
		}
	}
}
