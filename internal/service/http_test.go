package service

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/progs"
)

func post(t *testing.T, srv *httptest.Server, body string) (*http.Response, []byte) {
	t.Helper()
	resp, err := srv.Client().Post(srv.URL+"/analyze", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

func get(t *testing.T, srv *httptest.Server, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, data
}

// TestHTTPCacheHitByteIdentical is the in-process version of the CI e2e
// smoke: post one corpus program twice; the second response must be a
// cache hit (header) with a byte-identical body.
func TestHTTPCacheHitByteIdentical(t *testing.T) {
	srv := httptest.NewServer(NewHandler(New(Options{})))
	defer srv.Close()
	body, _ := json.Marshal(Request{Name: "treeadd", Source: progs.TreeAdd, Roots: []string{"root"}})

	first, firstBody := post(t, srv, string(body))
	if first.StatusCode != 200 {
		t.Fatalf("first POST: status %d: %s", first.StatusCode, firstBody)
	}
	if v := first.Header.Get(CacheHeader); v != "miss" {
		t.Errorf("first POST: %s = %q, want miss", CacheHeader, v)
	}
	second, secondBody := post(t, srv, string(body))
	if second.StatusCode != 200 {
		t.Fatalf("second POST: status %d", second.StatusCode)
	}
	if v := second.Header.Get(CacheHeader); v != "hit" {
		t.Errorf("second POST: %s = %q, want hit", CacheHeader, v)
	}
	if !bytes.Equal(firstBody, secondBody) {
		t.Error("cache hit body differs from fresh body")
	}
	if fp := second.Header.Get(FingerprintHeader); fp == "" || fp != first.Header.Get(FingerprintHeader) {
		t.Error("fingerprint header missing or unstable")
	}
}

// TestHTTPBatch posts the whole corpus as one batch and cross-checks every
// embedded document against single-program responses.
func TestHTTPBatch(t *testing.T) {
	srv := httptest.NewServer(NewHandler(New(Options{})))
	defer srv.Close()
	batch, _ := json.Marshal(struct {
		Programs []Request `json:"programs"`
	}{corpusRequests()})
	resp, data := post(t, srv, string(batch))
	if resp.StatusCode != 200 {
		t.Fatalf("batch POST: status %d: %s", resp.StatusCode, data)
	}
	var out struct {
		Results []json.RawMessage `json:"results"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("batch body is not valid JSON: %v\n%s", err, data)
	}
	if len(out.Results) != len(progs.Catalog) {
		t.Fatalf("batch returned %d results, want %d", len(out.Results), len(progs.Catalog))
	}
	verdicts := strings.Split(resp.Header.Get(CacheHeader), ",")
	if len(verdicts) != len(out.Results) {
		t.Errorf("cache header has %d verdicts, want %d", len(verdicts), len(out.Results))
	}
	// Each document matches a single-program request (all cached now).
	for i, e := range progs.Catalog {
		body, _ := json.Marshal(Request{Name: e.Name, Source: e.Source, Roots: e.Roots})
		single, singleBody := post(t, srv, string(body))
		if single.Header.Get(CacheHeader) != "hit" {
			t.Errorf("%s: batch did not warm the cache", e.Name)
		}
		if !bytes.Equal(bytes.TrimSpace(singleBody), bytes.TrimSpace(out.Results[i])) {
			t.Errorf("%s: batch document differs from single response", e.Name)
		}
	}
}

// TestHTTPParseErrorIs400 checks the error contract over the wire.
func TestHTTPParseErrorIs400(t *testing.T) {
	srv := httptest.NewServer(NewHandler(New(Options{})))
	defer srv.Close()
	body, _ := json.Marshal(Request{Source: "program broken\nprocedure main()\nbegin\n  x :=\nend;"})
	resp, data := post(t, srv, string(body))
	if resp.StatusCode != 400 {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, data)
	}
	var doc errorEnvelope
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Error.Code != CodeParseError || doc.Error.Message == "" || len(doc.Error.Diagnostics) == 0 {
		t.Errorf("400 envelope must carry code=parse_error, message, and diagnostics: %s", data)
	}
	// Malformed JSON and empty requests are also 400s, with the
	// invalid_request code.
	if resp, data := post(t, srv, "{"); resp.StatusCode != 400 || !strings.Contains(string(data), CodeInvalidRequest) {
		t.Errorf("malformed JSON: status %d body %s, want 400 invalid_request", resp.StatusCode, data)
	}
	if resp, _ := post(t, srv, "{}"); resp.StatusCode != 400 {
		t.Errorf("empty request: status %d, want 400", resp.StatusCode)
	}
}

// TestHTTPStatsAndHealthz exercises the monitoring endpoints.
func TestHTTPStatsAndHealthz(t *testing.T) {
	srv := httptest.NewServer(NewHandler(New(Options{})))
	defer srv.Close()
	resp, data := get(t, srv, "/healthz")
	if resp.StatusCode != 200 {
		t.Fatalf("/healthz: status %d", resp.StatusCode)
	}
	var hz struct {
		Status string `json:"status"`
	}
	if err := json.Unmarshal(data, &hz); err != nil || hz.Status != "ok" {
		t.Errorf("/healthz body: %s (err=%v)", data, err)
	}
	body, _ := json.Marshal(Request{Name: "dagdemo", Source: progs.TreeDagDemo})
	post(t, srv, string(body))
	post(t, srv, string(body))
	resp, data = get(t, srv, "/stats")
	if resp.StatusCode != 200 {
		t.Fatalf("/stats: status %d", resp.StatusCode)
	}
	var st Stats
	if err := json.Unmarshal(data, &st); err != nil {
		t.Fatal(err)
	}
	if st.Served != 2 || st.CacheHits != 1 || st.CacheMisses != 1 {
		t.Errorf("unexpected stats after two posts: %s", st)
	}
	// Method checks.
	if resp, _ := get(t, srv, "/analyze"); resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /analyze: status %d, want 405", resp.StatusCode)
	}
	if resp, err := srv.Client().Post(srv.URL+"/stats", "application/json", strings.NewReader("{}")); err == nil {
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("POST /stats: status %d, want 405", resp.StatusCode)
		}
		resp.Body.Close()
	}
}

// TestHTTPBatchPartialFailure: a batch with one broken program keeps the
// successful results (null at the failed slot) alongside the errors array,
// under the error status.
func TestHTTPBatchPartialFailure(t *testing.T) {
	srv := httptest.NewServer(NewHandler(New(Options{})))
	defer srv.Close()
	batch, _ := json.Marshal(struct {
		Programs []Request `json:"programs"`
	}{[]Request{
		{Name: "good", Source: progs.TreeDagDemo},
		{Name: "bad", Source: "program broken\nprocedure main()\nbegin\n  x :=\nend;"},
	}})
	resp, data := post(t, srv, string(batch))
	if resp.StatusCode != 400 {
		t.Fatalf("status %d, want 400: %s", resp.StatusCode, data)
	}
	var out struct {
		Results []json.RawMessage `json:"results"`
		Errors  []errorBody       `json:"errors"`
	}
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatalf("partial-failure body is not valid JSON: %v\n%s", err, data)
	}
	if len(out.Results) != 2 || len(out.Errors) != 1 {
		t.Fatalf("want 2 results and 1 error, got %d/%d: %s", len(out.Results), len(out.Errors), data)
	}
	var doc ResultDoc
	if err := json.Unmarshal(out.Results[0], &doc); err != nil || doc.Name != "dagdemo" {
		t.Errorf("successful result must survive a partial failure (err=%v doc=%+v)", err, doc)
	}
	if string(out.Results[1]) != "null" {
		t.Errorf("failed slot must be null, got %s", out.Results[1])
	}
	if out.Errors[0].Name != "bad" || out.Errors[0].Code != CodeParseError || len(out.Errors[0].Diagnostics) == 0 {
		t.Errorf("error entry must name the program, carry code=parse_error and diagnostics: %+v", out.Errors[0])
	}
	if v := resp.Header.Get(CacheHeader); v != "miss,error" {
		t.Errorf("%s = %q, want miss,error", CacheHeader, v)
	}
}
