package service

import (
	"net/http"
	"strings"
	"sync/atomic"
)

// DrainGate wraps the service handler for graceful shutdown. Once Drain
// is called, analyze routes are refused with 503, the draining error
// code, and a Retry-After hint — the request belongs on another replica —
// while /healthz, /stats, and /metrics stay up so the orchestrator and
// scrapers can watch the drain finish. In-flight analyses are untouched:
// refusal only keeps NEW work out of the session pools during the grace
// window; http.Server.Shutdown then waits for the active connections.
type DrainGate struct {
	inner    http.Handler
	draining atomic.Bool
	refused  atomic.Uint64
}

// NewDrainGate wraps h. The gate starts open (not draining).
func NewDrainGate(h http.Handler) *DrainGate {
	return &DrainGate{inner: h}
}

// Drain flips the gate: every subsequent analyze request is refused.
// Idempotent and safe from any goroutine (the signal handler's).
func (g *DrainGate) Drain() {
	g.draining.Store(true)
}

// Draining reports whether Drain has been called.
func (g *DrainGate) Draining() bool {
	return g.draining.Load()
}

// Refused returns how many analyze requests the closed gate turned away.
func (g *DrainGate) Refused() uint64 {
	return g.refused.Load()
}

// drainExempt reports whether a path stays served while draining: the
// read-only observability routes, versioned or not.
func drainExempt(path string) bool {
	path = strings.TrimPrefix(path, "/v1")
	switch path {
	case "/healthz", "/stats", "/metrics":
		return true
	}
	return false
}

func (g *DrainGate) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if g.draining.Load() && !drainExempt(r.URL.Path) {
		g.refused.Add(1)
		w.Header().Set("Retry-After", "1")
		writeError(w, http.StatusServiceUnavailable,
			errorBody{Code: CodeDraining, Message: "server is draining; retry against another replica"})
		return
	}
	g.inner.ServeHTTP(w, r)
}
