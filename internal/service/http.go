package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
)

// HTTP transport for the service, shared by cmd/silserver and the silbench
// -server load mode.
//
//	POST /analyze  {"source": "...", "roots": [...]}            single
//	POST /analyze  {"programs": [{...}, {...}]}                 batch
//	GET  /stats    service counters + Space tables (?shard=N when sharded)
//	GET  /healthz  liveness + current epoch
//
// Responses for /analyze carry the canonical result document(s) as the
// body. Cache status is reported OUT OF BAND in the X-Sil-Cache header
// ("hit" / "miss", comma-joined for batches), so a cached response body is
// byte-identical to the fresh one — the property the e2e smoke test pins.
// Parse/type errors return 400 with the diagnostics in the body; internal
// analysis failures return 500.

// CacheHeader is the response header carrying per-program cache verdicts.
const CacheHeader = "X-Sil-Cache"

// FingerprintHeader carries the canonical program fingerprint(s).
const FingerprintHeader = "X-Sil-Fingerprint"

// Analyzer is the serving surface the HTTP transport needs; *Service and
// *Router both implement it, so one handler covers the single and sharded
// configurations.
type Analyzer interface {
	Analyze(Request) Response
	AnalyzeBatch([]Request) []Response
}

type analyzeRequest struct {
	Programs []Request `json:"programs"`
	Request            // single-program shorthand: fields inline
}

type errorDoc struct {
	Name   string   `json:"name,omitempty"`
	Status int      `json:"status"`
	Msg    string   `json:"error"`
	Diags  []string `json:"diagnostics,omitempty"`
}

// NewHandler builds the HTTP API around a Service.
func NewHandler(s *Service) http.Handler {
	return newMux(s,
		func(r *http.Request) (any, error) { return s.Stats(), nil },
		func() uint64 { return s.Stats().Epoch })
}

// NewRouterHandler builds the HTTP API around a shard Router. With one
// shard it is exactly NewHandler over that shard — same /stats document —
// so a -shards 1 server is indistinguishable from an unsharded one. With
// more, /stats serves the RouterStats aggregate, or one shard's snapshot
// with ?shard=N.
func NewRouterHandler(r *Router) http.Handler {
	if r.NumShards() == 1 {
		return NewHandler(r.Shard(0))
	}
	return newMux(r,
		func(req *http.Request) (any, error) {
			if q := req.URL.Query().Get("shard"); q != "" {
				i, err := strconv.Atoi(q)
				if err != nil || i < 0 || i >= r.NumShards() {
					return nil, fmt.Errorf("shard must be in [0,%d)", r.NumShards())
				}
				return r.Shard(i).Stats(), nil
			}
			return r.Stats(), nil
		},
		func() uint64 { return r.Stats().Total.Epoch })
}

// newMux wires the three routes around any Analyzer; the stats and epoch
// closures abstract the single/sharded difference.
func newMux(a Analyzer, stats func(*http.Request) (any, error), epoch func() uint64) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/analyze", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, `{"error":"POST required"}`, http.StatusMethodNotAllowed)
			return
		}
		var req analyzeRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeJSON(w, http.StatusBadRequest, errorDoc{Status: 400, Msg: "bad request body: " + err.Error()})
			return
		}
		single := len(req.Programs) == 0
		reqs := req.Programs
		if single {
			if strings.TrimSpace(req.Source) == "" {
				writeJSON(w, http.StatusBadRequest, errorDoc{Status: 400, Msg: "no source and no programs in request"})
				return
			}
			reqs = []Request{req.Request}
		}
		resps := a.AnalyzeBatch(reqs)

		status := http.StatusOK
		var errs []errorDoc
		cacheVerdicts := make([]string, len(resps))
		fps := make([]string, len(resps))
		for i, resp := range resps {
			cacheVerdicts[i] = verdict(resp)
			fps[i] = resp.Fingerprint
			if resp.Err != nil {
				errs = append(errs, errorDoc{
					Name: resp.Name, Status: resp.Err.Status,
					Msg: resp.Err.Msg, Diags: resp.Err.Diags,
				})
				if resp.Err.Status > status {
					status = resp.Err.Status
				}
			}
		}
		w.Header().Set(CacheHeader, strings.Join(cacheVerdicts, ","))
		w.Header().Set(FingerprintHeader, strings.Join(fps, ","))
		if single && len(errs) > 0 {
			writeJSON(w, status, errs[0])
			return
		}
		if single {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			w.Write(resps[0].Body)
			w.Write([]byte("\n"))
			return
		}
		// Batch envelope: the per-program documents verbatim, in request
		// order (null for a failed program) — still deterministic bytes for
		// a deterministic batch. A partial failure keeps the successful
		// results: the clean programs were analyzed and cached, so the body
		// carries them alongside the errors array rather than making the
		// client strip the bad program and pay for the batch again.
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		w.Write([]byte(`{"results":[`))
		for i, resp := range resps {
			if i > 0 {
				w.Write([]byte(","))
			}
			if resp.Err != nil {
				w.Write([]byte("null"))
			} else {
				w.Write(resp.Body)
			}
		}
		w.Write([]byte("]"))
		if len(errs) > 0 {
			if data, err := json.Marshal(errs); err == nil {
				w.Write([]byte(`,"errors":`))
				w.Write(data)
			}
		}
		w.Write([]byte("}\n"))
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, `{"error":"GET required"}`, http.StatusMethodNotAllowed)
			return
		}
		doc, err := stats(r)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, errorDoc{Status: 400, Msg: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, doc)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, `{"error":"GET required"}`, http.StatusMethodNotAllowed)
			return
		}
		writeJSON(w, http.StatusOK, struct {
			Status string `json:"status"`
			Epoch  uint64 `json:"epoch"`
		}{"ok", epoch()})
	})
	return mux
}

func verdict(r Response) string {
	if r.Err != nil {
		return "error"
	}
	if r.Cached {
		return "hit"
	}
	return "miss"
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	data, err := json.Marshal(v)
	if err != nil {
		fmt.Fprintf(w, `{"error":%q}`, err.Error())
		return
	}
	w.Write(data)
	w.Write([]byte("\n"))
}
