package service

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// HTTP transport for the service, shared by cmd/silserver and the silbench
// -server load mode. The surface is versioned under /v1/; the unversioned
// paths are thin aliases kept for existing clients.
//
//	POST /v1/analyze  {"source": "...", "roots": [...]}           single
//	POST /v1/analyze  {"programs": [{...}, {...}]}                batch
//	GET  /v1/stats    service counters + Space tables (?shard=N when sharded)
//	GET  /v1/metrics  Prometheus text exposition (metrics.go)
//	GET  /v1/healthz  liveness + current epoch
//	POST /analyze     alias of /v1/analyze   GET /stats    alias of /v1/stats
//	GET  /metrics     alias of /v1/metrics   GET /healthz  alias of /v1/healthz
//
// Responses for /v1/analyze carry the canonical result document(s) as the
// body. Cache status is reported OUT OF BAND in the X-Sil-Cache header
// ("hit" / "miss", comma-joined for batches), so a cached response body is
// byte-identical to the fresh one — the property the e2e smoke test pins.
//
// Every failure, at every route, uses one envelope:
//
//	{"error": {"code": "...", "message": "...", "diagnostics": [...]}}
//
// with the machine-readable Code* vocabulary (service.go): parse_error and
// invalid_request behind 400, overloaded behind 429 (+ Retry-After),
// budget_exceeded behind 503, deadline_exceeded behind 504, canceled
// behind 499, internal behind 500. Each request runs under a context
// derived from the client connection plus the service RequestTimeout, so
// a hung client or an expired deadline frees the session pool at the next
// round barrier instead of stalling it.

// CacheHeader is the response header carrying per-program cache verdicts.
const CacheHeader = "X-Sil-Cache"

// FingerprintHeader carries the canonical program fingerprint(s).
const FingerprintHeader = "X-Sil-Fingerprint"

// Analyzer is the serving surface the HTTP transport needs; *Service and
// *Router both implement it, so one handler covers the single and sharded
// configurations. The context carries the caller's deadline/cancellation
// into the analysis engine's round barriers — there is deliberately no
// context-less entry point.
type Analyzer interface {
	Analyze(ctx context.Context, req Request) Response
	AnalyzeBatch(ctx context.Context, reqs []Request) []Response
}

type analyzeRequest struct {
	Programs []Request `json:"programs"`
	Request            // single-program shorthand: fields inline
}

// errorBody is the inner object of the v1 error envelope.
type errorBody struct {
	// Code is the machine-readable error code (Code* constants).
	Code string `json:"code"`
	// Message is the human-readable rendering.
	Message string `json:"message"`
	// Name labels the failing program in batch errors.
	Name string `json:"name,omitempty"`
	// Diagnostics carries compile diagnostics behind parse_error.
	Diagnostics []string `json:"diagnostics,omitempty"`
}

// errorEnvelope is the uniform failure document of every v1 route.
type errorEnvelope struct {
	Error errorBody `json:"error"`
}

// writeError emits the envelope with transport concerns attached: the
// Retry-After hint on 429 (admission sheds are retryable by design — the
// queue was full, not the request wrong).
func writeError(w http.ResponseWriter, status int, body errorBody) {
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	writeJSON(w, status, errorEnvelope{Error: body})
}

func requestErrorBody(name string, rerr *RequestError) errorBody {
	return errorBody{Code: rerr.Code, Message: rerr.Msg, Name: name, Diagnostics: rerr.Diags}
}

// handlerConfig abstracts the single/sharded difference for newMux.
type handlerConfig struct {
	stats   func(*http.Request) (any, error)
	epoch   func() uint64
	metrics func(io.Writer)
}

// NewHandler builds the HTTP API around a Service.
func NewHandler(s *Service) http.Handler {
	return newMux(s, s.opts.RequestTimeout, handlerConfig{
		stats:   func(r *http.Request) (any, error) { return s.Stats(), nil },
		epoch:   func() uint64 { return s.Stats().Epoch },
		metrics: s.WriteMetrics,
	})
}

// NewRouterHandler builds the HTTP API around a shard Router. With one
// shard it is exactly NewHandler over that shard — same /stats document —
// so a -shards 1 server is indistinguishable from an unsharded one. With
// more, /stats serves the RouterStats aggregate, or one shard's snapshot
// with ?shard=N; /metrics always exposes every shard (one series per
// shard="N" label).
func NewRouterHandler(r *Router) http.Handler {
	if r.NumShards() == 1 {
		return NewHandler(r.Shard(0))
	}
	return newMux(r, r.Shard(0).opts.RequestTimeout, handlerConfig{
		stats: func(req *http.Request) (any, error) {
			if q := req.URL.Query().Get("shard"); q != "" {
				i, err := strconv.Atoi(q)
				if err != nil || i < 0 || i >= r.NumShards() {
					return nil, fmt.Errorf("shard must be in [0,%d)", r.NumShards())
				}
				return r.Shard(i).Stats(), nil
			}
			return r.Stats(), nil
		},
		epoch:   func() uint64 { return r.Stats().Total.Epoch },
		metrics: r.WriteMetrics,
	})
}

// handleBoth registers one handler under its /v1/ path and the legacy
// unversioned alias; both serve byte-identical responses.
func handleBoth(mux *http.ServeMux, path string, h http.HandlerFunc) {
	mux.HandleFunc("/v1"+path, h)
	mux.HandleFunc(path, h)
}

// newMux wires the four routes around any Analyzer; handlerConfig
// abstracts the single/sharded difference, and timeout (the service
// RequestTimeout) bounds each request's context.
func newMux(a Analyzer, timeout time.Duration, cfg handlerConfig) http.Handler {
	mux := http.NewServeMux()
	handleBoth(mux, "/analyze", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeError(w, http.StatusMethodNotAllowed, errorBody{Code: CodeInvalidRequest, Message: "POST required"})
			return
		}
		ctx := r.Context()
		if timeout > 0 {
			var cancel context.CancelFunc
			ctx, cancel = context.WithTimeout(ctx, timeout)
			defer cancel()
		}
		var req analyzeRequest
		dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, errorBody{Code: CodeInvalidRequest, Message: "bad request body: " + err.Error()})
			return
		}
		single := len(req.Programs) == 0
		reqs := req.Programs
		if single {
			if strings.TrimSpace(req.Source) == "" {
				writeError(w, http.StatusBadRequest, errorBody{Code: CodeInvalidRequest, Message: "no source and no programs in request"})
				return
			}
			reqs = []Request{req.Request}
		}
		resps := a.AnalyzeBatch(ctx, reqs)

		status := http.StatusOK
		var errs []errorBody
		cacheVerdicts := make([]string, len(resps))
		fps := make([]string, len(resps))
		for i, resp := range resps {
			cacheVerdicts[i] = verdict(resp)
			fps[i] = resp.Fingerprint
			if resp.Err != nil {
				errs = append(errs, requestErrorBody(resp.Name, resp.Err))
				if resp.Err.Status > status {
					status = resp.Err.Status
				}
			}
		}
		w.Header().Set(CacheHeader, strings.Join(cacheVerdicts, ","))
		w.Header().Set(FingerprintHeader, strings.Join(fps, ","))
		if single && len(errs) > 0 {
			writeError(w, status, errs[0])
			return
		}
		if single {
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusOK)
			w.Write(resps[0].Body)
			w.Write([]byte("\n"))
			return
		}
		// Batch envelope: the per-program documents verbatim, in request
		// order (null for a failed program) — still deterministic bytes for
		// a deterministic batch. A partial failure keeps the successful
		// results: the clean programs were analyzed and cached, so the body
		// carries them alongside the errors array rather than making the
		// client strip the bad program and pay for the batch again.
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		w.Write([]byte(`{"results":[`))
		for i, resp := range resps {
			if i > 0 {
				w.Write([]byte(","))
			}
			if resp.Err != nil {
				w.Write([]byte("null"))
			} else {
				w.Write(resp.Body)
			}
		}
		w.Write([]byte("]"))
		if len(errs) > 0 {
			if data, err := json.Marshal(errs); err == nil {
				w.Write([]byte(`,"errors":`))
				w.Write(data)
			}
		}
		w.Write([]byte("}\n"))
	})
	handleBoth(mux, "/stats", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, errorBody{Code: CodeInvalidRequest, Message: "GET required"})
			return
		}
		doc, err := cfg.stats(r)
		if err != nil {
			writeError(w, http.StatusBadRequest, errorBody{Code: CodeInvalidRequest, Message: err.Error()})
			return
		}
		writeJSON(w, http.StatusOK, doc)
	})
	handleBoth(mux, "/metrics", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, errorBody{Code: CodeInvalidRequest, Message: "GET required"})
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		cfg.metrics(w)
	})
	handleBoth(mux, "/healthz", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			writeError(w, http.StatusMethodNotAllowed, errorBody{Code: CodeInvalidRequest, Message: "GET required"})
			return
		}
		writeJSON(w, http.StatusOK, struct {
			Status string `json:"status"`
			Epoch  uint64 `json:"epoch"`
		}{"ok", cfg.epoch()})
	})
	return mux
}

func verdict(r Response) string {
	if r.Err != nil {
		return "error"
	}
	if r.Cached {
		return "hit"
	}
	return "miss"
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	data, err := json.Marshal(v)
	if err != nil {
		fmt.Fprintf(w, `{"error":{"code":%q,"message":%q}}`, CodeInternal, err.Error())
		return
	}
	w.Write(data)
	w.Write([]byte("\n"))
}
