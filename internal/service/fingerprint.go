package service

import (
	"fmt"

	"repro/internal/analysis"
	"repro/internal/path"
)

// Canonical 128-bit program fingerprints — the result-cache key. The input
// is the PRINTED CANONICAL AST (parse → check → normalize → print), so any
// two sources that parse to the same structure key identically, however
// they were formatted on the wire; the round-trip property test pins that
// Parse(Print(p)) ≡ p, which makes the print a faithful canonical form.
// The hash reuses the two-lane Mix64 construction of the path-set and
// matrix fingerprints (path.Mix64 chaining per lane with distinct seeds);
// unlike those, it hashes names and bytes — never interned IDs — so it is
// stable across Space epochs and across processes.

// Fp is a comparable 128-bit fingerprint.
type Fp struct{ Hi, Lo uint64 }

// String renders the fingerprint as 32 hex digits.
func (f Fp) String() string { return fmt.Sprintf("%016x%016x", f.Hi, f.Lo) }

const (
	fpSeedHi uint64 = 0x243f6a8885a308d3 // pi
	fpSeedLo uint64 = 0x13198a2e03707344
)

// mix folds one 64-bit word into both lanes.
func (f *Fp) mix(x uint64) {
	f.Hi = path.Mix64(f.Hi ^ x)
	f.Lo = path.Mix64(f.Lo + path.Mix64(x))
}

// mixString folds a length-prefixed string into the fingerprint (the
// prefix keeps concatenations unambiguous).
func (f *Fp) mixString(s string) {
	f.mix(uint64(len(s)))
	var word uint64
	n := 0
	for i := 0; i < len(s); i++ {
		word = word<<8 | uint64(s[i])
		if n++; n == 8 {
			f.mix(word)
			word, n = 0, 0
		}
	}
	if n > 0 {
		f.mix(word)
	}
}

// mixInt folds a signed integer.
func (f *Fp) mixInt(v int) { f.mix(uint64(int64(v))) }

// ProgramFingerprint keys one analysis result: the canonical program text
// plus every option that can change the result. The analysis worker count
// is deliberately excluded — the round-based engine is bit-identical
// across pool sizes, so results are worker-independent by construction.
// MaxWorklist is excluded for the same reason as Workers and Budgets: a
// pure work cap can only fail a run, never change a successful result's
// bytes, so folding it would split the cache on a non-semantic knob
// (fppurity enforces this class statically).
func ProgramFingerprint(canonicalSource string, opts analysis.Options) Fp {
	f := Fp{Hi: fpSeedHi, Lo: fpSeedLo}
	f.mixString("sil-result/v1")
	f.mixString(canonicalSource)
	f.mixInt(len(opts.ExternalRoots))
	for _, r := range opts.ExternalRoots {
		f.mixString(r)
	}
	f.mixInt(opts.MaxContexts)
	f.mixInt(opts.MaxLoopIters)
	f.mixInt(opts.Limits.MaxExact)
	f.mixInt(opts.Limits.MaxSegs)
	f.mixInt(opts.Limits.MaxPaths)
	return f
}
