package service

import (
	"bytes"
	"context"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/progs"
)

// gateStore is a SummaryStore whose Get blocks until released. runAnalysis
// probes the store right after checking a session out, so a blocked Get is
// a deterministic "analysis in progress, session held" rendezvous — the
// concurrency tests below park a request there instead of racing timers
// against real fixpoint work.
type gateStore struct {
	entered chan struct{} // one signal per Get reached
	release chan struct{} // close to let every Get (current and future) through
}

func newGateStore() *gateStore {
	return &gateStore{entered: make(chan struct{}, 64), release: make(chan struct{})}
}

func (g *gateStore) Get(key Fp) (*analysis.ProcSeed, bool) {
	select {
	case g.entered <- struct{}{}:
	default:
	}
	<-g.release
	return nil, false
}

func (g *gateStore) Put(key Fp, bodyFp Fp, seed *analysis.ProcSeed) {}

func (g *gateStore) Stats() SummaryStoreStats { return SummaryStoreStats{} }

// stepCancelCtx reports Canceled after `left` Err checks — the service-side
// twin of the analysis package's countdown context: it lands a cancellation
// at an exact round barrier inside the engine, independent of scheduling.
type stepCancelCtx struct {
	context.Context
	left int
}

func (c *stepCancelCtx) Err() error {
	if c.left <= 0 {
		return context.Canceled
	}
	c.left--
	return nil
}

func waitStat(t *testing.T, what string, pred func() bool) {
	t.Helper()
	for i := 0; i < 2000; i++ {
		if pred() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func treeAddReq() Request {
	return Request{Name: "treeadd", Source: progs.TreeAdd, Roots: []string{"root"}}
}

// TestAdmissionShed429: with a pool of one, no queue, and an analysis
// parked mid-run, the next distinct program is refused admission with 429
// overloaded — and once the first run finishes, the pool serves again.
func TestAdmissionShed429(t *testing.T) {
	gate := newGateStore()
	svc := New(Options{
		Sessions:      1,
		MaxQueue:      -1, // no queue: pool full = shed
		CacheCapacity: -1, // no coalescing: every request meets admission
		SummaryStore:  gate,
	})
	first := make(chan Response, 1)
	go func() { first <- svc.Analyze(context.Background(), treeAddReq()) }()
	<-gate.entered // the session is now held, admission is saturated

	if st := svc.Stats(); st.Busy != 1 || st.QueueCapacity != 0 {
		t.Fatalf("while parked: busy=%d queue_capacity=%d, want 1 and 0", st.Busy, st.QueueCapacity)
	}
	shedResp := svc.Analyze(context.Background(), Request{Name: "pair", Source: progs.CtxPair})
	if shedResp.Err == nil || shedResp.Err.Status != 429 || shedResp.Err.Code != CodeOverloaded {
		t.Fatalf("saturated pool: got %+v, want 429 %s", shedResp.Err, CodeOverloaded)
	}

	close(gate.release)
	if resp := <-first; resp.Err != nil {
		t.Fatalf("parked analysis failed after release: %+v", resp.Err)
	}
	// Pool is reusable: the shed program now succeeds.
	if resp := svc.Analyze(context.Background(), Request{Name: "pair", Source: progs.CtxPair}); resp.Err != nil {
		t.Fatalf("post-shed request failed: %+v", resp.Err)
	}
	st := svc.Stats()
	if st.Shed != 1 || st.ErrorCodes[CodeOverloaded] != 1 {
		t.Errorf("shed accounting: shed=%d codes=%v, want 1 shed counted as %s", st.Shed, st.ErrorCodes, CodeOverloaded)
	}
	if st.Busy != 0 || st.Queued != 0 {
		t.Errorf("gauges must drain: busy=%d queued=%d", st.Busy, st.Queued)
	}
}

// TestQueueExpired: a request admitted into the queue whose context ends
// before a session frees leaves with 499 canceled, counted as expired, and
// returns its admission token (the pool keeps serving).
func TestQueueExpired(t *testing.T) {
	gate := newGateStore()
	svc := New(Options{
		Sessions:      1,
		MaxQueue:      1,
		CacheCapacity: -1,
		SummaryStore:  gate,
	})
	first := make(chan Response, 1)
	go func() { first <- svc.Analyze(context.Background(), treeAddReq()) }()
	<-gate.entered

	ctx, cancel := context.WithCancel(context.Background())
	queued := make(chan Response, 1)
	go func() { queued <- svc.Analyze(ctx, Request{Name: "pair", Source: progs.CtxPair}) }()
	waitStat(t, "queue depth 1", func() bool { return svc.Stats().Queued == 1 })
	cancel()
	resp := <-queued
	if resp.Err == nil || resp.Err.Status != 499 || resp.Err.Code != CodeCanceled {
		t.Fatalf("canceled while queued: got %+v, want 499 %s", resp.Err, CodeCanceled)
	}
	if st := svc.Stats(); st.Expired != 1 || st.Queued != 0 {
		t.Errorf("expired accounting: expired=%d queued=%d, want 1 and 0", st.Expired, st.Queued)
	}

	close(gate.release)
	if resp := <-first; resp.Err != nil {
		t.Fatalf("parked analysis failed after release: %+v", resp.Err)
	}
	// The expired request's token came back: queueing works again.
	if resp := svc.Analyze(context.Background(), Request{Name: "pair", Source: progs.CtxPair}); resp.Err != nil {
		t.Fatalf("post-expiry request failed: %+v", resp.Err)
	}
}

// TestMidFixpointCancelLeavesPoolClean cancels an analysis at a round
// barrier inside the engine and checks the service-level contract: typed
// 499, no partial cache entry, session back in the pool, and the very next
// request (same program) analyzes fresh and succeeds.
func TestMidFixpointCancelLeavesPoolClean(t *testing.T) {
	svc := New(Options{Sessions: 2})
	p := svc.prepare(treeAddReq())
	if p.err != nil {
		t.Fatal(p.err)
	}
	_, rerr := svc.runAnalysis(&stepCancelCtx{Context: context.Background(), left: 1}, p)
	if rerr == nil || rerr.Status != 499 || rerr.Code != CodeCanceled {
		t.Fatalf("mid-fixpoint cancel: got %+v, want 499 %s", rerr, CodeCanceled)
	}
	if _, ok := svc.cacheGet(p.fp); ok {
		t.Error("canceled run must not leave a cache entry")
	}
	if got := len(svc.sessions); got != 2 {
		t.Fatalf("session pool has %d free sessions after cancel, want 2", got)
	}
	if st := svc.Stats(); st.Busy != 0 {
		t.Errorf("busy gauge = %d after cancel, want 0", st.Busy)
	}
	resp := svc.Analyze(context.Background(), treeAddReq())
	if resp.Err != nil || resp.Cached {
		t.Fatalf("fresh rerun after cancel: err=%+v cached=%v, want success, uncached", resp.Err, resp.Cached)
	}
}

// TestBudgetExceededIs503: a one-round budget fails the recursive program
// with 503 budget_exceeded, leaves the pool clean, and does not poison the
// service for programs that fit the budget.
func TestBudgetExceededIs503(t *testing.T) {
	svc := New(Options{
		Sessions: 1,
		Analysis: analysis.Options{Budgets: analysis.Budgets{MaxRounds: 1}},
	})
	resp := svc.Analyze(context.Background(), treeAddReq())
	if resp.Err == nil || resp.Err.Status != 503 || resp.Err.Code != CodeBudgetExceeded {
		t.Fatalf("budgeted recursive program: got %+v, want 503 %s", resp.Err, CodeBudgetExceeded)
	}
	if _, ok := svc.cacheGet(svc.prepare(treeAddReq()).fp); ok {
		t.Error("budget-failed run must not leave a cache entry")
	}
	if st := svc.Stats(); st.ErrorCodes[CodeBudgetExceeded] != 1 || st.Busy != 0 {
		t.Errorf("budget accounting: codes=%v busy=%d", st.ErrorCodes, st.Busy)
	}
	tiny := Request{Name: "tiny", Source: "program tiny\nprocedure main()\n  a: handle\nbegin\n  a := new()\nend;"}
	if resp := svc.Analyze(context.Background(), tiny); resp.Err != nil {
		t.Fatalf("one-round program must fit a one-round budget: %+v", resp.Err)
	}
}

// TestBudgetedServiceByteIdentical: generous budgets, a queue bound, and a
// request timeout must not change one byte of any successful response —
// and must not perturb the fingerprint (budgets are work caps, not inputs).
func TestBudgetedServiceByteIdentical(t *testing.T) {
	plain := New(Options{})
	budgeted := New(Options{
		Analysis:       analysis.Options{Budgets: analysis.Budgets{MaxRounds: 1 << 20, MaxInternedPaths: 1 << 30}},
		MaxQueue:       8,
		RequestTimeout: time.Minute,
	})
	for _, e := range progs.Catalog {
		req := Request{Name: e.Name, Source: e.Source, Roots: e.Roots}
		a := plain.Analyze(context.Background(), req)
		ctx, cancel := context.WithTimeout(context.Background(), time.Minute)
		b := budgeted.Analyze(ctx, req)
		cancel()
		if a.Err != nil || b.Err != nil {
			t.Fatalf("%s: plain err=%+v budgeted err=%+v", e.Name, a.Err, b.Err)
		}
		if a.Fingerprint != b.Fingerprint {
			t.Errorf("%s: budgets changed the fingerprint: %s vs %s", e.Name, a.Fingerprint, b.Fingerprint)
		}
		if !bytes.Equal(a.Body, b.Body) {
			t.Errorf("%s: budgeted body differs from unbudgeted body", e.Name)
		}
	}
}

// TestDetachedFlightSurvivesLeaderDeadline is the coalescing regression
// test: two requests share one flight, the LEADER's deadline expires
// mid-run, and the surviving waiter still gets the full result — because
// the flight executes on a context detached from the caller that started
// it. Before the detachment fix the leader's deadline killed the shared
// work and every waiter got the leader's error.
func TestDetachedFlightSurvivesLeaderDeadline(t *testing.T) {
	gate := newGateStore()
	svc := New(Options{Sessions: 1, SummaryStore: gate})
	ref := New(Options{}).Analyze(context.Background(), treeAddReq())
	if ref.Err != nil {
		t.Fatal(ref.Err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	leader := make(chan Response, 1)
	go func() { leader <- svc.Analyze(ctx, treeAddReq()) }()
	<-gate.entered // flight is running and parked; leader is waiting on it
	lresp := <-leader
	if lresp.Err == nil || lresp.Err.Status != 504 || lresp.Err.Code != CodeDeadlineExceeded {
		t.Fatalf("leader past deadline: got %+v, want 504 %s", lresp.Err, CodeDeadlineExceeded)
	}

	waiter := make(chan Response, 1)
	go func() { waiter <- svc.Analyze(context.Background(), treeAddReq()) }()
	// Give the waiter time to join the in-flight analysis (its prepare is
	// microseconds; the flight stays parked until we release the gate, so
	// this sleep can only err toward the already-passing side).
	time.Sleep(100 * time.Millisecond)
	close(gate.release)
	wresp := <-waiter
	if wresp.Err != nil {
		t.Fatalf("waiter must survive the leader's deadline: %+v", wresp.Err)
	}
	if !bytes.Equal(wresp.Body, ref.Body) {
		t.Error("waiter body differs from a fresh reference analysis")
	}
	st := svc.Stats()
	if st.Analyses != 1 {
		t.Errorf("analyses = %d, want 1 (waiter coalesced, not re-run)", st.Analyses)
	}
	if st.Coalesced != 1 {
		t.Errorf("coalesced = %d, want 1", st.Coalesced)
	}
	// The detached flight also populated the cache for later requesters.
	if resp := svc.Analyze(context.Background(), treeAddReq()); resp.Err != nil || !resp.Cached {
		t.Errorf("post-flight request: err=%+v cached=%v, want cache hit", resp.Err, resp.Cached)
	}
}
