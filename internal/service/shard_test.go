package service

import (
	"context"

	"bytes"
	"fmt"
	"os"
	"reflect"
	"strconv"
	"sync"
	"testing"

	"repro/internal/progs"
)

// shardTestRequests is the equivalence corpus: every catalog program plus
// deterministic random programs (fresh fingerprints the catalog never
// exercises) plus programs that fail to compile (diagnostics must be
// shard-count-invariant too).
func shardTestRequests() []Request {
	reqs := corpusRequests()
	for seed := int64(1); seed <= 12; seed++ {
		reqs = append(reqs, Request{
			Name:   fmt.Sprintf("rnd%d", seed),
			Source: progs.RandomProgram(seed),
		})
	}
	reqs = append(reqs,
		Request{Name: "bad-syntax", Source: "program broken\nprocedure main()\nbegin\n  x := \nend;"},
		Request{Name: "bad-type", Source: "program broken\nprocedure main()\n  x: int\nbegin\n  x := new()\nend;"},
	)
	return reqs
}

// TestShardCountEquivalence is the tentpole acceptance test: the same
// request stream against 1, 2, and 8 shards must produce byte-identical
// rendered bodies and identical diagnostics for every program. Shard count
// is a capacity knob, never a semantics knob. Each stream runs twice so
// cache hits (which must also be byte-identical) are exercised on every
// shard count.
func TestShardCountEquivalence(t *testing.T) {
	reqs := shardTestRequests()
	ref := New(Options{})
	want := make([]Response, len(reqs))
	for i, req := range reqs {
		want[i] = ref.Analyze(context.Background(), req)
	}
	for _, shards := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			r := NewRouter(shards, Options{Sessions: 2})
			for pass := 0; pass < 2; pass++ {
				got := r.AnalyzeBatch(context.Background(), reqs)
				for i, resp := range got {
					w := want[i]
					if (resp.Err == nil) != (w.Err == nil) {
						t.Fatalf("pass %d, %s: error presence diverged: %v vs %v",
							pass, reqs[i].Name, resp.Err, w.Err)
					}
					if resp.Err != nil {
						if resp.Err.Status != w.Err.Status || resp.Err.Msg != w.Err.Msg ||
							!reflect.DeepEqual(resp.Err.Diags, w.Err.Diags) {
							t.Errorf("pass %d, %s: diagnostics diverged across shard counts:\n%+v\nvs\n%+v",
								pass, reqs[i].Name, resp.Err, w.Err)
						}
						continue
					}
					if resp.Fingerprint != w.Fingerprint {
						t.Errorf("pass %d, %s: fingerprint diverged: %s vs %s",
							pass, reqs[i].Name, resp.Fingerprint, w.Fingerprint)
					}
					if !bytes.Equal(resp.Body, w.Body) {
						t.Errorf("pass %d, %s: body diverged across shard counts", pass, reqs[i].Name)
					}
				}
			}
			// Sanity: with several shards the corpus must actually spread —
			// an all-on-one-shard split would make equivalence vacuous.
			if shards > 1 {
				busy := 0
				for i := 0; i < r.NumShards(); i++ {
					if r.Shard(i).Stats().Served > 0 {
						busy++
					}
				}
				if busy < 2 {
					t.Errorf("corpus landed on %d of %d shards; routing is degenerate", busy, shards)
				}
			}
		})
	}
}

// TestShardCountFromEnv is the CI shard-matrix entry point: SIL_SHARDS
// picks the router width (default 1), and the full equivalence corpus must
// match the unsharded reference bytes. The workflow runs the service
// package with SIL_SHARDS=1 and SIL_SHARDS=4 under -race.
func TestShardCountFromEnv(t *testing.T) {
	shards := 1
	if v := os.Getenv("SIL_SHARDS"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			t.Fatalf("bad SIL_SHARDS=%q", v)
		}
		shards = n
	}
	t.Logf("running with %d shard(s)", shards)
	reqs := shardTestRequests()
	ref := New(Options{})
	r := NewRouter(shards, Options{Sessions: 2})
	for _, req := range reqs {
		want := ref.Analyze(context.Background(), req)
		got := r.Analyze(context.Background(), req)
		if (got.Err == nil) != (want.Err == nil) {
			t.Fatalf("%s: error presence diverged", req.Name)
		}
		if got.Err == nil && !bytes.Equal(got.Body, want.Body) {
			t.Errorf("%s: body diverged at %d shards", req.Name, shards)
		}
	}
}

// TestRouterDeterministicRouting pins the consistent-hash contract: two
// routers of the same width route every fingerprint identically (routing
// is a pure function of fingerprint and width, so a restarted server keeps
// the same shard ownership), and the key space spreads over all shards.
func TestRouterDeterministicRouting(t *testing.T) {
	a := NewRouter(8, Options{})
	b := NewRouter(8, Options{})
	hit := make([]int, 8)
	for i := 0; i < 1000; i++ {
		fp := Fp{Hi: uint64(i) * 0x9e3779b97f4a7c15, Lo: uint64(i)}
		sa, sb := a.shardFor(fp), b.shardFor(fp)
		if sa != sb {
			t.Fatalf("fp %v routed to %d and %d on identical routers", fp, sa, sb)
		}
		hit[sa]++
	}
	for i, n := range hit {
		if n == 0 {
			t.Errorf("shard %d owns none of 1000 keys; ring is degenerate", i)
		}
	}
	// The zero fingerprint (compile failures) routes, deterministically.
	if a.shardFor(Fp{}) != b.shardFor(Fp{}) {
		t.Error("zero fingerprint routing is not deterministic")
	}
}

// TestResetOnOneShardDoesNotStallAnother is the isolation stress test:
// shard budgets small enough that epoch resets fire constantly, traffic
// pinned so every shard is resetting while its siblings are mid-analysis.
// Under the old process-wide epoch gate a reset quiesced EVERY in-flight
// analysis; with per-session Spaces the only assertion that can fail is
// correctness — the test completing (no deadlock) with byte-correct bodies
// and nonzero resets on multiple shards is the proof, and -race checks the
// no-locking claim.
func TestResetOnOneShardDoesNotStallAnother(t *testing.T) {
	reqs := corpusRequests()
	ref := New(Options{})
	want := map[string][]byte{}
	for _, req := range reqs {
		resp := ref.Analyze(context.Background(), req)
		if resp.Err != nil {
			t.Fatalf("%s: %v", req.Name, resp.Err)
		}
		want[req.Name] = resp.Body
	}
	r := NewRouter(4, Options{
		Sessions:           2,
		CacheCapacity:      -1, // every request analyzes: maximum reset pressure
		ResetInternedPaths: 40, // far below any program's working set: reset after ~every request
	})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 2*len(reqs); i++ {
				req := reqs[(g+i)%len(reqs)]
				resp := r.Analyze(context.Background(), req)
				if resp.Err != nil {
					t.Errorf("%s: %v", req.Name, resp.Err)
					return
				}
				if !bytes.Equal(resp.Body, want[req.Name]) {
					t.Errorf("%s: response diverged under concurrent resets", req.Name)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	st := r.Stats()
	if st.Total.EpochResets == 0 {
		t.Fatal("load must have forced epoch resets")
	}
	resetting := 0
	for _, ps := range st.PerShard {
		if ps.EpochResets > 0 {
			resetting++
		}
	}
	if resetting < 2 {
		t.Errorf("only %d shard(s) reset; need concurrent resets on multiple shards to prove isolation", resetting)
	}
	t.Logf("total: %s; %d/%d shards reset", st.Total.String(), resetting, st.Shards)
}

// TestRouterStatsAggregation checks the sharded monitoring surface: Total
// sums the per-shard counters and the per-shard snapshots are individually
// consistent.
func TestRouterStatsAggregation(t *testing.T) {
	r := NewRouter(3, Options{})
	reqs := corpusRequests()
	for pass := 0; pass < 2; pass++ {
		for _, req := range reqs {
			if resp := r.Analyze(context.Background(), req); resp.Err != nil {
				t.Fatalf("%s: %v", req.Name, resp.Err)
			}
		}
	}
	st := r.Stats()
	if st.Shards != 3 || len(st.PerShard) != 3 {
		t.Fatalf("stats shape: shards=%d per_shard=%d", st.Shards, len(st.PerShard))
	}
	var served, hits uint64
	for _, ps := range st.PerShard {
		served += ps.Served
		hits += ps.CacheHits
	}
	if st.Total.Served != served || st.Total.CacheHits != hits {
		t.Errorf("totals disagree with per-shard sums: %+v", st.Total)
	}
	if st.Total.Served != uint64(2*len(reqs)) {
		t.Errorf("served = %d, want %d", st.Total.Served, 2*len(reqs))
	}
	// Pass 2 was all warm: every program hit its owning shard's cache.
	if st.Total.CacheHits < uint64(len(reqs)) {
		t.Errorf("cache hits = %d, want >= %d (second pass must be warm)", st.Total.CacheHits, len(reqs))
	}
}
