package heap

import (
	"testing"
	"testing/quick"
)

func TestAllocAndFields(t *testing.T) {
	h := New()
	a := h.Alloc()
	b := h.Alloc()
	if a.IsNil() || b.IsNil() || a == b {
		t.Fatalf("alloc ids: %d %d", a, b)
	}
	if err := h.SetValue(a, 7); err != nil {
		t.Fatal(err)
	}
	if v, _ := h.Value(a); v != 7 {
		t.Errorf("value = %d", v)
	}
	if err := h.SetLink(a, Left, b); err != nil {
		t.Fatal(err)
	}
	if l, _ := h.Link(a, Left); l != b {
		t.Errorf("left = %d", l)
	}
	if r, _ := h.Link(a, Right); !r.IsNil() {
		t.Errorf("right = %d", r)
	}
	if h.Len() != 2 {
		t.Errorf("len = %d", h.Len())
	}
}

func TestNilAndDanglingErrors(t *testing.T) {
	h := New()
	if _, err := h.Value(Nil); err == nil {
		t.Error("nil deref should fail")
	}
	if err := h.SetLink(Nil, Left, Nil); err == nil {
		t.Error("nil update should fail")
	}
	if _, err := h.Link(NodeID(99), Left); err == nil {
		t.Error("dangling should fail")
	}
	a := h.Alloc()
	if err := h.SetLink(a, Left, NodeID(99)); err == nil {
		t.Error("dangling target should fail")
	}
	if err := h.SetLink(a, Left, Nil); err != nil {
		t.Errorf("nil target is fine: %v", err)
	}
}

func TestClassifyTree(t *testing.T) {
	h := New()
	root := h.BuildBalanced(3, 0)
	if got := h.Classify(root); got != Tree {
		t.Errorf("balanced tree classified %v", got)
	}
}

func TestClassifyDAG(t *testing.T) {
	h := New()
	a, b, c := h.Alloc(), h.Alloc(), h.Alloc()
	h.SetLink(a, Left, b)
	h.SetLink(a, Right, c)
	h.SetLink(b, Right, c) // c has two parents
	if got := h.Classify(a); got != DAG {
		t.Errorf("diamond classified %v", got)
	}
}

func TestClassifyCycle(t *testing.T) {
	h := New()
	a, b := h.Alloc(), h.Alloc()
	h.SetLink(a, Left, b)
	h.SetLink(b, Left, a)
	if got := h.Classify(a); got != Cyclic {
		t.Errorf("cycle classified %v", got)
	}
	// Self-loop.
	h2 := New()
	s := h2.Alloc()
	h2.SetLink(s, Right, s)
	if got := h2.Classify(s); got != Cyclic {
		t.Errorf("self-loop classified %v", got)
	}
}

func TestClassifyScope(t *testing.T) {
	// A DAG exists in the heap, but not reachable from the given root.
	h := New()
	root := h.BuildBalanced(2, 0)
	a, b, c := h.Alloc(), h.Alloc(), h.Alloc()
	h.SetLink(a, Left, c)
	h.SetLink(b, Left, c)
	if got := h.Classify(root); got != Tree {
		t.Errorf("unreachable sharing should not affect root: %v", got)
	}
	if got := h.Classify(a, b); got != DAG {
		t.Errorf("shared child: %v", got)
	}
}

func TestReachable(t *testing.T) {
	h := New()
	root := h.BuildBalanced(2, 0) // 7 nodes
	lone := h.Alloc()
	r := h.Reachable(root)
	if len(r) != 7 {
		t.Errorf("reachable = %d, want 7", len(r))
	}
	if r[lone] {
		t.Error("lone node should not be reachable")
	}
	if len(h.Reachable(Nil)) != 0 {
		t.Error("nil root reaches nothing")
	}
}

func TestFingerprintDistinguishesStructure(t *testing.T) {
	h := New()
	a := h.BuildBalanced(1, 0)
	b := h.BuildBalanced(1, 0)
	if h.Fingerprint(a) != h.Fingerprint(b) {
		t.Error("identical trees should fingerprint equal")
	}
	h.SetValue(b, 99)
	if h.Fingerprint(a) == h.Fingerprint(b) {
		t.Error("value change should alter fingerprint")
	}
	// Sharing is visible.
	h2 := New()
	p, q := h2.Alloc(), h2.Alloc()
	h2.SetLink(p, Left, q)
	h2.SetLink(p, Right, q)
	h3 := New()
	p3, q3, q4 := h3.Alloc(), h3.Alloc(), h3.Alloc()
	h3.SetLink(p3, Left, q3)
	h3.SetLink(p3, Right, q4)
	if h2.Fingerprint(p) == h3.Fingerprint(p3) {
		t.Error("shared vs copied children must differ")
	}
	// Cycles terminate.
	hc := New()
	c := hc.Alloc()
	hc.SetLink(c, Left, c)
	_ = hc.Fingerprint(c)
}

func TestBuildBalancedShape(t *testing.T) {
	h := New()
	root := h.BuildBalanced(4, 0)
	if got := len(h.Reachable(root)); got != 31 {
		t.Errorf("depth-4 tree has %d nodes, want 31", got)
	}
	if h.Classify(root) != Tree {
		t.Error("built tree should classify TREE")
	}
}

func TestBuildList(t *testing.T) {
	h := New()
	head := h.BuildList(5)
	n := 0
	for id := head; !id.IsNil(); {
		v, err := h.Value(id)
		if err != nil {
			t.Fatal(err)
		}
		if v != int64(n) {
			t.Errorf("list value %d at %d", v, n)
		}
		n++
		id, _ = h.Link(id, Left)
	}
	if n != 5 {
		t.Errorf("list length %d", n)
	}
	if h.Classify(head) != Tree {
		t.Error("list is a (degenerate) tree")
	}
}

// TestClassifyRandomSound builds random link structures and cross-checks
// Classify against an independent brute-force classification.
func TestClassifyRandomSound(t *testing.T) {
	f := func(seed int64) bool {
		h := New()
		const n = 8
		ids := make([]NodeID, n)
		for i := range ids {
			ids[i] = h.Alloc()
		}
		s := seed
		next := func(mod int) int {
			s = s*6364136223846793005 + 1442695040888963407
			v := int(uint64(s) % uint64(mod))
			return v
		}
		for _, id := range ids {
			if next(3) > 0 {
				h.SetLink(id, Left, ids[next(n)])
			}
			if next(3) > 0 {
				h.SetLink(id, Right, ids[next(n)])
			}
		}
		got := h.Classify(ids...)
		want := bruteClassify(h, ids)
		if got != want {
			t.Logf("seed %d: got %v want %v", seed, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// bruteClassify recomputes the shape by explicit indegree counting over the
// reachable region and DFS cycle search along every path (exponential but
// tiny inputs).
func bruteClassify(h *Heap, roots []NodeID) Shape {
	seen := h.Reachable(roots...)
	// Cycle: DFS from each node with an on-path set.
	var cyc func(id NodeID, onPath map[NodeID]bool) bool
	cyc = func(id NodeID, onPath map[NodeID]bool) bool {
		if id.IsNil() {
			return false
		}
		if onPath[id] {
			return true
		}
		onPath[id] = true
		defer delete(onPath, id)
		l, _ := h.Link(id, Left)
		r, _ := h.Link(id, Right)
		return cyc(l, onPath) || cyc(r, onPath)
	}
	for id := range seen {
		if cyc(id, map[NodeID]bool{}) {
			return Cyclic
		}
	}
	indeg := map[NodeID]int{}
	for id := range seen {
		l, _ := h.Link(id, Left)
		r, _ := h.Link(id, Right)
		if !l.IsNil() {
			indeg[l]++
		}
		if !r.IsNil() {
			indeg[r]++
		}
	}
	for _, d := range indeg {
		if d > 1 {
			return DAG
		}
	}
	return Tree
}

func TestShapeString(t *testing.T) {
	if Tree.String() != "TREE" || DAG.String() != "DAG" || Cyclic.String() != "CYCLE" {
		t.Error("shape strings")
	}
	if Left.String() != "left" || Right.String() != "right" {
		t.Error("field strings")
	}
}
