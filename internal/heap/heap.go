// Package heap models the SIL store: a growable pool of binary nodes, each
// with an integer value and left/right links (§3.1's "basic building
// blocks"). It also provides the concrete structural classification
// (TREE / DAG / CYCLIC) that serves as the ground truth against which the
// static structure verification is tested.
package heap

import (
	"fmt"
	"strings"
)

// NodeID identifies a node; 0 is nil.
type NodeID int32

// Nil is the null handle value.
const Nil NodeID = 0

// IsNil reports whether the id is the null handle.
func (id NodeID) IsNil() bool { return id == Nil }

// Field selects a link of a node.
type Field uint8

// Link fields.
const (
	Left Field = iota
	Right
)

func (f Field) String() string {
	if f == Left {
		return "left"
	}
	return "right"
}

type node struct {
	value       int64
	left, right NodeID
	indeg       int32
}

// Heap is a store of nodes. The zero value is not usable; call New.
type Heap struct {
	nodes  []node // nodes[0] is a sentinel for Nil
	shared int    // number of nodes with indegree > 1
}

// New returns an empty heap.
func New() *Heap { return &Heap{nodes: make([]node, 1)} }

// AnyShared reports whether any node currently has more than one parent —
// the exact concrete counterpart of the analysis' possible-DAG verdict.
func (h *Heap) AnyShared() bool { return h.shared > 0 }

// Indegree returns the number of parents of id.
func (h *Heap) Indegree(id NodeID) int32 {
	if id.IsNil() || int(id) >= len(h.nodes) {
		return 0
	}
	return h.nodes[id].indeg
}

func (h *Heap) bumpIndeg(id NodeID, delta int32) {
	if id.IsNil() {
		return
	}
	before := h.nodes[id].indeg
	h.nodes[id].indeg = before + delta
	after := h.nodes[id].indeg
	if before <= 1 && after > 1 {
		h.shared++
	}
	if before > 1 && after <= 1 {
		h.shared--
	}
}

// Alloc creates a fresh node with zero value and nil links.
func (h *Heap) Alloc() NodeID {
	h.nodes = append(h.nodes, node{})
	return NodeID(len(h.nodes) - 1)
}

// Len returns the number of allocated nodes.
func (h *Heap) Len() int { return len(h.nodes) - 1 }

func (h *Heap) check(id NodeID) error {
	if id.IsNil() {
		return fmt.Errorf("nil handle dereference")
	}
	if int(id) >= len(h.nodes) || id < 0 {
		return fmt.Errorf("dangling handle %d", id)
	}
	return nil
}

// Value reads the value field.
func (h *Heap) Value(id NodeID) (int64, error) {
	if err := h.check(id); err != nil {
		return 0, err
	}
	return h.nodes[id].value, nil
}

// SetValue writes the value field.
func (h *Heap) SetValue(id NodeID, v int64) error {
	if err := h.check(id); err != nil {
		return err
	}
	h.nodes[id].value = v
	return nil
}

// Link reads the left or right field.
func (h *Heap) Link(id NodeID, f Field) (NodeID, error) {
	if err := h.check(id); err != nil {
		return Nil, err
	}
	if f == Left {
		return h.nodes[id].left, nil
	}
	return h.nodes[id].right, nil
}

// SetLink writes the left or right field.
func (h *Heap) SetLink(id NodeID, f Field, to NodeID) error {
	if err := h.check(id); err != nil {
		return err
	}
	if !to.IsNil() {
		if err := h.check(to); err != nil {
			return err
		}
	}
	if f == Left {
		h.bumpIndeg(h.nodes[id].left, -1)
		h.nodes[id].left = to
	} else {
		h.bumpIndeg(h.nodes[id].right, -1)
		h.nodes[id].right = to
	}
	h.bumpIndeg(to, 1)
	return nil
}

// HasCycleFrom reports whether a directed cycle is reachable from roots.
func (h *Heap) HasCycleFrom(roots ...NodeID) bool {
	return h.hasCycle(h.Reachable(roots...))
}

// Shape is the concrete structural classification of (a region of) the
// heap, mirroring §3.1's definitions: TREE — every node has at most one
// parent; DAG — some node has more than one parent but there is no directed
// cycle; CYCLIC — a directed cycle exists.
type Shape uint8

// Concrete shapes.
const (
	Tree Shape = iota
	DAG
	Cyclic
)

func (s Shape) String() string {
	switch s {
	case Tree:
		return "TREE"
	case DAG:
		return "DAG"
	case Cyclic:
		return "CYCLE"
	}
	return "?"
}

// Classify computes the concrete shape of the subgraph reachable from the
// given roots.
func (h *Heap) Classify(roots ...NodeID) Shape {
	indeg := map[NodeID]int{}
	seen := map[NodeID]bool{}
	var stack []NodeID
	push := func(id NodeID) {
		if !id.IsNil() && !seen[id] {
			seen[id] = true
			stack = append(stack, id)
		}
	}
	for _, r := range roots {
		push(r)
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, next := range []NodeID{h.nodes[id].left, h.nodes[id].right} {
			if next.IsNil() {
				continue
			}
			indeg[next]++
			push(next)
		}
	}
	if h.hasCycle(seen) {
		return Cyclic
	}
	for _, d := range indeg {
		if d > 1 {
			return DAG
		}
	}
	return Tree
}

// hasCycle runs an iterative three-color DFS over the given node set.
func (h *Heap) hasCycle(nodes map[NodeID]bool) bool {
	const (
		white = 0
		gray  = 1
		black = 2
	)
	color := map[NodeID]int{}
	type frame struct {
		id   NodeID
		next int // 0 = left pending, 1 = right pending, 2 = done
	}
	for start := range nodes {
		if color[start] != white {
			continue
		}
		stack := []frame{{id: start}}
		color[start] = gray
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			if f.next == 2 {
				color[f.id] = black
				stack = stack[:len(stack)-1]
				continue
			}
			var child NodeID
			if f.next == 0 {
				child = h.nodes[f.id].left
			} else {
				child = h.nodes[f.id].right
			}
			f.next++
			if child.IsNil() {
				continue
			}
			switch color[child] {
			case gray:
				return true
			case white:
				color[child] = gray
				stack = append(stack, frame{id: child})
			}
		}
	}
	return false
}

// Reachable returns the set of nodes reachable from the roots.
func (h *Heap) Reachable(roots ...NodeID) map[NodeID]bool {
	seen := map[NodeID]bool{}
	var stack []NodeID
	push := func(id NodeID) {
		if !id.IsNil() && !seen[id] {
			seen[id] = true
			stack = append(stack, id)
		}
	}
	for _, r := range roots {
		push(r)
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		push(h.nodes[id].left)
		push(h.nodes[id].right)
	}
	return seen
}

// Fingerprint renders the subgraph reachable from root as a canonical
// string (structure and values), used to compare sequential and parallel
// execution results. Shared substructure and cycles are rendered through
// first-visit labels, so the fingerprint is well-defined for all shapes.
func (h *Heap) Fingerprint(root NodeID) string {
	var b strings.Builder
	labels := map[NodeID]int{}
	var walk func(id NodeID)
	walk = func(id NodeID) {
		if id.IsNil() {
			b.WriteString("_")
			return
		}
		if l, ok := labels[id]; ok {
			fmt.Fprintf(&b, "^%d", l)
			return
		}
		labels[id] = len(labels)
		fmt.Fprintf(&b, "(%d ", h.nodes[id].value)
		walk(h.nodes[id].left)
		b.WriteString(" ")
		walk(h.nodes[id].right)
		b.WriteString(")")
	}
	// Iterative wrapper is unnecessary: fingerprints are used on test-scale
	// structures; document the recursion bound at the call sites.
	walk(root)
	return b.String()
}

// BuildBalanced builds a complete binary tree of the given depth (depth 0
// is a single node), assigning values by preorder index offset. It is the
// standard workload builder used by tests and benchmarks.
func (h *Heap) BuildBalanced(depth int, base int64) NodeID {
	id := h.Alloc()
	h.nodes[id].value = base
	if depth > 0 {
		l := h.BuildBalanced(depth-1, base*2+1)
		r := h.BuildBalanced(depth-1, base*2+2)
		_ = h.SetLink(id, Left, l)
		_ = h.SetLink(id, Right, r)
	}
	return id
}

// BuildList builds a left-spine list of n nodes with the given values
// (value i at position i), returning the head.
func (h *Heap) BuildList(n int) NodeID {
	var head NodeID = Nil
	for i := n - 1; i >= 0; i-- {
		id := h.Alloc()
		h.nodes[id].value = int64(i)
		if !head.IsNil() {
			_ = h.SetLink(id, Left, head)
		}
		head = id
	}
	return head
}
