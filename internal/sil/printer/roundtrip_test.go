package printer_test

// The printer/parser round-trip property: Parse(Print(p)) is structurally
// equal to p (positions aside) over the corpus, normalized variants, and a
// batch of random programs. The serving layer's program fingerprint hashes
// the canonical print of the normalized AST, so this property is what
// makes cache keys trustworthy: two structurally equal programs — however
// formatted on the wire — print identically.

import (
	"fmt"
	"testing"

	"repro/internal/progs"
	"repro/internal/sil/ast"
	"repro/internal/sil/parser"
	"repro/internal/sil/printer"
	"repro/internal/sil/types"
)

// roundTrip asserts Parse(Print(p)) == p structurally, and that printing
// is idempotent (the reparse prints byte-identically).
func roundTrip(t *testing.T, name string, p *ast.Program) {
	t.Helper()
	src := printer.Print(p)
	q, err := parser.Parse(src)
	if err != nil {
		t.Errorf("%s: reparse of printed program failed: %v\nprinted:\n%s", name, err, src)
		return
	}
	if !ast.EqualPrograms(p, q) {
		t.Errorf("%s: Parse(Print(p)) is not structurally equal to p\nprinted:\n%s", name, src)
		return
	}
	if again := printer.Print(q); again != src {
		t.Errorf("%s: printing is not idempotent\n--- first\n%s\n--- second\n%s", name, src, again)
	}
}

func TestRoundTripCorpus(t *testing.T) {
	for _, e := range progs.Catalog {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			raw, err := parser.Parse(e.Source)
			if err != nil {
				t.Fatal(err)
			}
			roundTrip(t, e.Name+"/raw", raw)
			norm, err := progs.Compile(e.Source)
			if err != nil {
				t.Fatal(err)
			}
			roundTrip(t, e.Name+"/normalized", norm)
		})
	}
}

func TestRoundTripRandomPrograms(t *testing.T) {
	for seed := int64(1); seed <= 200; seed++ {
		src := progs.RandomProgram(seed)
		name := fmt.Sprintf("random-%d", seed)
		raw, err := parser.Parse(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		roundTrip(t, name+"/raw", raw)
		norm, err := progs.Compile(src)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		roundTrip(t, name+"/normalized", norm)
	}
}

// TestRoundTripParallelized runs the corpus through the full pipeline the
// paper's figures use — analyze, then parallelize — and round-trips the
// rewritten program, which is where "||" statements actually appear.
// (Kept in the printer package via the text interface only: the printed
// parallel program must reparse to the same structure.)
func TestRoundTripParallelizedFigure8(t *testing.T) {
	// Figure 8's layout, with both inline and block parallel branches.
	src := `
program fig8
procedure main()
  a, b: handle; x, y: int
begin
  a := new() || b := new();
  x := 1 || y := 2;
  begin
    a.value := x
  end
  ||
  begin
    b.value := y
  end
end;
`
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	roundTrip(t, "fig8", p)
}

// TestRoundTripDanglingElse pins the printer's disambiguation of an AST
// the parser itself can never produce: an if whose then-branch ends in an
// open if, with an else of its own. The printer must close the then-branch
// so the else re-attaches to the OUTER if; without the guard, the reparse
// silently rebinds the else to the inner if — a structural (and semantic)
// divergence.
func TestRoundTripDanglingElse(t *testing.T) {
	inner := &ast.If{
		Cond: &ast.Binary{Op: ast.Neq, X: &ast.VarRef{Name: "a"}, Y: &ast.NilLit{}},
		Then: &ast.Assign{Lhs: &ast.VarLV{Name: "x"}, Rhs: &ast.IntLit{Val: 1}},
	}
	outer := &ast.If{
		Cond: &ast.Binary{Op: ast.Neq, X: &ast.VarRef{Name: "b"}, Y: &ast.NilLit{}},
		Then: inner,
		Else: &ast.Assign{Lhs: &ast.VarLV{Name: "x"}, Rhs: &ast.IntLit{Val: 2}},
	}
	p := &ast.Program{
		Name: "dangling",
		Decls: []*ast.ProcDecl{{
			Name: "main",
			Locals: []*ast.VarDecl{
				{Name: "a", Type: ast.HandleT},
				{Name: "b", Type: ast.HandleT},
				{Name: "x", Type: ast.IntT},
			},
			Body: &ast.Block{Stmts: []ast.Stmt{outer}},
		}},
	}
	src := printer.Print(p)
	q, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("reparse failed: %v\nprinted:\n%s", err, src)
	}
	got, ok := q.Decls[0].Body.Stmts[0].(*ast.If)
	if !ok {
		t.Fatalf("reparse lost the outer if\nprinted:\n%s", src)
	}
	if got.Else == nil {
		t.Fatalf("else rebound to the inner if on reparse\nprinted:\n%s", src)
	}
	if gotInner, ok := firstStmt(got.Then).(*ast.If); !ok || gotInner.Else != nil {
		t.Fatalf("inner if gained an else (or vanished) on reparse\nprinted:\n%s", src)
	}
	// The disambiguated print must itself round-trip exactly.
	roundTrip(t, "dangling/printed", q)
}

// firstStmt unwraps the disambiguation block the printer may add.
func firstStmt(s ast.Stmt) ast.Stmt {
	if b, ok := s.(*ast.Block); ok && len(b.Stmts) == 1 {
		return b.Stmts[0]
	}
	return s
}

// TestRoundTripIfAsParBranch: the parser CAN produce an if (or while) as a
// "||" branch — "x := 1 || if x = 1 then y := 2" — and printing such a
// branch bare would let the reparse swallow a following "||" into the
// branch's own body. The printer closes those branches with a block;
// equality sees through the single-statement wrapper (ast.unwrapBlock),
// so the round-trip property holds on this shape too.
func TestRoundTripIfAsParBranch(t *testing.T) {
	src := `
program parbranch
procedure main()
  x, y, z: int
begin
  x := 1 || if x = 1 then y := 2 || z := 3;
  while x > 0 do x := x - 1 || y := 0
end;
`
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	// Sanity: the second branch really is a bare if (whose then-branch in
	// turn swallowed the trailing "|| z := 3" — the very ambiguity the
	// printer's block-wrapping has to respect on the way back out).
	par := p.Decls[0].Body.Stmts[0].(*ast.Par)
	if len(par.Branches) != 2 {
		t.Fatalf("first statement should have 2 branches, got %d", len(par.Branches))
	}
	innerIf, ok := par.Branches[1].(*ast.If)
	if !ok {
		t.Fatalf("branch 2 should be an if, got %T", par.Branches[1])
	}
	if _, ok := innerIf.Then.(*ast.Par); !ok {
		t.Fatalf("the if's then-branch should be a par, got %T", innerIf.Then)
	}
	roundTrip(t, "parbranch", p)
}

// TestRoundTripNestedComparison pins the non-associative comparison fix:
// (x = y) = z is only constructible programmatically, but the printer must
// still parenthesize the left operand — without parens the reparse fails.
func TestRoundTripNestedComparison(t *testing.T) {
	e := &ast.Binary{
		Op: ast.Eq,
		X:  &ast.Binary{Op: ast.Eq, X: &ast.VarRef{Name: "x"}, Y: &ast.VarRef{Name: "y"}},
		Y:  &ast.VarRef{Name: "z"},
	}
	s := printer.PrintExpr(e)
	if s != "(x = y) = z" {
		t.Errorf("nested comparison printed as %q, want %q", s, "(x = y) = z")
	}
}

// TestNormalizePreservesRoundTrip: the normalized corpus, printed and
// recompiled, must normalize to a structurally equal program — printing is
// a faithful wire format for the analysis pipeline, which is exactly how
// the serving layer uses it (canonical print of the normalized AST as the
// cache key).
func TestNormalizePreservesRoundTrip(t *testing.T) {
	for _, e := range progs.Catalog {
		norm, err := progs.Compile(e.Source)
		if err != nil {
			t.Fatal(err)
		}
		reparsed, err := parser.Parse(printer.Print(norm))
		if err != nil {
			t.Fatalf("%s: %v", e.Name, err)
		}
		if err := types.Check(reparsed); err != nil {
			t.Fatalf("%s: printed normalized program fails the checker: %v", e.Name, err)
		}
		types.Normalize(reparsed)
		if !ast.EqualPrograms(norm, reparsed) {
			t.Errorf("%s: normalize(parse(print(normalized))) diverged", e.Name)
		}
	}
}
