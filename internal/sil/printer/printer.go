// Package printer renders SIL ASTs back to source text in the layout of
// the paper's figures, including the "||" parallel statements of Figure 8.
// Parse(Print(prog)) reproduces the AST, which the round-trip property
// tests rely on.
package printer

import (
	"fmt"
	"strings"

	"repro/internal/sil/ast"
)

// Print renders a whole program.
func Print(p *ast.Program) string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s\n\n", p.Name)
	for i, d := range p.Decls {
		if i > 0 {
			b.WriteString("\n")
		}
		printDecl(&b, d)
	}
	return b.String()
}

// PrintDecl renders a single procedure declaration. The rendering is the
// same canonical text Print produces for the declaration inside a whole
// program, so it serves as the content basis for per-procedure body
// fingerprints: two declarations print identically iff their normalized
// ASTs are identical.
func PrintDecl(d *ast.ProcDecl) string {
	var b strings.Builder
	printDecl(&b, d)
	return b.String()
}

// PrintStmt renders a single statement at the given indent level.
func PrintStmt(s ast.Stmt, indent int) string {
	var b strings.Builder
	printStmt(&b, s, indent)
	return b.String()
}

// PrintExpr renders an expression.
func PrintExpr(e ast.Expr) string { return exprString(e, 0) }

func ind(b *strings.Builder, n int) {
	for i := 0; i < n; i++ {
		b.WriteString("  ")
	}
}

func varGroups(vars []*ast.VarDecl) string {
	if len(vars) == 0 {
		return ""
	}
	var parts []string
	i := 0
	for i < len(vars) {
		j := i
		for j < len(vars) && vars[j].Type == vars[i].Type {
			j++
		}
		names := make([]string, 0, j-i)
		for _, v := range vars[i:j] {
			names = append(names, v.Name)
		}
		parts = append(parts, fmt.Sprintf("%s: %s", strings.Join(names, ", "), vars[i].Type))
		i = j
	}
	return strings.Join(parts, "; ")
}

func printDecl(b *strings.Builder, d *ast.ProcDecl) {
	kw := "procedure"
	if d.IsFunction() {
		kw = "function"
	}
	fmt.Fprintf(b, "%s %s(%s)", kw, d.Name, varGroups(d.Params))
	if d.IsFunction() {
		fmt.Fprintf(b, ": %s", d.Result)
	}
	b.WriteString("\n")
	if len(d.Locals) > 0 {
		ind(b, 1)
		fmt.Fprintf(b, "%s\n", varGroups(d.Locals))
	}
	printStmt(b, d.Body, 0)
	if d.IsFunction() {
		fmt.Fprintf(b, "\nreturn (%s)", d.ReturnVar)
	}
	b.WriteString(";\n")
}

func printStmt(b *strings.Builder, s ast.Stmt, indent int) {
	switch s := s.(type) {
	case *ast.Block:
		ind(b, indent)
		b.WriteString("begin\n")
		for i, st := range s.Stmts {
			printStmt(b, st, indent+1)
			if i < len(s.Stmts)-1 {
				b.WriteString(";")
			}
			b.WriteString("\n")
		}
		ind(b, indent)
		b.WriteString("end")
	case *ast.Assign:
		ind(b, indent)
		fmt.Fprintf(b, "%s := %s", lvalueString(s.Lhs), exprString(s.Rhs, 0))
	case *ast.If:
		ind(b, indent)
		fmt.Fprintf(b, "if %s then\n", exprString(s.Cond, 0))
		then := s.Then
		if s.Else != nil && endsInOpenIf(then) {
			// Dangling else: a then-branch whose rightmost statement is an
			// if without an else would capture OUR else on reparse; close it
			// with an explicit block.
			then = &ast.Block{Stmts: []ast.Stmt{then}}
		}
		printStmt(b, then, indent+1)
		if s.Else != nil {
			b.WriteString("\n")
			ind(b, indent)
			b.WriteString("else\n")
			printStmt(b, s.Else, indent+1)
		}
	case *ast.While:
		ind(b, indent)
		fmt.Fprintf(b, "while %s do\n", exprString(s.Cond, 0))
		printStmt(b, s.Body, indent+1)
	case *ast.CallStmt:
		ind(b, indent)
		fmt.Fprintf(b, "%s(%s)", s.Name, argsString(s.Args))
	case *ast.Par:
		// Parallel branches print inline when simple, one statement per
		// "||" separator, matching Figure 8's layout.
		parts := make([]string, len(s.Branches))
		allSimple := true
		for i, br := range s.Branches {
			switch br.(type) {
			case *ast.Assign, *ast.CallStmt:
				var sb strings.Builder
				printStmt(&sb, br, 0)
				parts[i] = sb.String()
			default:
				allSimple = false
			}
		}
		if allSimple {
			ind(b, indent)
			b.WriteString(strings.Join(parts, " || "))
			return
		}
		for i, br := range s.Branches {
			if i > 0 {
				b.WriteString("\n")
				ind(b, indent)
				b.WriteString("||\n")
			}
			switch br.(type) {
			case *ast.Assign, *ast.CallStmt, *ast.Block:
				// Self-delimiting: safe to print bare.
			default:
				// An if/while branch would swallow a following "||" into its
				// own body on reparse, and a nested Par would flatten; close
				// such branches with an explicit block.
				br = &ast.Block{Stmts: []ast.Stmt{br}}
			}
			printStmt(b, br, indent)
		}
	default:
		ind(b, indent)
		fmt.Fprintf(b, "{ unknown statement %T }", s)
	}
}

func lvalueString(l ast.LValue) string {
	switch l := l.(type) {
	case *ast.VarLV:
		return l.Name
	case *ast.FieldLV:
		var b strings.Builder
		b.WriteString(l.Base)
		for _, f := range l.Chain {
			fmt.Fprintf(&b, ".%s", f)
		}
		fmt.Fprintf(&b, ".%s", l.Field)
		return b.String()
	}
	return "?"
}

func argsString(args []ast.Expr) string {
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = exprString(a, 0)
	}
	return strings.Join(parts, ", ")
}

// Operator precedence levels for minimal parenthesization, matching the
// parser: or(1) < and(2) < not(3) < comparison(4) < additive(5) <
// multiplicative(6) < unary(7).
func opPrec(op ast.Op) int {
	switch op {
	case ast.Or:
		return 1
	case ast.And:
		return 2
	case ast.Not:
		return 3
	case ast.Eq, ast.Neq, ast.Lt, ast.Gt, ast.Leq, ast.Geq:
		return 4
	case ast.Add, ast.Sub:
		return 5
	case ast.Mul, ast.Div:
		return 6
	case ast.Neg:
		return 7
	}
	return 8
}

func exprString(e ast.Expr, outer int) string {
	switch e := e.(type) {
	case *ast.IntLit:
		if e.Val < 0 {
			return fmt.Sprintf("(%d)", e.Val)
		}
		return fmt.Sprintf("%d", e.Val)
	case *ast.VarRef:
		return e.Name
	case *ast.NilLit:
		return "nil"
	case *ast.NewExpr:
		return "new()"
	case *ast.FieldRef:
		var b strings.Builder
		b.WriteString(e.Base)
		for _, f := range e.Chain {
			fmt.Fprintf(&b, ".%s", f)
		}
		fmt.Fprintf(&b, ".%s", e.Field)
		return b.String()
	case *ast.CallExpr:
		return fmt.Sprintf("%s(%s)", e.Name, argsString(e.Args))
	case *ast.Unary:
		p := opPrec(e.Op)
		inner := exprString(e.X, p)
		var s string
		if e.Op == ast.Not {
			s = "not " + inner
		} else {
			s = "-" + inner
		}
		if p < outer {
			return "(" + s + ")"
		}
		return s
	case *ast.Binary:
		p := opPrec(e.Op)
		// Left-associative: right operand needs parens at equal precedence.
		// Comparisons are NON-associative (the parser consumes at most one),
		// so a nested comparison needs parens on the left side too.
		xp := p
		if isComparison(e.Op) {
			xp = p + 1
		}
		s := fmt.Sprintf("%s %s %s", exprString(e.X, xp), e.Op, exprString(e.Y, p+1))
		if p < outer {
			return "(" + s + ")"
		}
		return s
	}
	return "?"
}

// isComparison reports whether op is one of the non-associative comparison
// operators.
func isComparison(op ast.Op) bool {
	switch op {
	case ast.Eq, ast.Neq, ast.Lt, ast.Gt, ast.Leq, ast.Geq:
		return true
	}
	return false
}

// endsInOpenIf reports whether the rightmost statement reachable from s —
// the one a following "else" token would attach to on reparse — is an if
// without an else. Blocks close the spine (their "end" stops the parser's
// else-capture); Par branches end the spine at their last branch.
func endsInOpenIf(s ast.Stmt) bool {
	switch s := s.(type) {
	case *ast.If:
		if s.Else == nil {
			return true
		}
		return endsInOpenIf(s.Else)
	case *ast.While:
		return endsInOpenIf(s.Body)
	case *ast.Par:
		if len(s.Branches) == 0 {
			return false
		}
		return endsInOpenIf(s.Branches[len(s.Branches)-1])
	}
	return false
}
