package printer

import (
	"strings"
	"testing"

	"repro/internal/sil/ast"
	"repro/internal/sil/parser"
)

func parse(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return prog
}

func TestVarGroupsMergeByType(t *testing.T) {
	prog := parse(t, `
program p
procedure main()
  a, b: handle; x: int; c: handle
begin
  a := b
end;
`)
	text := Print(prog)
	if !strings.Contains(text, "a, b: handle; x: int; c: handle") {
		t.Errorf("locals layout:\n%s", text)
	}
}

func TestNegativeLiteralsParenthesized(t *testing.T) {
	stmts, err := parser.ParseStmts("x := 0 - 1")
	if err != nil {
		t.Fatal(err)
	}
	_ = stmts
	// A negative IntLit (as the analyzer may build) prints as (-1) so it
	// re-parses.
	e := &ast.IntLit{Val: -1}
	if got := PrintExpr(e); got != "(-1)" {
		t.Errorf("negative literal prints %q", got)
	}
}

func TestPrecedencePreservation(t *testing.T) {
	cases := []string{
		"x := 1 + 2 * 3",
		"x := (1 + 2) * 3",
		"x := 1 - (2 - 3)",
		"x := -x + 1",
		"x := 8 / 4 / 2",
	}
	for _, src := range cases {
		stmts, err := parser.ParseStmts(src)
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		printed := "x := " + PrintExpr(stmts[0].(*ast.Assign).Rhs)
		stmts2, err := parser.ParseStmts(printed)
		if err != nil {
			t.Fatalf("reparse %q: %v", printed, err)
		}
		again := "x := " + PrintExpr(stmts2[0].(*ast.Assign).Rhs)
		if printed != again {
			t.Errorf("%s: print unstable %q vs %q", src, printed, again)
		}
	}
}

func TestBooleanPrinting(t *testing.T) {
	stmts, err := parser.ParseStmts("if not (a = nil) and (x < 1 or y > 2) then x := 1")
	if err != nil {
		t.Fatal(err)
	}
	got := PrintStmt(stmts[0], 0)
	reparsed, err := parser.ParseStmts(got)
	if err != nil {
		t.Fatalf("reparse %q: %v", got, err)
	}
	if PrintStmt(reparsed[0], 0) != got {
		t.Errorf("boolean print unstable: %q", got)
	}
}

func TestParMixedBranchesPrintMultiline(t *testing.T) {
	par := &ast.Par{Branches: []ast.Stmt{
		&ast.Assign{Lhs: &ast.VarLV{Name: "x"}, Rhs: &ast.IntLit{Val: 1}},
		&ast.Block{Stmts: []ast.Stmt{
			&ast.Assign{Lhs: &ast.VarLV{Name: "y"}, Rhs: &ast.IntLit{Val: 2}},
		}},
	}}
	got := PrintStmt(par, 0)
	if !strings.Contains(got, "||") || !strings.Contains(got, "begin") {
		t.Errorf("mixed par layout:\n%s", got)
	}
}

func TestFunctionPrinting(t *testing.T) {
	prog := parse(t, `
program p
function f(n: int): int
  r: int
begin
  r := n
end
return (r);
procedure main()
  x: int
begin
  x := f(1)
end;
`)
	text := Print(prog)
	if !strings.Contains(text, "function f(n: int): int") {
		t.Errorf("function header:\n%s", text)
	}
	if !strings.Contains(text, "return (r)") {
		t.Errorf("return clause:\n%s", text)
	}
	if _, err := parser.Parse(text); err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
}

func TestChainedSelectorsPrint(t *testing.T) {
	stmts, err := parser.ParseStmts("a.left.right := b.right.left.value")
	if err != nil {
		t.Fatal(err)
	}
	got := PrintStmt(stmts[0], 0)
	if got != "a.left.right := b.right.left.value" {
		t.Errorf("chain print = %q", got)
	}
}
