package ast

// Structural equality over SIL ASTs, ignoring token positions. This is the
// relation the printer/parser round-trip property is stated in — and, by
// extension, what makes the canonical-print program fingerprint of the
// serving layer trustworthy: Parse(Print(p)) must be EqualPrograms to p,
// so equal programs (however formatted on the wire) print identically and
// hash to the same fingerprint.

// EqualPrograms reports position-independent structural equality of two
// programs.
func EqualPrograms(a, b *Program) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Name != b.Name || len(a.Decls) != len(b.Decls) {
		return false
	}
	for i := range a.Decls {
		if !EqualDecls(a.Decls[i], b.Decls[i]) {
			return false
		}
	}
	return true
}

// EqualDecls compares two procedure/function declarations.
func EqualDecls(a, b *ProcDecl) bool {
	if a == nil || b == nil {
		return a == b
	}
	if a.Name != b.Name || a.Result != b.Result || a.ReturnVar != b.ReturnVar {
		return false
	}
	if !equalVars(a.Params, b.Params) || !equalVars(a.Locals, b.Locals) {
		return false
	}
	return EqualStmts(a.Body, b.Body)
}

func equalVars(a, b []*VarDecl) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Name != b[i].Name || a[i].Type != b[i].Type {
			return false
		}
	}
	return true
}

// unwrapBlock strips single-statement blocks: "begin s end" and bare "s"
// sequence identically, and the printer inserts such blocks to
// disambiguate (a dangling else, an if/while as a "||" branch), so
// structural equality must see through them or Parse(Print(p)) would
// differ from p exactly where the printer had to add braces.
func unwrapBlock(s Stmt) Stmt {
	for {
		b, ok := s.(*Block)
		if !ok || len(b.Stmts) != 1 {
			return s
		}
		s = b.Stmts[0]
	}
}

// EqualStmts compares two statements structurally, treating a
// single-statement block as equal to its one statement (see unwrapBlock).
func EqualStmts(a, b Stmt) bool {
	if a != nil {
		a = unwrapBlock(a)
	}
	if b != nil {
		b = unwrapBlock(b)
	}
	switch a := a.(type) {
	case nil:
		return b == nil
	case *Block:
		b, ok := b.(*Block)
		if !ok || len(a.Stmts) != len(b.Stmts) {
			return false
		}
		for i := range a.Stmts {
			if !EqualStmts(a.Stmts[i], b.Stmts[i]) {
				return false
			}
		}
		return true
	case *Assign:
		b, ok := b.(*Assign)
		return ok && equalLValues(a.Lhs, b.Lhs) && EqualExprs(a.Rhs, b.Rhs)
	case *If:
		b, ok := b.(*If)
		return ok && EqualExprs(a.Cond, b.Cond) && EqualStmts(a.Then, b.Then) && EqualStmts(a.Else, b.Else)
	case *While:
		b, ok := b.(*While)
		return ok && EqualExprs(a.Cond, b.Cond) && EqualStmts(a.Body, b.Body)
	case *CallStmt:
		b, ok := b.(*CallStmt)
		return ok && a.Name == b.Name && equalExprList(a.Args, b.Args)
	case *Par:
		b, ok := b.(*Par)
		if !ok || len(a.Branches) != len(b.Branches) {
			return false
		}
		for i := range a.Branches {
			if !EqualStmts(a.Branches[i], b.Branches[i]) {
				return false
			}
		}
		return true
	}
	return false
}

func equalLValues(a, b LValue) bool {
	switch a := a.(type) {
	case *VarLV:
		b, ok := b.(*VarLV)
		return ok && a.Name == b.Name
	case *FieldLV:
		b, ok := b.(*FieldLV)
		return ok && a.Base == b.Base && a.Field == b.Field && equalFields(a.Chain, b.Chain)
	}
	return false
}

func equalFields(a, b []Field) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalExprList(a, b []Expr) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !EqualExprs(a[i], b[i]) {
			return false
		}
	}
	return true
}

// EqualExprs compares two expressions structurally.
func EqualExprs(a, b Expr) bool {
	switch a := a.(type) {
	case nil:
		return b == nil
	case *IntLit:
		b, ok := b.(*IntLit)
		return ok && a.Val == b.Val
	case *VarRef:
		b, ok := b.(*VarRef)
		return ok && a.Name == b.Name
	case *NilLit:
		_, ok := b.(*NilLit)
		return ok
	case *NewExpr:
		_, ok := b.(*NewExpr)
		return ok
	case *FieldRef:
		b, ok := b.(*FieldRef)
		return ok && a.Base == b.Base && a.Field == b.Field && equalFields(a.Chain, b.Chain)
	case *CallExpr:
		b, ok := b.(*CallExpr)
		return ok && a.Name == b.Name && equalExprList(a.Args, b.Args)
	case *Unary:
		b, ok := b.(*Unary)
		return ok && a.Op == b.Op && EqualExprs(a.X, b.X)
	case *Binary:
		b, ok := b.(*Binary)
		return ok && a.Op == b.Op && EqualExprs(a.X, b.X) && EqualExprs(a.Y, b.Y)
	}
	return false
}
