// Package ast defines the abstract syntax of SIL programs (Figure 1 of the
// paper), extended with the parallel statement "s1 || s2 || …" that the
// parallelizer produces (Figure 8).
package ast

import (
	"repro/internal/sil/token"
)

// Type is a SIL type: the language has exactly two (§3.2).
type Type uint8

// SIL types; VoidT is the "type" of procedures.
const (
	VoidT Type = iota
	IntT
	HandleT
)

func (t Type) String() string {
	switch t {
	case IntT:
		return "int"
	case HandleT:
		return "handle"
	case VoidT:
		return "void"
	}
	return "?"
}

// Field selects a component of a node: left and right are the handle
// fields, value is the scalar field.
type Field uint8

// Node fields.
const (
	Left Field = iota
	Right
	Value
)

func (f Field) String() string {
	switch f {
	case Left:
		return "left"
	case Right:
		return "right"
	case Value:
		return "value"
	}
	return "?"
}

// Node is any AST node.
type Node interface {
	Pos() token.Pos
}

// Program is a SIL compilation unit: a parameterless main plus auxiliary
// procedures and functions.
type Program struct {
	Name    string
	Decls   []*ProcDecl
	NamePos token.Pos
}

// Pos implements Node.
func (p *Program) Pos() token.Pos { return p.NamePos }

// Proc returns the declaration named name, or nil.
func (p *Program) Proc(name string) *ProcDecl {
	for _, d := range p.Decls {
		if d.Name == name {
			return d
		}
	}
	return nil
}

// VarDecl declares one parameter or local.
type VarDecl struct {
	Name    string
	Type    Type
	NamePos token.Pos
}

// Pos implements Node.
func (v *VarDecl) Pos() token.Pos { return v.NamePos }

// ProcDecl is a procedure or function declaration. For functions, Result is
// IntT or HandleT and ReturnVar names the returned local/parameter (the
// paper's "return ( <return_id> )" form); for procedures Result is VoidT.
type ProcDecl struct {
	Name      string
	Params    []*VarDecl
	Locals    []*VarDecl
	Body      *Block
	Result    Type
	ReturnVar string
	NamePos   token.Pos
}

// Pos implements Node.
func (d *ProcDecl) Pos() token.Pos { return d.NamePos }

// IsFunction reports whether the declaration is a function.
func (d *ProcDecl) IsFunction() bool { return d.Result != VoidT }

// Lookup resolves a name against params then locals.
func (d *ProcDecl) Lookup(name string) *VarDecl {
	for _, v := range d.Params {
		if v.Name == name {
			return v
		}
	}
	for _, v := range d.Locals {
		if v.Name == name {
			return v
		}
	}
	return nil
}

// ---------------------------------------------------------------- statements

// Stmt is any statement.
type Stmt interface {
	Node
	stmt()
}

// Block is "begin s1; …; sn end".
type Block struct {
	Stmts    []Stmt
	BeginPos token.Pos
}

func (b *Block) Pos() token.Pos { return b.BeginPos }
func (*Block) stmt()            {}

// Assign is the general assignment statement. The type checker restricts
// the legal shapes to the paper's basic statements (after normalization):
//
//	a := nil | new() | b | b.left | b.right   (handle forms)
//	x := <int expr> | a.value := <int expr>   (scalar forms)
//	a.left := b | a.right := b                (update forms)
//	x := f(args) | a := f(args)               (function-call form)
type Assign struct {
	Lhs LValue
	Rhs Expr
}

func (a *Assign) Pos() token.Pos { return a.Lhs.Pos() }
func (*Assign) stmt()            {}

// If is "if cond then s [else s]".
type If struct {
	Cond  Expr
	Then  Stmt
	Else  Stmt // may be nil
	IfPos token.Pos
}

func (s *If) Pos() token.Pos { return s.IfPos }
func (*If) stmt()            {}

// While is "while cond do s".
type While struct {
	Cond     Expr
	Body     Stmt
	WhilePos token.Pos
}

func (s *While) Pos() token.Pos { return s.WhilePos }
func (*While) stmt()            {}

// CallStmt is a procedure invocation.
type CallStmt struct {
	Name    string
	Args    []Expr
	NamePos token.Pos
}

func (s *CallStmt) Pos() token.Pos { return s.NamePos }
func (*CallStmt) stmt()            {}

// Par is the parallel statement "s1 || s2 || …": all branches execute
// concurrently; the construct is the target of every transformation in §5.
type Par struct {
	Branches []Stmt
}

func (s *Par) Pos() token.Pos {
	if len(s.Branches) > 0 {
		return s.Branches[0].Pos()
	}
	return token.Pos{}
}
func (*Par) stmt() {}

// ------------------------------------------------------------------- lvalues

// LValue is an assignable location.
type LValue interface {
	Node
	lvalue()
}

// VarLV is a plain variable on the left-hand side.
type VarLV struct {
	Name    string
	NamePos token.Pos
}

func (l *VarLV) Pos() token.Pos { return l.NamePos }
func (*VarLV) lvalue()          {}

// FieldLV is "a.left", "a.right" or "a.value" on the left-hand side. After
// normalization Base is always a plain variable name; the parser also
// accepts chained selectors, recorded via the Chain of intermediate fields,
// which normalization rewrites into temporaries.
type FieldLV struct {
	Base    string
	Chain   []Field // selectors applied to Base before the final one
	Field   Field
	NamePos token.Pos
}

func (l *FieldLV) Pos() token.Pos { return l.NamePos }
func (*FieldLV) lvalue()          {}

// --------------------------------------------------------------- expressions

// Expr is any expression.
type Expr interface {
	Node
	expr()
}

// IntLit is an integer literal.
type IntLit struct {
	Val    int64
	ValPos token.Pos
}

func (e *IntLit) Pos() token.Pos { return e.ValPos }
func (*IntLit) expr()            {}

// VarRef references a variable of either type.
type VarRef struct {
	Name    string
	NamePos token.Pos
}

func (e *VarRef) Pos() token.Pos { return e.NamePos }
func (*VarRef) expr()            {}

// FieldRef is "a.left", "a.right" or "a.value". As with FieldLV, Chain
// holds any intermediate selectors the parser accepted; normalization
// flattens them so the analysis only ever sees one selector deep.
type FieldRef struct {
	Base    string
	Chain   []Field
	Field   Field
	NamePos token.Pos
}

func (e *FieldRef) Pos() token.Pos { return e.NamePos }
func (*FieldRef) expr()            {}

// NilLit is the handle constant nil.
type NilLit struct {
	NilPos token.Pos
}

func (e *NilLit) Pos() token.Pos { return e.NilPos }
func (*NilLit) expr()            {}

// NewExpr is the built-in allocator new().
type NewExpr struct {
	NewPos token.Pos
}

func (e *NewExpr) Pos() token.Pos { return e.NewPos }
func (*NewExpr) expr()            {}

// CallExpr is a function invocation in expression position.
type CallExpr struct {
	Name    string
	Args    []Expr
	NamePos token.Pos
}

func (e *CallExpr) Pos() token.Pos { return e.NamePos }
func (*CallExpr) expr()            {}

// Op is a unary or binary operator.
type Op uint8

// Operators.
const (
	Add Op = iota
	Sub
	Mul
	Div
	Eq
	Neq
	Lt
	Gt
	Leq
	Geq
	And
	Or
	Not
	Neg
)

func (o Op) String() string {
	switch o {
	case Add:
		return "+"
	case Sub:
		return "-"
	case Mul:
		return "*"
	case Div:
		return "/"
	case Eq:
		return "="
	case Neq:
		return "<>"
	case Lt:
		return "<"
	case Gt:
		return ">"
	case Leq:
		return "<="
	case Geq:
		return ">="
	case And:
		return "and"
	case Or:
		return "or"
	case Not:
		return "not"
	case Neg:
		return "-"
	}
	return "?"
}

// Binary is "x op y".
type Binary struct {
	Op   Op
	X, Y Expr
}

func (e *Binary) Pos() token.Pos { return e.X.Pos() }
func (*Binary) expr()            {}

// Unary is "not x" or "-x".
type Unary struct {
	Op    Op
	X     Expr
	OpPos token.Pos
}

func (e *Unary) Pos() token.Pos { return e.OpPos }
func (*Unary) expr()            {}
