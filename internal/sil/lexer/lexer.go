// Package lexer tokenizes SIL source text. Comments are Pascal-style
// braces: { ... }, matching the paper's figures.
package lexer

import (
	"fmt"

	"repro/internal/sil/token"
)

// Lexer scans one source text.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
	errs []error
}

// New returns a lexer over src.
func New(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

// Errors returns the lexical errors encountered so far.
func (l *Lexer) Errors() []error { return l.errs }

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\n' || c == '\r' }
func isDigit(c byte) bool { return c >= '0' && c <= '9' }
func isLetter(c byte) bool {
	return c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c == '_'
}

func (l *Lexer) skipBlanksAndComments() {
	for l.off < len(l.src) {
		switch {
		case isSpace(l.peek()):
			l.advance()
		case l.peek() == '{':
			start := token.Pos{Line: l.line, Col: l.col}
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.advance() == '}' {
					closed = true
					break
				}
			}
			if !closed {
				l.errs = append(l.errs, fmt.Errorf("%s: unterminated comment", start))
			}
		default:
			return
		}
	}
}

// Next returns the next token; at end of input it returns EOF forever.
func (l *Lexer) Next() token.Token {
	l.skipBlanksAndComments()
	pos := token.Pos{Line: l.line, Col: l.col}
	if l.off >= len(l.src) {
		return token.Token{Kind: token.EOF, Pos: pos}
	}
	c := l.peek()
	switch {
	case isLetter(c):
		start := l.off
		for l.off < len(l.src) && (isLetter(l.peek()) || isDigit(l.peek())) {
			l.advance()
		}
		lit := l.src[start:l.off]
		if k, ok := token.Keywords[lit]; ok {
			return token.Token{Kind: k, Lit: lit, Pos: pos}
		}
		return token.Token{Kind: token.IDENT, Lit: lit, Pos: pos}
	case isDigit(c):
		start := l.off
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		return token.Token{Kind: token.INT, Lit: l.src[start:l.off], Pos: pos}
	}
	two := func(k token.Kind) token.Token {
		l.advance()
		l.advance()
		return token.Token{Kind: k, Pos: pos}
	}
	one := func(k token.Kind) token.Token {
		l.advance()
		return token.Token{Kind: k, Pos: pos}
	}
	switch c {
	case ':':
		if l.peek2() == '=' {
			return two(token.ASSIGN)
		}
		return one(token.COLON)
	case '<':
		switch l.peek2() {
		case '>':
			return two(token.NEQ)
		case '=':
			return two(token.LEQ)
		}
		return one(token.LT)
	case '>':
		if l.peek2() == '=' {
			return two(token.GEQ)
		}
		return one(token.GT)
	case '|':
		if l.peek2() == '|' {
			return two(token.PAR)
		}
	case '.':
		return one(token.DOT)
	case ',':
		return one(token.COMMA)
	case ';':
		return one(token.SEMICOLON)
	case '(':
		return one(token.LPAREN)
	case ')':
		return one(token.RPAREN)
	case '+':
		return one(token.PLUS)
	case '-':
		return one(token.MINUS)
	case '*':
		return one(token.STAR)
	case '/':
		return one(token.SLASH)
	case '=':
		return one(token.EQ)
	}
	l.advance()
	l.errs = append(l.errs, fmt.Errorf("%s: illegal character %q", pos, c))
	return token.Token{Kind: token.ILLEGAL, Lit: string(c), Pos: pos}
}

// All tokenizes the entire input, ending with the EOF token.
func All(src string) ([]token.Token, []error) {
	l := New(src)
	var out []token.Token
	for {
		t := l.Next()
		out = append(out, t)
		if t.Kind == token.EOF {
			return out, l.errs
		}
	}
}
