package lexer

import (
	"testing"

	"repro/internal/sil/token"
)

func kinds(src string) []token.Kind {
	toks, _ := All(src)
	out := make([]token.Kind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestBasicTokens(t *testing.T) {
	got := kinds("lside := root.left;")
	want := []token.Kind{token.IDENT, token.ASSIGN, token.IDENT, token.DOT, token.LEFTKW, token.SEMICOLON, token.EOF}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestOperators(t *testing.T) {
	got := kinds(":= : <> <= >= < > = || + - * / ( ) , .")
	want := []token.Kind{
		token.ASSIGN, token.COLON, token.NEQ, token.LEQ, token.GEQ,
		token.LT, token.GT, token.EQ, token.PAR, token.PLUS, token.MINUS,
		token.STAR, token.SLASH, token.LPAREN, token.RPAREN, token.COMMA,
		token.DOT, token.EOF,
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %v, want %v", i, got[i], want[i])
		}
	}
}

func TestKeywordsAndIdents(t *testing.T) {
	toks, errs := All("program if then else while do begin end nil new int handle myVar x1")
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	want := []token.Kind{
		token.PROGRAM, token.IF, token.THEN, token.ELSE, token.WHILE,
		token.DO, token.BEGIN, token.END, token.NIL, token.NEW,
		token.INTKW, token.HANDLEKW, token.IDENT, token.IDENT, token.EOF,
	}
	for i := range want {
		if toks[i].Kind != want[i] {
			t.Errorf("token %d: got %v, want %v", i, toks[i].Kind, want[i])
		}
	}
	if toks[12].Lit != "myVar" || toks[13].Lit != "x1" {
		t.Errorf("ident literals: %q %q", toks[12].Lit, toks[13].Lit)
	}
}

func TestComments(t *testing.T) {
	toks, errs := All("a { this is a comment } := { another } 5")
	if len(errs) > 0 {
		t.Fatalf("errors: %v", errs)
	}
	want := []token.Kind{token.IDENT, token.ASSIGN, token.INT, token.EOF}
	for i := range want {
		if toks[i].Kind != want[i] {
			t.Errorf("token %d: got %v, want %v", i, toks[i].Kind, want[i])
		}
	}
}

func TestUnterminatedComment(t *testing.T) {
	_, errs := All("a := { oops")
	if len(errs) == 0 {
		t.Error("unterminated comment should error")
	}
}

func TestIllegalChar(t *testing.T) {
	toks, errs := All("a # b")
	if len(errs) == 0 {
		t.Error("expected error for #")
	}
	if toks[1].Kind != token.ILLEGAL {
		t.Errorf("token 1 = %v, want ILLEGAL", toks[1].Kind)
	}
}

func TestPositions(t *testing.T) {
	toks, _ := All("a\n  b")
	if toks[0].Pos != (token.Pos{Line: 1, Col: 1}) {
		t.Errorf("a at %v", toks[0].Pos)
	}
	if toks[1].Pos != (token.Pos{Line: 2, Col: 3}) {
		t.Errorf("b at %v", toks[1].Pos)
	}
}

func TestSingleBarIsIllegal(t *testing.T) {
	_, errs := All("a | b")
	if len(errs) == 0 {
		t.Error("single | should be illegal")
	}
}

func TestNumbers(t *testing.T) {
	toks, _ := All("042 7")
	if toks[0].Lit != "042" || toks[1].Lit != "7" {
		t.Errorf("number literals: %q %q", toks[0].Lit, toks[1].Lit)
	}
}
