// Package parser builds SIL ASTs by recursive descent over the grammar of
// Figure 1, with two practical extensions: chained field selectors (which
// normalization later rewrites into basic statements, per the paper's
// remark in §3.2) and the "||" parallel statement of Figure 8.
package parser

import (
	"fmt"
	"strconv"

	"repro/internal/sil/ast"
	"repro/internal/sil/lexer"
	"repro/internal/sil/token"
)

// Parse parses a complete SIL program.
func Parse(src string) (*ast.Program, error) {
	toks, lerrs := lexer.All(src)
	if len(lerrs) > 0 {
		return nil, lerrs[0]
	}
	p := &parser{toks: toks}
	return p.parseProgram()
}

// ParseStmts parses a bare statement list (test and REPL convenience):
// the input is wrapped as the body of an implicit block.
func ParseStmts(src string) ([]ast.Stmt, error) {
	toks, lerrs := lexer.All(src)
	if len(lerrs) > 0 {
		return nil, lerrs[0]
	}
	p := &parser{toks: toks}
	var err error
	var stmts []ast.Stmt
	func() {
		defer p.catch(&err)
		for p.tok().Kind != token.EOF {
			stmts = append(stmts, p.parseStmt())
			if p.tok().Kind == token.SEMICOLON {
				p.next()
			}
		}
	}()
	if err != nil {
		return nil, err
	}
	return stmts, nil
}

type parser struct {
	toks []token.Token
	pos  int
}

type parseError struct{ err error }

func (p *parser) catch(err *error) {
	if r := recover(); r != nil {
		pe, ok := r.(parseError)
		if !ok {
			panic(r)
		}
		*err = pe.err
	}
}

func (p *parser) errorf(pos token.Pos, format string, args ...any) {
	panic(parseError{fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...))})
}

func (p *parser) tok() token.Token { return p.toks[p.pos] }

func (p *parser) next() token.Token {
	t := p.toks[p.pos]
	if t.Kind != token.EOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(k token.Kind) token.Token {
	t := p.tok()
	if t.Kind != k {
		p.errorf(t.Pos, "expected %s, found %s", k, t)
	}
	return p.next()
}

func (p *parser) accept(k token.Kind) bool {
	if p.tok().Kind == k {
		p.next()
		return true
	}
	return false
}

func (p *parser) expectName() token.Token {
	t := p.tok()
	if !t.IsNameLike() {
		p.errorf(t.Pos, "expected identifier, found %s", t)
	}
	return p.next()
}

func (p *parser) parseProgram() (prog *ast.Program, err error) {
	defer p.catch(&err)
	p.expect(token.PROGRAM)
	name := p.expectName()
	p.accept(token.SEMICOLON)
	prog = &ast.Program{Name: name.Name(), NamePos: name.Pos}
	for p.tok().Kind != token.EOF {
		switch p.tok().Kind {
		case token.PROCEDURE:
			prog.Decls = append(prog.Decls, p.parseProcOrFunc(false))
		case token.FUNCTION:
			prog.Decls = append(prog.Decls, p.parseProcOrFunc(true))
		default:
			p.errorf(p.tok().Pos, "expected procedure or function, found %s", p.tok())
		}
	}
	return prog, nil
}

func (p *parser) parseType() ast.Type {
	switch t := p.next(); t.Kind {
	case token.INTKW:
		return ast.IntT
	case token.HANDLEKW:
		return ast.HandleT
	default:
		p.errorf(t.Pos, "expected type (int or handle), found %s", t)
		return ast.VoidT
	}
}

// parseVarGroup parses "a, b, c: type" and returns one VarDecl per name.
func (p *parser) parseVarGroup() []*ast.VarDecl {
	var names []token.Token
	names = append(names, p.expectName())
	for p.accept(token.COMMA) {
		names = append(names, p.expectName())
	}
	p.expect(token.COLON)
	typ := p.parseType()
	out := make([]*ast.VarDecl, len(names))
	for i, n := range names {
		out[i] = &ast.VarDecl{Name: n.Name(), Type: typ, NamePos: n.Pos}
	}
	return out
}

func (p *parser) parseProcOrFunc(isFunc bool) *ast.ProcDecl {
	p.next() // procedure | function
	name := p.expectName()
	d := &ast.ProcDecl{Name: name.Name(), NamePos: name.Pos}
	p.expect(token.LPAREN)
	if p.tok().Kind != token.RPAREN {
		d.Params = append(d.Params, p.parseVarGroup()...)
		for p.accept(token.SEMICOLON) {
			d.Params = append(d.Params, p.parseVarGroup()...)
		}
	}
	p.expect(token.RPAREN)
	if isFunc {
		p.accept(token.COLON) // the colon is optional, per Figure 1's layout
		d.Result = p.parseType()
	}
	p.accept(token.SEMICOLON)
	// Locals: var groups until "begin".
	for p.tok().Kind != token.BEGIN && p.tok().Kind != token.EOF {
		d.Locals = append(d.Locals, p.parseVarGroup()...)
		if !p.accept(token.SEMICOLON) {
			break
		}
	}
	d.Body = p.parseBlock()
	if isFunc {
		p.expect(token.RETURN)
		p.expect(token.LPAREN)
		rv := p.expectName()
		d.ReturnVar = rv.Name()
		p.expect(token.RPAREN)
	}
	p.accept(token.SEMICOLON)
	return d
}

func (p *parser) parseBlock() *ast.Block {
	begin := p.expect(token.BEGIN)
	b := &ast.Block{BeginPos: begin.Pos}
	for p.tok().Kind != token.END && p.tok().Kind != token.EOF {
		b.Stmts = append(b.Stmts, p.parseStmt())
		if p.tok().Kind != token.END {
			p.expect(token.SEMICOLON)
			// Tolerate a trailing semicolon before "end".
			if p.tok().Kind == token.END {
				break
			}
		}
	}
	p.expect(token.END)
	return b
}

// parseStmt parses one statement, including "s1 || s2 || …".
func (p *parser) parseStmt() ast.Stmt {
	first := p.parseBaseStmt()
	if p.tok().Kind != token.PAR {
		return first
	}
	par := &ast.Par{Branches: []ast.Stmt{first}}
	for p.accept(token.PAR) {
		par.Branches = append(par.Branches, p.parseBaseStmt())
	}
	return par
}

func (p *parser) parseBaseStmt() ast.Stmt {
	t := p.tok()
	switch t.Kind {
	case token.BEGIN:
		return p.parseBlock()
	case token.IF:
		p.next()
		cond := p.parseExpr()
		p.expect(token.THEN)
		then := p.parseStmt()
		var els ast.Stmt
		if p.accept(token.ELSE) {
			els = p.parseStmt()
		}
		return &ast.If{Cond: cond, Then: then, Else: els, IfPos: t.Pos}
	case token.WHILE:
		p.next()
		cond := p.parseExpr()
		p.expect(token.DO)
		body := p.parseStmt()
		return &ast.While{Cond: cond, Body: body, WhilePos: t.Pos}
	default:
		if !t.IsNameLike() {
			p.errorf(t.Pos, "expected statement, found %s", t)
		}
		return p.parseCallOrAssign()
	}
}

func (p *parser) parseField() ast.Field {
	switch t := p.next(); t.Kind {
	case token.LEFTKW:
		return ast.Left
	case token.RIGHTKW:
		return ast.Right
	case token.VALUEKW:
		return ast.Value
	default:
		p.errorf(t.Pos, "expected field (left, right or value), found %s", t)
		return ast.Left
	}
}

func (p *parser) parseCallOrAssign() ast.Stmt {
	name := p.expectName()
	if p.tok().Kind == token.LPAREN {
		// Procedure call statement.
		args := p.parseArgs()
		return &ast.CallStmt{Name: name.Name(), Args: args, NamePos: name.Pos}
	}
	var lhs ast.LValue
	if p.tok().Kind == token.DOT {
		var fields []ast.Field
		for p.accept(token.DOT) {
			fields = append(fields, p.parseField())
		}
		lhs = &ast.FieldLV{
			Base:    name.Name(),
			Chain:   fields[:len(fields)-1],
			Field:   fields[len(fields)-1],
			NamePos: name.Pos,
		}
	} else {
		lhs = &ast.VarLV{Name: name.Name(), NamePos: name.Pos}
	}
	p.expect(token.ASSIGN)
	rhs := p.parseExpr()
	return &ast.Assign{Lhs: lhs, Rhs: rhs}
}

func (p *parser) parseArgs() []ast.Expr {
	p.expect(token.LPAREN)
	var args []ast.Expr
	if p.tok().Kind != token.RPAREN {
		args = append(args, p.parseExpr())
		for p.accept(token.COMMA) {
			args = append(args, p.parseExpr())
		}
	}
	p.expect(token.RPAREN)
	return args
}

// Expression grammar, loosest to tightest:
// or | and | not | comparison | additive | multiplicative | unary | primary.
func (p *parser) parseExpr() ast.Expr { return p.parseOr() }

func (p *parser) parseOr() ast.Expr {
	x := p.parseAnd()
	for p.tok().Kind == token.OR {
		p.next()
		x = &ast.Binary{Op: ast.Or, X: x, Y: p.parseAnd()}
	}
	return x
}

func (p *parser) parseAnd() ast.Expr {
	x := p.parseNot()
	for p.tok().Kind == token.AND {
		p.next()
		x = &ast.Binary{Op: ast.And, X: x, Y: p.parseNot()}
	}
	return x
}

func (p *parser) parseNot() ast.Expr {
	if t := p.tok(); t.Kind == token.NOT {
		p.next()
		return &ast.Unary{Op: ast.Not, X: p.parseNot(), OpPos: t.Pos}
	}
	return p.parseComparison()
}

var cmpOps = map[token.Kind]ast.Op{
	token.EQ: ast.Eq, token.NEQ: ast.Neq, token.LT: ast.Lt,
	token.GT: ast.Gt, token.LEQ: ast.Leq, token.GEQ: ast.Geq,
}

func (p *parser) parseComparison() ast.Expr {
	x := p.parseAdditive()
	if op, ok := cmpOps[p.tok().Kind]; ok {
		p.next()
		return &ast.Binary{Op: op, X: x, Y: p.parseAdditive()}
	}
	return x
}

func (p *parser) parseAdditive() ast.Expr {
	x := p.parseMultiplicative()
	for {
		switch p.tok().Kind {
		case token.PLUS:
			p.next()
			x = &ast.Binary{Op: ast.Add, X: x, Y: p.parseMultiplicative()}
		case token.MINUS:
			p.next()
			x = &ast.Binary{Op: ast.Sub, X: x, Y: p.parseMultiplicative()}
		default:
			return x
		}
	}
}

func (p *parser) parseMultiplicative() ast.Expr {
	x := p.parseUnary()
	for {
		switch p.tok().Kind {
		case token.STAR:
			p.next()
			x = &ast.Binary{Op: ast.Mul, X: x, Y: p.parseUnary()}
		case token.SLASH:
			p.next()
			x = &ast.Binary{Op: ast.Div, X: x, Y: p.parseUnary()}
		default:
			return x
		}
	}
}

func (p *parser) parseUnary() ast.Expr {
	if t := p.tok(); t.Kind == token.MINUS {
		p.next()
		return &ast.Unary{Op: ast.Neg, X: p.parseUnary(), OpPos: t.Pos}
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() ast.Expr {
	t := p.tok()
	switch {
	case t.Kind == token.INT:
		p.next()
		v, err := strconv.ParseInt(t.Lit, 10, 64)
		if err != nil {
			p.errorf(t.Pos, "bad integer literal %q", t.Lit)
		}
		return &ast.IntLit{Val: v, ValPos: t.Pos}
	case t.Kind == token.NIL:
		p.next()
		return &ast.NilLit{NilPos: t.Pos}
	case t.Kind == token.NEW:
		p.next()
		p.expect(token.LPAREN)
		p.expect(token.RPAREN)
		return &ast.NewExpr{NewPos: t.Pos}
	case t.Kind == token.LPAREN:
		p.next()
		e := p.parseExpr()
		p.expect(token.RPAREN)
		return e
	case t.IsNameLike():
		p.next()
		if p.tok().Kind == token.LPAREN {
			args := p.parseArgs()
			return &ast.CallExpr{Name: t.Name(), Args: args, NamePos: t.Pos}
		}
		if p.tok().Kind == token.DOT {
			var fields []ast.Field
			for p.accept(token.DOT) {
				fields = append(fields, p.parseField())
			}
			return &ast.FieldRef{
				Base:    t.Name(),
				Chain:   fields[:len(fields)-1],
				Field:   fields[len(fields)-1],
				NamePos: t.Pos,
			}
		}
		return &ast.VarRef{Name: t.Name(), NamePos: t.Pos}
	default:
		p.errorf(t.Pos, "expected expression, found %s", t)
		return nil
	}
}
