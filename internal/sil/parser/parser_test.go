package parser

import (
	"strings"
	"testing"

	"repro/internal/sil/ast"
	"repro/internal/sil/printer"
)

// addAndReverse is the paper's Figure 7 program, transcribed verbatim
// modulo lexical conventions (<> for ≠, {} comments).
const addAndReverse = `
program add_and_reverse

procedure main()
  root, lside, rside: handle; i: int
begin
  { ... build a tree at root ... }
  lside := root.left;
  rside := root.right;
  add_n(lside, 1);
  add_n(rside, -1);
  reverse(root)
end;

procedure add_n(h: handle; n: int)
  l, r: handle
begin
  if h <> nil then
  begin
    h.value := h.value + n;
    l := h.left;
    r := h.right;
    add_n(l, n);
    add_n(r, n)
  end
end;

procedure reverse(h: handle)
  l, r: handle
begin
  if h <> nil then
  begin
    l := h.left;
    r := h.right;
    reverse(l);
    reverse(r);
    h.left := r;
    h.right := l
  end
end;
`

func TestParseFig7Program(t *testing.T) {
	prog, err := Parse(addAndReverse)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if prog.Name != "add_and_reverse" {
		t.Errorf("name = %q", prog.Name)
	}
	if len(prog.Decls) != 3 {
		t.Fatalf("decls = %d", len(prog.Decls))
	}
	main := prog.Proc("main")
	if main == nil || len(main.Params) != 0 || len(main.Locals) != 4 {
		t.Fatalf("main malformed: %+v", main)
	}
	if main.Locals[0].Type != ast.HandleT || main.Locals[3].Type != ast.IntT {
		t.Error("main local types wrong")
	}
	addN := prog.Proc("add_n")
	if addN == nil || len(addN.Params) != 2 {
		t.Fatalf("add_n malformed")
	}
	if addN.Params[0].Type != ast.HandleT || addN.Params[1].Type != ast.IntT {
		t.Error("add_n param types wrong")
	}
	// Body of add_n: one if statement guarding a block of 5.
	ifStmt, ok := addN.Body.Stmts[0].(*ast.If)
	if !ok {
		t.Fatalf("add_n body[0] is %T", addN.Body.Stmts[0])
	}
	blk, ok := ifStmt.Then.(*ast.Block)
	if !ok || len(blk.Stmts) != 5 {
		t.Fatalf("add_n then-block has %T", ifStmt.Then)
	}
	if _, ok := blk.Stmts[3].(*ast.CallStmt); !ok {
		t.Errorf("recursive call expected, got %T", blk.Stmts[3])
	}
}

func TestParseFieldAssignments(t *testing.T) {
	stmts, err := ParseStmts("a := b.left; a.right := c; a.value := x + 1; x := a.value")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(stmts) != 4 {
		t.Fatalf("stmts = %d", len(stmts))
	}
	a0 := stmts[0].(*ast.Assign)
	if fr, ok := a0.Rhs.(*ast.FieldRef); !ok || fr.Base != "b" || fr.Field != ast.Left {
		t.Errorf("stmt 0 rhs: %#v", a0.Rhs)
	}
	a1 := stmts[1].(*ast.Assign)
	if lv, ok := a1.Lhs.(*ast.FieldLV); !ok || lv.Base != "a" || lv.Field != ast.Right {
		t.Errorf("stmt 1 lhs: %#v", a1.Lhs)
	}
}

func TestParseChainedSelectors(t *testing.T) {
	stmts, err := ParseStmts("a.left.right := b.right.left.value")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	lv := stmts[0].(*ast.Assign).Lhs.(*ast.FieldLV)
	if lv.Base != "a" || len(lv.Chain) != 1 || lv.Chain[0] != ast.Left || lv.Field != ast.Right {
		t.Errorf("lhs chain: %#v", lv)
	}
	fr := stmts[0].(*ast.Assign).Rhs.(*ast.FieldRef)
	if fr.Base != "b" || len(fr.Chain) != 2 || fr.Field != ast.Value {
		t.Errorf("rhs chain: %#v", fr)
	}
}

func TestParseParallelStatement(t *testing.T) {
	stmts, err := ParseStmts("l := h.left || r := h.right || h.value := h.value + n")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	par, ok := stmts[0].(*ast.Par)
	if !ok || len(par.Branches) != 3 {
		t.Fatalf("par: %#v", stmts[0])
	}
}

func TestParseWhileAndNew(t *testing.T) {
	stmts, err := ParseStmts("h := new(); while l.left <> nil do l := l.left")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, ok := stmts[0].(*ast.Assign).Rhs.(*ast.NewExpr); !ok {
		t.Error("new() expected")
	}
	w := stmts[1].(*ast.While)
	if _, ok := w.Cond.(*ast.Binary); !ok {
		t.Error("while cond should be binary")
	}
}

func TestParseFunction(t *testing.T) {
	src := `
program p
function build(d: int): handle
  h: handle
begin
  h := new()
end
return (h);
procedure main()
  r: handle
begin
  r := build(3)
end;
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	f := prog.Proc("build")
	if f == nil || !f.IsFunction() || f.Result != ast.HandleT || f.ReturnVar != "h" {
		t.Fatalf("function decl: %+v", f)
	}
	m := prog.Proc("main")
	call, ok := m.Body.Stmts[0].(*ast.Assign).Rhs.(*ast.CallExpr)
	if !ok || call.Name != "build" {
		t.Errorf("call expr: %#v", m.Body.Stmts[0])
	}
}

func TestParseExpressionPrecedence(t *testing.T) {
	stmts, err := ParseStmts("x := 1 + 2 * 3 - 4 / 2")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	got := printer.PrintExpr(stmts[0].(*ast.Assign).Rhs)
	if got != "1 + 2 * 3 - 4 / 2" {
		t.Errorf("precedence print: %q", got)
	}
	stmts2, _ := ParseStmts("x := (1 + 2) * 3")
	got2 := printer.PrintExpr(stmts2[0].(*ast.Assign).Rhs)
	if got2 != "(1 + 2) * 3" {
		t.Errorf("parens print: %q", got2)
	}
}

func TestParseBooleanConditions(t *testing.T) {
	stmts, err := ParseStmts("if not (a = nil) and (x < 3 or y >= 2) then x := 1 else x := 2")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	ifs := stmts[0].(*ast.If)
	if ifs.Else == nil {
		t.Error("else missing")
	}
	b, ok := ifs.Cond.(*ast.Binary)
	if !ok || b.Op != ast.And {
		t.Errorf("cond: %#v", ifs.Cond)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"program",                      // missing name
		"program p procedure main(",    // unterminated params
		"program p procedure main() x", // junk before begin
		"program p garbage",            // not a decl
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
	badStmts := []string{
		"a := ",         // missing rhs
		"a.foo := b",    // bad field
		"if x then",     // missing stmt
		"a := b c := d", // missing semicolon inside block form
	}
	for _, src := range badStmts {
		if _, err := ParseStmts("begin " + src + " end"); err == nil {
			t.Errorf("ParseStmts(%q) should fail", src)
		}
	}
}

func TestRoundTripFig7(t *testing.T) {
	prog, err := Parse(addAndReverse)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	text := printer.Print(prog)
	prog2, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse printed program: %v\n%s", err, text)
	}
	text2 := printer.Print(prog2)
	if text != text2 {
		t.Errorf("print not stable:\n--- first ---\n%s\n--- second ---\n%s", text, text2)
	}
}

func TestRoundTripParallel(t *testing.T) {
	src := `
program par_demo
procedure main()
  a, b, c: handle
begin
  a := new() || b := new();
  if a <> nil then
    c := a.left || c := a.right
end;
`
	prog, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	text := printer.Print(prog)
	if !strings.Contains(text, "||") {
		t.Fatalf("printed text lost ||:\n%s", text)
	}
	prog2, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse: %v\n%s", err, text)
	}
	if printer.Print(prog2) != text {
		t.Error("parallel print not stable")
	}
}
