package token

import "testing"

func TestKindStrings(t *testing.T) {
	cases := map[Kind]string{
		ASSIGN: ":=", NEQ: "<>", PAR: "||", PROGRAM: "program",
		LEFTKW: "left", EOF: "EOF", IDENT: "IDENT", Kind(200): "Kind(200)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

func TestKeywordsComplete(t *testing.T) {
	for spelling, k := range Keywords {
		if k.String() != spelling {
			t.Errorf("keyword %q maps to kind spelled %q", spelling, k)
		}
	}
	if len(Keywords) != 21 {
		t.Errorf("keyword table has %d entries", len(Keywords))
	}
}

func TestTokenString(t *testing.T) {
	id := Token{Kind: IDENT, Lit: "root"}
	if id.String() != "IDENT(root)" {
		t.Errorf("ident token: %q", id.String())
	}
	n := Token{Kind: INT, Lit: "42"}
	if n.String() != "INT(42)" {
		t.Errorf("int token: %q", n.String())
	}
	if (Token{Kind: ASSIGN}).String() != ":=" {
		t.Error("operator token spelling")
	}
}

func TestNameLike(t *testing.T) {
	for _, k := range []Kind{IDENT, LEFTKW, RIGHTKW, VALUEKW} {
		tok := Token{Kind: k, Lit: "x"}
		if !tok.IsNameLike() {
			t.Errorf("%v should be name-like", k)
		}
	}
	if (Token{Kind: PROGRAM}).IsNameLike() {
		t.Error("program is not name-like")
	}
	if (Token{Kind: LEFTKW}).Name() != "left" {
		t.Error("field keyword name")
	}
	if (Token{Kind: IDENT, Lit: "abc"}).Name() != "abc" {
		t.Error("ident name")
	}
}

func TestPosString(t *testing.T) {
	if (Pos{Line: 3, Col: 7}).String() != "3:7" {
		t.Error("pos format")
	}
}
