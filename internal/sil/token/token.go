// Package token defines the lexical tokens of SIL, the Simple Imperative
// Language of Hendren & Nicolau (§3.2, Figure 1), extended with the "||"
// parallel-composition operator that the parallelizer emits (Figure 8).
package token

import "fmt"

// Kind identifies a token class.
type Kind uint8

// Token kinds.
const (
	ILLEGAL Kind = iota
	EOF

	IDENT // main, root, lside
	INT   // 42

	// Punctuation and operators.
	ASSIGN    // :=
	DOT       // .
	COMMA     // ,
	SEMICOLON // ;
	COLON     // :
	LPAREN    // (
	RPAREN    // )
	PAR       // ||

	PLUS  // +
	MINUS // -
	STAR  // *
	SLASH // /

	EQ  // =
	NEQ // <>
	LT  // <
	GT  // >
	LEQ // <=
	GEQ // >=

	// Keywords.
	PROGRAM
	PROCEDURE
	FUNCTION
	BEGIN
	END
	IF
	THEN
	ELSE
	WHILE
	DO
	RETURN
	NIL
	NEW
	INTKW    // "int"
	HANDLEKW // "handle"
	AND
	OR
	NOT
	LEFTKW  // "left" — also usable as an identifier-like field selector
	RIGHTKW // "right"
	VALUEKW // "value"
)

var kindNames = map[Kind]string{
	ILLEGAL: "ILLEGAL", EOF: "EOF", IDENT: "IDENT", INT: "INT",
	ASSIGN: ":=", DOT: ".", COMMA: ",", SEMICOLON: ";", COLON: ":",
	LPAREN: "(", RPAREN: ")", PAR: "||",
	PLUS: "+", MINUS: "-", STAR: "*", SLASH: "/",
	EQ: "=", NEQ: "<>", LT: "<", GT: ">", LEQ: "<=", GEQ: ">=",
	PROGRAM: "program", PROCEDURE: "procedure", FUNCTION: "function",
	BEGIN: "begin", END: "end", IF: "if", THEN: "then", ELSE: "else",
	WHILE: "while", DO: "do", RETURN: "return", NIL: "nil", NEW: "new",
	INTKW: "int", HANDLEKW: "handle", AND: "and", OR: "or", NOT: "not",
	LEFTKW: "left", RIGHTKW: "right", VALUEKW: "value",
}

// String returns the token kind's spelling.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Keywords maps keyword spellings to kinds. The field selectors left/right/
// value are contextual: the lexer emits them as their keyword kinds and the
// parser treats them as identifiers where a name is expected.
var Keywords = map[string]Kind{
	"program": PROGRAM, "procedure": PROCEDURE, "function": FUNCTION,
	"begin": BEGIN, "end": END, "if": IF, "then": THEN, "else": ELSE,
	"while": WHILE, "do": DO, "return": RETURN, "nil": NIL, "new": NEW,
	"int": INTKW, "handle": HANDLEKW, "and": AND, "or": OR, "not": NOT,
	"left": LEFTKW, "right": RIGHTKW, "value": VALUEKW,
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

// String renders "line:col".
func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexeme with its position.
type Token struct {
	Kind Kind
	Lit  string // literal text for IDENT/INT and field keywords
	Pos  Pos
}

// String renders the token for diagnostics.
func (t Token) String() string {
	switch t.Kind {
	case IDENT, INT:
		return fmt.Sprintf("%s(%s)", t.Kind, t.Lit)
	default:
		return t.Kind.String()
	}
}

// IsNameLike reports whether the token can serve as an identifier (plain
// identifiers plus the contextual field keywords).
func (t Token) IsNameLike() bool {
	switch t.Kind {
	case IDENT, LEFTKW, RIGHTKW, VALUEKW:
		return true
	}
	return false
}

// Name returns the identifier spelling for name-like tokens.
func (t Token) Name() string {
	if t.Kind == IDENT {
		return t.Lit
	}
	return t.Kind.String()
}
