package types

import (
	"fmt"

	"repro/internal/sil/ast"
)

// VerifyBasic checks that a program satisfies the normalized (basic
// statement) invariants the analysis engine relies on:
//
//   - handle assignments have the shapes a := nil | new() | b | b.f | f(…);
//   - structure updates have the shapes a.f := b | a.f := nil;
//   - scalar assignments write a variable or a.value and their right side
//     contains no calls and no chained selectors;
//   - call arguments are int expressions without calls, or plain handle
//     variable names (or the literal nil);
//   - conditions contain no calls and no chained selectors.
//
// It returns nil when the program is basic. Run Normalize first for
// arbitrary checked programs.
func VerifyBasic(prog *ast.Program) error {
	for _, d := range prog.Decls {
		if err := basicStmt(prog, d, d.Body); err != nil {
			return fmt.Errorf("%s: %w", d.Name, err)
		}
	}
	return nil
}

func basicStmt(prog *ast.Program, d *ast.ProcDecl, s ast.Stmt) error {
	switch s := s.(type) {
	case *ast.Block:
		for _, st := range s.Stmts {
			if err := basicStmt(prog, d, st); err != nil {
				return err
			}
		}
	case *ast.Par:
		for _, st := range s.Branches {
			if err := basicStmt(prog, d, st); err != nil {
				return err
			}
		}
	case *ast.If:
		if err := basicPlainExpr(s.Cond); err != nil {
			return err
		}
		if err := basicStmt(prog, d, s.Then); err != nil {
			return err
		}
		if s.Else != nil {
			return basicStmt(prog, d, s.Else)
		}
	case *ast.While:
		if err := basicPlainExpr(s.Cond); err != nil {
			return err
		}
		return basicStmt(prog, d, s.Body)
	case *ast.CallStmt:
		return basicArgs(prog, s.Name, s.Args)
	case *ast.Assign:
		return basicAssign(prog, d, s)
	}
	return nil
}

func basicArgs(prog *ast.Program, name string, args []ast.Expr) error {
	callee := prog.Proc(name)
	for i, a := range args {
		if callee != nil && i < len(callee.Params) && callee.Params[i].Type == ast.HandleT {
			// A plain name, or a literal nil — the analyzer binds a nil
			// actual to a definitely-nil formal directly.
			switch a.(type) {
			case *ast.VarRef, *ast.NilLit:
			default:
				return fmt.Errorf("%s: handle argument %d of %s is not a plain name or nil", a.Pos(), i+1, name)
			}
			continue
		}
		if err := basicPlainExpr(a); err != nil {
			return err
		}
	}
	return nil
}

func basicAssign(prog *ast.Program, d *ast.ProcDecl, s *ast.Assign) error {
	switch lhs := s.Lhs.(type) {
	case *ast.VarLV:
		v := d.Lookup(lhs.Name)
		if v != nil && v.Type == ast.HandleT {
			switch rhs := s.Rhs.(type) {
			case *ast.NilLit, *ast.NewExpr, *ast.VarRef:
				return nil
			case *ast.FieldRef:
				if len(rhs.Chain) > 0 {
					return fmt.Errorf("%s: chained selector not basic", rhs.Pos())
				}
				return nil
			case *ast.CallExpr:
				return basicArgs(prog, rhs.Name, rhs.Args)
			default:
				return fmt.Errorf("%s: handle assignment with non-basic right side %T", s.Pos(), s.Rhs)
			}
		}
		if call, ok := s.Rhs.(*ast.CallExpr); ok {
			return basicArgs(prog, call.Name, call.Args)
		}
		return basicPlainExpr(s.Rhs)
	case *ast.FieldLV:
		if len(lhs.Chain) > 0 {
			return fmt.Errorf("%s: chained selector on left side not basic", lhs.Pos())
		}
		if lhs.Field == ast.Value {
			return basicPlainExpr(s.Rhs)
		}
		switch s.Rhs.(type) {
		case *ast.VarRef, *ast.NilLit:
			return nil
		default:
			return fmt.Errorf("%s: %s.%s := … needs a plain name or nil", s.Pos(), lhs.Base, lhs.Field)
		}
	}
	return nil
}

// basicPlainExpr rejects calls and chained selectors anywhere inside e.
func basicPlainExpr(e ast.Expr) error {
	switch e := e.(type) {
	case *ast.CallExpr:
		return fmt.Errorf("%s: call inside expression is not basic", e.Pos())
	case *ast.NewExpr:
		return fmt.Errorf("%s: new() inside expression is not basic", e.Pos())
	case *ast.FieldRef:
		if len(e.Chain) > 0 {
			return fmt.Errorf("%s: chained selector is not basic", e.Pos())
		}
	case *ast.Unary:
		return basicPlainExpr(e.X)
	case *ast.Binary:
		if err := basicPlainExpr(e.X); err != nil {
			return err
		}
		return basicPlainExpr(e.Y)
	}
	return nil
}
