package types

import (
	"strings"
	"testing"

	"repro/internal/sil/ast"
	"repro/internal/sil/parser"
	"repro/internal/sil/printer"
)

func mustParse(t *testing.T, src string) *ast.Program {
	t.Helper()
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return prog
}

const okProgram = `
program ok
procedure main()
  a, b: handle; x: int
begin
  a := new();
  b := a.left;
  a.value := x + 1;
  x := a.value;
  a.left := b;
  if a <> nil and x < 3 then
    helper(a, x)
end;
procedure helper(h: handle; n: int)
begin
  h.value := n
end;
`

func TestCheckAcceptsGoodProgram(t *testing.T) {
	if err := Check(mustParse(t, okProgram)); err != nil {
		t.Errorf("Check: %v", err)
	}
}

func TestCheckErrors(t *testing.T) {
	cases := []struct {
		name, src, wantSub string
	}{
		{"no main", "program p procedure other() begin end;", "no procedure main"},
		{"main params", "program p procedure main(x: int) begin end;", "parameterless"},
		{"dup decl", "program p procedure main() begin end; procedure main() begin end;", "duplicate declaration"},
		{"dup var", "program p procedure main() x: int; x: int begin end;", "duplicate variable"},
		{"undeclared", "program p procedure main() begin x := 1 end;", "undeclared variable"},
		{"type mismatch", "program p procedure main() x: int begin x := nil end;", "cannot assign"},
		{"handle arith", "program p procedure main() a: handle; x: int begin x := a + 1 end;", "int operands"},
		{"int deref", "program p procedure main() x: int begin x := x.value end;", "not a handle"},
		{"cond not bool", "program p procedure main() x: int begin if x then x := 1 end;", "want bool"},
		{"call undeclared", "program p procedure main() begin f(1) end;", "undeclared procedure"},
		{"call arity", "program p procedure main() begin g(1) end; procedure g(a: int; b: int) begin end;", "2"},
		{"call arg type", "program p procedure main() a: handle begin g(a) end; procedure g(n: int) begin end;", "want int"},
		{"func as stmt", "program p procedure main() begin f() end; function f() int x: int begin x := 1 end return (x);", "must be assigned"},
		{"proc as expr", "program p procedure main() x: int begin x := g() end; procedure g() begin end;", "no result"},
		{"bad return var", "program p procedure main() begin end; function f() int begin end return (zz);", "undeclared variable zz"},
		{"return type", "program p procedure main() begin end; function f() int h: handle begin h := nil end return (h);", "result type"},
		{"value chain", "program p procedure main() a: handle; x: int begin x := a.value.value end;", "through value"},
		{"cmp mixed", "program p procedure main() a: handle; x: int begin if a = x then x := 1 end;", "compares"},
		{"main is function", "program p function main() int x: int begin x := 1 end return (x);", "must be a procedure"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			err := Check(mustParse(t, c.src))
			if err == nil {
				t.Fatalf("Check should fail")
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Errorf("error %q does not mention %q", err, c.wantSub)
			}
		})
	}
}

func TestNormalizeChains(t *testing.T) {
	src := `
program p
procedure main()
  a, b: handle
begin
  a.left.right := b.right
end;
`
	prog := mustParse(t, src)
	if err := Check(prog); err != nil {
		t.Fatalf("check: %v", err)
	}
	if err := VerifyBasic(prog); err == nil {
		t.Fatal("chained program should not verify as basic")
	}
	Normalize(prog)
	if err := VerifyBasic(prog); err != nil {
		t.Fatalf("normalized program not basic: %v\n%s", err, printer.Print(prog))
	}
	if err := Check(prog); err != nil {
		t.Fatalf("normalized program fails checking: %v", err)
	}
	// The paper's own desugaring: t1 := a.left; t2 := b.right; t1.right := t2.
	main := prog.Proc("main")
	if len(main.Body.Stmts) != 3 {
		t.Fatalf("want 3 basic statements, got %d:\n%s", len(main.Body.Stmts), printer.Print(prog))
	}
	last, ok := main.Body.Stmts[2].(*ast.Assign)
	if !ok {
		t.Fatalf("last stmt %T", main.Body.Stmts[2])
	}
	lv, ok := last.Lhs.(*ast.FieldLV)
	if !ok || len(lv.Chain) != 0 || lv.Field != ast.Right {
		t.Errorf("last lhs: %#v", last.Lhs)
	}
	if _, ok := last.Rhs.(*ast.VarRef); !ok {
		t.Errorf("last rhs: %#v", last.Rhs)
	}
}

func TestNormalizeCallArgsAndNestedCalls(t *testing.T) {
	src := `
program p
procedure main()
  a: handle; x: int
begin
  a := new();
  work(a.left, size(a) + 1)
end;
procedure work(h: handle; n: int)
begin
  h.value := n
end;
function size(h: handle) int
  n: int
begin
  n := 1
end
return (n);
`
	prog := mustParse(t, src)
	if err := Check(prog); err != nil {
		t.Fatalf("check: %v", err)
	}
	Normalize(prog)
	if err := VerifyBasic(prog); err != nil {
		t.Fatalf("not basic after normalize: %v\n%s", err, printer.Print(prog))
	}
	if err := Check(prog); err != nil {
		t.Fatalf("normalized fails checking: %v\n%s", err, printer.Print(prog))
	}
}

func TestNormalizeWhileConditionPrelude(t *testing.T) {
	src := `
program p
procedure main()
  l: handle; x: int
begin
  l := new();
  while l.left.value < 3 do
    l := l.left
end;
`
	prog := mustParse(t, src)
	if err := Check(prog); err != nil {
		t.Fatalf("check: %v", err)
	}
	Normalize(prog)
	if err := VerifyBasic(prog); err != nil {
		t.Fatalf("not basic: %v\n%s", err, printer.Print(prog))
	}
	// The hoisted prelude must re-execute inside the loop body.
	main := prog.Proc("main")
	var w *ast.While
	for _, s := range main.Body.Stmts {
		if ws, ok := s.(*ast.While); ok {
			w = ws
		}
	}
	if w == nil {
		t.Fatal("while lost")
	}
	body, ok := w.Body.(*ast.Block)
	if !ok || len(body.Stmts) < 2 {
		t.Fatalf("while body should contain re-evaluated prelude:\n%s", printer.Print(prog))
	}
}

func TestNormalizeIdempotentOnBasic(t *testing.T) {
	prog := mustParse(t, okProgram)
	if err := Check(prog); err != nil {
		t.Fatalf("check: %v", err)
	}
	Normalize(prog)
	before := printer.Print(prog)
	Normalize(prog)
	if printer.Print(prog) != before {
		t.Error("Normalize should be idempotent on basic programs")
	}
}

func TestNormalizeFieldAssignNil(t *testing.T) {
	src := `
program p
procedure main()
  a: handle
begin
  a := new();
  a.left := nil
end;
`
	prog := mustParse(t, src)
	if err := Check(prog); err != nil {
		t.Fatalf("check: %v", err)
	}
	Normalize(prog)
	if err := VerifyBasic(prog); err != nil {
		t.Fatalf("a.left := nil should be basic: %v", err)
	}
}

func TestNormalizePreservesSemanticsShape(t *testing.T) {
	// a := b.left.right must become exactly two basic statements.
	src := `
program p
procedure main()
  a, b: handle
begin
  a := b.left.right
end;
`
	prog := mustParse(t, src)
	if err := Check(prog); err != nil {
		t.Fatalf("check: %v", err)
	}
	Normalize(prog)
	main := prog.Proc("main")
	if len(main.Body.Stmts) != 2 {
		t.Fatalf("want 2 stmts:\n%s", printer.Print(prog))
	}
	if len(main.Locals) != 3 { // a, b, plus one temp
		t.Errorf("want 3 locals (one temp), got %d", len(main.Locals))
	}
}
