// Package types implements SIL static semantics: name resolution and type
// checking (§3.2: two types, int and handle; call-by-value; statically
// scoped), plus the normalization of §3.2's remark that complex statements
// such as a.left.right := b.right are translated into sequences of basic
// handle statements.
package types

import (
	"fmt"

	"repro/internal/sil/ast"
	"repro/internal/sil/token"
)

// exprType is the checker-internal type universe: SIL's two value types
// plus the boolean type of conditions (which has no variables).
type exprType uint8

const (
	intTy exprType = iota
	handleTy
	boolTy
)

func (t exprType) String() string {
	switch t {
	case intTy:
		return "int"
	case handleTy:
		return "handle"
	case boolTy:
		return "bool"
	}
	return "?"
}

func fromAST(t ast.Type) exprType {
	if t == ast.HandleT {
		return handleTy
	}
	return intTy
}

// Errors collects semantic diagnostics.
type Errors []error

func (e Errors) Error() string {
	if len(e) == 0 {
		return "no errors"
	}
	return fmt.Sprintf("%v (and %d more)", e[0], len(e)-1)
}

type checker struct {
	prog *ast.Program
	errs Errors
}

func (c *checker) errorf(pos token.Pos, format string, args ...any) {
	c.errs = append(c.errs, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

// Check verifies a whole program. It returns nil when the program is
// well-formed.
func Check(prog *ast.Program) error {
	c := &checker{prog: prog}
	seen := map[string]bool{}
	for _, d := range prog.Decls {
		if seen[d.Name] {
			c.errorf(d.Pos(), "duplicate declaration of %s", d.Name)
		}
		seen[d.Name] = true
	}
	main := prog.Proc("main")
	switch {
	case main == nil:
		c.errorf(prog.Pos(), "program has no procedure main")
	case main.IsFunction():
		c.errorf(main.Pos(), "main must be a procedure, not a function")
	case len(main.Params) > 0:
		c.errorf(main.Pos(), "main must be parameterless")
	}
	for _, d := range prog.Decls {
		c.checkDecl(d)
	}
	if len(c.errs) == 0 {
		return nil
	}
	return c.errs
}

func (c *checker) checkDecl(d *ast.ProcDecl) {
	seen := map[string]token.Pos{}
	for _, v := range append(append([]*ast.VarDecl{}, d.Params...), d.Locals...) {
		if prev, dup := seen[v.Name]; dup {
			c.errorf(v.Pos(), "duplicate variable %s (previous at %s)", v.Name, prev)
		}
		seen[v.Name] = v.Pos()
		if v.Type == ast.VoidT {
			c.errorf(v.Pos(), "variable %s has no type", v.Name)
		}
	}
	if d.IsFunction() {
		rv := d.Lookup(d.ReturnVar)
		switch {
		case rv == nil:
			c.errorf(d.Pos(), "function %s returns undeclared variable %s", d.Name, d.ReturnVar)
		case fromAST(rv.Type) != fromAST(d.Result):
			c.errorf(d.Pos(), "function %s returns %s variable %s, result type is %s",
				d.Name, rv.Type, d.ReturnVar, d.Result)
		}
	}
	c.checkStmt(d, d.Body)
}

func (c *checker) varType(d *ast.ProcDecl, name string, pos token.Pos) (exprType, bool) {
	v := d.Lookup(name)
	if v == nil {
		c.errorf(pos, "undeclared variable %s", name)
		return intTy, false
	}
	return fromAST(v.Type), true
}

func (c *checker) checkStmt(d *ast.ProcDecl, s ast.Stmt) {
	switch s := s.(type) {
	case *ast.Block:
		for _, st := range s.Stmts {
			c.checkStmt(d, st)
		}
	case *ast.Par:
		for _, st := range s.Branches {
			c.checkStmt(d, st)
		}
	case *ast.If:
		if t := c.checkExpr(d, s.Cond); t != boolTy {
			c.errorf(s.Cond.Pos(), "if condition has type %s, want bool", t)
		}
		c.checkStmt(d, s.Then)
		if s.Else != nil {
			c.checkStmt(d, s.Else)
		}
	case *ast.While:
		if t := c.checkExpr(d, s.Cond); t != boolTy {
			c.errorf(s.Cond.Pos(), "while condition has type %s, want bool", t)
		}
		c.checkStmt(d, s.Body)
	case *ast.CallStmt:
		callee := c.prog.Proc(s.Name)
		if callee == nil {
			c.errorf(s.Pos(), "call to undeclared procedure %s", s.Name)
			return
		}
		if callee.IsFunction() {
			c.errorf(s.Pos(), "%s is a function; its result must be assigned", s.Name)
		}
		c.checkArgs(d, callee, s.Args, s.Pos())
	case *ast.Assign:
		c.checkAssign(d, s)
	default:
		c.errorf(s.Pos(), "unknown statement %T", s)
	}
}

func (c *checker) checkArgs(d *ast.ProcDecl, callee *ast.ProcDecl, args []ast.Expr, pos token.Pos) {
	if len(args) != len(callee.Params) {
		c.errorf(pos, "call to %s has %d arguments, want %d", callee.Name, len(args), len(callee.Params))
		return
	}
	for i, a := range args {
		want := fromAST(callee.Params[i].Type)
		got := c.checkExpr(d, a)
		if got != want {
			c.errorf(a.Pos(), "argument %d of %s has type %s, want %s", i+1, callee.Name, got, want)
		}
	}
}

func (c *checker) checkAssign(d *ast.ProcDecl, s *ast.Assign) {
	rhsT := c.checkExpr(d, s.Rhs)
	switch lhs := s.Lhs.(type) {
	case *ast.VarLV:
		t, ok := c.varType(d, lhs.Name, lhs.Pos())
		if ok && t != rhsT {
			c.errorf(lhs.Pos(), "cannot assign %s to %s variable %s", rhsT, t, lhs.Name)
		}
	case *ast.FieldLV:
		t, ok := c.varType(d, lhs.Base, lhs.Pos())
		if ok && t != handleTy {
			c.errorf(lhs.Pos(), "%s is not a handle", lhs.Base)
		}
		for _, f := range lhs.Chain {
			if f == ast.Value {
				c.errorf(lhs.Pos(), "cannot select through value field")
			}
		}
		want := handleTy
		if lhs.Field == ast.Value {
			want = intTy
		}
		if rhsT != want {
			c.errorf(lhs.Pos(), "cannot assign %s to %s field", rhsT, lhs.Field)
		}
	default:
		c.errorf(s.Pos(), "unknown lvalue %T", lhs)
	}
}

func (c *checker) checkExpr(d *ast.ProcDecl, e ast.Expr) exprType {
	switch e := e.(type) {
	case *ast.IntLit:
		return intTy
	case *ast.NilLit:
		return handleTy
	case *ast.NewExpr:
		return handleTy
	case *ast.VarRef:
		t, _ := c.varType(d, e.Name, e.Pos())
		return t
	case *ast.FieldRef:
		if t, ok := c.varType(d, e.Base, e.Pos()); ok && t != handleTy {
			c.errorf(e.Pos(), "%s is not a handle", e.Base)
		}
		for _, f := range e.Chain {
			if f == ast.Value {
				c.errorf(e.Pos(), "cannot select through value field")
			}
		}
		if e.Field == ast.Value {
			return intTy
		}
		return handleTy
	case *ast.CallExpr:
		callee := c.prog.Proc(e.Name)
		if callee == nil {
			c.errorf(e.Pos(), "call to undeclared function %s", e.Name)
			return intTy
		}
		if !callee.IsFunction() {
			c.errorf(e.Pos(), "%s is a procedure and has no result", e.Name)
			return intTy
		}
		c.checkArgs(d, callee, e.Args, e.Pos())
		return fromAST(callee.Result)
	case *ast.Unary:
		xt := c.checkExpr(d, e.X)
		switch e.Op {
		case ast.Not:
			if xt != boolTy {
				c.errorf(e.Pos(), "not needs a bool operand, got %s", xt)
			}
			return boolTy
		case ast.Neg:
			if xt != intTy {
				c.errorf(e.Pos(), "unary - needs an int operand, got %s", xt)
			}
			return intTy
		}
		c.errorf(e.Pos(), "bad unary operator %s", e.Op)
		return intTy
	case *ast.Binary:
		xt, yt := c.checkExpr(d, e.X), c.checkExpr(d, e.Y)
		switch e.Op {
		case ast.Add, ast.Sub, ast.Mul, ast.Div:
			if xt != intTy || yt != intTy {
				c.errorf(e.Pos(), "%s needs int operands, got %s and %s", e.Op, xt, yt)
			}
			return intTy
		case ast.Lt, ast.Gt, ast.Leq, ast.Geq:
			if xt != intTy || yt != intTy {
				c.errorf(e.Pos(), "%s needs int operands, got %s and %s", e.Op, xt, yt)
			}
			return boolTy
		case ast.Eq, ast.Neq:
			if xt != yt {
				c.errorf(e.Pos(), "%s compares %s with %s", e.Op, xt, yt)
			}
			if xt == boolTy {
				c.errorf(e.Pos(), "%s cannot compare booleans", e.Op)
			}
			return boolTy
		case ast.And, ast.Or:
			if xt != boolTy || yt != boolTy {
				c.errorf(e.Pos(), "%s needs bool operands, got %s and %s", e.Op, xt, yt)
			}
			return boolTy
		}
		c.errorf(e.Pos(), "bad binary operator %s", e.Op)
		return intTy
	}
	c.errorf(e.Pos(), "unknown expression %T", e)
	return intTy
}
