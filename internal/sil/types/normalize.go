package types

import (
	"fmt"

	"repro/internal/sil/ast"
	"repro/internal/sil/token"
)

// Normalize rewrites a checked program so that every statement is one of
// the paper's basic handle statements (§3.2): chained selectors such as
// a.left.right := b.right become sequences through fresh temporaries
// (t1 := a.left; t2 := b.right; t1.right := t2), nested function calls are
// hoisted into their own assignment statements, and handle arguments of
// calls become plain variable names (Figure 1's <HandleName>). Scalar
// assignments may keep int expressions with one-level .value reads — the
// granularity Figure 8 itself uses (h.value := h.value + n).
//
// Normalize mutates the program in place and returns it for chaining.
func Normalize(prog *ast.Program) *ast.Program {
	for _, d := range prog.Decls {
		n := &normalizer{prog: prog, decl: d, names: map[string]bool{}}
		for _, v := range d.Params {
			n.names[v.Name] = true
		}
		for _, v := range d.Locals {
			n.names[v.Name] = true
		}
		d.Body = n.normBlockStmt(d.Body)
		d.Locals = append(d.Locals, n.temps...)
	}
	return prog
}

type normalizer struct {
	prog  *ast.Program
	decl  *ast.ProcDecl
	names map[string]bool
	temps []*ast.VarDecl
	next  int
}

func (n *normalizer) fresh(t ast.Type, pos token.Pos) string {
	for {
		n.next++
		name := fmt.Sprintf("t%d", n.next)
		if !n.names[name] {
			n.names[name] = true
			n.temps = append(n.temps, &ast.VarDecl{Name: name, Type: t, NamePos: pos})
			return name
		}
	}
}

func (n *normalizer) emit(out *[]ast.Stmt, lhsName string, rhs ast.Expr, pos token.Pos) {
	*out = append(*out, &ast.Assign{Lhs: &ast.VarLV{Name: lhsName, NamePos: pos}, Rhs: rhs})
}

func (n *normalizer) normBlockStmt(b *ast.Block) *ast.Block {
	out := &ast.Block{BeginPos: b.BeginPos}
	for _, s := range b.Stmts {
		out.Stmts = append(out.Stmts, n.normStmt(s)...)
	}
	return out
}

// asBlock wraps a statement list as a single statement.
func asBlock(stmts []ast.Stmt, pos token.Pos) ast.Stmt {
	if len(stmts) == 1 {
		return stmts[0]
	}
	return &ast.Block{Stmts: stmts, BeginPos: pos}
}

func (n *normalizer) normStmt(s ast.Stmt) []ast.Stmt {
	switch s := s.(type) {
	case *ast.Block:
		return []ast.Stmt{n.normBlockStmt(s)}
	case *ast.Par:
		// Normalizing inside parallel branches could change the set of
		// temporaries shared across branches; each branch gets its own.
		np := &ast.Par{}
		for _, br := range s.Branches {
			np.Branches = append(np.Branches, asBlock(n.normStmt(br), br.Pos()))
		}
		return []ast.Stmt{np}
	case *ast.If:
		var pre []ast.Stmt
		cond := n.normCond(s.Cond, &pre)
		ni := &ast.If{Cond: cond, IfPos: s.IfPos, Then: asBlock(n.normStmt(s.Then), s.Then.Pos())}
		if s.Else != nil {
			ni.Else = asBlock(n.normStmt(s.Else), s.Else.Pos())
		}
		return append(pre, ni)
	case *ast.While:
		var pre []ast.Stmt
		cond := n.normCond(s.Cond, &pre)
		body := n.normStmt(s.Body)
		if len(pre) > 0 {
			// The hoisted prelude must re-execute before every test.
			body = append(body, pre...)
		}
		nw := &ast.While{Cond: cond, Body: asBlock(body, s.Body.Pos()), WhilePos: s.WhilePos}
		return append(append([]ast.Stmt{}, pre...), nw)
	case *ast.CallStmt:
		var pre []ast.Stmt
		callee := n.prog.Proc(s.Name)
		args := n.normArgs(callee, s.Args, &pre)
		return append(pre, &ast.CallStmt{Name: s.Name, Args: args, NamePos: s.NamePos})
	case *ast.Assign:
		return n.normAssign(s)
	}
	return []ast.Stmt{s}
}

func (n *normalizer) normArgs(callee *ast.ProcDecl, args []ast.Expr, pre *[]ast.Stmt) []ast.Expr {
	out := make([]ast.Expr, len(args))
	for i, a := range args {
		wantHandle := callee != nil && i < len(callee.Params) && callee.Params[i].Type == ast.HandleT
		if wantHandle {
			out[i] = n.handleName(a, pre)
		} else {
			out[i] = n.normIntExpr(a, pre)
		}
	}
	return out
}

// handleName reduces a handle expression to a plain variable reference,
// hoisting through temporaries as needed.
func (n *normalizer) handleName(e ast.Expr, pre *[]ast.Stmt) ast.Expr {
	switch e := e.(type) {
	case *ast.VarRef:
		return e
	case *ast.NilLit, *ast.NewExpr:
		t := n.fresh(ast.HandleT, e.Pos())
		n.emit(pre, t, e, e.Pos())
		return &ast.VarRef{Name: t, NamePos: e.Pos()}
	case *ast.FieldRef:
		fr := n.flattenFieldRef(e, pre)
		t := n.fresh(ast.HandleT, e.Pos())
		n.emit(pre, t, fr, e.Pos())
		return &ast.VarRef{Name: t, NamePos: e.Pos()}
	case *ast.CallExpr:
		var inner []ast.Stmt
		callee := n.prog.Proc(e.Name)
		args := n.normArgs(callee, e.Args, &inner)
		*pre = append(*pre, inner...)
		t := n.fresh(ast.HandleT, e.Pos())
		n.emit(pre, t, &ast.CallExpr{Name: e.Name, Args: args, NamePos: e.NamePos}, e.Pos())
		return &ast.VarRef{Name: t, NamePos: e.Pos()}
	}
	return e
}

// flattenFieldRef reduces a chained field reference to a one-level one,
// emitting temporaries for the chain prefix.
func (n *normalizer) flattenFieldRef(e *ast.FieldRef, pre *[]ast.Stmt) *ast.FieldRef {
	base := e.Base
	for _, f := range e.Chain {
		t := n.fresh(ast.HandleT, e.Pos())
		n.emit(pre, t, &ast.FieldRef{Base: base, Field: f, NamePos: e.NamePos}, e.Pos())
		base = t
	}
	return &ast.FieldRef{Base: base, Field: e.Field, NamePos: e.NamePos}
}

// normIntExpr normalizes an int expression: calls are hoisted, chained
// field references flattened; one-level .value reads remain inline.
func (n *normalizer) normIntExpr(e ast.Expr, pre *[]ast.Stmt) ast.Expr {
	switch e := e.(type) {
	case *ast.IntLit, *ast.VarRef, *ast.NilLit:
		return e
	case *ast.FieldRef:
		return n.flattenFieldRef(e, pre)
	case *ast.CallExpr:
		var inner []ast.Stmt
		callee := n.prog.Proc(e.Name)
		args := n.normArgs(callee, e.Args, &inner)
		*pre = append(*pre, inner...)
		resT := ast.IntT
		if callee != nil && callee.Result == ast.HandleT {
			resT = ast.HandleT
		}
		t := n.fresh(resT, e.Pos())
		n.emit(pre, t, &ast.CallExpr{Name: e.Name, Args: args, NamePos: e.NamePos}, e.Pos())
		return &ast.VarRef{Name: t, NamePos: e.Pos()}
	case *ast.Unary:
		return &ast.Unary{Op: e.Op, X: n.normIntExpr(e.X, pre), OpPos: e.OpPos}
	case *ast.Binary:
		return &ast.Binary{Op: e.Op, X: n.normIntExpr(e.X, pre), Y: n.normIntExpr(e.Y, pre)}
	}
	return e
}

// normCond normalizes a condition: boolean structure stays, comparison
// operands normalize like int expressions (handle comparands may stay
// one-level field references or names).
func (n *normalizer) normCond(e ast.Expr, pre *[]ast.Stmt) ast.Expr {
	switch e := e.(type) {
	case *ast.Binary:
		switch e.Op {
		case ast.And, ast.Or:
			return &ast.Binary{Op: e.Op, X: n.normCond(e.X, pre), Y: n.normCond(e.Y, pre)}
		default:
			return &ast.Binary{Op: e.Op, X: n.normIntExpr(e.X, pre), Y: n.normIntExpr(e.Y, pre)}
		}
	case *ast.Unary:
		if e.Op == ast.Not {
			return &ast.Unary{Op: ast.Not, X: n.normCond(e.X, pre), OpPos: e.OpPos}
		}
	}
	return n.normIntExpr(e, pre)
}

// normAssign rewrites one assignment into basic statements.
func (n *normalizer) normAssign(s *ast.Assign) []ast.Stmt {
	var pre []ast.Stmt
	switch lhs := s.Lhs.(type) {
	case *ast.VarLV:
		v := n.decl.Lookup(lhs.Name)
		isHandle := v != nil && v.Type == ast.HandleT
		if isHandle {
			rhs := n.normHandleRHS(s.Rhs, &pre)
			return append(pre, &ast.Assign{Lhs: lhs, Rhs: rhs})
		}
		if call, ok := s.Rhs.(*ast.CallExpr); ok {
			// Keep x := f(args) as one basic statement instead of routing
			// the result through a temp. (This must be decided BEFORE
			// normIntExpr sees the expression: it would hoist the call into
			// a fresh temp whose declaration leaked into the locals even
			// though the hoisted statement was discarded — the bug that made
			// Normalize non-idempotent, growing t-locals on every pass.)
			var inner []ast.Stmt
			callee := n.prog.Proc(call.Name)
			args := n.normArgs(callee, call.Args, &inner)
			return append(inner, &ast.Assign{Lhs: lhs, Rhs: &ast.CallExpr{Name: call.Name, Args: args, NamePos: call.NamePos}})
		}
		rhs := n.normIntExpr(s.Rhs, &pre)
		return append(pre, &ast.Assign{Lhs: lhs, Rhs: rhs})
	case *ast.FieldLV:
		base := lhs.Base
		for _, f := range lhs.Chain {
			t := n.fresh(ast.HandleT, lhs.Pos())
			n.emit(&pre, t, &ast.FieldRef{Base: base, Field: f, NamePos: lhs.NamePos}, lhs.Pos())
			base = t
		}
		flat := &ast.FieldLV{Base: base, Field: lhs.Field, NamePos: lhs.NamePos}
		if lhs.Field == ast.Value {
			rhs := n.normIntExpr(s.Rhs, &pre)
			return append(pre, &ast.Assign{Lhs: flat, Rhs: rhs})
		}
		// a.left := h  — h must be a plain name or nil.
		switch rhs := s.Rhs.(type) {
		case *ast.NilLit:
			return append(pre, &ast.Assign{Lhs: flat, Rhs: rhs})
		default:
			name := n.handleName(s.Rhs, &pre)
			return append(pre, &ast.Assign{Lhs: flat, Rhs: name})
		}
	}
	return []ast.Stmt{s}
}

// normHandleRHS normalizes the right side of a := <handle expr> into a
// basic form: nil, new(), b, b.f, or f(args).
func (n *normalizer) normHandleRHS(e ast.Expr, pre *[]ast.Stmt) ast.Expr {
	switch e := e.(type) {
	case *ast.NilLit, *ast.NewExpr, *ast.VarRef:
		return e
	case *ast.FieldRef:
		return n.flattenFieldRef(e, pre)
	case *ast.CallExpr:
		var inner []ast.Stmt
		callee := n.prog.Proc(e.Name)
		args := n.normArgs(callee, e.Args, &inner)
		*pre = append(*pre, inner...)
		return &ast.CallExpr{Name: e.Name, Args: args, NamePos: e.NamePos}
	}
	return e
}
