package path

import (
	"fmt"
	"strings"
)

// Parse parses a single path in the notation produced by Path.String into
// the process-default Space: "S", "S?", "L1", "L+", "L2+", "R1D+?", and so
// on. A "^" between the direction letter and the count is accepted, so the
// paper's spelling "L^1L+L^2" parses too.
func Parse(src string) (Path, error) { return procSpace.Parse(src) }

// Parse parses a single path into a Path owned by sp.
func (sp *Space) Parse(src string) (Path, error) {
	orig := src
	src = strings.ReplaceAll(strings.TrimSpace(src), "^", "")
	possible := false
	if strings.HasSuffix(src, "?") {
		possible = true
		src = strings.TrimSuffix(src, "?")
	}
	if src == "S" {
		if possible {
			return SamePossible(), nil
		}
		return Same(), nil
	}
	var segs []Seg
	i := 0
	for i < len(src) {
		var d Dir
		switch src[i] {
		case 'L':
			d = LeftD
		case 'R':
			d = RightD
		case 'D':
			d = DownD
		default:
			return Path{}, fmt.Errorf("path: parse %q: unexpected %q at %d", orig, src[i], i)
		}
		i++
		n := 0
		hasDigits := false
		for i < len(src) && src[i] >= '0' && src[i] <= '9' {
			n = n*10 + int(src[i]-'0')
			hasDigits = true
			i++
		}
		inf := false
		if i < len(src) && src[i] == '+' {
			inf = true
			i++
		}
		switch {
		case inf && !hasDigits:
			segs = append(segs, Plus(d))
		case inf:
			segs = append(segs, AtLeast(d, n))
		case hasDigits:
			if n < 1 {
				return Path{}, fmt.Errorf("path: parse %q: zero-length segment", orig)
			}
			segs = append(segs, Exact(d, n))
		default:
			return Path{}, fmt.Errorf("path: parse %q: direction %s needs a count or +", orig, d)
		}
	}
	if len(segs) == 0 {
		return Path{}, fmt.Errorf("path: parse %q: empty path (use S)", orig)
	}
	return newPathIn(sp, segs, possible), nil
}

// MustParse is Parse for test fixtures and package examples; it panics on
// malformed input.
func MustParse(src string) Path {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

// MustParseSet is ParseSet for test fixtures; it panics on malformed input.
func MustParseSet(src string) Set {
	s, err := ParseSet(src)
	if err != nil {
		panic(err)
	}
	return s
}
