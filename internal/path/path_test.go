package path

import (
	"strings"
	"testing"
)

func TestDirString(t *testing.T) {
	cases := map[Dir]string{LeftD: "L", RightD: "R", DownD: "D", Dir(9): "Dir(9)"}
	for d, want := range cases {
		if got := d.String(); got != want {
			t.Errorf("Dir(%d).String() = %q, want %q", d, got, want)
		}
	}
}

func TestSegString(t *testing.T) {
	cases := []struct {
		seg  Seg
		want string
	}{
		{Exact(LeftD, 1), "L1"},
		{Exact(LeftD, 3), "L3"},
		{Plus(RightD), "R+"},
		{AtLeast(DownD, 2), "D2+"},
		{Plus(DownD), "D+"},
	}
	for _, c := range cases {
		if got := c.seg.String(); got != c.want {
			t.Errorf("%+v.String() = %q, want %q", c.seg, got, c.want)
		}
	}
}

func TestPathStringAndSame(t *testing.T) {
	if got := Same().String(); got != "S" {
		t.Errorf("Same().String() = %q", got)
	}
	if got := SamePossible().String(); got != "S?" {
		t.Errorf("SamePossible().String() = %q", got)
	}
	p := New(Exact(LeftD, 1), Plus(LeftD), Exact(LeftD, 2))
	if got := p.String(); got != "L4+" {
		t.Errorf("canon coalescing: got %q, want L4+", got)
	}
	q := NewPossible(Exact(RightD, 1), Plus(DownD))
	if got := q.String(); got != "R1D+?" {
		t.Errorf("got %q, want R1D+?", got)
	}
}

func TestCanonDropsEmptySegments(t *testing.T) {
	p := New(Exact(LeftD, 0), Exact(RightD, 1))
	if got := p.String(); got != "R1" {
		t.Errorf("got %q, want R1", got)
	}
	if !New().IsSame() {
		t.Error("New() with no segs should be S")
	}
}

func TestExtend(t *testing.T) {
	cases := []struct {
		start string
		d     Dir
		want  string
	}{
		{"S", RightD, "R1"},
		{"R1", LeftD, "R1L1"},
		{"L2", LeftD, "L3"},
		{"L+", LeftD, "L2+"},
		{"D+", RightD, "D+R1"},
		{"R1D+?", LeftD, "R1D+L1?"},
	}
	for _, c := range cases {
		got := MustParse(c.start).Extend(c.d).String()
		if got != c.want {
			t.Errorf("Extend(%s, %s) = %q, want %q", c.start, c.d, got, c.want)
		}
	}
}

func TestConcat(t *testing.T) {
	p := MustParse("L1").Concat(MustParse("L+"))
	if got := p.String(); got != "L2+" {
		t.Errorf("L1·L+ = %q, want L2+", got)
	}
	q := MustParse("L1").Concat(MustParse("R1?"))
	if got := q.String(); got != "L1R1?" {
		t.Errorf("definite·possible = %q, want L1R1?", got)
	}
}

// TestResiduePaper checks the residue rules against the paper's Figure 2.
func TestResiduePaper(t *testing.T) {
	cases := []struct {
		in   string
		f    Dir
		want []string // sorted expected strings; nil means no paths
	}{
		// Fig 2(b): a→c = R1D+, d := a.right ⇒ d→c = D+ (definite).
		{"R1D+", RightD, []string{"D+"}},
		// Fig 2(c): d→c = D+, e := d.left ⇒ e→c ∈ {S?, D+?}.
		{"D+", LeftD, []string{"S?", "D+?"}},
		// Opposite concrete direction: no path.
		{"R1D+", LeftD, nil},
		{"R2", RightD, []string{"R1"}},
		{"L1", LeftD, []string{"S"}},
		{"L+", LeftD, []string{"S?", "L+?"}},
		{"L2+", LeftD, []string{"L+"}},
		{"L1R1", LeftD, []string{"R1"}},
		{"D1", LeftD, []string{"S?"}},
		{"D3", RightD, []string{"D2?"}},
		{"D2+", LeftD, []string{"D+?"}},
		// Possible inputs stay possible.
		{"L1?", LeftD, []string{"S?"}},
	}
	for _, c := range cases {
		got := MustParse(c.in).Residue(c.f)
		var gotS []string
		for _, p := range got {
			gotS = append(gotS, p.String())
		}
		if strings.Join(gotS, " ") != strings.Join(c.want, " ") {
			t.Errorf("Residue(%s, %s) = %v, want %v", c.in, c.f, gotS, c.want)
		}
	}
}

func TestResidueOfSameIsNoPath(t *testing.T) {
	if got := Same().Residue(LeftD); len(got) != 0 {
		t.Errorf("Residue(S, L) = %v, want none (upward paths are not recorded)", got)
	}
}

func TestBoundedAndMinLen(t *testing.T) {
	p := MustParse("L1R2")
	if n := p.MinLen(); n != 3 {
		t.Errorf("MinLen = %d, want 3", n)
	}
	if max, ok := p.Bounded(); !ok || max != 3 {
		t.Errorf("Bounded = %d,%v, want 3,true", max, ok)
	}
	q := MustParse("L1D+")
	if _, ok := q.Bounded(); ok {
		t.Error("L1D+ should be unbounded")
	}
	if n := q.MinLen(); n != 2 {
		t.Errorf("MinLen(L1D+) = %d, want 2", n)
	}
}

func TestParseRoundTrip(t *testing.T) {
	cases := []string{"S", "S?", "L1", "L+", "L2+", "R1D+?", "D+", "L1R1L1R1"}
	for _, src := range cases {
		p, err := Parse(src)
		if err != nil {
			t.Fatalf("Parse(%q): %v", src, err)
		}
		if got := p.String(); got != src {
			t.Errorf("round trip %q -> %q", src, got)
		}
	}
	// Paper's caret spelling.
	p := MustParse("L^1L+L^2")
	if got := p.String(); got != "L4+" {
		t.Errorf("caret form: got %q", got)
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{"X1", "L", "L0", "?", "1L"} {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestCompareOrdering(t *testing.T) {
	a, b := MustParse("L1"), MustParse("L1?")
	if a.Compare(b) >= 0 {
		t.Error("definite should order before possible")
	}
	if b.Compare(a) <= 0 {
		t.Error("Compare should be antisymmetric")
	}
	if a.Compare(a) != 0 {
		t.Error("Compare should be reflexive-zero")
	}
	if Same().Compare(MustParse("L1")) >= 0 {
		t.Error("S orders before non-empty paths")
	}
}

func TestEqualAndEqualExpr(t *testing.T) {
	a, b := MustParse("L1D+"), MustParse("L1D+?")
	if !a.EqualExpr(b) {
		t.Error("EqualExpr should ignore flags")
	}
	if a.Equal(b) {
		t.Error("Equal should respect flags")
	}
	if !a.AsPossible().Equal(b) {
		t.Error("AsPossible should produce b")
	}
	if !b.AsDefinite().Equal(a) {
		t.Error("AsDefinite should produce a")
	}
}
