package path

import (
	"math/rand"
	"os"
	"strconv"
	"strings"
	"testing"
	"testing/quick"
)

func TestMayOverlapBasics(t *testing.T) {
	cases := []struct {
		p, q string
		want bool
	}{
		{"S", "S", true},
		{"S", "L1", false},
		{"L1", "L1", true},
		{"L1", "R1", false},
		{"L1", "D1", true},
		{"L2", "L+", true},
		{"L1", "L2+", false},
		{"L+", "R+", false},
		{"D+", "R1", true},
		{"D+", "S", false},
		{"L1R1", "D2", true},
		{"L1R1", "L1L1", false},
		{"L1R1", "L+", false},
		{"L+R1", "D+", true},
		{"L1D+", "L1R1", true},
		{"L1D+", "R1D+", false},
		{"L2+", "L3", true},
		{"L2+", "L1", false},
	}
	for _, c := range cases {
		if got := MayOverlap(MustParse(c.p), MustParse(c.q)); got != c.want {
			t.Errorf("MayOverlap(%s, %s) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestMayOverlapSymmetric(t *testing.T) {
	f := func(a, b concretePathGen) bool {
		p, q := a.path(), b.path()
		return MayOverlap(p, q) == MayOverlap(q, p)
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestMayStrictPrefixBasics(t *testing.T) {
	cases := []struct {
		p, q string
		want bool
	}{
		{"S", "L1", true},
		{"S", "S", false},
		{"L1", "L1", false},
		{"L1", "L2", true},
		{"L1", "L+", true},
		{"L+", "L1", false}, // every word of L+ has length >= 1; prefix must be strict
		{"L+", "L2", true},  // L1 is a strict prefix of L2
		{"L1", "R2", false},
		{"L1", "L1R1", true},
		{"D+", "R1D+", true},
		{"R1", "L1D+", false},
		{"L1R1", "L1R1D+", true},
	}
	for _, c := range cases {
		if got := MayStrictPrefix(MustParse(c.p), MustParse(c.q)); got != c.want {
			t.Errorf("MayStrictPrefix(%s, %s) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

func TestMayRouteThrough(t *testing.T) {
	// A path x→y = L1R1D+ may route through the R edge out of the node at
	// x·L1, but not through the L edge out of that node.
	pxy := MustParse("L1R1D+")
	pa := MustParse("L1")
	if !MayRouteThrough(pxy, pa, RightD) {
		t.Error("L1R1D+ should route through R edge after L1")
	}
	if MayRouteThrough(pxy, pa, LeftD) {
		t.Error("L1R1D+ cannot route through L edge after L1")
	}
	// Routing through the very last edge (overlap case).
	if !MayRouteThrough(MustParse("L1R1"), MustParse("L1"), RightD) {
		t.Error("the final edge counts as routed-through")
	}
	// S as pa: route through the first edge.
	if !MayRouteThrough(MustParse("L1D+"), Same(), LeftD) {
		t.Error("route through first edge from the node itself")
	}
	if MayRouteThrough(MustParse("R1"), Same(), LeftD) {
		t.Error("R1 does not start with an L edge")
	}
}

// ---------- property tests against brute-force enumeration ----------

// concretePathGen is a quick-generatable recipe for a small path expression.
type concretePathGen struct {
	Seed int64
}

func (g concretePathGen) path() Path {
	rng := rand.New(rand.NewSource(g.Seed))
	n := rng.Intn(4)
	segs := make([]Seg, 0, n)
	for i := 0; i < n; i++ {
		d := Dir(rng.Intn(3))
		if rng.Intn(2) == 0 {
			segs = append(segs, Exact(d, 1+rng.Intn(3)))
		} else {
			segs = append(segs, AtLeast(d, 1+rng.Intn(2)))
		}
	}
	p := New(segs...)
	if rng.Intn(2) == 0 {
		p = p.AsPossible()
	}
	return p
}

// quickCfg sizes the randomized property suites. The scheduled CI
// soundness job raises the budget via SIL_QUICK_SCALE (a multiplier on the
// default count); local and per-PR runs keep the fast default.
func quickCfg() *quick.Config { return &quick.Config{MaxCount: 300 * quickScale()} }

func quickScale() int {
	if v, err := strconv.Atoi(os.Getenv("SIL_QUICK_SCALE")); err == nil && v > 0 {
		return v
	}
	return 1
}

// words enumerates every word of the path language up to maxLen letters
// over {l, r} ('l' and 'r' runes), treating D as either letter.
func words(p Path, maxLen int) map[string]bool {
	out := map[string]bool{}
	var rec func(segIdx int, prefix string)
	rec = func(segIdx int, prefix string) {
		if segIdx == len(p.segs()) {
			out[prefix] = true
			return
		}
		s := p.segs()[segIdx]
		var letters []string
		switch s.Dir {
		case LeftD:
			letters = []string{"l"}
		case RightD:
			letters = []string{"r"}
		default:
			letters = []string{"l", "r"}
		}
		hi := s.Min
		if s.Inf {
			hi = maxLen - len(prefix) // enumerate as far as the budget allows
		}
		var grow func(count int, cur string)
		grow = func(count int, cur string) {
			if len(cur) > maxLen {
				return
			}
			if count >= s.Min {
				rec(segIdx+1, cur)
			}
			if count >= hi {
				return
			}
			for _, l := range letters {
				grow(count+1, cur+l)
			}
		}
		grow(0, prefix)
	}
	rec(0, "")
	// Drop words that exceeded the budget inside recursion.
	for w := range out {
		if len(w) > maxLen {
			delete(out, w)
		}
	}
	return out
}

// TestMayOverlapMatchesEnumeration cross-checks the NFA product against
// brute-force word enumeration on random small paths.
func TestMayOverlapMatchesEnumeration(t *testing.T) {
	const maxLen = 7
	f := func(a, b concretePathGen) bool {
		p, q := a.path(), b.path()
		wp, wq := words(p, maxLen), words(q, maxLen)
		brute := false
		for w := range wp {
			if wq[w] {
				brute = true
				break
			}
		}
		got := MayOverlap(p, q)
		if brute && !got {
			t.Logf("enumeration finds overlap NFA misses: %s vs %s", p, q)
			return false
		}
		// got && !brute can legitimately happen when the only common words
		// are longer than maxLen; verify with a larger budget before failing.
		if got && !brute {
			wp2, wq2 := words(p, maxLen+6), words(q, maxLen+6)
			for w := range wp2 {
				if wq2[w] {
					return true
				}
			}
			t.Logf("NFA claims overlap enumeration refutes: %s vs %s", p, q)
			return false
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestMayStrictPrefixMatchesEnumeration does the same for the prefix test.
func TestMayStrictPrefixMatchesEnumeration(t *testing.T) {
	const maxLen = 7
	f := func(a, b concretePathGen) bool {
		p, q := a.path(), b.path()
		wp, wq := words(p, maxLen), words(q, maxLen)
		brute := false
	outer:
		for wa := range wp {
			for wb := range wq {
				if len(wa) < len(wb) && strings.HasPrefix(wb, wa) {
					brute = true
					break outer
				}
			}
		}
		got := MayStrictPrefix(p, q)
		if brute && !got {
			t.Logf("enumeration finds prefix NFA misses: %s vs %s", p, q)
			return false
		}
		if got && !brute {
			wp2, wq2 := words(p, maxLen+6), words(q, maxLen+6)
			for wa := range wp2 {
				for wb := range wq2 {
					if len(wa) < len(wb) && strings.HasPrefix(wb, wa) {
						return true
					}
				}
			}
			t.Logf("NFA claims prefix enumeration refutes: %s vs %s", p, q)
			return false
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestResidueSoundVsEnumeration: for every word w = f·w' in L(p), the word
// w' must be covered by some residue path. This is the soundness condition
// the transfer function for a := b.f relies on.
func TestResidueSoundVsEnumeration(t *testing.T) {
	const maxLen = 6
	letters := map[Dir]string{LeftD: "l", RightD: "r"}
	f := func(a concretePathGen, fLeft bool) bool {
		p := a.path()
		dir := LeftD
		if !fLeft {
			dir = RightD
		}
		res := p.Residue(dir)
		covered := map[string]bool{}
		for _, r := range res {
			for w := range words(r, maxLen) {
				covered[w] = true
			}
		}
		for w := range words(p, maxLen) {
			if len(w) == 0 || string(w[0]) != letters[dir] {
				continue
			}
			if !covered[w[1:]] {
				t.Logf("residue(%s, %s) misses suffix %q of word %q (got %v)", p, dir, w[1:], w, res)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestExtendSoundVsEnumeration: L(p)·f ⊆ L(p.Extend(f)).
func TestExtendSoundVsEnumeration(t *testing.T) {
	const maxLen = 6
	letters := map[Dir]string{LeftD: "l", RightD: "r"}
	f := func(a concretePathGen, fLeft bool) bool {
		p := a.path()
		dir := LeftD
		if !fLeft {
			dir = RightD
		}
		ext := words(p.Extend(dir), maxLen+1)
		for w := range words(p, maxLen) {
			if !ext[w+letters[dir]] {
				t.Logf("extend(%s, %s) misses %q", p, dir, w+letters[dir])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}
