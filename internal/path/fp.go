package path

// Order-independent 128-bit fingerprints for path sets. Every member
// contributes a two-lane hash of its interned node ID and definiteness
// flag; lanes combine by modular addition, so the set fingerprint is
// independent of member order, incrementally maintainable under Add (and
// subtractable when a possible member upgrades to definite in place), and
// rolls up further into the per-matrix fingerprint that replaces the old
// string Matrix.Key. Fingerprint equality is a fast filter, not an
// identity: consumers that key caches by fingerprints keep a structural
// equality fallback for the (astronomically unlikely) collision.

// Mix64 is the splitmix64 finalizer: a cheap full-avalanche bijection used
// to turn small structured integers (IDs, packed keys) into hash lanes. It
// is exported for the matrix package's fingerprint roll-up.
func Mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

const (
	fpSeedLo uint64 = 0x9e3779b97f4a7c15
	fpSeedHi uint64 = 0xc2b2ae3d27d4eb4f
)

// pathFP is the two-lane member hash of one path: interned expression ID
// plus the definiteness flag.
func pathFP(p Path) [2]uint64 {
	x := uint64(p.ID()) << 1
	if p.possible {
		x |= 1
	}
	return [2]uint64{Mix64(x + fpSeedLo), Mix64(Mix64(x) + fpSeedHi)}
}

// mkSet builds a Set around an already-canonical member slice, computing
// its fingerprint. The caller transfers ownership of ps.
func mkSet(ps []Path) Set {
	if len(ps) == 0 {
		return Set{}
	}
	s := Set{ps: ps}
	for _, p := range ps {
		f := pathFP(p)
		s.fp[0] += f[0]
		s.fp[1] += f[1]
	}
	return s
}

// Fingerprint returns the set's order-independent 128-bit fingerprint.
// Equal sets (same expressions and flags) always have equal fingerprints;
// distinct sets collide with probability ~2^-128. Fingerprints are only
// comparable within one Space epoch.
func (s Set) Fingerprint() [2]uint64 { return s.fp }
