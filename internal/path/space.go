package path

import (
	"sync"
	"sync/atomic"
)

// A Space owns every table behind the path-expression algebra: the sharded
// intern table that canonicalizes expressions to unique nodes, the memoized
// verdict shards for the language questions (Subsumes, MayOverlap,
// MayStrictPrefix), and the residue cache. PR 1 made these tables
// process-global and append-only — the degenerate no-eviction cache policy.
// A Space makes the epoch explicit so a long-lived service can return the
// memory between analysis batches, and NewSpace lets that service give
// each worker its own independent table set:
//
//	sp := path.NewSpace()  // a private Space with its own epoch lifecycle
//	stats := sp.Stats()    // table sizes + memo hit rate
//	sp.Reset()             // drop every table, start an epoch
//
// Every interned node remembers its owning Space, so derived operations
// (Extend, Concat, Residue, Widen, the verdict questions) stay inside the
// operands' Space automatically; only operations that create a non-empty
// expression from nothing — New, NewPossible, Parse, and extending S —
// need the explicit *Space-receiver forms. The package-level forms use the
// process-default Space, a convenience for one-shot CLI runs and tests.
//
// Epoch contract: Reset must not run concurrently with operations on the
// same Space, and Path, Set, or matrix values created before a Reset must
// not be mixed into values built after it — the old interned nodes are no
// longer in the table, so a re-interned equal expression would compare
// unequal. Node IDs are allocated from one process-wide monotonic counter
// and never reused across epochs or Spaces, which keeps the failure mode
// of a violated contract benign: a stale value (from an old epoch or a
// foreign Space) can at worst miss the fresh caches, never collide with a
// live ID and corrupt a verdict.
type Space struct {
	shards [internShards]internShard
	// interned counts the nodes in the current epoch's table.
	interned atomic.Int64
	epoch    atomic.Uint64

	subsume memoTable
	overlap memoTable
	prefix  memoTable
	residue residueTable

	hookMu sync.Mutex
	hooks  []func()
}

func newSpace() *Space {
	sp := &Space{}
	for i := range sp.shards {
		sp.shards[i].m = make(map[uint64][]*pnode)
	}
	sp.residue.m = make(map[uint64][]Path)
	return sp
}

// NewSpace builds an independent Space with its own intern, memo, and
// residue tables and its own epoch lifecycle. Resetting one Space never
// touches another, which is what lets a sharded service give every session
// worker a private Space and keep epoch resets worker-local.
func NewSpace() *Space { return newSpace() }

// procSpace is the process default every package-level path operation uses.
var procSpace = newSpace()

// DefaultSpace returns the process-wide default Space (the convenience for
// one-shot CLI runs; long-lived services construct their own via NewSpace).
func DefaultSpace() *Space { return procSpace }

// Epoch returns the number of Resets this Space has seen.
func (sp *Space) Epoch() uint64 { return sp.epoch.Load() }

// OnReset registers a hook run at the end of every Reset. Packages layered
// on top of path (e.g. the matrix handle interner) use it to tie their own
// epoch-scoped tables to the same reset, so one call drops the whole
// analysis cache hierarchy.
func (sp *Space) OnReset(f func()) {
	sp.hookMu.Lock()
	sp.hooks = append(sp.hooks, f)
	sp.hookMu.Unlock()
}

// Reset starts a new epoch: the intern table, the three verdict memo
// tables, and the residue cache are replaced by fresh empty maps (returning
// their memory to the allocator) and the hit/miss counters restart at zero.
// See the type comment for the epoch contract.
func (sp *Space) Reset() {
	sp.epoch.Add(1)
	for i := range sp.shards {
		sh := &sp.shards[i]
		sh.mu.Lock()
		sh.m = make(map[uint64][]*pnode)
		sh.mu.Unlock()
	}
	sp.interned.Store(0)
	sp.subsume.reset()
	sp.overlap.reset()
	sp.prefix.reset()
	sp.residue.mu.Lock()
	sp.residue.m = make(map[uint64][]Path)
	sp.residue.mu.Unlock()
	sp.hookMu.Lock()
	hooks := append([]func(){}, sp.hooks...)
	sp.hookMu.Unlock()
	for _, f := range hooks {
		f()
	}
}

// SpaceStats is a point-in-time snapshot of a Space's table sizes and memo
// traffic (the monitoring surface for silbench and service dashboards).
type SpaceStats struct {
	Epoch           uint64
	InternedPaths   int
	SubsumeVerdicts int
	OverlapVerdicts int
	PrefixVerdicts  int
	ResidueEntries  int
	MemoHits        uint64
	MemoMisses      uint64
}

// Verdicts is the total number of memoized language-question verdicts.
func (st SpaceStats) Verdicts() int {
	return st.SubsumeVerdicts + st.OverlapVerdicts + st.PrefixVerdicts
}

// HitRate is the fraction of memo lookups answered from cache (0 when no
// lookups happened yet).
func (st SpaceStats) HitRate() float64 {
	total := st.MemoHits + st.MemoMisses
	if total == 0 {
		return 0
	}
	return float64(st.MemoHits) / float64(total)
}

// Stats snapshots the current epoch's table sizes and counters.
func (sp *Space) Stats() SpaceStats {
	st := SpaceStats{
		Epoch:           sp.epoch.Load(),
		InternedPaths:   int(sp.interned.Load()),
		SubsumeVerdicts: sp.subsume.size(),
		OverlapVerdicts: sp.overlap.size(),
		PrefixVerdicts:  sp.prefix.size(),
	}
	for _, t := range []*memoTable{&sp.subsume, &sp.overlap, &sp.prefix} {
		h, m := t.traffic()
		st.MemoHits += h
		st.MemoMisses += m
	}
	sp.residue.mu.RLock()
	st.ResidueEntries = len(sp.residue.m)
	sp.residue.mu.RUnlock()
	return st
}
