package path

import (
	"sync"
	"testing"
	"testing/quick"
)

// TestCanonicalEqualLanguages: intern-time canonicalization gives every
// path language exactly one spelling. The decisive oracle is the exact
// subsumption procedure: mutual inclusion means equal languages, which
// must mean the same interned node. This is the invariant that lets
// dropSubsumed drop every covered possible member without the old
// mutual-subsumption tie break.
func TestCanonicalEqualLanguages(t *testing.T) {
	cases := []struct{ a, b string }{
		{"R+D2+", "R1D2+"}, // the ROADMAP example
		{"L+D+", "L1D+"},
		{"D+L+", "D+L1"},
		{"L+D+L+", "L1D+L1"},
		{"L2+D+", "L2D+"},
		{"D3+R+", "D3+R1"},
	}
	for _, c := range cases {
		p, q := MustParse(c.a), MustParse(c.b)
		if p.ID() != q.ID() {
			t.Errorf("%s and %s denote the same language but interned apart (%s vs %s)",
				c.a, c.b, p.ExprString(), q.ExprString())
		}
	}
	// Spellings that must NOT collapse (the absorption rule requires an
	// adjacent D^{>=m} neighbor).
	distinct := []struct{ a, b string }{
		{"L+D1", "L1D1"},
		{"L+D2", "L2D2"},
		{"L+R1D+", "L1R1D+"},
		{"L+", "L1"},
	}
	for _, c := range distinct {
		if MustParse(c.a).ID() == MustParse(c.b).ID() {
			t.Errorf("%s and %s denote different languages but interned together", c.a, c.b)
		}
	}
	f := func(a, b concretePathGen) bool {
		p, q := a.path(), b.path()
		if Subsumes(p, q) && Subsumes(q, p) && p.ID() != q.ID() {
			t.Logf("equal languages, distinct nodes: %s vs %s", p.ExprString(), q.ExprString())
			return false
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestSpaceResetDropsTables: Reset must return every table to size zero
// (the memory bound of the long-lived service mode), restart the counters,
// and leave the algebra fully functional — fresh interning and fresh
// verdicts must agree with the uncached decision procedures.
func TestSpaceResetDropsTables(t *testing.T) {
	sp := DefaultSpace()
	p, q := MustParse("L1D2+"), MustParse("L+D+")
	_ = Subsumes(p, q)
	_ = MayOverlap(p, q)
	_ = MayStrictPrefix(p, q)
	_ = p.Residue(LeftD)
	st := sp.Stats()
	if st.InternedPaths == 0 || st.Verdicts() == 0 || st.ResidueEntries == 0 {
		t.Fatalf("tables unexpectedly empty before reset: %+v", st)
	}
	epoch := sp.Epoch()
	sp.Reset()
	st = sp.Stats()
	if st.InternedPaths != 0 || st.Verdicts() != 0 || st.ResidueEntries != 0 ||
		st.MemoHits != 0 || st.MemoMisses != 0 {
		t.Fatalf("counters must drop to zero after Reset: %+v", st)
	}
	if sp.Epoch() != epoch+1 {
		t.Fatalf("epoch = %d, want %d", sp.Epoch(), epoch+1)
	}
	// The new epoch re-interns and re-memoizes correctly.
	f := func(a, b concretePathGen) bool {
		p, q := a.path(), b.path()
		return Subsumes(p, q) == subsumesSlow(p.Segs(), q.Segs()) &&
			MayOverlap(p, q) == mayOverlapSlow(p.Segs(), q.Segs())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
	if sp.Stats().InternedPaths == 0 {
		t.Error("new epoch should intern again")
	}
	if InternedCount() != sp.Stats().InternedPaths {
		t.Error("InternedCount must track the current epoch")
	}
}

// TestSpaceResetHooks: OnReset hooks run on every Reset (the mechanism the
// matrix handle table uses to join the epoch).
func TestSpaceResetHooks(t *testing.T) {
	sp := DefaultSpace()
	var mu sync.Mutex
	calls := 0
	sp.OnReset(func() { mu.Lock(); calls++; mu.Unlock() })
	sp.Reset()
	sp.Reset()
	mu.Lock()
	defer mu.Unlock()
	if calls != 2 {
		t.Errorf("hook ran %d times, want 2", calls)
	}
}

// TestStaleEpochPathsAreBenign documents the failure mode of a violated
// epoch contract: a Path interned before a Reset keeps working against
// itself (pointer identity) and can never share an ID with a node interned
// afterwards, because IDs are not reused across epochs.
func TestStaleEpochPathsAreBenign(t *testing.T) {
	sp := DefaultSpace()
	stale := MustParse("L3R2D1")
	sp.Reset()
	fresh := MustParse("L3R2D1")
	if stale.ID() == fresh.ID() {
		t.Error("IDs must not be reused across epochs")
	}
	if !stale.Equal(stale) || stale.Equal(fresh) {
		t.Error("stale paths compare by identity only")
	}
}
