package path

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestSetAddDefiniteWins(t *testing.T) {
	s := NewSet(MustParse("L1?"), MustParse("L1"))
	if got := s.String(); got != "L1" {
		t.Errorf("definite should absorb possible duplicate: %q", got)
	}
	s2 := NewSet(MustParse("L1"), MustParse("L1?"))
	if !s.Equal(s2) {
		t.Error("Add order should not matter")
	}
}

func TestSetStringAndParse(t *testing.T) {
	s := NewSet(MustParse("R1D+?"), MustParse("S"), MustParse("L+"))
	// Canonical order: S first (empty segs), then L before R.
	if got := s.String(); got != "S, L+, R1D+?" {
		t.Errorf("String = %q", got)
	}
	back := MustParseSet(s.String())
	if !back.Equal(s) {
		t.Errorf("ParseSet round trip: %q -> %q", s, back)
	}
	if !MustParseSet("{}").IsEmpty() {
		t.Error("{} should parse empty")
	}
	if !MustParseSet("").IsEmpty() {
		t.Error("empty string should parse empty")
	}
	if _, err := ParseSet("L1, X"); err == nil {
		t.Error("bad member should fail")
	}
}

// TestSetCanonicalOrderInvariant pins the invariant Add relies on when it
// upgrades a possible member to definite in place without re-sorting:
// members stay strictly sorted by Compare and unique by expression, which
// holds because Compare is definiteness-blind between distinct expressions
// (the flag is consulted only to order equal expressions). The maintained
// fingerprint must also always match a from-scratch recomputation.
func TestSetCanonicalOrderInvariant(t *testing.T) {
	canonical := func(s Set) error {
		for i := 1; i < s.Len(); i++ {
			if c := s.ps[i-1].Compare(s.ps[i]); c >= 0 {
				return fmt.Errorf("members %s, %s out of order (Compare=%d)", s.ps[i-1], s.ps[i], c)
			}
			if s.ps[i-1].EqualExpr(s.ps[i]) {
				return fmt.Errorf("duplicate expression %s", s.ps[i].ExprString())
			}
		}
		if got := mkSet(append([]Path(nil), s.ps...)).fp; got != s.fp {
			return fmt.Errorf("incremental fingerprint diverged from recomputation")
		}
		return nil
	}
	f := func(gens [6]concretePathGen, flips [6]bool) bool {
		var s Set
		for i, g := range gens {
			p := g.path()
			// Exercise both flag spellings of the same expression so the
			// in-place possible→definite upgrade path runs often.
			if flips[i] {
				s = s.Add(p.AsPossible())
				s = s.Add(p.AsDefinite())
			} else {
				s = s.Add(p)
			}
			if err := canonical(s); err != nil {
				t.Logf("after Add(%s): %v (set %s)", p, err, s)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestSetAddUpgradeInPlace: upgrading a possible member to definite keeps
// the member at its canonical position among unrelated expressions.
func TestSetAddUpgradeInPlace(t *testing.T) {
	s := MustParseSet("L1, L2?, R1")
	s = s.Add(MustParse("L2"))
	if got := s.String(); got != "L1, L2, R1" {
		t.Errorf("upgrade = %q, want L1, L2, R1", got)
	}
	if !s.Equal(MustParseSet("L1, L2, R1")) {
		t.Error("upgraded set must equal the directly built set")
	}
	// Fingerprints agree with the directly built spelling too.
	if s.Fingerprint() != MustParseSet("L1, L2, R1").Fingerprint() {
		t.Error("fingerprint must not depend on construction order")
	}
}

func TestMergeJoinSemantics(t *testing.T) {
	// Definite on both sides stays definite.
	a := MustParseSet("L1")
	b := MustParseSet("L1")
	if got := a.MergeJoin(b).String(); got != "L1" {
		t.Errorf("def/def = %q", got)
	}
	// Definite on one side only becomes possible.
	c := MustParseSet("L1, R1")
	d := MustParseSet("L1")
	if got := c.MergeJoin(d).String(); got != "L1, R1?" {
		t.Errorf("one-sided = %q", got)
	}
	// Possible on either side stays possible.
	e := MustParseSet("L1?").MergeJoin(MustParseSet("L1"))
	if got := e.String(); got != "L1?" {
		t.Errorf("poss/def = %q", got)
	}
	// Empty vs nonempty: everything possible.
	f := MustParseSet("S, D+").MergeJoin(EmptySet())
	if got := f.String(); got != "S?, D+?" {
		t.Errorf("vs empty = %q", got)
	}
}

func TestMergeJoinLattice(t *testing.T) {
	// MergeJoin must be commutative, idempotent and associative — the
	// properties the Figure 3 iteration relies on for convergence.
	gen := func(g concretePathGen) Set {
		p := g.path()
		q := concretePathGen{Seed: g.Seed * 7}.path()
		return NewSet(p, q)
	}
	comm := func(a, b concretePathGen) bool {
		x, y := gen(a), gen(b)
		return x.MergeJoin(y).Equal(y.MergeJoin(x))
	}
	if err := quick.Check(comm, quickCfg()); err != nil {
		t.Errorf("commutativity: %v", err)
	}
	idem := func(a concretePathGen) bool {
		x := gen(a)
		return x.MergeJoin(x).Equal(x)
	}
	if err := quick.Check(idem, quickCfg()); err != nil {
		t.Errorf("idempotence: %v", err)
	}
	assoc := func(a, b, c concretePathGen) bool {
		x, y, z := gen(a), gen(b), gen(c)
		return x.MergeJoin(y).MergeJoin(z).Equal(x.MergeJoin(y.MergeJoin(z)))
	}
	if err := quick.Check(assoc, quickCfg()); err != nil {
		t.Errorf("associativity: %v", err)
	}
}

func TestUnionKeepsStrongest(t *testing.T) {
	a := MustParseSet("L1?, R1")
	b := MustParseSet("L1, D+?")
	got := a.Union(b).String()
	if got != "L1, R1, D+?" {
		t.Errorf("Union = %q", got)
	}
}

func TestExtendAllResidueAll(t *testing.T) {
	s := MustParseSet("S, L1")
	if got := s.ExtendAll(RightD).String(); got != "L1R1, R1" {
		t.Errorf("ExtendAll = %q", got)
	}
	r := MustParseSet("L+, R1").ResidueAll(LeftD)
	if got := r.String(); got != "S?, L+?" {
		t.Errorf("ResidueAll = %q", got)
	}
}

func TestConcatAll(t *testing.T) {
	s := MustParseSet("L1").ConcatAll(MustParseSet("S, R1?"))
	if got := s.String(); got != "L1, L1R1?" {
		t.Errorf("ConcatAll = %q", got)
	}
	if !EmptySet().ConcatAll(MustParseSet("L1")).IsEmpty() {
		t.Error("empty·x should be empty")
	}
}

func TestWidenExactToPlus(t *testing.T) {
	lim := Limits{MaxExact: 3, MaxSegs: 6, MaxPaths: 8}
	s := NewSet(MustParse("L5"))
	if got := s.Widen(lim).String(); got != "L3+" {
		t.Errorf("Widen exact = %q, want L3+", got)
	}
}

func TestWidenSegCollapse(t *testing.T) {
	lim := Limits{MaxExact: 8, MaxSegs: 3, MaxPaths: 8}
	s := NewSet(MustParse("L1R1L1R1L1"))
	got := s.Widen(lim).String()
	if got != "L1R1D3+" {
		t.Errorf("Widen segs = %q, want L1R1D3+", got)
	}
}

func TestWidenSetCollapse(t *testing.T) {
	lim := Limits{MaxExact: 8, MaxSegs: 6, MaxPaths: 2}
	s := MustParseSet("S, L1, L2, R1")
	got := s.Widen(lim).String()
	if got != "S, D+?" {
		t.Errorf("Widen set = %q, want S, D+?", got)
	}
	// Minimum length of collapsed members is preserved when > 1.
	s2 := MustParseSet("L2, R3, L1R2")
	got2 := s2.Widen(lim).String()
	if got2 != "D2+?" {
		t.Errorf("Widen set min = %q, want D2+?", got2)
	}
}

// TestWidenSound: widening only grows the language (checked by word
// enumeration), so it is always a safe over-approximation.
func TestWidenSound(t *testing.T) {
	lim := Limits{MaxExact: 2, MaxSegs: 2, MaxPaths: 2}
	const maxLen = 6
	f := func(a, b concretePathGen) bool {
		s := NewSet(a.path(), b.path())
		w := s.Widen(lim)
		have := map[string]bool{}
		for _, p := range w.Paths() {
			for word := range words(p, maxLen) {
				have[word] = true
			}
		}
		for _, p := range s.Paths() {
			for word := range words(p, maxLen) {
				if !have[word] {
					t.Logf("widen(%s) lost word %q of %s", s, word, p)
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestHasSameHelpers(t *testing.T) {
	s := MustParseSet("S?, L1")
	if !s.HasSame() || s.HasDefiniteSame() {
		t.Error("S? is same but not definite-same")
	}
	d := MustParseSet("S")
	if !d.HasDefiniteSame() {
		t.Error("S is definite-same")
	}
	if MustParseSet("L1").HasSame() {
		t.Error("L1 is not same")
	}
	if !MustParseSet("L1, R1?").HasDefinite() {
		t.Error("L1 is definite")
	}
	if MustParseSet("L1?").HasDefinite() {
		t.Error("L1? is not definite")
	}
}

func TestDemoteFilterAllPossible(t *testing.T) {
	s := MustParseSet("S, L1, R1")
	d := s.Demote(func(p Path) bool { return !p.IsSame() })
	if got := d.String(); got != "S, L1?, R1?" {
		t.Errorf("Demote = %q", got)
	}
	f := s.Filter(func(p Path) bool { return p.IsSame() })
	if got := f.String(); got != "S" {
		t.Errorf("Filter = %q", got)
	}
	if got := s.AllPossible().String(); got != "S?, L1?, R1?" {
		t.Errorf("AllPossible = %q", got)
	}
}

func TestMayOverlapSet(t *testing.T) {
	a := MustParseSet("L1, L2")
	b := MustParseSet("R1, L+")
	if !MayOverlapSet(a, b) {
		t.Error("L1 overlaps L+")
	}
	c := MustParseSet("R1")
	if MayOverlapSet(a, c) {
		t.Error("L paths cannot overlap R1")
	}
	if MayOverlapSet(EmptySet(), a) {
		t.Error("empty set overlaps nothing")
	}
}
