// Package path implements the path-expression algebra of Hendren & Nicolau
// (ICPP 1989, §4). A path describes the directed route between two nodes of
// a binary linked structure. The empty path, written S, means "same node".
// A non-empty path is a sequence of links; each link is one of
//
//	L^i  — exactly i left edges
//	L+   — one or more left edges
//	R^i  — exactly i right edges
//	R+   — one or more right edges
//	D^i  — exactly i down edges (left or right, direction unknown)
//	D+   — one or more down edges
//
// Every path is classified definite (guaranteed to exist) or possible
// (may or may not exist, rendered with a trailing "?").
//
// Two kinds of approximation are therefore encoded, exactly as in the
// paper's Figure 2: length approximation (the + forms) and direction
// approximation (the D forms). As a precision refinement over the paper's
// notation this implementation also admits links of the form Dir^{>=m} for
// m > 1 (rendered e.g. "L2+"); the paper's + is the m = 1 case.
package path

import (
	"fmt"
	"strings"
)

// Dir is the direction of a link: left, right, or down (either).
type Dir uint8

// Link directions. DownD subsumes both LeftD and RightD.
const (
	LeftD Dir = iota
	RightD
	DownD
)

// String returns the single-letter spelling used in the paper.
func (d Dir) String() string {
	switch d {
	case LeftD:
		return "L"
	case RightD:
		return "R"
	case DownD:
		return "D"
	}
	return fmt.Sprintf("Dir(%d)", uint8(d))
}

// subsumesDir reports whether direction a admits every edge that b admits.
func subsumesDir(a, b Dir) bool { return a == b || a == DownD }

// Seg is one maximal run of links in a single direction.
// Invariant (enforced by canon): Min >= 1, and adjacent segments of a
// canonical path differ in Dir.
//
// If Inf is false the segment denotes exactly Min edges (the paper's Dir^i);
// if Inf is true it denotes Min or more edges (Min = 1 is the paper's Dir+).
type Seg struct {
	Dir Dir
	Min int
	Inf bool
}

// String renders the segment in paper notation: "L3", "L+", "R2+", "D+".
func (s Seg) String() string {
	switch {
	case s.Inf && s.Min <= 1:
		return s.Dir.String() + "+"
	case s.Inf:
		return fmt.Sprintf("%s%d+", s.Dir, s.Min)
	default:
		return fmt.Sprintf("%s%d", s.Dir, s.Min)
	}
}

// Path is an immutable path expression together with its definiteness flag.
// The zero value is the definite path S (same node). The expression part is
// interned (see intern.go): equal expressions share one node, so expression
// equality is a pointer comparison.
type Path struct {
	node     *pnode // nil means S
	possible bool
}

// segs returns the canonical segments backing the expression (nil for S).
func (p Path) segs() []Seg {
	if p.node == nil {
		return nil
	}
	return p.node.segs
}

// Same is the definite path S: the two handles refer to the same node.
func Same() Path { return Path{} }

// SamePossible is S?: the two handles may refer to the same node.
func SamePossible() Path { return Path{possible: true} }

// New builds a definite path from the given segments, canonicalizing them
// and interning into the process-default Space. New() with no segments is
// Same().
func New(segs ...Seg) Path { return newPathIn(procSpace, segs, false) }

// NewPossible builds a possible path from the given segments, interning
// into the process-default Space.
func NewPossible(segs ...Seg) Path { return newPathIn(procSpace, segs, true) }

// New builds a definite path owned by sp.
func (sp *Space) New(segs ...Seg) Path { return newPathIn(sp, segs, false) }

// NewPossible builds a possible path owned by sp.
func (sp *Space) NewPossible(segs ...Seg) Path { return newPathIn(sp, segs, true) }

// Exact is shorthand for the segment Dir^n.
func Exact(d Dir, n int) Seg { return Seg{Dir: d, Min: n} }

// Plus is shorthand for the segment Dir+ (one or more).
func Plus(d Dir) Seg { return Seg{Dir: d, Min: 1, Inf: true} }

// AtLeast is shorthand for the segment Dir^{>=m}.
func AtLeast(d Dir, m int) Seg { return Seg{Dir: d, Min: m, Inf: true} }

// canon coalesces adjacent same-direction segments and drops empty ones.
// A segment with Min <= 0 and !Inf is the empty run and vanishes; Min <= 0
// with Inf is normalized to Min = 1 by the callers that could produce it
// (Residue splits Dir^{>=0} into S plus Dir+ instead).
//
// It then normalizes the one remaining source of equal-language spellings:
// a concrete-direction ">= Min" segment adjacent to a D^{>=m} segment. The
// D neighbor absorbs the surplus edges (L^{>=a}·D^{>=b} ≡ L^a·D^{>=b},
// since l^x w with x >= a rewrites to l^a · (l^{x-a} w) and the remainder
// stays in D^{>=b}; symmetrically on the right), so the Inf flag drops and
// e.g. R+D2+ interns as R1D2+. With this rule two distinct canonical forms
// always denote distinct languages: equal languages force equal minimal
// words, which fix the (Dir, Min) run sequence, and the only Inf-flag
// freedom left is exactly this absorption (pinned by the intern-time
// property test that mutual Subsumes implies a shared node).
func canon(segs []Seg) []Seg {
	out := make([]Seg, 0, len(segs))
	for _, s := range segs {
		if s.Min <= 0 && !s.Inf {
			continue
		}
		if s.Min <= 0 { // Dir^{>=0}: callers must split; be safe and use Dir+.
			s.Min = 1
		}
		if n := len(out); n > 0 && out[n-1].Dir == s.Dir {
			out[n-1] = Seg{Dir: s.Dir, Min: out[n-1].Min + s.Min, Inf: out[n-1].Inf || s.Inf}
			continue
		}
		out = append(out, s)
	}
	infDown := func(i int) bool {
		return i >= 0 && i < len(out) && out[i].Dir == DownD && out[i].Inf
	}
	for i := range out {
		if out[i].Inf && out[i].Dir != DownD && (infDown(i-1) || infDown(i+1)) {
			out[i].Inf = false
		}
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

// IsSame reports whether the path is S (or S?).
func (p Path) IsSame() bool { return p.node == nil }

// Possible reports whether the path is only possible (rendered "?").
func (p Path) Possible() bool { return p.possible }

// Definite reports whether the path is guaranteed to exist.
func (p Path) Definite() bool { return !p.possible }

// AsPossible returns the same path expression flagged possible.
func (p Path) AsPossible() Path { p.possible = true; return p }

// AsDefinite returns the same path expression flagged definite.
func (p Path) AsDefinite() Path { p.possible = false; return p }

// Segs returns the canonical segments. The caller must not modify them.
func (p Path) Segs() []Seg { return p.segs() }

// NumSegs returns the number of canonical segments (0 for S).
func (p Path) NumSegs() int { return len(p.segs()) }

// MinLen returns the minimum number of edges the path can denote.
func (p Path) MinLen() int {
	n := 0
	for _, s := range p.segs() {
		n += s.Min
	}
	return n
}

// Bounded reports whether the path denotes finitely many edge counts,
// returning the exact maximum length when it does.
func (p Path) Bounded() (maxLen int, ok bool) {
	n := 0
	for _, s := range p.segs() {
		if s.Inf {
			return 0, false
		}
		n += s.Min
	}
	return n, true
}

// ExprString renders the path expression without the definiteness marker.
func (p Path) ExprString() string {
	if p.IsSame() {
		return "S"
	}
	var b strings.Builder
	for _, s := range p.segs() {
		b.WriteString(s.String())
	}
	return b.String()
}

// String renders the path in paper notation, with a trailing "?" when the
// path is possible: "S", "S?", "L1L+", "R1D+?".
func (p Path) String() string {
	if p.possible {
		return p.ExprString() + "?"
	}
	return p.ExprString()
}

// EqualExpr reports whether p and q denote the same path expression,
// ignoring definiteness. Interning makes this a pointer comparison.
func (p Path) EqualExpr(q Path) bool { return p.node == q.node }

// Equal reports whether p and q are identical, including definiteness.
func (p Path) Equal(q Path) bool { return p.possible == q.possible && p.node == q.node }

// IsExactEdge reports whether the path is exactly one edge in direction d.
func (p Path) IsExactEdge(d Dir) bool {
	segs := p.segs()
	return len(segs) == 1 && segs[0] == Exact(d, 1)
}

// Extend returns the path p followed by one extra edge in direction d
// (the operation used by the transfer function for a := b.f: every ancestor
// of b gains a path ancestor→a = path(ancestor→b)·f). The result stays in
// p's Space; extending S interns into the process default — callers whose
// operand may be S in a private Space use Space.Extend.
func (p Path) Extend(d Dir) Path {
	return extendN(spaceOf(procSpace, p), p, d, 1)
}

// ExtendN appends n >= 1 edges in direction d (Space derivation as Extend).
func (p Path) ExtendN(d Dir, n int) Path {
	return extendN(spaceOf(procSpace, p), p, d, n)
}

// Extend returns p followed by one extra edge in direction d, interned in
// sp (required when p may be S, which carries no owning Space).
func (sp *Space) Extend(p Path, d Dir) Path { return extendN(sp, p, d, 1) }

// ExtendN appends n >= 1 edges in direction d, interned in sp.
func (sp *Space) ExtendN(p Path, d Dir, n int) Path { return extendN(sp, p, d, n) }

func extendN(sp *Space, p Path, d Dir, n int) Path {
	ps := p.segs()
	segs := make([]Seg, len(ps), len(ps)+1)
	copy(segs, ps)
	segs = append(segs, Exact(d, n))
	return newPathIn(sp, segs, p.possible)
}

// Concat returns p followed by q. The result is definite only when both
// parts are definite; it stays in the operands' Space (when both are S the
// result is S-shaped and needs no Space at all).
func (p Path) Concat(q Path) Path {
	ps, qs := p.segs(), q.segs()
	segs := make([]Seg, 0, len(ps)+len(qs))
	segs = append(segs, ps...)
	segs = append(segs, qs...)
	return newPathIn(spaceOf(procSpace, p, q), segs, p.possible || q.possible)
}

// Residue computes the relationship between b.f and x, given that the
// relationship between b and x is p (a path b→x). The result is the set of
// possible paths b.f→x; an empty result means the analysis can prove there
// is no downward path from b.f to x along this route.
//
// This is the rule validated by the paper's Figure 2(c): the residue of D+
// by left is {S?, D+?} — e and c may be the same node, or c may be one or
// more edges below e.
//
// The returned slice may alias the owning Space's residue memo cache and
// must not be modified by the caller.
func (p Path) Residue(f Dir) []Path {
	if p.IsSame() {
		// b and x are the same node, so x is the parent of b.f: there is an
		// upward path, which path matrices do not record in this direction.
		return nil
	}
	base := residueMemo(p.node, f)
	if !p.possible || len(base) == 0 {
		return base
	}
	// The memo is computed for the definite form; a possible input demotes
	// every alternative.
	out := make([]Path, len(base))
	for i, r := range base {
		out[i] = r.AsPossible()
	}
	return out
}

// residueCompute is the uncached residue rule, evaluated on the definite
// form of a non-empty interned expression.
func residueCompute(n *pnode, f Dir) []Path {
	first, rest := n.segs[0], n.segs[1:]
	tail := func(extra ...Seg) Path {
		segs := make([]Seg, 0, len(extra)+len(rest))
		segs = append(segs, extra...)
		segs = append(segs, rest...)
		return newPathIn(n.sp, segs, false)
	}
	switch first.Dir {
	case f:
		// The first edge is guaranteed to match f, so definiteness survives.
		switch {
		case !first.Inf && first.Min == 1:
			return []Path{tail()}
		case !first.Inf:
			return []Path{tail(Exact(f, first.Min-1))}
		case first.Min > 1:
			return []Path{tail(AtLeast(f, first.Min-1))}
		default:
			// f^{>=1} minus one f edge = f^{>=0}: either nothing of the
			// segment remains or at least one more f edge follows. Neither
			// alternative alone is guaranteed.
			return []Path{tail().AsPossible(), tail(Plus(f)).AsPossible()}
		}
	case DownD:
		// A down edge may or may not have gone in direction f, so every
		// alternative is merely possible.
		switch {
		case !first.Inf && first.Min == 1:
			return []Path{tail().AsPossible()}
		case !first.Inf:
			return []Path{tail(Exact(DownD, first.Min-1)).AsPossible()}
		case first.Min > 1:
			return []Path{tail(AtLeast(DownD, first.Min-1)).AsPossible()}
		default:
			return []Path{tail().AsPossible(), tail(Plus(DownD)).AsPossible()}
		}
	default:
		// The first edge is concretely the opposite direction: b.f roots a
		// disjoint subtree, so no downward path to x exists along this route.
		return nil
	}
}

// compareSegs orders path expressions for canonical set layout.
func compareSegs(a, b []Seg) int {
	for i := 0; i < len(a) && i < len(b); i++ {
		sa, sb := a[i], b[i]
		if sa.Dir != sb.Dir {
			return int(sa.Dir) - int(sb.Dir)
		}
		if sa.Min != sb.Min {
			return sa.Min - sb.Min
		}
		if sa.Inf != sb.Inf {
			if sa.Inf {
				return 1
			}
			return -1
		}
	}
	return len(a) - len(b)
}

// Compare orders paths: by expression, definite before possible.
func (p Path) Compare(q Path) int {
	if p.node != q.node {
		if c := compareSegs(p.segs(), q.segs()); c != 0 {
			return c
		}
	}
	switch {
	case p.possible == q.possible:
		return 0
	case p.possible:
		return 1
	default:
		return -1
	}
}
