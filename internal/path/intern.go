package path

import (
	"slices"
	"sync"
	"sync/atomic"
)

// This file implements the interning layer that canonicalizes every path
// expression to a unique node within one Space epoch. Two Paths denote
// the same expression iff they hold the same *pnode, which turns the
// structural comparisons on the analysis hot path (Set.Equal, Set.find,
// dropSubsumed, MayOverlapSet) into pointer/ID comparisons. Each node
// carries a precomputed 64-bit signature (a seed-hash of the canonical
// segments), a small unique ID, and a back-pointer to its owning Space,
// which is how derived operations stay inside the right table set without
// threading a Space argument through every call; the language-question
// memo tables in memo.go are keyed by (ID, ID) pairs.
//
// The table is sharded and mutex-guarded so the concurrent analysis
// fixpoint and the parallel property tests can intern from many goroutines
// without contending on a single lock. Interned nodes are immutable; the
// table they live in belongs to a Space (space.go), whose Reset drops an
// epoch's nodes wholesale between analysis batches.

// pnode is one interned path expression (never the empty path S, which is
// represented by a nil node so that the zero Path value remains S).
type pnode struct {
	id   uint32
	sig  uint64
	segs []Seg // canonical; immutable after interning
	// sp is the owning Space: derived operations (Extend, Concat, Residue,
	// the verdict questions) intern and memoize there.
	sp *Space
}

// nodeIDs allocates node IDs process-wide, shared by every Space; ID 0 is
// reserved for S. Allocating globally rather than per Space keeps the
// epoch contract's failure mode benign with many Spaces alive: a value
// accidentally mixed across Spaces (or epochs) carries an ID no other live
// node has, so it can at worst miss a cache — its (ID, ID) memo keys and
// fingerprints can never collide with another node's and corrupt a verdict.
var nodeIDs atomic.Uint32

const internShards = 64

type internShard struct {
	mu sync.RWMutex
	m  map[uint64][]*pnode // signature → collision chain
}

// sigSegs computes the FNV-1a signature of a canonical segment slice.
func sigSegs(segs []Seg) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, s := range segs {
		h = (h ^ uint64(s.Dir)) * prime64
		h = (h ^ uint64(s.Min)) * prime64
		if s.Inf {
			h = (h ^ 1) * prime64
		} else {
			h = (h ^ 2) * prime64
		}
	}
	return h
}

func equalSegs(a, b []Seg) bool { return slices.Equal(a, b) }

// intern returns sp's unique node for the given canonical segments, or nil
// for the empty path. The caller must pass segments already in canonical
// form (the output of canon) and must not mutate them afterwards; intern
// copies the slice when it creates a new node, so callers may also pass
// scratch slices.
func (sp *Space) intern(segs []Seg) *pnode {
	if len(segs) == 0 {
		return nil
	}
	sig := sigSegs(segs)
	sh := &sp.shards[sig%internShards]
	sh.mu.RLock()
	for _, n := range sh.m[sig] {
		if equalSegs(n.segs, segs) {
			sh.mu.RUnlock()
			return n
		}
	}
	sh.mu.RUnlock()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, n := range sh.m[sig] {
		if equalSegs(n.segs, segs) {
			return n
		}
	}
	id := nodeIDs.Add(1)
	if id == 0 {
		// The allocator deliberately survives Reset (and is shared by every
		// Space) so IDs are never reused; a uint32 wrap would silently break
		// that contract (memo keys and fingerprints of distinct live nodes
		// colliding), so exhaustion fails fast instead. ~4 billion interns
		// across a process lifetime is far beyond any realistic service
		// horizon.
		panic("path: interned node IDs exhausted; restart the process")
	}
	n := &pnode{
		id:   id,
		sig:  sig,
		segs: append([]Seg(nil), segs...),
		sp:   sp,
	}
	sh.m[sig] = append(sh.m[sig], n)
	sp.interned.Add(1)
	return n
}

// newPathIn canonicalizes and interns the segments into a Path owned by sp.
func newPathIn(sp *Space, segs []Seg, possible bool) Path {
	return Path{node: sp.intern(canon(segs)), possible: possible}
}

// spaceOf picks the owning Space for a derived operation: the first
// operand carrying an interned node decides, and def (normally the process
// default) applies only when every operand is S — in which case the result
// usually needs no interning at all, and callers that can create non-S
// results from S operands use the explicit *Space-receiver forms instead.
func spaceOf(def *Space, ps ...Path) *Space {
	for _, p := range ps {
		if p.node != nil {
			return p.node.sp
		}
	}
	return def
}

// ID returns the interned identity of the path expression, ignoring the
// definiteness flag; S has ID 0. Equal IDs ⇔ equal expressions (IDs are
// never reused across epochs or Spaces).
func (p Path) ID() uint32 {
	if p.node == nil {
		return 0
	}
	return p.node.id
}

// Signature returns the precomputed 64-bit hash of the expression (0 for S).
func (p Path) Signature() uint64 {
	if p.node == nil {
		return 0
	}
	return p.node.sig
}

// InternedCount reports how many distinct non-empty path expressions the
// Space's current epoch holds.
func (sp *Space) InternedCount() int { return int(sp.interned.Load()) }

// InternedCount reports the process-default Space's count (monitoring hook
// for silbench).
func InternedCount() int { return procSpace.InternedCount() }
