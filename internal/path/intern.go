package path

import (
	"slices"
	"sync"
)

// This file implements the interning layer that canonicalizes every path
// expression to a unique node within the current Space. Two Paths denote
// the same expression iff they hold the same *pnode, which turns the
// structural comparisons on the analysis hot path (Set.Equal, Set.find,
// dropSubsumed, MayOverlapSet) into pointer/ID comparisons. Each node
// carries a precomputed 64-bit signature (a seed-hash of the canonical
// segments) and a small unique ID; the language-question memo tables in
// memo.go are keyed by (ID, ID) pairs.
//
// The table is sharded and mutex-guarded so the concurrent analysis
// fixpoint and the parallel property tests can intern from many goroutines
// without contending on a single lock. Interned nodes are immutable; the
// table they live in belongs to the process Space (space.go), whose Reset
// drops an epoch's nodes wholesale between analysis batches.

// pnode is one interned path expression (never the empty path S, which is
// represented by a nil node so that the zero Path value remains S).
type pnode struct {
	id   uint32
	sig  uint64
	segs []Seg // canonical; immutable after interning
}

const internShards = 64

type internShard struct {
	mu sync.RWMutex
	m  map[uint64][]*pnode // signature → collision chain
}

// sigSegs computes the FNV-1a signature of a canonical segment slice.
func sigSegs(segs []Seg) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, s := range segs {
		h = (h ^ uint64(s.Dir)) * prime64
		h = (h ^ uint64(s.Min)) * prime64
		if s.Inf {
			h = (h ^ 1) * prime64
		} else {
			h = (h ^ 2) * prime64
		}
	}
	return h
}

func equalSegs(a, b []Seg) bool { return slices.Equal(a, b) }

// intern returns the unique node for the given canonical segments, or nil
// for the empty path. The caller must pass segments already in canonical
// form (the output of canon) and must not mutate them afterwards; intern
// copies the slice when it creates a new node, so callers may also pass
// scratch slices.
func intern(segs []Seg) *pnode {
	if len(segs) == 0 {
		return nil
	}
	sp := procSpace
	sig := sigSegs(segs)
	sh := &sp.shards[sig%internShards]
	sh.mu.RLock()
	for _, n := range sh.m[sig] {
		if equalSegs(n.segs, segs) {
			sh.mu.RUnlock()
			return n
		}
	}
	sh.mu.RUnlock()
	sh.mu.Lock()
	defer sh.mu.Unlock()
	for _, n := range sh.m[sig] {
		if equalSegs(n.segs, segs) {
			return n
		}
	}
	id := sp.nextID.Add(1)
	if id == 0 {
		// The allocator deliberately survives Reset so IDs are never reused
		// across epochs; a uint32 wrap would silently break that contract
		// (memo keys and fingerprints of distinct live nodes colliding), so
		// exhaustion fails fast instead. ~4 billion interns across a
		// process lifetime is far beyond any realistic service horizon.
		panic("path: interned node IDs exhausted; restart the process")
	}
	n := &pnode{
		id:   id,
		sig:  sig,
		segs: append([]Seg(nil), segs...),
	}
	sh.m[sig] = append(sh.m[sig], n)
	sp.interned.Add(1)
	return n
}

// newPath canonicalizes and interns the segments into a Path value.
func newPath(segs []Seg, possible bool) Path {
	return Path{node: intern(canon(segs)), possible: possible}
}

// ID returns the interned identity of the path expression, ignoring the
// definiteness flag; S has ID 0. Equal IDs ⇔ equal expressions (within one
// Space epoch; IDs are never reused across epochs).
func (p Path) ID() uint32 {
	if p.node == nil {
		return 0
	}
	return p.node.id
}

// Signature returns the precomputed 64-bit hash of the expression (0 for S).
func (p Path) Signature() uint64 {
	if p.node == nil {
		return 0
	}
	return p.node.sig
}

// InternedCount reports how many distinct non-empty path expressions the
// current epoch of the process Space holds (monitoring hook for silbench).
func InternedCount() int { return int(procSpace.interned.Load()) }
