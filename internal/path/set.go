package path

import (
	"sort"
	"strings"
)

// Limits bounds the abstract domain so that the iterative approximation of
// §4 (Figure 3) and the recursive procedure summaries of §5.2 terminate.
// They are the knobs of the E-AB2 widening ablation.
type Limits struct {
	// MaxExact is the largest exact edge count kept in a segment; larger
	// counts are widened to the >= form (the paper's +).
	MaxExact int
	// MaxSegs is the largest number of direction runs kept in one path;
	// longer paths have their suffix collapsed into a single D segment.
	MaxSegs int
	// MaxPaths is the widest path set kept per matrix entry; wider sets are
	// collapsed (non-S members fold into D+? / D^{>=m}?).
	MaxPaths int
}

// DefaultLimits are generous enough to keep every figure of the paper exact
// while still guaranteeing termination.
var DefaultLimits = Limits{MaxExact: 8, MaxSegs: 6, MaxPaths: 8}

// widenPath applies the per-path structural bounds.
func widenPath(p Path, lim Limits) Path {
	segs := p.segs()
	changed := false
	for i, s := range segs {
		if !s.Inf && s.Min > lim.MaxExact {
			if !changed {
				segs = append([]Seg(nil), segs...)
				changed = true
			}
			segs[i] = Seg{Dir: s.Dir, Min: lim.MaxExact, Inf: true}
		}
	}
	if len(segs) > lim.MaxSegs {
		if !changed {
			segs = append([]Seg(nil), segs...)
		}
		// Collapse the suffix beyond MaxSegs-1 into one D segment that
		// covers at least the collapsed minimum length.
		keep := lim.MaxSegs - 1
		min, inf := 0, false
		for _, s := range segs[keep:] {
			min += s.Min
			inf = inf || s.Inf
		}
		collapsed := Seg{Dir: DownD, Min: min, Inf: true}
		_ = inf // the collapse is already a >= form
		segs = append(segs[:keep:keep], collapsed)
		// Direction was approximated, so the path is merely possible now
		// unless it already subsumed: collapsing to D^{>=min} still covers
		// the original language, so definiteness is preserved for
		// existence; but the expression is weaker. Existence is what the
		// flag asserts, so keep it.
	}
	return newPathIn(spaceOf(procSpace, p), segs, p.possible)
}

// Set is a canonical set of paths: the estimate of the relationship between
// two handles (one path-matrix entry). The zero value is the empty set,
// meaning "no downward path from the row handle to the column handle".
//
// Sets are value-like: operations return new sets and never mutate inputs.
type Set struct {
	ps []Path // sorted by Compare, unique by expression
	// fp is the order-independent 128-bit fingerprint of the members,
	// maintained incrementally at construction (see fp.go).
	fp [2]uint64
}

// EmptySet is the entry for unrelated handles.
func EmptySet() Set { return Set{} }

// NewSet builds a canonical set from the given paths. When the same
// expression occurs both definite and possible, definite wins (it is the
// stronger statement along the may/must axis used by the analysis: the set
// records all possible relationships, and the flag upgrades one to a
// guarantee).
func NewSet(paths ...Path) Set {
	var s Set
	for _, p := range paths {
		s = s.Add(p)
	}
	return s
}

// IsEmpty reports whether the handles are unrelated.
func (s Set) IsEmpty() bool { return len(s.ps) == 0 }

// Len returns the number of distinct path expressions.
func (s Set) Len() int { return len(s.ps) }

// Paths returns the canonical contents. Callers must not modify the slice.
func (s Set) Paths() []Path { return s.ps }

// Add returns s with p included, keeping canonical form. Upgrading an
// existing possible member to definite replaces it in place without
// re-sorting: members are unique by expression and Compare consults the
// definiteness flag only between equal expressions, so the flag flip cannot
// reorder the member relative to any other (pinned by the canonical-order
// property test in set_test.go).
func (s Set) Add(p Path) Set {
	for i, q := range s.ps {
		if q.EqualExpr(p) {
			if q.possible && !p.possible {
				out := append([]Path(nil), s.ps...)
				out[i] = p
				fp := s.fp
				of, nf := pathFP(q), pathFP(p)
				fp[0] += nf[0] - of[0]
				fp[1] += nf[1] - of[1]
				return Set{ps: out, fp: fp}
			}
			return s
		}
	}
	out := append([]Path(nil), s.ps...)
	out = append(out, p)
	sort.Slice(out, func(i, j int) bool { return out[i].Compare(out[j]) < 0 })
	f := pathFP(p)
	return Set{ps: out, fp: [2]uint64{s.fp[0] + f[0], s.fp[1] + f[1]}}
}

// Union returns the union of two sets collected along a single control-flow
// path (definite-wins on duplicate expressions). Unions with an empty
// operand share the other set unchanged — sets are immutable values, and
// Matrix.Rename funnels every entry through here.
func (s Set) Union(t Set) Set {
	if len(s.ps) == 0 {
		return t
	}
	if len(t.ps) == 0 {
		return s
	}
	out := s
	for _, p := range t.ps {
		out = out.Add(p)
	}
	return out
}

// MergeJoin combines estimates from two alternative control-flow paths
// (if/else arms, loop iterations). A path expression is definite in the
// result only if it is definite in both inputs; expressions present on only
// one side survive as possible.
func (s Set) MergeJoin(t Set) Set {
	var out Set
	for _, p := range s.ps {
		q, ok := t.find(p)
		switch {
		case ok && p.Definite() && q.Definite():
			out = out.Add(p)
		default:
			out = out.Add(p.AsPossible())
		}
	}
	for _, q := range t.ps {
		if _, ok := s.find(q); !ok {
			out = out.Add(q.AsPossible())
		}
	}
	return out
}

func (s Set) find(p Path) (Path, bool) {
	for _, q := range s.ps {
		if q.EqualExpr(p) {
			return q, true
		}
	}
	return Path{}, false
}

// Demote returns s with every path for which cond holds downgraded to
// possible (used by the a.f := b kill rule).
func (s Set) Demote(cond func(Path) bool) Set {
	var out Set
	for _, p := range s.ps {
		if cond(p) {
			p = p.AsPossible()
		}
		out = out.Add(p)
	}
	return out
}

// Filter returns the subset satisfying keep.
func (s Set) Filter(keep func(Path) bool) Set {
	var out Set
	for _, p := range s.ps {
		if keep(p) {
			out = out.Add(p)
		}
	}
	return out
}

// ExtendAll appends one edge in direction d to every member. Results stay
// in each member's Space; an S member extends into the process default —
// callers whose sets may contain S in a private Space use Space.ExtendAll.
func (s Set) ExtendAll(d Dir) Set {
	var out Set
	for _, p := range s.ps {
		out = out.Add(p.Extend(d))
	}
	return out
}

// ExtendAll appends one edge in direction d to every member, interning the
// results in sp (required when the set may contain S).
func (sp *Space) ExtendAll(s Set, d Dir) Set {
	var out Set
	for _, p := range s.ps {
		out = out.Add(sp.Extend(p, d))
	}
	return out
}

// ConcatAll returns {p·q : p ∈ s, q ∈ t}.
func (s Set) ConcatAll(t Set) Set {
	var out Set
	for _, p := range s.ps {
		for _, q := range t.ps {
			out = out.Add(p.Concat(q))
		}
	}
	return out
}

// ResidueAll computes the entry for (b.f → x) from the entry for (b → x).
func (s Set) ResidueAll(f Dir) Set {
	var out Set
	for _, p := range s.ps {
		for _, r := range p.Residue(f) {
			out = out.Add(r)
		}
	}
	return out
}

// Widen applies the domain bounds: per-path structural bounds, then
// subsumption-dropping of covered possible members, then — only if the set
// is still too wide — direction-preserving signature collapse, and as a
// last resort a fold into a single D^{>=m}? member.
func (s Set) Widen(lim Limits) Set {
	var out Set
	for _, p := range s.ps {
		out = out.Add(widenPath(p, lim))
	}
	out = out.dropSubsumed()
	if out.Len() <= lim.MaxPaths {
		return out
	}
	out = out.collapseBySignature().dropSubsumed()
	if out.Len() <= lim.MaxPaths {
		return out
	}
	// Too wide: keep an S member if present, fold the rest into one
	// possible D^{>=m} covering every collapsed path. The fold interns into
	// the folded members' Space (min >= 0 implies a non-S member, so the
	// owner is always derivable).
	var collapsed Set
	min := -1
	var own *Space
	hadSame := false
	samePossible := true
	for _, p := range out.ps {
		if p.IsSame() {
			hadSame = true
			samePossible = samePossible && p.Possible()
			continue
		}
		if own == nil {
			own = p.node.sp
		}
		if m := p.MinLen(); min < 0 || m < min {
			min = m
		}
	}
	if hadSame {
		if samePossible {
			collapsed = collapsed.Add(SamePossible())
		} else {
			collapsed = collapsed.Add(Same())
		}
	}
	if min >= 0 {
		if min < 1 {
			min = 1
		}
		collapsed = collapsed.Add(newPathIn(own, []Seg{AtLeast(DownD, min)}, true))
	}
	return collapsed
}

// dropSubsumed removes possible members whose language is covered by some
// other member; definite members are never dropped (they carry a stronger
// existence guarantee). Intern-time canonicalization (canon's absorption
// rule) gives every language exactly one spelling, so two distinct members
// can never subsume each other mutually and coverage is a strict partial
// order on the set: a maximal member always survives, and dropping every
// covered member cannot empty a non-empty set.
func (s Set) dropSubsumed() Set {
	if len(s.ps) < 2 {
		return s
	}
	keep := make([]Path, 0, len(s.ps))
	for i, q := range s.ps {
		if q.Definite() {
			keep = append(keep, q)
			continue
		}
		covered := false
		for j, p := range s.ps {
			if i == j || q.EqualExpr(p) {
				continue
			}
			if Subsumes(p, q) {
				covered = true
				break
			}
		}
		if !covered {
			keep = append(keep, q)
		}
	}
	if len(keep) == len(s.ps) {
		return s
	}
	return mkSet(keep)
}

// collapseBySignature merges members sharing the same direction signature
// into one generalized path (L1, L2 → L+; L1R2, L2R1 → L+R+), preserving
// direction information that the final D-collapse would lose. The merged
// path is definite only when every merged member was.
func (s Set) collapseBySignature() Set {
	groups := map[string][]Path{}
	var order []string
	for _, p := range s.ps {
		sig := ""
		for _, seg := range p.segs() {
			sig += seg.Dir.String()
		}
		if _, ok := groups[sig]; !ok {
			order = append(order, sig)
		}
		groups[sig] = append(groups[sig], p)
	}
	var out Set
	for _, sig := range order {
		g := groups[sig]
		if len(g) == 1 {
			out = out.Add(g[0])
			continue
		}
		first := g[0]
		segs := append([]Seg(nil), first.segs()...)
		definite := first.Definite()
		for _, p := range g[1:] {
			definite = definite && p.Definite()
			for i := range segs {
				o := p.segs()[i]
				if o.Min < segs[i].Min {
					segs[i] = Seg{Dir: segs[i].Dir, Min: o.Min, Inf: true}
				} else if o.Min > segs[i].Min || o.Inf {
					segs[i] = Seg{Dir: segs[i].Dir, Min: segs[i].Min, Inf: true}
				}
			}
		}
		out = out.Add(newPathIn(spaceOf(procSpace, first), segs, !definite))
	}
	return out
}

// Equal reports set equality including definiteness flags. The fingerprint
// comparison is a fast reject; equality is still decided structurally.
func (s Set) Equal(t Set) bool {
	if s.fp != t.fp || len(s.ps) != len(t.ps) {
		return false
	}
	for i := range s.ps {
		if !s.ps[i].Equal(t.ps[i]) {
			return false
		}
	}
	return true
}

// HasSame reports whether the set contains S or S? — i.e. the two handles
// may refer to the same node (the alias condition of §5.1's A function).
func (s Set) HasSame() bool {
	for _, p := range s.ps {
		if p.IsSame() {
			return true
		}
	}
	return false
}

// HasDefiniteSame reports whether the set contains definite S — the two
// handles certainly refer to the same node.
func (s Set) HasDefiniteSame() bool {
	for _, p := range s.ps {
		if p.IsSame() && p.Definite() {
			return true
		}
	}
	return false
}

// HasDefinite reports whether any member is definite.
func (s Set) HasDefinite() bool {
	for _, p := range s.ps {
		if p.Definite() {
			return true
		}
	}
	return false
}

// AllPossible returns the set with every member demoted to possible.
func (s Set) AllPossible() Set {
	return s.Demote(func(Path) bool { return true })
}

// MayOverlapSet reports whether some path of s and some path of t can
// denote the same node (both sets rooted at the same handle).
func MayOverlapSet(s, t Set) bool {
	for _, p := range s.ps {
		for _, q := range t.ps {
			if MayOverlap(p, q) {
				return true
			}
		}
	}
	return false
}

// String renders the set in paper notation: members separated by ", ",
// or "{}" for the empty set.
func (s Set) String() string {
	if s.IsEmpty() {
		return "{}"
	}
	parts := make([]string, len(s.ps))
	for i, p := range s.ps {
		parts[i] = p.String()
	}
	return strings.Join(parts, ", ")
}

// ParseSet parses the String form back into a set interned in the
// process-default Space; it accepts the notation used throughout the
// paper's figures ("S", "L1L+", "R1D+?", comma separated). It is the test
// helper that lets figure-replay tests state expected matrices in the
// paper's own syntax.
func ParseSet(src string) (Set, error) { return procSpace.ParseSet(src) }

// ParseSet parses the String form back into a set owned by sp.
func (sp *Space) ParseSet(src string) (Set, error) {
	src = strings.TrimSpace(src)
	if src == "" || src == "{}" {
		return EmptySet(), nil
	}
	var out Set
	for _, part := range strings.Split(src, ",") {
		p, err := sp.Parse(strings.TrimSpace(part))
		if err != nil {
			return Set{}, err
		}
		out = out.Add(p)
	}
	return out, nil
}
