package path

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestSubsumesBasics(t *testing.T) {
	cases := []struct {
		p, q string // does p subsume q (L(q) ⊆ L(p))?
		want bool
	}{
		{"L+", "L1", true},
		{"L+", "L3", true},
		{"L+", "L2+", true},
		{"L1", "L+", false},
		{"L+", "R1", false},
		{"D+", "L+", true},
		{"D+", "L1R1", true},
		{"L+", "D+", false},
		{"S", "S", true},
		{"D+", "S", false},
		{"L1R1", "L1R1", true},
		{"L1D+", "L1R2", true},
		{"L1D+", "L2", false}, // the second edge of L2 is left; wait: D covers left too
		{"D2+", "L1", false},  // too short
		{"D1", "L1", true},
		{"D1", "R1", true},
	}
	for _, c := range cases {
		got := Subsumes(MustParse(c.p), MustParse(c.q))
		if c.p == "L1D+" && c.q == "L2" {
			// L2 = ll; L1D+ = l(l|r)+ includes ll: subsumption holds.
			c.want = true
		}
		if got != c.want {
			t.Errorf("Subsumes(%s, %s) = %v, want %v", c.p, c.q, got, c.want)
		}
	}
}

// TestSubsumesMatchesEnumeration cross-checks against brute-force word
// enumeration (bounded; a missing long word cannot be caught, so only the
// "claims inclusion but enumeration refutes" direction is decisive).
func TestSubsumesMatchesEnumeration(t *testing.T) {
	const maxLen = 7
	f := func(a, b concretePathGen) bool {
		p, q := a.path(), b.path()
		got := Subsumes(p, q)
		wp := words(p, maxLen)
		for w := range words(q, maxLen) {
			if !wp[w] {
				// Found a q-word outside p within the bound.
				if got {
					t.Logf("Subsumes(%s, %s) true but %q not in p", p, q, w)
					return false
				}
				return true
			}
		}
		// All bounded q-words inside p: got=false is still possible
		// (counterexample longer than the bound), so nothing to check.
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

func TestDropSubsumed(t *testing.T) {
	s := MustParseSet("S?, L1?, L+?, L2+?")
	out := s.dropSubsumed()
	if got := out.String(); got != "S?, L+?" {
		t.Errorf("dropSubsumed = %q, want S?, L+?", got)
	}
	// Definite members are never dropped.
	d := MustParseSet("L1, L+?")
	if got := d.dropSubsumed().String(); got != "L1, L+?" {
		t.Errorf("definite dropped: %q", got)
	}
	// A definite wide member absorbs possible narrow ones.
	e := MustParseSet("L1?, L+")
	if got := e.dropSubsumed().String(); got != "L+" {
		t.Errorf("possible member should fold into definite cover: %q", got)
	}
}

func TestCollapseBySignature(t *testing.T) {
	s := MustParseSet("L1, L2, L3")
	out := s.collapseBySignature()
	if got := out.String(); got != "L+" {
		t.Errorf("collapse = %q, want L+ (all definite ⇒ definite)", got)
	}
	mixed := MustParseSet("L1R2, L2R1?")
	if got := mixed.collapseBySignature().String(); got != "L+R+?" {
		t.Errorf("collapse = %q, want L+R+?", got)
	}
	// Different signatures stay apart.
	apart := MustParseSet("L1, R1")
	if got := apart.collapseBySignature().String(); got != "L1, R1" {
		t.Errorf("collapse merged different signatures: %q", got)
	}
	// S keeps its own group.
	withS := MustParseSet("S, L1, L2")
	if got := withS.collapseBySignature().String(); got != "S, L+" {
		t.Errorf("collapse = %q", got)
	}
}

func TestIsExactEdge(t *testing.T) {
	if !MustParse("L1").IsExactEdge(LeftD) {
		t.Error("L1 is an exact left edge")
	}
	for _, bad := range []string{"L2", "L+", "R1", "L1R1", "S", "L1?"} {
		p := MustParse(bad)
		if bad == "L1?" {
			// The flag does not change the expression test.
			if !p.IsExactEdge(LeftD) {
				t.Error("L1? expression is still one left edge")
			}
			continue
		}
		if p.IsExactEdge(LeftD) {
			t.Errorf("%s should not be an exact left edge", bad)
		}
	}
}

// TestWidenConvergesUnderIteration simulates the Figure 3 engine loop:
// repeatedly extend-and-merge must reach a fixed point quickly.
func TestWidenConvergesUnderIteration(t *testing.T) {
	lim := DefaultLimits
	acc := NewSet(Same())
	for i := 0; i < 50; i++ {
		extended := acc.ExtendAll(LeftD).AllPossible()
		next := acc.MergeJoin(extended).Widen(lim)
		if next.Equal(acc) {
			if !strings.Contains(acc.String(), "L") {
				t.Errorf("fixpoint lost direction: %s", acc)
			}
			return
		}
		acc = next
	}
	t.Fatalf("no convergence within 50 iterations: %s", acc)
}
