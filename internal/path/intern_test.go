package path

// Tests for the interning + memoization layer: interned operations must
// agree exactly with the structural implementations they replaced, IDs must
// be stable identities for expressions, and the shared tables must be safe
// under concurrent hammering (run with -race).

import (
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// TestInternIdentity: interning is an identity map on expressions — two
// paths share an ID iff they render to the same expression string.
func TestInternIdentity(t *testing.T) {
	f := func(a, b concretePathGen) bool {
		p, q := a.path(), b.path()
		structural := p.ExprString() == q.ExprString()
		if (p.ID() == q.ID()) != structural {
			t.Logf("ID(%s)=%d ID(%s)=%d structural=%v", p, p.ID(), q, q.ID(), structural)
			return false
		}
		if p.EqualExpr(q) != structural {
			t.Logf("EqualExpr(%s,%s) != %v", p, q, structural)
			return false
		}
		if structural && p.Signature() != q.Signature() {
			t.Logf("equal expressions with different signatures: %s", p)
			return false
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestMemoAgreesWithSlow: the memoized language questions return exactly
// what the uncached NFA decision procedures return, in both query orders
// (a wrong cache key or a wrongly-assumed symmetry would show up here).
func TestMemoAgreesWithSlow(t *testing.T) {
	f := func(a, b concretePathGen) bool {
		p, q := a.path(), b.path()
		if got, want := Subsumes(p, q), subsumesSlow(p.Segs(), q.Segs()); got != want {
			t.Logf("Subsumes(%s,%s) = %v, slow %v", p, q, got, want)
			return false
		}
		if got, want := MayOverlap(p, q), mayOverlapSlow(p.Segs(), q.Segs()); got != want {
			t.Logf("MayOverlap(%s,%s) = %v, slow %v", p, q, got, want)
			return false
		}
		if MayOverlap(p, q) != MayOverlap(q, p) {
			t.Logf("MayOverlap not symmetric on (%s,%s)", p, q)
			return false
		}
		if got, want := MayStrictPrefix(p, q), mayStrictPrefixSlow(p.Segs(), q.Segs()); got != want {
			t.Logf("MayStrictPrefix(%s,%s) = %v, slow %v", p, q, got, want)
			return false
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// structuralSet is the pre-interning reference model of a Set: expression
// string → definite?, with definite-wins on duplicates.
type structuralSet map[string]bool

func (m structuralSet) add(p Path) {
	def, ok := m[p.ExprString()]
	m[p.ExprString()] = (ok && def) || p.Definite()
}

func (m structuralSet) matches(s Set) bool {
	if s.Len() != len(m) {
		return false
	}
	for _, p := range s.Paths() {
		def, ok := m[p.ExprString()]
		if !ok || def != p.Definite() {
			return false
		}
	}
	return true
}

// TestSetOpsAgreeStructural: Add and Union on interned sets behave exactly
// like the structural reference model.
func TestSetOpsAgreeStructural(t *testing.T) {
	f := func(a, b, c, d concretePathGen) bool {
		paths := []Path{a.path(), b.path(), c.path(), d.path()}
		model := structuralSet{}
		var s Set
		for _, p := range paths {
			s = s.Add(p)
			model.add(p)
		}
		if !model.matches(s) {
			t.Logf("Add mismatch: set %s vs model %v", s, model)
			return false
		}
		u := NewSet(paths[0], paths[1]).Union(NewSet(paths[2], paths[3]))
		if !model.matches(u) {
			t.Logf("Union mismatch: set %s vs model %v", u, model)
			return false
		}
		// Set.Equal is now an ID comparison; it must agree with the
		// rendered canonical form.
		again := NewSet(paths[3], paths[2], paths[1], paths[0])
		if !s.Equal(again) || s.String() != again.String() {
			t.Logf("order-insensitivity lost: %s vs %s", s, again)
			return false
		}
		return true
	}
	if err := quick.Check(f, quickCfg()); err != nil {
		t.Error(err)
	}
}

// TestWidenMutualSubsumption is the regression test for the dropSubsumed
// soundness bug: R1D2+ and R+D2+ denote the same language (D covers R), so
// the two possible members subsumed each other and the widening dropped
// both, collapsing the estimate to the empty set. Intern-time
// canonicalization now spells both inputs identically once widened, so the
// set must converge to exactly one surviving member.
func TestWidenMutualSubsumption(t *testing.T) {
	lim := Limits{MaxExact: 2, MaxSegs: 2, MaxPaths: 2}
	s := NewSet(MustParse("R1D2+?"), MustParse("R+D3?"))
	w := s.Widen(lim)
	if w.IsEmpty() {
		t.Fatalf("widen(%s) collapsed to the empty set", s)
	}
	if w.Len() != 1 {
		t.Fatalf("widen(%s) = %s, want a single survivor", s, w)
	}
	// The survivor must cover both inputs (word-level soundness).
	const maxLen = 6
	have := map[string]bool{}
	for _, p := range w.Paths() {
		for word := range words(p, maxLen) {
			have[word] = true
		}
	}
	for _, p := range s.Paths() {
		for word := range words(p, maxLen) {
			if !have[word] {
				t.Errorf("widen(%s) = %s lost word %q of %s", s, w, word, p)
			}
		}
	}
}

// TestInternTableRace hammers the intern table and the memo caches from
// parallel goroutines: IDs must be consistent (one ID per expression
// process-wide) and memoized verdicts must equal the uncached ones. Run
// with -race in CI.
func TestInternTableRace(t *testing.T) {
	const goroutines = 16
	const perG = 400
	var idOf sync.Map // expression string → uint32
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g) * 7919))
			for i := 0; i < perG; i++ {
				p := concretePathGen{Seed: rng.Int63n(512)}.path()
				q := concretePathGen{Seed: rng.Int63n(512)}.path()
				got, loaded := idOf.LoadOrStore(p.ExprString(), p.ID())
				if loaded && got.(uint32) != p.ID() {
					errs <- "two IDs for expression " + p.ExprString()
					return
				}
				if Subsumes(p, q) != subsumesSlow(p.Segs(), q.Segs()) {
					errs <- "memoized Subsumes diverged on " + p.String() + " vs " + q.String()
					return
				}
				if MayOverlap(p, q) != mayOverlapSlow(p.Segs(), q.Segs()) {
					errs <- "memoized MayOverlap diverged on " + p.String() + " vs " + q.String()
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}
