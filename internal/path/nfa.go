package path

// This file decides language questions about path expressions by viewing
// each path as a tiny regular expression over the two-letter edge alphabet
// {l, r}: L^i = l^i, L+ = l l*, D^i = (l|r)^i, D+ = (l|r)(l|r)*, and so on.
// The interference analyses of §5 need exactly two such questions:
//
//	MayOverlap(p, q)  — can p and q denote the same concrete path?
//	                    (used to decide whether two access paths rooted at
//	                    the same handle can reach the same node)
//	MayStrictPrefix(p, q) — can some word of p be a proper prefix of some
//	                    word of q? (used to decide whether an update through
//	                    an edge at the end of p can invalidate a path q)
//
// Both reduce to emptiness of the product of two small NFAs, which for the
// segment-run shape of path expressions is linear-time in practice.

// nfa is a position automaton for one path expression. State k means "k
// edges of the expression have been consumed", where edge positions are the
// unrolled Min-runs of each segment; a segment with Inf contributes a
// self-loop on its last position.
type nfa struct {
	// labels[k] is the direction constraint of the edge leaving state k
	// (entering state k+1). len(labels) = number of states - 1.
	labels []Dir
	// loop[k] reports that state k+1 has a self-loop consuming labels[k]
	// (the Inf tail of a segment).
	loop []bool
}

// buildNFA unrolls the path's segments into the position automaton.
// The accepting state is len(labels).
func buildNFA(segs []Seg) nfa {
	var labels []Dir
	var loop []bool
	for _, s := range segs {
		for i := 0; i < s.Min; i++ {
			labels = append(labels, s.Dir)
			loop = append(loop, s.Inf && i == s.Min-1)
		}
	}
	return nfa{labels: labels, loop: loop}
}

// steps enumerates the successor states of state k on a concrete letter
// (LeftD or RightD). There are at most two: advance, and self-loop.
func (m nfa) steps(k int, letter Dir, visit func(int)) {
	if k < len(m.labels) && subsumesDir(m.labels[k], letter) {
		visit(k + 1)
	}
	if k > 0 && k <= len(m.loop) && m.loop[k-1] && subsumesDir(m.labels[k-1], letter) {
		visit(k) // stay on the Inf tail
	}
}

func (m nfa) accept(k int) bool { return k == len(m.labels) }

// productReach explores the reachable product states of automata a and b and
// reports whether any state satisfying ok is reachable.
func productReach(a, b nfa, ok func(ka, kb int) bool) bool {
	type st struct{ ka, kb int }
	seen := map[st]bool{{0, 0}: true}
	work := []st{{0, 0}}
	for len(work) > 0 {
		s := work[len(work)-1]
		work = work[:len(work)-1]
		if ok(s.ka, s.kb) {
			return true
		}
		for _, letter := range []Dir{LeftD, RightD} {
			a.steps(s.ka, letter, func(na int) {
				b.steps(s.kb, letter, func(nb int) {
					n := st{na, nb}
					if !seen[n] {
						seen[n] = true
						work = append(work, n)
					}
				})
			})
		}
	}
	return false
}

// MayOverlap reports whether the two path expressions can denote the same
// concrete edge sequence — i.e. whether, starting from a common node, the
// two paths can land on the same node. Definiteness flags are ignored; this
// is a may-question. S overlaps only with paths that can be empty (only S).
// Verdicts are memoized on the interned (ID, ID) pair in the operands'
// owning Space; see memo.go.
func MayOverlap(p, q Path) bool {
	if p.node == q.node {
		return true // every path expression denotes at least one word
	}
	if p.node == nil || q.node == nil {
		return false // S denotes only the empty word; non-S paths never do
	}
	key := overlapKey(p.node.id, q.node.id)
	memo := &p.node.sp.overlap
	if v, ok := memo.lookup(key); ok {
		return v
	}
	v := mayOverlapSlow(p.node.segs, q.node.segs)
	memo.store(key, v)
	return v
}

func mayOverlapSlow(ps, qs []Seg) bool {
	a, b := buildNFA(ps), buildNFA(qs)
	return productReach(a, b, func(ka, kb int) bool { return a.accept(ka) && b.accept(kb) })
}

// MayStrictPrefix reports whether some word denoted by p is a strict prefix
// of some word denoted by q: equivalently L(p)·Σ+ ∩ L(q) ≠ ∅. When true, a
// node reached by p can lie strictly on the way to a node reached by q.
// Verdicts are memoized on the interned (ID, ID) pair; see memo.go.
func MayStrictPrefix(p, q Path) bool {
	if q.node == nil {
		return false // nothing is strictly longer than the empty word
	}
	if p.node == nil {
		return true // the empty word prefixes every non-empty word
	}
	key := pairKey(p.node.id, q.node.id)
	memo := &p.node.sp.prefix
	if v, ok := memo.lookup(key); ok {
		return v
	}
	v := mayStrictPrefixSlow(p.node.segs, q.node.segs)
	memo.store(key, v)
	return v
}

func mayStrictPrefixSlow(ps, qs []Seg) bool {
	a, b := buildNFA(ps), buildNFA(qs)
	// Reach a state where p has accepted; then require q to consume at
	// least one more letter and still be able to accept.
	type st struct {
		kb       int
		consumed bool // one extra letter consumed after p accepted
	}
	// First compute all q-states reachable at the moment p accepts.
	var starts []int
	seenStart := map[int]bool{}
	productReach(a, b, func(ka, kb int) bool {
		if a.accept(ka) && !seenStart[kb] {
			seenStart[kb] = true
			starts = append(starts, kb)
		}
		return false
	})
	// Then ask whether from any such q-state, >= 1 more letters lead to
	// acceptance of q.
	seen := map[st]bool{}
	var work []st
	for _, kb := range starts {
		s := st{kb, false}
		if !seen[s] {
			seen[s] = true
			work = append(work, s)
		}
	}
	for len(work) > 0 {
		s := work[len(work)-1]
		work = work[:len(work)-1]
		if s.consumed && b.accept(s.kb) {
			return true
		}
		for _, letter := range []Dir{LeftD, RightD} {
			b.steps(s.kb, letter, func(nb int) {
				n := st{nb, true}
				if !seen[n] {
					seen[n] = true
					work = append(work, n)
				}
			})
		}
	}
	return false
}

// MayRouteThrough reports whether a path pxy (x→y) may pass through the
// f-edge out of a node reached from x by pa (x→a). It decides
// L(pa · f · Σ*) ∩ L(pxy) ≠ ∅ and is the kill-test used by the transfer
// function for the update a.f := b: any x→y path that may route through
// a's old f edge can no longer be considered definite. The pa·f prefix
// interns into the operands' Space (pa may be S, so pxy's Space breaks the
// tie; the process default only when both are S).
func MayRouteThrough(pxy, pa Path, f Dir) bool {
	return spaceOf(procSpace, pa, pxy).MayRouteThrough(pxy, pa, f)
}

// MayRouteThrough is the explicit-Space form: the pa·f prefix interns into
// sp (required when both operands may be S).
func (sp *Space) MayRouteThrough(pxy, pa Path, f Dir) bool {
	prefix := sp.Extend(pa, f)
	if MayOverlap(prefix, pxy) {
		return true
	}
	return MayStrictPrefix(prefix, pxy)
}

// MayDescend reports whether q can reach nodes strictly below where p ends,
// or the same node (p may be a non-strict prefix of q).
func MayDescend(p, q Path) bool {
	return MayOverlap(p, q) || MayStrictPrefix(p, q)
}

// Subsumes reports language inclusion L(q) ⊆ L(p): every concrete path q
// can denote is also denoted by p. The widening uses it to drop possible
// paths already covered by a wider member (e.g. L1? and L2+? inside L+?),
// which is what makes the Figure 3 iteration converge to the paper's L+.
//
// Decision: walk the product of q's NFA with the on-the-fly determinized
// p-NFA; a counterexample is a reachable state where q accepts but no
// p-state does. Verdicts are memoized on the interned (ID, ID) pair.
func Subsumes(p, q Path) bool {
	if p.node == q.node {
		return true
	}
	if q.node == nil || p.node == nil {
		// S ⊆ p only when p can denote the empty word (only S itself, ruled
		// out above); q ⊆ S likewise requires q = S.
		return false
	}
	key := pairKey(p.node.id, q.node.id)
	memo := &p.node.sp.subsume
	if v, ok := memo.lookup(key); ok {
		return v
	}
	v := subsumesSlow(p.node.segs, q.node.segs)
	memo.store(key, v)
	return v
}

func subsumesSlow(ps, qs []Seg) bool {
	pn, qn := buildNFA(ps), buildNFA(qs)
	type st struct {
		kq   int
		pset string // sorted p-state set encoding
	}
	encode := func(set map[int]bool) string {
		buf := make([]byte, len(pn.labels)+1)
		for i := range buf {
			if set[i] {
				buf[i] = '1'
			} else {
				buf[i] = '0'
			}
		}
		return string(buf)
	}
	decode := func(s string) map[int]bool {
		set := map[int]bool{}
		for i := 0; i < len(s); i++ {
			if s[i] == '1' {
				set[i] = true
			}
		}
		return set
	}
	pAccepts := func(set map[int]bool) bool { return set[len(pn.labels)] }
	start := st{0, encode(map[int]bool{0: true})}
	seen := map[st]bool{start: true}
	work := []st{start}
	for len(work) > 0 {
		s := work[len(work)-1]
		work = work[:len(work)-1]
		pset := decode(s.pset)
		if qn.accept(s.kq) && !pAccepts(pset) {
			return false
		}
		for _, letter := range []Dir{LeftD, RightD} {
			next := map[int]bool{}
			for kp := range pset {
				pn.steps(kp, letter, func(n int) { next[n] = true })
			}
			qn.steps(s.kq, letter, func(nq int) {
				n := st{nq, encode(next)}
				if !seen[n] {
					seen[n] = true
					work = append(work, n)
				}
			})
		}
	}
	return true
}
