package path

import (
	"sync"
	"sync/atomic"
)

// Memoization of the language questions on interned path expressions.
// Because interning gives every distinct expression a unique small ID, a
// verdict for a pair of expressions is cached once per Space epoch under
// the key id(a)<<32 | id(b) and every later query is a map hit instead of
// an NFA product walk. The widening limits bound the universe of
// expressions, so the tables stay small within one epoch; like the intern
// table they are sharded and mutex-guarded for the concurrent analysis
// fixpoint, owned by the Space, and dropped wholesale by Space.Reset.

// pairKey builds the directed cache key for an (a, b) expression pair.
func pairKey(a, b uint32) uint64 { return uint64(a)<<32 | uint64(b) }

// overlapKey is pairKey with the operands ordered: MayOverlap is symmetric,
// so both query directions share one cache line.
func overlapKey(a, b uint32) uint64 {
	if a > b {
		a, b = b, a
	}
	return pairKey(a, b)
}

// memoShard carries its own hit/miss counters so the hot lookup path never
// touches a cache line shared across shards (a table-wide counter would
// serialize every worker of the concurrent fixpoint on one atomic word).
type memoShard struct {
	mu     sync.RWMutex
	m      map[uint64]bool
	hits   atomic.Uint64
	misses atomic.Uint64
}

// memoTable is a sharded (key → verdict) cache with hit/miss counters.
type memoTable struct {
	shards [internShards]memoShard
}

func (t *memoTable) lookup(key uint64) (verdict, ok bool) {
	sh := &t.shards[key%internShards]
	sh.mu.RLock()
	v, ok := sh.m[key]
	sh.mu.RUnlock()
	if ok {
		sh.hits.Add(1)
	} else {
		sh.misses.Add(1)
	}
	return v, ok
}

func (t *memoTable) store(key uint64, v bool) {
	sh := &t.shards[key%internShards]
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[uint64]bool)
	}
	sh.m[key] = v
	sh.mu.Unlock()
}

func (t *memoTable) size() int {
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// traffic sums the per-shard hit/miss counters.
func (t *memoTable) traffic() (hits, misses uint64) {
	for i := range t.shards {
		sh := &t.shards[i]
		hits += sh.hits.Load()
		misses += sh.misses.Load()
	}
	return hits, misses
}

// reset drops every shard's map and restarts the counters (Space.Reset).
func (t *memoTable) reset() {
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.Lock()
		sh.m = nil
		sh.mu.Unlock()
		sh.hits.Store(0)
		sh.misses.Store(0)
	}
}

// MemoizedVerdicts reports how many subsumption/overlap/prefix verdicts
// the process-default Space's current epoch holds (monitoring hook for
// silbench).
func MemoizedVerdicts() int {
	sp := procSpace
	return sp.subsume.size() + sp.overlap.size() + sp.prefix.size()
}

// residueTable caches Residue results per (expression, direction), computed
// on the definite form; Path.Residue adjusts flags for possible inputs.
// The cached slices are immutable.
type residueTable struct {
	mu sync.RWMutex
	m  map[uint64][]Path
}

// residueMemo caches in the node's owning Space, so residues of a private
// Space's expressions never touch another Space's tables.
func residueMemo(n *pnode, f Dir) []Path {
	t := &n.sp.residue
	key := uint64(n.id)<<2 | uint64(f)
	t.mu.RLock()
	r, ok := t.m[key]
	t.mu.RUnlock()
	if ok {
		return r
	}
	r = residueCompute(n, f)
	t.mu.Lock()
	t.m[key] = r
	t.mu.Unlock()
	return r
}
