package path

import "sync"

// Memoization of the language questions on interned path expressions.
// Because interning gives every distinct expression a unique small ID, a
// verdict for a pair of expressions is cached once per process under the
// key id(a)<<32 | id(b) and every later query is a map hit instead of an
// NFA product walk. The widening limits bound the universe of expressions,
// so the tables stay small; like the intern table they are sharded and
// mutex-guarded for the concurrent analysis fixpoint.

// pairKey builds the directed cache key for an (a, b) expression pair.
func pairKey(a, b uint32) uint64 { return uint64(a)<<32 | uint64(b) }

// overlapKey is pairKey with the operands ordered: MayOverlap is symmetric,
// so both query directions share one cache line.
func overlapKey(a, b uint32) uint64 {
	if a > b {
		a, b = b, a
	}
	return pairKey(a, b)
}

type memoShard struct {
	mu sync.RWMutex
	m  map[uint64]bool
}

// memoTable is a sharded (key → verdict) cache.
type memoTable struct {
	shards [internShards]memoShard
}

func (t *memoTable) lookup(key uint64) (verdict, ok bool) {
	sh := &t.shards[key%internShards]
	sh.mu.RLock()
	v, ok := sh.m[key]
	sh.mu.RUnlock()
	return v, ok
}

func (t *memoTable) store(key uint64, v bool) {
	sh := &t.shards[key%internShards]
	sh.mu.Lock()
	if sh.m == nil {
		sh.m = make(map[uint64]bool)
	}
	sh.m[key] = v
	sh.mu.Unlock()
}

func (t *memoTable) size() int {
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

var (
	subsumeMemo memoTable
	overlapMemo memoTable
	prefixMemo  memoTable
)

// MemoizedVerdicts reports how many subsumption/overlap/prefix verdicts are
// cached process-wide (monitoring hook for silbench).
func MemoizedVerdicts() int {
	return subsumeMemo.size() + overlapMemo.size() + prefixMemo.size()
}

// residueTab caches Residue results per (expression, direction), computed
// on the definite form; Path.Residue adjusts flags for possible inputs.
// The cached slices are immutable.
var residueTab = struct {
	mu sync.RWMutex
	m  map[uint64][]Path
}{m: make(map[uint64][]Path)}

func residueMemo(n *pnode, f Dir) []Path {
	key := uint64(n.id)<<2 | uint64(f)
	residueTab.mu.RLock()
	r, ok := residueTab.m[key]
	residueTab.mu.RUnlock()
	if ok {
		return r
	}
	r = residueCompute(n, f)
	residueTab.mu.Lock()
	residueTab.m[key] = r
	residueTab.mu.Unlock()
	return r
}
