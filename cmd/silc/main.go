// Command silc is the SIL "compiler" driver: it parses, checks, analyzes
// and parallelizes a SIL source file and prints the requested artifacts.
//
// Usage:
//
//	silc [-report] [-par] [-seq] [-matrices] [-no-readonly] file.sil
//
// With no file argument, silc reads the built-in add_and_reverse program
// (the paper's Figure 7).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/par"
	"repro/internal/progs"
	"repro/internal/sil/ast"
)

func main() {
	log.SetFlags(0)
	report := flag.Bool("report", true, "print the analysis report")
	parOut := flag.Bool("par", true, "print the parallelized program")
	seqOut := flag.Bool("seq", false, "print the normalized sequential program")
	matrices := flag.Bool("matrices", false, "print the path matrix before every procedure call")
	noReadOnly := flag.Bool("no-readonly", false, "disable the §5.2 read-only argument refinement")
	flag.Parse()

	src := progs.AddAndReverse
	if flag.NArg() > 0 {
		data, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			log.Fatal(err)
		}
		src = string(data)
	}
	opts := core.DefaultOptions()
	if *noReadOnly {
		opts.Par = par.Options{FuseBasic: true, FuseCalls: true, FuseSequences: true}
	}
	pipe, err := core.Build(src, opts)
	if err != nil {
		log.Fatal(err)
	}
	if *report {
		fmt.Print(pipe.Report())
		fmt.Println()
	}
	if *matrices {
		for _, d := range pipe.Prog.Decls {
			var walk func(s ast.Stmt)
			walk = func(s ast.Stmt) {
				switch s := s.(type) {
				case *ast.Block:
					for _, st := range s.Stmts {
						walk(st)
					}
				case *ast.If:
					walk(s.Then)
					if s.Else != nil {
						walk(s.Else)
					}
				case *ast.While:
					walk(s.Body)
				case *ast.CallStmt:
					fmt.Printf("--- matrix before %s(...) at %s (in %s) ---\n%s\n\n",
						s.Name, s.Pos(), d.Name, pipe.MatrixBefore(s))
				}
			}
			walk(d.Body)
		}
	}
	if *seqOut {
		fmt.Println(pipe.SequentialText())
	}
	if *parOut {
		fmt.Println(pipe.ParallelText())
	}
}
