package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// The -baseline regression gate, split out of main so the comparison is
// unit-testable. The gate compares corpus INTERSECTIONS (a baseline from
// an older binary may lack programs added since, and vice versa) — and it
// must fail LOUDLY when that intersection is empty: a renamed or all-new
// corpus shares nothing with the baseline, and silently passing such a
// comparison would turn the gate into a no-op exactly when the benchmark
// surface changed the most.

// gateRegression loads the baseline file and applies compareReports,
// narrating to w (os.Stderr in production).
func gateRegression(w io.Writer, fresh report, baselineFile string, maxRegress float64) error {
	data, err := os.ReadFile(baselineFile)
	if err != nil {
		return fmt.Errorf("read baseline: %w", err)
	}
	var base report
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parse baseline: %w", err)
	}
	if err := compareReports(w, fresh, base, maxRegress); err != nil {
		return fmt.Errorf("%w (vs %s)", err, baselineFile)
	}
	return nil
}

// compareReports gates fresh against base: an error means the gate fails
// (regression, or a comparison that would be vacuous). Totals are compared
// over the corpus intersection; programs outside it are reported, never
// silently dropped. Per-program checks use twice the total budget —
// individual programs are noisier than the corpus sum.
func compareReports(w io.Writer, fresh, base report, maxRegress float64) error {
	if base.TotalNsPerOp <= 0 {
		return fmt.Errorf("baseline has no total_ns_per_op")
	}
	baseByName := make(map[string]float64, len(base.Corpus))
	for _, r := range base.Corpus {
		baseByName[r.Name] = r.NsPerOp
	}
	freshNames := make(map[string]bool, len(fresh.Corpus))
	var shared int
	var freshTotal, baseTotal float64
	for _, r := range fresh.Corpus {
		freshNames[r.Name] = true
		if b, ok := baseByName[r.Name]; ok {
			shared++
			freshTotal += r.NsPerOp
			baseTotal += b
		} else {
			fmt.Fprintf(w, "gate: %s missing from baseline; excluded from the total\n", r.Name)
		}
	}
	for _, r := range base.Corpus {
		if !freshNames[r.Name] {
			fmt.Fprintf(w, "gate: %s missing from fresh report; excluded from the total\n", r.Name)
		}
	}
	if shared == 0 {
		// An all-new (or renamed) corpus must not pass vacuously: there is
		// nothing to compare, which is a gate failure, not a gate pass.
		return fmt.Errorf("empty corpus intersection: baseline has %d program(s), fresh report has %d, none shared — cannot gate",
			len(base.Corpus), len(fresh.Corpus))
	}
	if baseTotal <= 0 {
		return fmt.Errorf("baseline total over the %d shared program(s) is zero — baseline is unusable", shared)
	}
	var failures []string
	if r := freshTotal/baseTotal - 1; r > maxRegress {
		failures = append(failures, fmt.Sprintf(
			"total: %.2fms -> %.2fms (+%.1f%%, limit %.0f%%)",
			baseTotal/1e6, freshTotal/1e6, r*100, maxRegress*100))
	}
	for _, r := range fresh.Corpus {
		b, ok := baseByName[r.Name]
		if !ok || b < 1e6 {
			// New program, or one measured in microseconds — per-program
			// timings below ~1ms are dominated by scheduler/GC noise; the
			// total still covers them.
			continue
		}
		if reg := r.NsPerOp/b - 1; reg > 2*maxRegress {
			failures = append(failures, fmt.Sprintf(
				"%s: %.0fns -> %.0fns (+%.1f%%, limit %.0f%%)",
				r.Name, b, r.NsPerOp, reg*100, 2*maxRegress*100))
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(w, "REGRESSION "+f)
		}
		return fmt.Errorf("%d regression(s)", len(failures))
	}
	return nil
}

// median returns the middle value (mean of the middle two for even
// lengths) of an unsorted sample set.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}
