package main

import (
	"bytes"
	"strings"
	"testing"
)

func mkReport(progs map[string]float64) report {
	var rep report
	for name, ns := range progs {
		rep.Corpus = append(rep.Corpus, result{Name: name, NsPerOp: ns})
		rep.TotalNsPerOp += ns
	}
	return rep
}

func TestCompareReportsPassesWithinLimit(t *testing.T) {
	base := mkReport(map[string]float64{"a": 10e6, "b": 20e6})
	fresh := mkReport(map[string]float64{"a": 10.5e6, "b": 21e6}) // +5%
	var w bytes.Buffer
	if err := compareReports(&w, fresh, base, 0.12); err != nil {
		t.Errorf("5%% regression under a 12%% limit must pass: %v", err)
	}
}

func TestCompareReportsFailsOnTotalRegression(t *testing.T) {
	base := mkReport(map[string]float64{"a": 10e6, "b": 20e6})
	fresh := mkReport(map[string]float64{"a": 14e6, "b": 26e6}) // +33%
	var w bytes.Buffer
	err := compareReports(&w, fresh, base, 0.12)
	if err == nil {
		t.Fatal("33% total regression must fail the gate")
	}
	if !strings.Contains(w.String(), "REGRESSION total") {
		t.Errorf("missing loud total-regression message, got: %s", w.String())
	}
}

func TestCompareReportsFailsOnSingleProgramRegression(t *testing.T) {
	// Total stays under the limit (one big program dominates), but one
	// program regresses past twice the budget.
	base := mkReport(map[string]float64{"big": 100e6, "small": 2e6})
	fresh := mkReport(map[string]float64{"big": 100e6, "small": 3e6}) // +50%
	var w bytes.Buffer
	if err := compareReports(&w, fresh, base, 0.12); err == nil {
		t.Fatal("a 50% single-program regression must fail the gate")
	}
	if !strings.Contains(w.String(), "REGRESSION small") {
		t.Errorf("missing per-program message, got: %s", w.String())
	}
}

func TestCompareReportsEmptyIntersectionFailsLoudly(t *testing.T) {
	// An all-new corpus shares nothing with the baseline: there is nothing
	// to compare, and the gate must FAIL (explicitly), not pass vacuously.
	base := mkReport(map[string]float64{"old1": 10e6, "old2": 20e6})
	fresh := mkReport(map[string]float64{"new1": 10e6, "new2": 20e6})
	var w bytes.Buffer
	err := compareReports(&w, fresh, base, 0.12)
	if err == nil {
		t.Fatal("empty corpus intersection must fail the gate")
	}
	if !strings.Contains(err.Error(), "empty corpus intersection") {
		t.Errorf("error must name the empty intersection, got: %v", err)
	}
	// Both sides' members are narrated, never silently dropped.
	for _, name := range []string{"old1", "old2", "new1", "new2"} {
		if !strings.Contains(w.String(), name) {
			t.Errorf("gate narration must mention %s, got: %s", name, w.String())
		}
	}
}

func TestCompareReportsEmptyFreshReportFails(t *testing.T) {
	base := mkReport(map[string]float64{"a": 10e6})
	var w bytes.Buffer
	if err := compareReports(&w, report{}, base, 0.12); err == nil {
		t.Fatal("an empty fresh report must fail the gate")
	}
}

func TestCompareReportsUnusableBaselineFails(t *testing.T) {
	var w bytes.Buffer
	// No total at all.
	if err := compareReports(&w, mkReport(map[string]float64{"a": 1e6}), report{}, 0.12); err == nil {
		t.Fatal("a baseline without total_ns_per_op must fail the gate")
	}
	// Shared programs but zeroed timings (schema drift): unusable.
	base := mkReport(map[string]float64{"a": 0})
	base.TotalNsPerOp = 5e6
	if err := compareReports(&w, mkReport(map[string]float64{"a": 1e6}), base, 0.12); err == nil {
		t.Fatal("a baseline whose shared timings are zero must fail the gate")
	}
}

func TestCompareReportsPartialIntersectionComparesSharedOnly(t *testing.T) {
	// Programs outside the intersection must not distort the total: the
	// fresh corpus gained a new expensive program, but the shared part is
	// unchanged, so the gate passes.
	base := mkReport(map[string]float64{"a": 10e6, "gone": 50e6})
	fresh := mkReport(map[string]float64{"a": 10e6, "new": 500e6})
	var w bytes.Buffer
	if err := compareReports(&w, fresh, base, 0.12); err != nil {
		t.Errorf("unchanged shared corpus must pass: %v", err)
	}
	if !strings.Contains(w.String(), "new missing from baseline") ||
		!strings.Contains(w.String(), "gone missing from fresh report") {
		t.Errorf("intersection exclusions must be narrated, got: %s", w.String())
	}
}

func TestMedian(t *testing.T) {
	if m := median(nil); m != 0 {
		t.Errorf("median(nil) = %v", m)
	}
	if m := median([]float64{3, 1, 2}); m != 2 {
		t.Errorf("median odd = %v, want 2", m)
	}
	if m := median([]float64{4, 1, 3, 2}); m != 2.5 {
		t.Errorf("median even = %v, want 2.5", m)
	}
}
