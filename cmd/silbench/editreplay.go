package main

// The -edit-replay mode: the incremental-analysis benchmark. For each
// corpus program it synthesizes a single-procedure edit (a shape-neutral
// integer tweak, so the program recompiles and the analysis verdicts
// stay comparable), replays the edit against a summary-store-backed
// service, and reports four latencies per program:
//
//	cold        — first analysis, empty store
//	resubmit    — identical program re-analyzed seeded from the store
//	warm_edit   — the edited program analyzed with every untouched
//	              procedure's summary still warm
//	cache_hit   — the result cache replaying rendered bytes (the floor)
//
// alongside the engine-level dirty-work accounting: FixpointSteps of the
// cold and seeded runs, and how many procedures stayed seeded across the
// edit. The target the report tracks (non-gating, like -server) is
// warm_edit staying within a small factor of cache_hit and the seeded
// step count collapsing to the edited SCC plus its callers.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"repro/internal/analysis"
	"repro/internal/progs"
	"repro/internal/service"
	"repro/internal/sil/ast"
	"repro/internal/sil/printer"
)

type editReplayConfig struct {
	Out         string
	Samples     int
	Workers     int
	MaxContexts int
}

// editProgram is the per-program edit-replay record.
type editProgram struct {
	Name       string `json:"name"`
	EditedProc string `json:"edited_proc"`
	Procs      int    `json:"procs"`

	// Engine-level dirty-work accounting (deterministic).
	ColdSteps     int  `json:"cold_steps"`      // fixpoint items, empty tables
	EditColdSteps int  `json:"edit_cold_steps"` // edited program, empty tables
	EditWarmSteps int  `json:"edit_warm_steps"` // edited program, carried seeds
	SeededProcs   int  `json:"seeded_procs"`    // summaries that survived the edit
	SeedsFellBack bool `json:"seeds_fell_back,omitempty"`

	// Service-level latencies (medians over -samples).
	ColdMs     float64 `json:"cold_ms"`
	ResubmitMs float64 `json:"resubmit_ms"`
	WarmEditMs float64 `json:"warm_edit_ms"`
	CacheHitMs float64 `json:"cache_hit_ms"`
}

// editReplayReport is the whole BENCH_incremental.json document.
type editReplayReport struct {
	Schema    string    `json:"schema"`
	Timestamp time.Time `json:"timestamp"`
	GoVersion string    `json:"go_version"`
	NumCPU    int       `json:"num_cpu"`
	Samples   int       `json:"samples"`
	Mode      string    `json:"mode"`

	Programs []editProgram `json:"programs"`

	// Headline ratios, medians across programs: how close a warm edited
	// re-analysis comes to a byte-replay cache hit, what it saves against
	// a cold analysis, and what fraction of the cold fixpoint work an
	// edit re-runs.
	WarmEditOverCacheHit float64 `json:"warm_edit_over_cache_hit"`
	WarmEditOverCold     float64 `json:"warm_edit_over_cold"`
	WarmStepFraction     float64 `json:"warm_step_fraction"`
}

// mutateOneInt finds the last procedure (preferring non-main) containing
// an integer literal in its body, adds delta to that literal, and returns
// the procedure's name plus an undo function. Returns "" when the program
// has no editable literal.
func mutateOneInt(prog *ast.Program, delta int) (string, func()) {
	var lit *ast.IntLit
	var in string
	var findExpr func(e ast.Expr)
	findExpr = func(e ast.Expr) {
		switch e := e.(type) {
		case *ast.IntLit:
			lit = e
		case *ast.Binary:
			findExpr(e.X)
			findExpr(e.Y)
		case *ast.Unary:
			findExpr(e.X)
		case *ast.CallExpr:
			for _, a := range e.Args {
				findExpr(a)
			}
		}
	}
	pick := func(d *ast.ProcDecl) *ast.IntLit {
		lit = nil
		var walk func(s ast.Stmt)
		walk = func(s ast.Stmt) {
			switch s := s.(type) {
			case *ast.Block:
				for _, st := range s.Stmts {
					walk(st)
				}
			case *ast.Par:
				for _, st := range s.Branches {
					walk(st)
				}
			case *ast.If:
				findExpr(s.Cond)
				walk(s.Then)
				walk(s.Else)
			case *ast.While:
				findExpr(s.Cond)
				walk(s.Body)
			case *ast.Assign:
				findExpr(s.Rhs)
			case *ast.CallStmt:
				for _, a := range s.Args {
					findExpr(a)
				}
			}
		}
		walk(d.Body)
		return lit
	}
	var chosen *ast.IntLit
	for _, d := range prog.Decls {
		if l := pick(d); l != nil {
			if chosen == nil || d.Name != "main" {
				chosen, in = l, d.Name
			}
		}
	}
	if chosen == nil {
		return "", nil
	}
	old := chosen.Val
	chosen.Val = old + int64(delta)
	return in, func() { chosen.Val = old }
}

// editedSource renders the program with one integer literal shifted by
// delta, returning the edited canonical source and the edited procedure.
func editedSource(src string, delta int) (edited, proc string, err error) {
	prog, err := progs.Compile(src)
	if err != nil {
		return "", "", err
	}
	proc, undo := mutateOneInt(prog, delta)
	if proc == "" {
		return "", "", nil
	}
	defer undo()
	return printer.Print(prog), proc, nil
}

func runEditReplay(cfg editReplayConfig) error {
	if cfg.Samples < 1 {
		cfg.Samples = 1
	}
	aopts := analysis.Options{Workers: cfg.Workers, MaxContexts: cfg.MaxContexts}
	mode := "context"
	if !aopts.ContextSensitive() {
		mode = "merged"
	}
	rep := editReplayReport{
		Schema:    "sil-bench-incremental/v1",
		Timestamp: time.Now().UTC(),
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Samples:   cfg.Samples,
		Mode:      mode,
	}
	var ratios, saves, fractions []float64
	for _, e := range progs.Catalog {
		ep, err := replayOne(e, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", e.Name, err)
		}
		if ep == nil {
			continue // no editable literal
		}
		rep.Programs = append(rep.Programs, *ep)
		if ep.CacheHitMs > 0 {
			ratios = append(ratios, ep.WarmEditMs/ep.CacheHitMs)
		}
		if ep.ColdMs > 0 {
			saves = append(saves, ep.WarmEditMs/ep.ColdMs)
		}
		if ep.EditColdSteps > 0 {
			fractions = append(fractions, float64(ep.EditWarmSteps)/float64(ep.EditColdSteps))
		}
		fmt.Fprintf(os.Stderr, "%-16s edit=%-10s steps %3d -> %3d (seeded %d/%d)  cold %.2fms resubmit %.2fms warm-edit %.2fms cache-hit %.2fms\n",
			ep.Name, ep.EditedProc, ep.EditColdSteps, ep.EditWarmSteps, ep.SeededProcs, ep.Procs,
			ep.ColdMs, ep.ResubmitMs, ep.WarmEditMs, ep.CacheHitMs)
	}
	rep.WarmEditOverCacheHit = median(ratios)
	rep.WarmEditOverCold = median(saves)
	rep.WarmStepFraction = median(fractions)
	fmt.Fprintf(os.Stderr, "edit-replay: warm-edit/cache-hit median %.1fx, warm-edit/cold median %.2f, warm step fraction median %.2f over %d programs\n",
		rep.WarmEditOverCacheHit, rep.WarmEditOverCold, rep.WarmStepFraction, len(rep.Programs))

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if cfg.Out == "-" {
		os.Stdout.Write(data)
		return nil
	}
	if err := os.WriteFile(cfg.Out, data, 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s\n", cfg.Out)
	return nil
}

// replayOne runs the edit-replay protocol for one corpus program; nil
// when the program carries no editable integer literal.
func replayOne(e progs.Entry, cfg editReplayConfig) (*editProgram, error) {
	aopts := analysis.Options{ExternalRoots: e.Roots, Workers: cfg.Workers, MaxContexts: cfg.MaxContexts}

	// Engine-level accounting with the FIRST edit variant: carry exactly
	// the seeds the summary store would (unchanged cohort fingerprints).
	editSrc, editedProc, err := editedSource(e.Source, 1)
	if err != nil {
		return nil, err
	}
	if editedProc == "" {
		return nil, nil
	}
	orig, err := progs.Compile(e.Source)
	if err != nil {
		return nil, err
	}
	edited, err := progs.Compile(editSrc)
	if err != nil {
		return nil, fmt.Errorf("edited program does not recompile: %w", err)
	}
	cold, err := analysis.Analyze(context.Background(), orig, aopts)
	if err != nil {
		return nil, err
	}
	seeds := analysis.ExportSeeds(cold)
	origFps := service.ProcFingerprints(orig)
	editFps := service.ProcFingerprints(edited)
	carried := map[string]*analysis.ProcSeed{}
	for name, seed := range seeds {
		if editFps[name].Cohort == origFps[name].Cohort {
			carried[name] = seed
		}
	}
	editCold, err := analysis.Analyze(context.Background(), edited, aopts)
	if err != nil {
		return nil, err
	}
	wopts := aopts
	wopts.Seeds = carried
	editWarm, err := analysis.Analyze(context.Background(), edited, wopts)
	if err != nil {
		return nil, err
	}
	ep := &editProgram{
		Name:          e.Name,
		EditedProc:    editedProc,
		Procs:         len(orig.Decls),
		ColdSteps:     cold.FixpointSteps,
		EditColdSteps: editCold.FixpointSteps,
		EditWarmSteps: editWarm.FixpointSteps,
		SeededProcs:   editWarm.SeededProcs,
		SeedsFellBack: editWarm.SeedsFellBack,
	}

	// Service-level latencies. Each sample uses fresh services (cold
	// state is unrepeatable otherwise) and a fresh edit delta so the
	// edited procedures genuinely miss the store every sample.
	var coldMs, resubMs, warmMs, hitMs []float64
	for s := 0; s < cfg.Samples; s++ {
		editSrc, _, err := editedSource(e.Source, s+1)
		if err != nil {
			return nil, err
		}
		svc := service.New(service.Options{
			Analysis:      aopts,
			CacheCapacity: -1, // every request re-analyzes: isolates the store's effect
		})
		req := service.Request{Name: e.Name, Source: e.Source, Roots: e.Roots}
		timed := func(r service.Request) (float64, error) {
			start := time.Now()
			resp := svc.Analyze(context.Background(), r)
			ms := float64(time.Since(start).Nanoseconds()) / 1e6
			if resp.Err != nil {
				return 0, fmt.Errorf("analyze %s: %v", r.Name, resp.Err)
			}
			return ms, nil
		}
		ms, err := timed(req)
		if err != nil {
			return nil, err
		}
		coldMs = append(coldMs, ms)
		if ms, err = timed(req); err != nil {
			return nil, err
		}
		resubMs = append(resubMs, ms)
		if ms, err = timed(service.Request{Name: e.Name, Source: editSrc, Roots: e.Roots}); err != nil {
			return nil, err
		}
		warmMs = append(warmMs, ms)

		// Cache-hit floor: a default service replaying rendered bytes.
		cached := service.New(service.Options{Analysis: aopts})
		cresp := cached.Analyze(context.Background(), req)
		if cresp.Err != nil {
			return nil, fmt.Errorf("cache warmup: %v", cresp.Err)
		}
		start := time.Now()
		cresp = cached.Analyze(context.Background(), req)
		if cresp.Err != nil {
			return nil, fmt.Errorf("cache hit: %v", cresp.Err)
		}
		hitMs = append(hitMs, float64(time.Since(start).Nanoseconds())/1e6)
	}
	ep.ColdMs = median(coldMs)
	ep.ResubmitMs = median(resubMs)
	ep.WarmEditMs = median(warmMs)
	ep.CacheHitMs = median(hitMs)
	return ep, nil
}
