// Command silbench runs the analysis pipeline over the internal/progs
// corpus and emits a machine-readable benchmark report, so every PR leaves
// a perf trajectory behind (CI uploads the file as an artifact).
//
// Usage:
//
//	silbench [-out BENCH_analysis.json] [-iters 25] [-workers 0] [-min-ms 200]
//
// For each corpus program it measures the full analyze+parallelize path
// (the hot path this repository optimizes) and reports ns/op alongside the
// analysis verdicts, plus process-wide intern/memo table statistics.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"repro/internal/analysis"
	"repro/internal/par"
	"repro/internal/path"
	"repro/internal/progs"
)

// result is the per-program benchmark record.
type result struct {
	Name          string  `json:"name"`
	Iters         int     `json:"iters"`
	NsPerOp       float64 `json:"ns_per_op"`
	Diags         int     `json:"diags"`
	Shape         string  `json:"shape"`
	ExitShape     string  `json:"exit_shape"`
	ParStatements int     `json:"par_statements"`
}

// report is the whole BENCH_analysis.json document.
type report struct {
	Schema        string    `json:"schema"`
	Timestamp     time.Time `json:"timestamp"`
	GoVersion     string    `json:"go_version"`
	NumCPU        int       `json:"num_cpu"`
	Workers       int       `json:"workers"`
	Corpus        []result  `json:"corpus"`
	TotalNsPerOp  float64   `json:"total_ns_per_op"`
	InternedPaths int       `json:"interned_paths"`
	MemoVerdicts  int       `json:"memo_verdicts"`
}

func main() {
	log.SetFlags(0)
	out := flag.String("out", "BENCH_analysis.json", "output file (- for stdout)")
	iters := flag.Int("iters", 25, "fixed iterations per program (0 = time-based)")
	minMS := flag.Int("min-ms", 200, "minimum measurement time per program when iters=0")
	workers := flag.Int("workers", 0, "analysis worker pool size (0 = default)")
	flag.Parse()

	rep := report{
		Schema:    "sil-bench/v1",
		Timestamp: time.Now().UTC(),
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Workers:   analysis.Options{Workers: *workers}.EffectiveWorkers(),
	}
	for _, e := range progs.Catalog {
		r, err := benchOne(e, *iters, time.Duration(*minMS)*time.Millisecond, *workers)
		if err != nil {
			log.Fatalf("%s: %v", e.Name, err)
		}
		rep.Corpus = append(rep.Corpus, r)
		rep.TotalNsPerOp += r.NsPerOp
		fmt.Fprintf(os.Stderr, "%-16s %12.0f ns/op  shape=%-6s diags=%d parstmts=%d\n",
			r.Name, r.NsPerOp, r.Shape, r.Diags, r.ParStatements)
	}
	rep.InternedPaths = path.InternedCount()
	rep.MemoVerdicts = path.MemoizedVerdicts()

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "wrote %s (total %.2f ms/op over %d programs)\n",
		*out, rep.TotalNsPerOp/1e6, len(rep.Corpus))
}

// benchOne measures one corpus program end to end (compile once, then
// analyze+parallelize per iteration, which is the optimized hot path).
func benchOne(e progs.Entry, iters int, minTime time.Duration, workers int) (result, error) {
	prog, err := progs.Compile(e.Source)
	if err != nil {
		return result{}, err
	}
	opts := analysis.Options{ExternalRoots: e.Roots, Workers: workers}
	run := func() (*analysis.Info, *par.Result, error) {
		info, err := analysis.Analyze(prog, opts)
		if err != nil {
			return nil, nil, err
		}
		return info, par.Parallelize(info, par.DefaultOptions), nil
	}
	// Warm up once (also populates the process-wide memo tables the way a
	// long-lived service would see them).
	info, parRes, err := run()
	if err != nil {
		return result{}, err
	}
	var elapsed time.Duration
	n := 0
	start := time.Now()
	for {
		if _, _, err := run(); err != nil {
			return result{}, err
		}
		n++
		elapsed = time.Since(start)
		if iters > 0 {
			if n >= iters {
				break
			}
		} else if elapsed >= minTime {
			break
		}
	}
	return result{
		Name:          e.Name,
		Iters:         n,
		NsPerOp:       float64(elapsed.Nanoseconds()) / float64(n),
		Diags:         len(info.Diags),
		Shape:         info.Shape().String(),
		ExitShape:     info.ExitShape().String(),
		ParStatements: parRes.Stats.ParStatements,
	}, nil
}
