// Command silbench runs the analysis pipeline over the internal/progs
// corpus and emits a machine-readable benchmark report, so every PR leaves
// a perf trajectory behind (CI uploads the file as an artifact).
//
// Usage:
//
//	silbench [-out BENCH_analysis.json] [-iters 25] [-samples 1] [-workers 0]
//	         [-min-ms 200] [-ctx 0] [-reset] [-baseline FILE] [-max-regress 0.15]
//
// For each corpus program it measures the full analyze+parallelize path
// (the hot path this repository optimizes) and reports ns/op alongside the
// analysis verdicts, plus the path.Space table statistics (sizes and memo
// hit rate). -ctx selects the summary mode: 0 runs the default
// context-sensitive table (cap analysis.DefaultMaxContexts), a positive
// value overrides the cap, and a negative value disables context
// sensitivity ("merged mode", the pre-context behavior); the report
// carries the mode plus per-program context-table statistics so the two
// modes leave separately gateable trajectories. With -reset it then resets the process Space — the long-lived
// service epoch boundary — and records the post-reset counters, proving
// the intern/memo memory is returned. With -baseline it compares the fresh
// numbers against a stored report and exits non-zero on regression: the CI
// gate fails a PR when total corpus ns/op regresses by more than
// -max-regress (default 15%), or any single program by twice that. With
// -samples N each program is measured N times and the per-program MEDIAN
// ns/op is reported — the CI gate runs 5 samples so one descheduled
// measurement on a shared runner cannot fail (or mask) a regression; the
// median is robust where the mean is not.
//
// With -server the tool switches to the serving-layer load mode instead:
//
//	silbench -server [-clients 8] [-requests 200] [-zipf 1.2] [-cache 256]
//	         [-shards 1] [-ctx 0] [-out BENCH_server.json]
//
// It starts an in-process silserver (internal/service), drives it with N
// concurrent HTTP clients issuing a Zipf-skewed corpus mix, and reports
// cold (cache-miss) vs warm (cache-hit) latency percentiles, the hit rate,
// and the server's /stats counters — a non-gating measurement artifact.
// -shards mirrors silserver -shards (fingerprint-sharded serving); the
// report then carries per-shard counters alongside the aggregate, so the
// sharded and single-shard artifacts compare directly.
//
// With -edit-replay the tool measures the incremental-analysis path
// instead:
//
//	silbench -edit-replay [-samples 3] [-ctx 0] [-out BENCH_incremental.json]
//
// For each corpus program it synthesizes a single-procedure edit, replays
// it against a summary-store-backed service, and reports cold / seeded
// resubmit / warm-after-edit / cache-hit latencies plus the fixpoint step
// counts showing how much of the program an edit actually re-analyzes
// (see editreplay.go). Non-gating, like -server.
package main

import (
	"context"

	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"time"

	"repro/internal/analysis"
	"repro/internal/matrix"
	"repro/internal/par"
	"repro/internal/path"
	"repro/internal/progs"
)

// result is the per-program benchmark record.
type result struct {
	Name          string  `json:"name"`
	Iters         int     `json:"iters"`
	NsPerOp       float64 `json:"ns_per_op"`
	Diags         int     `json:"diags"`
	Shape         string  `json:"shape"`
	ExitShape     string  `json:"exit_shape"`
	ParStatements int     `json:"par_statements"`
	// Context-table statistics (zero in merged mode): live exact contexts,
	// procedures that grew a merged fallback, and cap evictions.
	Contexts    int `json:"contexts"`
	MergedProcs int `json:"merged_procs"`
	Evictions   int `json:"evictions"`
	// Lazy-fallback statistics: procedures whose merged fallback found a
	// consumer and was analyzed, the fixpoint analyses those fallbacks
	// consumed, and live shared-exit aliases (read-only procedures bound
	// to a covering converged context instead of re-analyzed). Absent
	// (zero) in reports from binaries that predate them; the -baseline
	// gate only reads the timing fields, so old and new reports compare
	// freely in either direction.
	FallbacksActivated int `json:"fallbacks_activated,omitempty"`
	FallbackAnalyses   int `json:"fallback_analyses,omitempty"`
	ExitsShared        int `json:"exits_shared,omitempty"`
}

// spaceStats is the JSON rendering of path.SpaceStats plus the matrix
// handle table, the epoch-scoped cache hierarchy of the analysis.
type spaceStats struct {
	Epoch           uint64  `json:"epoch"`
	InternedPaths   int     `json:"interned_paths"`
	InternedHandles int     `json:"interned_handles"`
	MemoVerdicts    int     `json:"memo_verdicts"`
	ResidueEntries  int     `json:"residue_entries"`
	MemoHits        uint64  `json:"memo_hits"`
	MemoMisses      uint64  `json:"memo_misses"`
	MemoHitRate     float64 `json:"memo_hit_rate"`
}

func snapshotSpace() spaceStats {
	st := path.DefaultSpace().Stats()
	return spaceStats{
		Epoch:           st.Epoch,
		InternedPaths:   st.InternedPaths,
		InternedHandles: matrix.InternedHandles(),
		MemoVerdicts:    st.Verdicts(),
		ResidueEntries:  st.ResidueEntries,
		MemoHits:        st.MemoHits,
		MemoMisses:      st.MemoMisses,
		MemoHitRate:     st.HitRate(),
	}
}

// report is the whole BENCH_analysis.json document.
type report struct {
	Schema    string    `json:"schema"`
	Timestamp time.Time `json:"timestamp"`
	GoVersion string    `json:"go_version"`
	NumCPU    int       `json:"num_cpu"`
	Workers   int       `json:"workers"`
	// Mode is "context" (per-context summaries) or "merged" (single
	// summary per procedure); MaxContexts is the effective table cap;
	// Samples is how many measurement passes the per-program medians were
	// taken over (absent/zero in reports from binaries predating it).
	Mode         string   `json:"mode"`
	MaxContexts  int      `json:"max_contexts"`
	Samples      int      `json:"samples,omitempty"`
	Corpus       []result `json:"corpus"`
	TotalNsPerOp float64  `json:"total_ns_per_op"`
	// InternedPaths and MemoVerdicts stay at top level for older readers;
	// Space carries the full table statistics.
	InternedPaths   int         `json:"interned_paths"`
	MemoVerdicts    int         `json:"memo_verdicts"`
	Space           spaceStats  `json:"space"`
	SpaceAfterReset *spaceStats `json:"space_after_reset,omitempty"`
}

func main() {
	log.SetFlags(0)
	out := flag.String("out", "BENCH_analysis.json", "output file (- for stdout)")
	iters := flag.Int("iters", 25, "fixed iterations per program (0 = time-based)")
	samples := flag.Int("samples", 1, "measurement passes per program; the reported ns/op is the per-program median")
	minMS := flag.Int("min-ms", 200, "minimum measurement time per program when iters=0")
	workers := flag.Int("workers", 0, "analysis worker pool size (0 = default)")
	ctx := flag.Int("ctx", 0, "context-table cap: 0 = default, >0 = override, <0 = merged mode (context-insensitive)")
	reset := flag.Bool("reset", false, "reset the path.Space after measuring and record the post-reset counters")
	baseline := flag.String("baseline", "", "baseline BENCH_analysis.json to gate regressions against")
	maxRegress := flag.Float64("max-regress", 0.15, "maximum allowed total ns/op regression vs -baseline (fraction)")
	server := flag.Bool("server", false, "server load mode: drive an in-process silserver with concurrent clients over a Zipf-skewed corpus mix")
	clients := flag.Int("clients", 8, "server mode: concurrent clients")
	requests := flag.Int("requests", 200, "server mode: requests per client")
	zipfS := flag.Float64("zipf", 1.2, "server mode: Zipf skew parameter s (>1; larger = more skewed)")
	cacheCap := flag.Int("cache", 256, "server mode: result-cache capacity (negative disables)")
	shards := flag.Int("shards", 1, "server mode: fingerprint shards (silserver -shards)")
	editReplay := flag.Bool("edit-replay", false, "edit-replay mode: measure warm re-analysis of singly-edited corpus programs against the summary store")
	flag.Parse()

	if *editReplay {
		out := *out
		if out == "BENCH_analysis.json" {
			out = "BENCH_incremental.json"
		}
		if err := runEditReplay(editReplayConfig{
			Out: out, Samples: *samples, Workers: *workers, MaxContexts: *ctx,
		}); err != nil {
			log.Fatalf("edit-replay mode: %v", err)
		}
		return
	}

	if *server {
		if err := runServerLoad(serverLoadConfig{
			Out: *out, Clients: *clients, Requests: *requests, ZipfS: *zipfS,
			Cache: *cacheCap, Workers: *workers, MaxContexts: *ctx, Shards: *shards,
		}); err != nil {
			log.Fatalf("server load mode: %v", err)
		}
		return
	}

	modeOpts := analysis.Options{Workers: *workers, MaxContexts: *ctx}
	mode := "context"
	if !modeOpts.ContextSensitive() {
		mode = "merged"
	}
	rep := report{
		Schema:      "sil-bench/v3",
		Timestamp:   time.Now().UTC(),
		GoVersion:   runtime.Version(),
		NumCPU:      runtime.NumCPU(),
		Workers:     modeOpts.EffectiveWorkers(),
		Mode:        mode,
		MaxContexts: *ctx,
		Samples:     *samples,
	}
	for _, e := range progs.Catalog {
		r, err := benchOne(e, *iters, *samples, time.Duration(*minMS)*time.Millisecond, *workers, *ctx)
		if err != nil {
			log.Fatalf("%s: %v", e.Name, err)
		}
		rep.Corpus = append(rep.Corpus, r)
		rep.TotalNsPerOp += r.NsPerOp
		fmt.Fprintf(os.Stderr, "%-16s %12.0f ns/op  shape=%-6s diags=%d parstmts=%d ctxs=%d fbAct=%d fbAna=%d shared=%d\n",
			r.Name, r.NsPerOp, r.Shape, r.Diags, r.ParStatements, r.Contexts,
			r.FallbacksActivated, r.FallbackAnalyses, r.ExitsShared)
	}
	rep.Space = snapshotSpace()
	rep.InternedPaths = rep.Space.InternedPaths
	rep.MemoVerdicts = rep.Space.MemoVerdicts
	fmt.Fprintf(os.Stderr, "space: %d paths, %d handles, %d verdicts, hit rate %.3f\n",
		rep.Space.InternedPaths, rep.Space.InternedHandles, rep.Space.MemoVerdicts, rep.Space.MemoHitRate)
	if *reset {
		path.DefaultSpace().Reset()
		after := snapshotSpace()
		rep.SpaceAfterReset = &after
		fmt.Fprintf(os.Stderr, "after reset: %d paths, %d handles, %d verdicts (epoch %d)\n",
			after.InternedPaths, after.InternedHandles, after.MemoVerdicts, after.Epoch)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		log.Fatal(err)
	}
	data = append(data, '\n')
	if *out == "-" {
		os.Stdout.Write(data)
	} else {
		if err := os.WriteFile(*out, data, 0o644); err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote %s (total %.2f ms/op over %d programs)\n",
			*out, rep.TotalNsPerOp/1e6, len(rep.Corpus))
	}
	if *baseline != "" {
		if err := gateRegression(os.Stderr, rep, *baseline, *maxRegress); err != nil {
			log.Fatalf("benchmark regression gate: %v", err)
		}
		fmt.Fprintf(os.Stderr, "regression gate passed (limit %.0f%%)\n", *maxRegress*100)
	}
}

// benchOne measures one corpus program end to end (compile once, then
// analyze+parallelize per iteration, which is the optimized hot path).
// With samples > 1 the whole measurement repeats and the reported ns/op is
// the median over the passes, which a single descheduled pass on a noisy
// runner cannot move.
func benchOne(e progs.Entry, iters, samples int, minTime time.Duration, workers, maxContexts int) (result, error) {
	prog, err := progs.Compile(e.Source)
	if err != nil {
		return result{}, err
	}
	opts := analysis.Options{ExternalRoots: e.Roots, Workers: workers, MaxContexts: maxContexts}
	run := func() (*analysis.Info, *par.Result, error) {
		info, err := analysis.Analyze(context.Background(), prog, opts)
		if err != nil {
			return nil, nil, err
		}
		return info, par.Parallelize(info, par.DefaultOptions), nil
	}
	// Warm up once (also populates the process-wide memo tables the way a
	// long-lived service would see them).
	info, parRes, err := run()
	if err != nil {
		return result{}, err
	}
	if samples < 1 {
		samples = 1
	}
	perSample := make([]float64, 0, samples)
	totalIters := 0
	for s := 0; s < samples; s++ {
		var elapsed time.Duration
		n := 0
		start := time.Now()
		for {
			if _, _, err := run(); err != nil {
				return result{}, err
			}
			n++
			elapsed = time.Since(start)
			if iters > 0 {
				if n >= iters {
					break
				}
			} else if elapsed >= minTime {
				break
			}
		}
		totalIters += n
		perSample = append(perSample, float64(elapsed.Nanoseconds())/float64(n))
	}
	ct := info.ContextTableStats()
	return result{
		Name:               e.Name,
		Iters:              totalIters,
		NsPerOp:            median(perSample),
		Diags:              len(info.Diags),
		Shape:              info.Shape().String(),
		ExitShape:          info.ExitShape().String(),
		ParStatements:      parRes.Stats.ParStatements,
		Contexts:           ct.Exact,
		MergedProcs:        ct.MergedProcs,
		Evictions:          ct.Evictions,
		FallbacksActivated: ct.FallbacksActivated,
		FallbackAnalyses:   ct.FallbackAnalyses,
		ExitsShared:        ct.ExitsShared,
	}, nil
}
