package main

// The -server load mode: silbench starts an in-process silserver (the same
// internal/service handler the daemon mounts), drives it with N concurrent
// HTTP clients issuing a Zipf-skewed mix of corpus programs — the
// popularity skew real caching layers are evaluated under — and reports
// cold (cache-miss) vs warm (cache-hit) latency percentiles, the hit rate,
// and the final /stats document. The report is a measurement artifact, not
// a gated trajectory: latency through a loopback HTTP stack is far noisier
// than the in-process analysis benchmarks the -baseline gate guards.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/progs"
	"repro/internal/service"
)

type serverLoadConfig struct {
	Out         string
	Clients     int
	Requests    int
	ZipfS       float64
	Cache       int
	Workers     int
	MaxContexts int
	// Shards is the fingerprint-shard count (silserver -shards); 1 (or 0)
	// serves everything from a single Service.
	Shards int
}

// latencySummary is the percentile rendering of one request class.
type latencySummary struct {
	Count int     `json:"count"`
	P50Ms float64 `json:"p50_ms"`
	P90Ms float64 `json:"p90_ms"`
	P99Ms float64 `json:"p99_ms"`
	MaxMs float64 `json:"max_ms"`
}

func summarize(durs []time.Duration) latencySummary {
	if len(durs) == 0 {
		return latencySummary{}
	}
	sort.Slice(durs, func(i, j int) bool { return durs[i] < durs[j] })
	pct := func(p float64) float64 {
		i := int(p * float64(len(durs)-1))
		return float64(durs[i].Nanoseconds()) / 1e6
	}
	return latencySummary{
		Count: len(durs),
		P50Ms: pct(0.50),
		P90Ms: pct(0.90),
		P99Ms: pct(0.99),
		MaxMs: float64(durs[len(durs)-1].Nanoseconds()) / 1e6,
	}
}

// programLoad is the per-program slice of the load report.
type programLoad struct {
	Name     string  `json:"name"`
	Requests int     `json:"requests"`
	Hits     int     `json:"hits"`
	ColdMs   float64 `json:"cold_ms"` // median cache-miss latency
	WarmMs   float64 `json:"warm_ms"` // median cache-hit latency
}

// serverReport is the whole BENCH_server.json document.
type serverReport struct {
	Schema    string    `json:"schema"`
	Timestamp time.Time `json:"timestamp"`
	GoVersion string    `json:"go_version"`
	NumCPU    int       `json:"num_cpu"`

	Clients  int     `json:"clients"`
	Requests int     `json:"requests_per_client"`
	ZipfS    float64 `json:"zipf_s"`
	Mode     string  `json:"mode"`
	Shards   int     `json:"shards"`

	Total  int `json:"total_requests"`
	Errors int `json:"errors"`
	// StatusCounts tallies responses by HTTP status ("200", "429", "503",
	// "504", ...) so shed/budget/deadline behavior under load is visible in
	// the artifact even though this mode never gates on it.
	StatusCounts map[string]int `json:"status_counts"`
	HitRate      float64        `json:"hit_rate"`
	Warm         latencySummary `json:"warm"`
	Cold         latencySummary `json:"cold"`
	// ColdWarmMedianRatio is cold p50 / warm p50 — the headline number for
	// what the cache buys under this mix.
	ColdWarmMedianRatio float64 `json:"cold_warm_median_ratio"`

	Programs []programLoad  `json:"programs"`
	Stats    *service.Stats `json:"server_stats,omitempty"`
	// PerShard carries each shard's own counters when Shards > 1 (Stats is
	// then the cross-shard aggregate).
	PerShard []service.Stats `json:"per_shard_stats,omitempty"`
	// Metrics is the post-load /v1/metrics exposition flattened to
	// series-name -> value (comments and histogram bucket series dropped;
	// _sum/_count kept), so the artifact records exactly what a scraper
	// would have seen.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// scrapeMetrics fetches url and flattens the Prometheus text exposition,
// skipping comment lines and per-bucket histogram series.
func scrapeMetrics(client *http.Client, url string) (map[string]float64, error) {
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	out := map[string]float64{}
	for _, line := range bytes.Split(data, []byte("\n")) {
		if len(line) == 0 || line[0] == '#' || bytes.Contains(line, []byte("_bucket{")) {
			continue
		}
		i := bytes.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		var v float64
		if _, err := fmt.Sscanf(string(line[i+1:]), "%g", &v); err != nil {
			continue
		}
		out[string(line[:i])] = v
	}
	return out, nil
}

type sample struct {
	prog   string
	dur    time.Duration
	hit    bool
	err    bool
	status int // HTTP status (0 on transport error)
}

func runServerLoad(cfg serverLoadConfig) error {
	if cfg.Clients < 1 || cfg.Requests < 1 {
		return fmt.Errorf("need at least one client and one request")
	}
	if cfg.ZipfS <= 1 {
		return fmt.Errorf("-zipf must be > 1")
	}
	shards := cfg.Shards
	if shards < 1 {
		shards = 1
	}
	router := service.NewRouter(shards, service.Options{
		Analysis:      analysis.Options{Workers: cfg.Workers, MaxContexts: cfg.MaxContexts},
		CacheCapacity: cfg.Cache,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	srv := &http.Server{Handler: service.NewRouterHandler(router)}
	go srv.Serve(ln)
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	// Pre-marshal the request bodies; popularity rank = catalog order.
	catalog := progs.Catalog
	bodies := make([][]byte, len(catalog))
	for i, e := range catalog {
		bodies[i], err = json.Marshal(service.Request{Name: e.Name, Source: e.Source, Roots: e.Roots})
		if err != nil {
			return err
		}
	}

	results := make([][]sample, cfg.Clients)
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + c)))
			zipf := rand.NewZipf(rng, cfg.ZipfS, 1, uint64(len(catalog)-1))
			client := &http.Client{}
			out := make([]sample, 0, cfg.Requests)
			for i := 0; i < cfg.Requests; i++ {
				idx := int(zipf.Uint64())
				start := time.Now()
				resp, err := client.Post(base+"/analyze", "application/json", bytes.NewReader(bodies[idx]))
				dur := time.Since(start)
				s := sample{prog: catalog[idx].Name, dur: dur}
				if resp != nil {
					s.status = resp.StatusCode
				}
				if err != nil || resp.StatusCode != http.StatusOK {
					s.err = true
				} else {
					s.hit = resp.Header.Get(service.CacheHeader) == "hit"
				}
				if resp != nil {
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
				}
				out = append(out, s)
			}
			results[c] = out
		}(c)
	}
	wg.Wait()

	mode := "context"
	if !(analysis.Options{MaxContexts: cfg.MaxContexts}).ContextSensitive() {
		mode = "merged"
	}
	rep := serverReport{
		Schema:    "sil-bench-server/v2",
		Timestamp: time.Now().UTC(),
		GoVersion: runtime.Version(),
		NumCPU:    runtime.NumCPU(),
		Clients:   cfg.Clients,
		Requests:  cfg.Requests,
		ZipfS:     cfg.ZipfS,
		Mode:      mode,
		Shards:    shards,
	}
	rep.StatusCounts = map[string]int{}
	var warm, cold []time.Duration
	perProg := map[string]*programLoad{}
	var progWarm, progCold = map[string][]float64{}, map[string][]float64{}
	for _, rs := range results {
		for _, s := range rs {
			rep.Total++
			rep.StatusCounts[fmt.Sprintf("%d", s.status)]++
			if s.err {
				rep.Errors++
				continue
			}
			pl := perProg[s.prog]
			if pl == nil {
				pl = &programLoad{Name: s.prog}
				perProg[s.prog] = pl
			}
			pl.Requests++
			ms := float64(s.dur.Nanoseconds()) / 1e6
			if s.hit {
				pl.Hits++
				warm = append(warm, s.dur)
				progWarm[s.prog] = append(progWarm[s.prog], ms)
			} else {
				cold = append(cold, s.dur)
				progCold[s.prog] = append(progCold[s.prog], ms)
			}
		}
	}
	if n := len(warm) + len(cold); n > 0 {
		rep.HitRate = float64(len(warm)) / float64(n)
	}
	rep.Warm = summarize(warm)
	rep.Cold = summarize(cold)
	if rep.Warm.P50Ms > 0 {
		rep.ColdWarmMedianRatio = rep.Cold.P50Ms / rep.Warm.P50Ms
	}
	var names []string
	for n := range perProg {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		pl := perProg[n]
		pl.ColdMs = median(progCold[n])
		pl.WarmMs = median(progWarm[n])
		rep.Programs = append(rep.Programs, *pl)
	}
	rst := router.Stats()
	rep.Stats = &rst.Total
	if shards > 1 {
		rep.PerShard = rst.PerShard
	}
	st := rst.Total
	// Record the serving-layer exposition itself (what a Prometheus scraper
	// would have collected after the run).
	if m, err := scrapeMetrics(&http.Client{}, base+"/v1/metrics"); err != nil {
		fmt.Fprintf(os.Stderr, "  metrics scrape failed: %v\n", err)
	} else {
		rep.Metrics = m
	}

	fmt.Fprintf(os.Stderr, "server load: %d requests (%d clients x %d, %d shard(s)), hit rate %.3f, errors %d\n",
		rep.Total, cfg.Clients, cfg.Requests, shards, rep.HitRate, rep.Errors)
	fmt.Fprintf(os.Stderr, "  cold p50 %.3fms p90 %.3fms | warm p50 %.3fms p90 %.3fms | cold/warm %.1fx\n",
		rep.Cold.P50Ms, rep.Cold.P90Ms, rep.Warm.P50Ms, rep.Warm.P90Ms, rep.ColdWarmMedianRatio)
	fmt.Fprintf(os.Stderr, "  server: %s\n", st)

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if cfg.Out == "-" {
		os.Stdout.Write(data)
	} else {
		if err := os.WriteFile(cfg.Out, data, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s\n", cfg.Out)
	}
	if rep.Errors > 0 {
		return fmt.Errorf("%d request(s) failed", rep.Errors)
	}
	return nil
}
